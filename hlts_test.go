package hlts

import (
	"math/rand"
	"os"
	"testing"
)

func TestFacadePipeline(t *testing.T) {
	g, err := LoadBenchmark(BenchTseng, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Synthesize(g, DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	n, err := GenerateNetlist(r, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultATPGConfig(1)
	cfg.SampleFaults = 100
	cfg.RandomBatches = 1
	cfg.Restarts = 0
	res, err := TestDesign(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage <= 0 {
		t.Errorf("zero coverage: %+v", res)
	}
}

func TestFacadeVHDLRoundTrip(t *testing.T) {
	src := `
entity mac is
  port ( a, b, c : in integer; y : out integer );
end entity;
architecture rtl of mac is
begin
  process (a, b, c)
  begin
    y <= a * b + c;
  end process;
end architecture;
`
	g, err := CompileVHDL(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunMethod(MethodOurs, g, DefaultParams(8))
	if err != nil {
		t.Fatal(err)
	}
	n, err := GenerateNetlist(r, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		a, b, c := rng.Uint64()%256, rng.Uint64()%256, rng.Uint64()%256
		out, err := n.SimulatePass(map[string]uint64{"a": a, "b": b, "c": c})
		if err != nil {
			t.Fatal(err)
		}
		if want := (a*b + c) & 0xFF; out["y"] != want {
			t.Fatalf("mac(%d,%d,%d) = %d, want %d", a, b, c, out["y"], want)
		}
	}
}

func TestFacadeLists(t *testing.T) {
	if len(Benchmarks()) != 6 {
		t.Errorf("benchmarks: %v", Benchmarks())
	}
	if len(Methods()) != 4 {
		t.Errorf("methods: %v", Methods())
	}
}

func TestFacadeBIST(t *testing.T) {
	g, err := LoadBenchmark(BenchTseng, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Synthesize(g, DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	tpg, misr := SelectBISTRegisters(r, 2, 2)
	if len(tpg)+len(misr) == 0 {
		t.Skip("no BIST candidates on this design")
	}
	n, err := GenerateNetlistWithBIST(r, 4, tpg, misr)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunBIST(n, 150, 60)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalFaults == 0 || out.Coverage < 0 || out.Coverage > 1 {
		t.Errorf("bad BIST outcome %+v", out)
	}
}

func TestShippedVHDLSources(t *testing.T) {
	for _, f := range []string{"testdata/diffeq.vhd", "testdata/fir4.vhd"} {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		g, err := CompileVHDL(string(src), 8)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		r, err := Synthesize(g, DefaultParams(8))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		n, err := GenerateNetlist(r, 8, false)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		// Gate level agrees with the behavioural interpreter.
		rng := rand.New(rand.NewSource(21))
		in := map[string]uint64{}
		for _, v := range g.Inputs() {
			in[g.Value(v).Name] = rng.Uint64()
		}
		want, err := g.Interpret(8, in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := n.SimulatePass(in)
		if err != nil {
			t.Fatal(err)
		}
		for k, w := range want {
			if got[k] != w {
				t.Fatalf("%s: output %s = %d, want %d", f, k, got[k], w)
			}
		}
	}
}
