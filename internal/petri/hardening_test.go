package petri

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
)

// TestReachabilityBudgets is the table-driven deadline/budget test for the
// reachability exploration: each row pairs a context state with a node
// budget and names the error the caller must observe, including the
// zero-budget and already-cancelled corner cases.
func TestReachabilityBudgets(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()

	tests := []struct {
		name     string
		ctx      context.Context
		maxNodes int
		wantErr  error  // matched with errors.Is when non-nil
		wantMsg  string // substring match when wantErr is nil and an error is expected
		wantOK   bool
	}{
		{name: "success", ctx: context.Background(), maxNodes: 64, wantOK: true},
		{name: "exact budget", ctx: context.Background(), maxNodes: 5, wantOK: true},
		{name: "zero budget", ctx: context.Background(), maxNodes: 0, wantMsg: "exceeds 0 markings"},
		{name: "budget one short", ctx: context.Background(), maxNodes: 4, wantMsg: "exceeds 4 markings"},
		{name: "already cancelled", ctx: cancelled, maxNodes: 64, wantErr: context.Canceled},
		{name: "deadline expired", ctx: expired, maxNodes: 64, wantErr: context.DeadlineExceeded},
		{name: "cancelled beats zero budget", ctx: cancelled, maxNodes: 0, wantErr: context.Canceled},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			n, _ := Chain("chain", 5)
			nodes, err := n.ReachabilityGraphCtx(tc.ctx, tc.maxNodes)
			if tc.wantOK {
				if err != nil {
					t.Fatalf("ReachabilityGraphCtx: %v", err)
				}
				if len(nodes) != 5 {
					t.Fatalf("got %d nodes, want 5", len(nodes))
				}
				return
			}
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("err = %q, want substring %q", err, tc.wantMsg)
			}
			if nodes != nil {
				t.Fatalf("error path returned %d nodes alongside error", len(nodes))
			}
		})
	}
}

// TestReachabilityCtxMidExploration cancels while the frontier is still
// growing: a loop net keeps the exploration alive long enough that the
// per-iteration check observes the cancellation.
func TestReachabilityCtxMidExploration(t *testing.T) {
	n, _, _ := Loop("loop", 6, "c")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the check sits at the top of every expansion, so index 0 sees it
	if _, err := n.ReachabilityGraphCtx(ctx, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestReachabilityGraphBackground pins that the ctx-less wrapper still
// succeeds and agrees with the ctx variant.
func TestReachabilityGraphBackground(t *testing.T) {
	n, _, _ := Loop("loop", 3, "c")
	a, err := n.ReachabilityGraph(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.ReachabilityGraphCtx(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("wrapper explored %d nodes, ctx variant %d", len(a), len(b))
	}
}

// TestExecPanicBecomesExecError: a malformed net — two unguarded
// transitions conflicting on one place, which Validate would reject —
// drives fire into its internal panic under maximal-step semantics. The
// Exec boundary must surface that as a typed *exec.ExecError, not unwind.
func TestExecPanicBecomesExecError(t *testing.T) {
	n := NewNet("conflict")
	a := n.AddPlace("a", 0)
	b := n.AddPlace("b", 1)
	c := n.AddPlace("c", 1)
	n.MarkInitial(a)
	n.MarkFinal(b)
	n.AddTransition("t1", []PlaceID{a}, []PlaceID{b})
	n.AddTransition("t2", []PlaceID{a}, []PlaceID{c})
	if err := n.Validate(); err == nil {
		t.Fatal("conflicting net unexpectedly validates; test premise broken")
	}
	_, err := n.Exec(nil, 10)
	if err == nil {
		t.Fatal("Exec of conflicting net succeeded, want ExecError")
	}
	ee, ok := exec.AsExecError(err)
	if !ok {
		t.Fatalf("err = %v (%T), want *exec.ExecError", err, err)
	}
	if ee.Stage != "petri.exec" {
		t.Errorf("Stage = %q, want petri.exec", ee.Stage)
	}
	if !strings.Contains(err.Error(), "without token") {
		t.Errorf("err = %q, want the fire panic message", err)
	}
	if len(ee.Stack) == 0 {
		t.Error("ExecError carries no stack")
	}
}

// TestExecNormalPathUnaffected: the panic guard must not perturb ordinary
// execution results.
func TestExecNormalPathUnaffected(t *testing.T) {
	n, _ := Chain("chain", 4)
	steps, err := n.Exec(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 4 {
		t.Fatalf("steps = %d, want 4", steps)
	}
}

// TestReachabilityPartialOnBudget: the Reach-returning API makes budget
// exhaustion a first-class partial outcome — no error, the discovered
// prefix intact (including unexpanded frontier nodes), every edge index
// valid within it — while a complete exploration reports StatusComplete.
func TestReachabilityPartialOnBudget(t *testing.T) {
	n, _ := Chain("chain", 30)
	full, err := n.Reachability(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != exec.StatusComplete || full.Exhausted != "" {
		t.Fatalf("complete exploration: status %v, exhausted %q", full.Status, full.Exhausted)
	}
	if len(full.Nodes) != 30 {
		t.Fatalf("complete exploration found %d nodes, want 30", len(full.Nodes))
	}

	part, err := n.Reachability(context.Background(), 10)
	if err != nil {
		t.Fatalf("budget exhaustion must be a partial result, not an error: %v", err)
	}
	if part.Status != exec.StatusPartial || part.Exhausted != exec.BudgetReachNodes {
		t.Fatalf("partial exploration: status %v, exhausted %q", part.Status, part.Exhausted)
	}
	if len(part.Nodes) <= 10 || len(part.Nodes) >= 30 {
		t.Fatalf("partial exploration returned %d nodes; want the discovered prefix just past the budget", len(part.Nodes))
	}
	for i, nd := range part.Nodes {
		if nd.Key != full.Nodes[i].Key {
			t.Fatalf("partial node %d is not a prefix of the complete exploration", i)
		}
		for _, e := range nd.Edges {
			if e.To < 0 || e.To >= len(part.Nodes) {
				t.Fatalf("partial node %d has edge to %d, outside the returned set of %d", i, e.To, len(part.Nodes))
			}
		}
	}

	// Cancellation still surfaces as an error, not a partial result.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Reachability(ctx, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Reachability: err = %v, want context.Canceled", err)
	}
}
