package petri

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestChainExec(t *testing.T) {
	for steps := 1; steps <= 10; steps++ {
		n, ids := Chain("c", steps)
		if err := n.Validate(); err != nil {
			t.Fatalf("steps=%d: %v", steps, err)
		}
		if len(ids) != steps {
			t.Fatalf("steps=%d: got %d places", steps, len(ids))
		}
		got, err := n.Exec(nil, 100)
		if err != nil {
			t.Fatalf("steps=%d: %v", steps, err)
		}
		if got != steps {
			t.Errorf("chain of %d steps executed in %d", steps, got)
		}
	}
}

func TestChainCriticalPathEqualsLength(t *testing.T) {
	prop := func(k uint8) bool {
		steps := int(k%20) + 1
		n, _ := Chain("c", steps)
		cp, err := n.CriticalPath(1, 200)
		return err == nil && cp == steps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLoopExec(t *testing.T) {
	n, _, _ := Loop("l", 3, "c")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Loop twice (guard true twice, then false): three body passes.
	oracle := func(sig string, occ int) bool { return occ < 2 }
	got, err := n.Exec(oracle, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("3-step body, 3 passes: got %d steps, want 9", got)
	}
}

func TestLoopCriticalPath(t *testing.T) {
	n, _, _ := Loop("l", 4, "c")
	cp, err := n.CriticalPath(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	// loopBound=2 back-edge firings -> 3 body passes of 4 steps.
	if cp != 12 {
		t.Errorf("critical path = %d, want 12", cp)
	}
}

func TestForkJoinExec(t *testing.T) {
	// Fork into a 1-step and a 3-step branch, join: time = 1 + max(1,3) + 1.
	n := NewNet("fj")
	start := n.AddPlace("start", 1)
	a := n.AddPlace("a", 1)
	b1 := n.AddPlace("b1", 1)
	b2 := n.AddPlace("b2", 1)
	b3 := n.AddPlace("b3", 1)
	end := n.AddPlace("end", 1)
	n.MarkInitial(start)
	n.MarkFinal(end)
	n.AddTransition("fork", []PlaceID{start}, []PlaceID{a, b1})
	n.AddTransition("", []PlaceID{b1}, []PlaceID{b2})
	n.AddTransition("", []PlaceID{b2}, []PlaceID{b3})
	n.AddTransition("join", []PlaceID{a, b3}, []PlaceID{end})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := n.Exec(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("fork/join executed in %d, want 5", got)
	}
}

func TestValidateErrors(t *testing.T) {
	n := NewNet("bad")
	p := n.AddPlace("p", 1)
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "initial") {
		t.Errorf("expected missing-initial error, got %v", err)
	}
	n.MarkInitial(p)
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "final") {
		t.Errorf("expected missing-final error, got %v", err)
	}
	n.MarkFinal(p)
	if err := n.Validate(); err != nil {
		t.Errorf("single-place net should validate: %v", err)
	}

	// Conflicting unguarded transitions on one place.
	q := n.AddPlace("q", 1)
	r := n.AddPlace("r", 1)
	n.AddTransition("t1", []PlaceID{p}, []PlaceID{q})
	n.AddTransition("t2", []PlaceID{p}, []PlaceID{r})
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Errorf("expected conflict error, got %v", err)
	}
}

func TestValidateComplementaryGuardsOK(t *testing.T) {
	n := NewNet("g")
	p := n.AddPlace("p", 1)
	q := n.AddPlace("q", 1)
	r := n.AddPlace("r", 1)
	n.MarkInitial(p)
	n.MarkFinal(q)
	n.MarkFinal(r)
	n.AddGuarded("yes", []PlaceID{p}, []PlaceID{q}, "c", true)
	n.AddGuarded("no", []PlaceID{p}, []PlaceID{r}, "c", false)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExecLivelockDetected(t *testing.T) {
	// A net whose final marking is unreachable must report an error.
	n := NewNet("dead")
	p := n.AddPlace("p", 1)
	q := n.AddPlace("q", 1)
	n.MarkInitial(p)
	n.MarkFinal(q)
	// No transition connects p to q.
	if _, err := n.Exec(nil, 50); err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestReachabilityGraphChain(t *testing.T) {
	n, _ := Chain("c", 5)
	nodes, err := n.ReachabilityGraph(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 5 {
		t.Errorf("chain of 5 has %d markings, want 5", len(nodes))
	}
	finals := 0
	for _, nd := range nodes {
		finals += btoi(nd.Final)
	}
	if finals != 1 {
		t.Errorf("%d final markings, want 1", finals)
	}
}

func TestReachabilityGraphLoopHasBackEdge(t *testing.T) {
	n, _, _ := Loop("l", 3, "c")
	nodes, err := n.ReachabilityGraph(100)
	if err != nil {
		t.Fatal(err)
	}
	hasBack := false
	for _, nd := range nodes {
		for i := range nd.Edges {
			if nd.BackEdge[i] {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Error("loop net must expose a back edge in its reachability graph")
	}
}

func TestReachabilityGraphUnsafeDetected(t *testing.T) {
	n := NewNet("unsafe")
	p := n.AddPlace("p", 1)
	q := n.AddPlace("q", 1)
	n.MarkInitial(p)
	n.MarkInitial(q)
	n.MarkFinal(q)
	n.AddTransition("dup", []PlaceID{p}, []PlaceID{q}) // q already marked
	if _, err := n.ReachabilityGraph(100); err == nil {
		t.Fatal("expected unsafety error")
	}
}

func TestReachabilityGraphBound(t *testing.T) {
	n, _ := Chain("c", 50)
	if _, err := n.ReachabilityGraph(10); err == nil {
		t.Fatal("expected bound-exceeded error")
	}
}

func TestCriticalPathGuardBranch(t *testing.T) {
	// Branch: short path 1 extra step, long path 3 extra steps. Critical
	// path must take the long branch.
	n := NewNet("br")
	p := n.AddPlace("p", 1)
	s1 := n.AddPlace("s1", 1)
	l1 := n.AddPlace("l1", 1)
	l2 := n.AddPlace("l2", 1)
	l3 := n.AddPlace("l3", 1)
	end := n.AddPlace("end", 0)
	n.MarkInitial(p)
	n.MarkFinal(end)
	n.AddGuarded("short", []PlaceID{p}, []PlaceID{s1}, "c", true)
	n.AddGuarded("long", []PlaceID{p}, []PlaceID{l1}, "c", false)
	n.AddTransition("", []PlaceID{l1}, []PlaceID{l2})
	n.AddTransition("", []PlaceID{l2}, []PlaceID{l3})
	n.AddTransition("", []PlaceID{s1}, []PlaceID{end})
	n.AddTransition("", []PlaceID{l3}, []PlaceID{end})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	cp, err := n.CriticalPath(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 4 {
		t.Errorf("critical path = %d, want 4 (1 + long branch of 3)", cp)
	}
}

func TestMarkingKeyDeterministic(t *testing.T) {
	n, _ := Chain("c", 3)
	m := n.InitialMarking()
	if m.Key() != m.Key() {
		t.Fatal("marking key must be deterministic")
	}
	if !m.Has(0) || m.Has(1) {
		t.Fatal("initial marking wrong")
	}
	if got := m.Places(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Places() = %v", got)
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestDotRendering(t *testing.T) {
	n, _, _ := Loop("l", 3, "cond")
	d := n.Dot()
	for _, want := range []string{"digraph", "peripheries=2", "cond", "->"} {
		if !strings.Contains(d, want) {
			t.Errorf("petri dot missing %q", want)
		}
	}
}
