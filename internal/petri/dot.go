package petri

import (
	"fmt"
	"strings"
)

// Dot renders the net in Graphviz dot format: places as circles (doubled
// for initial, bold for final, annotated with duration), transitions as
// bars, guards as edge labels.
func (n *Net) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", "petri_"+n.Name)
	for _, p := range n.places {
		attrs := []string{fmt.Sprintf("label=\"%s\\nd=%d\"", p.Name, p.Duration), "shape=circle"}
		if p.Initial {
			attrs = append(attrs, "peripheries=2")
		}
		if p.Final {
			attrs = append(attrs, "style=bold")
		}
		fmt.Fprintf(&b, "  p%d [%s];\n", p.ID, strings.Join(attrs, " "))
	}
	for _, t := range n.transitions {
		label := t.Name
		if t.Guard != "" {
			label = fmt.Sprintf("%s\\n[%s=%v]", t.Name, t.Guard, t.GuardVal)
		}
		fmt.Fprintf(&b, "  t%d [label=\"%s\" shape=box height=0.1 style=filled fillcolor=black fontcolor=white];\n", t.ID, label)
		for _, p := range t.In {
			fmt.Fprintf(&b, "  p%d -> t%d;\n", p, t.ID)
		}
		for _, p := range t.Out {
			fmt.Fprintf(&b, "  t%d -> p%d;\n", t.ID, p)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
