package petri

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/exec"
)

// ReachEdge is an edge of the reachability graph: firing a transition moved
// the net from one marking to another.
type ReachEdge struct {
	Trans TransID
	To    int // index of the destination node
}

// ReachNode is a node of the reachability graph.
type ReachNode struct {
	Marking Marking
	Key     string
	Final   bool
	Edges   []ReachEdge
	// BackEdge marks edges (by index into Edges) that close a cycle, i.e.
	// reach a marking already on the path from the root; they correspond to
	// loops in the control flow.
	BackEdge map[int]bool
}

// Reach is the result of a bounded reachability exploration. When the
// node budget runs out mid-exploration the computation no longer fails:
// it returns the explored prefix with Status == exec.StatusPartial and
// Exhausted naming the budget, so state explosion in a large control net
// degrades a caller gracefully instead of aborting it (PAPER.md §ΔE runs
// on the reachable-state structure, and a prefix still supports
// best-effort analysis).
type Reach struct {
	// Nodes is the explored reachability graph. Under StatusPartial it is a
	// breadth-consistent prefix: every node is genuinely reachable, but
	// edges out of unexpanded frontier nodes are missing.
	Nodes []*ReachNode
	// Status is StatusComplete when the whole reachable set was explored.
	Status exec.Status
	// Exhausted names the spent budget (exec.BudgetReachNodes) under
	// StatusPartial, "" otherwise.
	Exhausted string
}

// ReachabilityGraph explores the markings reachable from the initial
// marking under untimed interleaving semantics (guards are treated as free
// choices, which over-approximates the timed behaviour). It represents the
// paper's reachability tree with repeated markings shared; maxNodes bounds
// the exploration. An error is returned if the bound is exceeded or the net
// is not safe (a transition would produce a token into a marked place that
// is not simultaneously consumed). Callers that prefer the explored prefix
// over an error when the bound is hit use Reachability instead.
func (n *Net) ReachabilityGraph(maxNodes int) ([]*ReachNode, error) {
	return n.ReachabilityGraphCtx(context.Background(), maxNodes)
}

// ReachabilityGraphCtx is ReachabilityGraph with cancellation: the context
// is checked before each marking expansion, so a deadline bounds the
// exploration in time the way maxNodes bounds it in space. Like Exec, the
// public boundary converts internal panics into *exec.ExecError values.
func (n *Net) ReachabilityGraphCtx(ctx context.Context, maxNodes int) ([]*ReachNode, error) {
	r, err := n.Reachability(ctx, maxNodes)
	if err != nil {
		return nil, err
	}
	if r.Status == exec.StatusPartial {
		return nil, fmt.Errorf("petri: reachability graph of %s exceeds %d markings", n.Name, maxNodes)
	}
	return r.Nodes, nil
}

// Reachability is the budget-graceful reachability exploration: exceeding
// maxNodes is not an error but a first-class partial outcome carrying the
// explored prefix. Errors are reserved for cancellation, unsafe nets and
// recovered panics.
func (n *Net) Reachability(ctx context.Context, maxNodes int) (*Reach, error) {
	return exec.Guard1("petri.reach", -1, func() (*Reach, error) {
		return n.reachabilityGraph(ctx, maxNodes)
	})
}

func (n *Net) reachabilityGraph(ctx context.Context, maxNodes int) (*Reach, error) {
	start := n.InitialMarking()
	index := map[string]int{}
	var nodes []*ReachNode
	add := func(m Marking) int {
		k := m.Key()
		if i, ok := index[k]; ok {
			return i
		}
		i := len(nodes)
		index[k] = i
		nodes = append(nodes, &ReachNode{Marking: m, Key: k, Final: n.IsFinal(m), BackEdge: map[int]bool{}})
		return i
	}
	add(start)
	for i := 0; i < len(nodes); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The chaos site simulates the node budget running out at this
		// expansion, exercising the same partial-prefix path.
		if len(nodes) > maxNodes || chaos.Step(chaos.SitePetriReach) != nil {
			return &Reach{
				Nodes:     nodes,
				Status:    exec.StatusPartial,
				Exhausted: exec.BudgetReachNodes,
			}, nil
		}
		cur := nodes[i]
		for _, t := range n.transitions {
			ok := true
			for _, p := range t.In {
				if !cur.Marking.Has(p) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Safety check: outputs must not collide with surviving tokens.
			consumed := map[PlaceID]bool{}
			for _, p := range t.In {
				consumed[p] = true
			}
			for _, p := range t.Out {
				if cur.Marking.Has(p) && !consumed[p] {
					return nil, fmt.Errorf("petri: net %s is unsafe: firing %s duplicates token in %s",
						n.Name, t.Name, n.places[p].Name)
				}
			}
			next := n.fire(t, cur.Marking)
			j := add(next)
			cur.Edges = append(cur.Edges, ReachEdge{Trans: t.ID, To: j})
			if j <= i {
				cur.BackEdge[len(cur.Edges)-1] = true
			}
		}
	}
	return &Reach{Nodes: nodes, Status: exec.StatusComplete}, nil
}

// CriticalPath returns the worst-case number of control steps for a token
// to flow from the initial to the final marking — the length of the
// critical path of the control part (paper §4.2). Guard signals are
// explored over exit policies in which each signal holds one value for its
// first k consultations and the complement afterwards, with k ranging over
// {0, loopBound}; loops therefore contribute loopBound iterations. maxSteps
// bounds each timed execution.
func (n *Net) CriticalPath(loopBound, maxSteps int) (int, error) {
	signals := n.guardSignals()
	if len(signals) == 0 {
		return n.Exec(nil, maxSteps)
	}
	if len(signals) > 12 {
		return 0, fmt.Errorf("petri: %d guard signals exceed critical-path enumeration limit", len(signals))
	}
	type policy struct {
		k        int
		firstVal bool
	}
	policies := []policy{{0, true}, {loopBound, true}, {0, false}, {loopBound, false}}
	best := -1
	var firstErr error
	nCombos := 1
	for range signals {
		nCombos *= len(policies)
	}
	for combo := 0; combo < nCombos; combo++ {
		assign := map[string]policy{}
		c := combo
		for _, s := range signals {
			assign[s] = policies[c%len(policies)]
			c /= len(policies)
		}
		oracle := func(sig string, occurrence int) bool {
			p := assign[sig]
			if occurrence < p.k {
				return p.firstVal
			}
			return !p.firstVal
		}
		steps, err := n.Exec(oracle, maxSteps)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if steps > best {
			best = steps
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("petri: no guard policy completes: %w", firstErr)
	}
	return best, nil
}

func (n *Net) guardSignals() []string {
	set := map[string]bool{}
	for _, t := range n.transitions {
		if t.Guard != "" {
			set[t.Guard] = true
		}
	}
	var out []string
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Chain builds a linear control chain of the given number of unit-duration
// control steps: s0 -> s1 -> ... -> s(k-1), with s0 initial and s(k-1)
// final. It returns the net and the place ids in order. Chains are the
// control shape produced for straight-line schedules.
func Chain(name string, steps int) (*Net, []PlaceID) {
	n := NewNet(name)
	ids := make([]PlaceID, steps)
	for i := 0; i < steps; i++ {
		ids[i] = n.AddPlace(fmt.Sprintf("s%d", i+1), 1)
	}
	if steps > 0 {
		n.MarkInitial(ids[0])
		n.MarkFinal(ids[steps-1])
	}
	for i := 0; i+1 < steps; i++ {
		n.AddTransition("", []PlaceID{ids[i]}, []PlaceID{ids[i+1]})
	}
	return n, ids
}

// Loop builds a chain of body steps with a guarded back edge: after the
// last body place, signal==true returns control to the first place and
// signal==false moves to a final exit place. Loops are the control shape
// produced for iterative behaviours such as Diffeq.
func Loop(name string, bodySteps int, signal string) (*Net, []PlaceID, PlaceID) {
	n := NewNet(name)
	ids := make([]PlaceID, bodySteps)
	for i := 0; i < bodySteps; i++ {
		ids[i] = n.AddPlace(fmt.Sprintf("s%d", i+1), 1)
	}
	exit := n.AddPlace("exit", 0)
	n.MarkInitial(ids[0])
	n.MarkFinal(exit)
	for i := 0; i+1 < bodySteps; i++ {
		n.AddTransition("", []PlaceID{ids[i]}, []PlaceID{ids[i+1]})
	}
	last := ids[bodySteps-1]
	n.AddGuarded("loop", []PlaceID{last}, []PlaceID{ids[0]}, signal, true)
	n.AddGuarded("exit", []PlaceID{last}, []PlaceID{exit}, signal, false)
	return n, ids, exit
}
