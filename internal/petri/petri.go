// Package petri implements the timed Petri net with restricted transition
// firing rules that forms the control part of the ETPN design representation
// (Peng & Kuchcinski [14]). Places model control steps: a token must reside
// in a place for the place's duration (in control steps) before it can
// enable its output transitions. Transitions may be guarded by condition
// signals produced by the data path.
//
// The package provides construction, validation, timed execution, a
// reachability tree, and the critical-path extraction used by the synthesis
// algorithm's ΔE estimate (paper §4.2).
package petri

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
)

// PlaceID identifies a place.
type PlaceID int

// TransID identifies a transition.
type TransID int

// NoPlace is the sentinel place id.
const NoPlace PlaceID = -1

// Place is a control place. Duration is the number of control steps a token
// must reside in the place before its output transitions become enabled;
// ordinary control steps have duration 1, dummy places inserted by
// rescheduling also take one step, and zero-duration places act as purely
// structural forks/joins.
type Place struct {
	ID       PlaceID
	Name     string
	Duration int
	Initial  bool // marked in the initial marking
	Final    bool // part of the final marking
}

// Transition moves tokens from its input places to its output places. A
// non-empty Guard names a data-path condition signal; the transition is
// enabled only when the signal has the value GuardVal.
type Transition struct {
	ID       TransID
	Name     string
	In       []PlaceID
	Out      []PlaceID
	Guard    string
	GuardVal bool
}

// Net is a timed Petri net.
type Net struct {
	Name        string
	places      []*Place
	transitions []*Transition
}

// NewNet returns an empty net.
func NewNet(name string) *Net { return &Net{Name: name} }

// AddPlace appends a place and returns its id.
func (n *Net) AddPlace(name string, duration int) PlaceID {
	id := PlaceID(len(n.places))
	if name == "" {
		name = fmt.Sprintf("s%d", id)
	}
	n.places = append(n.places, &Place{ID: id, Name: name, Duration: duration})
	return id
}

// AddTransition appends an unguarded transition and returns its id.
func (n *Net) AddTransition(name string, in, out []PlaceID) TransID {
	return n.AddGuarded(name, in, out, "", false)
}

// AddGuarded appends a transition guarded by signal == val.
func (n *Net) AddGuarded(name string, in, out []PlaceID, signal string, val bool) TransID {
	id := TransID(len(n.transitions))
	if name == "" {
		name = fmt.Sprintf("t%d", id)
	}
	n.transitions = append(n.transitions, &Transition{
		ID: id, Name: name,
		In:    append([]PlaceID(nil), in...),
		Out:   append([]PlaceID(nil), out...),
		Guard: signal, GuardVal: val,
	})
	return id
}

// MarkInitial includes p in the initial marking.
func (n *Net) MarkInitial(p PlaceID) { n.places[p].Initial = true }

// MarkFinal includes p in the final marking.
func (n *Net) MarkFinal(p PlaceID) { n.places[p].Final = true }

// Place returns the place with the given id.
func (n *Net) Place(id PlaceID) *Place { return n.places[id] }

// Transition returns the transition with the given id.
func (n *Net) Transition(id TransID) *Transition { return n.transitions[id] }

// Places returns the places in id order (backing store; do not mutate).
func (n *Net) Places() []*Place { return n.places }

// Transitions returns the transitions in id order (backing store; do not
// mutate).
func (n *Net) Transitions() []*Transition { return n.transitions }

// NumPlaces returns the number of places.
func (n *Net) NumPlaces() int { return len(n.places) }

// NumTransitions returns the number of transitions.
func (n *Net) NumTransitions() int { return len(n.transitions) }

// Validate checks structural sanity: every transition has at least one input
// and one output, all referenced places exist, durations are non-negative,
// there is an initial and a final marking, and any two transitions sharing
// an input place are distinguished by complementary guards on the same
// signal (the restricted firing rule keeps the net conflict-free).
func (n *Net) Validate() error {
	hasInit, hasFinal := false, false
	for _, p := range n.places {
		if p.Duration < 0 {
			return fmt.Errorf("petri: place %s has negative duration", p.Name)
		}
		hasInit = hasInit || p.Initial
		hasFinal = hasFinal || p.Final
	}
	if !hasInit {
		return fmt.Errorf("petri: net %s has no initial marking", n.Name)
	}
	if !hasFinal {
		return fmt.Errorf("petri: net %s has no final marking", n.Name)
	}
	byInput := map[PlaceID][]*Transition{}
	for _, t := range n.transitions {
		if len(t.In) == 0 || len(t.Out) == 0 {
			return fmt.Errorf("petri: transition %s must have inputs and outputs", t.Name)
		}
		for _, p := range append(append([]PlaceID(nil), t.In...), t.Out...) {
			if p < 0 || int(p) >= len(n.places) {
				return fmt.Errorf("petri: transition %s references unknown place %d", t.Name, p)
			}
		}
		for _, p := range t.In {
			byInput[p] = append(byInput[p], t)
		}
	}
	for p, ts := range byInput {
		if len(ts) == 1 {
			continue
		}
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				a, b := ts[i], ts[j]
				conflictFree := a.Guard != "" && a.Guard == b.Guard && a.GuardVal != b.GuardVal
				if !conflictFree {
					return fmt.Errorf("petri: transitions %s and %s conflict on place %s without complementary guards",
						a.Name, b.Name, n.places[p].Name)
				}
			}
		}
	}
	return nil
}

// Marking is a safe (1-bounded) marking: the set of marked places with the
// residence age of each token.
type Marking struct {
	ages map[PlaceID]int
}

// InitialMarking returns the net's initial marking with fresh tokens.
func (n *Net) InitialMarking() Marking {
	m := Marking{ages: map[PlaceID]int{}}
	for _, p := range n.places {
		if p.Initial {
			m.ages[p.ID] = 0
		}
	}
	return m
}

// Has reports whether place p is marked.
func (m Marking) Has(p PlaceID) bool { _, ok := m.ages[p]; return ok }

// Places returns the marked places in ascending order.
func (m Marking) Places() []PlaceID {
	out := make([]PlaceID, 0, len(m.ages))
	for p := range m.ages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Key returns a canonical string for the set of marked places (ages
// excluded), used for loop detection in the reachability tree.
func (m Marking) Key() string {
	ps := m.Places()
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "%d,", p)
	}
	return b.String()
}

func (m Marking) clone() Marking {
	c := Marking{ages: make(map[PlaceID]int, len(m.ages))}
	for p, a := range m.ages {
		c.ages[p] = a
	}
	return c
}

// IsFinal reports whether every final place of the net is marked.
func (n *Net) IsFinal(m Marking) bool {
	any := false
	for _, p := range n.places {
		if p.Final {
			any = true
			if !m.Has(p.ID) {
				return false
			}
		}
	}
	return any
}

// residenceComplete reports whether every token in m has resided for at
// least its place's duration.
func (n *Net) residenceComplete(m Marking) bool {
	for p, age := range m.ages {
		if age < n.places[p].Duration {
			return false
		}
	}
	return true
}

// enabled reports whether t is enabled in m given guard values: every input
// place is marked, every token has resided at least its place's duration,
// and the guard (if any) matches.
func (n *Net) enabled(t *Transition, m Marking, guards map[string]bool) bool {
	for _, p := range t.In {
		age, ok := m.ages[p]
		if !ok || age < n.places[p].Duration {
			return false
		}
	}
	if t.Guard != "" {
		v, ok := guards[t.Guard]
		if !ok || v != t.GuardVal {
			return false
		}
	}
	return true
}

// fire returns the marking after firing t in m. Newly produced tokens have
// age zero. fire panics if t is not structurally enabled.
func (n *Net) fire(t *Transition, m Marking) Marking {
	c := m.clone()
	for _, p := range t.In {
		if _, ok := c.ages[p]; !ok {
			panic(fmt.Sprintf("petri: firing %s without token in %s", t.Name, n.places[p].Name))
		}
		delete(c.ages, p)
	}
	for _, p := range t.Out {
		c.ages[p] = 0
	}
	return c
}

// tick advances every token's age by one control step.
func (m Marking) tick() Marking {
	c := m.clone()
	for p := range c.ages {
		c.ages[p]++
	}
	return c
}

// GuardOracle supplies condition-signal values during execution. The
// occurrence argument counts, per signal, how many times the signal has
// been consulted (so a loop guard can be told to exit after k iterations).
type GuardOracle func(signal string, occurrence int) bool

// Exec runs the net to its final marking under maximal-step semantics: at
// each clock tick, all enabled transitions fire simultaneously (the
// restricted firing rule guarantees conflict-freedom). It returns the total
// number of control steps. maxSteps bounds execution to guard against
// livelock; an error is returned if the final marking is not reached.
//
// Exec is a public library boundary: an internal panic (e.g. fire on a
// structurally disabled transition, which indicates a malformed net) is
// recovered and returned as an *exec.ExecError rather than unwinding into
// the caller.
func (n *Net) Exec(oracle GuardOracle, maxSteps int) (int, error) {
	return exec.Guard1("petri.exec", -1, func() (int, error) { return n.run(oracle, maxSteps) })
}

func (n *Net) run(oracle GuardOracle, maxSteps int) (int, error) {
	if oracle == nil {
		oracle = func(string, int) bool { return false }
	}
	occ := map[string]int{}
	m := n.InitialMarking()
	guards := map[string]bool{}
	resolve := func(t *Transition) {
		if t.Guard == "" {
			return
		}
		if _, done := guards[t.Guard]; !done {
			guards[t.Guard] = oracle(t.Guard, occ[t.Guard])
			occ[t.Guard]++
		}
	}
	for step := 0; step <= maxSteps; step++ {
		// Step boundary: fire every enabled transition, cascading through
		// zero-duration places. Guard signals are consulted once per
		// boundary and hold their value across the cascade.
		guards = map[string]bool{}
		for round := 0; ; round++ {
			if round > 4*len(n.transitions)+4 {
				return 0, fmt.Errorf("petri: net %s has a zero-delay cycle", n.Name)
			}
			var ready []*Transition
			for _, t := range n.transitions {
				structOK := true
				for _, p := range t.In {
					age, ok := m.ages[p]
					if !ok || age < n.places[p].Duration {
						structOK = false
						break
					}
				}
				if structOK {
					resolve(t)
					if n.enabled(t, m, guards) {
						ready = append(ready, t)
					}
				}
			}
			if len(ready) == 0 {
				break
			}
			for _, t := range ready {
				m = n.fire(t, m)
			}
		}
		if n.IsFinal(m) && n.residenceComplete(m) {
			return step, nil
		}
		m = m.tick()
	}
	return 0, fmt.Errorf("petri: net %s did not reach its final marking within %d steps", n.Name, maxSteps)
}
