// Package cluster turns the single-node hltsd daemon into a
// fault-tolerant fleet: a coordinator (cmd/hltsc) fronts N hltsd workers,
// placing jobs with rendezvous hashing on the request fingerprint and
// surviving worker loss mid-job.
//
// The cluster model (DESIGN.md §4i):
//
//   - Membership: workers self-register over HTTP with their declared
//     capacity and send periodic heartbeats carrying live utilization
//     (queue depth, in-flight jobs, cache hit rate). The registry marks a
//     node Suspect after SuspectAfter without a beat (K missed beats) and
//     Dead after DeadAfter; a dispatch failure demotes a node to Suspect
//     immediately, and the next successful beat restores it to Alive.
//   - Placement: requests are routed by rendezvous hashing on the
//     canonical core.Fingerprint, so identical requests land on the same
//     shard and coalesce there for free — cluster-wide
//     exactly-once-per-fingerprint in the steady state. Node join/leave
//     moves only the keys the changed node owns.
//   - Failover: on a transport failure or node death the coordinator
//     retries on the next-ranked live node; between full passes over the
//     ranking it sleeps a capped exponential backoff with jitter,
//     honoring both the original request deadline and any Retry-After
//     hint a loaded worker returned. Workers sharing a persistent store
//     resume a retried job from whatever the dead worker acknowledged:
//     the fingerprint-keyed store hit replaces the recomputation.
//   - Degradation: an exhausted retry budget or expired deadline answers
//     a typed 503 with Retry-After — an accepted request is always
//     answered (Complete, typed Partial, or typed 503), never a hung
//     connection; only a vanished client goes unanswered.
//
// wire.go defines the JSON types of the coordinator protocol; they are
// deliberately tiny and versioned under /cluster/v1/.
package cluster

// Capacity is what a worker declares at registration: its static serving
// limits, mirrored from the hltsd flags.
type Capacity struct {
	// Jobs is the number of jobs the worker runs concurrently (-jobs).
	Jobs int `json:"jobs"`
	// Workers is the worker-goroutine budget inside the node (-workers).
	Workers int `json:"workers"`
	// QueueDepth is the node's admission bound (-queue).
	QueueDepth int `json:"queue_depth"`
}

// Utilization is the live load snapshot a heartbeat carries, produced by
// server.(*Server).Snapshot from the node's stats layer.
type Utilization struct {
	// Queued and Inflight are the node's current queue depth and distinct
	// in-flight fingerprints.
	Queued   int `json:"queued"`
	Inflight int `json:"inflight"`
	// CacheHitRate is hits/(hits+misses) of the node's result cache
	// (LRU + persistent store), in [0,1].
	CacheHitRate float64 `json:"cache_hit_rate"`
	// JobsRun counts pipeline executions since the node booted.
	JobsRun int64 `json:"jobs_run"`
	// Store summarizes the node's persistent store when it runs with a
	// private -store: record count, live bytes and the end-of-log cursor.
	// Peers and operators read it off /cluster/v1/nodes to judge
	// replication lag; nil when the node has no store.
	Store *StoreUtil `json:"store,omitempty"`
}

// StoreUtil is the replication-relevant store state a heartbeat carries.
type StoreUtil struct {
	Records   int   `json:"records"`
	LiveBytes int64 `json:"live_bytes"`
	// Gen/Seg/Off are the store's end-of-log cursor (see store.Cursor).
	Gen uint64 `json:"gen"`
	Seg uint64 `json:"seg"`
	Off int64  `json:"off"`
}

// RegisterRequest is the body of POST /cluster/v1/register.
type RegisterRequest struct {
	// ID names the node; the advertised URL doubles as the ID in practice.
	ID string `json:"id"`
	// Addr is the base URL the coordinator dispatches to, e.g.
	// "http://10.0.0.7:8080".
	Addr     string   `json:"addr"`
	Capacity Capacity `json:"capacity"`
}

// RegisterResponse acknowledges a registration and tells the agent the
// beat period the coordinator's health tracker assumes.
type RegisterResponse struct {
	Status      string `json:"status"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
}

// HeartbeatRequest is the body of POST /cluster/v1/heartbeat.
type HeartbeatRequest struct {
	ID   string      `json:"id"`
	Util Utilization `json:"util"`
}

// NodeInfo is one row of GET /cluster/v1/nodes — the registry's view of a
// member.
type NodeInfo struct {
	ID       string      `json:"id"`
	Addr     string      `json:"addr"`
	State    string      `json:"state"`
	Capacity Capacity    `json:"capacity"`
	Util     Utilization `json:"util"`
	// BeatAgeMS is how long ago the last heartbeat (or registration)
	// arrived, in milliseconds.
	BeatAgeMS int64 `json:"beat_age_ms"`
}
