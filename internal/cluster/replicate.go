// replicate.go is the peer-to-peer replication layer that lets a
// cluster of workers with PRIVATE -store directories survive permanent
// node loss (DESIGN.md §4j). Three repair paths share the /store/v1/
// wire surface the worker daemon exposes (internal/server/replicate.go):
//
//   - Anti-entropy (Replicator, worker side): every ReplicateInterval
//     the worker discovers Alive peers via the coordinator's
//     /cluster/v1/nodes, compares digests, and pulls the records it is
//     missing in bounded, CRC-verified batches, resuming from a
//     per-peer cursor. A peer whose indexing epoch changed (restart or
//     compaction) is re-pulled from the start — applies are idempotent,
//     so over-pulling costs bandwidth, never correctness.
//   - Read-repair (Replicator.Fetch, worker side): a request that
//     missed the local cache AND store asks the fingerprint's ranked
//     peers for the record before recomputing; a hit is written through
//     locally by the serving path before the response is published.
//   - Hinted handoff (Coordinator, this file): when dispatch fails over
//     — the answering node is not the fingerprint's home shard — the
//     coordinator queues a hint and, once the home node is Alive again,
//     fetches the record from the answering node and pushes it home.
//     Partial results are never stored, so a hint whose fetch answers
//     404 is dropped as a miss, not retried forever.
//
// Failure discipline (the PR 8 rules): every remote exchange is
// deadline-bounded and jitter-backed-off per peer, a fault is a counter
// (`server.replicate.error` on workers, `cluster.handoff.error` on the
// coordinator) plus a retry later — never a blocked serving path, a
// failed client request, or a crashed process. The
// cluster.replicate.fetch / cluster.replicate.apply chaos sites inject
// faults before each exchange and each local apply.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/store"
)

// ReplicatorConfig wires a worker's anti-entropy loop.
type ReplicatorConfig struct {
	// Coordinator is the coordinator's base URL, used only for peer
	// discovery (GET /cluster/v1/nodes); records flow worker-to-worker.
	Coordinator string
	// SelfID is this node's cluster ID (the advertised URL by
	// convention), excluded from the peer set.
	SelfID string
	// Store is the local private store replicated records land in.
	Store *store.Store
	// Interval is the anti-entropy period (default 2s).
	Interval time.Duration
	// RetryMax caps the per-peer backoff after consecutive failures
	// (default 30s).
	RetryMax time.Duration
	// MaxBatch bounds records per pull exchange (default 256).
	MaxBatch int
	// FetchTimeout bounds every remote call (default 5s).
	FetchTimeout time.Duration
	// Stats receives the replicate counters (nil ok).
	Stats *stats.Stats
	// Client performs the HTTP calls (nil = a client with FetchTimeout).
	Client *http.Client
	// JitterSeed seeds the backoff jitter; 0 derives one from the clock.
	JitterSeed int64
}

// peerSync is the per-peer replication state: where the last pull
// stopped and how hard the peer is currently backing off.
type peerSync struct {
	cursor   store.Cursor
	failures int
	notUntil time.Time
}

// Replicator runs a worker's anti-entropy loop and serves its
// read-repair fetches. Construct with StartReplicator; Stop it before
// closing the store.
type Replicator struct {
	cfg    ReplicatorConfig
	client *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand

	mu    sync.Mutex
	peers map[string]*peerSync
	alive []NodeRef // last Alive peer snapshot, for read-repair ranking

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartReplicator launches the anti-entropy loop.
func StartReplicator(cfg ReplicatorConfig) *Replicator {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 30 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 5 * time.Second
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = time.Now().UnixNano()
	}
	if cfg.Client == nil {
		// Private transport so Stop can release idle-connection goroutines.
		cfg.Client = &http.Client{Timeout: cfg.FetchTimeout, Transport: &http.Transport{}}
	}
	r := &Replicator{
		cfg:    cfg,
		client: cfg.Client,
		rng:    rand.New(rand.NewSource(cfg.JitterSeed)),
		peers:  map[string]*peerSync{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.loop()
	return r
}

// Stop halts the loop and waits for it to exit. Idempotent.
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	r.client.CloseIdleConnections()
}

func (r *Replicator) loop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		r.tick()
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
	}
}

// tick is one anti-entropy round: refresh the peer set, then sync every
// peer that is not backing off. The whole peer sync runs under a panic
// guard — an injected ActPanic at a replicate site is a counted fault,
// never a dead loop.
func (r *Replicator) tick() {
	peers, err := r.discover()
	if err != nil {
		r.cfg.Stats.Add("server.replicate.error", 1)
		return
	}
	r.mu.Lock()
	r.alive = peers
	now := time.Now()
	var due []NodeRef
	for _, p := range peers {
		ps := r.peers[p.ID]
		if ps == nil {
			ps = &peerSync{}
			r.peers[p.ID] = ps
		}
		if now.After(ps.notUntil) {
			due = append(due, p)
		}
	}
	r.mu.Unlock()
	for _, p := range due {
		err := exec.Guard("cluster.replicate", -1, func() error { return r.syncPeer(p) })
		if err != nil {
			r.cfg.Stats.Add("server.replicate.error", 1)
			r.backoffPeer(p.ID)
		} else {
			r.resetPeer(p.ID)
		}
		select {
		case <-r.stop:
			return
		default:
		}
	}
}

// backoffPeer applies capped exponential backoff with full jitter to one
// peer after a failed sync; other peers are unaffected.
func (r *Replicator) backoffPeer(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ps := r.peers[id]
	if ps == nil {
		return
	}
	ps.failures++
	d := r.cfg.Interval << uint(ps.failures-1)
	if d > r.cfg.RetryMax || d <= 0 {
		d = r.cfg.RetryMax
	}
	r.rngMu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d) + 1))
	r.rngMu.Unlock()
	ps.notUntil = time.Now().Add(d/2 + j/2)
}

func (r *Replicator) resetPeer(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ps := r.peers[id]; ps != nil {
		ps.failures = 0
		ps.notUntil = time.Time{}
	}
}

// discover reads the coordinator's membership table and returns the
// Alive peers (everyone but this node).
func (r *Replicator) discover() ([]NodeRef, error) {
	resp, err := r.client.Get(r.cfg.Coordinator + "/cluster/v1/nodes")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: nodes answered %d", resp.StatusCode)
	}
	var nodes struct {
		Nodes []NodeInfo `json:"nodes"`
	}
	if err := json.Unmarshal(body, &nodes); err != nil {
		return nil, fmt.Errorf("cluster: bad nodes answer: %w", err)
	}
	var peers []NodeRef
	for _, n := range nodes.Nodes {
		if n.ID != r.cfg.SelfID && n.State == StateAlive.String() {
			peers = append(peers, NodeRef{ID: n.ID, Addr: n.Addr})
		}
	}
	return peers, nil
}

// syncPeer brings the local store up to date with one peer: compare
// digests, then pull the delta from the per-peer cursor in bounded
// batches. A peer without a store (digest answers 404) is silently
// complete — replication is opt-in per node.
func (r *Replicator) syncPeer(p NodeRef) error {
	if err := chaos.Step(chaos.SiteReplicateFetch); err != nil {
		return err
	}
	dig, ok, err := r.getDigest(p)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	r.mu.Lock()
	cur := r.peers[p.ID].cursor
	r.mu.Unlock()
	if cur.Gen != dig.Gen {
		// The peer's positions changed (restart or compaction): restart the
		// stream. Re-pulled records are idempotent no-ops.
		cur = store.Cursor{Gen: dig.Gen}
	}
	for cur.Seg < dig.End.Seg || (cur.Seg == dig.End.Seg && cur.Off < dig.End.Off) {
		if err := chaos.Step(chaos.SiteReplicateFetch); err != nil {
			return err
		}
		pull, err := r.getPull(p, cur)
		if err != nil {
			return err
		}
		for _, wrec := range pull.Records {
			fp, val, err := server.DecodeWireRecord(wrec)
			if err != nil {
				r.cfg.Stats.Add("server.replicate.crc", 1)
				return err
			}
			if err := r.apply(fp, val); err != nil {
				return err
			}
		}
		next := pull.Next.Cursor()
		if next == cur && !pull.More {
			break // peer had nothing new despite the digest; don't spin
		}
		cur = next
		r.mu.Lock()
		r.peers[p.ID].cursor = cur
		r.mu.Unlock()
		if len(pull.Records) > 0 {
			r.cfg.Stats.Add("server.replicate.pulled", int64(len(pull.Records)))
		}
		if !pull.More {
			break
		}
		select {
		case <-r.stop:
			return nil
		default:
		}
	}
	return nil
}

// apply installs one pulled record under first-writer-wins: identical
// bytes are a no-op, differing bytes keep the local record and count a
// conflict (deterministic values make a real conflict a corruption
// signal, not a merge problem), and an absent record is fsynced in.
func (r *Replicator) apply(fp core.Fingerprint, val []byte) error {
	if err := chaos.Step(chaos.SiteReplicateApply); err != nil {
		return err
	}
	if cur, ok := r.cfg.Store.Get(fp); ok {
		if string(cur) == string(val) {
			return nil
		}
		r.cfg.Stats.Add("server.replicate.conflict", 1)
		return nil
	}
	if err := r.cfg.Store.Put(fp, val); err != nil {
		return err
	}
	r.cfg.Stats.Add("server.replicate.applied", 1)
	return nil
}

func (r *Replicator) getDigest(p NodeRef) (server.DigestResponse, bool, error) {
	var d server.DigestResponse
	resp, err := r.client.Get(p.Addr + "/store/v1/digest")
	if err != nil {
		return d, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return d, false, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return d, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return d, false, fmt.Errorf("cluster: digest from %s answered %d", p.ID, resp.StatusCode)
	}
	if err := json.Unmarshal(body, &d); err != nil {
		return d, false, fmt.Errorf("cluster: bad digest from %s: %w", p.ID, err)
	}
	return d, true, nil
}

func (r *Replicator) getPull(p NodeRef, c store.Cursor) (server.PullResponse, error) {
	var pr server.PullResponse
	u := fmt.Sprintf("%s/store/v1/pull?gen=%d&seg=%d&off=%d&max=%d",
		p.Addr, c.Gen, c.Seg, c.Off, r.cfg.MaxBatch)
	resp, err := r.client.Get(u)
	if err != nil {
		return pr, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return pr, err
	}
	if resp.StatusCode != http.StatusOK {
		return pr, fmt.Errorf("cluster: pull from %s answered %d", p.ID, resp.StatusCode)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		return pr, fmt.Errorf("cluster: bad pull from %s: %w", p.ID, err)
	}
	return pr, nil
}

// Fetch is the read-repair hook (server.Config.PeerFetch): try the
// fingerprint's peers in rendezvous order — the home shard first, since
// it most likely holds the record — and return the first verified hit.
// Every fault is a counter and a move to the next peer; exhausting the
// peers is a plain miss, degrading to the local recompute.
func (r *Replicator) Fetch(ctx context.Context, fp core.Fingerprint) ([]byte, bool) {
	r.mu.Lock()
	peers := append([]NodeRef(nil), r.alive...)
	r.mu.Unlock()
	if len(peers) == 0 {
		return nil, false
	}
	byID := make(map[string]NodeRef, len(peers))
	ids := make([]string, 0, len(peers))
	for _, p := range peers {
		byID[p.ID] = p
		ids = append(ids, p.ID)
	}
	for _, id := range Rank(fp, ids) {
		if err := chaos.Step(chaos.SiteReplicateFetch); err != nil {
			r.cfg.Stats.Add("server.replicate.error", 1)
			continue
		}
		val, ok, err := r.getRecord(ctx, byID[id], fp)
		if err != nil {
			r.cfg.Stats.Add("server.replicate.error", 1)
			continue
		}
		if ok {
			return val, true
		}
	}
	return nil, false
}

// getRecord fetches one record from one peer, verifying the transport
// CRC; a 404 is a clean miss.
func (r *Replicator) getRecord(ctx context.Context, p NodeRef, fp core.Fingerprint) ([]byte, bool, error) {
	u := p.Addr + "/store/v1/record?fp=" + url.QueryEscape(fp.String())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("cluster: record from %s answered %d", p.ID, resp.StatusCode)
	}
	var rec server.WireRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		return nil, false, fmt.Errorf("cluster: bad record from %s: %w", p.ID, err)
	}
	gotFP, val, err := server.DecodeWireRecord(rec)
	if err != nil || gotFP != fp {
		r.cfg.Stats.Add("server.replicate.crc", 1)
		return nil, false, fmt.Errorf("cluster: record from %s failed verification", p.ID)
	}
	return val, true, nil
}

// ---------------------------------------------------------------------------
// Hinted handoff (coordinator side).

// hintKey dedups hints: one per (home shard, fingerprint).
type hintKey struct {
	home string
	fp   core.Fingerprint
}

// hint is one queued delivery: fetch fp from src, push it to home once
// home is Alive again.
type hint struct {
	src      string
	attempts int
	notUntil time.Time
}

// queueHint records that a failover answered fp for home; bounded by
// HandoffMax (overflow is counted and dropped — anti-entropy will close
// the gap regardless).
func (c *Coordinator) queueHint(home, src string, fp core.Fingerprint) {
	c.handoffMu.Lock()
	defer c.handoffMu.Unlock()
	k := hintKey{home: home, fp: fp}
	if _, ok := c.hints[k]; ok {
		return
	}
	if len(c.hints) >= c.cfg.HandoffMax {
		c.st.Add("cluster.handoff.dropped", 1)
		return
	}
	c.hints[k] = &hint{src: src}
	c.st.Add("cluster.handoff.queued", 1)
}

// handoffLoop delivers queued hints on the sweep cadence.
func (c *Coordinator) handoffLoop() {
	defer close(c.handoffDone)
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopHandoff:
			return
		case <-t.C:
			c.handoffTick()
			c.handoffDepthGauge()
		}
	}
}

func (c *Coordinator) handoffDepthGauge() {
	c.handoffMu.Lock()
	n := len(c.hints)
	c.handoffMu.Unlock()
	c.st.Set("cluster.handoff.pending", float64(n))
}

// handoffTick tries every due hint whose home shard is Alive. Work runs
// outside the hint mutex; the registry and the workers' /store/v1/
// endpoints do their own locking.
func (c *Coordinator) handoffTick() {
	now := c.cfg.Now()
	type due struct {
		k hintKey
		h *hint
	}
	c.handoffMu.Lock()
	pending := make([]due, 0, len(c.hints))
	for k, h := range c.hints {
		if now.After(h.notUntil) {
			pending = append(pending, due{k, h})
		}
	}
	c.handoffMu.Unlock()
	for _, d := range pending {
		select {
		case <-c.stopHandoff:
			return
		default:
		}
		c.deliverHint(d.k, d.h)
	}
}

// dropHint removes a hint and counts why.
func (c *Coordinator) dropHint(k hintKey, counter string) {
	c.handoffMu.Lock()
	delete(c.hints, k)
	c.handoffMu.Unlock()
	c.st.Add(counter, 1)
}

// retryHint backs a hint off (exponential from the sweep interval,
// capped by RetryMax); a hint that keeps failing past handoffAttempts is
// abandoned — anti-entropy remains the backstop.
const handoffAttempts = 8

func (c *Coordinator) retryHint(k hintKey, h *hint) {
	c.handoffMu.Lock()
	defer c.handoffMu.Unlock()
	if _, ok := c.hints[k]; !ok {
		return
	}
	h.attempts++
	if h.attempts >= handoffAttempts {
		delete(c.hints, k)
		c.st.Add("cluster.handoff.abandoned", 1)
		return
	}
	d := c.cfg.SweepInterval << uint(h.attempts)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	h.notUntil = c.cfg.Now().Add(d + c.jitter(d/2))
}

// deliverHint moves one record: fetch from the answering node, push to
// the home shard. Every outcome is terminal (delivered, miss, conflict,
// unsupported) or a retry with backoff.
func (c *Coordinator) deliverHint(k hintKey, h *hint) {
	homeRef, homeState, ok := c.reg.Get(k.home)
	if !ok {
		// The registry forgot the home shard entirely (coordinator restart);
		// nothing to deliver to.
		c.dropHint(k, "cluster.handoff.lost")
		return
	}
	if homeState != StateAlive {
		return // wait for the home shard to come back
	}
	srcRef, srcState, ok := c.reg.Get(h.src)
	if !ok || srcState == StateDead {
		// The answering node is gone before the record could be copied out;
		// anti-entropy between surviving stores is the remaining path.
		c.dropHint(k, "cluster.handoff.lost")
		return
	}
	val, found, err := c.fetchRecord(srcRef, k.fp)
	if err != nil {
		c.st.Add("cluster.handoff.error", 1)
		c.retryHint(k, h)
		return
	}
	if !found {
		// Partial results are never stored: nothing to hand off.
		c.dropHint(k, "cluster.handoff.miss")
		return
	}
	status, err := c.pushRecord(homeRef, k.fp, val)
	switch {
	case err != nil:
		c.st.Add("cluster.handoff.error", 1)
		c.retryHint(k, h)
	case status == http.StatusOK:
		c.dropHint(k, "cluster.handoff.delivered")
	case status == http.StatusConflict:
		c.dropHint(k, "cluster.handoff.conflict")
	case status == http.StatusNotFound:
		// The home shard runs without a store; it has no use for the record.
		c.dropHint(k, "cluster.handoff.unsupported")
	default:
		c.st.Add("cluster.handoff.error", 1)
		c.retryHint(k, h)
	}
}

// fetchRecord reads one record from a worker's store; found=false is the
// clean 404 miss.
func (c *Coordinator) fetchRecord(n NodeRef, fp core.Fingerprint) ([]byte, bool, error) {
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.HeartbeatInterval*4)
	defer cancel()
	u := n.Addr + "/store/v1/record?fp=" + url.QueryEscape(fp.String())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("cluster: record from %s answered %d", n.ID, resp.StatusCode)
	}
	var rec server.WireRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		return nil, false, fmt.Errorf("cluster: bad record from %s: %w", n.ID, err)
	}
	gotFP, val, err := server.DecodeWireRecord(rec)
	if err != nil || gotFP != fp {
		return nil, false, fmt.Errorf("cluster: record from %s failed verification", n.ID)
	}
	return val, true, nil
}

// pushRecord delivers one record to a worker's store.
func (c *Coordinator) pushRecord(n NodeRef, fp core.Fingerprint, val []byte) (int, error) {
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.HeartbeatInterval*4)
	defer cancel()
	b, err := json.Marshal(server.EncodeWireRecord(fp, val))
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.Addr+"/store/v1/push", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, nil
}
