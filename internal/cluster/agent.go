// agent.go is the worker side of the cluster protocol: a small loop that
// registers the node with the coordinator and then heartbeats its live
// utilization on a ticker. The agent is deliberately stateless and
// self-healing — registration retries until it lands, and a heartbeat
// answered 404 (a coordinator that restarted and lost its membership
// table) triggers a re-registration on the next tick.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/stats"
)

// AgentConfig wires a worker into a coordinator.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// ID names this node; the advertised URL is the conventional choice.
	ID string
	// Advertise is the base URL the coordinator should dispatch to.
	Advertise string
	// Capacity is the node's declared serving limits.
	Capacity Capacity
	// Snapshot produces the utilization carried by each beat (nil = zero
	// utilization).
	Snapshot func() Utilization
	// Interval is the beat period; a positive HeartbeatMS in the
	// coordinator's registration answer overrides it (default 2s).
	Interval time.Duration
	// Stats receives the agent's beat/registration counters (nil ok).
	Stats *stats.Stats
	// Client performs the HTTP calls (nil = a client with a per-call
	// timeout of Interval).
	Client *http.Client
}

// Agent is a running registration + heartbeat loop. Construct with
// StartAgent; Stop it before shutting the worker down.
type Agent struct {
	cfg    AgentConfig
	client *http.Client

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartAgent launches the loop: register (retrying until it succeeds),
// then beat every interval.
func StartAgent(cfg AgentConfig) *Agent {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.ID == "" {
		cfg.ID = cfg.Advertise
	}
	if cfg.Snapshot == nil {
		cfg.Snapshot = func() Utilization { return Utilization{} }
	}
	if cfg.Client == nil {
		// Private transport so Stop can release idle-connection goroutines.
		cfg.Client = &http.Client{Timeout: cfg.Interval, Transport: &http.Transport{}}
	}
	a := &Agent{cfg: cfg, client: cfg.Client, stop: make(chan struct{}), done: make(chan struct{})}
	go a.loop()
	return a
}

// Stop halts the loop and waits for it to exit. Idempotent.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
	a.client.CloseIdleConnections()
}

func (a *Agent) loop() {
	defer close(a.done)
	registered := a.register()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			if !registered {
				registered = a.register()
				continue
			}
			registered = a.beat()
		}
	}
}

// register announces the node; a positive heartbeat_ms in the answer
// adopts the coordinator's beat period.
func (a *Agent) register() bool {
	var resp RegisterResponse
	status, err := a.post("/cluster/v1/register", RegisterRequest{
		ID: a.cfg.ID, Addr: a.cfg.Advertise, Capacity: a.cfg.Capacity,
	}, &resp)
	if err != nil || status != http.StatusOK {
		a.cfg.Stats.Add("cluster.agent.register.error", 1)
		return false
	}
	a.cfg.Stats.Add("cluster.agent.registered", 1)
	return true
}

// beat sends one heartbeat; false means the agent must re-register (the
// coordinator answered 404 or was unreachable — it may have restarted).
func (a *Agent) beat() bool {
	if err := chaos.Step(chaos.SiteClusterHeartbeat); err != nil {
		// An injected heartbeat fault drops the beat on the floor, the
		// signature of a lossy network; the coordinator's health tracker
		// must degrade the node to Suspect, then Dead.
		a.cfg.Stats.Add("cluster.agent.beat.dropped", 1)
		return true
	}
	status, err := a.post("/cluster/v1/heartbeat", HeartbeatRequest{
		ID: a.cfg.ID, Util: a.cfg.Snapshot(),
	}, nil)
	switch {
	case err != nil:
		a.cfg.Stats.Add("cluster.agent.beat.error", 1)
		return false
	case status == http.StatusNotFound:
		a.cfg.Stats.Add("cluster.agent.beat.unknown", 1)
		return false
	case status != http.StatusOK:
		a.cfg.Stats.Add("cluster.agent.beat.error", 1)
		return true
	}
	a.cfg.Stats.Add("cluster.agent.beats", 1)
	return true
}

func (a *Agent) post(path string, v, out any) (int, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := a.client.Post(a.cfg.Coordinator+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return 0, err
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, fmt.Errorf("cluster: bad %s answer: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Killable wraps a worker's handler with the cluster.worker.kill chaos
// site: when the site fires, kill is invoked and the in-flight exchange
// is aborted without a response (http.ErrAbortHandler severs the
// connection) — the observable signature of a node crashing mid-job. In
// hltsd kill exits the process; the cluster sweep's kill tears down the
// test worker's listener. kill may be invoked from concurrent requests
// and must be idempotent.
func Killable(h http.Handler, kill func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, fired := chaos.Fire(chaos.SiteClusterWorkerKill); fired {
			kill()
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	})
}
