package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
	"repro/internal/store"
)

// testWorker is a real hltsd serving stack mounted as a cluster worker.
type testWorker struct {
	srv *server.Server
	ts  *httptest.Server
}

func newWorker(t *testing.T, cfg server.Config) *testWorker {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("worker drain: %v", err)
		}
	})
	return &testWorker{srv: srv, ts: ts}
}

// rawReq performs one request without failing the test on error, so it
// is safe from helper goroutines.
func rawReq(client *http.Client, method, url, body string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, resp.Header, payload, err
	}
	return resp.StatusCode, resp.Header, payload, nil
}

func doReq(t *testing.T, client *http.Client, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	status, hdr, payload, err := rawReq(client, method, url, body)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	return status, hdr, payload
}

// settle asserts the goroutine count returns to the baseline — the
// no-leak half of the drain contract, mirroring the server suite.
func settle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked (%d > baseline %d)\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestCoordinatorProxiesByteIdentical: a client talking to the
// coordinator gets byte-for-byte what it would get from a worker
// directly, on every proxied endpoint — the cluster layer is invisible
// in the payload.
func TestCoordinatorProxiesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("proxy integration test is too slow for -short")
	}
	ref := newWorker(t, server.Config{})
	w1 := newWorker(t, server.Config{})
	w2 := newWorker(t, server.Config{})

	// Liveness timing is not under test here: give the directly-registered
	// (agent-less) workers a window no subtest will outlive.
	cfg := fastConfig()
	cfg.HeartbeatInterval = 10 * time.Second
	cfg.DeadAfter = 10 * time.Minute
	c := newTestCoordinator(t, cfg)
	c.reg.Register("w1", w1.ts.URL, Capacity{Jobs: 2, QueueDepth: 64})
	c.reg.Register("w2", w2.ts.URL, Capacity{Jobs: 2, QueueDepth: 64})
	cts := httptest.NewServer(c.Handler())
	t.Cleanup(cts.Close)

	cases := []struct {
		name, method, path, body string
	}{
		{"synthesize", "POST", "/v1/synthesize", `{"bench":"ex","width":4}`},
		{"synthesize-camad", "POST", "/v1/synthesize", `{"bench":"ex","width":8,"method":"camad"}`},
		{"testdesign", "POST", "/v1/testdesign", `{"bench":"ex","width":4,"faults":60}`},
		{"table", "GET", "/v1/table/ex?widths=4&faults=60", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, want := doReq(t, ref.ts.Client(), tc.method, ref.ts.URL+tc.path, tc.body)
			status, hdr, got := doReq(t, cts.Client(), tc.method, cts.URL+tc.path, tc.body)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, got)
			}
			if string(got) != string(want) {
				t.Fatalf("proxied body differs from direct worker body:\nproxied: %.200s\ndirect:  %.200s", got, want)
			}
			if node := hdr.Get("X-Hlts-Node"); node != "w1" && node != "w2" {
				t.Errorf("X-Hlts-Node = %q, want w1 or w2", node)
			}
		})
	}
}

// TestCoordinatorEdgeValidation: client errors are answered at the edge
// (bad JSON 400, oversized body 413, bad registration 400, unknown
// heartbeat 404) and a cluster with no workers degrades to a typed 503
// with Retry-After — never a hang.
func TestCoordinatorEdgeValidation(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxBodyBytes = 256
	c := newTestCoordinator(t, cfg)
	cts := httptest.NewServer(c.Handler())
	t.Cleanup(cts.Close)
	cl := cts.Client()

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", "POST", "/v1/synthesize", `{"bench":`, 400},
		{"unknown field", "POST", "/v1/synthesize", `{"bench":"ex","width":4,"bogus":1}`, 400},
		{"bad bench", "POST", "/v1/synthesize", `{"bench":"nope","width":4}`, 400},
		{"oversized body", "POST", "/v1/synthesize", `{"vhdl":"` + strings.Repeat("x", 512) + `"}`, 413},
		{"register no addr", "POST", "/cluster/v1/register", `{"id":"a"}`, 400},
		{"register relative addr", "POST", "/cluster/v1/register", `{"id":"a","addr":"nowhere"}`, 400},
		{"heartbeat unknown", "POST", "/cluster/v1/heartbeat", `{"id":"ghost"}`, 404},
		{"bad table deadline", "GET", "/v1/table/ex?deadline_ms=-5", "", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := doReq(t, cl, tc.method, cts.URL+tc.path, tc.body)
			if status != tc.want {
				t.Fatalf("status %d, want %d (%s)", status, tc.want, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("error payload not typed: %s", body)
			}
		})
	}

	// A valid job with no workers registered: typed 503 + Retry-After.
	status, hdr, body := doReq(t, cl, "POST", cts.URL+"/v1/synthesize", `{"bench":"ex","width":4}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("no-workers status %d, want 503 (%s)", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("no-workers 503 missing Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "no live workers") {
		t.Errorf("no-workers error not typed: %s", body)
	}
}

// TestCoordinatorDrain is the shutdown contract: concurrent double Drain
// (the double-SIGTERM path) returns on both calls, the in-flight proxied
// job held past the drain deadline is answered a typed 503 (never hung),
// new work is rejected 503 while draining, registry watchers close, and
// no goroutine outlives the drain.
func TestCoordinatorDrain(t *testing.T) {
	base := runtime.NumGoroutine()

	c := New(fastConfig())
	events := c.Registry().Watch()

	release := make(chan struct{})
	started := make(chan struct{}, 4)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		select {
		case <-release:
			w.Write([]byte("late"))
		case <-r.Context().Done():
		}
	}))
	c.reg.Register("slow", slow.URL, Capacity{})
	cts := httptest.NewServer(c.Handler())

	// Hold one proxied job in flight on the blocking worker.
	type answer struct {
		status int
		hdr    http.Header
		err    error
	}
	got := make(chan answer, 1)
	go func() {
		status, hdr, _, err := rawReq(cts.Client(), "POST", cts.URL+"/v1/synthesize", `{"bench":"ex","width":4}`)
		got <- answer{status, hdr, err}
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("proxied request never reached the worker")
	}

	// Concurrent double drain under a deadline the held job will blow.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Drain(ctx)
		}(i)
	}
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Error("drain under a blown deadline reported success from both calls")
	}

	// The held request was answered — a typed 503 with Retry-After, not a
	// hung connection.
	select {
	case a := <-got:
		if a.err != nil {
			t.Fatalf("held request errored instead of degrading: %v", a.err)
		}
		if a.status != http.StatusServiceUnavailable {
			t.Errorf("held request answered %d, want 503", a.status)
		}
		if a.hdr.Get("Retry-After") == "" {
			t.Error("degraded 503 missing Retry-After")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("held request hung through the drain")
	}

	// New work while drained: immediate 503.
	status, hdr, _ := doReq(t, cts.Client(), "POST", cts.URL+"/v1/synthesize", `{"bench":"ex","width":4}`)
	if status != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("post-drain request: status %d, Retry-After %q", status, hdr.Get("Retry-After"))
	}
	// Registration while drained: also 503.
	status, _, _ = doReq(t, cts.Client(), "POST", cts.URL+"/cluster/v1/register", `{"id":"x","addr":"http://127.0.0.1:1"}`)
	if status != http.StatusServiceUnavailable {
		t.Errorf("post-drain register: status %d, want 503", status)
	}

	// Watcher channels are closed by the drain (drain the buffered
	// transition events first).
	closed := false
	for !closed {
		select {
		case _, open := <-events:
			closed = !open
		case <-time.After(5 * time.Second):
			t.Fatal("watcher channel not closed by drain")
		}
	}

	close(release)
	slow.Close()
	cts.Close()
	settle(t, base)
}

// TestClusterStoreResume: two workers sharing a persistent result store.
// Worker A computes a job and dies; the identical retried request fails
// over to worker B, which serves it from the shared durable state —
// byte-identical, without recomputing.
func TestClusterStoreResume(t *testing.T) {
	if testing.Short() {
		t.Skip("store-resume integration test is too slow for -short")
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	body := `{"bench":"ex","width":4}`
	// Steer the fingerprint's rendezvous owner to worker A so the retry
	// genuinely exercises the failover path, not just placement luck.
	var req server.SynthesizeRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	n, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	fp := n.Fingerprint()
	idA, idB := "worker-a", "worker-b"
	if owner, _ := Owner(fp, []string{idA, idB}); owner != idA {
		idA, idB = idB, idA
	}

	c := newTestCoordinator(t, fastConfig())
	cts := httptest.NewServer(c.Handler())
	t.Cleanup(cts.Close)

	// Worker A computes the job once; the result lands in the store.
	srvA := server.New(server.Config{Store: st})
	tsA := httptest.NewServer(srvA.Handler())
	c.reg.Register(idA, tsA.URL, Capacity{})
	status, _, first := doReq(t, cts.Client(), "POST", cts.URL+"/v1/synthesize", body)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d (%s)", status, first)
	}
	if runs := srvA.Stats().Value("server.jobs.run"); runs != 1 {
		t.Fatalf("worker A ran %d jobs, want 1", runs)
	}

	// A dies mid-life: listener gone, its durable state survives.
	tsA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srvA.Drain(ctx); err != nil {
		t.Fatalf("drain A: %v", err)
	}

	// B boots against the same store and registers; the retried request
	// fails over to it and is served from durable state — byte-identical,
	// zero recomputation.
	wB := newWorker(t, server.Config{Store: st})
	c.reg.Register(idB, wB.ts.URL, Capacity{})
	status, hdr, second := doReq(t, cts.Client(), "POST", cts.URL+"/v1/synthesize", body)
	if status != http.StatusOK {
		t.Fatalf("retried request: status %d (%s)", status, second)
	}
	if string(second) != string(first) {
		t.Fatalf("resumed answer differs from original:\nfirst:  %.200s\nsecond: %.200s", first, second)
	}
	if node := hdr.Get("X-Hlts-Node"); node != idB {
		t.Errorf("retried request served by %q, want %q", node, idB)
	}
	if runs := wB.srv.Stats().Value("server.jobs.run"); runs != 0 {
		t.Errorf("worker B recomputed (%d jobs run); want 0 (durable-state resume)", runs)
	}
	// The dead node was demoted by the dispatch failure.
	for _, node := range c.reg.Nodes() {
		if node.ID == idA && node.State == "alive" {
			t.Errorf("dead worker still alive in the registry")
		}
	}
}

// TestAgentLifecycle: the agent registers, beats utilization into the
// registry, and re-registers when the coordinator forgets it (the
// restart path); Stop is idempotent.
func TestAgentLifecycle(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	cts := httptest.NewServer(c.Handler())
	t.Cleanup(cts.Close)

	a := StartAgent(AgentConfig{
		Coordinator: cts.URL,
		ID:          "w1",
		Advertise:   "http://127.0.0.1:1",
		Capacity:    Capacity{Jobs: 2, Workers: 4, QueueDepth: 8},
		Interval:    5 * time.Millisecond,
		Snapshot:    func() Utilization { return Utilization{Queued: 3, Inflight: 1} },
	})
	deadline := time.Now().Add(5 * time.Second)
	seen := false
	for time.Now().Before(deadline) && !seen {
		for _, n := range c.reg.Nodes() {
			if n.ID == "w1" && n.State == "alive" && n.Util.Queued == 3 {
				seen = true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !seen {
		t.Fatalf("agent never registered + beat utilization: %+v", c.reg.Nodes())
	}
	a.Stop()
	a.Stop() // idempotent
}

// TestAgentReRegistersAfter404: a heartbeat answered 404 (the coordinator
// restarted and lost its table) triggers re-registration on the next
// tick.
func TestAgentReRegistersAfter404(t *testing.T) {
	var regs, beats atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/register", func(w http.ResponseWriter, r *http.Request) {
		regs.Add(1)
		writeJSON(w, http.StatusOK, RegisterResponse{Status: "ok"})
	})
	mux.HandleFunc("POST /cluster/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		beats.Add(1)
		writeJSON(w, http.StatusNotFound, errorBody{Error: ErrUnknownNode.Error()})
	})
	mock := httptest.NewServer(mux)
	t.Cleanup(mock.Close)

	a := StartAgent(AgentConfig{
		Coordinator: mock.URL, ID: "w1", Advertise: "http://127.0.0.1:1",
		Interval: 5 * time.Millisecond,
	})
	defer a.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if regs.Load() >= 2 && beats.Load() >= 1 {
			return // registered, beat 404'd, re-registered: the loop self-heals
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("agent did not re-register after 404 (regs=%d beats=%d)", regs.Load(), beats.Load())
}

// TestKillable: when the cluster.worker.kill site fires, the kill hook
// runs and the exchange is aborted without a response — the client sees
// a severed connection, exactly what a crashing node looks like.
func TestKillable(t *testing.T) {
	in := chaos.New(1).On(chaos.SiteClusterWorkerKill, chaos.Rule{Action: chaos.ActError})
	restore := chaos.Install(in)
	defer restore()

	var killed atomic.Int64
	ts := httptest.NewServer(Killable(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("alive"))
	}), func() { killed.Add(1) }))
	t.Cleanup(ts.Close)

	resp, err := ts.Client().Get(ts.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("killed worker answered %d; want a severed connection", resp.StatusCode)
	}
	if killed.Load() != 1 {
		t.Fatalf("kill hook ran %d times, want 1", killed.Load())
	}
	if in.Fired(chaos.SiteClusterWorkerKill) != 1 {
		t.Fatalf("site fired %d times, want 1", in.Fired(chaos.SiteClusterWorkerKill))
	}
}
