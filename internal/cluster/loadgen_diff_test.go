// The hltsload differential test: a repeat-heavy generated workload
// driven through a coordinator fronting two workers must answer
// byte-identically to the same schedule driven at a single direct
// worker — the serving topology must be invisible in the payload — and
// the cluster must actually deduplicate the repeats: total pipeline
// executions equal the schedule's unique keys, everything else served
// by the workers' caches or coalesced onto in-flight twins.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/server"
)

func TestLoadRepeatHeavyClusterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a coordinator and three workers; skipped in -short")
	}

	sched, err := loadgen.BuildSchedule(loadgen.ScheduleOptions{
		Profile: loadgen.ProfileRepeat, Seed: 9, Rate: 400, Requests: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	unique := sched.UniqueKeys()

	// Reference: the identical schedule against one direct worker.
	direct := server.New(server.Config{Jobs: 2, Workers: 4, CacheSize: 64})
	dts := httptest.NewServer(direct.Handler())
	defer func() {
		dts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := direct.Drain(ctx); err != nil {
			t.Errorf("direct drain: %v", err)
		}
	}()
	ref, err := loadgen.Run(context.Background(), sched, loadgen.Options{
		BaseURL: dts.URL, Client: dts.Client(), Concurrency: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ref.Classes[loadgen.ClassOK]; got != len(sched.Requests) {
		t.Fatalf("direct run: ok=%d of %d (classes %v)", got, len(sched.Requests), ref.Classes)
	}

	// Cluster: coordinator + two registered workers. Liveness is made
	// deliberately tolerant: a scheduler stall under full-suite load must
	// not demote a healthy worker and flap key placement mid-run.
	cfg := fastConfig()
	cfg.MaxDeadline = 60 * time.Second
	cfg.SuspectBeats = 40
	cfg.DeadAfter = 10 * time.Second
	c := New(cfg)
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()

	type worker struct {
		srv   *server.Server
		ts    *httptest.Server
		agent *Agent
	}
	workers := make([]*worker, 2)
	for i := range workers {
		w := &worker{srv: server.New(server.Config{Jobs: 2, Workers: 4, CacheSize: 64})}
		w.ts = httptest.NewServer(w.srv.Handler())
		w.agent = StartAgent(AgentConfig{
			Coordinator: cts.URL,
			ID:          fmt.Sprintf("w%d", i),
			Advertise:   w.ts.URL,
			Capacity:    Capacity{Jobs: 2, Workers: 4, QueueDepth: 64},
			Interval:    25 * time.Millisecond,
		})
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			w.agent.Stop()
			w.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := w.srv.Drain(ctx); err != nil {
				t.Errorf("worker drain: %v", err)
			}
			cancel()
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		alive := 0
		for _, n := range c.reg.Nodes() {
			if n.State == "alive" {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never registered: %+v", c.reg.Nodes())
		}
		time.Sleep(2 * time.Millisecond)
	}

	got, err := loadgen.Run(context.Background(), sched, loadgen.Options{
		BaseURL: cts.URL, Client: cts.Client(), Concurrency: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := got.Classes[loadgen.ClassOK]; n != len(sched.Requests) {
		t.Fatalf("cluster run: ok=%d of %d (classes %v)", n, len(sched.Requests), got.Classes)
	}
	if got.IdentityViolations != 0 {
		t.Errorf("cluster run: %d identity violations within the run", got.IdentityViolations)
	}

	// Byte-identity across topologies, key by key.
	if len(got.Bodies) != len(ref.Bodies) {
		t.Fatalf("key sets differ: cluster %d, direct %d", len(got.Bodies), len(ref.Bodies))
	}
	for key, want := range ref.Bodies {
		body, ok := got.Bodies[key]
		if !ok {
			t.Fatalf("cluster run missing key %q", key)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("response for %.80q differs between cluster and direct:\n cluster %s\n direct  %s", key, body, want)
		}
	}

	// Deduplication: rendezvous placement sends every repeat of a key to
	// the same worker, so the pipeline runs once per unique key and every
	// other response comes from the LRU or coalesces onto an in-flight
	// twin. Conservation (runs + hits == requests) is exact; the run
	// count itself gets a small allowance because a heartbeat delayed by
	// machine load can flap one key's placement onto the other worker,
	// which recomputes it (byte-identically — that is checked above).
	var jobsRun, cacheHits, coalesce int64
	for _, w := range workers {
		st := w.srv.Stats()
		jobsRun += st.Value("server.jobs.run")
		cacheHits += st.Value("server.cache.hit")
		coalesce += st.Value("server.coalesce.hit")
	}
	total := int64(len(sched.Requests))
	if served := cacheHits + coalesce + jobsRun; served != total {
		t.Errorf("runs %d + cache %d + coalesce %d = %d, want %d (every request accounted for)",
			jobsRun, cacheHits, coalesce, served, total)
	}
	if jobsRun < int64(unique) || jobsRun > int64(unique)+3 {
		t.Errorf("cluster pipeline runs = %d, want %d (one per unique key, small placement-flap allowance)",
			jobsRun, unique)
	}
	if jobsRun != int64(unique) {
		t.Logf("note: %d pipeline runs for %d unique keys (placement flap under load)", jobsRun, unique)
	}
}
