// placer.go is the placement function: rendezvous (highest-random-weight)
// hashing of request fingerprints onto node IDs. Every request gets a
// deterministic total order over the current membership:
//
//   - the top-ranked node owns the fingerprint, so identical requests land
//     on the same shard and coalesce there;
//   - failover is "try the next rank", with no coordination state;
//   - membership change is minimally disruptive: a departing node only
//     moves the keys it owned, a joining node only claims the keys it now
//     wins — the property test in placer_test.go pins both.
package cluster

import (
	"hash/fnv"
	"sort"

	"repro/internal/core"
)

// score is the rendezvous weight of (fingerprint, node): an FNV-64a hash
// of the pair pushed through a finalizing mix so nearby IDs decorrelate.
// Pure and process-independent — every coordinator ranks identically.
func score(fp core.Fingerprint, id string) uint64 {
	h := fnv.New64a()
	h.Write(fp[:])
	h.Write([]byte(id))
	x := h.Sum64()
	// splitmix64 finalizer (Steele et al.), same mix the chaos layer uses.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rank orders node IDs for a fingerprint, best first. Ties (possible only
// with duplicated IDs) break lexicographically so the order is total.
func Rank(fp core.Fingerprint, ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := score(fp, out[i]), score(fp, out[j])
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// Owner returns the top-ranked node for a fingerprint, or false when the
// membership is empty.
func Owner(fp core.Fingerprint, ids []string) (string, bool) {
	if len(ids) == 0 {
		return "", false
	}
	best := ids[0]
	bestScore := score(fp, best)
	for _, id := range ids[1:] {
		if s := score(fp, id); s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best, true
}
