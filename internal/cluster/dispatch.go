// dispatch.go is the failover engine: given a fingerprint and the raw
// request, try the rendezvous-ranked live nodes in order, retrying
// across full passes with capped exponential backoff + jitter until a
// node answers, the retry budget runs out, or the request deadline
// expires. A worker 429/503 is load-shedding, not an answer: its
// Retry-After hint is parsed and honored as the floor of the next
// backoff sleep. Every transport failure demotes the node to Suspect so
// the ranking reflects what dispatch just learned.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

// Dispatch failures; both degrade to a typed 503 + Retry-After at the
// serving layer.
var (
	// ErrNoWorkers means the registry has no Alive or Suspect node left.
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrRetriesExhausted means every pass over the ranking failed.
	ErrRetriesExhausted = errors.New("cluster: retry budget exhausted")
)

// proxyReq is the raw material of a forward: the original request bytes,
// re-sent verbatim so worker-side validation and deadline_ms semantics
// are identical to a direct hit.
type proxyReq struct {
	method string
	path   string
	query  string
	body   []byte
}

// upstream is a worker's answer, relayed verbatim to the client. node is
// the worker that answered; home is the fingerprint's rendezvous owner
// at dispatch time — when they differ, the answer came from a failover
// and the hinted-handoff queue owes the home shard a copy of the record.
type upstream struct {
	status int
	header http.Header
	body   []byte
	node   string
	home   string
}

// dispatch runs the retry loop. It returns a worker answer (any status
// except 429/503 load-shedding), or an error: ctx.Err() when the
// deadline/client cut it short, ErrRetriesExhausted / ErrNoWorkers when
// the cluster could not take the job.
func (c *Coordinator) dispatch(ctx context.Context, fp core.Fingerprint, pr proxyReq) (*upstream, error) {
	backoff := c.cfg.RetryBase
	sawNode := false
	home := ""
	for round := 0; ; round++ {
		nodes := c.reg.Ranked(fp)
		if home == "" && len(nodes) > 0 {
			// The first-ranked node of the first pass is the fingerprint's
			// home shard; remembered across passes for the handoff hint.
			home = nodes[0].ID
		}
		var hint time.Duration
		for _, n := range nodes {
			sawNode = true
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := chaos.Step(chaos.SiteClusterDispatch); err != nil {
				// An injected dispatch fault is a transport failure: demote the
				// node and fail over exactly like a real one.
				c.st.Add("cluster.dispatch.error", 1)
				c.reg.MarkSuspect(n.ID)
				continue
			}
			up, err := c.forward(ctx, n, pr)
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				c.st.Add("cluster.dispatch.error", 1)
				c.reg.MarkSuspect(n.ID)
				continue
			}
			if up.status == http.StatusTooManyRequests || up.status == http.StatusServiceUnavailable {
				// The worker is full or draining: honor its hint and let the
				// next-ranked node take the job this pass.
				c.st.Add("cluster.dispatch.pushback", 1)
				if h := parseRetryAfter(up.header); h > hint {
					hint = h
				}
				continue
			}
			c.st.Add("cluster.dispatch.ok", 1)
			if round > 0 {
				c.st.Add("cluster.dispatch.recovered", 1)
			}
			up.home = home
			return up, nil
		}
		if round+1 >= c.cfg.Rounds {
			if !sawNode {
				return nil, ErrNoWorkers
			}
			return nil, ErrRetriesExhausted
		}
		// Exponential backoff with full jitter, floored by the worker hint,
		// capped by RetryMax, and always bounded by the request deadline.
		sleep := backoff + c.jitter(backoff)
		if hint > sleep {
			sleep = hint
		}
		if sleep > c.cfg.RetryMax {
			sleep = c.cfg.RetryMax
		}
		if err := sleepCtx(ctx, sleep); err != nil {
			return nil, err
		}
		backoff *= 2
		if backoff > c.cfg.RetryMax {
			backoff = c.cfg.RetryMax
		}
	}
}

// forward sends the request to one node and reads the full answer. Any
// transport-level failure (dial, abrupt close mid-body, i.e. a node dying
// mid-job) comes back as an error — the caller's cue to fail over.
func (c *Coordinator) forward(ctx context.Context, n NodeRef, pr proxyReq) (*upstream, error) {
	u := n.Addr + pr.path
	if pr.query != "" {
		u += "?" + pr.query
	}
	var body io.Reader
	if pr.body != nil {
		body = bytes.NewReader(pr.body)
	}
	req, err := http.NewRequestWithContext(ctx, pr.method, u, body)
	if err != nil {
		return nil, fmt.Errorf("cluster: build forward to %s: %w", n.ID, err)
	}
	if pr.body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: read answer from %s: %w", n.ID, err)
	}
	return &upstream{status: resp.StatusCode, header: resp.Header, body: b, node: n.ID}, nil
}

// jitter draws a uniform duration in [0, d] from the coordinator's
// seeded source.
func (c *Coordinator) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Int63n(int64(d) + 1))
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads an integral-seconds Retry-After header (the only
// form our servers emit); absent or malformed values are 0.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
