// The cluster chaos sweep — the acceptance test of the fault-tolerant
// deployment: a coordinator fronting two real workers whose handlers are
// wrapped with the cluster.worker.kill site. Across seeds, a worker dies
// abruptly mid-job (listener torn down, in-flight connections severed)
// and later fires abort individual exchanges; the contract is that NO
// acknowledged request is ever lost — every accepted job comes back
// either 200 byte-identical to a direct single-worker computation or as
// a typed 503 with Retry-After, and the drain afterwards leaks nothing.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
)

// sweepReq is one workload item; want is the reference body computed by
// an unwrapped worker outside the chaos blast radius.
type sweepReq struct {
	method, path, body string
	want               []byte
}

func clusterSweepWorkload(t *testing.T, ref *httptest.Server) []sweepReq {
	t.Helper()
	reqs := []sweepReq{
		{"POST", "/v1/synthesize", `{"bench":"ex","width":4}`, nil},
		{"POST", "/v1/synthesize", `{"bench":"ex","width":8}`, nil},
		{"POST", "/v1/synthesize", `{"bench":"ex","width":8,"method":"camad"}`, nil},
		{"POST", "/v1/synthesize", `{"bench":"diffeq","width":8}`, nil},
		{"POST", "/v1/testdesign", `{"bench":"ex","width":4,"faults":40}`, nil},
		{"GET", "/v1/table/ex?widths=4&faults=40", "", nil},
	}
	for i := range reqs {
		status, _, body, err := rawReq(ref.Client(), reqs[i].method, ref.URL+reqs[i].path, reqs[i].body)
		if err != nil || status != http.StatusOK {
			t.Fatalf("reference %s %s: status %d err %v", reqs[i].method, reqs[i].path, status, err)
		}
		reqs[i].want = body
	}
	return reqs
}

// TestClusterSweepWorkerKill runs the kill sweep over 8 seeds with 2
// workers under each, asserting zero lost acknowledged requests.
func TestClusterSweepWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep is too slow for -short")
	}

	// The reference worker lives outside the sweep: never wrapped in
	// Killable, never registered, so the armed kill site cannot touch it.
	refSrv := server.New(server.Config{})
	refTS := httptest.NewServer(refSrv.Handler())
	defer func() {
		refTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := refSrv.Drain(ctx); err != nil {
			t.Errorf("reference drain: %v", err)
		}
	}()
	workload := clusterSweepWorkload(t, refTS)

	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runKillSweep(t, seed, workload)
		})
	}
}

func runKillSweep(t *testing.T, seed int64, workload []sweepReq) {
	// Baseline inside the subtest: the subtest's own goroutine and the
	// long-lived reference-worker goroutines are part of it.
	base := runtime.NumGoroutine()
	in := chaos.New(seed).On(chaos.SiteClusterWorkerKill, chaos.Rule{Action: chaos.ActError, Prob: 0.25})
	restore := chaos.Install(in)
	defer restore()

	cfg := fastConfig()
	cfg.Rounds = 6
	cfg.RetryBase = 2 * time.Millisecond
	cfg.RetryMax = 20 * time.Millisecond
	cfg.MaxDeadline = 60 * time.Second
	cfg.JitterSeed = seed
	c := New(cfg)
	cts := httptest.NewServer(c.Handler())

	// Two real workers, each killable: the FIRST fire of the kill site
	// tears one down for good (listener closed, in-flight connections
	// severed, heartbeats stopped — a crashed node); later fires abort
	// just their own exchange, a transient the retry loop must absorb.
	type worker struct {
		srv   *server.Server
		ts    *httptest.Server
		agent *Agent
	}
	var killOnce sync.Once
	workers := make([]*worker, 2)
	for i := range workers {
		w := &worker{srv: server.New(server.Config{Jobs: 2, Workers: 4})}
		w.ts = httptest.NewUnstartedServer(nil)
		w.ts.Config.Handler = Killable(w.srv.Handler(), func() {
			killOnce.Do(func() {
				w.ts.Listener.Close()
				w.ts.CloseClientConnections()
				go w.agent.Stop()
			})
		})
		w.ts.Start()
		w.agent = StartAgent(AgentConfig{
			Coordinator: cts.URL,
			ID:          fmt.Sprintf("w%d", i),
			Advertise:   w.ts.URL,
			Capacity:    Capacity{Jobs: 2, Workers: 4, QueueDepth: 64},
			Interval:    25 * time.Millisecond,
		})
		workers[i] = w
	}

	// Both workers registered before load starts.
	deadline := time.Now().Add(10 * time.Second)
	for {
		alive := 0
		for _, n := range c.reg.Nodes() {
			if n.State == "alive" {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never registered: %+v", c.reg.Nodes())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Mixed concurrent load: 4 passes over the workload. Every request
	// must complete with a verdict — 200 byte-identical or typed 503.
	type verdict struct {
		req  sweepReq
		err  error
		code int
		hdr  http.Header
		body []byte
	}
	const passes = 4
	results := make(chan verdict, passes*len(workload))
	var wg sync.WaitGroup
	for p := 0; p < passes; p++ {
		for _, rq := range workload {
			wg.Add(1)
			go func(rq sweepReq) {
				defer wg.Done()
				code, hdr, body, err := rawReq(cts.Client(), rq.method, cts.URL+rq.path, rq.body)
				results <- verdict{rq, err, code, hdr, body}
			}(rq)
		}
	}
	wg.Wait()
	close(results)

	complete, degraded := 0, 0
	for v := range results {
		if v.err != nil {
			// The coordinator is never killed: a transport error to it is a
			// lost acknowledged request.
			t.Errorf("request %s %s dropped: %v", v.req.method, v.req.path, v.err)
			continue
		}
		switch v.code {
		case http.StatusOK:
			complete++
			if string(v.body) != string(v.req.want) {
				t.Errorf("%s %s: body differs from single-worker reference\ngot:  %.160s\nwant: %.160s",
					v.req.method, v.req.path, v.body, v.req.want)
			}
		case http.StatusServiceUnavailable:
			degraded++
			if v.hdr.Get("Retry-After") == "" {
				t.Errorf("%s %s: degraded 503 without Retry-After", v.req.method, v.req.path)
			}
			var eb errorBody
			if err := json.Unmarshal(v.body, &eb); err != nil || eb.Error == "" {
				t.Errorf("%s %s: degraded 503 not typed: %s", v.req.method, v.req.path, v.body)
			}
		default:
			t.Errorf("%s %s: unexpected status %d: %.200s", v.req.method, v.req.path, v.code, v.body)
		}
	}
	if complete == 0 {
		t.Error("no request completed — the failover path never carried a job")
	}
	if in.Fired(chaos.SiteClusterWorkerKill) == 0 {
		t.Errorf("kill site never fired over %d hits — the sweep tested nothing", in.Hits(chaos.SiteClusterWorkerKill))
	}
	t.Logf("seed=%d: %d complete, %d degraded, kill site hits=%d fired=%d",
		seed, complete, degraded, in.Hits(chaos.SiteClusterWorkerKill), in.Fired(chaos.SiteClusterWorkerKill))

	// Full teardown: agents, coordinator, workers — then the goroutine
	// count must return to the pre-sweep baseline.
	for _, w := range workers {
		w.agent.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Errorf("coordinator drain: %v", err)
	}
	cts.Close()
	for _, w := range workers {
		w.ts.Close()
		if err := w.srv.Drain(ctx); err != nil {
			t.Errorf("worker drain: %v", err)
		}
	}
	settle(t, base)
}
