// registry.go is the coordinator's membership table: which workers
// exist, how loaded they are, and whether they are believed alive. The
// liveness state machine is deliberately small:
//
//	Register  ───────────────▶ Alive
//	Alive     ── SuspectAfter without a beat, or a dispatch failure ──▶ Suspect
//	Suspect   ── a beat arrives ──▶ Alive
//	Suspect   ── DeadAfter without a beat ──▶ Dead
//	Dead      ── re-registration or a beat ──▶ Alive
//
// Dead nodes stay visible in Nodes() (operators want to see what died)
// but are excluded from placement. Time is injected so the transitions
// are unit-testable without sleeping.
package cluster

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// State is a node's liveness according to the health tracker.
type State int

// The liveness states.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// ErrUnknownNode rejects a heartbeat from a node the registry has never
// seen (or forgot); the agent answers by re-registering.
var ErrUnknownNode = errors.New("cluster: unknown node")

// Event is one liveness transition, delivered to Watch subscribers.
type Event struct {
	ID       string
	From, To State
}

// NodeRef is the placement view of a live node.
type NodeRef struct {
	ID   string
	Addr string
}

type member struct {
	id, addr string
	capacity Capacity
	util     Utilization
	state    State
	lastBeat time.Time
}

// Registry is the coordinator's membership and health table. All methods
// are safe for concurrent use.
type Registry struct {
	suspectAfter time.Duration
	deadAfter    time.Duration
	now          func() time.Time

	mu       sync.Mutex
	members  map[string]*member
	watchers map[int]chan Event
	nextW    int
	closed   bool
}

// NewRegistry builds a registry. A node is Suspect after suspectAfter
// without a beat and Dead after deadAfter; now is the clock (nil =
// time.Now), injectable for deterministic tests.
func NewRegistry(suspectAfter, deadAfter time.Duration, now func() time.Time) *Registry {
	if now == nil {
		now = time.Now
	}
	if suspectAfter <= 0 {
		suspectAfter = 5 * time.Second
	}
	if deadAfter <= suspectAfter {
		deadAfter = 4 * suspectAfter
	}
	return &Registry{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		now:          now,
		members:      map[string]*member{},
		watchers:     map[int]chan Event{},
	}
}

// Register upserts a node as Alive with a fresh beat. Re-registration is
// how a restarted (or previously declared dead) worker rejoins.
func (r *Registry) Register(id, addr string, c Capacity) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	m := r.members[id]
	if m == nil {
		m = &member{id: id, state: StateAlive}
		r.members[id] = m
		r.emitLocked(Event{ID: id, From: StateDead, To: StateAlive})
	} else if m.state != StateAlive {
		r.emitLocked(Event{ID: id, From: m.state, To: StateAlive})
		m.state = StateAlive
	}
	m.addr = addr
	m.capacity = c
	m.lastBeat = r.now()
}

// Heartbeat refreshes a node's beat and utilization, restoring Suspect
// and Dead nodes to Alive. An unknown node is ErrUnknownNode — the agent
// must re-register (the coordinator may have restarted and lost its
// table).
func (r *Registry) Heartbeat(id string, u Utilization) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.members[id]
	if m == nil {
		return ErrUnknownNode
	}
	if m.state != StateAlive {
		r.emitLocked(Event{ID: id, From: m.state, To: StateAlive})
		m.state = StateAlive
	}
	m.util = u
	m.lastBeat = r.now()
	return nil
}

// MarkSuspect demotes a node after a dispatch failure: the coordinator
// just watched a request to it fail, which is fresher evidence than the
// heartbeat clock. The next beat restores it.
func (r *Registry) MarkSuspect(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.members[id]
	if m == nil || m.state != StateAlive {
		return
	}
	m.state = StateSuspect
	r.emitLocked(Event{ID: id, From: StateAlive, To: StateSuspect})
}

// Sweep advances the liveness state machine from the beat clock and
// returns the per-state population. The coordinator's health loop calls
// it on a ticker.
func (r *Registry) Sweep() (alive, suspect, dead int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	for _, m := range r.members {
		age := now.Sub(m.lastBeat)
		next := m.state
		switch {
		case age > r.deadAfter:
			next = StateDead
		case age > r.suspectAfter && m.state == StateAlive:
			next = StateSuspect
		}
		if next != m.state {
			r.emitLocked(Event{ID: m.id, From: m.state, To: next})
			m.state = next
		}
		switch m.state {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		default:
			dead++
		}
	}
	return alive, suspect, dead
}

// Ranked returns the nodes to try for a fingerprint, best first: the
// Alive nodes in rendezvous order, then — only as a failover tail — the
// Suspect ones. Within the Alive group, nodes reporting a full queue are
// pushed behind the rest so a saturated shard sheds load to its
// next-ranked peer instead of bouncing 429s.
func (r *Registry) Ranked(fp core.Fingerprint) []NodeRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	var alive, full, suspect []string
	for id, m := range r.members {
		switch m.state {
		case StateAlive:
			if m.capacity.QueueDepth > 0 && m.util.Queued >= m.capacity.QueueDepth {
				full = append(full, id)
			} else {
				alive = append(alive, id)
			}
		case StateSuspect:
			suspect = append(suspect, id)
		}
	}
	var out []NodeRef
	for _, group := range [][]string{alive, full, suspect} {
		for _, id := range Rank(fp, group) {
			out = append(out, NodeRef{ID: id, Addr: r.members[id].addr})
		}
	}
	return out
}

// Get looks up one member's placement view and state; ok is false for a
// node the registry has never seen. Used by the hinted-handoff loop to
// wait for a home shard's return.
func (r *Registry) Get(id string) (ref NodeRef, state State, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.members[id]
	if m == nil {
		return NodeRef{}, StateDead, false
	}
	return NodeRef{ID: m.id, Addr: m.addr}, m.state, true
}

// Nodes snapshots the membership table, sorted by ID.
func (r *Registry) Nodes() []NodeInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]NodeInfo, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, NodeInfo{
			ID: m.id, Addr: m.addr, State: m.state.String(),
			Capacity: m.capacity, Util: m.util,
			BeatAgeMS: now.Sub(m.lastBeat).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Watch subscribes to liveness transitions. The channel is buffered and
// lossy (a slow subscriber drops events rather than wedging the
// registry) and is closed by Close.
func (r *Registry) Watch() <-chan Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := make(chan Event, 64)
	if r.closed {
		close(ch)
		return ch
	}
	r.watchers[r.nextW] = ch
	r.nextW++
	return ch
}

// Close closes every watcher channel and stops accepting registrations;
// part of the coordinator's drain path. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for id, ch := range r.watchers {
		close(ch)
		delete(r.watchers, id)
	}
}

// emitLocked fans an event out to the watchers; callers hold r.mu. The
// channels are lossy by design, but drop-oldest rather than drop-newest:
// under churn a subscriber may miss intermediate transitions, yet the
// event for a node's FINAL state is always the last one buffered —
// dropping the newest would leave a full, unread channel permanently
// describing a stale state.
func (r *Registry) emitLocked(e Event) {
	for _, ch := range r.watchers {
		select {
		case ch <- e:
		default:
			select {
			case <-ch: // evict the oldest buffered event
			default:
			}
			select {
			case ch <- e:
			default:
			}
		}
	}
}
