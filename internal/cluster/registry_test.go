package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeClock is an injectable, manually-advanced clock so the liveness
// state machine is tested without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func states(r *Registry) map[string]string {
	out := map[string]string{}
	for _, n := range r.Nodes() {
		out[n.ID] = n.State
	}
	return out
}

// TestRegistryLifecycle walks a node through the full state machine:
// Alive -> Suspect after suspectAfter of silence -> Dead after deadAfter
// -> Alive again on a beat.
func TestRegistryLifecycle(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(100*time.Millisecond, 400*time.Millisecond, clk.Now)

	r.Register("a", "http://a", Capacity{Jobs: 2})
	if alive, _, _ := r.Sweep(); alive != 1 {
		t.Fatalf("registered node not alive")
	}

	clk.Advance(150 * time.Millisecond)
	if _, suspect, _ := r.Sweep(); suspect != 1 {
		t.Fatalf("node not suspect after suspectAfter: %v", states(r))
	}

	// A beat restores it.
	if err := r.Heartbeat("a", Utilization{Queued: 1}); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if alive, _, _ := r.Sweep(); alive != 1 {
		t.Fatalf("beat did not restore node: %v", states(r))
	}

	// Silence past deadAfter: Dead, visible in Nodes but unroutable.
	clk.Advance(450 * time.Millisecond)
	if _, _, dead := r.Sweep(); dead != 1 {
		t.Fatalf("node not dead after deadAfter: %v", states(r))
	}
	if n := r.Ranked(core.Fingerprint{}); len(n) != 0 {
		t.Fatalf("dead node still routable: %v", n)
	}
	if len(r.Nodes()) != 1 {
		t.Fatalf("dead node vanished from Nodes()")
	}

	// A beat resurrects even a Dead node (the worker was partitioned, not
	// crashed).
	if err := r.Heartbeat("a", Utilization{}); err != nil {
		t.Fatalf("heartbeat after death: %v", err)
	}
	if alive, _, _ := r.Sweep(); alive != 1 {
		t.Fatalf("beat did not resurrect node: %v", states(r))
	}
}

func TestRegistryUnknownHeartbeat(t *testing.T) {
	r := NewRegistry(time.Second, 4*time.Second, newFakeClock().Now)
	if err := r.Heartbeat("ghost", Utilization{}); err != ErrUnknownNode {
		t.Fatalf("heartbeat from unknown node: got %v, want ErrUnknownNode", err)
	}
}

// TestRegistryMarkSuspect: a dispatch failure demotes an Alive node
// immediately; the next beat restores it. MarkSuspect never promotes.
func TestRegistryMarkSuspect(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(time.Second, 4*time.Second, clk.Now)
	r.Register("a", "http://a", Capacity{})
	r.MarkSuspect("a")
	if _, suspect, _ := r.Sweep(); suspect != 1 {
		t.Fatalf("MarkSuspect did not demote: %v", states(r))
	}
	// Dead node is untouched by MarkSuspect.
	clk.Advance(5 * time.Second)
	r.Sweep()
	r.MarkSuspect("a")
	if _, _, dead := r.Sweep(); dead != 1 {
		t.Fatalf("MarkSuspect changed a dead node: %v", states(r))
	}
	r.MarkSuspect("ghost") // unknown node: no-op, no panic
}

// TestRegistryRankedGroups: Alive nodes rank ahead of full-queue nodes,
// which rank ahead of Suspect ones; Dead nodes are absent.
func TestRegistryRankedGroups(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(time.Second, 4*time.Second, clk.Now)
	// "dead" registers first and ages past deadAfter; the rest register
	// fresh afterwards so the sweep only kills it.
	r.Register("dead", "http://dead", Capacity{QueueDepth: 8})
	clk.Advance(5 * time.Second)
	r.Register("alive", "http://alive", Capacity{QueueDepth: 8})
	r.Register("full", "http://full", Capacity{QueueDepth: 8})
	r.Register("sus", "http://sus", Capacity{QueueDepth: 8})

	if err := r.Heartbeat("full", Utilization{Queued: 8}); err != nil {
		t.Fatal(err)
	}
	r.MarkSuspect("sus")
	r.Sweep()

	got := r.Ranked(core.Fingerprint{0x42})
	if len(got) != 3 {
		t.Fatalf("Ranked returned %d nodes, want 3 (dead excluded): %v", len(got), got)
	}
	if got[0].ID != "alive" || got[1].ID != "full" {
		t.Errorf("ranking order wrong: %v (want alive, full, ...)", got)
	}
	sawSus := false
	for _, n := range got {
		if n.ID == "sus" {
			sawSus = true
		}
		if n.ID == "dead" {
			t.Errorf("dead node in ranking: %v", got)
		}
	}
	if !sawSus {
		t.Errorf("suspect node missing from failover tail: %v", got)
	}
}

// TestRegistryWatch: transitions fan out to watchers; Close closes the
// channels and is idempotent; post-Close Watch returns a closed channel.
func TestRegistryWatch(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(100*time.Millisecond, 400*time.Millisecond, clk.Now)
	ch := r.Watch()

	r.Register("a", "http://a", Capacity{})
	clk.Advance(150 * time.Millisecond)
	r.Sweep()

	want := []Event{
		{ID: "a", From: StateDead, To: StateAlive},
		{ID: "a", From: StateAlive, To: StateSuspect},
	}
	for i, w := range want {
		select {
		case e := <-ch:
			if e != w {
				t.Fatalf("event %d: got %+v, want %+v", i, e, w)
			}
		case <-time.After(time.Second):
			t.Fatalf("event %d never arrived", i)
		}
	}

	r.Close()
	r.Close() // idempotent
	if _, open := <-ch; open {
		t.Fatal("watcher channel not closed by Close")
	}
	if _, open := <-r.Watch(); open {
		t.Fatal("post-Close Watch returned an open channel")
	}
	// Registrations after Close are refused.
	r.Register("b", "http://b", Capacity{})
	if len(r.Nodes()) != 1 {
		t.Fatal("Register accepted after Close")
	}
}
