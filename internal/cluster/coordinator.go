// coordinator.go is the HTTP front of the cluster: the membership
// endpoints workers talk to (/cluster/v1/register, /cluster/v1/heartbeat,
// /cluster/v1/nodes), the proxied job endpoints clients talk to (the same
// /v1/* surface a single hltsd exposes, so clients cannot tell a
// coordinator from a worker), the health-tracking sweep loop, and the
// drain path.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/server"
	"repro/internal/stats"
)

// ErrDraining rejects work because the coordinator is shutting down.
var ErrDraining = errors.New("cluster: coordinator draining")

// Config tunes the coordinator.
type Config struct {
	// HeartbeatInterval is the beat period the coordinator expects of its
	// workers and advertises in registration responses (default 2s).
	HeartbeatInterval time.Duration
	// SuspectBeats is K: a node is Suspect after K consecutive missed
	// beats, i.e. K*HeartbeatInterval without one (default 3).
	SuspectBeats int
	// DeadAfter declares a node Dead after this long without a beat
	// (default 10*HeartbeatInterval).
	DeadAfter time.Duration
	// SweepInterval is the health-tracker tick (default
	// HeartbeatInterval/2).
	SweepInterval time.Duration
	// Rounds is how many full passes over the live ranking a dispatch
	// makes before degrading to 503 (default 4).
	Rounds int
	// RetryBase and RetryMax bound the exponential backoff between passes
	// (defaults 100ms and 2s); the actual sleep is jittered and also
	// honors worker Retry-After hints and the request deadline.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxDeadline caps every proxied request end to end, dispatch retries
	// included; request deadline_ms may tighten it (default 2m).
	MaxDeadline time.Duration
	// RetryAfter is the base backoff hint on coordinator 503s, jittered
	// like the worker's (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps every POST body, job and membership traffic alike
	// (default 1 MiB).
	MaxBodyBytes int64
	// HandoffMax bounds the hinted-handoff queue — pending (home shard,
	// fingerprint) deliveries owed after failovers. Overflow is dropped
	// and counted; anti-entropy between the workers closes the gap
	// regardless (default 1024).
	HandoffMax int
	// Stats receives the coordinator's counters, gauges and latency
	// histograms; a fresh collector is created when nil.
	Stats *stats.Stats
	// Now is the clock (nil = time.Now), injectable for tests.
	Now func() time.Time
	// JitterSeed seeds backoff jitter; 0 derives one from the clock.
	JitterSeed int64
	// Client performs the forwards (nil = a client with sane timeouts).
	Client *http.Client
}

func (c *Config) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.SuspectBeats < 1 {
		c.SuspectBeats = 3
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * c.HeartbeatInterval
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.HeartbeatInterval / 2
	}
	if c.Rounds < 1 {
		c.Rounds = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = 2 * time.Second
		if c.RetryMax < c.RetryBase {
			c.RetryMax = c.RetryBase
		}
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.HandoffMax <= 0 {
		c.HandoffMax = 1024
	}
	if c.Stats == nil {
		c.Stats = stats.New()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = c.Now().UnixNano()
	}
	if c.Client == nil {
		// A private transport, not http.DefaultTransport: Drain closes its
		// idle connections without touching the rest of the process.
		c.Client = &http.Client{Transport: &http.Transport{}}
	}
}

// Coordinator fronts a fleet of hltsd workers. Construct with New, serve
// Handler(), and call Drain on shutdown.
type Coordinator struct {
	cfg    Config
	st     *stats.Stats
	reg    *Registry
	client *http.Client
	mux    *http.ServeMux

	rngMu sync.Mutex
	rng   *rand.Rand

	baseCtx    context.Context
	baseCancel context.CancelFunc
	inflight   sync.WaitGroup

	mu       sync.Mutex
	draining bool

	handoffMu sync.Mutex
	hints     map[hintKey]*hint

	stopHealth  chan struct{}
	healthDone  chan struct{}
	stopHandoff chan struct{}
	handoffDone chan struct{}
}

// New builds a coordinator and starts its health-tracking loop.
func New(cfg Config) *Coordinator {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		st:         cfg.Stats,
		reg:        NewRegistry(time.Duration(cfg.SuspectBeats)*cfg.HeartbeatInterval, cfg.DeadAfter, cfg.Now),
		client:     cfg.Client,
		mux:        http.NewServeMux(),
		rng:        rand.New(rand.NewSource(cfg.JitterSeed)),
		baseCtx:     ctx,
		baseCancel:  cancel,
		hints:       map[hintKey]*hint{},
		stopHealth:  make(chan struct{}),
		healthDone:  make(chan struct{}),
		stopHandoff: make(chan struct{}),
		handoffDone: make(chan struct{}),
	}
	c.mux.HandleFunc("POST /cluster/v1/register", c.guarded("register", c.handleRegister))
	c.mux.HandleFunc("POST /cluster/v1/heartbeat", c.guarded("heartbeat", c.handleHeartbeat))
	c.mux.HandleFunc("GET /cluster/v1/nodes", c.guarded("nodes", c.handleNodes))
	c.mux.HandleFunc("POST /v1/synthesize", c.guarded("synthesize", c.handleSynthesize))
	c.mux.HandleFunc("POST /v1/testdesign", c.guarded("testdesign", c.handleTestDesign))
	c.mux.HandleFunc("GET /v1/table/{bench}", c.guarded("table", c.handleTable))
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /livez", c.handleLivez)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	go c.healthLoop()
	go c.handoffLoop()
	return c
}

// Handler returns the HTTP handler serving every endpoint.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Registry exposes the membership table (tests and cmd/hltsc logging).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Stats returns the coordinator's collector.
func (c *Coordinator) Stats() *stats.Stats { return c.st }

// healthLoop drives the registry's liveness sweep and publishes the
// per-state node counts as gauges.
func (c *Coordinator) healthLoop() {
	defer close(c.healthDone)
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopHealth:
			return
		case <-t.C:
			alive, suspect, dead := c.reg.Sweep()
			c.st.Set("cluster.nodes.alive", float64(alive))
			c.st.Set("cluster.nodes.suspect", float64(suspect))
			c.st.Set("cluster.nodes.dead", float64(dead))
			c.st.Set("cluster.replicate.lag", float64(c.replicateLag()))
		}
	}
}

// replicateLag is the record-count spread — max minus min store records
// — across the Alive nodes that report a store in their heartbeats: 0
// when the fleet is converged (or fewer than two stores are visible),
// positive while anti-entropy still owes records to somebody.
func (c *Coordinator) replicateLag() int {
	minR, maxR, n := 0, 0, 0
	for _, node := range c.reg.Nodes() {
		if node.State != StateAlive.String() || node.Util.Store == nil {
			continue
		}
		r := node.Util.Store.Records
		if n == 0 || r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		n++
	}
	if n < 2 {
		return 0
	}
	return maxR - minR
}

// Drain shuts the coordinator down: new requests are rejected with 503,
// the health loop stops, in-flight proxied requests are given until ctx
// expires to finish (then their forwards are cancelled so each lands the
// typed 503/partial degradation path), and the registry watchers close.
// Safe to call more than once, including concurrently (the double-SIGTERM
// path): every call waits for the in-flight work to settle.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	first := !c.draining
	c.draining = true
	c.mu.Unlock()
	if first {
		close(c.stopHealth)
		close(c.stopHandoff)
	}
	<-c.healthDone
	<-c.handoffDone

	done := make(chan struct{})
	go func() {
		c.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		c.baseCancel() // cancel in-flight forwards; dispatch degrades to 503
		<-done
	}
	c.baseCancel()
	c.reg.Close()
	// Release the transport's idle-connection goroutines; workers are not
	// coming back through this coordinator.
	c.client.CloseIdleConnections()
	return err
}

// guarded wraps a handler with last-resort panic recovery, mirroring the
// worker daemon: a panicking handler answers 500, never kills the
// coordinator.
func (c *Coordinator) guarded(kind string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				c.st.Add("cluster.panics", 1)
				err := exec.Recovered("cluster."+kind, -1, rec)
				writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			}
		}()
		h(w, r)
	}
}

// readBody drains a capped request body; over-limit bodies answer 413.
func (c *Coordinator) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return nil, false
	}
	return body, true
}

func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	var req RegisterRequest
	if err := decodeStrict(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad register body: %v", err)})
		return
	}
	if req.ID == "" || req.Addr == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "register needs id and addr"})
		return
	}
	if u, err := url.Parse(req.Addr); err != nil || u.Scheme == "" || u.Host == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("register addr %q is not an absolute URL", req.Addr)})
		return
	}
	if c.isDraining() {
		c.setRetryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: ErrDraining.Error()})
		return
	}
	c.reg.Register(req.ID, req.Addr, req.Capacity)
	c.st.Add("cluster.registrations", 1)
	writeJSON(w, http.StatusOK, RegisterResponse{Status: "ok", HeartbeatMS: c.cfg.HeartbeatInterval.Milliseconds()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	var req HeartbeatRequest
	if err := decodeStrict(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad heartbeat body: %v", err)})
		return
	}
	if err := c.reg.Heartbeat(req.ID, req.Util); err != nil {
		// 404 tells the agent to re-register — the coordinator may have
		// restarted and lost its membership table.
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	c.st.Add("cluster.heartbeats", 1)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"nodes": c.reg.Nodes()})
}

// The proxied job endpoints: each validates and fingerprints the request
// exactly as a worker would (client errors are answered at the edge
// without burning a worker slot), then hands the raw bytes to the
// dispatch loop.

func (c *Coordinator) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	var req server.SynthesizeRequest
	if err := decodeStrict(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	n, err := req.Normalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	c.serve(w, r, "synthesize", n.Fingerprint(), req.DeadlineMS, proxyReq{
		method: "POST", path: "/v1/synthesize", body: body,
	})
}

func (c *Coordinator) handleTestDesign(w http.ResponseWriter, r *http.Request) {
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	var req server.TestDesignRequest
	if err := decodeStrict(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	n, err := req.Normalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	c.serve(w, r, "testdesign", n.Fingerprint(), req.DeadlineMS, proxyReq{
		method: "POST", path: "/v1/testdesign", body: body,
	})
}

func (c *Coordinator) handleTable(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	n, err := server.NormalizeTable(r.PathValue("bench"), qv.Get("widths"), qv.Get("seed"), qv.Get("faults"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	deadlineMS := 0
	if d := qv.Get("deadline_ms"); d != "" {
		deadlineMS, err = strconv.Atoi(d)
		if err != nil || deadlineMS < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad deadline_ms %q", d)})
			return
		}
	}
	c.serve(w, r, "table", n.Fingerprint(), deadlineMS, proxyReq{
		method: "GET", path: "/v1/table/" + url.PathEscape(r.PathValue("bench")), query: r.URL.RawQuery,
	})
}

// serve runs one proxied request through the dispatch loop and relays the
// outcome, accounting per-endpoint status classes and latency like the
// worker daemon does.
func (c *Coordinator) serve(w http.ResponseWriter, r *http.Request, kind string, fp core.Fingerprint, deadlineMS int, pr proxyReq) {
	start := c.cfg.Now()
	if c.isDraining() {
		c.setRetryAfter(w)
		c.writeStatus(w, kind, start, http.StatusServiceUnavailable, errorBody{Error: ErrDraining.Error()})
		return
	}
	c.inflight.Add(1)
	defer c.inflight.Done()

	deadline := c.cfg.MaxDeadline
	if d := time.Duration(deadlineMS) * time.Millisecond; d > 0 && d < deadline {
		deadline = d
	}
	// The forward context dies with the client connection, the drain
	// deadline, or the request deadline (plus a grace period so a worker
	// answering a deadline-capped job with a partial payload has time to
	// flush it), whichever comes first.
	ctx, cancel := context.WithTimeout(r.Context(), deadline+5*time.Second)
	defer cancel()
	stop := context.AfterFunc(c.baseCtx, cancel)
	defer stop()

	up, err := c.dispatch(ctx, fp, pr)
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone; there is nobody to write to.
			c.st.Add("cluster.requests.dropped", 1)
			return
		}
		// Typed degradation: retry budget or deadline exhausted, or no live
		// workers. Always an answer, never a hung connection.
		c.setRetryAfter(w)
		c.writeStatus(w, kind, start, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	if up.status == http.StatusOK && up.home != "" && up.node != up.home {
		// A failover answered a fingerprint it does not own: queue a hinted
		// handoff so the home shard's store receives the record once it is
		// Alive again. (A partial answer is filtered naturally later — it is
		// never stored, so the handoff fetch misses and drops the hint.)
		c.queueHint(up.home, up.node, fp)
	}
	for _, h := range []string{"Content-Type", "X-Hlts-Result", "Retry-After"} {
		if v := up.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Hlts-Node", up.node)
	w.WriteHeader(up.status)
	w.Write(up.body)
	c.st.Add(fmt.Sprintf("cluster.http.%s.%dxx", kind, up.status/100), 1)
	c.st.ObserveSince("cluster.http."+kind+".latency", start)
}

func (c *Coordinator) isDraining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// retryAfterSeconds jitters the configured 503 hint into [base, 1.5*base]
// whole seconds (minimum 1), so synchronized clients desynchronize.
func (c *Coordinator) retryAfterSeconds() int {
	base := c.cfg.RetryAfter
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(base/2) + 1))
	c.rngMu.Unlock()
	secs := int((base + j + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (c *Coordinator) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(c.retryAfterSeconds()))
}

func (c *Coordinator) writeStatus(w http.ResponseWriter, kind string, start time.Time, status int, v any) {
	writeJSON(w, status, v)
	c.st.Add(fmt.Sprintf("cluster.http.%s.%dxx", kind, status/100), 1)
	c.st.ObserveSince("cluster.http."+kind+".latency", start)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	alive, suspect, dead := c.reg.Sweep()
	status, state := http.StatusOK, "ok"
	if c.isDraining() {
		status, state = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, map[string]any{
		"status": state, "alive": alive, "suspect": suspect, "dead": dead,
	})
}

func (c *Coordinator) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	alive, suspect, dead := c.reg.Sweep()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# TYPE hltsc_nodes_alive gauge\nhltsc_nodes_alive %d\n", alive)
	fmt.Fprintf(w, "# TYPE hltsc_nodes_suspect gauge\nhltsc_nodes_suspect %d\n", suspect)
	fmt.Fprintf(w, "# TYPE hltsc_nodes_dead gauge\nhltsc_nodes_dead %d\n", dead)
	c.st.WriteText(w)
}

// errorBody mirrors the worker daemon's uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(`{"error":"encoding failure"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}
