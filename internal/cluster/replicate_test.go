// Tests of peer-to-peer store replication (DESIGN.md §4j): anti-entropy
// convergence between workers with private stores, the coordinator's
// hinted handoff after a failover, read-repair through a worker's
// serving path, the lossy-but-final registry watcher contract, and the
// replication chaos sweep — kill a worker holding the only copy of a
// warmed store and the surviving peer must serve that workload
// byte-identically with zero pipeline runs.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/store"
)

// storeWorker is one hltsd-shaped test node: a private store, a server
// exposing the /v1/ and /store/v1/ surfaces, an optional anti-entropy
// replicator wired in as the server's read-repair hook, and a
// heartbeating agent whose beats carry the store gauge.
type storeWorker struct {
	id    string
	st    *stats.Stats
	stor  *store.Store
	repl  *Replicator
	srv   *server.Server
	ts    *httptest.Server
	agent *Agent
}

// newStoreWorker boots one node against the coordinator at coordURL.
// replInterval 0 runs without a replicator (no anti-entropy, no
// read-repair) — replication is per-node opt-in.
func newStoreWorker(t *testing.T, coordURL, id string, replInterval time.Duration, seed int64) *storeWorker {
	t.Helper()
	stor, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := &storeWorker{id: id, st: stats.New(), stor: stor}
	var fetch server.PeerFetchFunc
	if replInterval > 0 {
		w.repl = StartReplicator(ReplicatorConfig{
			Coordinator:  coordURL,
			SelfID:       id,
			Store:        stor,
			Interval:     replInterval,
			RetryMax:     20 * replInterval,
			FetchTimeout: 2 * time.Second,
			Stats:        w.st,
			JitterSeed:   seed,
		})
		fetch = w.repl.Fetch
	}
	w.srv = server.New(server.Config{
		QueueDepth: 64, Jobs: 2, Workers: 4, CacheSize: 16,
		Store: stor, PeerFetch: fetch, Stats: w.st,
	})
	w.ts = httptest.NewServer(w.srv.Handler())
	w.agent = StartAgent(AgentConfig{
		Coordinator: coordURL,
		ID:          id,
		Advertise:   w.ts.URL,
		Capacity:    Capacity{Jobs: 2, Workers: 4, QueueDepth: 64},
		Interval:    25 * time.Millisecond,
		Stats:       w.st,
		Snapshot:    storeSnapshot(w.srv),
	})
	return w
}

// storeSnapshot builds the heartbeat payload the way cmd/hltsd does,
// including the store gauge replication lag is computed from.
func storeSnapshot(srv *server.Server) func() Utilization {
	return func() Utilization {
		snap := srv.Snapshot()
		u := Utilization{
			Queued: snap.Queued, Inflight: snap.Inflight,
			CacheHitRate: snap.CacheHitRate, JobsRun: snap.JobsRun,
		}
		if snap.HasStore {
			u.Store = &StoreUtil{
				Records: snap.StoreRecords, LiveBytes: snap.StoreLiveBytes,
				Gen: snap.StoreCursor.Gen, Seg: snap.StoreCursor.Seg, Off: snap.StoreCursor.Off,
			}
		}
		return u
	}
}

// kill tears the node down abruptly from the cluster's point of view:
// listener closed, in-flight connections severed, heartbeats and
// replication stopped. The store directory simply ceases to exist for
// everyone else — the permanent-node-loss scenario.
func (w *storeWorker) kill(t *testing.T) {
	t.Helper()
	w.ts.CloseClientConnections()
	w.ts.Close()
	w.agent.Stop()
	if w.repl != nil {
		w.repl.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.srv.Drain(ctx); err != nil {
		t.Errorf("drain %s: %v", w.id, err)
	}
	if err := w.stor.Close(); err != nil {
		t.Errorf("close store %s: %v", w.id, err)
	}
}

func (w *storeWorker) shutdown(t *testing.T) { w.kill(t) }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(3 * time.Millisecond)
	}
}

func clusterFP(parts ...string) core.Fingerprint {
	h := core.NewHasher()
	for _, p := range parts {
		h.Str(p)
	}
	return h.Sum()
}

// digestsEqual compares two stores on content (Records, XorFP), which
// is epoch- and layout-independent.
func digestsEqual(a, b *store.Store) bool {
	da, db := a.Digest(), b.Digest()
	return da.Records == db.Records && da.XorFP == db.XorFP
}

// TestAntiEntropyConverges: records written only to worker A appear
// byte-identically in worker B's private store via the pull loop, the
// coordinator's replicate-lag gauge sees the gap open and close, and
// /cluster/v1/nodes renders each node's store state.
func TestAntiEntropyConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("replication integration test is too slow for -short")
	}
	base := runtime.NumGoroutine()
	cfg := fastConfig()
	c := New(cfg)
	cts := httptest.NewServer(c.Handler())

	a := newStoreWorker(t, cts.URL, "wA", 0, 1) // A: source only, no replicator
	b := newStoreWorker(t, cts.URL, "wB", 0, 1) // B: replicator started below

	// Warm A's store directly: replication moves store records, whatever
	// wrote them.
	want := map[core.Fingerprint][]byte{}
	for i := 0; i < 5; i++ {
		fp := clusterFP("rec", fmt.Sprint(i))
		val := []byte(fmt.Sprintf("payload-%d", i))
		if err := a.stor.Put(fp, val); err != nil {
			t.Fatal(err)
		}
		want[fp] = val
	}

	// The heartbeat gauge sees the divergence: A reports 5 records, B
	// reports 0, so the coordinator's lag gauge reads 5.
	waitFor(t, 10*time.Second, "replicate lag gauge to open", func() bool {
		return c.st.Gauge("cluster.replicate.lag") == 5
	})

	// The membership table renders the store state operators (and peers)
	// read lag from.
	status, _, body := doReq(t, cts.Client(), "GET", cts.URL+"/cluster/v1/nodes", "")
	if status != http.StatusOK {
		t.Fatalf("nodes: status %d", status)
	}
	var nodes struct {
		Nodes []NodeInfo `json:"nodes"`
	}
	if err := json.Unmarshal(body, &nodes); err != nil {
		t.Fatalf("nodes: %v", err)
	}
	recsOf := map[string]int{}
	for _, n := range nodes.Nodes {
		if n.Util.Store != nil {
			recsOf[n.ID] = n.Util.Store.Records
		}
	}
	if recsOf["wA"] != 5 || recsOf["wB"] != 0 {
		t.Fatalf("nodes missing store gauges: %+v", recsOf)
	}

	// Start B's anti-entropy loop: it must discover A, pull the delta, and
	// converge byte-identically.
	repl := StartReplicator(ReplicatorConfig{
		Coordinator: cts.URL, SelfID: "wB", Store: b.stor,
		Interval: 10 * time.Millisecond, RetryMax: 200 * time.Millisecond,
		Stats: b.st, JitterSeed: 1,
	})
	waitFor(t, 10*time.Second, "stores to converge", func() bool {
		return digestsEqual(a.stor, b.stor)
	})
	for fp, val := range want {
		if got, ok := b.stor.Get(fp); !ok || string(got) != string(val) {
			t.Fatalf("record %s on B: %q %v, want %q", fp, got, ok, val)
		}
	}
	if b.st.Value("server.replicate.applied") != 5 {
		t.Errorf("replicate.applied = %d, want 5", b.st.Value("server.replicate.applied"))
	}
	if b.st.Value("server.replicate.pulled") < 5 {
		t.Errorf("replicate.pulled = %d, want >= 5", b.st.Value("server.replicate.pulled"))
	}
	// Converged: the lag gauge closes once B's next beats carry 5 records.
	waitFor(t, 10*time.Second, "replicate lag gauge to close", func() bool {
		return c.st.Gauge("cluster.replicate.lag") == 0
	})

	repl.Stop()
	a.shutdown(t)
	b.shutdown(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Errorf("coordinator drain: %v", err)
	}
	cts.Close()
	settle(t, base)
}

// TestHintedHandoffDeliversToHome: a request whose home shard is down
// is answered by a failover peer; the coordinator queues a hint and,
// once the home node returns, copies the record from the answering
// node into the home store. Misses and unknown homes drop cleanly.
func TestHintedHandoffDeliversToHome(t *testing.T) {
	if testing.Short() {
		t.Skip("handoff integration test is too slow for -short")
	}
	base := runtime.NumGoroutine()
	cfg := fastConfig()
	cfg.Rounds = 4
	c := New(cfg)
	cts := httptest.NewServer(c.Handler())

	live := newStoreWorker(t, cts.URL, "live", 0, 1)

	// The fingerprint the coordinator will compute for this body, derived
	// exactly as its handler does.
	reqBody := `{"bench":"ex","width":4}`
	var sreq server.SynthesizeRequest
	if err := json.Unmarshal([]byte(reqBody), &sreq); err != nil {
		t.Fatal(err)
	}
	norm, err := sreq.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	fp := norm.Fingerprint()

	// Pick a home ID that outranks the live worker for this fingerprint,
	// so dispatch tries (and fails over from) the home first.
	homeID := ""
	for i := 0; i < 256; i++ {
		cand := fmt.Sprintf("home-%d", i)
		if Rank(fp, []string{cand, "live"})[0] == cand {
			homeID = cand
			break
		}
	}
	if homeID == "" {
		t.Fatal("no candidate ID outranks the live worker")
	}
	// The home shard is down: registered, but its address refuses
	// connections.
	c.reg.Register(homeID, "http://127.0.0.1:1", Capacity{Jobs: 1, Workers: 1, QueueDepth: 4})

	waitFor(t, 10*time.Second, "live worker to register", func() bool {
		_, state, ok := c.reg.Get("live")
		return ok && state == StateAlive
	})
	status, hdr, body := doReq(t, cts.Client(), "POST", cts.URL+"/v1/synthesize", reqBody)
	if status != http.StatusOK {
		t.Fatalf("failover request: status %d: %s", status, body)
	}
	if hdr.Get("X-Hlts-Node") != "live" {
		t.Fatalf("answered by %q, want the failover peer", hdr.Get("X-Hlts-Node"))
	}
	if got := c.st.Value("cluster.handoff.queued"); got != 1 {
		t.Fatalf("handoff.queued = %d, want 1", got)
	}

	// The home shard comes back — as a real worker on a fresh (empty)
	// store. Re-register on every poll so its beat stays fresh without a
	// full agent.
	home := newStoreWorker(t, cts.URL, "home-replacement-unused", 0, 1)
	home.agent.Stop() // drive registration by hand under the home ID
	// Poll the delivered counter, not the store: the home server stores
	// the record before the coordinator's push returns and is counted.
	waitFor(t, 10*time.Second, "hint delivery to the returned home", func() bool {
		c.reg.Register(homeID, home.ts.URL, Capacity{Jobs: 2, Workers: 4, QueueDepth: 64})
		return c.st.Value("cluster.handoff.delivered") == 1
	})
	wantVal, ok := live.stor.Get(fp)
	if !ok {
		t.Fatal("answering node lost the record it served")
	}
	if got, _ := home.stor.Get(fp); string(got) != string(wantVal) {
		t.Fatalf("handed-off record differs from the source:\n got %q\nwant %q", got, wantVal)
	}
	waitFor(t, 5*time.Second, "pending gauge to drain", func() bool {
		return c.st.Gauge("cluster.handoff.pending") == 0
	})

	// A hint for a record the answering node never stored (a partial
	// result) is dropped as a miss, not retried forever.
	c.queueHint(homeID, "live", clusterFP("never-stored"))
	waitFor(t, 5*time.Second, "partial-result hint to drop as miss", func() bool {
		c.reg.Register(homeID, home.ts.URL, Capacity{Jobs: 2, Workers: 4, QueueDepth: 64})
		return c.st.Value("cluster.handoff.miss") == 1
	})
	// A hint whose home the registry has forgotten is dropped as lost.
	c.queueHint("never-registered", "live", fp)
	waitFor(t, 5*time.Second, "unknown-home hint to drop as lost", func() bool {
		return c.st.Value("cluster.handoff.lost") == 1
	})

	live.shutdown(t)
	home.shutdown(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Errorf("coordinator drain: %v", err)
	}
	cts.Close()
	settle(t, base)
}

// TestReadRepairFromPeer: a worker with an empty store answers a
// request another worker has already computed by fetching the record
// from that peer — byte-identical, written through locally, zero
// pipeline runs — and an injected peer-fetch fault degrades to the
// recompute, never a failed request.
func TestReadRepairFromPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("read-repair integration test is too slow for -short")
	}
	base := runtime.NumGoroutine()

	// Worker A computes the reference answer into its store.
	aStor, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aSrv := server.New(server.Config{QueueDepth: 8, Jobs: 2, CacheSize: 8, Store: aStor})
	aTS := httptest.NewServer(aSrv.Handler())
	body := `{"bench":"ex","width":4}`
	status, _, want := doReq(t, aTS.Client(), "POST", aTS.URL+"/v1/synthesize", body)
	if status != http.StatusOK {
		t.Fatalf("reference: status %d", status)
	}

	// Worker B: empty store, read-repair hook pointed (without a loop) at
	// a peer set containing only A.
	bStor, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bStats := stats.New()
	repl := &Replicator{
		cfg:    ReplicatorConfig{SelfID: "wB", Store: bStor, Stats: bStats},
		client: &http.Client{Timeout: 2 * time.Second},
		peers:  map[string]*peerSync{},
		alive:  []NodeRef{{ID: "wA", Addr: aTS.URL}},
	}
	bSrv := server.New(server.Config{QueueDepth: 8, Jobs: 2, CacheSize: 8, Store: bStor, PeerFetch: repl.Fetch, Stats: bStats})
	bTS := httptest.NewServer(bSrv.Handler())

	status, _, got := doReq(t, bTS.Client(), "POST", bTS.URL+"/v1/synthesize", body)
	if status != http.StatusOK {
		t.Fatalf("read-repair request: status %d", status)
	}
	if string(got) != string(want) {
		t.Fatalf("read-repaired answer differs:\n got %.160s\nwant %.160s", got, want)
	}
	if runs := bStats.Value("server.jobs.run"); runs != 0 {
		t.Errorf("jobs.run = %d, want 0 (the peer's bytes were available)", runs)
	}
	if bStats.Value("server.replicate.readrepair") != 1 {
		t.Errorf("readrepair = %d, want 1", bStats.Value("server.replicate.readrepair"))
	}
	if bStor.Len() != 1 {
		t.Errorf("read-repaired record not written through locally (%d records)", bStor.Len())
	}

	// Every peer fetch now faults: the request must still answer 200, by
	// recomputing.
	in := chaos.New(3).On(chaos.SiteReplicateFetch, chaos.Rule{Action: chaos.ActError, Prob: 1})
	restore := chaos.Install(in)
	body2 := `{"bench":"ex","width":8}`
	status, _, _ = doReq(t, bTS.Client(), "POST", bTS.URL+"/v1/synthesize", body2)
	restore()
	if status != http.StatusOK {
		t.Fatalf("request under peer-fetch fault: status %d, want 200 via recompute", status)
	}
	if runs := bStats.Value("server.jobs.run"); runs != 1 {
		t.Errorf("jobs.run = %d, want 1 (fault degrades to recompute)", runs)
	}
	if in.Fired(chaos.SiteReplicateFetch) == 0 {
		t.Error("peer-fetch fault never fired")
	}
	if bStats.Value("server.replicate.error") == 0 {
		t.Error("peer-fetch fault not counted")
	}

	aTS.Close()
	bTS.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := aSrv.Drain(ctx); err != nil {
		t.Errorf("drain A: %v", err)
	}
	if err := bSrv.Drain(ctx); err != nil {
		t.Errorf("drain B: %v", err)
	}
	aStor.Close()
	bStor.Close()
	settle(t, base)
}

// TestRegistryWatchChurn: an unread watcher under rapid membership
// churn never wedges the registry, and when the churn stops the LAST
// buffered events describe every node's final state — the drop-oldest
// contract. (A drop-newest channel would end full of stale transitions.)
func TestRegistryWatchChurn(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	reg := NewRegistry(50*time.Millisecond, 200*time.Millisecond, clock)
	ch := reg.Watch() // never read during the churn

	// Far more transitions than the channel buffers: every cycle flips 5
	// nodes alive -> suspect -> alive. If emit blocked on the full
	// channel, this loop would deadlock.
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	for cycle := 0; cycle < 40; cycle++ {
		for _, id := range nodes {
			reg.Register(id, "http://"+id, Capacity{})
			reg.MarkSuspect(id)
		}
	}
	// The final transitions: the clock jumps past DeadAfter and every
	// node dies. These five events are the newest — drop-oldest must keep
	// all of them.
	advance(300 * time.Millisecond)
	reg.Sweep()

	var drained []Event
	for {
		select {
		case e := <-ch:
			drained = append(drained, e)
		default:
			goto done
		}
	}
done:
	if len(drained) == 0 {
		t.Fatal("nothing buffered")
	}
	if len(drained) > 64 {
		t.Fatalf("channel over-buffered: %d events", len(drained))
	}
	last := map[string]Event{}
	for _, e := range drained {
		last[e.ID] = e
	}
	for _, id := range nodes {
		e, ok := last[id]
		if !ok {
			t.Errorf("node %s: final event dropped entirely", id)
			continue
		}
		if e.To != StateDead {
			t.Errorf("node %s: last buffered event says %v, final state is dead", id, e.To)
		}
	}
	// Close delivers promptly even to a never-read subscriber.
	reg.Close()
	waitFor(t, 5*time.Second, "watcher channel to close", func() bool {
		for {
			select {
			case _, ok := <-ch:
				if !ok {
					return true
				}
			default:
				return false
			}
		}
	})
}

// TestReplicationSweep is the acceptance sweep of the PR: per seed, two
// workers with PRIVATE stores replicate under injected fetch/apply
// faults; the warmed worker is then killed for good, and the survivor
// must serve the dead node's entire workload byte-identically through
// the coordinator with ZERO pipeline runs — no shared disk anywhere.
func TestReplicationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("replication sweep is too slow for -short")
	}
	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runReplicationSweep(t, seed)
		})
	}
}

func runReplicationSweep(t *testing.T, seed int64) {
	base := runtime.NumGoroutine()
	// Fault mix varies by seed: fetches error, applies alternate between
	// typed errors and panics (the guard must absorb both).
	applyAct := chaos.ActError
	if seed%2 == 0 {
		applyAct = chaos.ActPanic
	}
	in := chaos.New(seed).
		On(chaos.SiteReplicateFetch, chaos.Rule{Action: chaos.ActError, Prob: 0.25}).
		On(chaos.SiteReplicateApply, chaos.Rule{Action: applyAct, Prob: 0.2})
	restore := chaos.Install(in)
	defer restore()

	cfg := fastConfig()
	cfg.Rounds = 6
	cfg.RetryBase = 2 * time.Millisecond
	cfg.RetryMax = 20 * time.Millisecond
	cfg.MaxDeadline = 60 * time.Second
	cfg.JitterSeed = seed
	c := New(cfg)
	cts := httptest.NewServer(c.Handler())

	a := newStoreWorker(t, cts.URL, "wA", 10*time.Millisecond, seed)
	b := newStoreWorker(t, cts.URL, "wB", 10*time.Millisecond, seed+1)

	waitFor(t, 10*time.Second, "both workers to register", func() bool {
		alive := 0
		for _, n := range c.reg.Nodes() {
			if n.State == "alive" {
				alive++
			}
		}
		return alive == 2
	})

	// Warm ONLY worker A, directly — its private store holds the only
	// durable copy of these acknowledged results.
	workload := []string{
		`{"bench":"ex","width":4}`,
		`{"bench":"ex","width":8}`,
		`{"bench":"diffeq","width":8}`,
	}
	want := make([][]byte, len(workload))
	for i, body := range workload {
		status, _, got := doReq(t, cts.Client(), "POST", a.ts.URL+"/v1/synthesize", body)
		if status != http.StatusOK {
			t.Fatalf("warm request %d: status %d: %s", i, status, got)
		}
		want[i] = got
	}

	// Anti-entropy under fault injection: B must converge to A's store
	// despite erroring fetches and panicking applies.
	waitFor(t, 30*time.Second, "stores to converge under chaos", func() bool {
		return digestsEqual(a.stor, b.stor)
	})
	aRecords := map[core.Fingerprint][]byte{}
	a.stor.Range(func(fp core.Fingerprint, val []byte) bool {
		aRecords[fp] = append([]byte(nil), val...)
		return true
	})
	if len(aRecords) != len(workload) {
		t.Fatalf("A holds %d records after warming, want %d", len(aRecords), len(workload))
	}
	for fp, val := range aRecords {
		got, ok := b.stor.Get(fp)
		if !ok || string(got) != string(val) {
			t.Fatalf("record %s not byte-identical on B after convergence", fp)
		}
	}

	// Permanent loss of the only originally-warmed node.
	a.kill(t)
	waitFor(t, 10*time.Second, "coordinator to see exactly one live node", func() bool {
		alive := 0
		for _, n := range c.reg.Nodes() {
			if n.State == "alive" {
				alive++
			}
		}
		return alive == 1
	})

	// The dead node's workload through the coordinator: every request must
	// answer 200 byte-identical to the original acknowledgment, and B must
	// never run the pipeline — the replicated bytes are the answer.
	for i, body := range workload {
		status, _, got := doReq(t, cts.Client(), "POST", cts.URL+"/v1/synthesize", body)
		if status != http.StatusOK {
			t.Fatalf("post-kill request %d: status %d: %s (an acknowledged record was lost)", i, status, got)
		}
		if string(got) != string(want[i]) {
			t.Fatalf("post-kill request %d differs from the acknowledged bytes:\n got %.160s\nwant %.160s", i, got, want[i])
		}
	}
	if runs := b.st.Value("server.jobs.run"); runs != 0 {
		t.Errorf("survivor recomputed %d jobs despite holding the replicas", runs)
	}
	if in.Fired(chaos.SiteReplicateFetch)+in.Fired(chaos.SiteReplicateApply) == 0 {
		t.Errorf("replication chaos never fired (fetch hits=%d apply hits=%d) — the sweep tested nothing",
			in.Hits(chaos.SiteReplicateFetch), in.Hits(chaos.SiteReplicateApply))
	}
	t.Logf("seed=%d: converged %d records; fetch fired=%d apply fired=%d; survivor errors=%d",
		seed, len(aRecords), in.Fired(chaos.SiteReplicateFetch), in.Fired(chaos.SiteReplicateApply),
		b.st.Value("server.replicate.error"))

	b.shutdown(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Drain(ctx); err != nil {
		t.Errorf("coordinator drain: %v", err)
	}
	cts.Close()
	settle(t, base)
}
