package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// fastConfig is the test-speed coordinator tuning: millisecond beats and
// backoffs so failure paths run in a blink, deterministic jitter.
func fastConfig() Config {
	return Config{
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectBeats:      2,
		DeadAfter:         250 * time.Millisecond,
		SweepInterval:     10 * time.Millisecond,
		Rounds:            3,
		RetryBase:         time.Millisecond,
		RetryMax:          10 * time.Millisecond,
		MaxDeadline:       5 * time.Second,
		JitterSeed:        1,
	}
}

func newTestCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := c.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return c
}

// fpOwnedBy scans for a fingerprint whose rendezvous owner is id, so
// tests can steer the first dispatch attempt deterministically.
func fpOwnedBy(t *testing.T, id string, ids []string) core.Fingerprint {
	t.Helper()
	for i := 0; i < 1024; i++ {
		fp := core.Fingerprint{byte(i), byte(i >> 8)}
		if owner, ok := Owner(fp, ids); ok && owner == id {
			return fp
		}
	}
	t.Fatalf("no fingerprint owned by %s among %v", id, ids)
	return core.Fingerprint{}
}

func okWorker(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Hlts-Result", "complete")
		w.Write([]byte(body))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestDispatchFailoverOnTransportError: a dead node fails over to the
// next-ranked one, and the failure demotes the dead node to Suspect.
func TestDispatchFailoverOnTransportError(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	good := okWorker(t, "answer")

	// A connection-refused address: the listener is closed immediately.
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadAddr := deadTS.URL
	deadTS.Close()

	c.reg.Register("dead", deadAddr, Capacity{})
	c.reg.Register("good", good.URL, Capacity{})

	// Steer the first attempt at the dead node so the failover is exercised.
	fp := fpOwnedBy(t, "dead", []string{"dead", "good"})
	up, err := c.dispatch(context.Background(), fp, proxyReq{method: "GET", path: "/"})
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if up.node != "good" || string(up.body) != "answer" {
		t.Fatalf("dispatch answered from %q with %q", up.node, up.body)
	}
	for _, n := range c.reg.Nodes() {
		if n.ID == "dead" && n.State != "suspect" {
			t.Errorf("failed node is %s, want suspect", n.State)
		}
	}
	if c.st.Value("cluster.dispatch.error") == 0 {
		t.Error("transport failure not counted")
	}
}

// TestDispatchPushbackFailsOverInPass: a worker answering 429 sheds the
// job to the next-ranked node within the same pass — no backoff sleep,
// and the loaded node is NOT demoted (shedding is healthy behavior).
func TestDispatchPushbackFailsOverInPass(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(busy.Close)
	good := okWorker(t, "carried")

	c.reg.Register("busy", busy.URL, Capacity{})
	c.reg.Register("good", good.URL, Capacity{})

	// First attempt must land on the shedding node for the test to bite.
	fp := fpOwnedBy(t, "busy", []string{"busy", "good"})
	start := time.Now()
	up, err := c.dispatch(context.Background(), fp, proxyReq{method: "GET", path: "/"})
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if string(up.body) != "carried" {
		t.Fatalf("answer %q from %q", up.body, up.node)
	}
	// Same-pass shed: the 1s Retry-After hint must NOT have been slept on.
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("same-pass failover slept %v", el)
	}
	for _, n := range c.reg.Nodes() {
		if n.ID == "busy" && n.State != "alive" {
			t.Errorf("load-shedding node demoted to %s", n.State)
		}
	}
	if c.st.Value("cluster.dispatch.pushback") == 0 {
		t.Error("pushback not counted")
	}
}

// TestDispatchWorkerErrorsRelayedWithoutRetry: a worker 500 (or 400) is
// an answer, not a dispatch failure — it comes back verbatim on the first
// attempt.
func TestDispatchWorkerErrorsRelayedWithoutRetry(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"boom"}`))
	}))
	t.Cleanup(ts.Close)
	c.reg.Register("a", ts.URL, Capacity{})

	up, err := c.dispatch(context.Background(), core.Fingerprint{3}, proxyReq{method: "GET", path: "/"})
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if up.status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", up.status)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("worker hit %d times, want exactly 1 (5xx must not be retried)", n)
	}
}

// TestDispatchRetriesExhausted: when every pass fails, dispatch degrades
// to the typed error after exactly Rounds passes.
func TestDispatchRetriesExhausted(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	c.reg.Register("a", ts.URL, Capacity{})

	_, err := c.dispatch(context.Background(), core.Fingerprint{4}, proxyReq{method: "GET", path: "/"})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if n := hits.Load(); n != int64(c.cfg.Rounds) {
		t.Fatalf("worker hit %d times, want %d (one per round)", n, c.cfg.Rounds)
	}
}

// TestDispatchNoWorkers: an empty (or all-dead) membership is the other
// typed failure.
func TestDispatchNoWorkers(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	_, err := c.dispatch(context.Background(), core.Fingerprint{5}, proxyReq{method: "GET", path: "/"})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestDispatchHintFloorsBackoff: a worker Retry-After hint floors the
// between-pass sleep (capped by RetryMax). With a 1s hint and a 10ms cap,
// each inter-pass sleep is ~10ms instead of the ~1-2ms base backoff.
func TestDispatchHintFloorsBackoff(t *testing.T) {
	cfg := fastConfig()
	cfg.Rounds = 3 // two sleeps
	c := newTestCoordinator(t, cfg)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	c.reg.Register("a", ts.URL, Capacity{})

	start := time.Now()
	_, err := c.dispatch(context.Background(), core.Fingerprint{6}, proxyReq{method: "GET", path: "/"})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	// Two inter-pass sleeps floored to RetryMax (10ms each). Without the
	// hint they would be ~1-4ms total.
	if el := time.Since(start); el < 18*time.Millisecond {
		t.Errorf("dispatch finished in %v; Retry-After hint did not floor the backoff", el)
	}
}

// TestDispatchHonorsDeadline: a hung worker cannot hang the dispatch —
// the context deadline cuts it short.
func TestDispatchHonorsDeadline(t *testing.T) {
	c := newTestCoordinator(t, fastConfig())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	t.Cleanup(ts.Close)
	c.reg.Register("hang", ts.URL, Capacity{})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.dispatch(ctx, core.Fingerprint{7}, proxyReq{method: "GET", path: "/"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("dispatch hung %v past its deadline", el)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		v    string
		want time.Duration
	}{
		{"", 0}, {"3", 3 * time.Second}, {"0", 0}, {"-1", 0}, {"soon", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, // HTTP-date form: not ours, ignored
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.v != "" {
			h.Set("Retry-After", tc.v)
		}
		if got := parseRetryAfter(h); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
		}
	}
}
