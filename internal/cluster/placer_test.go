package cluster

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// testFingerprints derives n deterministic fingerprints from a seed via
// the splitmix64 mix, so the placement properties are checked over the
// same key population every run.
func testFingerprints(seed uint64, n int) []core.Fingerprint {
	out := make([]core.Fingerprint, n)
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range out {
		for w := 0; w < 2; w++ {
			v := next()
			for b := 0; b < 8; b++ {
				out[i][8*w+b] = byte(v >> (8 * b))
			}
		}
	}
	return out
}

func nodeIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%02d", i)
	}
	return ids
}

// TestRendezvousDeterministicAndTotal: Rank is a pure function of
// (fingerprint, membership set) — input order is irrelevant, the order is
// total, and Owner is Rank[0].
func TestRendezvousDeterministicAndTotal(t *testing.T) {
	ids := nodeIDs(7)
	reversed := make([]string, len(ids))
	for i, id := range ids {
		reversed[len(ids)-1-i] = id
	}
	for _, fp := range testFingerprints(1, 200) {
		a, b := Rank(fp, ids), Rank(fp, reversed)
		if len(a) != len(ids) {
			t.Fatalf("Rank dropped nodes: %v", a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Rank depends on input order: %v vs %v", a, b)
			}
		}
		owner, ok := Owner(fp, ids)
		if !ok || owner != a[0] {
			t.Fatalf("Owner %q != Rank[0] %q", owner, a[0])
		}
	}
	if _, ok := Owner(testFingerprints(2, 1)[0], nil); ok {
		t.Error("Owner of empty membership reported ok")
	}
}

// TestRendezvousStableUnderLeave: removing a node moves only the keys it
// owned — every other key keeps its owner. This is the property that
// makes mid-job failover cheap: the surviving shards' working sets (and
// their caches) are untouched.
func TestRendezvousStableUnderLeave(t *testing.T) {
	ids := nodeIDs(10)
	fps := testFingerprints(42, 2000)
	owners := make(map[core.Fingerprint]string, len(fps))
	for _, fp := range fps {
		owners[fp], _ = Owner(fp, ids)
	}

	departed := "node-03"
	var survivors []string
	for _, id := range ids {
		if id != departed {
			survivors = append(survivors, id)
		}
	}
	moved := 0
	for _, fp := range fps {
		after, _ := Owner(fp, survivors)
		if owners[fp] == departed {
			moved++
			if after == departed {
				t.Fatalf("fingerprint still owned by departed node")
			}
			continue
		}
		if after != owners[fp] {
			t.Fatalf("key not owned by %s moved (%s -> %s)", departed, owners[fp], after)
		}
	}
	// The departed node owned roughly 1/10 of the keys; a wildly skewed
	// share would mean the hash is not spreading.
	if moved < len(fps)/20 || moved > len(fps)/4 {
		t.Errorf("departed node owned %d of %d keys, expected ~%d", moved, len(fps), len(fps)/10)
	}
}

// TestRendezvousStableUnderJoin: a joining node only claims keys — no key
// moves between pre-existing nodes.
func TestRendezvousStableUnderJoin(t *testing.T) {
	ids := nodeIDs(10)
	fps := testFingerprints(1998, 2000)
	owners := make(map[core.Fingerprint]string, len(fps))
	for _, fp := range fps {
		owners[fp], _ = Owner(fp, ids)
	}
	joined := "node-99"
	grown := append(append([]string(nil), ids...), joined)
	claimed := 0
	for _, fp := range fps {
		after, _ := Owner(fp, grown)
		switch {
		case after == joined:
			claimed++
		case after != owners[fp]:
			t.Fatalf("join moved a key between old nodes (%s -> %s)", owners[fp], after)
		}
	}
	if claimed < len(fps)/22 || claimed > len(fps)/5 {
		t.Errorf("joining node claimed %d of %d keys, expected ~%d", claimed, len(fps), len(fps)/11)
	}
}

// TestRendezvousBalance: over many keys, every node owns a non-degenerate
// share (loose bounds — rendezvous hashing is balanced in expectation).
func TestRendezvousBalance(t *testing.T) {
	ids := nodeIDs(8)
	fps := testFingerprints(7, 4000)
	counts := map[string]int{}
	for _, fp := range fps {
		o, _ := Owner(fp, ids)
		counts[o]++
	}
	want := len(fps) / len(ids)
	for _, id := range ids {
		if c := counts[id]; c < want/2 || c > want*2 {
			t.Errorf("node %s owns %d keys, expected within [%d,%d]", id, c, want/2, want*2)
		}
	}
}
