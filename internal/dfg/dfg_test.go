package dfg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpKindString(t *testing.T) {
	if OpAdd.String() != "+" || OpMul.String() != "*" || OpLt.String() != "<" {
		t.Fatalf("unexpected op names: %s %s %s", OpAdd, OpMul, OpLt)
	}
	if got := OpKind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind should render numerically, got %s", got)
	}
}

func TestOpKindArity(t *testing.T) {
	for _, k := range []OpKind{OpAdd, OpSub, OpMul, OpLt, OpGt, OpEq, OpAnd, OpOr, OpXor, OpShl, OpShr} {
		if k.Arity() != 2 {
			t.Errorf("%s arity = %d, want 2", k, k.Arity())
		}
	}
	for _, k := range []OpKind{OpNot, OpMov} {
		if k.Arity() != 1 {
			t.Errorf("%s arity = %d, want 1", k, k.Arity())
		}
	}
}

func TestCommutative(t *testing.T) {
	if !OpAdd.Commutative() || !OpMul.Commutative() {
		t.Error("add/mul must be commutative")
	}
	if OpSub.Commutative() || OpLt.Commutative() {
		t.Error("sub/lt must not be commutative")
	}
}

func TestAllBenchmarksValidate(t *testing.T) {
	for _, name := range BenchmarkNames() {
		g, err := ByName(name, 8)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.NumNodes() == 0 {
			t.Errorf("%s: empty graph", name)
		}
		if len(g.Outputs()) == 0 {
			t.Errorf("%s: no primary outputs", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nosuch", 8); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestBenchmarkOpCounts(t *testing.T) {
	// Structural facts stated in the paper (see DESIGN.md §3).
	cases := []struct {
		name   string
		counts map[OpKind]int
	}{
		{BenchEx, map[OpKind]int{OpMul: 4, OpSub: 3, OpAdd: 1}},
		{BenchDct, map[OpKind]int{OpMul: 5, OpAdd: 6, OpSub: 2}},
		{BenchDiffeq, map[OpKind]int{OpMul: 6, OpAdd: 2, OpSub: 2, OpLt: 1}},
		{BenchPaulin, map[OpKind]int{OpMul: 6, OpAdd: 3, OpSub: 1, OpLt: 1}},
		{BenchEWF, map[OpKind]int{OpAdd: 26, OpMul: 8}},
	}
	for _, c := range cases {
		g, _ := ByName(c.name, 8)
		got := map[OpKind]int{}
		for _, n := range g.Nodes() {
			got[n.Kind]++
		}
		for k, want := range c.counts {
			if got[k] != want {
				t.Errorf("%s: %d %s ops, want %d", c.name, got[k], k, want)
			}
		}
		total := 0
		for _, v := range c.counts {
			total += v
		}
		if g.NumNodes() != total {
			t.Errorf("%s: %d ops total, want %d", c.name, g.NumNodes(), total)
		}
	}
}

func TestExNodeLabels(t *testing.T) {
	g := Ex(8)
	wantKind := map[string]OpKind{
		"N21": OpMul, "N22": OpMul, "N24": OpMul, "N28": OpMul,
		"N25": OpSub, "N27": OpSub, "N29": OpSub, "N30": OpAdd,
	}
	for label, k := range wantKind {
		id, ok := g.NodeByName(label)
		if !ok {
			t.Fatalf("Ex: missing node %s", label)
		}
		if g.Node(id).Kind != k {
			t.Errorf("Ex: node %s kind = %s, want %s", label, g.Node(id).Kind, k)
		}
	}
}

func TestDiffeqInterpret(t *testing.T) {
	g := Diffeq(16)
	in := map[string]uint64{"x": 2, "y": 5, "u": 100, "dx": 1, "a": 10}
	out, err := g.Interpret(16, in)
	if err != nil {
		t.Fatal(err)
	}
	// x1 = x + dx
	if out["x1"] != 3 {
		t.Errorf("x1 = %d, want 3", out["x1"])
	}
	// y1 = y + u*dx
	if out["y1"] != 105 {
		t.Errorf("y1 = %d, want 105", out["y1"])
	}
	// u1 = u - 3*x*u*dx - 3*y*dx = 100 - 600 - 15 (mod 2^16)
	var base uint64 = 100
	want := (base - 600 - 15) & Mask(16)
	if out["u1"] != want {
		t.Errorf("u1 = %d, want %d", out["u1"], want)
	}
	if out["exit"] != 1 { // 3 < 10
		t.Errorf("exit = %d, want 1", out["exit"])
	}
}

func TestInterpretMissingInput(t *testing.T) {
	g := Ex(8)
	if _, err := g.Interpret(8, map[string]uint64{"a": 1}); err == nil {
		t.Fatal("expected missing-input error")
	}
}

func TestEvalOps(t *testing.T) {
	cases := []struct {
		k       OpKind
		w       int
		a, b, r uint64
	}{
		{OpAdd, 8, 200, 100, 44}, // wraps mod 256
		{OpSub, 8, 5, 10, 251},
		{OpMul, 8, 16, 16, 0},
		{OpMul, 16, 16, 16, 256},
		{OpLt, 8, 3, 4, 1},
		{OpLt, 8, 4, 3, 0},
		{OpGt, 8, 4, 3, 1},
		{OpEq, 8, 7, 7, 1},
		{OpAnd, 8, 0xF0, 0x3C, 0x30},
		{OpOr, 8, 0xF0, 0x0C, 0xFC},
		{OpXor, 8, 0xFF, 0x0F, 0xF0},
		{OpShl, 8, 1, 3, 8},
		{OpShr, 8, 0x80, 3, 0x10},
	}
	for _, c := range cases {
		if got := Eval(c.k, c.w, c.a, c.b); got != c.r {
			t.Errorf("Eval(%s,%d,%d,%d) = %d, want %d", c.k, c.w, c.a, c.b, got, c.r)
		}
	}
	if got := Eval(OpNot, 8, 0x0F); got != 0xF0 {
		t.Errorf("Eval(~,8,0x0F) = %#x, want 0xF0", got)
	}
	if got := Eval(OpMov, 8, 42); got != 42 {
		t.Errorf("Eval(mov,8,42) = %d", got)
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 || Mask(1) != 1 || Mask(8) != 0xFF || Mask(64) != ^uint64(0) || Mask(70) != ^uint64(0) {
		t.Fatal("Mask boundary values wrong")
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	for _, name := range BenchmarkNames() {
		g, _ := ByName(name, 8)
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pos := map[NodeID]int{}
		for i, n := range order {
			pos[n] = i
		}
		for _, n := range g.Nodes() {
			for _, p := range g.Preds(n.ID) {
				if pos[p] >= pos[n.ID] {
					t.Errorf("%s: pred %s not before %s", name, g.Node(p).Name, n.Name)
				}
			}
		}
	}
}

func TestPredsSuccsConsistent(t *testing.T) {
	g := Dct(8)
	for _, n := range g.Nodes() {
		for _, p := range g.Preds(n.ID) {
			found := false
			for _, s := range g.Succs(p) {
				if s == n.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("pred/succ asymmetry between %s and %s", g.Node(p).Name, n.Name)
			}
		}
	}
}

func TestDuplicateValueNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate value name")
		}
	}()
	g := New("dup", 8)
	g.Input("a")
	g.Input("a")
}

func TestOpArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	g := New("bad", 8)
	a := g.Input("a")
	g.Op(OpAdd, "t", a) // add wants 2 operands
}

func TestDotAndStringSmoke(t *testing.T) {
	g := Diffeq(8)
	d := g.Dot()
	for _, want := range []string{"digraph", "N26", "->"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dot output missing %q", want)
		}
	}
	s := g.String()
	if !strings.Contains(s, "N34") || !strings.Contains(s, "u1") {
		t.Errorf("String output incomplete: %s", s)
	}
}

// randomGraph builds a random acyclic DFG with the given seed, for
// property-based tests here and reused (by construction pattern) in the
// scheduling and synthesis packages.
func randomGraph(seed int64, nOps int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New("rand", 8)
	pool := []ValueID{g.Input("i0"), g.Input("i1"), g.Input("i2")}
	kinds := []OpKind{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
	for i := 0; i < nOps; i++ {
		k := kinds[rng.Intn(len(kinds))]
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		pool = append(pool, g.Op(k, "", a, b))
	}
	// Mark all sinks as outputs so nothing is dead.
	for _, v := range g.Values() {
		if v.Kind == ValTemp && len(v.Uses) == 0 {
			g.MarkOutput(v.ID)
		}
	}
	return g
}

func TestRandomGraphsValidate(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		g := randomGraph(seed, int(n%30)+1)
		return g.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpretDeterministic(t *testing.T) {
	prop := func(seed int64, a, b, c uint16) bool {
		g := randomGraph(seed, 12)
		in := map[string]uint64{"i0": uint64(a), "i1": uint64(b), "i2": uint64(c)}
		o1, err1 := g.Interpret(8, in)
		o2, err2 := g.Interpret(8, in)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(o1) != len(o2) {
			return false
		}
		for k, v := range o1 {
			if o2[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpretResultsWithinWidth(t *testing.T) {
	prop := func(seed int64, a, b, c uint16, w uint8) bool {
		width := int(w%16) + 1
		g := randomGraph(seed, 10)
		in := map[string]uint64{"i0": uint64(a), "i1": uint64(b), "i2": uint64(c)}
		out, err := g.Interpret(width, in)
		if err != nil {
			return false
		}
		for _, v := range out {
			if v&^Mask(width) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
