// Package dfg defines the data-flow graph intermediate representation used
// as the behavioral input to high-level test synthesis.
//
// A Graph is a pure data-flow description of a computation: operation nodes
// (Node) consume and produce values (Value). Values are either primary
// inputs, compile-time constants, or the results of operations; a value may
// additionally be marked as a primary output. The representation corresponds
// to the unscheduled behavioural specification the paper's synthesis
// algorithm accepts (after the VHDL front-end in package hdl has elaborated
// the source text).
package dfg

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind enumerates the operation types supported by the data path.
type OpKind int

// Operation kinds. The arithmetic subset (Add..Cmp*) is what the 1998 HLS
// benchmark suite uses; the logical subset rounds out the module library.
const (
	OpInvalid OpKind = iota
	OpAdd
	OpSub
	OpMul
	OpLt  // less-than comparison, produces 0/1
	OpGt  // greater-than comparison
	OpEq  // equality comparison
	OpAnd // bitwise and
	OpOr  // bitwise or
	OpXor // bitwise xor
	OpNot // bitwise complement (unary)
	OpShl // shift left by constant operand
	OpShr // logical shift right by constant operand
	OpMov // identity move (unary)
)

var opNames = map[OpKind]string{
	OpInvalid: "invalid",
	OpAdd:     "+",
	OpSub:     "-",
	OpMul:     "*",
	OpLt:      "<",
	OpGt:      ">",
	OpEq:      "==",
	OpAnd:     "&",
	OpOr:      "|",
	OpXor:     "^",
	OpNot:     "~",
	OpShl:     "<<",
	OpShr:     ">>",
	OpMov:     "mov",
}

// String returns the conventional operator symbol for k.
func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Arity reports the number of operands the operation consumes.
func (k OpKind) Arity() int {
	switch k {
	case OpNot, OpMov:
		return 1
	default:
		return 2
	}
}

// Commutative reports whether swapping the two operands preserves semantics.
func (k OpKind) Commutative() bool {
	switch k {
	case OpAdd, OpMul, OpEq, OpAnd, OpOr, OpXor:
		return true
	default:
		return false
	}
}

// NodeID identifies an operation node within a Graph.
type NodeID int

// ValueID identifies a value within a Graph.
type ValueID int

// NoNode and NoValue are sentinel identifiers.
const (
	NoNode  NodeID  = -1
	NoValue ValueID = -1
)

// ValueKind classifies how a value is produced.
type ValueKind int

// Value kinds.
const (
	ValInput ValueKind = iota // primary input port
	ValConst                  // compile-time constant
	ValTemp                   // produced by an operation node
)

// Node is a single operation instance in the data-flow graph.
type Node struct {
	ID   NodeID
	Name string // benchmark node label, e.g. "N21"
	Kind OpKind
	In   []ValueID // operand values, length == Kind.Arity()
	Out  ValueID   // result value
}

// Value is a datum flowing through the graph.
type Value struct {
	ID       ValueID
	Name     string // variable name, e.g. "dx"
	Kind     ValueKind
	Const    int64  // meaningful only when Kind == ValConst
	Def      NodeID // producing node; NoNode for inputs and constants
	Uses     []NodeID
	IsOutput bool // primary output of the behaviour
}

// Graph is a complete data-flow graph.
type Graph struct {
	Name   string
	Width  int // default bit width of every value; overridable at synthesis
	nodes  []*Node
	values []*Value
	byName map[string]ValueID
}

// New returns an empty graph with the given name and default bit width.
func New(name string, width int) *Graph {
	return &Graph{Name: name, Width: width, byName: make(map[string]ValueID)}
}

// NumNodes returns the number of operation nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumValues returns the number of values.
func (g *Graph) NumValues() int { return len(g.values) }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Value returns the value with the given id.
func (g *Graph) Value(id ValueID) *Value { return g.values[id] }

// Nodes returns the operation nodes in id order. The returned slice is the
// graph's backing store; callers must not mutate it.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Values returns the values in id order. The returned slice is the graph's
// backing store; callers must not mutate it.
func (g *Graph) Values() []*Value { return g.values }

// ValueByName returns the value with the given variable name.
func (g *Graph) ValueByName(name string) (ValueID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// NodeByName returns the node with the given label.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	for _, n := range g.nodes {
		if n.Name == name {
			return n.ID, true
		}
	}
	return NoNode, false
}

// Input declares a new primary input value.
func (g *Graph) Input(name string) ValueID {
	return g.addValue(&Value{Name: name, Kind: ValInput, Def: NoNode})
}

// Const declares a new constant value.
func (g *Graph) Const(name string, c int64) ValueID {
	return g.addValue(&Value{Name: name, Kind: ValConst, Const: c, Def: NoNode})
}

// Op adds an operation node producing a fresh temp value with the given
// name. The node label defaults to "N<k>" where k is the node index; use
// OpNamed to control it.
func (g *Graph) Op(kind OpKind, resultName string, operands ...ValueID) ValueID {
	return g.OpNamed(fmt.Sprintf("N%d", len(g.nodes)+1), kind, resultName, operands...)
}

// OpNamed adds an operation node with an explicit label.
func (g *Graph) OpNamed(label string, kind OpKind, resultName string, operands ...ValueID) ValueID {
	if len(operands) != kind.Arity() {
		panic(fmt.Sprintf("dfg: op %s wants %d operands, got %d", kind, kind.Arity(), len(operands)))
	}
	nid := NodeID(len(g.nodes))
	out := g.addValue(&Value{Name: resultName, Kind: ValTemp, Def: nid})
	n := &Node{ID: nid, Name: label, Kind: kind, In: append([]ValueID(nil), operands...), Out: out}
	g.nodes = append(g.nodes, n)
	for _, v := range operands {
		g.values[v].Uses = append(g.values[v].Uses, nid)
	}
	return out
}

// MarkOutput marks v as a primary output.
func (g *Graph) MarkOutput(v ValueID) { g.values[v].IsOutput = true }

// Rename changes a value's name (used by front ends to give an output
// port's name to the expression that drives it). The new name must be
// unused.
func (g *Graph) Rename(v ValueID, name string) error {
	if g.values[v].Name == name {
		return nil
	}
	if _, exists := g.byName[name]; exists {
		return fmt.Errorf("dfg: name %q already in use", name)
	}
	val := g.values[v]
	delete(g.byName, val.Name)
	val.Name = name
	g.byName[name] = v
	return nil
}

// Outputs returns the ids of all primary-output values in id order.
func (g *Graph) Outputs() []ValueID {
	var out []ValueID
	for _, v := range g.values {
		if v.IsOutput {
			out = append(out, v.ID)
		}
	}
	return out
}

// Inputs returns the ids of all primary-input values in id order.
func (g *Graph) Inputs() []ValueID {
	var in []ValueID
	for _, v := range g.values {
		if v.Kind == ValInput {
			in = append(in, v.ID)
		}
	}
	return in
}

// Consts returns the ids of all constant values in id order.
func (g *Graph) Consts() []ValueID {
	var cs []ValueID
	for _, v := range g.values {
		if v.Kind == ValConst {
			cs = append(cs, v.ID)
		}
	}
	return cs
}

func (g *Graph) addValue(v *Value) ValueID {
	v.ID = ValueID(len(g.values))
	if v.Name == "" {
		v.Name = fmt.Sprintf("t%d", v.ID)
	}
	if _, dup := g.byName[v.Name]; dup {
		panic(fmt.Sprintf("dfg: duplicate value name %q in graph %s", v.Name, g.Name))
	}
	g.byName[v.Name] = v.ID
	g.values = append(g.values, v)
	return v.ID
}

// Preds returns the operation nodes that produce n's operands (duplicates
// removed, order by node id).
func (g *Graph) Preds(n NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, v := range g.nodes[n].In {
		d := g.values[v].Def
		if d != NoNode && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Succs returns the operation nodes that consume n's result (duplicates
// removed, order by node id).
func (g *Graph) Succs(n NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, u := range g.values[g.nodes[n].Out].Uses {
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopoOrder returns the node ids in a topological order of the data
// dependences. It returns an error if the graph contains a dependence cycle.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	indeg := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n.ID] = len(g.Preds(n.ID))
	}
	var queue []NodeID
	for _, n := range g.nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n.ID)
		}
	}
	var order []NodeID
	for len(queue) > 0 {
		sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, s := range g.Succs(n) {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("dfg: graph %s contains a dependence cycle", g.Name)
	}
	return order, nil
}

// Validate checks structural well-formedness: operand arities, id
// consistency, use lists, and acyclicity.
func (g *Graph) Validate() error {
	for i, n := range g.nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("dfg: node %d has inconsistent id %d", i, n.ID)
		}
		if len(n.In) != n.Kind.Arity() {
			return fmt.Errorf("dfg: node %s (%s) has %d operands, want %d", n.Name, n.Kind, len(n.In), n.Kind.Arity())
		}
		for _, v := range n.In {
			if v < 0 || int(v) >= len(g.values) {
				return fmt.Errorf("dfg: node %s references unknown value %d", n.Name, v)
			}
		}
		if n.Out < 0 || int(n.Out) >= len(g.values) {
			return fmt.Errorf("dfg: node %s has invalid result value %d", n.Name, n.Out)
		}
		if g.values[n.Out].Def != n.ID {
			return fmt.Errorf("dfg: result value of node %s does not point back to it", n.Name)
		}
	}
	for i, v := range g.values {
		if v.ID != ValueID(i) {
			return fmt.Errorf("dfg: value %d has inconsistent id %d", i, v.ID)
		}
		if v.Kind == ValTemp && v.Def == NoNode {
			return fmt.Errorf("dfg: temp value %s has no defining node", v.Name)
		}
		if v.Kind != ValTemp && v.Def != NoNode {
			return fmt.Errorf("dfg: non-temp value %s has a defining node", v.Name)
		}
		for _, u := range v.Uses {
			found := false
			for _, in := range g.nodes[u].In {
				if in == v.ID {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("dfg: value %s lists node %s as a use, but the node does not read it", v.Name, g.nodes[u].Name)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// String renders a compact single-line-per-node listing.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s (width %d)\n", g.Name, g.Width)
	for _, n := range g.nodes {
		ops := make([]string, len(n.In))
		for i, v := range n.In {
			ops[i] = g.values[v].Name
		}
		fmt.Fprintf(&b, "  %s: %s = %s %s\n", n.Name, g.values[n.Out].Name, n.Kind, strings.Join(ops, ", "))
	}
	return b.String()
}

// Dot renders the graph in Graphviz dot format.
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for _, v := range g.values {
		switch {
		case v.Kind == ValInput:
			fmt.Fprintf(&b, "  v%d [label=%q shape=invtriangle];\n", v.ID, v.Name)
		case v.Kind == ValConst:
			fmt.Fprintf(&b, "  v%d [label=\"%s=%d\" shape=plaintext];\n", v.ID, v.Name, v.Const)
		case v.IsOutput:
			fmt.Fprintf(&b, "  v%d [label=%q shape=triangle];\n", v.ID, v.Name)
		}
	}
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s\" shape=circle];\n", n.ID, n.Name, n.Kind)
		for _, v := range n.In {
			val := g.values[v]
			if val.Def != NoNode {
				fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", val.Def, n.ID, val.Name)
			} else {
				fmt.Fprintf(&b, "  v%d -> n%d;\n", v, n.ID)
			}
		}
		if out := g.values[n.Out]; out.IsOutput {
			fmt.Fprintf(&b, "  n%d -> v%d;\n", n.ID, out.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
