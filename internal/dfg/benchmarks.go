package dfg

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file encodes the high-level synthesis benchmark suite the paper
// evaluates on: Ex, Dct, Diffeq, EWF, Paulin and Tseng. The Diffeq/Paulin
// (HAL) and EWF graphs follow the well-known published structures. The Ex
// and Dct graphs come from Lee et al. [6,7] and are not reprinted in the
// paper; they are reconstructed here to match every structural fact the
// paper states: the operation node labels and their types (e.g. Ex: N21,
// N22, N24, N28 multiply; N25, N27, N29 subtract; N30 add), the variable
// name sets, and the mergeability groups of Tables 1-3. See DESIGN.md §3.

// Benchmark names accepted by ByName.
const (
	BenchEx     = "ex"
	BenchDct    = "dct"
	BenchDiffeq = "diffeq"
	BenchEWF    = "ewf"
	BenchPaulin = "paulin"
	BenchTseng  = "tseng"
)

// Typed input errors. Every front-end entry point (ByName, hdl.Compile,
// the synthesis flows of internal/core) rejects nonsensical inputs with
// one of these — matchable with errors.Is — instead of failing deep
// inside synthesis or silently computing at a meaningless width.
var (
	// ErrBadWidth rejects data-path bit widths outside [1, 64]: the gate
	// level packs one value bit per uint64 lane word, so 64 is the
	// widest data path the simulators can represent.
	ErrBadWidth = errors.New("dfg: data-path width must be in [1, 64]")
	// ErrUnknownBenchmark rejects a benchmark name ByName does not know.
	ErrUnknownBenchmark = errors.New("dfg: unknown benchmark")
)

// CheckWidth validates a data-path bit width, returning a wrapped
// ErrBadWidth outside [1, 64].
func CheckWidth(width int) error {
	if width < 1 || width > 64 {
		return fmt.Errorf("%w (got %d)", ErrBadWidth, width)
	}
	return nil
}

// resolvers maps benchmark-name namespaces ("<ns>:<rest>") to registered
// constructors; see RegisterResolver.
var (
	resolverMu sync.RWMutex
	resolvers  = map[string]func(name string, width int) (*Graph, error){}
)

// RegisterResolver installs a constructor for benchmark names of the form
// "<ns>:<rest>". ByName dispatches any name containing a ':' to the
// resolver registered for its namespace, so packages layered above dfg
// (e.g. the seeded graph generator in internal/dfggen, which registers
// "gen") can make whole families of behaviours addressable wherever a
// benchmark name is accepted — the facade, the daemon's `bench` field,
// the experiment tables — without new entry points. Registration happens
// in package init; registering a namespace twice panics.
func RegisterResolver(ns string, fn func(name string, width int) (*Graph, error)) {
	resolverMu.Lock()
	defer resolverMu.Unlock()
	if _, dup := resolvers[ns]; dup {
		panic(fmt.Sprintf("dfg: benchmark namespace %q registered twice", ns))
	}
	resolvers[ns] = fn
}

// ByName constructs the named benchmark at the given bit width.
func ByName(name string, width int) (*Graph, error) {
	if err := CheckWidth(width); err != nil {
		return nil, err
	}
	if i := strings.IndexByte(name, ':'); i > 0 {
		resolverMu.RLock()
		fn := resolvers[name[:i]]
		resolverMu.RUnlock()
		if fn != nil {
			return fn(name, width)
		}
		return nil, fmt.Errorf("%w %q", ErrUnknownBenchmark, name)
	}
	switch name {
	case BenchEx:
		return Ex(width), nil
	case BenchDct:
		return Dct(width), nil
	case BenchDiffeq:
		return Diffeq(width), nil
	case BenchEWF:
		return EWF(width), nil
	case BenchPaulin:
		return Paulin(width), nil
	case BenchTseng:
		return Tseng(width), nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownBenchmark, name)
	}
}

// BenchmarkNames returns the names of all built-in benchmarks, sorted.
func BenchmarkNames() []string {
	names := []string{BenchEx, BenchDct, BenchDiffeq, BenchEWF, BenchPaulin, BenchTseng}
	sort.Strings(names)
	return names
}

// Ex is the area-optimized example of Lee et al. used in Table 1 and
// Figure 2: four multiplications (N21, N22, N24, N28), three subtractions
// (N25, N27, N29) and one addition (N30) over the variables a-f and u-z.
func Ex(width int) *Graph {
	g := New(BenchEx, width)
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	d := g.Input("d")
	e := g.OpNamed("N21", OpMul, "e", a, b)
	f := g.OpNamed("N22", OpMul, "f", c, d)
	u := g.OpNamed("N24", OpMul, "u", a, d)
	v := g.OpNamed("N25", OpSub, "v", e, f)
	w := g.OpNamed("N27", OpSub, "w", u, v)
	x := g.OpNamed("N28", OpMul, "x", f, v)
	y := g.OpNamed("N29", OpSub, "y", w, x)
	z := g.OpNamed("N30", OpAdd, "z", w, x)
	g.MarkOutput(y)
	g.MarkOutput(z)
	return g
}

// Dct is the portion of an 8-point DCT signal-flow graph used in Table 2
// and Figure 3(a): five multiplications (N31, N33, N35, N38, N40), six
// additions (N27, N29, N37, N42, N43, N44) and two subtractions (N28, N30)
// over the variables a-j, p1-p4 and q2-q4.
func Dct(width int) *Graph {
	g := New(BenchDct, width)
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	d := g.Input("d")
	c1 := g.Const("c1", 0x5B) // cos coefficients, truncated to integers
	c2 := g.Const("c2", 0x55)
	c3 := g.Const("c3", 0x31)
	c4 := g.Const("c4", 0x19)
	c5 := g.Const("c5", 0x47)

	e := g.OpNamed("N27", OpAdd, "e", a, b)
	f := g.OpNamed("N28", OpSub, "f", a, b)
	gg := g.OpNamed("N29", OpAdd, "g", c, d)
	h := g.OpNamed("N30", OpSub, "h", c, d)
	i := g.OpNamed("N31", OpMul, "i", f, c1)
	j := g.OpNamed("N33", OpMul, "j", h, c2)
	p1 := g.OpNamed("N35", OpMul, "p1", f, c3)
	p2 := g.OpNamed("N37", OpAdd, "p2", e, gg)
	p3 := g.OpNamed("N38", OpMul, "p3", h, c4)
	p4 := g.OpNamed("N40", OpMul, "p4", e, c5)
	q2 := g.OpNamed("N42", OpAdd, "q2", i, j)
	q3 := g.OpNamed("N43", OpAdd, "q3", p1, p3)
	q4 := g.OpNamed("N44", OpAdd, "q4", p2, p4)
	g.MarkOutput(q2)
	g.MarkOutput(q3)
	g.MarkOutput(q4)
	return g
}

// Diffeq is the HAL differential-equation benchmark [12] used in Table 3
// and Figure 3(b): one Euler step of y” + 3xy' + 3y = 0. Six
// multiplications (N26, N27, N29, N31, N33, N35), two additions (N25, N36),
// two subtractions (N30, N34) and one comparison (N24). The value names
// a1-g match the register-allocation rows of Table 3.
func Diffeq(width int) *Graph {
	g := New(BenchDiffeq, width)
	x := g.Input("x")
	y := g.Input("y")
	u := g.Input("u")
	dx := g.Input("dx")
	a := g.Input("a") // loop bound x_max
	three := g.Const("k3", 3)

	x1 := g.OpNamed("N25", OpAdd, "x1", x, dx)
	exit := g.OpNamed("N24", OpLt, "exit", x1, a)
	a1 := g.OpNamed("N26", OpMul, "a1", three, x)
	b := g.OpNamed("N27", OpMul, "b", u, dx)
	d := g.OpNamed("N29", OpMul, "d", three, y)
	e := g.OpNamed("N31", OpMul, "e", a1, b)
	f := g.OpNamed("N33", OpMul, "f", d, dx)
	gg := g.OpNamed("N30", OpSub, "g", u, e)
	u1 := g.OpNamed("N34", OpSub, "u1", gg, f)
	c := g.OpNamed("N35", OpMul, "c", u, dx)
	y1 := g.OpNamed("N36", OpAdd, "y1", y, c)
	g.MarkOutput(x1)
	g.MarkOutput(y1)
	g.MarkOutput(u1)
	g.MarkOutput(exit)
	return g
}

// Paulin is the HAL benchmark as presented by Paulin, Knight and Girczyc
// [12]: the same differential-equation step as Diffeq with the update of
// u1 associated the other way, u1 = u - (3*x*u*dx + 3*y*dx), which turns
// one subtraction into an addition and changes the dependence structure
// seen by the scheduler.
func Paulin(width int) *Graph {
	g := New(BenchPaulin, width)
	x := g.Input("x")
	y := g.Input("y")
	u := g.Input("u")
	dx := g.Input("dx")
	a := g.Input("a")
	three := g.Const("k3", 3)

	t1 := g.OpNamed("N1", OpMul, "t1", three, x)
	t2 := g.OpNamed("N2", OpMul, "t2", u, dx)
	t3 := g.OpNamed("N3", OpMul, "t3", three, y)
	t4 := g.OpNamed("N4", OpMul, "t4", t1, t2)
	t5 := g.OpNamed("N5", OpMul, "t5", t3, dx)
	t6 := g.OpNamed("N6", OpAdd, "t6", t4, t5)
	u1 := g.OpNamed("N7", OpSub, "u1", u, t6)
	t7 := g.OpNamed("N8", OpMul, "t7", u, dx)
	y1 := g.OpNamed("N9", OpAdd, "y1", y, t7)
	x1 := g.OpNamed("N10", OpAdd, "x1", x, dx)
	exit := g.OpNamed("N11", OpLt, "exit", x1, a)
	g.MarkOutput(x1)
	g.MarkOutput(y1)
	g.MarkOutput(u1)
	g.MarkOutput(exit)
	return g
}

// EWF is the fifth-order elliptic wave filter benchmark [6,7]: 34
// operations (26 additions, 8 multiplications by filter coefficients) over
// the input sample and seven state variables. The structure follows the
// widely used published graph: two cascaded second-order sections feeding a
// final summation chain, with a critical path of 14 additions.
func EWF(width int) *Graph {
	g := New(BenchEWF, width)
	in := g.Input("inp")
	sv2 := g.Input("sv2")
	sv13 := g.Input("sv13")
	sv18 := g.Input("sv18")
	sv26 := g.Input("sv26")
	sv33 := g.Input("sv33")
	sv38 := g.Input("sv38")
	sv39 := g.Input("sv39")
	// Filter coefficients, truncated to integers for the integer data path.
	k1 := g.Const("k1", 3)
	k2 := g.Const("k2", 5)
	k3 := g.Const("k3", 7)
	k4 := g.Const("k4", 11)
	k5 := g.Const("k5", 13)
	k6 := g.Const("k6", 17)
	k7 := g.Const("k7", 19)
	k8 := g.Const("k8", 23)

	add := func(name string, p, q ValueID) ValueID { return g.Op(OpAdd, name, p, q) }
	mul := func(name string, p, q ValueID) ValueID { return g.Op(OpMul, name, p, q) }

	// First section.
	t1 := add("t1", in, sv2)
	t2 := add("t2", t1, sv13)
	t3 := add("t3", t2, sv18) // joins feedback of first biquad
	m1 := mul("m1", t3, k1)
	t4 := add("t4", m1, sv2)
	m2 := mul("m2", t4, k2)
	t5 := add("t5", m2, t1)
	t6 := add("t6", t5, sv13)
	m3 := mul("m3", t6, k3)
	t7 := add("t7", m3, t4)
	t8 := add("t8", t7, sv18)
	nsv2 := add("nsv2", t5, t7)   // state update 1
	nsv13 := add("nsv13", t6, t8) // state update 2

	// Second section.
	t9 := add("t9", t8, sv26)
	m4 := mul("m4", t9, k4)
	t10 := add("t10", m4, sv33)
	m5 := mul("m5", t10, k5)
	t11 := add("t11", m5, t9)
	t12 := add("t12", t11, sv26)
	m6 := mul("m6", t12, k6)
	t13 := add("t13", m6, t10)
	t14 := add("t14", t13, sv33)
	nsv18 := add("nsv18", t11, t13)
	nsv26 := add("nsv26", t12, t14)

	// Output section with the remaining states.
	t15 := add("t15", t14, sv38)
	m7 := mul("m7", t15, k7)
	t16 := add("t16", m7, sv39)
	m8 := mul("m8", t16, k8)
	t17 := add("t17", m8, t15)
	t18 := add("t18", t17, sv38)
	nsv33 := add("nsv33", t16, t17)
	nsv38 := add("nsv38", t17, t18)
	nsv39 := add("nsv39", t18, sv39)
	outp := add("outp", t18, t16)

	for _, v := range []ValueID{nsv2, nsv13, nsv18, nsv26, nsv33, nsv38, nsv39, outp} {
		g.MarkOutput(v)
	}
	return g
}

// Tseng is the Facet example of Tseng and Siewiorek [16]: a small
// mixed-operation graph (arithmetic and logic) over three inputs, exercising
// module allocation across heterogeneous operation types.
func Tseng(width int) *Graph {
	g := New(BenchTseng, width)
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")

	t1 := g.Op(OpAdd, "t1", a, b)
	t2 := g.Op(OpAnd, "t2", a, c)
	t3 := g.Op(OpSub, "t3", t1, c)
	t4 := g.Op(OpOr, "t4", t2, t3)
	t5 := g.Op(OpMul, "t5", t3, b)
	t6 := g.Op(OpAdd, "t6", t4, t5)
	t7 := g.Op(OpSub, "t7", t5, a)
	g.MarkOutput(t6)
	g.MarkOutput(t7)
	return g
}
