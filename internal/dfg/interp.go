package dfg

import (
	"fmt"

	"repro/internal/exec"
)

// Eval evaluates a single operation on width-bit unsigned operands and
// returns the width-bit result. Comparison operators return 0 or 1.
// Arithmetic wraps modulo 2^width, matching the hardware the synthesizer
// emits.
func Eval(kind OpKind, width int, operands ...uint64) uint64 {
	mask := Mask(width)
	var r uint64
	switch kind {
	case OpAdd:
		r = operands[0] + operands[1]
	case OpSub:
		r = operands[0] - operands[1]
	case OpMul:
		r = operands[0] * operands[1]
	case OpLt:
		if operands[0]&mask < operands[1]&mask {
			r = 1
		}
	case OpGt:
		if operands[0]&mask > operands[1]&mask {
			r = 1
		}
	case OpEq:
		if operands[0]&mask == operands[1]&mask {
			r = 1
		}
	case OpAnd:
		r = operands[0] & operands[1]
	case OpOr:
		r = operands[0] | operands[1]
	case OpXor:
		r = operands[0] ^ operands[1]
	case OpNot:
		r = ^operands[0]
	case OpShl:
		r = operands[0] << (operands[1] & 63)
	case OpShr:
		r = (operands[0] & mask) >> (operands[1] & 63)
	case OpMov:
		r = operands[0]
	default:
		panic(fmt.Sprintf("dfg: Eval of unsupported op %v", kind))
	}
	return r & mask
}

// Mask returns a bit mask with the low width bits set.
func Mask(width int) uint64 {
	if width <= 0 {
		return 0
	}
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// Interpret executes the graph once at the given bit width. inputs maps
// primary-input names to values; constants come from the graph. It returns
// the value of every primary output by name. Interpret is the reference
// semantics that synthesized RTL and gate-level implementations are checked
// against.
// Interpret is a public library boundary: an internal panic (e.g. Eval on
// an unsupported op kind in a hand-built graph) is recovered and returned
// as an *exec.ExecError rather than unwinding into the caller.
func (g *Graph) Interpret(width int, inputs map[string]uint64) (map[string]uint64, error) {
	return exec.Guard1("dfg.interpret", -1, func() (map[string]uint64, error) {
		return g.interpret(width, inputs)
	})
}

func (g *Graph) interpret(width int, inputs map[string]uint64) (map[string]uint64, error) {
	vals := make([]uint64, len(g.values))
	have := make([]bool, len(g.values))
	for _, v := range g.values {
		switch v.Kind {
		case ValInput:
			x, ok := inputs[v.Name]
			if !ok {
				return nil, fmt.Errorf("dfg: missing input %q", v.Name)
			}
			vals[v.ID] = x & Mask(width)
			have[v.ID] = true
		case ValConst:
			vals[v.ID] = uint64(v.Const) & Mask(width)
			have[v.ID] = true
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, nid := range order {
		n := g.nodes[nid]
		ops := make([]uint64, len(n.In))
		for i, v := range n.In {
			if !have[v] {
				return nil, fmt.Errorf("dfg: node %s reads undefined value %s", n.Name, g.values[v].Name)
			}
			ops[i] = vals[v]
		}
		vals[n.Out] = Eval(n.Kind, width, ops...)
		have[n.Out] = true
	}
	out := make(map[string]uint64)
	for _, v := range g.values {
		if v.IsOutput {
			if !have[v.ID] {
				return nil, fmt.Errorf("dfg: output %q never defined", v.Name)
			}
			out[v.Name] = vals[v.ID]
		}
	}
	return out, nil
}
