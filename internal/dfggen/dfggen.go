// Package dfggen generates seeded, deterministic random data-flow
// graphs. It is the workload substrate behind property tests and the
// hltsload traffic driver: every (Spec, width) pair reproduces a
// byte-identical dfg.Graph on every run and every platform, so
// generated behaviours are usable wherever determinism is load-bearing
// — fingerprint-keyed caching, request coalescing, and cluster
// placement all key on the graph's canonical hash.
//
// Specs travel as benchmark names. Spec.Name renders a canonical
// "gen:..." string and the package registers that namespace with
// dfg.RegisterResolver in init, so a generated behaviour is
// addressable anywhere a benchmark name is accepted (the hlts facade,
// the daemon's `bench` field, hltsbench -gen, the table endpoint)
// with no new wire format:
//
//	gen:s7-o24-mmixed-hmesh-f2-i4-c2
//	gen:s1-o16-mdiffeq-hdeep-f3-i4-c2-loop
//
// Graphs are built layer by layer. The shape picks the layer profile
// (mesh ~ square, wide ~ shallow and broad, deep ~ narrow chains,
// diamond ~ swell then taper); depth is forced by reserving each
// non-entry op's first operand for a previous-layer value. Fan-out is
// a hub bias: higher -f makes a few early values feed many ops.
// Inputs and constants are guaranteed to be consumed (a FIFO of
// unused sources drains into free operand slots before any reuse),
// and temps nothing consumes become primary outputs, so generated
// graphs always pass dfg.Validate and the stage-boundary checkers in
// internal/validate.
//
// Only hardware-supported op kinds are emitted (the word-level gate
// builder rejects shifts), so every generated graph flows through all
// four synthesis flows, RTL generation, ATPG, and BIST unchanged.
package dfggen

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dfg"
)

// ErrBadSpec tags every spec validation and parse error so callers
// (the daemon maps it to a 400) can distinguish caller mistakes from
// generator bugs.
var ErrBadSpec = errors.New("dfggen: bad generator spec")

// Prefix is the benchmark-name namespace registered with dfg.ByName.
const Prefix = "gen"

func init() {
	dfg.RegisterResolver(Prefix, func(name string, width int) (*dfg.Graph, error) {
		spec, err := Parse(name)
		if err != nil {
			return nil, err
		}
		return Generate(spec, width)
	})
}

// Spec parameterizes one generated graph. The zero value of every
// field means "default"; Normalize fills defaults and validates
// ranges. Two specs that normalize equal generate identical graphs.
type Spec struct {
	Seed   uint64 // PRNG seed; the only source of randomness
	Ops    int    // total operation count, including loop/cond idiom ops (default 24)
	Mix    string // op-kind weighting: arith, mul, logic, cmp, mixed, diffeq (default mixed)
	Shape  string // layer profile: mesh, wide, deep, diamond (default mesh)
	Fanout int    // hub bias 1..8; higher concentrates uses on few values (default 2)
	Inputs int    // primary inputs (default ~ops/4, clamped to [2,16])
	Consts int    // constants (default ~ops/8, clamped to [1,8])
	Loop   bool   // append Diffeq's loop idiom: x1=x+dx, exit=(x1<xmax), costs 2 ops
	Cond   bool   // append a conditional select r=e+lt*(t-e), costs 4 ops
}

// opWeight is one entry of a mix table. Tables are ordered slices, not
// maps, so weighted draws are deterministic.
type opWeight struct {
	kind   dfg.OpKind
	weight int
}

var mixes = map[string][]opWeight{
	"arith":  {{dfg.OpAdd, 5}, {dfg.OpSub, 3}, {dfg.OpMul, 2}},
	"mul":    {{dfg.OpMul, 3}, {dfg.OpAdd, 2}, {dfg.OpSub, 1}},
	"logic":  {{dfg.OpAnd, 3}, {dfg.OpOr, 3}, {dfg.OpXor, 2}, {dfg.OpNot, 1}},
	"cmp":    {{dfg.OpAdd, 3}, {dfg.OpSub, 2}, {dfg.OpLt, 1}, {dfg.OpGt, 1}, {dfg.OpEq, 1}},
	"mixed":  {{dfg.OpAdd, 4}, {dfg.OpSub, 3}, {dfg.OpMul, 2}, {dfg.OpAnd, 2}, {dfg.OpOr, 2}, {dfg.OpXor, 1}, {dfg.OpLt, 1}, {dfg.OpNot, 1}},
	"diffeq": {{dfg.OpMul, 6}, {dfg.OpAdd, 2}, {dfg.OpSub, 2}, {dfg.OpLt, 1}},
}

var shapeNames = []string{"mesh", "wide", "deep", "diamond"}

// Mixes returns the known mix names in sorted order.
func Mixes() []string {
	return []string{"arith", "cmp", "diffeq", "logic", "mixed", "mul"}
}

// Shapes returns the known shape names.
func Shapes() []string { return append([]string(nil), shapeNames...) }

func knownShape(s string) bool {
	for _, k := range shapeNames {
		if s == k {
			return true
		}
	}
	return false
}

// idiom op budgets: Loop appends 2 ops, Cond appends 4.
const (
	loopOps = 2
	condOps = 4
)

// Normalize fills defaults and validates ranges. It is idempotent;
// Name and Generate call it internally, so callers only need it when
// they want to inspect the resolved parameters.
func (s Spec) Normalize() (Spec, error) {
	if s.Ops == 0 {
		s.Ops = 24
	}
	if s.Ops < 1 || s.Ops > 4096 {
		return s, fmt.Errorf("%w: ops %d outside [1,4096]", ErrBadSpec, s.Ops)
	}
	if s.Mix == "" {
		s.Mix = "mixed"
	}
	if _, ok := mixes[s.Mix]; !ok {
		return s, fmt.Errorf("%w: unknown mix %q (have %s)", ErrBadSpec, s.Mix, strings.Join(Mixes(), ", "))
	}
	if s.Shape == "" {
		s.Shape = "mesh"
	}
	if !knownShape(s.Shape) {
		return s, fmt.Errorf("%w: unknown shape %q (have %s)", ErrBadSpec, s.Shape, strings.Join(shapeNames, ", "))
	}
	if s.Fanout == 0 {
		s.Fanout = 2
	}
	if s.Fanout < 1 || s.Fanout > 8 {
		return s, fmt.Errorf("%w: fanout %d outside [1,8]", ErrBadSpec, s.Fanout)
	}
	reserved := 0
	if s.Loop {
		reserved += loopOps
	}
	if s.Cond {
		reserved += condOps
	}
	body := s.Ops - reserved
	min := 1
	if s.Cond {
		// The select idiom blends two existing temps, so the body must
		// produce at least two.
		min = 2
	}
	if body < min {
		return s, fmt.Errorf("%w: ops %d too small for requested idioms (need %d beyond the %d idiom ops)", ErrBadSpec, s.Ops, min, reserved)
	}
	defIn, defC := s.Inputs == 0, s.Consts == 0
	if defC {
		s.Consts = clamp(body/8, 1, 8)
	}
	if defIn {
		s.Inputs = clamp(body/4, 2, 16)
	}
	// Defaulted source counts shrink to fit tiny bodies; explicit ones
	// are the caller's claim and error below instead.
	if defIn && s.Inputs+s.Consts > body {
		s.Inputs = clamp(body-s.Consts, 1, s.Inputs)
	}
	if defC && s.Inputs+s.Consts > body {
		s.Consts = clamp(body-s.Inputs, 1, s.Consts)
	}
	if s.Inputs < 1 || s.Inputs > 64 {
		return s, fmt.Errorf("%w: inputs %d outside [1,64]", ErrBadSpec, s.Inputs)
	}
	if s.Consts < 1 || s.Consts > 32 {
		return s, fmt.Errorf("%w: consts %d outside [1,32]", ErrBadSpec, s.Consts)
	}
	// Every source must be consumable: each body op retires at least one
	// fresh source on average only if sources <= body (generate flips
	// unary kinds to binary when slots run short, but even then an op
	// has at most 2 slots and deeper ops reserve one for the depth edge).
	if s.Inputs+s.Consts > body {
		return s, fmt.Errorf("%w: inputs+consts %d exceeds body ops %d; every source must be consumed", ErrBadSpec, s.Inputs+s.Consts, body)
	}
	return s, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Name renders the canonical benchmark name for the spec. The name
// round-trips through Parse and embeds every normalized parameter, so
// equal names mean byte-identical graphs (and therefore equal
// fingerprints). Invalid specs render to a name that Parse will then
// reject; callers who need the error early should Normalize first.
func (s Spec) Name() string {
	if n, err := s.Normalize(); err == nil {
		s = n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:s%d-o%d-m%s-h%s-f%d-i%d-c%d", Prefix, s.Seed, s.Ops, s.Mix, s.Shape, s.Fanout, s.Inputs, s.Consts)
	if s.Loop {
		b.WriteString("-loop")
	}
	if s.Cond {
		b.WriteString("-cond")
	}
	return b.String()
}

// IsGenName reports whether a benchmark name addresses the generator
// namespace.
func IsGenName(name string) bool { return strings.HasPrefix(name, Prefix+":") }

// Parse decodes a canonical spec name (with or without the "gen:"
// prefix) back into a Spec. All errors wrap ErrBadSpec.
func Parse(name string) (Spec, error) {
	body := strings.TrimPrefix(name, Prefix+":")
	if body == "" || body == name && strings.Contains(name, ":") {
		return Spec{}, fmt.Errorf("%w: %q is not in the %s: namespace", ErrBadSpec, name, Prefix)
	}
	var s Spec
	for _, tok := range strings.Split(body, "-") {
		if tok == "" {
			return Spec{}, fmt.Errorf("%w: empty field in %q", ErrBadSpec, name)
		}
		switch {
		case tok == "loop":
			s.Loop = true
			continue
		case tok == "cond":
			s.Cond = true
			continue
		}
		key, val := tok[:1], tok[1:]
		if val == "" {
			return Spec{}, fmt.Errorf("%w: field %q in %q has no value", ErrBadSpec, tok, name)
		}
		switch key {
		case "m":
			s.Mix = val
		case "h":
			s.Shape = val
		case "s", "o", "f", "i", "c":
			u, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("%w: field %q in %q is not a number", ErrBadSpec, tok, name)
			}
			if u == 0 && key != "s" {
				// Zero in the Spec means "default"; an explicit zero in a
				// name would not round-trip, so reject it.
				return Spec{}, fmt.Errorf("%w: field %q in %q must be positive", ErrBadSpec, tok, name)
			}
			switch key {
			case "s":
				s.Seed = u
			case "o":
				s.Ops = int(u)
			case "f":
				s.Fanout = int(u)
			case "i":
				s.Inputs = int(u)
			case "c":
				s.Consts = int(u)
			}
		default:
			return Spec{}, fmt.Errorf("%w: unknown field %q in %q", ErrBadSpec, tok, name)
		}
	}
	if _, err := s.Normalize(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoopSignal returns the loop-exit value name for a generated
// benchmark name ("exit" when the spec carries the loop idiom), or ""
// when the name is not a looping generated benchmark. The daemon and
// the report tables use it to default Params.LoopSignal the same way
// they special-case diffeq.
func LoopSignal(name string) string {
	if !IsGenName(name) {
		return ""
	}
	spec, err := Parse(name)
	if err != nil || !spec.Loop {
		return ""
	}
	return "exit"
}

// rng is splitmix64 (Steele et al.), chosen over math/rand for a
// fixed, documented algorithm: the generated byte stream is pinned by
// golden tests and must never drift across Go releases or platforms.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform-ish draw in [0,n). Modulo bias is irrelevant
// here — draws shape workloads, they are not cryptographic — and the
// simple form keeps the stream easy to reproduce in other tooling.
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// layerSizes splits body ops into the layer profile for a shape. Every
// layer has at least one op and the sizes sum to body.
func layerSizes(body int, shape string) []int {
	if body <= 1 {
		return []int{body}
	}
	var depth int
	switch shape {
	case "deep":
		// Narrow chains: at most two ops per layer.
		depth = (body + 1) / 2
	case "wide":
		// Broad and shallow: a handful of layers regardless of size.
		depth = clamp(body/6, 2, 4)
	case "diamond":
		depth = isqrt(2 * body)
		if depth < 3 {
			depth = 3
		}
	default: // mesh
		depth = isqrt(body)
		if depth < 2 {
			depth = 2
		}
	}
	if depth > body {
		depth = body
	}
	sizes := make([]int, depth)
	if shape == "diamond" {
		// Triangular profile swelling to the middle: weight layer l by
		// min(l+1, depth-l), then scale to body by largest remainder.
		weights := make([]int, depth)
		total := 0
		for l := range weights {
			w := l + 1
			if d := depth - l; d < w {
				w = d
			}
			weights[l] = w
			total += w
		}
		assigned := 0
		for l := range sizes {
			sizes[l] = 1 + (body-depth)*weights[l]/total
			assigned += sizes[l]
		}
		// Rounding slack lands on the widest (middle) layer.
		sizes[depth/2] += body - assigned
		return sizes
	}
	base, rem := body/depth, body%depth
	for l := range sizes {
		sizes[l] = base
		if l < rem {
			sizes[l]++
		}
	}
	return sizes
}

// isqrt is the integer square root (floor).
func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	r := n
	for r*r > n {
		r = (r + n/r) / 2
	}
	return r
}

// Generate builds the graph for a spec at the given bit width. The
// construction touches no maps in iteration order and no floats, so
// the result is byte-identical across runs and platforms.
func Generate(spec Spec, width int) (*dfg.Graph, error) {
	s, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if err := dfg.CheckWidth(width); err != nil {
		return nil, err
	}
	r := newRNG(s.Seed)
	g := dfg.New(s.Name(), width)

	body := s.Ops
	if s.Loop {
		body -= loopOps
	}
	if s.Cond {
		body -= condOps
	}

	// Sources. Values are created in a fixed order (inputs then consts)
	// and consumption is guaranteed below.
	var pool, unused []dfg.ValueID
	for i := 0; i < s.Inputs; i++ {
		v := g.Input(fmt.Sprintf("in%d", i))
		pool = append(pool, v)
		unused = append(unused, v)
	}
	for i := 0; i < s.Consts; i++ {
		v := g.Const(fmt.Sprintf("k%d", i), 1+int64(r.intn(97)))
		pool = append(pool, v)
		unused = append(unused, v)
	}

	// Draw op kinds up front so slot accounting can run before any node
	// exists: each non-entry op reserves its first slot for a
	// previous-layer value (that is what forces the DAG depth), and the
	// remaining free slots must cover every unconsumed source. When the
	// draw leaves too few free slots (a unary-heavy run), later unary
	// ops are flipped to the mix's first binary kind — a deterministic
	// repair that preserves the guarantee without rejection sampling.
	mix := mixes[s.Mix]
	totalWeight := 0
	for _, w := range mix {
		totalWeight += w.weight
	}
	kinds := make([]dfg.OpKind, body)
	for i := range kinds {
		d := r.intn(totalWeight)
		for _, w := range mix {
			if d < w.weight {
				kinds[i] = w.kind
				break
			}
			d -= w.weight
		}
	}
	sizes := layerSizes(body, s.Shape)
	layerOf := make([]int, body)
	{
		i := 0
		for l, n := range sizes {
			for j := 0; j < n; j++ {
				layerOf[i] = l
				i++
			}
		}
	}
	free := 0
	for i, k := range kinds {
		free += k.Arity()
		if layerOf[i] > 0 {
			free-- // depth edge
		}
	}
	binary := mix[0].kind
	if binary.Arity() != 2 {
		for _, w := range mix {
			if w.kind.Arity() == 2 {
				binary = w.kind
				break
			}
		}
	}
	for i := body - 1; free < len(unused) && i >= 0; i-- {
		if kinds[i].Arity() == 1 {
			kinds[i] = binary
			free++
		}
	}

	// pickReuse selects an already-live value with the spec's fan-out
	// bias: with probability fanout/10 reuse one of the first few pool
	// entries (hubs), otherwise prefer recent values (a geometric walk
	// back from the newest), which keeps lifetimes short and meshes
	// local.
	pickReuse := func(from []dfg.ValueID) dfg.ValueID {
		if r.intn(10) < s.Fanout {
			h := s.Fanout
			if h > len(from) {
				h = len(from)
			}
			return from[r.intn(h)]
		}
		k := 0
		for r.intn(2) == 0 && k < len(from)-1 {
			k++
		}
		return from[len(from)-1-k]
	}
	// drain pops an unused source, biased toward the oldest so no
	// source starves while the FIFO is long.
	drain := func() dfg.ValueID {
		i := 0
		if len(unused) > 1 && r.intn(4) != 0 {
			i = r.intn(len(unused))
		}
		v := unused[i]
		unused = append(unused[:i], unused[i+1:]...)
		return v
	}

	var temps []dfg.ValueID
	var prev []dfg.ValueID // previous layer's results
	idx := 0
	for l, n := range sizes {
		// Reuse only values defined before this layer: same-layer chains
		// would silently deepen the graph past the shape's profile.
		reusable := len(pool)
		cur := make([]dfg.ValueID, 0, n)
		for j := 0; j < n; j++ {
			kind := kinds[idx]
			operands := make([]dfg.ValueID, 0, kind.Arity())
			for slot := 0; slot < kind.Arity(); slot++ {
				switch {
				case l > 0 && slot == 0:
					operands = append(operands, prev[r.intn(len(prev))])
				case len(unused) > 0:
					operands = append(operands, drain())
				default:
					operands = append(operands, pickReuse(pool[:reusable]))
				}
			}
			v := g.Op(kind, fmt.Sprintf("w%d", idx), operands...)
			pool = append(pool, v)
			temps = append(temps, v)
			cur = append(cur, v)
			idx++
		}
		prev = cur
	}
	if len(unused) > 0 {
		// Unreachable by construction (Normalize bounds sources by free
		// slots and the repair pass tops free up); kept as a tripwire.
		return nil, fmt.Errorf("dfggen: internal error: %d sources left unconsumed", len(unused))
	}

	if s.Cond {
		// Conditional select in straight-line arithmetic, the standard
		// if-conversion idiom: r = e + (t<e')·(t-e). Mirrors how Diffeq's
		// original behaviour folds control into dataflow.
		a := pool[r.intn(len(pool))]
		b := pool[r.intn(len(pool))]
		if a == b {
			b = pool[r.intn(len(pool))]
		}
		t := temps[r.intn(len(temps))]
		e := temps[r.intn(len(temps))]
		if t == e {
			e = temps[(int(t)+1)%len(temps)]
			if t == e {
				e = a
			}
		}
		c := g.Op(dfg.OpLt, "csel", a, b)
		d := g.Op(dfg.OpSub, "cdif", t, e)
		m := g.Op(dfg.OpMul, "cprd", c, d)
		sum := g.Op(dfg.OpAdd, "csum", e, m)
		g.MarkOutput(sum)
	}

	if s.Loop {
		// Diffeq's loop idiom: advance the induction variable and
		// compare against the bound. The exit value is named "exit" so
		// Params.LoopSignal (see LoopSignal above) can bind to it.
		x := g.Input("lx")
		dx := g.Input("ldx")
		xmax := g.Input("lxmax")
		x1 := g.Op(dfg.OpAdd, "x1", x, dx)
		exit := g.Op(dfg.OpLt, "exit", x1, xmax)
		g.MarkOutput(x1)
		g.MarkOutput(exit)
	}

	// Temps nothing consumed are the behaviour's primary outputs.
	for _, v := range temps {
		val := g.Value(v)
		if len(val.Uses) == 0 && !val.IsOutput {
			g.MarkOutput(v)
		}
	}
	if g.Outputs() == nil {
		// Every temp was consumed downstream (possible only via the cond
		// idiom consuming the last layer): promote the final temp.
		g.MarkOutput(temps[len(temps)-1])
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dfggen: generated graph invalid: %w", err)
	}
	return g, nil
}

// Depth returns the longest input-to-output path length in ops — the
// graph's critical-path lower bound on schedule length.
func Depth(g *dfg.Graph) int {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	depth := make([]int, g.NumNodes())
	max := 0
	for _, id := range order {
		d := 1
		for _, p := range g.Preds(id) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		if d > max {
			max = d
		}
	}
	return max
}
