package dfggen

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/dfg"
)

func TestGenerateDeterministic(t *testing.T) {
	specs := []Spec{
		{Seed: 1},
		{Seed: 7, Ops: 40, Mix: "diffeq", Shape: "deep", Fanout: 4, Loop: true},
		{Seed: 99, Ops: 18, Mix: "logic", Shape: "wide", Cond: true},
		{Seed: 3, Ops: 30, Mix: "cmp", Shape: "diamond", Fanout: 8, Loop: true, Cond: true},
	}
	for _, spec := range specs {
		a, err := Generate(spec, 8)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", spec, err)
		}
		b, err := Generate(spec, 8)
		if err != nil {
			t.Fatalf("Generate(%+v) second run: %v", spec, err)
		}
		if a.String() != b.String() {
			t.Errorf("spec %+v: two runs differ:\n%s\n----\n%s", spec, a, b)
		}
	}
}

// TestGenerateGolden pins the byte stream of representative specs with
// FNV-1a checksums. If this fails, the generator's output drifted —
// which silently invalidates every fingerprint-keyed artifact (cache
// entries, store records, cluster placement) built from generated
// benchmarks. Never update these without bumping the spec namespace.
func TestGenerateGolden(t *testing.T) {
	cases := []struct {
		spec Spec
		want uint64
	}{
		{Spec{Seed: 1}, 0xaf479c83417762f2},
		{Spec{Seed: 2, Ops: 12, Mix: "arith", Shape: "deep"}, 0x4881e31a0b80ddfe},
		{Spec{Seed: 5, Ops: 20, Mix: "diffeq", Shape: "diamond", Loop: true}, 0xf9f96a683ff977ba},
	}
	for _, c := range cases {
		g, err := Generate(c.spec, 8)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", c.spec, err)
		}
		h := fnv.New64a()
		h.Write([]byte(g.String()))
		if got := h.Sum64(); got != c.want {
			t.Errorf("spec %+v: graph checksum %#016x, want %#016x\n%s", c.spec, got, c.want, g)
		}
	}
}

func TestGenerateValidAcrossParameterSpace(t *testing.T) {
	seed := uint64(0)
	for _, mixName := range Mixes() {
		for _, shape := range Shapes() {
			for _, fanout := range []int{1, 4, 8} {
				for _, ops := range []int{8, 24, 61} {
					for _, idiom := range []struct{ loop, cond bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
						seed++
						spec := Spec{Seed: seed, Ops: ops, Mix: mixName, Shape: shape, Fanout: fanout, Loop: idiom.loop, Cond: idiom.cond}
						g, err := Generate(spec, 8)
						if err != nil {
							t.Fatalf("Generate(%+v): %v", spec, err)
						}
						checkGraphInvariants(t, spec, g)
					}
				}
			}
		}
	}
}

func checkGraphInvariants(t *testing.T, spec Spec, g *dfg.Graph) {
	t.Helper()
	ns, err := spec.Normalize()
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", spec, err)
	}
	if got := g.NumNodes(); got != ns.Ops {
		t.Errorf("spec %s: %d ops, want %d", ns.Name(), got, ns.Ops)
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Errorf("spec %s: not a DAG: %v", ns.Name(), err)
	}
	for _, id := range g.Inputs() {
		v := g.Value(id)
		if len(v.Uses) == 0 {
			t.Errorf("spec %s: input %s unused", ns.Name(), v.Name)
		}
	}
	for _, id := range g.Consts() {
		v := g.Value(id)
		if len(v.Uses) == 0 {
			t.Errorf("spec %s: const %s unused", ns.Name(), v.Name)
		}
	}
	if len(g.Outputs()) == 0 {
		t.Errorf("spec %s: no primary outputs", ns.Name())
	}
	for _, n := range g.Nodes() {
		switch n.Kind {
		case dfg.OpAdd, dfg.OpSub, dfg.OpMul, dfg.OpLt, dfg.OpGt, dfg.OpEq,
			dfg.OpAnd, dfg.OpOr, dfg.OpXor, dfg.OpNot, dfg.OpMov:
		default:
			t.Errorf("spec %s: op %s not hardware-supported", ns.Name(), n.Kind)
		}
	}
	if spec.Loop {
		if _, ok := g.ValueByName("exit"); !ok {
			t.Errorf("spec %s: loop idiom missing exit value", ns.Name())
		}
	}
	// The graph must be executable: Interpret with deterministic input
	// values exercises every op's reference semantics.
	inputs := map[string]uint64{}
	for i, id := range g.Inputs() {
		inputs[g.Value(id).Name] = uint64(i*37 + 5)
	}
	if _, err := g.Interpret(8, inputs); err != nil {
		t.Errorf("spec %s: Interpret: %v", ns.Name(), err)
	}
}

func TestShapesDiffer(t *testing.T) {
	depths := map[string]int{}
	for _, shape := range Shapes() {
		g, err := Generate(Spec{Seed: 11, Ops: 48, Shape: shape}, 8)
		if err != nil {
			t.Fatalf("shape %s: %v", shape, err)
		}
		depths[shape] = Depth(g)
	}
	if !(depths["deep"] > depths["mesh"] && depths["mesh"] > depths["wide"]) {
		t.Errorf("shape depth ordering violated: %v (want deep > mesh > wide)", depths)
	}
}

func TestNameParseRoundTrip(t *testing.T) {
	specs := []Spec{
		{Seed: 1},
		{Seed: 42, Ops: 33, Mix: "mul", Shape: "diamond", Fanout: 7, Inputs: 5, Consts: 3, Loop: true, Cond: true},
	}
	for _, spec := range specs {
		ns, err := spec.Normalize()
		if err != nil {
			t.Fatalf("Normalize(%+v): %v", spec, err)
		}
		name := spec.Name()
		if !IsGenName(name) {
			t.Fatalf("Name %q lacks the gen: prefix", name)
		}
		back, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if back != ns {
			t.Errorf("round trip %q: got %+v, want %+v", name, back, ns)
		}
		if back.Name() != name {
			t.Errorf("re-render of %q differs: %q", name, back.Name())
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"gen:",
		"gen:s1-o12-mnope",
		"gen:s1-o12-hnope",
		"gen:s1-oNaN",
		"gen:s1-o12-zork",
		"gen:s1-o0",
		"gen:s1-o5000",
		"gen:s1-o12-f99",
		"gen:s1-o4-i9-c2",     // sources exceed body
		"gen:s1-o2-loop-cond", // idioms exceed ops
		"other:abc",
	}
	for _, name := range bad {
		if _, err := Parse(name); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Parse(%q): err = %v, want ErrBadSpec", name, err)
		}
	}
}

func TestByNameResolvesGenNamespace(t *testing.T) {
	spec := Spec{Seed: 9, Ops: 16}
	name := spec.Name()
	g, err := dfg.ByName(name, 8)
	if err != nil {
		t.Fatalf("dfg.ByName(%q): %v", name, err)
	}
	want, err := Generate(spec, 8)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g.String() != want.String() {
		t.Errorf("ByName and Generate disagree for %q", name)
	}
	if _, err := dfg.ByName("gen:bogus", 8); !errors.Is(err, ErrBadSpec) {
		t.Errorf("ByName(gen:bogus): err = %v, want ErrBadSpec", err)
	}
	if _, err := dfg.ByName("nosuchns:x", 8); !errors.Is(err, dfg.ErrUnknownBenchmark) {
		t.Errorf("ByName(nosuchns:x): err = %v, want ErrUnknownBenchmark", err)
	}
	if _, err := dfg.ByName(name, 0); !errors.Is(err, dfg.ErrBadWidth) {
		t.Errorf("ByName width 0: err = %v, want ErrBadWidth", err)
	}
}

func TestLoopSignal(t *testing.T) {
	loop := Spec{Seed: 1, Loop: true}.Name()
	if got := LoopSignal(loop); got != "exit" {
		t.Errorf("LoopSignal(%q) = %q, want exit", loop, got)
	}
	plain := Spec{Seed: 1}.Name()
	if got := LoopSignal(plain); got != "" {
		t.Errorf("LoopSignal(%q) = %q, want empty", plain, got)
	}
	if got := LoopSignal("diffeq"); got != "" {
		t.Errorf("LoopSignal(diffeq) = %q, want empty (not a gen name)", got)
	}
}

func TestSeedsDiffer(t *testing.T) {
	// Distinct seeds should give distinct graphs essentially always;
	// the adversarial-unique load profile depends on it.
	seen := map[string]uint64{}
	for seed := uint64(0); seed < 64; seed++ {
		g, err := Generate(Spec{Seed: seed, Ops: 16}, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := g.String()
		// Names embed the seed; strip the header so collisions compare
		// structure, not labels.
		s = s[strings.IndexByte(s, '\n'):]
		if prev, dup := seen[s]; dup {
			t.Errorf("seeds %d and %d generate identical graphs", prev, seed)
		}
		seen[s] = seed
	}
}

func TestNormalizeDefaults(t *testing.T) {
	ns, err := Spec{Seed: 3}.Normalize()
	if err != nil {
		t.Fatalf("Normalize zero spec: %v", err)
	}
	if ns.Ops != 24 || ns.Mix != "mixed" || ns.Shape != "mesh" || ns.Fanout != 2 {
		t.Errorf("unexpected defaults: %+v", ns)
	}
	if ns.Inputs == 0 || ns.Consts == 0 {
		t.Errorf("defaults left sources unset: %+v", ns)
	}
	again, err := ns.Normalize()
	if err != nil || again != ns {
		t.Errorf("Normalize not idempotent: %+v vs %+v (%v)", again, ns, err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	for _, ops := range []int{24, 256} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Generate(Spec{Seed: uint64(i), Ops: ops}, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
