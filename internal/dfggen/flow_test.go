package dfggen_test

import (
	"fmt"
	"testing"

	hlts "repro"
	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dfggen"
	"repro/internal/rtl"
	"repro/internal/validate"
)

// sweepSpecs enumerates n seeded specs covering every mix, shape,
// fan-out band and idiom combination. The specs are small (10-16 ops,
// width 4) so the full 64 x 4-flow sweep stays affordable under -race.
func sweepSpecs(n int) []dfggen.Spec {
	mixes := dfggen.Mixes()
	shapes := dfggen.Shapes()
	specs := make([]dfggen.Spec, n)
	for i := range specs {
		specs[i] = dfggen.Spec{
			Seed:   uint64(1000 + i),
			Ops:    10 + i%7,
			Mix:    mixes[i%len(mixes)],
			Shape:  shapes[i%len(shapes)],
			Fanout: 1 + i%4,
			Loop:   i%3 == 0,
			Cond:   i%4 == 0,
		}
	}
	return specs
}

// signature renders everything result-shaped about a synthesis run:
// schedule, allocation, exec time, area, mux stats. Byte equality of
// signatures is the determinism contract the cache, coalescing and
// cluster layers rely on.
func signature(res *core.Result) string {
	g := res.Design.G
	return fmt.Sprintf("%s\n%s\nexec=%d area=%+v mux=%+v status=%s",
		res.Design.Sched.String(g), res.Design.Alloc.String(g),
		res.ExecTime, res.Area, res.Mux, res.Status)
}

// TestGeneratedSweepAllFlows is the property suite of the generator
// tentpole: 64 seeded graphs (16 under -short) through all four
// synthesis flows with the structural validators on, plus RTL
// generation and netlist validation; a sample of seeds goes on through
// ATPG and BIST. Run under -race in CI.
func TestGeneratedSweepAllFlows(t *testing.T) {
	n := 64
	if testing.Short() {
		n = 16
	}
	const width = 4
	for i, spec := range sweepSpecs(n) {
		i, spec := i, spec
		t.Run(spec.Name(), func(t *testing.T) {
			t.Parallel()
			g, err := dfggen.Generate(spec, width)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			loopSig := dfggen.LoopSignal(spec.Name())
			for _, method := range core.Methods() {
				par := core.DefaultParams(width)
				par.Workers = 1
				par.Validate = true
				par.LoopSignal = loopSig
				res, err := core.Run(method, g, par)
				if err != nil {
					t.Fatalf("%s: %v", method, err)
				}
				nl, err := rtl.Generate(res.Design, width, rtl.NormalMode)
				if err != nil {
					t.Fatalf("%s: rtl: %v", method, err)
				}
				if err := validate.Netlist(nl); err != nil {
					t.Fatalf("%s: netlist invariants: %v", method, err)
				}
				if method != core.MethodOurs || i%8 != 0 {
					continue
				}
				// Every 8th seed continues through the test-generation
				// flows on the "ours" design: a small ATPG campaign and a
				// BIST session, both of which exercise the sequential
				// expansion of whatever schedule shape the seed produced.
				acfg := atpg.Config{
					Seed: 1, SampleFaults: 24, RandomBatches: 1, SeqLen: 8,
					MaxFrames: 2 * (nl.Steps + 1), BacktrackLimit: 200, Workers: 1,
				}
				if _, err := atpg.Run(nl.C, acfg); err != nil {
					t.Fatalf("atpg: %v", err)
				}
				tpg, misr := hlts.SelectBISTRegisters(res, 1, 1)
				bnl, err := hlts.GenerateNetlistWithBIST(res, width, tpg, misr)
				if err != nil {
					t.Fatalf("bist netlist: %v", err)
				}
				if _, err := atpg.RunBIST(bnl.C, 16, 64); err != nil {
					t.Fatalf("bist: %v", err)
				}
			}
		})
	}
}

// TestGeneratedWorkerAndCacheEquivalence locks the determinism claims
// on generated workloads: the "ours" flow produces byte-identical
// schedules and allocations at 1 and 8 workers, and with the
// memoization cache on and off.
func TestGeneratedWorkerAndCacheEquivalence(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	const width = 4
	for i, spec := range sweepSpecs(n) {
		spec := spec
		t.Run(spec.Name(), func(t *testing.T) {
			t.Parallel()
			g, err := dfggen.Generate(spec, width)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			base := core.DefaultParams(width)
			base.LoopSignal = dfggen.LoopSignal(spec.Name())
			variants := []struct {
				label   string
				mutate  func(*core.Params)
				methods []string
			}{
				{"workers=1", func(p *core.Params) { p.Workers = 1 }, core.Methods()},
				{"workers=8", func(p *core.Params) { p.Workers = 8 }, core.Methods()},
				{"nocache", func(p *core.Params) { p.Workers = 1; p.NoCache = true }, []string{core.MethodOurs}},
			}
			want := map[string]string{}
			for _, v := range variants {
				for _, method := range v.methods {
					par := base
					v.mutate(&par)
					res, err := core.Run(method, g, par)
					if err != nil {
						t.Fatalf("%s/%s: %v", method, v.label, err)
					}
					sig := signature(res)
					if prev, ok := want[method]; !ok {
						want[method] = sig
					} else if sig != prev {
						t.Errorf("%s/%s: result differs from baseline:\n%s\n---- baseline ----\n%s", method, v.label, sig, prev)
					}
				}
			}
			_ = i
		})
	}
}

// TestGeneratedFingerprintStability pins that equal specs fingerprint
// equal and distinct seeds fingerprint distinct — the property that
// makes generated workloads usable as cache/coalescing/placement keys.
func TestGeneratedFingerprintStability(t *testing.T) {
	fp := func(seed uint64) core.Fingerprint {
		g, err := dfggen.Generate(dfggen.Spec{Seed: seed, Ops: 14}, 4)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		h := core.NewHasher()
		h.Graph(g)
		return h.Sum()
	}
	if fp(5) != fp(5) {
		t.Error("same seed hashed to different fingerprints")
	}
	if fp(5) == fp(6) {
		t.Error("distinct seeds hashed to the same fingerprint")
	}
}
