// External test package: the checkers are exercised through the real
// synthesis flows (core imports validate, so an in-package test importing
// core would be an import cycle).
package validate_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/gates"
	"repro/internal/rtl"
	"repro/internal/validate"
)

// freshDesign synthesizes Ex at width 4 with the paper's defaults — a
// known-good artifact each corruption test mutates.
func freshDesign(t *testing.T) *etpn.Design {
	t.Helper()
	g, err := dfg.ByName(dfg.BenchEx, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(g, core.DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := validate.Design(res.Design); err != nil {
		t.Fatalf("fresh design does not validate: %v", err)
	}
	return res.Design
}

func expectViolation(t *testing.T, err error, stage, invariant string) {
	t.Helper()
	if err == nil {
		t.Fatalf("corruption not detected; want %s/%s", stage, invariant)
	}
	ve, ok := validate.As(err)
	if !ok {
		t.Fatalf("untyped error %v; want *validate.Error %s/%s", err, stage, invariant)
	}
	if ve.Stage != stage || ve.Invariant != invariant {
		t.Fatalf("violation %s/%s (%s); want %s/%s", ve.Stage, ve.Invariant, ve.Detail, stage, invariant)
	}
}

func TestNilArtifacts(t *testing.T) {
	expectViolation(t, validate.Graph(nil), "dfg", "non-nil")
	expectViolation(t, validate.Design(nil), "etpn", "non-nil")
	expectViolation(t, validate.Netlist(nil), "rtl", "non-nil")
}

// Each corruption is applied to a fresh known-good design and must be
// caught as exactly the invariant it violates.
func TestDesignCorruptionsDetected(t *testing.T) {
	t.Run("schedule-total", func(t *testing.T) {
		d := freshDesign(t)
		delete(d.Sched.Step, d.G.Nodes()[0].ID)
		expectViolation(t, validate.Design(d), "etpn", "schedule-total")
	})
	t.Run("schedule-range", func(t *testing.T) {
		d := freshDesign(t)
		d.Sched.Step[d.G.Nodes()[0].ID] = d.Sched.Len + 5
		expectViolation(t, validate.Design(d), "etpn", "schedule-range")
	})
	t.Run("arc-port-out-of-arity", func(t *testing.T) {
		d := freshDesign(t)
		for _, a := range d.Arcs {
			if d.Nodes[a.To].Kind == etpn.KindModule {
				a.ToPort = 99
				break
			}
		}
		expectViolation(t, validate.Design(d), "etpn", "arc-port")
	})
	t.Run("arc-port-on-non-module", func(t *testing.T) {
		d := freshDesign(t)
		for _, a := range d.Arcs {
			if d.Nodes[a.To].Kind != etpn.KindModule {
				a.ToPort = 0
				break
			}
		}
		expectViolation(t, validate.Design(d), "etpn", "arc-port")
	})
	t.Run("arc-step-range", func(t *testing.T) {
		d := freshDesign(t)
		for _, a := range d.Arcs {
			if len(a.Steps) > 0 {
				a.Steps[0] = d.Sched.Len + 2
				break
			}
		}
		expectViolation(t, validate.Design(d), "etpn", "arc-step-range")
	})
	t.Run("ctrl-places", func(t *testing.T) {
		d := freshDesign(t)
		if d.Ctrl == nil {
			t.Skip("design has no control part")
		}
		d.CtrlPlaces = d.CtrlPlaces[:len(d.CtrlPlaces)-1]
		expectViolation(t, validate.Design(d), "etpn", "ctrl-places")
	})
	t.Run("module-ownership", func(t *testing.T) {
		d := freshDesign(t)
		if len(d.Alloc.Modules) < 2 {
			t.Skip("allocation has a single module")
		}
		op := d.Alloc.Modules[0].Ops[0]
		d.Alloc.ModuleOf[op] = 1
		expectViolation(t, validate.Design(d), "alloc", "module-ownership")
	})
	t.Run("module-ids-dense", func(t *testing.T) {
		d := freshDesign(t)
		d.Alloc.Modules[0].ID = 7
		expectViolation(t, validate.Design(d), "alloc", "module-ids-dense")
	})
	t.Run("reg-lifetime-disjoint", func(t *testing.T) {
		d := freshDesign(t)
		shared := -1
		for i, r := range d.Alloc.Regs {
			if len(r.Vals) >= 2 {
				shared = i
				break
			}
		}
		if shared < 0 {
			t.Skip("no register is shared in this design")
		}
		vals := d.Alloc.Regs[shared].Vals
		d.Life[vals[1]] = d.Life[vals[0]] // identical interval: overlap
		expectViolation(t, validate.Design(d), "alloc", "reg-lifetime-disjoint")
	})
	t.Run("reg-lifetime-known", func(t *testing.T) {
		d := freshDesign(t)
		shared := -1
		for i, r := range d.Alloc.Regs {
			if len(r.Vals) >= 2 {
				shared = i
				break
			}
		}
		if shared < 0 {
			t.Skip("no register is shared in this design")
		}
		delete(d.Life, d.Alloc.Regs[shared].Vals[0])
		expectViolation(t, validate.Design(d), "alloc", "reg-lifetime-known")
	})
	t.Run("reg-ownership", func(t *testing.T) {
		d := freshDesign(t)
		if len(d.Alloc.Regs) < 2 {
			t.Skip("allocation has a single register")
		}
		v := d.Alloc.Regs[0].Vals[0]
		d.Alloc.RegOf[v] = 1
		expectViolation(t, validate.Design(d), "alloc", "reg-ownership")
	})
}

func TestNetlistCorruptionsDetected(t *testing.T) {
	d := freshDesign(t)
	scanRegs := []int{0}
	if len(d.Alloc.Regs) >= 2 {
		scanRegs = []int{0, 1}
	}
	fresh := func(t *testing.T) *rtl.Netlist {
		t.Helper()
		n, err := rtl.GenerateWithScan(d, 4, rtl.NormalMode, scanRegs)
		if err != nil {
			t.Fatal(err)
		}
		if err := validate.Netlist(n); err != nil {
			t.Fatalf("fresh netlist does not validate: %v", err)
		}
		return n
	}
	t.Run("bus-wiring", func(t *testing.T) {
		n := fresh(t)
		for name := range n.DataIn {
			n.DataIn[name] = gates.Word{len(n.C.Gates)}
			break
		}
		expectViolation(t, validate.Netlist(n), "rtl", "bus-wiring")
	})
	t.Run("scan-chain-complete", func(t *testing.T) {
		n := fresh(t)
		n.ScanRegs = append(n.ScanRegs, 99)
		expectViolation(t, validate.Netlist(n), "rtl", "scan-chain-complete")
	})
	t.Run("scan-chain-order", func(t *testing.T) {
		if len(scanRegs) < 2 {
			t.Skip("need two scanned registers to misorder the chain")
		}
		n := fresh(t)
		n.ScanRegs[0], n.ScanRegs[1] = n.ScanRegs[1], n.ScanRegs[0]
		expectViolation(t, validate.Netlist(n), "rtl", "scan-chain-order")
	})
	t.Run("scan-ports", func(t *testing.T) {
		n := fresh(t)
		for i, name := range n.C.OutputNames {
			if name == "scan_out" {
				n.C.OutputNames[i] = "not_scan_out"
			}
		}
		expectViolation(t, validate.Netlist(n), "rtl", "scan-ports")
	})
}

// TestFlowsValidateClean is the acceptance run: every synthesis flow on
// every paper benchmark at width 4, with the checkers armed end to end,
// reports zero violations — on the design and on the generated netlist.
func TestFlowsValidateClean(t *testing.T) {
	for _, bench := range []string{dfg.BenchEx, dfg.BenchDct, dfg.BenchDiffeq} {
		for _, method := range core.Methods() {
			t.Run(fmt.Sprintf("%s/%s", bench, method), func(t *testing.T) {
				g, err := dfg.ByName(bench, 4)
				if err != nil {
					t.Fatal(err)
				}
				par := core.DefaultParams(4)
				par.Validate = true
				if bench == dfg.BenchDiffeq {
					par.LoopSignal = "exit"
				}
				res, err := core.Run(method, g, par)
				if err != nil {
					t.Fatalf("%s with validation armed: %v", method, err)
				}
				if err := validate.Design(res.Design); err != nil {
					t.Fatalf("finished design violates an invariant: %v", err)
				}
				n, err := rtl.Generate(res.Design, 4, rtl.NormalMode)
				if err != nil {
					t.Fatal(err)
				}
				if err := validate.Netlist(n); err != nil {
					t.Fatalf("generated netlist violates an invariant: %v", err)
				}
			})
		}
	}
}
