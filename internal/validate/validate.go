// Package validate holds the structural invariant checkers run at the
// stage boundaries of the synthesis pipeline: behaviour graph, ETPN
// design (schedule + allocation + data path + control), and gate-level
// netlist. Each checker walks one artifact and reports the first violated
// invariant as a typed *Error naming the stage and the invariant, so a
// corrupted intermediate design is caught where it was produced instead
// of surfacing as a downstream panic or a silently wrong figure.
//
// The checkers are read-only, deterministic, and deliberately
// re-derive their facts from first principles (e.g. register-share
// disjointness is re-proved from the lifetime intervals, not read off the
// allocator's own bookkeeping) — an invariant checked by the code that
// maintains it proves nothing. They run behind core.Params.Validate /
// report.Config.Validate and cost one linear pass per artifact.
package validate

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/gates"
	"repro/internal/rtl"
)

// Error is a violated structural invariant: which pipeline stage produced
// the artifact, which invariant failed, and the specifics.
type Error struct {
	// Stage names the artifact: "dfg", "etpn", "alloc" or "rtl".
	Stage string
	// Invariant is the short kebab-case name of the violated invariant,
	// e.g. "reg-lifetime-disjoint" or "scan-chain-order".
	Invariant string
	// Detail pinpoints the violation.
	Detail string
}

// Error renders the violation.
func (e *Error) Error() string {
	return fmt.Sprintf("validate: %s: %s: %s", e.Stage, e.Invariant, e.Detail)
}

// As unwraps err to a *Error if one is in its chain.
func As(err error) (*Error, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

func fail(stage, invariant, format string, args ...any) error {
	return &Error{Stage: stage, Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
}

// Graph checks the behavioural data-flow graph: id-space consistency,
// operand arity, and def/use back-pointer symmetry (wrapping the graph's
// own structural check into the typed vocabulary).
func Graph(g *dfg.Graph) error {
	if g == nil {
		return fail("dfg", "non-nil", "nil graph")
	}
	if err := g.Validate(); err != nil {
		return &Error{Stage: "dfg", Invariant: "graph-structure", Detail: err.Error()}
	}
	return nil
}

// arcShapes is the complete set of data-transfer shapes the ETPN builder
// can produce. Everything else — a module feeding a module combinationally
// (which would break the one-transfer-per-step acyclicity of the data
// path), a register feeding a register without a module, a port being
// written — is a corruption.
var arcShapes = map[[2]etpn.NodeKind]bool{
	{etpn.KindInPort, etpn.KindRegister}:  true,
	{etpn.KindInPort, etpn.KindOutPort}:   true,
	{etpn.KindConst, etpn.KindModule}:     true,
	{etpn.KindRegister, etpn.KindModule}:  true,
	{etpn.KindModule, etpn.KindRegister}:  true,
	{etpn.KindRegister, etpn.KindOutPort}: true,
	{etpn.KindModule, etpn.KindOutPort}:   true,
}

// Design checks a synthesized ETPN design end to end: the data-path arc
// discipline, the schedule's step range, the allocation's id-space and
// ownership consistency, the disjoint-lifetime invariant of every shared
// register, and the control part (including its place-per-step
// correspondence with the schedule).
func Design(d *etpn.Design) error {
	if d == nil {
		return fail("etpn", "non-nil", "nil design")
	}
	if err := Graph(d.G); err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return &Error{Stage: "etpn", Invariant: "design-structure", Detail: err.Error()}
	}

	// Schedule: every operation sits on a control step in [1, Len].
	for _, n := range d.G.Nodes() {
		st, ok := d.Sched.Step[n.ID]
		if !ok {
			return fail("etpn", "schedule-total", "operation %s has no control step", n.Name)
		}
		if st < 1 || st > d.Sched.Len {
			return fail("etpn", "schedule-range", "operation %s at step %d outside [1, %d]", n.Name, st, d.Sched.Len)
		}
	}

	// Arc discipline: only the builder's shapes, operand ports only into
	// modules and within the module's arity, steps inside the schedule.
	for _, a := range d.Arcs {
		from, to := d.Nodes[a.From], d.Nodes[a.To]
		if !arcShapes[[2]etpn.NodeKind{from.Kind, to.Kind}] {
			return fail("etpn", "arc-shape", "arc %d is %s->%s (%s -> %s)", a.ID, from.Kind, to.Kind, from.Name, to.Name)
		}
		if to.Kind == etpn.KindModule {
			if a.ToPort < 0 || a.ToPort >= moduleArity(d, to) {
				return fail("etpn", "arc-port", "arc %d into %s has operand port %d (arity %d)", a.ID, to.Name, a.ToPort, moduleArity(d, to))
			}
		} else if a.ToPort != -1 {
			return fail("etpn", "arc-port", "arc %d into non-module %s has port %d", a.ID, to.Name, a.ToPort)
		}
		// Input loads happen at the value's birth step — step 0 for a
		// primary input, before the first control step — and output ports
		// observe at the value's death step, which is Len+1 for a value
		// that outlives the schedule. Every other transfer must sit inside
		// the schedule proper.
		lo, hi := 1, d.Sched.Len
		if from.Kind == etpn.KindInPort {
			lo = 0
		}
		if to.Kind == etpn.KindOutPort {
			hi = d.Sched.Len + 1
		}
		for _, st := range a.Steps {
			if st < lo || st > hi {
				return fail("etpn", "arc-step-range", "arc %d active in step %d outside [%d, %d]", a.ID, st, lo, hi)
			}
		}
	}

	if err := allocation(d); err != nil {
		return err
	}

	// Control part: one place per control step, in step order.
	if d.Ctrl != nil && len(d.CtrlPlaces) != d.Sched.Len {
		return fail("etpn", "ctrl-places", "%d control places for %d control steps", len(d.CtrlPlaces), d.Sched.Len)
	}
	return nil
}

func moduleArity(d *etpn.Design, n *etpn.Node) int {
	max := 0
	for _, op := range n.Ops {
		if a := d.G.Node(op).Kind.Arity(); a > max {
			max = a
		}
	}
	return max
}

// allocation checks the allocation's internal consistency and re-proves
// register sharing legal from the lifetime intervals.
func allocation(d *etpn.Design) error {
	a := d.Alloc
	if a == nil {
		return fail("alloc", "non-nil", "nil allocation")
	}
	for i, m := range a.Modules {
		if m.ID != i {
			return fail("alloc", "module-ids-dense", "module at index %d has id %d", i, m.ID)
		}
		if len(m.Ops) == 0 {
			return fail("alloc", "module-nonempty", "module %d binds no operation", m.ID)
		}
		for _, op := range m.Ops {
			if got, ok := a.ModuleOf[op]; !ok || got != m.ID {
				return fail("alloc", "module-ownership", "operation %s listed in module %d but ModuleOf says %d", d.G.Node(op).Name, m.ID, got)
			}
		}
	}
	for op, m := range a.ModuleOf {
		if m < 0 || m >= len(a.Modules) {
			return fail("alloc", "module-ids-dense", "operation %s bound to unknown module %d", d.G.Node(op).Name, m)
		}
		if !containsNode(a.Modules[m].Ops, op) {
			return fail("alloc", "module-ownership", "ModuleOf maps %s to module %d, which does not list it", d.G.Node(op).Name, m)
		}
	}
	for i, r := range a.Regs {
		if r.ID != i {
			return fail("alloc", "reg-ids-dense", "register at index %d has id %d", i, r.ID)
		}
		if len(r.Vals) == 0 {
			return fail("alloc", "reg-nonempty", "register %d holds no value", r.ID)
		}
		for _, v := range r.Vals {
			if got, ok := a.RegOf[v]; !ok || got != r.ID {
				return fail("alloc", "reg-ownership", "value %s listed in register %d but RegOf says %d", d.G.Value(v).Name, r.ID, got)
			}
		}
		// The load-bearing invariant of register sharing: every pair of
		// values in one register must have disjoint lifetimes.
		for x := 0; x < len(r.Vals); x++ {
			for y := x + 1; y < len(r.Vals); y++ {
				vx, vy := r.Vals[x], r.Vals[y]
				ix, okx := d.Life[vx]
				iy, oky := d.Life[vy]
				if !okx || !oky {
					return fail("alloc", "reg-lifetime-known", "register %d holds a value with no lifetime interval", r.ID)
				}
				if alloc.Overlaps(ix, iy) {
					return fail("alloc", "reg-lifetime-disjoint",
						"register %d shares %s [%d,%d] and %s [%d,%d]",
						r.ID, d.G.Value(vx).Name, ix.Birth, ix.Death, d.G.Value(vy).Name, iy.Birth, iy.Death)
				}
			}
		}
	}
	for v, r := range a.RegOf {
		if r < 0 || r >= len(a.Regs) {
			return fail("alloc", "reg-ids-dense", "value %s bound to unknown register %d", d.G.Value(v).Name, r)
		}
		if !containsValue(a.Regs[r].Vals, v) {
			return fail("alloc", "reg-ownership", "RegOf maps %s to register %d, which does not list it", d.G.Value(v).Name, r)
		}
	}
	return nil
}

func containsNode(xs []dfg.NodeID, x dfg.NodeID) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func containsValue(xs []dfg.ValueID, x dfg.ValueID) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Netlist checks a generated gate-level implementation: gate-graph
// structural sanity, combinational acyclicity (the netlist must levelize),
// bus completeness of the data ports, and — when a scan chain was
// requested — scan-chain completeness: the scan control ports exist, every
// scanned register bit has its flip-flop, the chain threads them in
// ScanRegs order, and scan_out observes the tail.
func Netlist(n *rtl.Netlist) error {
	if n == nil || n.C == nil {
		return fail("rtl", "non-nil", "nil netlist")
	}
	c := n.C
	if err := c.Validate(); err != nil {
		return &Error{Stage: "rtl", Invariant: "circuit-structure", Detail: err.Error()}
	}
	if _, err := c.Levelize(); err != nil {
		return &Error{Stage: "rtl", Invariant: "comb-acyclic", Detail: err.Error()}
	}
	for name, w := range n.DataIn {
		if err := checkBus(c, "input", name, w); err != nil {
			return err
		}
	}
	for name, w := range n.DataOut {
		if err := checkBus(c, "output", name, w); err != nil {
			return err
		}
	}
	if len(n.ScanRegs) > 0 {
		if err := scanChain(n); err != nil {
			return err
		}
	}
	return nil
}

func checkBus(c *gates.Circuit, role, name string, w gates.Word) error {
	for _, id := range w {
		if id < 0 || id >= len(c.Gates) {
			return fail("rtl", "bus-wiring", "%s bus %s references unknown gate %d", role, name, id)
		}
	}
	return nil
}

// scanChain re-proves the serial scan chain complete and correctly
// ordered by walking the structure: scan_en/scan_in/scan_out exist, every
// bit of every scanned register has a named flip-flop, each flip-flop's D
// cone contains the previous chain element (through the scan mux,
// whatever gate rewriting the optimizer did), and scan_out observes the
// chain tail.
func scanChain(n *rtl.Netlist) error {
	c := n.C
	inputs := map[string]int{}
	for _, id := range c.Inputs {
		inputs[c.Gates[id].Name] = id
	}
	dffs := map[string]int{}
	for _, id := range c.DFFs {
		dffs[c.Gates[id].Name] = id
	}
	scanEn, okEn := inputs["scan_en"]
	scanIn, okIn := inputs["scan_in"]
	if !okEn || !okIn {
		return fail("rtl", "scan-ports", "scan chain requested but scan_en/scan_in inputs missing")
	}
	outIdx := -1
	for i, name := range c.OutputNames {
		if name == "scan_out" {
			outIdx = i
		}
	}
	if outIdx < 0 {
		return fail("rtl", "scan-ports", "scan chain requested but scan_out output missing")
	}
	_ = scanEn

	// Walk the chain in declared order, proving each bit reachable from
	// the previous through its D cone.
	prev := scanIn
	for _, rid := range n.ScanRegs {
		for bit := 0; bit < n.Width; bit++ {
			name := fmt.Sprintf("r%d[%d]", rid, bit)
			ff, ok := dffs[name]
			if !ok {
				return fail("rtl", "scan-chain-complete", "scanned register bit %s has no flip-flop", name)
			}
			g := c.Gates[ff]
			if len(g.In) == 0 {
				return fail("rtl", "scan-chain-complete", "scanned flip-flop %s has no D input", name)
			}
			if !inCombCone(c, g.In[0], prev) {
				return fail("rtl", "scan-chain-order", "chain element before %s is not in its D cone", name)
			}
			prev = ff
		}
	}
	if !inCombCone(c, c.Outputs[outIdx], prev) {
		return fail("rtl", "scan-chain-order", "scan_out does not observe the chain tail")
	}
	return nil
}

// inCombCone reports whether target is reachable from root through
// combinational gates only (flip-flops and inputs are cone leaves, except
// target itself).
func inCombCone(c *gates.Circuit, root, target int) bool {
	seen := map[int]bool{}
	stack := []int{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id == target {
			return true
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		g := c.Gates[id]
		if g.Kind == gates.KDFF || g.Kind == gates.KInput {
			continue // sequential/primary boundary: stop, target not here
		}
		stack = append(stack, g.In...)
	}
	return false
}

// Stages lists the stage names the checkers report, for documentation and
// CLI help.
func Stages() []string {
	s := []string{"dfg", "etpn", "alloc", "rtl"}
	sort.Strings(s)
	return s
}
