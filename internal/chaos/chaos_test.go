package chaos

import (
	"errors"
	"sort"
	"testing"
	"time"
)

// The per-site decision sequence must be a pure function of (seed, site,
// hit index): two injectors with the same seed fire on exactly the same
// hit indices, and a different seed gives a different schedule.
func TestDecisionDeterminism(t *testing.T) {
	fired := func(seed int64) []int {
		in := New(seed).On(SiteParallelJob, Rule{Action: ActError, Prob: 0.3})
		restore := Install(in)
		defer restore()
		var hits []int
		for i := 0; i < 200; i++ {
			if Step(SiteParallelJob) != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := fired(7), fired(7)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob 0.3 fired %d/200 times; want a nontrivial schedule", len(a))
	}
	if !equalInts(a, b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	if c := fired(8); equalInts(a, c) {
		t.Fatalf("seeds 7 and 8 produced identical 200-hit schedules")
	}
	// Roughly the configured rate (binomial, 200 draws, p=0.3: ±5σ ≈ ±32).
	if len(a) < 28 || len(a) > 92 {
		t.Errorf("prob 0.3 fired %d/200 times; schedule badly biased", len(a))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStepActions(t *testing.T) {
	if err := Step(SiteParallelJob); err != nil {
		t.Fatalf("dormant Step returned %v", err)
	}
	in := New(1).
		On(SiteParallelJob, Rule{Action: ActError}).
		On(SiteParallelProduce, Rule{Action: ActPanic}).
		On(SiteParallelStall, Rule{Action: ActStall, Stall: time.Millisecond})
	restore := Install(in)
	defer restore()

	err := Step(SiteParallelJob)
	var ce *Error
	if !errors.As(err, &ce) || ce.Site != SiteParallelJob || ce.Seq != 1 {
		t.Fatalf("ActError: got %v", err)
	}
	if !IsInjected(err) {
		t.Fatalf("IsInjected(%v) = false", err)
	}

	func() {
		defer func() {
			r := recover()
			if !IsPanicValue(r) {
				t.Fatalf("ActPanic: recovered %v", r)
			}
			if p := r.(*Panic); p.Site != SiteParallelProduce {
				t.Fatalf("panic value %v", p)
			}
		}()
		Step(SiteParallelProduce)
		t.Fatal("ActPanic did not panic")
	}()

	start := time.Now()
	if err := Step(SiteParallelStall); err != nil {
		t.Fatalf("ActStall returned %v", err)
	}
	if d := time.Since(start); d < time.Millisecond {
		t.Fatalf("ActStall slept %v; want >= 1ms", d)
	}

	if got := in.Fired(SiteParallelJob); got != 1 {
		t.Fatalf("Fired(job) = %d", got)
	}
	if got := in.FiredTotal(); got != 3 {
		t.Fatalf("FiredTotal = %d", got)
	}
	if got := in.Hits(SiteExecGuard); got != 0 {
		t.Fatalf("Hits(unconfigured) = %d", got)
	}
}

func TestFire(t *testing.T) {
	if err, fired := Fire(SiteStoreTorn); fired || err != nil {
		t.Fatalf("dormant Fire = %v, %v", err, fired)
	}
	restore := Install(New(1).On(SiteStoreTorn, Rule{Action: ActTorn}))
	defer restore()
	err, fired := Fire(SiteStoreTorn)
	if !fired || !IsInjected(err) {
		t.Fatalf("Fire = %v, %v", err, fired)
	}
}

func TestInstallGuards(t *testing.T) {
	in := New(1)
	restore := Install(in)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Install did not panic")
			}
		}()
		Install(New(2))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("On after Install did not panic")
			}
		}()
		in.On(SiteParallelJob, Rule{Action: ActError})
	}()
	restore()
	if Active() != nil {
		t.Fatal("restore did not deactivate")
	}
	restore2 := Install(New(3))
	restore2()
}

func TestUnknownSitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("On(unknown site) did not panic")
		}
	}()
	New(1).On("no.such.site", Rule{Action: ActError})
}

func TestSitesSortedAndComplete(t *testing.T) {
	s := Sites()
	if !sort.StringsAreSorted(s) {
		t.Fatalf("Sites() not sorted: %v", s)
	}
	if len(s) != 21 {
		t.Fatalf("Sites() has %d entries: %v", len(s), s)
	}
	seen := map[string]bool{}
	for _, site := range s {
		if seen[site] {
			t.Fatalf("duplicate site %s", site)
		}
		seen[site] = true
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("seed=42; parallel.produce=panic:0.25 ;store.sync=error;atpg.budget=stall")
	if err != nil {
		t.Fatal(err)
	}
	if in.seed != 42 {
		t.Fatalf("seed = %d", in.seed)
	}
	if r := in.sites[SiteParallelProduce].rule; r.Action != ActPanic || r.Prob != 0.25 {
		t.Fatalf("produce rule = %+v", r)
	}
	if r := in.sites[SiteStoreSync].rule; r.Action != ActError || r.Prob != 0 {
		t.Fatalf("sync rule = %+v", r)
	}
	if r := in.sites[SiteATPGBudget].rule; r.Action != ActStall {
		t.Fatalf("budget rule = %+v", r)
	}
	for _, bad := range []string{
		"nonsense",
		"bogus.site=error",
		"parallel.job=explode",
		"parallel.job=error:1.5",
		"parallel.job=error:0",
		"seed=abc",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
