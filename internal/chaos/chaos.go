// Package chaos is the deterministic fault-injection framework behind the
// robustness test suite: named injection sites threaded through the
// pipeline's hot paths (worker pools, guard boundaries, the ATPG campaign,
// Petri-net reachability, the persistent result store) fire seeded faults —
// panics, typed errors, stalls, torn or bit-rotted store writes — so every recovery
// path of the execution layer can be exercised on demand instead of
// waiting for something to break naturally.
//
// The framework is dependency-free and dormant by default: every hook
// compiles down to one atomic load of a nil pointer when no injector is
// installed, so production paths pay nothing. Tests (and the hidden -chaos
// CLI hook) build an Injector, give each site a Rule, and Install it for
// the duration of a run.
//
// Determinism: the decision for the n-th hit of a site is a pure function
// of (seed, site, n). A single-worker run therefore replays an identical
// fault schedule every time; at higher worker counts the sequence of
// decisions per site is still fixed, while which logical operation
// observes the n-th hit depends on goroutine interleaving — exactly the
// nondeterminism the chaos suite is meant to stress. Within one run the
// injected faults never depend on wall-clock time or global RNG state.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Action is what a site does when its rule fires.
type Action int

// Actions.
const (
	// ActNone: the site does nothing (no rule, or the rule did not fire).
	ActNone Action = iota
	// ActError: the site reports a typed *chaos.Error through its ordinary
	// error return.
	ActError
	// ActPanic: the site panics with a *chaos.Panic value; the surrounding
	// guard layer is expected to recover it into an *exec.ExecError.
	ActPanic
	// ActStall: the site sleeps for the rule's Stall duration, simulating a
	// wedged worker, then proceeds normally.
	ActStall
	// ActTorn: store sites interpret a fired rule as "tear this write"
	// (write a prefix of the record and fail, the signature of a kill
	// mid-write). At generic sites it behaves like ActError.
	ActTorn
)

// String renders the action.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActStall:
		return "stall"
	case ActTorn:
		return "torn"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

func parseAction(s string) (Action, error) {
	switch s {
	case "error":
		return ActError, nil
	case "panic":
		return ActPanic, nil
	case "stall":
		return ActStall, nil
	case "torn":
		return ActTorn, nil
	}
	return ActNone, fmt.Errorf("chaos: unknown action %q (want error, panic, stall or torn)", s)
}

// The named injection sites threaded through the pipeline. Each names the
// hot-path boundary where the fault is raised; the chaos sweep iterates
// Sites().
const (
	// SiteParallelClaim fires on a pool worker right after it claims a job
	// index, outside the per-job guard — a panic here exercises the
	// worker-goroutine last-resort recovery.
	SiteParallelClaim = "parallel.claim"
	// SiteParallelStall fires on a pool worker between claim and execution;
	// its natural action is ActStall (a wedged worker).
	SiteParallelStall = "parallel.stall"
	// SiteParallelJob fires inside the per-job guard of ForEach pools.
	SiteParallelJob = "parallel.job"
	// SiteParallelProduce and SiteParallelCommit fire inside the guarded
	// produce/commit halves of Ordered pools.
	SiteParallelProduce = "parallel.produce"
	SiteParallelCommit  = "parallel.commit"
	// SiteExecGuard fires inside every exec.Guard/Guard1 boundary, before
	// the guarded body runs.
	SiteExecGuard = "exec.guard"
	// SiteATPGFault fires at the start of one fault's deterministic PODEM
	// search, under the per-fault panic guard.
	SiteATPGFault = "atpg.fault"
	// SiteATPGBudget fires at each restart boundary of a fault's search; a
	// fired rule simulates budget exhaustion mid-batch (the fault is
	// skipped and the campaign lands Partial).
	SiteATPGBudget = "atpg.budget"
	// SitePetriReach fires before each marking expansion of the
	// reachability computation; a fired rule simulates node-budget
	// exhaustion (the exploration stops with a Partial reach set).
	SitePetriReach = "petri.reach"
	// SiteStoreWrite, SiteStoreSync, SiteStoreTorn and SiteStoreCorrupt
	// fire inside the content-addressed result store's Put (internal/store
	// — the durability layer behind both the daemon's persistent cache and
	// the checkpoint journal): a failed append, a failed fsync (the bytes
	// land but durability is not confirmed, so the record is never
	// acknowledged), a torn write (a prefix of the record on disk — a kill
	// mid-write), and bit rot (the full record lands with a flipped byte,
	// detectable only by checksum).
	SiteStoreWrite   = "store.write"
	SiteStoreSync    = "store.sync"
	SiteStoreTorn    = "store.torn"
	SiteStoreCorrupt = "store.corrupt"
	// SiteServerAccept, SiteServerEnqueue and SiteServerRespond fire in
	// the serving layer (internal/server): at request admission, just
	// before a job is pushed onto the bounded queue, and just before the
	// response body is written. An injected fault must surface to the
	// client as a typed 5xx — never a crashed daemon or a wedged
	// connection.
	SiteServerAccept  = "server.accept"
	SiteServerEnqueue = "server.enqueue"
	SiteServerRespond = "server.respond"
	// SiteClusterDispatch, SiteClusterHeartbeat and SiteClusterWorkerKill
	// fire in the cluster layer (internal/cluster). Dispatch fires on the
	// coordinator before each forward attempt — a fired rule counts as a
	// transport failure, exercising the failover-to-next-ranked-node path.
	// Heartbeat fires on the worker agent before each beat is sent — a
	// fired rule drops the beat, driving the registry's Alive -> Suspect ->
	// Dead transitions. WorkerKill fires on the worker before serving each
	// proxied request — a fired rule kills the worker abruptly mid-job (in
	// tests the listener is torn down; in hltsd the process exits), the
	// signature of a node crash with work in flight.
	SiteClusterDispatch   = "cluster.dispatch"
	SiteClusterHeartbeat  = "cluster.heartbeat"
	SiteClusterWorkerKill = "cluster.worker.kill"
	// SiteReplicateFetch and SiteReplicateApply fire in the peer-to-peer
	// store replication layer (internal/cluster.Replicator). Fetch fires
	// before each remote exchange — a digest, pull or read-repair record
	// fetch — simulating an unreachable or failing peer; Apply fires
	// before a pulled record is written into the local store. Both feed
	// the anti-entropy backoff path: an injected fault may delay
	// convergence or degrade a read-repair to recomputation, but must
	// never fail a client request or lose an acknowledged record.
	SiteReplicateFetch = "cluster.replicate.fetch"
	SiteReplicateApply = "cluster.replicate.apply"
)

// Sites lists every named injection site, sorted; the chaos sweep and the
// -chaos CLI hook validate against it.
func Sites() []string {
	s := []string{
		SiteParallelClaim, SiteParallelStall, SiteParallelJob,
		SiteParallelProduce, SiteParallelCommit,
		SiteExecGuard,
		SiteATPGFault, SiteATPGBudget,
		SitePetriReach,
		SiteStoreWrite, SiteStoreSync, SiteStoreTorn, SiteStoreCorrupt,
		SiteServerAccept, SiteServerEnqueue, SiteServerRespond,
		SiteClusterDispatch, SiteClusterHeartbeat, SiteClusterWorkerKill,
		SiteReplicateFetch, SiteReplicateApply,
	}
	sort.Strings(s)
	return s
}

func knownSite(site string) bool {
	for _, s := range Sites() {
		if s == site {
			return true
		}
	}
	return false
}

// Error is the typed error of an injected fault: which site fired and at
// which hit. Every chaos fault that travels an error path is one of these
// (or an *exec.ExecError wrapping a *Panic), so the chaos suite can prove
// "every surfaced error is typed".
type Error struct {
	Site string
	Seq  uint64
}

// Error renders the fault.
func (e *Error) Error() string {
	return fmt.Sprintf("chaos: injected fault at %s (hit %d)", e.Site, e.Seq)
}

// IsInjected reports whether err has an injected chaos fault in its chain.
func IsInjected(err error) bool {
	var e *Error
	return errors.As(err, &e)
}

// Panic is the value carried by injected panics, recognizable to the
// chaos suite after the guard layer converts it into an *exec.ExecError.
type Panic struct {
	Site string
	Seq  uint64
}

// String renders the panic value.
func (p *Panic) String() string {
	return fmt.Sprintf("chaos: injected panic at %s (hit %d)", p.Site, p.Seq)
}

// IsPanicValue reports whether a recovered panic value came from chaos.
func IsPanicValue(v any) bool {
	_, ok := v.(*Panic)
	return ok
}

// Rule configures one site of an injector.
type Rule struct {
	// Action is what the site does when the rule fires.
	Action Action
	// Prob is the per-hit firing probability in (0, 1]; 0 means 1 (fire on
	// every hit).
	Prob float64
	// Stall is the sleep of ActStall; 0 means 200µs.
	Stall time.Duration
}

type siteState struct {
	rule  Rule
	hits  atomic.Uint64
	fired atomic.Uint64
}

// Injector is a configured set of site rules under one seed. Build it with
// New + On, then Install it; it is safe for concurrent use once installed
// (the rule set is immutable after Install).
type Injector struct {
	seed      uint64
	sites     map[string]*siteState
	installed atomic.Bool
}

// New returns an empty injector with the given seed.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed), sites: map[string]*siteState{}}
}

// On sets the rule of a site, replacing any previous rule, and returns the
// injector for chaining. It must not be called after Install. Unknown site
// names are rejected (they would silently never fire).
func (in *Injector) On(site string, r Rule) *Injector {
	if in.installed.Load() {
		panic("chaos: On called on an installed injector")
	}
	if !knownSite(site) {
		panic(fmt.Sprintf("chaos: unknown injection site %q", site))
	}
	in.sites[site] = &siteState{rule: r}
	return in
}

// Hits returns how many times the site was consulted.
func (in *Injector) Hits(site string) uint64 {
	if st := in.sites[site]; st != nil {
		return st.hits.Load()
	}
	return 0
}

// Fired returns how many times the site's rule fired.
func (in *Injector) Fired(site string) uint64 {
	if st := in.sites[site]; st != nil {
		return st.fired.Load()
	}
	return 0
}

// FiredTotal sums Fired over every configured site.
func (in *Injector) FiredTotal() uint64 {
	var n uint64
	for _, st := range in.sites {
		n += st.fired.Load()
	}
	return n
}

// at takes the site's next hit and decides: the returned action is ActNone
// when no rule is set or the rule did not fire.
func (in *Injector) at(site string) (Action, uint64, time.Duration) {
	st := in.sites[site]
	if st == nil {
		return ActNone, 0, 0
	}
	n := st.hits.Add(1)
	p := st.rule.Prob
	if p <= 0 || p > 1 {
		p = 1
	}
	if p < 1 && !decide(in.seed, site, n, p) {
		return ActNone, n, 0
	}
	st.fired.Add(1)
	stall := st.rule.Stall
	if stall <= 0 {
		stall = 200 * time.Microsecond
	}
	return st.rule.Action, n, stall
}

// decide is the seeded per-hit coin: a pure function of (seed, site, n).
func decide(seed uint64, site string, n uint64, p float64) bool {
	h := fnv.New64a()
	h.Write([]byte(site))
	x := splitmix64(seed ^ h.Sum64() ^ (n * 0x9e3779b97f4a7c15))
	// Top 53 bits as a uniform float in [0, 1).
	u := float64(x>>11) / float64(1<<53)
	return u < p
}

// splitmix64 is the standard finalizing mix (Steele et al.), enough to
// decorrelate consecutive hit indices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// active is the installed injector; nil means chaos is dormant and every
// hook is a single atomic load.
var active atomic.Pointer[Injector]

// Install activates the injector process-wide and returns a restore
// function that deactivates it (reinstalling whatever was active before —
// in practice nil). Tests must call restore before finishing; installing
// over an already-installed injector panics, which catches chaos tests
// accidentally running in parallel with each other.
func Install(in *Injector) (restore func()) {
	in.installed.Store(true)
	if !active.CompareAndSwap(nil, in) {
		panic("chaos: an injector is already installed")
	}
	return func() { active.Store(nil) }
}

// Active returns the installed injector, or nil when chaos is dormant.
func Active() *Injector { return active.Load() }

// Step is the generic injection hook placed at a named site: it returns
// nil when dormant or when the site's rule does not fire; otherwise it
// panics (ActPanic), sleeps then returns nil (ActStall), or returns a
// typed *Error (ActError, ActTorn).
func Step(site string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	act, n, stall := in.at(site)
	switch act {
	case ActPanic:
		panic(&Panic{Site: site, Seq: n})
	case ActStall:
		time.Sleep(stall)
	case ActError, ActTorn:
		return &Error{Site: site, Seq: n}
	}
	return nil
}

// Fire is the hook for sites that implement the fault themselves (the
// torn-write and bit-rot paths of the result store): it reports whether the
// site's rule fired this hit and hands back the typed error the caller
// should propagate after acting. No action is taken by Fire itself.
func Fire(site string) (error, bool) {
	in := active.Load()
	if in == nil {
		return nil, false
	}
	act, n, _ := in.at(site)
	if act == ActNone {
		return nil, false
	}
	return &Error{Site: site, Seq: n}, true
}

// Parse builds an injector from a CLI spec — the hidden -chaos test hook:
//
//	seed=7;parallel.produce=panic:0.3;report.journal.sync=error
//
// Entries are ';'-separated. "seed=N" sets the seed (default 1); every
// other entry is site=action[:prob], with prob in (0,1] defaulting to 1.
func Parse(spec string) (*Injector, error) {
	seed := int64(1)
	type entry struct {
		site string
		rule Rule
	}
	var entries []entry
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: bad spec entry %q (want site=action[:prob])", part)
		}
		if k == "seed" {
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q", v)
			}
			seed = s
			continue
		}
		if !knownSite(k) {
			return nil, fmt.Errorf("chaos: unknown site %q (known: %s)", k, strings.Join(Sites(), ", "))
		}
		actStr, probStr, hasProb := strings.Cut(v, ":")
		act, err := parseAction(actStr)
		if err != nil {
			return nil, err
		}
		r := Rule{Action: act}
		if hasProb {
			p, err := strconv.ParseFloat(probStr, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("chaos: bad probability %q (want (0,1])", probStr)
			}
			r.Prob = p
		}
		entries = append(entries, entry{k, r})
	}
	in := New(seed)
	for _, e := range entries {
		in.On(e.site, e.rule)
	}
	return in, nil
}
