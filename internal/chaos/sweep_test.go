// The chaos sweep: every injection site × seeds × worker counts, driven
// against small real workloads of each subsystem, asserting the global
// robustness contracts of the execution layer:
//
//   - no injected panic ever escapes a library boundary,
//   - no run deadlocks and no goroutine leaks,
//   - every surfaced error is typed (*chaos.Error, or an *exec.ExecError
//     wrapping the injected panic, or a context error),
//   - ordered pipelines always commit a clean prefix,
//   - partial results stay internally consistent (Skipped > 0 implies
//     StatusPartial),
//   - stall-only injection never changes any result,
//   - the result store never loses an acknowledged record and never
//     trusts a corrupt one under injected write/sync/torn/corrupt
//     faults, and
//   - the checkpoint journal (an adapter over the store) resumes
//     byte-identically after torn writes.
//
// It lives in an external test package so it can drive the real
// parallel/atpg/petri/report code paths without an import cycle.
package chaos_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/atpg"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/exec"
	"repro/internal/gates"
	"repro/internal/parallel"
	"repro/internal/petri"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/store"
)

// The sweep's partition of the site space; TestSweepSiteListsCoverAllSites
// proves the union is the whole taxonomy.
var (
	parallelSites = []string{
		chaos.SiteParallelClaim, chaos.SiteParallelStall, chaos.SiteParallelJob,
		chaos.SiteParallelProduce, chaos.SiteParallelCommit, chaos.SiteExecGuard,
	}
	atpgSites   = []string{chaos.SiteATPGFault, chaos.SiteATPGBudget}
	petriSites  = []string{chaos.SitePetriReach}
	storeSites  = []string{chaos.SiteStoreWrite, chaos.SiteStoreSync, chaos.SiteStoreTorn, chaos.SiteStoreCorrupt}
	serverSites = []string{chaos.SiteServerAccept, chaos.SiteServerEnqueue, chaos.SiteServerRespond}
	// The cluster sites are exercised by internal/cluster's own sweeps
	// (TestClusterSweepWorkerKill, TestReplicationSweep and friends), which
	// need the coordinator + worker harness living in that package; they
	// are listed here so the union check still proves the whole taxonomy
	// is covered.
	clusterSites = []string{
		chaos.SiteClusterDispatch, chaos.SiteClusterHeartbeat, chaos.SiteClusterWorkerKill,
		chaos.SiteReplicateFetch, chaos.SiteReplicateApply,
	}

	sweepSeeds   = []int64{1, 2, 3, 5, 8, 13, 21, 34}
	sweepWorkers = []int{1, 8}
)

func TestSweepSiteListsCoverAllSites(t *testing.T) {
	union := map[string]bool{}
	for _, list := range [][]string{parallelSites, atpgSites, petriSites, storeSites, serverSites, clusterSites} {
		for _, s := range list {
			union[s] = true
		}
	}
	for _, s := range chaos.Sites() {
		if !union[s] {
			t.Errorf("site %s is not exercised by the sweep", s)
		}
	}
	if len(union) != len(chaos.Sites()) {
		t.Errorf("sweep lists %d sites, taxonomy has %d", len(union), len(chaos.Sites()))
	}
}

// runGuarded runs fn under a deadlock watchdog and an escaped-panic trap.
func runGuarded(t *testing.T, name string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("%s: panic escaped the library boundary: %v", name, r)
			}
		}()
		fn()
	}()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("%s: deadlock (no completion in 90s)\n%s", name, buf[:n])
	}
}

// settle asserts the goroutine count returns to the baseline — the
// no-leak contract. A small grace window absorbs runtime bookkeeping.
func settle(t *testing.T, name string, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("%s: goroutines leaked (%d > baseline %d)\n%s", name, runtime.NumGoroutine(), base, buf[:n])
}

// assertTyped enforces the every-error-typed contract.
func assertTyped(t *testing.T, name string, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if chaos.IsInjected(err) {
		return
	}
	if ee, ok := exec.AsExecError(err); ok {
		if chaos.IsPanicValue(ee.Value) {
			return
		}
		t.Fatalf("%s: ExecError wrapping a non-chaos panic: %v", name, ee)
	}
	t.Fatalf("%s: untyped error surfaced: %v", name, err)
}

// siteRules returns the fault actions worth injecting at a site.
func siteRules(site string) []chaos.Rule {
	if site == chaos.SiteParallelStall {
		return []chaos.Rule{{Action: chaos.ActStall, Prob: 0.4, Stall: 100 * time.Microsecond}}
	}
	return []chaos.Rule{
		{Action: chaos.ActPanic, Prob: 0.4},
		{Action: chaos.ActError, Prob: 0.4},
	}
}

// TestChaosSweepParallel drives the worker-pool primitives under
// injection at every pool/guard site.
func TestChaosSweepParallel(t *testing.T) {
	const n = 60
	for _, site := range parallelSites {
		for _, rule := range siteRules(site) {
			for _, seed := range sweepSeeds {
				for _, workers := range sweepWorkers {
					name := fmt.Sprintf("%s/%s/seed%d/w%d", site, rule.Action, seed, workers)
					in := chaos.New(seed).On(site, rule)
					restore := chaos.Install(in)
					base := runtime.NumGoroutine()
					runGuarded(t, name+"/foreach", func() {
						var sum atomic.Int64
						err := parallel.ForEachCtx(context.Background(), workers, n, func(i int) error {
							sum.Add(int64(i))
							return nil
						})
						assertTyped(t, name+"/foreach", err)
						if rule.Action != chaos.ActStall && in.Fired(site) > 0 && err == nil {
							t.Errorf("%s/foreach: %d faults fired but no error surfaced", name, in.Fired(site))
						}
					})
					runGuarded(t, name+"/ordered", func() {
						var committed []int
						err := parallel.OrderedCtx(context.Background(), workers, n,
							func(i int) (int, error) { return i * i, nil },
							func(i, v int) error {
								if v != i*i {
									t.Errorf("%s/ordered: commit %d got %d", name, i, v)
								}
								committed = append(committed, i)
								return nil
							})
						assertTyped(t, name+"/ordered", err)
						// The prefix contract: whatever was committed is exactly
						// 0..k-1 in order.
						for k, idx := range committed {
							if idx != k {
								t.Fatalf("%s/ordered: commit sequence %v is not a clean prefix", name, committed)
							}
						}
						if err == nil && len(committed) != n {
							t.Errorf("%s/ordered: clean run committed %d of %d", name, len(committed), n)
						}
					})
					settle(t, name, base)
					restore()
				}
			}
		}
	}
}

// TestChaosStallOnlyPreservesResults: a wedged worker may slow a run down
// but must never change its observable result.
func TestChaosStallOnlyPreservesResults(t *testing.T) {
	const n = 40
	run := func() (int64, []int) {
		var sum atomic.Int64
		if err := parallel.ForEach(4, n, func(i int) error {
			sum.Add(int64(i * i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var order []int
		if err := parallel.Ordered(4, n,
			func(i int) (int, error) { return i, nil },
			func(i, v int) error { order = append(order, v); return nil },
		); err != nil {
			t.Fatal(err)
		}
		return sum.Load(), order
	}
	wantSum, wantOrder := run()
	for _, seed := range sweepSeeds[:4] {
		restore := chaos.Install(chaos.New(seed).
			On(chaos.SiteParallelStall, chaos.Rule{Action: chaos.ActStall, Prob: 0.5, Stall: 50 * time.Microsecond}))
		gotSum, gotOrder := run()
		restore()
		if gotSum != wantSum {
			t.Errorf("seed %d: stall changed ForEach result: %d != %d", seed, gotSum, wantSum)
		}
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: stall changed Ordered commit count", seed)
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: stall changed Ordered commit order", seed)
			}
		}
	}
}

// sweepCircuit is a small sequential circuit with enough faults to give
// the campaign real work at chaos-sweep speed.
func sweepCircuit(t *testing.T) *gates.Circuit {
	t.Helper()
	b := gates.NewBuilder()
	var ins [4]int
	for i := range ins {
		ins[i] = b.Input(fmt.Sprintf("i%d", i))
	}
	d1, d2 := b.DFF("d1"), b.DFF("d2")
	x := b.Xor(b.And(ins[0], ins[1]), d1)
	y := b.Or(b.Xor(ins[2], ins[3]), d2)
	b.SetD(d1, y)
	b.SetD(d2, x)
	b.Output("o1", b.And(x, y))
	b.Output("o2", b.Xor(x, d2))
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sweepATPGConfig(seed int64, workers int) atpg.Config {
	cfg := atpg.DefaultConfig(seed)
	cfg.RandomBatches = 1
	cfg.SeqLen = 8
	cfg.MaxFrames = 8
	cfg.BacktrackLimit = 50
	cfg.Restarts = 1
	cfg.Workers = workers
	return cfg
}

// TestChaosSweepATPG injects per-fault panics and mid-batch budget
// exhaustion into the campaign and checks the partial-result bookkeeping
// stays consistent.
func TestChaosSweepATPG(t *testing.T) {
	c := sweepCircuit(t)
	for _, site := range atpgSites {
		for _, rule := range siteRules(site) {
			for _, seed := range sweepSeeds {
				for _, workers := range sweepWorkers {
					name := fmt.Sprintf("%s/%s/seed%d/w%d", site, rule.Action, seed, workers)
					in := chaos.New(seed).On(site, rule)
					restore := chaos.Install(in)
					base := runtime.NumGoroutine()
					runGuarded(t, name, func() {
						res, err := atpg.RunCtx(context.Background(), c, sweepATPGConfig(seed, workers))
						assertTyped(t, name, err)
						if err != nil {
							return
						}
						panicked := 0
						for _, o := range res.Outcomes {
							if o == atpg.OutcomePanicked {
								panicked++
							}
						}
						if panicked != len(res.Errors) {
							t.Errorf("%s: %d panicked outcomes but %d recorded errors", name, panicked, len(res.Errors))
						}
						if (res.Skipped > 0 || panicked > 0) && res.Status != exec.StatusPartial {
							t.Errorf("%s: skipped=%d panicked=%d but status %v", name, res.Skipped, panicked, res.Status)
						}
						if res.Status == exec.StatusPartial && res.Exhausted == "" {
							t.Errorf("%s: partial result with no exhausted budget", name)
						}
					})
					settle(t, name, base)
					restore()
				}
			}
		}
	}
}

// TestChaosPetriReachPartial: injected node-budget exhaustion must come
// back as a first-class partial reach set, never an error, and the
// explored prefix must be a prefix of the complete exploration.
func TestChaosPetriReachPartial(t *testing.T) {
	net, _ := petri.Chain("sweep", 50)
	full, err := net.Reachability(context.Background(), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != exec.StatusComplete || len(full.Nodes) != 50 {
		t.Fatalf("clean exploration: status %v, %d nodes", full.Status, len(full.Nodes))
	}
	for _, seed := range sweepSeeds {
		in := chaos.New(seed).On(chaos.SitePetriReach, chaos.Rule{Action: chaos.ActError, Prob: 0.1})
		restore := chaos.Install(in)
		r, err := net.Reachability(context.Background(), 10_000)
		fired := in.Fired(chaos.SitePetriReach)
		restore()
		if err != nil {
			t.Fatalf("seed %d: injected budget exhaustion surfaced as error: %v", seed, err)
		}
		if fired == 0 {
			continue
		}
		if r.Status != exec.StatusPartial || r.Exhausted != exec.BudgetReachNodes {
			t.Fatalf("seed %d: fired %d but status %v/%q", seed, fired, r.Status, r.Exhausted)
		}
		if len(r.Nodes) > len(full.Nodes) {
			t.Fatalf("seed %d: partial set larger than complete set", seed)
		}
		for i, nd := range r.Nodes {
			if nd.Key != full.Nodes[i].Key {
				t.Fatalf("seed %d: partial node %d diverges from the complete exploration", seed, i)
			}
		}
	}
	// The bound-erroring wrapper keeps its contract under injection too.
	restore := chaos.Install(chaos.New(1).On(chaos.SitePetriReach, chaos.Rule{Action: chaos.ActError}))
	defer restore()
	if _, err := net.ReachabilityGraph(10_000); err == nil {
		t.Fatal("ReachabilityGraph returned nil error for a partial exploration")
	}
}

// storeRule picks the fault a store site injects: the torn and corrupt
// sites implement their fault themselves (chaos.Fire), the write and
// sync sites surface a plain injected error.
func storeRule(site string) chaos.Rule {
	if site == chaos.SiteStoreTorn || site == chaos.SiteStoreCorrupt {
		return chaos.Rule{Action: chaos.ActTorn, Prob: 0.5}
	}
	return chaos.Rule{Action: chaos.ActError, Prob: 0.5}
}

// TestChaosStoreFaults drives Put through failed appends, failed fsyncs,
// torn writes and bit rot, and proves the store's durability contract:
// after reopening, every acknowledged record is present with its exact
// bytes, a corrupt record is never returned as truth, and the failed
// keys re-put cleanly.
func TestChaosStoreFaults(t *testing.T) {
	const nKeys = 24
	for _, site := range storeSites {
		for _, seed := range sweepSeeds {
			name := fmt.Sprintf("%s/seed%d", site, seed)
			dir := filepath.Join(t.TempDir(), "results")
			s, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			in := chaos.New(seed).On(site, storeRule(site))
			restore := chaos.Install(in)
			acked := map[core.Fingerprint][]byte{}
			var failed []core.Fingerprint
			for i := 0; i < nKeys; i++ {
				h := core.NewHasher()
				h.Str(fmt.Sprintf("cell-%d", i))
				fp := h.Sum()
				val := []byte(fmt.Sprintf("result-%s-%d", site, i))
				err := s.Put(fp, val)
				assertTyped(t, name, err)
				if err == nil {
					acked[fp] = val
				} else {
					failed = append(failed, fp)
					// An unacknowledged record must not be served back now…
					if v, ok := s.Get(fp); ok && string(v) != string(val) {
						t.Fatalf("%s: unacknowledged put visible with wrong bytes: %q", name, v)
					}
				}
			}
			restore()
			if in.FiredTotal() == 0 {
				t.Fatalf("%s: no faults fired", name)
			}
			s.Close()

			// "Reboot": torn tails healed, corrupt records dropped — and
			// nothing acknowledged is lost or altered.
			s2, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatalf("%s: reopen after faults: %v", name, err)
			}
			for fp, val := range acked {
				got, ok := s2.Get(fp)
				if !ok {
					t.Errorf("%s: acknowledged record %s lost across reopen", name, fp)
				} else if string(got) != string(val) {
					t.Errorf("%s: acknowledged record %s altered: %q != %q", name, fp, got, val)
				}
			}
			// …and after the reboot a failed key either replays the exact
			// written bytes (fsync-failed record that did land: a harmless
			// duplicate of a deterministic value) or is absent. Re-putting
			// cleanly must work either way.
			for i, fp := range failed {
				val := []byte(fmt.Sprintf("recomputed-%d", i))
				if v, ok := s2.Get(fp); ok && strings.HasPrefix(string(v), "recomputed") {
					t.Errorf("%s: impossible value for unacked key: %q", name, v)
				}
				if err := s2.Put(fp, val); err != nil {
					t.Errorf("%s: clean re-put failed: %v", name, err)
				} else if v, ok := s2.Get(fp); !ok || string(v) != string(val) {
					t.Errorf("%s: re-put record unreadable: %q %v", name, v, ok)
				}
			}
			if s2.Len() != nKeys {
				t.Errorf("%s: store holds %d records, want %d", name, s2.Len(), nKeys)
			}
			s2.Close()
		}
	}
}

// TestChaosJournalFaults drives the checkpoint journal — now an adapter
// over the store — through the same fault sites and proves it heals:
// reopening skips damage, un-recorded cells record cleanly afterwards,
// and no cell is ever lost once Record returned nil.
func TestChaosJournalFaults(t *testing.T) {
	methods := []string{"camad", "approach1", "approach2", "ours"}
	mkCell := func(m string, w int) report.Cell {
		return report.Cell{Method: m, Width: w, Coverage: 0.5, Gates: w * 10}
	}
	for _, site := range storeSites {
		for _, seed := range sweepSeeds {
			name := fmt.Sprintf("%s/seed%d", site, seed)
			path := filepath.Join(t.TempDir(), "sweep.ckpt")
			j, err := report.OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			in := chaos.New(seed).On(site, storeRule(site))
			restore := chaos.Install(in)
			type cell struct {
				m string
				w int
			}
			var recorded []cell
			for _, m := range methods {
				for _, w := range []int{4, 8} {
					err := j.Record("bench", mkCell(m, w))
					assertTyped(t, name, err)
					if err == nil {
						recorded = append(recorded, cell{m, w})
					}
				}
			}
			restore()
			j.Close()

			// Reopen: everything Record acknowledged must be there; damage
			// is healed. Then the failed cells re-record cleanly.
			j2, err := report.OpenJournal(path)
			if err != nil {
				t.Fatalf("%s: reopen after faults: %v", name, err)
			}
			for _, c := range recorded {
				if _, ok := j2.Lookup("bench", c.m, c.w); !ok {
					t.Errorf("%s: acknowledged cell %s/%d lost across reopen", name, c.m, c.w)
				}
			}
			for _, m := range methods {
				for _, w := range []int{4, 8} {
					if err := j2.Record("bench", mkCell(m, w)); err != nil {
						t.Errorf("%s: clean re-record of %s/%d failed: %v", name, m, w, err)
					}
				}
			}
			if j2.Len() != len(methods)*2 {
				t.Errorf("%s: journal holds %d cells, want %d", name, j2.Len(), len(methods)*2)
			}
			j2.Close()
		}
	}
}

// TestChaosStoreNeverFailsServing: a daemon whose persistent store is
// being fault-injected must keep answering 200 — the store is an
// accelerator, never a dependency — and still drain cleanly without
// leaking goroutines.
func TestChaosStoreNeverFailsServing(t *testing.T) {
	body := `{"bench":"ex","width":4}` + "\n"
	for _, site := range storeSites {
		for _, seed := range sweepSeeds[:4] {
			name := fmt.Sprintf("%s/seed%d", site, seed)
			stor, err := store.Open(filepath.Join(t.TempDir(), "results"), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			in := chaos.New(seed).On(site, chaos.Rule{Action: storeRule(site).Action, Prob: 0.7})
			restore := chaos.Install(in)
			base := runtime.NumGoroutine()
			runGuarded(t, name, func() {
				srv := server.New(server.Config{QueueDepth: 32, Jobs: 2, Workers: 2, CacheSize: -1, Store: stor})
				ts := httptest.NewServer(srv.Handler())
				for i := 0; i < 8; i++ {
					resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(body))
					if err != nil {
						t.Fatalf("%s: transport error (daemon crashed?): %v", name, err)
					}
					payload, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("%s: store fault surfaced to the client: %d %s", name, resp.StatusCode, payload)
					}
				}
				ts.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := srv.Drain(ctx); err != nil {
					t.Errorf("%s: drain under store injection: %v", name, err)
				}
			})
			settle(t, name, base)
			restore()
			stor.Close()
		}
	}
}

// TestChaosSweepServer drives the daemon's serving layer under injection
// at the accept, enqueue and respond sites: every response must still be
// well-formed JSON with a sane status code (an injected error is a typed
// 5xx, an injected panic is recovered to a 500 — never a crashed daemon
// or a torn body), and the server must still drain cleanly, leaking no
// goroutines.
func TestChaosSweepServer(t *testing.T) {
	body := `{"bench":"ex","width":4}` + "\n"
	for _, site := range serverSites {
		for _, rule := range []chaos.Rule{
			{Action: chaos.ActError, Prob: 0.5},
			{Action: chaos.ActPanic, Prob: 0.5},
		} {
			for _, seed := range sweepSeeds[:4] {
				name := fmt.Sprintf("%s/%s/seed%d", site, rule.Action, seed)
				in := chaos.New(seed).On(site, rule)
				restore := chaos.Install(in)
				base := runtime.NumGoroutine()
				runGuarded(t, name, func() {
					srv := server.New(server.Config{QueueDepth: 32, Jobs: 2, Workers: 2, CacheSize: -1})
					ts := httptest.NewServer(srv.Handler())
					ok, faulted := 0, 0
					for i := 0; i < 12; i++ {
						resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(body))
						if err != nil {
							t.Fatalf("%s: transport error (daemon crashed?): %v", name, err)
						}
						payload, err := io.ReadAll(resp.Body)
						resp.Body.Close()
						if err != nil {
							t.Fatalf("%s: torn response body: %v", name, err)
						}
						if !json.Valid(payload) {
							t.Fatalf("%s: response %d is not JSON: %q", name, resp.StatusCode, payload)
						}
						switch resp.StatusCode {
						case http.StatusOK:
							ok++
						case http.StatusInternalServerError, http.StatusServiceUnavailable:
							faulted++
						default:
							t.Fatalf("%s: unexpected status %d: %s", name, resp.StatusCode, payload)
						}
					}
					if fired := in.Fired(site); fired > 0 && faulted == 0 {
						t.Errorf("%s: %d faults fired but every response was 200", name, fired)
					} else if fired == 0 && ok != 12 {
						t.Errorf("%s: no faults fired but only %d/12 responses were 200", name, ok)
					}
					ts.Close()
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					if err := srv.Drain(ctx); err != nil {
						t.Errorf("%s: drain under injection: %v", name, err)
					}
				})
				settle(t, name, base)
				restore()
			}
		}
	}
}

// checkpointConfig mirrors the fast table configuration of the report
// package's resume tests.
func checkpointConfig(workers, par int) report.Config {
	cfg := report.DefaultConfig(21)
	cfg.Widths = []int{4}
	cfg.ATPGFor = func(width int) atpg.Config {
		c := atpg.DefaultConfig(21 + int64(width))
		c.SampleFaults = 120
		c.RandomBatches = 1
		c.Restarts = 1
		return c
	}
	cfg.Workers = workers
	cfg.Parallel = par
	return cfg
}

// TestChaosJournalResumeByteIdentical is the acceptance criterion: a
// sweep whose store writes are being torn by injection behaves like a
// killed run — and resuming from that checkpoint, faults gone, renders
// the table byte-identically to an uninterrupted run.
func TestChaosJournalResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("table runs are too slow for -short")
	}
	const bench = dfg.BenchEx
	ref, err := report.RunTable(bench, checkpointConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	refText, refMd := ref.Render(), ref.Markdown()

	for _, seed := range []int64{3, 11} {
		dir := t.TempDir()
		path := filepath.Join(dir, "chaos.ckpt")
		j, err := report.OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		cfg := checkpointConfig(1, 1)
		cfg.Journal = j
		in := chaos.New(seed).On(chaos.SiteStoreTorn, chaos.Rule{Action: chaos.ActTorn, Prob: 0.5})
		restore := chaos.Install(in)
		_, runErr := report.RunTable(bench, cfg)
		fired := in.Fired(chaos.SiteStoreTorn)
		restore()
		j.Close()
		assertTyped(t, fmt.Sprintf("seed%d", seed), runErr)
		if fired == 0 {
			t.Fatalf("seed %d: torn-write injection never fired", seed)
		}

		// "Reboot": reopen the journal (healing any torn tail) and rerun
		// without faults.
		j2, err := report.OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := checkpointConfig(1, 1)
		cfg2.Journal = j2
		tbl, err := report.RunTable(bench, cfg2)
		if err != nil {
			t.Fatal(err)
		}
		j2.Close()
		if got := tbl.Render(); got != refText {
			t.Errorf("seed %d: resumed table differs from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s", seed, got, refText)
		}
		if got := tbl.Markdown(); got != refMd {
			t.Errorf("seed %d: resumed markdown differs from uninterrupted run", seed)
		}
	}
	_ = os.Remove
}
