package logicsim

import (
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/fault"
	"repro/internal/gates"
)

// buildAdder builds a 4-bit combinational adder circuit.
func buildAdder(t *testing.T) (*gates.Circuit, gates.Word, gates.Word) {
	t.Helper()
	b := gates.NewBuilder()
	x := b.InputWord("x", 4)
	y := b.InputWord("y", 4)
	s, _ := b.Adder(x, y, b.Const(false))
	b.OutputWord("s", s)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return c, x, y
}

// buildCounter builds a 4-bit counter: q <= q + 1 each cycle, with a PI
// enable.
func buildCounter(t *testing.T) *gates.Circuit {
	t.Helper()
	b := gates.NewBuilder()
	en := b.Input("en")
	q := b.DFFWord("q", 4)
	one := b.ConstWord(1, 4)
	inc, _ := b.Adder(q, one, b.Const(false))
	next := b.Mux2W(en, inc, q)
	b.SetDWord(q, next)
	b.OutputWord("q", q)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEvalAdderAllPairs(t *testing.T) {
	c, _, _ := buildAdder(t)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	// Pack all 16x16 combinations into 4 batches of 64 patterns.
	for base := 0; base < 256; base += 64 {
		pi := make([]uint64, 8)
		for lane := 0; lane < 64; lane++ {
			a := uint64((base + lane) >> 4)
			bb := uint64((base + lane) & 15)
			for i := 0; i < 4; i++ {
				if a&(1<<uint(i)) != 0 {
					pi[i] |= 1 << uint(lane)
				}
				if bb&(1<<uint(i)) != 0 {
					pi[4+i] |= 1 << uint(lane)
				}
			}
		}
		po := s.Eval(pi)
		for lane := 0; lane < 64; lane++ {
			a := uint64((base + lane) >> 4)
			bb := uint64((base + lane) & 15)
			var got uint64
			for i := 0; i < 4; i++ {
				if po[i]&(1<<uint(lane)) != 0 {
					got |= 1 << uint(i)
				}
			}
			if want := (a + bb) & 15; got != want {
				t.Fatalf("%d+%d = %d, want %d", a, bb, got, want)
			}
		}
	}
}

func TestCounterSequence(t *testing.T) {
	c := buildCounter(t)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	en := ^uint64(0)
	for cyc := 0; cyc < 20; cyc++ {
		po := s.Step([]uint64{en})
		var q uint64
		for i := 0; i < 4; i++ {
			if po[i]&1 != 0 {
				q |= 1 << uint(i)
			}
		}
		if want := uint64(cyc) & 15; q != want {
			t.Fatalf("cycle %d: q = %d, want %d", cyc, q, want)
		}
	}
	// With enable low, the counter holds. Step returns the Sim's reused
	// output buffer, so the first observation must be saved by value
	// before the next Step overwrites it.
	s.Reset()
	s.Step([]uint64{en})         // q: 0 -> 1
	q1 := s.Step([]uint64{0})[0] // observe 1, hold
	if q2 := s.Step([]uint64{0})[0]; q1 != q2 {
		t.Error("counter did not hold with enable low")
	}
}

// Eval and Step must reuse the per-Sim output buffer — the documented
// contract the fault-simulation and BIST inner loops rely on for their
// zero-allocation steady state.
func TestEvalStepZeroAllocSteadyState(t *testing.T) {
	c := buildCounter(t)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	pi := []uint64{^uint64(0)}
	first := s.Eval(pi)
	if again := s.Eval(pi); &again[0] != &first[0] {
		t.Error("Eval did not reuse its output buffer")
	}
	if n := testing.AllocsPerRun(200, func() { s.Eval(pi) }); n != 0 {
		t.Errorf("Eval allocates %.1f objects per call in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { s.Step(pi) }); n != 0 {
		t.Errorf("Step allocates %.1f objects per call in steady state, want 0", n)
	}
}

// Run's rows must be copies: still valid after later Eval/Step calls
// overwrite the shared output buffer.
func TestRunRowsSurviveLaterSteps(t *testing.T) {
	c := buildCounter(t)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	vecs := [][]uint64{{^uint64(0)}, {^uint64(0)}, {^uint64(0)}}
	out := s.Run(vecs)
	want := make([][]uint64, len(out))
	for t2, row := range out {
		want[t2] = append([]uint64(nil), row...)
	}
	for i := 0; i < 5; i++ {
		s.Step([]uint64{^uint64(0)})
	}
	for t2 := range out {
		for k := range out[t2] {
			if out[t2][k] != want[t2][k] {
				t.Fatalf("Run row %d mutated by later Step calls", t2)
			}
		}
	}
}

func TestBusWords(t *testing.T) {
	w := BusWords(0b1010, 4)
	if w[0] != 0 || w[1] != ^uint64(0) || w[2] != 0 || w[3] != ^uint64(0) {
		t.Fatalf("BusWords wrong: %v", w)
	}
}

func TestFaultInjectionOutput(t *testing.T) {
	c, x, _ := buildAdder(t)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	// Force PI x[0]'s net stuck-at-1 and add 0+0: sum must be 1.
	s.Fault = &fault.Fault{Gate: x[0], Pin: -1, Val: true}
	po := s.Eval(make([]uint64, 8))
	if po[0] != ^uint64(0) {
		t.Errorf("s[0] = %x with x[0] s-a-1 on 0+0", po[0])
	}
}

func TestFaultSimDetectsPIStuck(t *testing.T) {
	c, x, _ := buildAdder(t)
	flist := []fault.Fault{
		{Gate: x[0], Pin: -1, Val: true},  // detectable with x[0]=0
		{Gate: x[0], Pin: -1, Val: false}, // detectable with x[0]=1
	}
	// One vector with x = 0, y = 0 detects s-a-1 but not s-a-0.
	vectors := [][]uint64{make([]uint64, 8)}
	res, err := FaultSim(c, flist, vectors)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected[0] || res.Detected[1] {
		t.Fatalf("detection = %v, want [true false]", res.Detected)
	}
	if res.NumDet != 1 || res.Coverage() != 0.5 {
		t.Errorf("NumDet %d coverage %f", res.NumDet, res.Coverage())
	}
	if res.DetectCycle[0] != 0 || res.DetectCycle[1] != -1 {
		t.Errorf("DetectCycle = %v", res.DetectCycle)
	}
}

func TestFaultSimIncremental(t *testing.T) {
	c, x, _ := buildAdder(t)
	flist := []fault.Fault{
		{Gate: x[0], Pin: -1, Val: true},
		{Gate: x[0], Pin: -1, Val: false},
	}
	detected := make([]bool, 2)
	cycles := []int{-1, -1}
	// First batch: x=0 detects fault 0.
	n, err := FaultSimIncremental(c, flist, detected, cycles, [][]uint64{make([]uint64, 8)}, 0)
	if err != nil || n != 1 {
		t.Fatalf("first batch: n=%d err=%v", n, err)
	}
	// Second batch: x=1 detects fault 1.
	v := make([]uint64, 8)
	v[0] = ^uint64(0)
	n, err = FaultSimIncremental(c, flist, detected, cycles, [][]uint64{v}, 1)
	if err != nil || n != 1 {
		t.Fatalf("second batch: n=%d err=%v", n, err)
	}
	if !detected[0] || !detected[1] {
		t.Errorf("detected = %v", detected)
	}
	if cycles[1] != 1 {
		t.Errorf("second fault detect cycle = %d, want 1", cycles[1])
	}
}

func TestRandomVectorsCoverMostAdderFaults(t *testing.T) {
	c, _, _ := buildAdder(t)
	flist := fault.Collapse(c)
	if len(flist) == 0 {
		t.Fatal("empty collapsed fault list")
	}
	// 64 random patterns in one word per PI (combinational: 1 cycle).
	pi := make([]uint64, len(c.Inputs))
	rng := uint64(0x9E3779B97F4A7C15)
	for i := range pi {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		pi[i] = rng
	}
	res, err := FaultSim(c, flist, [][]uint64{pi})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() < 0.9 {
		t.Errorf("adder coverage %.2f with 64 random patterns; expected > 0.9", res.Coverage())
	}
}

func TestEnumerateAndCollapse(t *testing.T) {
	c, _, _ := buildAdder(t)
	full := fault.Enumerate(c)
	collapsed := fault.Collapse(c)
	if len(collapsed) >= len(full) {
		t.Errorf("collapse did not shrink: %d vs %d", len(collapsed), len(full))
	}
	if len(collapsed) < len(full)/4 {
		t.Errorf("collapse too aggressive: %d of %d", len(collapsed), len(full))
	}
}

func TestSample(t *testing.T) {
	fs := make([]fault.Fault, 100)
	for i := range fs {
		fs[i] = fault.Fault{Gate: i}
	}
	s := fault.Sample(fs, 10)
	if len(s) != 10 {
		t.Fatalf("sample size %d", len(s))
	}
	if s[0].Gate != 0 || s[9].Gate != 90 {
		t.Errorf("sample not evenly spaced: %v %v", s[0], s[9])
	}
	if len(fault.Sample(fs, 0)) != 100 || len(fault.Sample(fs, 200)) != 100 {
		t.Error("degenerate sample sizes mishandled")
	}
}

func TestFaultString(t *testing.T) {
	if (fault.Fault{Gate: 3, Pin: -1, Val: true}).String() != "g3/out s-a-1" {
		t.Error("output fault rendering")
	}
	if (fault.Fault{Gate: 3, Pin: 1, Val: false}).String() != "g3/in1 s-a-0" {
		t.Error("input fault rendering")
	}
}

// Cross-check: bit-parallel simulation equals the dfg reference on random
// multiplier inputs.
func TestSimMatchesReferenceMultiplier(t *testing.T) {
	b := gates.NewBuilder()
	x := b.InputWord("x", 8)
	y := b.InputWord("y", 8)
	p := b.Multiplier(x, y)
	b.OutputWord("p", p)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, bb uint8) bool {
		pi := append(BusWords(uint64(a), 8), BusWords(uint64(bb), 8)...)
		po := s.Eval(pi)
		var got uint64
		for i := 0; i < 8; i++ {
			if po[i]&1 != 0 {
				got |= 1 << uint(i)
			}
		}
		return got == dfg.Eval(dfg.OpMul, 8, uint64(a), uint64(bb))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
