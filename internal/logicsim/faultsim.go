package logicsim

import (
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/gates"
	"repro/internal/parallel"
)

// FaultSimResult reports a fault-simulation campaign.
type FaultSimResult struct {
	Detected []bool // parallel to the fault list
	NumDet   int
	// DetectCycle[i] is the first cycle at which fault i was detected, -1
	// if undetected.
	DetectCycle []int
}

// Coverage returns the fraction of faults detected.
func (r *FaultSimResult) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 0
	}
	return float64(r.NumDet) / float64(len(r.Detected))
}

// FaultSim runs serial-fault, parallel-pattern stuck-at fault simulation:
// the good circuit is simulated once over the vector sequence, then each
// fault is injected in turn and simulated until its outputs diverge from
// the good circuit (fault dropping) or the vectors are exhausted.
// vectors[t] holds one 64-bit word per primary input; all 64 pattern lanes
// are compared, so a caller can pack 64 independent test sequences into
// one campaign (lane l of every word forms sequence l).
//
// FaultSim uses one worker per CPU; see FaultSimWorkers for the knob. The
// result is bit-identical at every worker count.
//
// The per-fault inner loop is allocation-free: the golden rows are
// computed once by Run, each worker's Sim reuses its output buffer
// across Step calls, and a fault's outputs are compared against the
// shared golden row in place — nothing is copied per fault.
func FaultSim(c *gates.Circuit, flist []fault.Fault, vectors [][]uint64) (*FaultSimResult, error) {
	return FaultSimWorkers(c, flist, vectors, 0)
}

// FaultSimWorkers is FaultSim with an explicit worker count: the fault
// list is partitioned across up to `workers` goroutines, each with its own
// private Sim instance, and Detected/DetectCycle are merged in fault order
// (each fault owns its slot, so the merge is free and deterministic).
// workers < 1 means one per CPU; 1 reproduces the sequential loop exactly.
func FaultSimWorkers(c *gates.Circuit, flist []fault.Fault, vectors [][]uint64, workers int) (*FaultSimResult, error) {
	return exec.Guard1("logicsim.faultsim", -1, func() (*FaultSimResult, error) {
		return faultSimWorkers(c, flist, vectors, workers)
	})
}

func faultSimWorkers(c *gates.Circuit, flist []fault.Fault, vectors [][]uint64, workers int) (*FaultSimResult, error) {
	good, err := New(c)
	if err != nil {
		return nil, err
	}
	golden := good.Run(vectors)

	res := &FaultSimResult{
		Detected:    make([]bool, len(flist)),
		DetectCycle: make([]int, len(flist)),
	}
	err = parallel.ForEachWorker(workers, len(flist),
		func() (*Sim, error) { return New(c) },
		func(bad *Sim, i int) error {
			res.DetectCycle[i] = -1
			bad.Fault = &flist[i]
			bad.Reset()
			for t, v := range vectors {
				po := bad.Step(v)
				for k, w := range po {
					if w != golden[t][k] {
						res.Detected[i] = true
						res.DetectCycle[i] = t
						break
					}
				}
				if res.Detected[i] {
					break
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	for _, d := range res.Detected {
		if d {
			res.NumDet++
		}
	}
	return res, nil
}

// FaultSimIncremental extends a previous campaign with new vectors,
// simulating only the still-undetected faults. detected is updated in
// place; the number of newly detected faults is returned. cycleBase
// offsets the recorded detect cycles. One worker per CPU; see
// FaultSimIncrementalWorkers.
func FaultSimIncremental(c *gates.Circuit, flist []fault.Fault, detected []bool, detectCycle []int, vectors [][]uint64, cycleBase int) (int, error) {
	return FaultSimIncrementalWorkers(c, flist, detected, detectCycle, vectors, cycleBase, 0)
}

// FaultSimIncrementalWorkers is FaultSimIncremental with an explicit
// worker count. Each fault touches only its own detected/detectCycle slot,
// so the update is race-free and the outcome is bit-identical at every
// worker count; workers < 1 means one per CPU.
func FaultSimIncrementalWorkers(c *gates.Circuit, flist []fault.Fault, detected []bool, detectCycle []int, vectors [][]uint64, cycleBase, workers int) (int, error) {
	return exec.Guard1("logicsim.faultsim", -1, func() (int, error) {
		return faultSimIncrementalWorkers(c, flist, detected, detectCycle, vectors, cycleBase, workers)
	})
}

func faultSimIncrementalWorkers(c *gates.Circuit, flist []fault.Fault, detected []bool, detectCycle []int, vectors [][]uint64, cycleBase, workers int) (int, error) {
	good, err := New(c)
	if err != nil {
		return 0, err
	}
	golden := good.Run(vectors)
	newlyOf := make([]bool, len(flist))
	err = parallel.ForEachWorker(workers, len(flist),
		func() (*Sim, error) { return New(c) },
		func(bad *Sim, i int) error {
			if detected[i] {
				return nil
			}
			bad.Fault = &flist[i]
			bad.Reset()
			for t, v := range vectors {
				po := bad.Step(v)
				diff := false
				for k, w := range po {
					if w != golden[t][k] {
						diff = true
						break
					}
				}
				if diff {
					detected[i] = true
					if detectCycle != nil {
						detectCycle[i] = cycleBase + t
					}
					newlyOf[i] = true
					break
				}
			}
			return nil
		})
	if err != nil {
		return 0, err
	}
	newly := 0
	for _, n := range newlyOf {
		if n {
			newly++
		}
	}
	return newly, nil
}
