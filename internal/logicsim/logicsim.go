// Package logicsim is a 64-way bit-parallel two-valued logic simulator for
// synchronous gate-level netlists, with single-fault injection: the engine
// behind fault simulation and the random phase of ATPG. Each net carries a
// 64-bit word, one bit per parallel pattern.
package logicsim

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/gates"
)

// Sim simulates one circuit. A Sim carries DFF state between Step calls;
// Reset clears it. Not safe for concurrent use.
type Sim struct {
	C     *gates.Circuit
	order []int
	vals  []uint64
	state []uint64 // per DFF index
	po    []uint64 // Eval output buffer, reused across calls
	dffIx map[int]int
	// Fault, when non-nil, is injected during evaluation (all 64 patterns).
	Fault *fault.Fault
}

// New prepares a simulator for c.
func New(c *gates.Circuit) (*Sim, error) {
	order, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	dffIx := make(map[int]int, len(c.DFFs))
	for i, d := range c.DFFs {
		dffIx[d] = i
	}
	return &Sim{
		C: c, order: order,
		vals:  make([]uint64, len(c.Gates)),
		state: make([]uint64, len(c.DFFs)),
		po:    make([]uint64, len(c.Outputs)),
		dffIx: dffIx,
	}, nil
}

// Reset zeroes all flip-flops.
func (s *Sim) Reset() {
	for i := range s.state {
		s.state[i] = 0
	}
}

// SetState forces the DFF contents (by DFF declaration order).
func (s *Sim) SetState(vals []uint64) {
	copy(s.state, vals)
}

// State returns the current DFF contents (by declaration order). The
// caller must not modify the returned slice.
func (s *Sim) State() []uint64 { return s.state }

func (s *Sim) pinVal(g *gates.Gate, pin int) uint64 {
	v := s.vals[g.In[pin]]
	if s.Fault != nil && s.Fault.Gate == g.ID && s.Fault.Pin == pin {
		if s.Fault.Val {
			return ^uint64(0)
		}
		return 0
	}
	return v
}

// Eval evaluates the combinational logic for the given primary-input
// words (one word per PI, in circuit input order) against the current DFF
// state, and returns the primary-output words. The returned slice is a
// per-Sim buffer, overwritten by the next Eval or Step call — callers
// that keep outputs across calls must copy them (Run does). Steady-state
// Eval performs no allocations; the fault-simulation inner loops depend
// on that.
func (s *Sim) Eval(pi []uint64) []uint64 {
	if len(pi) != len(s.C.Inputs) {
		panic(fmt.Sprintf("logicsim: %d input words for %d PIs", len(pi), len(s.C.Inputs)))
	}
	for i, id := range s.C.Inputs {
		s.vals[id] = pi[i]
	}
	for i, id := range s.C.DFFs {
		s.vals[id] = s.state[i]
	}
	for _, id := range s.order {
		g := s.C.Gates[id]
		var v uint64
		switch g.Kind {
		case gates.KInput:
			v = s.vals[id]
		case gates.KDFF:
			v = s.vals[id]
		case gates.KConst0:
			v = 0
		case gates.KConst1:
			v = ^uint64(0)
		case gates.KBuf:
			v = s.pinVal(g, 0)
		case gates.KNot:
			v = ^s.pinVal(g, 0)
		case gates.KAnd, gates.KNand:
			v = ^uint64(0)
			for pin := range g.In {
				v &= s.pinVal(g, pin)
			}
			if g.Kind == gates.KNand {
				v = ^v
			}
		case gates.KOr, gates.KNor:
			v = 0
			for pin := range g.In {
				v |= s.pinVal(g, pin)
			}
			if g.Kind == gates.KNor {
				v = ^v
			}
		case gates.KXor:
			v = s.pinVal(g, 0) ^ s.pinVal(g, 1)
		case gates.KXnor:
			v = ^(s.pinVal(g, 0) ^ s.pinVal(g, 1))
		}
		if s.Fault != nil && s.Fault.Gate == id && s.Fault.Pin < 0 {
			if s.Fault.Val {
				v = ^uint64(0)
			} else {
				v = 0
			}
		}
		s.vals[id] = v
	}
	for i, id := range s.C.Outputs {
		s.po[i] = s.vals[id]
	}
	return s.po
}

// Step evaluates the combinational logic and then clocks every DFF,
// returning the primary outputs observed before the clock edge. Like
// Eval, the returned slice is the Sim's reused output buffer.
func (s *Sim) Step(pi []uint64) []uint64 {
	po := s.Eval(pi)
	for i, id := range s.C.DFFs {
		g := s.C.Gates[id]
		if len(g.In) != 1 {
			panic(fmt.Sprintf("logicsim: DFF %d has no D input", id))
		}
		s.state[i] = s.pinVal(g, 0)
	}
	return po
}

// Run resets the simulator and applies a vector sequence, returning the
// outputs of every cycle. vectors[t] holds one word per PI. The rows are
// copies (they stay valid across later Eval/Step calls), carved from one
// flat backing array so a whole golden run costs two allocations.
func (s *Sim) Run(vectors [][]uint64) [][]uint64 {
	s.Reset()
	nPO := len(s.C.Outputs)
	out := make([][]uint64, len(vectors))
	flat := make([]uint64, len(vectors)*nPO)
	for t, v := range vectors {
		po := s.Step(v)
		row := flat[t*nPO : (t+1)*nPO : (t+1)*nPO]
		copy(row, po)
		out[t] = row
	}
	return out
}

// WordFromValue spreads a scalar bit pattern: value v replicated across
// all 64 parallel patterns (v is 0 or 1 per bit position... use for
// driving a bus where each net carries one bit of a word value).
func WordFromValue(bit bool) uint64 {
	if bit {
		return ^uint64(0)
	}
	return 0
}

// BusWords converts a w-bit numeric value into per-net words for a bus
// (LSB first), replicated across all 64 patterns.
func BusWords(value uint64, w int) []uint64 {
	out := make([]uint64, w)
	for i := 0; i < w; i++ {
		out[i] = WordFromValue(value&(1<<uint(i)) != 0)
	}
	return out
}
