// replicate.go is the worker-side wire surface of peer-to-peer store
// replication (DESIGN.md §4j): four small endpoints under /store/v1/
// that expose the persistent store's digest, its append-order delta
// stream, and single-record fetch/push — everything a peer's
// anti-entropy loop, a read-repair, or the coordinator's hinted handoff
// needs. Every payload is capped and CRC-verified end to end: a record
// travels with a CRC-32C over (fingerprint‖value) computed by the
// sender and re-checked by the receiver before the bytes are trusted,
// on top of the store's own per-record checksum at both ends.
//
// The endpoints answer 404 with a typed body when the daemon runs
// without a store — replication is an opt-in property of -store mode,
// not a failure.
package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/store"
)

// PeerFetchFunc is the read-repair hook: given a fingerprint missing
// from both the LRU and the durable store, it may return the encoded
// result held by a replication peer. It runs on a job worker with the
// job's context; failures (or a false return) degrade to the ordinary
// recompute.
type PeerFetchFunc func(ctx context.Context, fp core.Fingerprint) ([]byte, bool)

// Pull batch caps: a /store/v1/pull response carries at most
// pullMaxRecords records and pullMaxBytes of value bytes (whichever is
// hit first), so one exchange is always bounded whatever the store
// holds.
const (
	pullMaxRecords     = 1024
	pullDefaultRecords = 256
	pullMaxBytes       = 4 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// RecordCRC is the transport checksum of one replicated record:
// CRC-32C over the fingerprint bytes then the value bytes, so a record
// whose key and value were swapped between peers is rejected, not
// stored under the wrong name.
func RecordCRC(fp core.Fingerprint, val []byte) uint32 {
	c := crc32.Update(0, crcTable, fp[:])
	return crc32.Update(c, crcTable, val)
}

// WireCursor is a store.Cursor on the wire.
type WireCursor struct {
	Gen uint64 `json:"gen"`
	Seg uint64 `json:"seg"`
	Off int64  `json:"off"`
}

// Cursor converts to the store's type.
func (c WireCursor) Cursor() store.Cursor { return store.Cursor{Gen: c.Gen, Seg: c.Seg, Off: c.Off} }

func toWireCursor(c store.Cursor) WireCursor { return WireCursor{Gen: c.Gen, Seg: c.Seg, Off: c.Off} }

// DigestResponse is the GET /store/v1/digest body.
type DigestResponse struct {
	Gen     uint64     `json:"gen"`
	Records int        `json:"records"`
	XorFP   string     `json:"xor_fp"` // hex
	End     WireCursor `json:"end"`
}

// WireRecord is one replicated record: hex fingerprint, base64 value
// (encoding/json's []byte convention) and the transport CRC.
type WireRecord struct {
	FP  string `json:"fp"`
	Val []byte `json:"val"`
	CRC uint32 `json:"crc"`
}

// PullResponse is the GET /store/v1/pull body: one bounded batch of the
// delta stream plus the cursor to resume from.
type PullResponse struct {
	Records []WireRecord `json:"records"`
	Next    WireCursor   `json:"next"`
	More    bool         `json:"more"`
}

// EncodeWireRecord frames a record for transport.
func EncodeWireRecord(fp core.Fingerprint, val []byte) WireRecord {
	return WireRecord{FP: fp.String(), Val: val, CRC: RecordCRC(fp, val)}
}

// DecodeWireRecord validates a received record: fingerprint shape and
// transport CRC. The returned value aliases the wire buffer.
func DecodeWireRecord(r WireRecord) (core.Fingerprint, []byte, error) {
	var fp core.Fingerprint
	raw, err := hex.DecodeString(r.FP)
	if err != nil || len(raw) != len(fp) {
		return fp, nil, fmt.Errorf("replicate: bad fingerprint %q", r.FP)
	}
	copy(fp[:], raw)
	if RecordCRC(fp, r.Val) != r.CRC {
		return fp, nil, fmt.Errorf("replicate: record %s failed transport CRC", r.FP)
	}
	return fp, r.Val, nil
}

// ErrRecordConflict reports a push whose fingerprint is already present
// locally with different bytes — which deterministic synthesis makes
// impossible unless something upstream is corrupt, so the local
// (first-written) record is kept and the pusher told.
var ErrRecordConflict = errors.New("replicate: record conflicts with local bytes")

// ApplyRecord installs one replicated record into the store under the
// first-writer-wins rule: an absent fingerprint is stored (fsynced
// before the reply acknowledges it), identical bytes are an idempotent
// no-op, and differing bytes are rejected with ErrRecordConflict and
// counted — the byte-equality assertion of DESIGN.md §4j.
func (s *Server) ApplyRecord(fp core.Fingerprint, val []byte) error {
	if cur, ok := s.cfg.Store.Get(fp); ok {
		if string(cur) == string(val) {
			return nil
		}
		s.st.Add("server.replicate.conflict", 1)
		return ErrRecordConflict
	}
	if err := s.cfg.Store.Put(fp, val); err != nil {
		s.st.Add("server.store.error", 1)
		return err
	}
	s.st.Add("server.replicate.applied", 1)
	return nil
}

// writeJSON is the small-response helper of the /store/v1/ handlers.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshal(v)
	if err != nil {
		body, _ = marshal(errorBody{Error: err.Error()})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// storeRequired answers the no-store case once for all four handlers.
func (s *Server) storeRequired(w http.ResponseWriter) bool {
	if s.cfg.Store != nil {
		return false
	}
	s.writeJSON(w, http.StatusNotFound, errorBody{Error: "no persistent store attached"})
	return true
}

func (s *Server) handleStoreDigest(w http.ResponseWriter, r *http.Request) {
	if s.storeRequired(w) {
		return
	}
	d := s.cfg.Store.Digest()
	s.writeJSON(w, http.StatusOK, DigestResponse{
		Gen:     d.Gen,
		Records: d.Records,
		XorFP:   hex.EncodeToString(d.XorFP[:]),
		End:     toWireCursor(d.End),
	})
}

func (s *Server) handleStorePull(w http.ResponseWriter, r *http.Request) {
	if s.storeRequired(w) {
		return
	}
	qv := r.URL.Query()
	var c store.Cursor
	var err error
	if c.Gen, err = parseUint(qv.Get("gen")); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad gen: " + err.Error()})
		return
	}
	if c.Seg, err = parseUint(qv.Get("seg")); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad seg: " + err.Error()})
		return
	}
	off, err := parseUint(qv.Get("off"))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad off: " + err.Error()})
		return
	}
	c.Off = int64(off)
	max := pullDefaultRecords
	if m := qv.Get("max"); m != "" {
		mv, err := strconv.Atoi(m)
		if err != nil || mv < 1 {
			s.writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad max %q", m)})
			return
		}
		if max = mv; max > pullMaxRecords {
			max = pullMaxRecords
		}
	}
	recs, next, more := s.cfg.Store.Since(c, max, pullMaxBytes)
	resp := PullResponse{Records: make([]WireRecord, 0, len(recs)), Next: toWireCursor(next), More: more}
	for _, rec := range recs {
		resp.Records = append(resp.Records, EncodeWireRecord(rec.FP, rec.Val))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleStoreRecord serves one record by fingerprint — the fetch half of
// read-repair and hinted handoff. A miss is a plain 404: partial results
// are never stored, so "not here" is an expected answer, not an error.
func (s *Server) handleStoreRecord(w http.ResponseWriter, r *http.Request) {
	if s.storeRequired(w) {
		return
	}
	fpHex := r.URL.Query().Get("fp")
	raw, err := hex.DecodeString(fpHex)
	var fp core.Fingerprint
	if err != nil || len(raw) != len(fp) {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad fingerprint %q", fpHex)})
		return
	}
	copy(fp[:], raw)
	val, ok := s.cfg.Store.Get(fp)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "record not found"})
		return
	}
	s.writeJSON(w, http.StatusOK, EncodeWireRecord(fp, val))
}

// handleStorePush accepts one record — the delivery half of hinted
// handoff. The body is decoded strictly under a cap generous enough for
// a base64-inflated result, CRC-verified, and applied under
// first-writer-wins; 409 reports a byte-inequality conflict.
func (s *Server) handleStorePush(w http.ResponseWriter, r *http.Request) {
	if s.storeRequired(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.pushBodyCap())
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var rec WireRecord
	if err := dec.Decode(&rec); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeJSON(w, status, errorBody{Error: "bad push body: " + err.Error()})
		return
	}
	fp, val, err := DecodeWireRecord(rec)
	if err != nil {
		s.st.Add("server.replicate.crc", 1)
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	switch err := s.ApplyRecord(fp, val); {
	case errors.Is(err, ErrRecordConflict):
		s.writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case err != nil:
		s.writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "stored"})
	}
}

// pushBodyCap bounds a push body: the configured request cap inflated
// for base64 framing, with the same floor pull batches get.
func (s *Server) pushBodyCap() int64 {
	cap := s.cfg.MaxBodyBytes * 2
	if cap < pullMaxBytes {
		cap = pullMaxBytes
	}
	return cap
}

func parseUint(v string) (uint64, error) {
	if v == "" {
		return 0, nil
	}
	return strconv.ParseUint(v, 10, 64)
}
