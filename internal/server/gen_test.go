package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	hlts "repro"
)

// TestGeneratedBenchRequests drives the daemon with "gen:" benchmark
// names: generated behaviours must serve like built-ins — contract
// equality with the direct library path, cache hits on repeats, typed
// 400s on malformed specs — with no request-schema change.
func TestGeneratedBenchRequests(t *testing.T) {
	name := hlts.GenSpec{Seed: 41, Ops: 12}.Name()
	loopName := hlts.GenSpec{Seed: 42, Ops: 12, Mix: "diffeq", Loop: true}.Name()

	s := New(Config{QueueDepth: 16, Jobs: 2, CacheSize: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	body := `{"bench":"` + name + `","width":4}`
	status, hdr, got := post(t, client, ts.URL+"/v1/synthesize", body)
	if status != http.StatusOK {
		t.Fatalf("gen synthesize: status %d: %s", status, got)
	}
	want := directSynthesize(t, SynthesizeRequest{Bench: name, Width: 4})
	if !bytes.Equal(got, want) {
		t.Errorf("gen synthesize differs from direct computation:\n got %s\nwant %s", got, want)
	}
	if hdr.Get("X-Hlts-Result") == "cached" {
		t.Errorf("first gen request served from cache")
	}

	// Repeat: byte-identical and served from the cache — generated
	// graphs fingerprint stably.
	status, hdr, again := post(t, client, ts.URL+"/v1/synthesize", body)
	if status != http.StatusOK {
		t.Fatalf("repeat: status %d: %s", status, again)
	}
	if !bytes.Equal(again, got) {
		t.Errorf("repeat response differs:\n got %s\nwant %s", again, got)
	}
	if hdr.Get("X-Hlts-Result") != "cached" {
		t.Errorf("repeat gen request not served from cache (X-Hlts-Result=%q)", hdr.Get("X-Hlts-Result"))
	}

	// A looping spec picks up LoopSignal from its name: the response
	// must be complete, and distinct from a spec without the idiom.
	status, _, loopGot := post(t, client, ts.URL+"/v1/synthesize", `{"bench":"`+loopName+`","width":4}`)
	if status != http.StatusOK {
		t.Fatalf("loop spec: status %d: %s", status, loopGot)
	}
	if !strings.Contains(string(loopGot), `"status":"complete"`) {
		t.Errorf("loop spec not complete: %s", loopGot)
	}

	// Malformed specs are caller errors: typed 400 with a JSON body.
	for _, bad := range []string{"gen:bogus", "gen:s1-o9999", "gen:s1-o8-mnope"} {
		status, _, errBody := post(t, client, ts.URL+"/v1/synthesize", `{"bench":"`+bad+`","width":4}`)
		if status != http.StatusBadRequest {
			t.Errorf("bench %q: status %d, want 400 (%s)", bad, status, errBody)
		}
		if !strings.Contains(string(errBody), `"error"`) {
			t.Errorf("bench %q: error body not typed JSON: %s", bad, errBody)
		}
	}

	// Generated names work through the table endpoint too.
	status, tbl := get(t, client, ts.URL+"/v1/table/"+name+"?widths=4&faults=30")
	if status != http.StatusOK {
		t.Fatalf("gen table: status %d: %s", status, tbl)
	}
	if !strings.Contains(string(tbl), `"Benchmark":"`+name+`"`) && !strings.Contains(string(tbl), name) {
		t.Errorf("gen table response does not mention %s: %.200s", name, tbl)
	}
}
