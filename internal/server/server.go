// Package server turns the high-level test synthesis library into a
// service: an HTTP JSON API exposing synthesis (/v1/synthesize), netlist
// generation plus ATPG evaluation (/v1/testdesign) and experiment-table
// reproduction (/v1/table/{bench}) as jobs on a bounded queue.
//
// The serving model (DESIGN.md §4f):
//
//   - Admission control: the queue is bounded; at capacity a request is
//     answered 429 with a Retry-After hint instead of growing memory.
//   - Coalescing: requests are fingerprinted with the canonical FNV-128a
//     encoding of internal/core's evaluation cache; N identical in-flight
//     requests share one computation, and completed results are served
//     from a fingerprint-keyed LRU. Synthesis is deterministic, so every
//     requester receives byte-identical bytes whichever path served them.
//   - Deadlines: each job runs under a context capped by the server's
//     MaxDeadline (tightenable per request); a dropped connection cancels
//     its job once the last waiter is gone. Budget exhaustion surfaces as
//     StatusPartial payloads, not errors.
//   - Worker budget: parallel.Split divides the configured goroutine
//     budget between concurrent jobs and the parallelism inside each, so
//     serving concurrency never oversubscribes the per-job fan-out.
//   - Observability: /metrics exposes the stats counters/timers/latency
//     histograms in the Prometheus text format plus queue gauges;
//     /healthz is readiness (503 while draining), /livez is liveness.
//   - Chaos: the server.accept / server.enqueue / server.respond sites
//     extend the fault-injection sweep to the serving layer; an injected
//     fault surfaces as a typed 5xx, never a crashed daemon.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	hlts "repro"
	"repro/internal/atpg"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/store"
)

// Config tunes the daemon.
type Config struct {
	// QueueDepth bounds the number of queued-but-unstarted jobs; above
	// it requests are rejected with 429 (default 64).
	QueueDepth int
	// Jobs is the number of jobs run concurrently (default 2).
	Jobs int
	// Workers is the total worker-goroutine budget, divided between
	// concurrent jobs and the parallelism inside each via parallel.Split
	// (0 = one per CPU).
	Workers int
	// MaxDeadline caps every job's computation; requests may tighten it
	// with deadline_ms but never exceed it (default 2m).
	MaxDeadline time.Duration
	// CacheSize is the LRU result-cache capacity in entries (default 128;
	// negative disables caching).
	CacheSize int
	// RetryAfter is the base backoff hint returned with 429/503 responses
	// (default 1s). The emitted value is jittered into [RetryAfter,
	// 1.5*RetryAfter] so a burst of rejected clients does not come back as
	// a synchronized stampede.
	RetryAfter time.Duration
	// RetryJitterSeed seeds the Retry-After jitter; 0 derives one from the
	// clock (tests pin it for determinism).
	RetryJitterSeed int64
	// MaxBodyBytes caps every request body via http.MaxBytesReader;
	// over-limit bodies answer 413 (default 1 MiB).
	MaxBodyBytes int64
	// Validate runs the structural invariant checkers inside every job.
	Validate bool
	// Store, when non-nil, is the persistent content-addressed result
	// store (see internal/store): the LRU is warmed from it at
	// construction, every StatusComplete result is written through, and
	// submit-time misses consult it before recomputing — so a restarted
	// daemon serves a repeat workload at its prior hit rate. The caller
	// owns the store and closes it after Drain. Store faults degrade to
	// recomputes (counted as server.store.error), never failed requests.
	Store *store.Store
	// PeerFetch, when non-nil, is the read-repair hook consulted on a
	// full cache+store miss before the job computes: a replication peer
	// that already holds the record answers it, and the bytes are written
	// through locally before publishing. It runs on a job worker (never
	// under the admission mutex); failures degrade to the recompute.
	PeerFetch PeerFetchFunc
	// Stats receives the server's counters, timers and latency
	// histograms; a fresh collector is created when nil.
	Stats *stats.Stats
}

// Server is the synthesis service. Construct with New, serve Handler(),
// and call Drain on shutdown.
type Server struct {
	cfg   Config
	st    *stats.Stats
	q     *queue
	inner int // per-job worker budget
	mux   *http.ServeMux

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// New builds a server and starts its job workers.
func New(cfg Config) *Server {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.Jobs < 1 {
		cfg.Jobs = 2
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 2 * time.Minute
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.RetryJitterSeed == 0 {
		cfg.RetryJitterSeed = time.Now().UnixNano()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Stats == nil {
		cfg.Stats = stats.New()
	}
	outer, inner := parallel.Split(cfg.Workers, cfg.Jobs)
	s := &Server{
		cfg:    cfg,
		st:     cfg.Stats,
		q:      newQueue(cfg.QueueDepth, outer, cfg.CacheSize, cfg.Stats, cfg.Store, cfg.PeerFetch),
		inner:  inner,
		mux:    http.NewServeMux(),
		jitter: rand.New(rand.NewSource(cfg.RetryJitterSeed)),
	}
	s.mux.HandleFunc("POST /v1/synthesize", s.guarded("synthesize", s.handleSynthesize))
	s.mux.HandleFunc("POST /v1/testdesign", s.guarded("testdesign", s.handleTestDesign))
	s.mux.HandleFunc("GET /v1/table/{bench}", s.guarded("table", s.handleTable))
	s.mux.HandleFunc("GET /store/v1/digest", s.guarded("store.digest", s.handleStoreDigest))
	s.mux.HandleFunc("GET /store/v1/pull", s.guarded("store.pull", s.handleStorePull))
	s.mux.HandleFunc("GET /store/v1/record", s.guarded("store.record", s.handleStoreRecord))
	s.mux.HandleFunc("POST /store/v1/push", s.guarded("store.push", s.handleStorePush))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats returns the server's collector.
func (s *Server) Stats() *stats.Stats { return s.st }

// Snapshot is the utilization view a cluster worker carries in its
// heartbeats (see internal/cluster): the live queue state plus the cache
// effectiveness and work done since boot, all read from the existing
// queue gauges and stats counters.
type Snapshot struct {
	// Queued and Inflight are the current queue depth and the number of
	// distinct in-flight fingerprints.
	Queued   int
	Inflight int
	// QueueDepth and Jobs echo the configured capacity.
	QueueDepth int
	Jobs       int
	// CacheHitRate is hits/(hits+misses) over the LRU; 0 when never
	// consulted.
	CacheHitRate float64
	// StoreHitRate is the persistent store's share, when one is attached.
	StoreHitRate float64
	// JobsRun counts pipeline executions since boot.
	JobsRun int64
	// HasStore reports whether a persistent store is attached; the store
	// fields below are zero without one.
	HasStore bool
	// StoreRecords and StoreLiveBytes summarize the persistent store, and
	// StoreCursor is its end-of-log position — together the replication
	// state a peer needs to judge lag.
	StoreRecords   int
	StoreLiveBytes int64
	StoreCursor    store.Cursor
}

// Snapshot reads the server's live utilization.
func (s *Server) Snapshot() Snapshot {
	queued, inflight := s.q.depth()
	snap := Snapshot{
		Queued:       queued,
		Inflight:     inflight,
		QueueDepth:   s.cfg.QueueDepth,
		Jobs:         s.cfg.Jobs,
		CacheHitRate: s.st.HitRate("server.cache"),
		StoreHitRate: s.st.HitRate("server.store"),
		JobsRun:      s.st.Value("server.jobs.run"),
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		snap.HasStore = true
		snap.StoreRecords = st.Records
		snap.StoreLiveBytes = st.LiveBytes
		snap.StoreCursor = st.Cursor
	}
	return snap
}

// Drain shuts the server down gracefully: new requests are rejected with
// 503, queued jobs still run, and when ctx expires first the in-flight
// jobs are cancelled so they land StatusPartial results at their next
// budget boundary. Drain returns once every job worker has exited; a
// non-nil error means the deadline forced the degradation path.
func (s *Server) Drain(ctx context.Context) error { return s.q.drain(ctx) }

// guarded wraps a handler with the daemon's last-resort panic recovery:
// a panicking handler answers 500 (best effort) instead of killing the
// connection with an opaque EOF or, worse, relying on net/http's
// per-connection recovery semantics.
func (s *Server) guarded(kind string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.st.Add("server.panics", 1)
				err := exec.Recovered("server."+kind, -1, rec)
				body, _ := marshal(errorBody{Error: err.Error()})
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				w.Write(body)
			}
		}()
		h(w, r)
	}
}

// decode parses a JSON request body strictly; unknown fields are client
// errors (they are always typos — every knob has a default). The body is
// hard-capped with http.MaxBytesReader first, so a malicious or buggy
// client cannot stream an unbounded body into the decoder; over-limit
// bodies answer 413.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, kind string, start time.Time, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, kind, start, status, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// serveJob is the shared admission + wait path of the three job
// endpoints.
func (s *Server) serveJob(w http.ResponseWriter, r *http.Request, kind string, fp core.Fingerprint, deadlineMS int, run func(ctx context.Context) (int, []byte, bool)) {
	start := time.Now()
	if err := chaos.Step(chaos.SiteServerAccept); err != nil {
		s.setRetryAfter(w)
		s.writeError(w, kind, start, http.StatusServiceUnavailable, err)
		return
	}
	deadline := s.cfg.MaxDeadline
	if d := time.Duration(deadlineMS) * time.Millisecond; d > 0 && d < deadline {
		deadline = d
	}
	j, cached, err := s.q.submit(fp, kind, deadline, run)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.setRetryAfter(w)
		s.writeError(w, kind, start, http.StatusTooManyRequests, err)
		return
	case err != nil: // ErrDraining or an injected enqueue fault
		// 503s carry the same backoff hint as 429s: a draining daemon is
		// typically restarting, so well-behaved clients should retry after
		// the hint rather than hammering or giving up.
		s.setRetryAfter(w)
		s.writeError(w, kind, start, http.StatusServiceUnavailable, err)
		return
	}
	if cached != nil {
		w.Header().Set("X-Hlts-Result", "cached")
		s.write(w, kind, start, cached.status, cached.body)
		return
	}
	select {
	case <-j.done:
		s.write(w, kind, start, j.res.status, j.res.body)
	case <-r.Context().Done():
		// The client is gone: detach (cancelling the job if we were its
		// last waiter) and write nothing — there is nobody to write to.
		s.q.detach(j)
		s.st.Add("server.requests.dropped", 1)
	}
}

// setRetryAfter attaches the backoff hint, rounded up to whole seconds;
// every 429 and 503 carries it. The hint is jittered into [RetryAfter,
// 1.5*RetryAfter]: a fixed constant would tell every rejected client to
// come back at the same instant, turning one overload spike into a
// synchronized retry stampede.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
}

func (s *Server) retryAfterSeconds() int {
	base := s.cfg.RetryAfter
	s.jitterMu.Lock()
	j := time.Duration(s.jitter.Int63n(int64(base/2) + 1))
	s.jitterMu.Unlock()
	secs := int((base + j + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// write sends a response, firing the respond chaos site and recording
// per-endpoint status-class counters and latency histograms.
func (s *Server) write(w http.ResponseWriter, kind string, start time.Time, status int, body []byte) {
	if err := chaos.Step(chaos.SiteServerRespond); err != nil {
		status = http.StatusInternalServerError
		body, _ = marshal(errorBody{Error: err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	s.st.Add(fmt.Sprintf("server.http.%s.%dxx", kind, status/100), 1)
	s.st.ObserveSince("server.http."+kind+".latency", start)
}

func (s *Server) writeError(w http.ResponseWriter, kind string, start time.Time, status int, err error) {
	body, _ := marshal(errorBody{Error: err.Error()})
	s.write(w, kind, start, status, body)
}

// clientError classifies job-body errors: typed input errors are the
// client's fault, everything else is a 500.
func errStatus(err error) int {
	if errors.Is(err, hlts.ErrBadWidth) || errors.Is(err, hlts.ErrUnknownBenchmark) || errors.Is(err, hlts.ErrBadGenSpec) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SynthesizeRequest
	if !s.decode(w, r, "synthesize", start, &req) {
		return
	}
	n, err := req.Normalize()
	if err != nil {
		s.writeError(w, "synthesize", start, http.StatusBadRequest, err)
		return
	}
	n.Params.Workers = s.inner
	n.Params.Validate = s.cfg.Validate
	n.Params.Stats = s.st
	fp := n.Fingerprint()
	s.serveJob(w, r, "synthesize", fp, req.DeadlineMS, func(ctx context.Context) (int, []byte, bool) {
		res, err := hlts.RunMethodCtx(ctx, n.Method, n.Graph, n.Params)
		if err != nil {
			body, _ := marshal(errorBody{Error: err.Error()})
			return errStatus(err), body, false
		}
		body, err := marshal(BuildSynthesizeResponse(n, res))
		if err != nil {
			body, _ = marshal(errorBody{Error: err.Error()})
			return http.StatusInternalServerError, body, false
		}
		return http.StatusOK, body, res.Status == hlts.StatusComplete
	})
}

func (s *Server) handleTestDesign(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req TestDesignRequest
	if !s.decode(w, r, "testdesign", start, &req) {
		return
	}
	n, err := req.Normalize()
	if err != nil {
		s.writeError(w, "testdesign", start, http.StatusBadRequest, err)
		return
	}
	n.Params.Workers = s.inner
	n.Params.Validate = s.cfg.Validate
	n.Params.Stats = s.st
	fp := n.Fingerprint()
	s.serveJob(w, r, "testdesign", fp, req.DeadlineMS, func(ctx context.Context) (int, []byte, bool) {
		status, body, complete, err := s.runTestDesign(ctx, n)
		if err != nil {
			body, _ := marshal(errorBody{Error: err.Error()})
			return errStatus(err), body, false
		}
		return status, body, complete
	})
}

// runTestDesign is the /v1/testdesign job body: synthesis, optional
// partial-scan selection, netlist generation, the ATPG campaign, and the
// optional BIST session — each stage under the shared job context.
func (s *Server) runTestDesign(ctx context.Context, n *NormTestDesign) (int, []byte, bool, error) {
	res, err := hlts.RunMethodCtx(ctx, n.Method, n.Graph, n.Params)
	if err != nil {
		return 0, nil, false, err
	}
	var scanRegs []int
	if n.Scan > 0 {
		scanRegs, _ = hlts.SelectScanRegisters(res, n.Scan)
	}
	nl, err := hlts.GenerateNetlistWithScan(res, n.Params.Width, n.TestMode, scanRegs)
	if err != nil {
		return 0, nil, false, err
	}
	if s.cfg.Validate {
		if err := hlts.ValidateNetlist(nl); err != nil {
			return 0, nil, false, err
		}
	}
	acfg := hlts.DefaultATPGConfig(n.Seed)
	acfg.SampleFaults = n.Faults
	acfg.Workers = n.Params.Workers
	ares, err := hlts.TestDesignCtx(ctx, nl, acfg)
	if err != nil {
		return 0, nil, false, err
	}
	var tpg, misr []int
	var bres *atpg.BISTOutcome
	if n.BIST != nil {
		tpg, misr = hlts.SelectBISTRegisters(res, n.BIST.TPG, n.BIST.MISR)
		bn, err := hlts.GenerateNetlistWithBIST(res, n.Params.Width, tpg, misr)
		if err != nil {
			return 0, nil, false, err
		}
		bres, err = hlts.RunBISTCfgCtx(ctx, bn, n.BIST.Faults, n.BIST.Cycles,
			hlts.BISTConfig{Lanes: n.BIST.Lanes})
		if err != nil {
			return 0, nil, false, err
		}
	}
	body, err := marshal(BuildTestDesignResponse(n, res, nl, scanRegs, ares, tpg, misr, bres))
	if err != nil {
		return 0, nil, false, err
	}
	complete := res.Status == hlts.StatusComplete && ares.Status == hlts.StatusComplete &&
		(bres == nil || bres.Status == hlts.StatusComplete)
	return http.StatusOK, body, complete, nil
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	qv := r.URL.Query()
	n, err := NormalizeTable(r.PathValue("bench"), qv.Get("widths"), qv.Get("seed"), qv.Get("faults"))
	if err != nil {
		s.writeError(w, "table", start, errStatusTable(err), err)
		return
	}
	deadlineMS := 0
	if d := qv.Get("deadline_ms"); d != "" {
		deadlineMS, err = strconv.Atoi(d)
		if err != nil || deadlineMS < 0 {
			s.writeError(w, "table", start, http.StatusBadRequest, fmt.Errorf("bad deadline_ms %q", d))
			return
		}
	}
	fp := n.Fingerprint()
	s.serveJob(w, r, "table", fp, deadlineMS, func(ctx context.Context) (int, []byte, bool) {
		cfg := hlts.DefaultExperimentConfig(n.Seed)
		cfg.Widths = n.Widths
		cfg.Workers = s.inner
		cfg.Parallel = 1 // the job IS the unit of concurrency; don't nest
		cfg.Stats = s.st
		cfg.Validate = s.cfg.Validate
		baseATPG := cfg.ATPGFor
		cfg.ATPGFor = func(width int) hlts.ATPGConfig {
			c := baseATPG(width)
			if n.Faults > 0 && n.Faults < c.SampleFaults {
				c.SampleFaults = n.Faults
			}
			return c
		}
		tbl, err := hlts.ReproduceTableCtx(ctx, n.Bench, cfg)
		if err != nil {
			body, _ := marshal(errorBody{Error: err.Error()})
			return errStatus(err), body, false
		}
		resp := BuildTableResponse(n, tbl)
		body, err := marshal(resp)
		if err != nil {
			body, _ = marshal(errorBody{Error: err.Error()})
			return http.StatusInternalServerError, body, false
		}
		return http.StatusOK, body, !resp.Partial
	})
}

// errStatusTable maps table-normalization failures: unknown benchmarks
// and bad widths are 404/400 respectively; everything else is 400.
func errStatusTable(err error) int {
	if errors.Is(err, hlts.ErrUnknownBenchmark) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// handleHealthz is readiness: 200 with queue gauges while accepting,
// 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, inflight := s.q.depth()
	s.q.mu.Lock()
	draining := s.q.draining
	s.q.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	status := http.StatusOK
	state := "ok"
	if draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	w.WriteHeader(status)
	body, _ := marshal(map[string]any{
		"status": state, "queued": queued, "inflight": inflight,
		"queue_depth": s.cfg.QueueDepth,
	})
	w.Write(body)
}

// handleLivez is liveness: 200 while the process serves at all.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	body, _ := marshal(map[string]string{"status": "ok"})
	w.Write(body)
}

// handleMetrics exposes queue gauges plus every stats counter, timer and
// latency histogram in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, inflight := s.q.depth()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# TYPE hlts_server_queue_queued gauge\nhlts_server_queue_queued %d\n", queued)
	fmt.Fprintf(w, "# TYPE hlts_server_queue_capacity gauge\nhlts_server_queue_capacity %d\n", s.cfg.QueueDepth)
	fmt.Fprintf(w, "# TYPE hlts_server_inflight_jobs gauge\nhlts_server_inflight_jobs %d\n", inflight)
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		fmt.Fprintf(w, "# TYPE hlts_server_store_records gauge\nhlts_server_store_records %d\n", st.Records)
		fmt.Fprintf(w, "# TYPE hlts_server_store_live_bytes gauge\nhlts_server_store_live_bytes %d\n", st.LiveBytes)
		fmt.Fprintf(w, "# TYPE hlts_server_store_dead_bytes gauge\nhlts_server_store_dead_bytes %d\n", st.DeadBytes)
		fmt.Fprintf(w, "# TYPE hlts_server_store_corrupt_dropped counter\nhlts_server_store_corrupt_dropped %d\n", st.DroppedCorrupt)
		fmt.Fprintf(w, "# TYPE hlts_server_store_torn_resealed counter\nhlts_server_store_torn_resealed %d\n", st.TornResealed)
	}
	s.st.WriteText(w)
}
