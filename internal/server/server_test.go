// The serving-layer contract tests:
//
//   - every endpoint's payload is byte-identical to what the library
//     facade computes directly (the queue, coalescing and cache must be
//     invisible in the body),
//   - under a 200-request concurrent mixed load the core pipeline runs
//     exactly once per unique fingerprint (provable coalescing),
//   - admission control answers 429 + Retry-After deterministically at
//     capacity and 503 while draining,
//   - a dropped connection cancels its job once the last waiter is gone,
//   - drain under an expired deadline degrades in-flight jobs to partial
//     results, and no goroutine outlives the drain.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	hlts "repro"
	"repro/internal/core"
	"repro/internal/stats"
)

// directSynthesize computes the expected /v1/synthesize payload through
// the library facade, bypassing the serving layer entirely.
func directSynthesize(t testing.TB, req SynthesizeRequest) []byte {
	t.Helper()
	n, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hlts.RunMethod(n.Method, n.Graph, n.Params)
	if err != nil {
		t.Fatal(err)
	}
	body, err := marshal(BuildSynthesizeResponse(n, res))
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// directTestDesign mirrors the /v1/testdesign job body through the
// facade.
func directTestDesign(t testing.TB, req TestDesignRequest) []byte {
	t.Helper()
	n, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hlts.RunMethod(n.Method, n.Graph, n.Params)
	if err != nil {
		t.Fatal(err)
	}
	var scanRegs []int
	if n.Scan > 0 {
		scanRegs, _ = hlts.SelectScanRegisters(res, n.Scan)
	}
	nl, err := hlts.GenerateNetlistWithScan(res, n.Params.Width, n.TestMode, scanRegs)
	if err != nil {
		t.Fatal(err)
	}
	acfg := hlts.DefaultATPGConfig(n.Seed)
	acfg.SampleFaults = n.Faults
	ares, err := hlts.TestDesign(nl, acfg)
	if err != nil {
		t.Fatal(err)
	}
	body, err := marshal(BuildTestDesignResponse(n, res, nl, scanRegs, ares, nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// directTable mirrors the /v1/table job body through the facade.
func directTable(t testing.TB, bench, widths, seed, faults string) []byte {
	t.Helper()
	n, err := NormalizeTable(bench, widths, seed, faults)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hlts.DefaultExperimentConfig(n.Seed)
	cfg.Widths = n.Widths
	cfg.Parallel = 1
	baseATPG := cfg.ATPGFor
	cfg.ATPGFor = func(width int) hlts.ATPGConfig {
		c := baseATPG(width)
		if n.Faults > 0 && n.Faults < c.SampleFaults {
			c.SampleFaults = n.Faults
		}
		return c
	}
	tbl, err := hlts.ReproduceTable(n.Bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	body, err := marshal(BuildTableResponse(n, tbl))
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(t testing.TB, client *http.Client, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header, payload
}

func get(t testing.TB, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, payload
}

// settle asserts the goroutine count returns to the baseline after a
// drain — the no-leak half of the shutdown contract.
func settle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked (%d > baseline %d)\n%s", runtime.NumGoroutine(), base, buf[:n])
}

func drainAndSettle(t *testing.T, s *Server, base int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	settle(t, base)
}

// TestLoadMixedByteIdentical is the acceptance load test: 200 concurrent
// requests spread over six unique fingerprints across all three job
// endpoints. Every response must be byte-identical to the corresponding
// direct library computation, the core pipeline must have run exactly
// once per unique fingerprint (the coalescing + cache proof), and the
// drain afterwards must leak nothing.
func TestLoadMixedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("load test is too slow for -short")
	}
	type reqSpec struct {
		method, path, body string
		want               []byte
	}
	specs := []reqSpec{
		{"POST", "/v1/synthesize", `{"bench":"ex","width":4}`,
			directSynthesize(t, SynthesizeRequest{Bench: "ex", Width: 4})},
		{"POST", "/v1/synthesize", `{"bench":"ex","width":8,"method":"camad"}`,
			directSynthesize(t, SynthesizeRequest{Bench: "ex", Width: 8, Method: hlts.MethodCAMAD})},
		{"POST", "/v1/synthesize", `{"bench":"tseng","width":4}`,
			directSynthesize(t, SynthesizeRequest{Bench: "tseng", Width: 4})},
		{"POST", "/v1/synthesize", `{"bench":"diffeq","width":4}`,
			directSynthesize(t, SynthesizeRequest{Bench: "diffeq", Width: 4})},
		{"POST", "/v1/testdesign", `{"bench":"ex","width":4,"faults":120}`,
			directTestDesign(t, TestDesignRequest{SynthesizeRequest: SynthesizeRequest{Bench: "ex", Width: 4}, Faults: 120})},
		{"GET", "/v1/table/ex?widths=4&faults=60", "",
			directTable(t, "ex", "4", "", "60")},
	}

	base := runtime.NumGoroutine()
	st := stats.New()
	s := New(Config{QueueDepth: 256, Jobs: 4, CacheSize: 16, Stats: st})
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	const total = 200
	var wg sync.WaitGroup
	errCh := make(chan error, total)
	for i := 0; i < total; i++ {
		spec := specs[i%len(specs)]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var status int
			var got []byte
			if spec.method == "POST" {
				status, _, got = post(t, client, ts.URL+spec.path, spec.body)
			} else {
				status, got = get(t, client, ts.URL+spec.path)
			}
			if status != http.StatusOK {
				errCh <- fmt.Errorf("request %d (%s): status %d: %s", i, spec.path, status, got)
				return
			}
			if !bytes.Equal(got, spec.want) {
				errCh <- fmt.Errorf("request %d (%s): payload differs from direct computation:\n got %s\nwant %s", i, spec.path, got, spec.want)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Provable coalescing: the pipeline ran exactly once per unique
	// fingerprint, and every other request was served by attaching to an
	// in-flight job or from the cache.
	if runs := st.Value("server.jobs.run"); runs != int64(len(specs)) {
		t.Errorf("core pipeline ran %d times for %d unique fingerprints", runs, len(specs))
	}
	shared := st.Value("server.coalesce.hit") + st.Value("server.cache.hit")
	if shared != total-int64(len(specs)) {
		t.Errorf("coalesce+cache served %d requests, want %d", shared, total-len(specs))
	}
	if dropped := st.Value("server.requests.dropped"); dropped != 0 {
		t.Errorf("%d requests dropped", dropped)
	}

	ts.Close()
	client.CloseIdleConnections()
	drainAndSettle(t, s, base)
}

// TestCachedRequestServed: a repeated identical request is answered from
// the result cache, byte-identically, with the cache marker header.
func TestCachedRequestServed(t *testing.T) {
	base := runtime.NumGoroutine()
	st := stats.New()
	s := New(Config{QueueDepth: 8, Jobs: 1, CacheSize: 8, Stats: st})
	ts := httptest.NewServer(s.Handler())
	body := `{"bench":"ex","width":4}`
	_, h1, first := post(t, ts.Client(), ts.URL+"/v1/synthesize", body)
	if h1.Get("X-Hlts-Result") != "" {
		t.Errorf("first response marked %q", h1.Get("X-Hlts-Result"))
	}
	_, h2, second := post(t, ts.Client(), ts.URL+"/v1/synthesize", body)
	if h2.Get("X-Hlts-Result") != "cached" {
		t.Errorf("second response not served from cache (header %q)", h2.Get("X-Hlts-Result"))
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached response differs:\n%s\n%s", first, second)
	}
	if hits := st.Value("server.cache.hit"); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	ts.Close()
	drainAndSettle(t, s, base)
}

// blockingJob is a controllable job body for queue-level tests.
func blockingJob(started, release chan struct{}) func(ctx context.Context) (int, []byte, bool) {
	return func(ctx context.Context) (int, []byte, bool) {
		if started != nil {
			close(started)
		}
		if release != nil {
			<-release
		}
		return http.StatusOK, []byte("{}\n"), false
	}
}

func fpOf(parts ...string) core.Fingerprint {
	h := core.NewHasher()
	for _, p := range parts {
		h.Str(p)
	}
	return h.Sum()
}

// TestAdmissionControl exercises the deterministic 429 path: one worker
// occupied, the one queue slot filled, and the next distinct request is
// rejected immediately with Retry-After — while an identical request
// still coalesces without consuming capacity.
func TestAdmissionControl(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{QueueDepth: 1, Jobs: 1, Workers: 1, CacheSize: -1})

	started := make(chan struct{})
	release := make(chan struct{})
	// Occupy the single worker.
	recA := httptest.NewRecorder()
	reqA := httptest.NewRequest("POST", "/v1/synthesize", nil)
	doneA := make(chan struct{})
	go func() {
		defer close(doneA)
		s.serveJob(recA, reqA, "synthesize", fpOf("A"), 0, blockingJob(started, release))
	}()
	<-started
	// Fill the single queue slot directly (submit returns once enqueued).
	jB, _, err := s.q.submit(fpOf("B"), "synthesize", time.Minute, blockingJob(nil, nil))
	if err != nil {
		t.Fatalf("enqueue B: %v", err)
	}
	// A distinct third request must bounce with 429 + Retry-After.
	recC := httptest.NewRecorder()
	s.serveJob(recC, httptest.NewRequest("POST", "/v1/synthesize", nil), "synthesize", fpOf("C"), 0, blockingJob(nil, nil))
	if recC.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", recC.Code)
	}
	if recC.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(recC.Body.String(), "queue full") {
		t.Errorf("429 body %q", recC.Body.String())
	}
	// An identical in-flight request coalesces instead of being rejected.
	jA2, cached, err := s.q.submit(fpOf("A"), "synthesize", time.Minute, blockingJob(nil, nil))
	if err != nil || cached != nil {
		t.Fatalf("coalesce onto running job: j=%v cached=%v err=%v", jA2, cached, err)
	}
	if s.st.Value("server.coalesce.hit") != 1 {
		t.Errorf("coalesce.hit = %d", s.st.Value("server.coalesce.hit"))
	}
	if s.st.Value("server.queue.rejected") != 1 {
		t.Errorf("queue.rejected = %d", s.st.Value("server.queue.rejected"))
	}
	close(release)
	<-doneA
	<-jA2.done
	<-jB.done
	if recA.Code != http.StatusOK {
		t.Errorf("blocked request finished with %d", recA.Code)
	}
	drainAndSettle(t, s, base)
}

// TestDroppedConnectionCancelsJob: when the last waiter detaches, the
// job's context is cancelled and the computation stops.
func TestDroppedConnectionCancelsJob(t *testing.T) {
	base := runtime.NumGoroutine()
	st := stats.New()
	q := newQueue(4, 1, -1, st, nil, nil)
	j, _, err := q.submit(fpOf("orphan"), "synthesize", time.Minute, func(ctx context.Context) (int, []byte, bool) {
		<-ctx.Done() // runs until cancelled — the detach must stop it
		return http.StatusOK, []byte("{}\n"), false
	})
	if err != nil {
		t.Fatal(err)
	}
	q.detach(j)
	select {
	case <-j.done:
	case <-time.After(10 * time.Second):
		t.Fatal("orphaned job never finished: detach did not cancel its context")
	}
	if st.Value("server.jobs.orphaned") != 1 {
		t.Errorf("jobs.orphaned = %d", st.Value("server.jobs.orphaned"))
	}
	if err := q.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	settle(t, base)
}

// TestDrainDegradesToPartial: a drain whose deadline expires cancels the
// in-flight job contexts (jobs land their best-so-far results) and still
// waits for the workers — and a draining queue rejects new work.
func TestDrainDegradesToPartial(t *testing.T) {
	base := runtime.NumGoroutine()
	st := stats.New()
	q := newQueue(4, 1, -1, st, nil, nil)
	started := make(chan struct{})
	j, _, err := q.submit(fpOf("slow"), "table", time.Minute, func(ctx context.Context) (int, []byte, bool) {
		close(started)
		<-ctx.Done() // a long computation that yields at its budget boundary
		return http.StatusOK, []byte(`{"partial":true}` + "\n"), false
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want deadline exceeded", err)
	}
	<-j.done
	if j.res.status != http.StatusOK || !strings.Contains(string(j.res.body), "partial") {
		t.Errorf("degraded job result: %d %s", j.res.status, j.res.body)
	}
	if _, _, err := q.submit(fpOf("late"), "table", time.Minute, blockingJob(nil, nil)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining = %v, want ErrDraining", err)
	}
	if err := q.drain(context.Background()); err != nil {
		t.Errorf("second drain = %v", err)
	}
	settle(t, base)
}

// TestJobDeadlineProducesPartialPayload: a tight per-request deadline
// surfaces as a 200 StatusPartial payload, which must never enter the
// cache.
func TestJobDeadlineProducesPartialPayload(t *testing.T) {
	base := runtime.NumGoroutine()
	st := stats.New()
	s := New(Config{QueueDepth: 8, Jobs: 1, CacheSize: 8, Stats: st})
	ts := httptest.NewServer(s.Handler())
	// deadline_ms 1 cuts the merger loop at its first boundary check.
	status, _, body := post(t, ts.Client(), ts.URL+"/v1/synthesize", `{"bench":"dct","width":16,"deadline_ms":1}`)
	if status != http.StatusOK {
		t.Fatalf("partial run: status %d: %s", status, body)
	}
	if !strings.Contains(string(body), `"status":"partial"`) {
		t.Fatalf("tight deadline did not produce a partial payload: %s", body)
	}
	// Partial results are timing-dependent; a rerun must not see a cache
	// marker.
	_, h, _ := post(t, ts.Client(), ts.URL+"/v1/synthesize", `{"bench":"dct","width":16,"deadline_ms":1}`)
	if h.Get("X-Hlts-Result") == "cached" {
		t.Error("partial result was served from the cache")
	}
	ts.Close()
	drainAndSettle(t, s, base)
}

// TestClientErrors: malformed and invalid requests are typed 4xx client
// errors with JSON bodies, and never reach the queue.
func TestClientErrors(t *testing.T) {
	base := runtime.NumGoroutine()
	st := stats.New()
	s := New(Config{QueueDepth: 8, Jobs: 1, Stats: st})
	ts := httptest.NewServer(s.Handler())
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"unknown field", "POST", "/v1/synthesize", `{"bench":"ex","width":4,"bogus":1}`, 400},
		{"bad width", "POST", "/v1/synthesize", `{"bench":"ex","width":0}`, 400},
		{"width too wide", "POST", "/v1/synthesize", `{"bench":"ex","width":65}`, 400},
		{"unknown bench", "POST", "/v1/synthesize", `{"bench":"nope","width":4}`, 400},
		{"unknown method", "POST", "/v1/synthesize", `{"bench":"ex","width":4,"method":"magic"}`, 400},
		{"both sources", "POST", "/v1/synthesize", `{"bench":"ex","vhdl":"x","width":4}`, 400},
		{"no source", "POST", "/v1/synthesize", `{"width":4}`, 400},
		{"bad vhdl", "POST", "/v1/synthesize", `{"vhdl":"entity garbage","width":4}`, 400},
		{"bad scan", "POST", "/v1/testdesign", `{"bench":"ex","width":4,"scan":-1}`, 400},
		{"empty bist", "POST", "/v1/testdesign", `{"bench":"ex","width":4,"bist":{"tpg":0,"misr":0}}`, 400},
		{"bad bist lanes", "POST", "/v1/testdesign", `{"bench":"ex","width":4,"bist":{"tpg":1,"misr":1,"lanes":65}}`, 400},
		{"negative bist lanes", "POST", "/v1/testdesign", `{"bench":"ex","width":4,"bist":{"tpg":1,"misr":1,"lanes":-1}}`, 400},
		{"table unknown bench", "GET", "/v1/table/nope", "", 404},
		{"table bad width", "GET", "/v1/table/ex?widths=0", "", 400},
		{"table bad seed", "GET", "/v1/table/ex?seed=x", "", 400},
		{"table bad deadline", "GET", "/v1/table/ex?deadline_ms=-5", "", 400},
	}
	for _, tc := range cases {
		var status int
		var body []byte
		if tc.method == "POST" {
			status, _, body = post(t, ts.Client(), ts.URL+tc.path, tc.body)
		} else {
			status, body = get(t, ts.Client(), ts.URL+tc.path)
		}
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, body)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("%s: body %q has no error field", tc.name, body)
		}
	}
	if runs := st.Value("server.jobs.run"); runs != 0 {
		t.Errorf("client errors reached the queue: %d jobs ran", runs)
	}
	ts.Close()
	drainAndSettle(t, s, base)
}

// TestHealthAndMetrics: the observability endpoints report queue state
// and the Prometheus exposition, and healthz flips to 503 on drain.
func TestHealthAndMetrics(t *testing.T) {
	s := New(Config{QueueDepth: 8, Jobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if status, body := get(t, ts.Client(), ts.URL+"/healthz"); status != 200 || !strings.Contains(string(body), `"status":"ok"`) {
		t.Errorf("healthz: %d %s", status, body)
	}
	if status, body := get(t, ts.Client(), ts.URL+"/livez"); status != 200 || !strings.Contains(string(body), "ok") {
		t.Errorf("livez: %d %s", status, body)
	}
	post(t, ts.Client(), ts.URL+"/v1/synthesize", `{"bench":"ex","width":4}`)
	status, body := get(t, ts.Client(), ts.URL+"/metrics")
	if status != 200 {
		t.Fatalf("metrics: %d", status)
	}
	for _, want := range []string{
		"hlts_server_queue_queued", "hlts_server_queue_capacity", "hlts_server_inflight_jobs",
		"hlts_server_jobs_run 1", "hlts_server_http_synthesize_latency_seconds_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if status, body := get(t, ts.Client(), ts.URL+"/healthz"); status != 503 || !strings.Contains(string(body), "draining") {
		t.Errorf("healthz while draining: %d %s", status, body)
	}
	status, h, body := post(t, ts.Client(), ts.URL+"/v1/synthesize", `{"bench":"ex","width":4}`)
	if status != 503 {
		t.Errorf("submit while draining: %d %s", status, body)
	}
	// A drain-window 503 is as retryable as a full-queue 429 and must
	// carry the same backoff hint.
	if h.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
}

// TestPanickingJobAnswers500: a panic inside a job body is isolated by
// the worker's guard and answered as a typed 500 — the daemon survives.
func TestPanickingJobAnswers500(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{QueueDepth: 4, Jobs: 1, CacheSize: -1})
	rec := httptest.NewRecorder()
	s.serveJob(rec, httptest.NewRequest("POST", "/v1/synthesize", nil), "synthesize", fpOf("boom"), 0,
		func(ctx context.Context) (int, []byte, bool) { panic("job exploded") })
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking job: status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "job exploded") {
		t.Errorf("500 body %q does not name the panic", rec.Body.String())
	}
	if s.st.Value("server.jobs.panicked") != 1 {
		t.Errorf("jobs.panicked = %d", s.st.Value("server.jobs.panicked"))
	}
	// The worker survived: the next job still runs.
	rec2 := httptest.NewRecorder()
	s.serveJob(rec2, httptest.NewRequest("POST", "/v1/synthesize", nil), "synthesize", fpOf("after"), 0, blockingJob(nil, nil))
	if rec2.Code != http.StatusOK {
		t.Errorf("job after panic: status %d", rec2.Code)
	}
	drainAndSettle(t, s, base)
}

// BenchmarkServer measures serving throughput and tail latency per
// benchmark circuit; CI publishes the numbers as BENCH_server.json. The
// first iteration pays the synthesis, the rest measure the serving layer
// (cache + HTTP), which is the quantity a deployment cares about.
func BenchmarkServer(b *testing.B) {
	for _, bench := range []string{hlts.BenchEx, hlts.BenchDct, hlts.BenchDiffeq} {
		b.Run(bench, func(b *testing.B) {
			st := stats.New()
			s := New(Config{QueueDepth: 256, Jobs: 4, CacheSize: 32, Stats: st})
			ts := httptest.NewServer(s.Handler())
			client := ts.Client()
			body := fmt.Sprintf(`{"bench":%q,"width":8}`, bench)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					status, _, payload := post(b, client, ts.URL+"/v1/synthesize", body)
					if status != http.StatusOK {
						b.Fatalf("status %d: %s", status, payload)
					}
				}
			})
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "req/s")
			}
			b.ReportMetric(st.Quantile("server.http.synthesize.latency", 0.50)*1e3, "p50_ms")
			b.ReportMetric(st.Quantile("server.http.synthesize.latency", 0.99)*1e3, "p99_ms")
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			s.Drain(ctx)
			cancel()
		})
	}
}
