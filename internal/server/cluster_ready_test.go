// Tests for the serving-layer pieces the cluster rides on: the jittered
// Retry-After hint, the request-body cap, and the utilization snapshot
// workers carry in their heartbeats.
package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestRetryAfterJitterRange: the emitted hint is seeded-deterministic,
// always within [RetryAfter, 1.5*RetryAfter] whole seconds, and actually
// spreads — a burst of rejected clients must not come back in lockstep.
func TestRetryAfterJitterRange(t *testing.T) {
	goroutines := runtime.NumGoroutine()
	hint := 4 * time.Second
	s := New(Config{RetryAfter: hint, RetryJitterSeed: 7})
	s2 := New(Config{RetryAfter: hint, RetryJitterSeed: 7})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		drainAndSettle(t, s2, goroutines)
	}()

	distinct := map[int]bool{}
	for i := 0; i < 64; i++ {
		secs := s.retryAfterSeconds()
		if secs < 4 || secs > 6 {
			t.Fatalf("draw %d: Retry-After %ds outside [4s, 6s]", i, secs)
		}
		distinct[secs] = true
		// Same seed, same draw index: the hint sequence is reproducible.
		if other := s2.retryAfterSeconds(); other != secs {
			t.Fatalf("draw %d: seeded jitter diverged (%d vs %d)", i, secs, other)
		}
	}
	if len(distinct) < 2 {
		t.Errorf("64 draws produced %d distinct hints; jitter is not spreading", len(distinct))
	}
}

// TestRetryAfterJitterOnWire: the jittered hint is what a rejected
// client actually receives while the server drains.
func TestRetryAfterJitterOnWire(t *testing.T) {
	goroutines := runtime.NumGoroutine()
	s := New(Config{RetryAfter: 4 * time.Second, RetryJitterSeed: 3})
	drainAndSettle(t, s, goroutines) // draining: every request now bounces 503

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/synthesize", strings.NewReader(`{"bench":"ex","width":4}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	if ra != "4" && ra != "5" && ra != "6" {
		t.Errorf("Retry-After %q outside the jitter window [4, 6]", ra)
	}
}

// TestMaxBodyBytes: an over-cap request body is cut off at the reader
// and answered a typed 413; an in-cap body is unaffected.
func TestMaxBodyBytes(t *testing.T) {
	goroutines := runtime.NumGoroutine()
	s := New(Config{MaxBodyBytes: 128})
	defer func() { drainAndSettle(t, s, goroutines) }()

	rec := httptest.NewRecorder()
	huge := `{"vhdl":"` + strings.Repeat("x", 4096) + `"}`
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/synthesize", strings.NewReader(huge)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (%s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Errorf("413 body not typed: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/synthesize", strings.NewReader(`{"bench":"ex","width":4}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("in-cap body: status %d, want 200 (%s)", rec.Code, rec.Body.String())
	}
}

// TestSnapshot: the heartbeat utilization view reflects configured
// capacity and work done.
func TestSnapshot(t *testing.T) {
	goroutines := runtime.NumGoroutine()
	s := New(Config{QueueDepth: 7, Jobs: 3})
	defer func() { drainAndSettle(t, s, goroutines) }()

	snap := s.Snapshot()
	if snap.QueueDepth != 7 || snap.Jobs != 3 {
		t.Errorf("snapshot capacity = (%d, %d), want (7, 3)", snap.QueueDepth, snap.Jobs)
	}
	if snap.Queued != 0 || snap.Inflight != 0 || snap.JobsRun != 0 {
		t.Errorf("idle snapshot not zero: %+v", snap)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/synthesize", strings.NewReader(`{"bench":"ex","width":4}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("job failed: %d", rec.Code)
	}
	if snap = s.Snapshot(); snap.JobsRun != 1 {
		t.Errorf("JobsRun = %d after one job, want 1", snap.JobsRun)
	}
}
