// Tests of the worker-side replication surface: the /store/v1/ wire
// endpoints (digest, pull, record, push), the first-writer-wins apply
// rule, the read-repair path through the job queue, and the
// degradation contracts — a daemon without a store answers typed 404s,
// a disk-full store under a live daemon costs counters and recomputes
// but never a failed request, and the corruption counters surface in
// /metrics.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/store"
)

func getJSON(t *testing.T, client *http.Client, url string, v any) int {
	t.Helper()
	status, body := get(t, client, url)
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
	}
	return status
}

// TestStoreWireEndpoints drives the four /store/v1/ endpoints end to
// end over HTTP: digest reflects the live set, pull streams every
// record CRC-intact across batches, record serves single fingerprints,
// and push applies under first-writer-wins with 409 on byte-inequality.
func TestStoreWireEndpoints(t *testing.T) {
	base := runtime.NumGoroutine()
	st := stats.New()
	s, ts, down := bootServer(t, t.TempDir(), Config{QueueDepth: 8, Jobs: 1, CacheSize: 8, Stats: st})
	defer settle(t, base)
	defer down()

	want := map[core.Fingerprint][]byte{}
	for i := 0; i < 5; i++ {
		fp := fpOf("wire", fmt.Sprint(i))
		val := []byte(fmt.Sprintf("record-body-%d", i))
		if err := s.ApplyRecord(fp, val); err != nil {
			t.Fatal(err)
		}
		want[fp] = val
	}

	var dig DigestResponse
	if status := getJSON(t, ts.Client(), ts.URL+"/store/v1/digest", &dig); status != http.StatusOK {
		t.Fatalf("digest: status %d", status)
	}
	if dig.Records != len(want) || dig.Gen == 0 {
		t.Fatalf("digest = %+v, want %d records and a nonzero gen", dig, len(want))
	}

	// Walk the pull stream in batches of 2, decoding (and thereby
	// CRC-checking) every record.
	got := map[core.Fingerprint][]byte{}
	cur := WireCursor{Gen: dig.Gen}
	for rounds := 0; ; rounds++ {
		var pr PullResponse
		u := fmt.Sprintf("%s/store/v1/pull?gen=%d&seg=%d&off=%d&max=2", ts.URL, cur.Gen, cur.Seg, cur.Off)
		if status := getJSON(t, ts.Client(), u, &pr); status != http.StatusOK {
			t.Fatalf("pull: status %d", status)
		}
		for _, wr := range pr.Records {
			fp, val, err := DecodeWireRecord(wr)
			if err != nil {
				t.Fatalf("pulled record failed CRC: %v", err)
			}
			got[fp] = append([]byte(nil), val...)
		}
		cur = pr.Next
		if !pr.More {
			break
		}
		if rounds > 100 {
			t.Fatal("pull never drained")
		}
	}
	if len(got) != len(want) {
		t.Fatalf("pulled %d records, want %d", len(got), len(want))
	}
	for fp, val := range want {
		if !bytes.Equal(got[fp], val) {
			t.Fatalf("pulled %s = %q, want %q", fp, got[fp], val)
		}
	}

	// Single-record fetch: hit, miss, malformed.
	one := fpOf("wire", "0")
	var wr WireRecord
	if status := getJSON(t, ts.Client(), ts.URL+"/store/v1/record?fp="+one.String(), &wr); status != http.StatusOK {
		t.Fatalf("record: status %d", status)
	}
	if fp, val, err := DecodeWireRecord(wr); err != nil || fp != one || !bytes.Equal(val, want[one]) {
		t.Fatalf("record fetch mismatch: %v %s %q", err, fp, val)
	}
	if status, _ := get(t, ts.Client(), ts.URL+"/store/v1/record?fp="+fpOf("absent").String()); status != http.StatusNotFound {
		t.Fatalf("absent record: status %d, want 404", status)
	}
	if status, _ := get(t, ts.Client(), ts.URL+"/store/v1/record?fp=zz"); status != http.StatusBadRequest {
		t.Fatalf("malformed fingerprint: status %d, want 400", status)
	}

	// Push: a new record lands durably; re-pushing identical bytes is an
	// idempotent 200; differing bytes are refused with 409 and the local
	// record is kept (first-writer-wins); a broken CRC is a 400.
	pushed := fpOf("wire", "pushed")
	push := func(rec WireRecord) int {
		t.Helper()
		b, _ := json.Marshal(rec)
		status, _, _ := post(t, ts.Client(), ts.URL+"/store/v1/push", string(b))
		return status
	}
	if status := push(EncodeWireRecord(pushed, []byte("delivered"))); status != http.StatusOK {
		t.Fatalf("push new: status %d", status)
	}
	if v, ok := s.cfg.Store.Get(pushed); !ok || string(v) != "delivered" {
		t.Fatalf("pushed record not stored: %q %v", v, ok)
	}
	if status := push(EncodeWireRecord(pushed, []byte("delivered"))); status != http.StatusOK {
		t.Fatalf("push identical: status %d", status)
	}
	if status := push(EncodeWireRecord(pushed, []byte("DIFFERENT"))); status != http.StatusConflict {
		t.Fatalf("push conflicting: status %d, want 409", status)
	}
	if v, _ := s.cfg.Store.Get(pushed); string(v) != "delivered" {
		t.Fatalf("conflict overwrote the first write: %q", v)
	}
	if st.Value("server.replicate.conflict") != 1 {
		t.Errorf("replicate.conflict = %d, want 1", st.Value("server.replicate.conflict"))
	}
	bad := EncodeWireRecord(fpOf("wire", "bad"), []byte("x"))
	bad.CRC ^= 1
	if status := push(bad); status != http.StatusBadRequest {
		t.Fatalf("push with broken CRC: status %d, want 400", status)
	}
	if st.Value("server.replicate.crc") != 1 {
		t.Errorf("replicate.crc = %d, want 1", st.Value("server.replicate.crc"))
	}
}

// TestStoreEndpointsWithoutStore: a daemon running in-memory-only
// answers every /store/v1/ call with a typed 404 — replication is an
// opt-in property of -store mode, not an error state.
func TestStoreEndpointsWithoutStore(t *testing.T) {
	s := New(Config{QueueDepth: 4, Jobs: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	for _, u := range []string{"/store/v1/digest", "/store/v1/pull", "/store/v1/record?fp=" + fpOf("x").String()} {
		status, body := get(t, ts.Client(), ts.URL+u)
		var eb errorBody
		if status != http.StatusNotFound || json.Unmarshal(body, &eb) != nil || eb.Error == "" {
			t.Errorf("GET %s without store: status %d body %s, want typed 404", u, status, body)
		}
	}
	b, _ := json.Marshal(EncodeWireRecord(fpOf("x"), []byte("v")))
	if status, _, body := post(t, ts.Client(), ts.URL+"/store/v1/push", string(b)); status != http.StatusNotFound {
		t.Errorf("push without store: status %d body %s, want 404", status, body)
	}
}

// TestWireRecordCRCCatchesSwap: the transport CRC covers the
// fingerprint as well as the value, so a record reframed under the
// wrong key fails decode instead of being stored under the wrong name.
func TestWireRecordCRCCatchesSwap(t *testing.T) {
	rec := EncodeWireRecord(fpOf("right"), []byte("payload"))
	rec.FP = fpOf("wrong").String()
	if _, _, err := DecodeWireRecord(rec); err == nil {
		t.Fatal("key-swapped record passed the transport CRC")
	}
	rec = EncodeWireRecord(fpOf("right"), []byte("payload"))
	rec.Val = []byte("tampered")
	if _, _, err := DecodeWireRecord(rec); err == nil {
		t.Fatal("tampered value passed the transport CRC")
	}
}

// TestReadRepairServesPeerBytes: a request missing the LRU and the
// durable store but answerable by a peer is served from the peer's
// bytes — byte-identical, written through locally, zero pipeline runs.
func TestReadRepairServesPeerBytes(t *testing.T) {
	base := runtime.NumGoroutine()
	st := stats.New()
	stor, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stor.Close()
	peerBytes := encodeResult(result{status: http.StatusOK, body: []byte(`{"from":"peer"}`)})
	fetch := func(ctx context.Context, fp core.Fingerprint) ([]byte, bool) {
		if fp == fpOf("held-by-peer") {
			return peerBytes, true
		}
		return nil, false
	}
	q := newQueue(4, 1, 4, st, stor, fetch)
	j, cached, err := q.submit(fpOf("held-by-peer"), "synthesize", time.Minute, func(ctx context.Context) (int, []byte, bool) {
		t.Error("pipeline ran despite a peer holding the record")
		return http.StatusOK, []byte("recomputed"), true
	})
	if err != nil || cached != nil {
		t.Fatalf("submit: cached=%v err=%v", cached, err)
	}
	<-j.done
	if j.res.status != http.StatusOK || string(j.res.body) != `{"from":"peer"}` {
		t.Fatalf("read-repair answer: %d %s", j.res.status, j.res.body)
	}
	if st.Value("server.jobs.run") != 0 {
		t.Errorf("jobs.run = %d, want 0 (read-repair is not a pipeline run)", st.Value("server.jobs.run"))
	}
	if st.Value("server.replicate.readrepair") != 1 {
		t.Errorf("readrepair counter = %d, want 1", st.Value("server.replicate.readrepair"))
	}
	// The repair half: the peer's bytes are now durable locally.
	if v, ok := stor.Get(fpOf("held-by-peer")); !ok || !bytes.Equal(v, peerBytes) {
		t.Errorf("read-repaired record not written through: %v", ok)
	}
	// A fetch hook returning garbage degrades to the recompute.
	ran := false
	q.fetch = func(ctx context.Context, fp core.Fingerprint) ([]byte, bool) { return []byte{1}, true }
	j, _, err = q.submit(fpOf("garbage-peer"), "synthesize", time.Minute, func(ctx context.Context) (int, []byte, bool) {
		ran = true
		return http.StatusOK, []byte("computed"), true
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.done
	if !ran || string(j.res.body) != "computed" {
		t.Fatalf("garbage peer bytes did not degrade to recompute: %s", j.res.body)
	}
	if st.Value("server.replicate.error") == 0 {
		t.Error("undecodable peer bytes not counted")
	}
	if err := q.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	settle(t, base)
}

// TestStoreWriteFaultUnderLiveDaemon is the disk-full drill: every
// store append fails (the chaos store.write site erroring with
// probability 1 is an ENOSPC stand-in) under a LIVE daemon serving real
// requests. The contract: every request still answers 200, no 5xx ever
// escapes, and the faults surface as server.store.error counters.
func TestStoreWriteFaultUnderLiveDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("live-daemon fault drill synthesizes real designs; too slow for -short")
	}
	base := runtime.NumGoroutine()
	in := chaos.New(7).On(chaos.SiteStoreWrite, chaos.Rule{Action: chaos.ActError, Prob: 1})
	restore := chaos.Install(in)
	defer restore()

	st := stats.New()
	_, ts, down := bootServer(t, t.TempDir(), Config{QueueDepth: 8, Jobs: 2, CacheSize: 0, Stats: st})
	defer settle(t, base)
	defer down()

	// CacheSize 0 forces every repeat onto the store path, which is down.
	for pass := 0; pass < 2; pass++ {
		for _, body := range []string{`{"bench":"ex","width":4}`, `{"bench":"ex","width":8}`} {
			status, _, got := post(t, ts.Client(), ts.URL+"/v1/synthesize", body)
			if status != http.StatusOK {
				t.Fatalf("pass %d %s: status %d (a full disk must never fail a request): %s", pass, body, status, got)
			}
		}
	}
	if in.Fired(chaos.SiteStoreWrite) == 0 {
		t.Fatal("store.write site never fired — the drill tested nothing")
	}
	if st.Value("server.store.error") == 0 {
		t.Error("store write faults not counted in server.store.error")
	}
	if st.Value("server.jobs.panicked") != 0 {
		t.Errorf("store faults leaked into job panics: %d", st.Value("server.jobs.panicked"))
	}
}

// TestMetricsSurfaceCorruptionCounters: a store directory carrying both
// a bit-rotted record and a torn tail boots into a daemon whose
// /metrics exposition reports store.corrupt.dropped and
// store.torn.resealed — the satellite observability contract.
func TestMetricsSurfaceCorruptionCounters(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	stor, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	marker := []byte("metrics-rot-metrics-rot")
	if err := stor.Put(fpOf("m", "keep"), []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := stor.Put(fpOf("m", "rot"), marker); err != nil {
		t.Fatal(err)
	}
	stor.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, marker)
	if i < 0 {
		t.Fatal("marker not found")
	}
	data[i] ^= 0xff                                    // bit rot: dropped at replay
	data = append(data, []byte("torn-partial-tail")...) // torn tail: resealed at open
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st := stats.New()
	_, ts, down := bootServer(t, dir, Config{QueueDepth: 4, Jobs: 1, CacheSize: 4, Stats: st})
	defer settle(t, base)
	defer down()
	status, body := get(t, ts.Client(), ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	for _, want := range []string{
		"hlts_server_store_corrupt_dropped 1",
		"hlts_server_store_torn_resealed 1",
		"hlts_server_store_records 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
