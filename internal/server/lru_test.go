package server

import (
	"fmt"
	"net/http"
	"testing"
)

func res(body string) result { return result{status: http.StatusOK, body: []byte(body)} }

// TestLRUDisabledCapacities: zero and negative capacities are the
// "cache off" configurations — add must be a no-op, never a panic or an
// unbounded map.
func TestLRUDisabledCapacities(t *testing.T) {
	for _, capacity := range []int{0, -1, -128} {
		c := newLRUCache(capacity)
		for i := 0; i < 10; i++ {
			c.add(fpOf("k", fmt.Sprint(i)), res("v"))
		}
		if c.l.Len() != 0 || len(c.m) != 0 {
			t.Errorf("cap %d: cache holds %d/%d entries, want 0", capacity, c.l.Len(), len(c.m))
		}
		if _, ok := c.get(fpOf("k", "0")); ok {
			t.Errorf("cap %d: disabled cache returned a hit", capacity)
		}
	}
}

// TestLRUUpdateExistingKey: re-adding a present key replaces its value
// in place — no duplicate entry, no spurious eviction — and refreshes
// its recency.
func TestLRUUpdateExistingKey(t *testing.T) {
	c := newLRUCache(2)
	c.add(fpOf("a"), res("a1"))
	c.add(fpOf("b"), res("b1"))
	c.add(fpOf("a"), res("a2")) // update, not insert: b must survive
	if c.l.Len() != 2 {
		t.Fatalf("update created a duplicate: %d entries", c.l.Len())
	}
	if r, ok := c.get(fpOf("a")); !ok || string(r.body) != "a2" {
		t.Fatalf("updated value not returned: %q %v", r.body, ok)
	}
	if _, ok := c.get(fpOf("b")); !ok {
		t.Fatal("update of a evicted b")
	}
	// The update made a most-recent: adding c now evicts b, not a.
	c.add(fpOf("a"), res("a3"))
	c.add(fpOf("c"), res("c1"))
	if _, ok := c.get(fpOf("a")); !ok {
		t.Error("most-recently-updated key was evicted")
	}
	if _, ok := c.get(fpOf("b")); ok {
		t.Error("least-recently-used key survived eviction")
	}
}

// TestLRUEvictionOrderInterleaved: a get refreshes recency, so the
// eviction victim is the least recently *touched* key, not the least
// recently added.
func TestLRUEvictionOrderInterleaved(t *testing.T) {
	c := newLRUCache(3)
	c.add(fpOf("a"), res("a"))
	c.add(fpOf("b"), res("b"))
	c.add(fpOf("c"), res("c"))
	// Touch a (the oldest insert): b becomes the LRU.
	if _, ok := c.get(fpOf("a")); !ok {
		t.Fatal("a missing before eviction")
	}
	c.add(fpOf("d"), res("d")) // evicts b
	for _, want := range []struct {
		key   string
		alive bool
	}{{"a", true}, {"b", false}, {"c", true}, {"d", true}} {
		if _, ok := c.get(fpOf(want.key)); ok != want.alive {
			t.Errorf("after interleaved get/add: %s alive=%v, want %v", want.key, ok, want.alive)
		}
	}
	// The verification loop touched a, then c, then d, making a the
	// least recently used again. A miss for a ghost key must not disturb
	// recency, so the next add evicts a — not c or d.
	c.get(fpOf("b"))
	c.add(fpOf("e"), res("e"))
	if _, ok := c.get(fpOf("a")); ok {
		t.Error("eviction skipped the least recently touched key")
	}
	if c.l.Len() != 3 || len(c.m) != 3 {
		t.Errorf("cache size drifted: list %d, map %d, want 3", c.l.Len(), len(c.m))
	}
}
