// The persistence contract of the serving layer: a daemon booted with a
// result store survives a restart with a hot cache. A repeat workload
// after kill-and-reboot is served byte-identically with zero pipeline
// re-runs; partial results never become durable; the store acts as a
// durable L2 behind the LRU; and a store fault degrades to a recompute,
// never a failed request.
package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/store"
)

// bootServer opens the store at dir and boots a server on it, returning
// a teardown that drains the server and closes the store — one daemon
// incarnation.
func bootServer(t testing.TB, dir string, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	stor, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = stor
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	return s, ts, func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		if err := stor.Close(); err != nil {
			t.Errorf("close store: %v", err)
		}
	}
}

// TestRestartServesFromStore is the restart contract test of the issue:
// run a workload against a store-backed daemon, kill it, boot a fresh
// incarnation on the same directory, and the repeat workload must be
// served byte-identically with the cache marker and ZERO pipeline
// re-runs. A partial result produced in the first life must NOT have
// become durable.
func TestRestartServesFromStore(t *testing.T) {
	if testing.Short() {
		t.Skip("restart contract test synthesizes real designs; too slow for -short")
	}
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	workload := []string{
		`{"bench":"ex","width":4}`,
		`{"bench":"ex","width":8,"method":"camad"}`,
		`{"bench":"tseng","width":4}`,
	}

	// Life 1: compute the workload, plus one deadline-starved request
	// whose partial result must stay in-memory only.
	first := make([][]byte, len(workload))
	{
		st := stats.New()
		_, ts, down := bootServer(t, dir, Config{QueueDepth: 16, Jobs: 2, CacheSize: 16, Stats: st})
		for i, body := range workload {
			status, h, got := post(t, ts.Client(), ts.URL+"/v1/synthesize", body)
			if status != http.StatusOK {
				t.Fatalf("life 1 request %d: status %d: %s", i, status, got)
			}
			if h.Get("X-Hlts-Result") == "cached" {
				t.Fatalf("life 1 request %d served from cache on a cold store", i)
			}
			first[i] = got
		}
		if status, _, got := post(t, ts.Client(), ts.URL+"/v1/synthesize", `{"bench":"dct","width":16,"deadline_ms":1}`); status != http.StatusOK || !strings.Contains(string(got), `"status":"partial"`) {
			t.Fatalf("starved request: status %d: %s", status, got)
		}
		if runs := st.Value("server.jobs.run"); runs != int64(len(workload))+1 {
			t.Fatalf("life 1 ran %d jobs", runs)
		}
		down() // SIGTERM-equivalent: drain and close
	}

	// Life 2: a fresh process on the same directory. The repeat workload
	// must hit without a single pipeline run.
	{
		st := stats.New()
		s, ts, down := bootServer(t, dir, Config{QueueDepth: 16, Jobs: 2, CacheSize: 16, Stats: st})
		downed := false
		shutdown := func() {
			if !downed {
				downed = true
				down()
			}
		}
		defer shutdown()
		for i, body := range workload {
			status, h, got := post(t, ts.Client(), ts.URL+"/v1/synthesize", body)
			if status != http.StatusOK {
				t.Fatalf("life 2 request %d: status %d: %s", i, status, got)
			}
			if h.Get("X-Hlts-Result") != "cached" {
				t.Errorf("life 2 request %d not served from cache (header %q)", i, h.Get("X-Hlts-Result"))
			}
			if !bytes.Equal(got, first[i]) {
				t.Errorf("life 2 request %d differs from life 1:\n got %s\nwant %s", i, got, first[i])
			}
		}
		if runs := st.Value("server.jobs.run"); runs != 0 {
			t.Errorf("restarted daemon recomputed %d jobs for a repeat workload", runs)
		}
		if warmed := st.Value("server.store.warmed"); warmed != int64(len(workload)) {
			t.Errorf("boot warmed %d records, want %d (partial result leaked into the store?)", warmed, len(workload))
		}
		// The store surfaces in the metrics exposition.
		if status, body := get(t, ts.Client(), ts.URL+"/metrics"); status != 200 || !strings.Contains(string(body), "hlts_server_store_records 3") {
			t.Errorf("metrics missing store gauges: %d\n%s", status, body)
		}
		// The starved request's partial result was never persisted: asking
		// again recomputes (no cached marker).
		if _, h, _ := post(t, ts.Client(), ts.URL+"/v1/synthesize", `{"bench":"dct","width":16,"deadline_ms":1}`); h.Get("X-Hlts-Result") == "cached" {
			t.Error("partial result survived the restart as truth")
		}
		if s.st.Value("server.store.error") != 0 {
			t.Errorf("store errors: %d", s.st.Value("server.store.error"))
		}
		shutdown() // drain before the leak check below
	}
	settle(t, base)
}

// TestStoreIsDurableL2: a result evicted from the LRU is still served
// from the store — one verified read, no recompute — and re-enters the
// LRU on the way out.
func TestStoreIsDurableL2(t *testing.T) {
	base := runtime.NumGoroutine()
	st := stats.New()
	stor, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer stor.Close()
	// LRU of 1: the second job evicts the first.
	q := newQueue(4, 1, 1, st, stor, nil)
	runBody := func(body string) func(ctx context.Context) (int, []byte, bool) {
		return func(ctx context.Context) (int, []byte, bool) { return http.StatusOK, []byte(body), true }
	}
	wait := func(fp, body string) {
		t.Helper()
		j, cached, err := q.submit(fpOf(fp), "synthesize", time.Minute, runBody(body))
		if err != nil || cached != nil {
			t.Fatalf("submit %s: j=%v cached=%v err=%v", fp, j, cached, err)
		}
		<-j.done
	}
	wait("A", "result-A")
	wait("B", "result-B") // evicts A from the 1-entry LRU
	j, cached, err := q.submit(fpOf("A"), "synthesize", time.Minute, runBody("MUST NOT RUN"))
	if err != nil || j != nil {
		t.Fatalf("resubmit A: j=%v err=%v", j, err)
	}
	if cached == nil || string(cached.body) != "result-A" {
		t.Fatalf("evicted result not served from store: %+v", cached)
	}
	if st.Value("server.store.hit") != 1 {
		t.Errorf("store.hit = %d, want 1", st.Value("server.store.hit"))
	}
	if st.Value("server.jobs.run") != 2 {
		t.Errorf("jobs.run = %d, want 2", st.Value("server.jobs.run"))
	}
	// The L2 hit repopulated the LRU: the next lookup is an L1 hit.
	if _, cached, _ := q.submit(fpOf("A"), "synthesize", time.Minute, runBody("MUST NOT RUN")); cached == nil {
		t.Fatal("store hit did not repopulate the LRU")
	} else if st.Value("server.cache.hit") != 1 {
		t.Errorf("cache.hit = %d, want 1", st.Value("server.cache.hit"))
	}
	if err := q.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	settle(t, base)
}

// TestStoreFaultDegradesToRecompute: a store that panics on every call
// must cost recomputes and error counters, never a failed request.
func TestStoreFaultDegradesToRecompute(t *testing.T) {
	base := runtime.NumGoroutine()
	st := stats.New()
	// A closed store is the cheapest real fault a store can present: warm
	// finds nothing, Get misses, and every Put fails with ErrClosed.
	stor, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stor.Close()
	q := newQueue(4, 1, 4, st, stor, nil)
	j, cached, err := q.submit(fpOf("X"), "synthesize", time.Minute, func(ctx context.Context) (int, []byte, bool) {
		return http.StatusOK, []byte("computed"), true
	})
	if err != nil || cached != nil {
		t.Fatalf("submit: cached=%v err=%v", cached, err)
	}
	<-j.done
	if j.res.status != http.StatusOK || string(j.res.body) != "computed" {
		t.Fatalf("request failed under store fault: %d %s", j.res.status, j.res.body)
	}
	if st.Value("server.store.error") == 0 {
		t.Error("store fault not counted")
	}
	if err := q.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	settle(t, base)
}

// BenchmarkServerBoot measures daemon boot-to-first-answer with and
// without a warm persistent store; the hit_rate metric is the
// cold-vs-warm contrast CI publishes in BENCH_server.json (0 cold: every
// boot recomputes; 1 warm: every boot answers from the store).
func BenchmarkServerBoot(b *testing.B) {
	body := `{"bench":"ex","width":4}`
	boot := func(b *testing.B, dir string) (hit bool) {
		st := stats.New()
		_, ts, down := bootServer(b, dir, Config{QueueDepth: 8, Jobs: 1, CacheSize: 8, Stats: st})
		status, _, got := post(b, ts.Client(), ts.URL+"/v1/synthesize", body)
		if status != http.StatusOK {
			b.Fatalf("status %d: %s", status, got)
		}
		down()
		return st.Value("server.cache.hit")+st.Value("server.store.hit") > 0
	}
	b.Run("cold", func(b *testing.B) {
		var hits int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir() // fresh store: every boot pays the synthesis
			b.StartTimer()
			if boot(b, dir) {
				hits++
			}
		}
		b.ReportMetric(float64(hits)/float64(b.N), "hit_rate")
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		boot(b, dir) // prime the store once, off the clock
		b.ResetTimer()
		var hits int
		for i := 0; i < b.N; i++ {
			if boot(b, dir) {
				hits++
			}
		}
		b.ReportMetric(float64(hits)/float64(b.N), "hit_rate")
	})
}
