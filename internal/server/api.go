// api.go defines the wire types of the synthesis service: the JSON
// request bodies the endpoints accept, their normalized forms (defaults
// applied, inputs validated, behaviour graph loaded), the canonical
// request fingerprints that key coalescing and the result cache, and the
// pure response builders.
//
// Normalization and response building are exported and deterministic on
// purpose: the integration tests call them directly on results computed
// through the library facade and assert the daemon's responses are
// byte-identical — the serving layer (queue, coalescing, cache) must be
// invisible in the payload.
package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	hlts "repro"
	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/testability"
)

// SynthesizeRequest is the body of POST /v1/synthesize. Exactly one of
// Bench and VHDL selects the behaviour; the remaining knobs mirror the
// hlts CLI flags and default the same way.
type SynthesizeRequest struct {
	Bench  string   `json:"bench,omitempty"`
	VHDL   string   `json:"vhdl,omitempty"`
	Width  int      `json:"width"`
	Method string   `json:"method,omitempty"` // default "ours"
	K      int      `json:"k,omitempty"`      // default 3
	Alpha  *float64 `json:"alpha,omitempty"`  // default 2
	Beta   *float64 `json:"beta,omitempty"`   // default 1
	Slack  int      `json:"slack,omitempty"`
	Loop   string   `json:"loop,omitempty"` // default "exit" for diffeq/paulin
	// DeadlineMS caps this request's computation; it is bounded above by
	// the server's MaxDeadline and deliberately excluded from the request
	// fingerprint (a deadline changes when an answer arrives, not which
	// answer).
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// NormSynthesize is a normalized synthesis request: defaults applied,
// inputs validated, behaviour graph loaded.
type NormSynthesize struct {
	Behaviour string // benchmark name, or "vhdl:<entity>" for sources
	Method    string
	Graph     *hlts.Graph
	Params    hlts.Params
}

// Normalize validates the request and loads the behaviour graph. Every
// error it returns is a client error (HTTP 400): bad width, unknown
// benchmark or method, malformed VHDL.
func (r SynthesizeRequest) Normalize() (*NormSynthesize, error) {
	n := &NormSynthesize{Method: r.Method}
	if n.Method == "" {
		n.Method = hlts.MethodOurs
	}
	if !validMethod(n.Method) {
		return nil, fmt.Errorf("unknown method %q (want one of %s)", n.Method, strings.Join(hlts.Methods(), ", "))
	}
	var err error
	switch {
	case r.Bench != "" && r.VHDL != "":
		return nil, fmt.Errorf("choose one of bench and vhdl, not both")
	case r.Bench != "":
		n.Behaviour = r.Bench
		n.Graph, err = hlts.LoadBenchmark(r.Bench, r.Width)
	case r.VHDL != "":
		n.Graph, err = hlts.CompileVHDL(r.VHDL, r.Width)
		if err == nil {
			n.Behaviour = "vhdl:" + n.Graph.Name
		}
	default:
		return nil, fmt.Errorf("one of bench and vhdl is required")
	}
	if err != nil {
		return nil, err
	}
	p := hlts.DefaultParams(r.Width)
	if r.K > 0 {
		p.K = r.K
	}
	if r.Alpha != nil {
		p.Alpha = *r.Alpha
	}
	if r.Beta != nil {
		p.Beta = *r.Beta
	}
	p.Slack = r.Slack
	p.LoopSignal = r.Loop
	if p.LoopSignal == "" && (r.Bench == hlts.BenchDiffeq || r.Bench == hlts.BenchPaulin) {
		p.LoopSignal = "exit"
	}
	if p.LoopSignal == "" {
		// Generated benchmarks carry their loop structure in the name.
		p.LoopSignal = hlts.GenLoopSignal(r.Bench)
	}
	n.Params = p
	return n, nil
}

func validMethod(m string) bool {
	for _, known := range hlts.Methods() {
		if m == known {
			return true
		}
	}
	return false
}

// Fingerprint canonically hashes everything the response depends on:
// the endpoint, the behaviour graph and the result-affecting synthesis
// parameters — the same FNV-128a encoding the evaluation cache keys on,
// so equal fingerprints imply bit-identical responses. Operational knobs
// (workers, deadline, stats) are excluded by construction.
func (n *NormSynthesize) Fingerprint() core.Fingerprint {
	h := core.NewHasher()
	h.Str("v1/synthesize")
	h.Str(n.Method)
	h.Graph(n.Graph)
	h.Params(n.Params)
	return h.Sum()
}

// SynthesizeResponse is the body of a successful /v1/synthesize call.
type SynthesizeResponse struct {
	Behaviour       string  `json:"behaviour"`
	Method          string  `json:"method"`
	Width           int     `json:"width"`
	ExecTime        int     `json:"exec_time"`
	Area            float64 `json:"area"`
	Modules         int     `json:"modules"`
	Registers       int     `json:"registers"`
	Muxes           int     `json:"muxes"`
	MuxInputs       int     `json:"mux_inputs"`
	SelfLoops       int     `json:"self_loops"`
	MeanTestability float64 `json:"mean_testability"`
	Schedule        string  `json:"schedule"`
	Allocation      string  `json:"allocation"`
	Status          string  `json:"status"`
	Exhausted       string  `json:"exhausted,omitempty"`
	Fingerprint     string  `json:"fingerprint"`
}

// BuildSynthesizeResponse derives the response payload from a synthesis
// result: a pure function of (normalized request, result), so identical
// results marshal to identical bytes whichever path produced them.
func BuildSynthesizeResponse(n *NormSynthesize, res *hlts.Result) SynthesizeResponse {
	return SynthesizeResponse{
		Behaviour:       n.Behaviour,
		Method:          res.Method,
		Width:           n.Params.Width,
		ExecTime:        res.ExecTime,
		Area:            res.Area.Total,
		Modules:         res.Design.Alloc.NumModules(),
		Registers:       res.Design.Alloc.NumRegs(),
		Muxes:           res.Mux.Muxes,
		MuxInputs:       res.Mux.Inputs,
		SelfLoops:       res.Design.SelfLoops(),
		MeanTestability: testability.MeanTestability(res.Design, res.Metrics),
		Schedule:        res.Design.Sched.String(n.Graph),
		Allocation:      res.Design.Alloc.String(n.Graph),
		Status:          res.Status.String(),
		Exhausted:       res.Exhausted,
		Fingerprint:     n.Fingerprint().String(),
	}
}

// TestDesignRequest is the body of POST /v1/testdesign: a synthesis
// request plus the test-generation knobs. Scan selects up to Scan
// partial-scan registers before ATPG; BIST additionally evaluates a
// built-in self-test configuration of the same design.
type TestDesignRequest struct {
	SynthesizeRequest
	Seed     int64        `json:"seed,omitempty"`   // default 1
	Faults   int          `json:"faults,omitempty"` // fault sample size, default 1500
	Scan     int          `json:"scan,omitempty"`
	TestMode bool         `json:"test_mode,omitempty"`
	BIST     *BISTRequest `json:"bist,omitempty"`
}

// BISTRequest configures the optional self-test evaluation.
type BISTRequest struct {
	TPG    int `json:"tpg"`
	MISR   int `json:"misr"`
	Cycles int `json:"cycles,omitempty"` // default 100
	Faults int `json:"faults,omitempty"` // sample size, default 400
	// Lanes is the number of parallel pseudorandom sessions evaluated per
	// simulation pass, 1..64; default 64. 1 reproduces the historical
	// single-session evaluator.
	Lanes int `json:"lanes,omitempty"`
}

// NormTestDesign is a normalized test-design request.
type NormTestDesign struct {
	NormSynthesize
	Seed     int64
	Faults   int
	Scan     int
	TestMode bool
	BIST     *BISTRequest
}

// Normalize validates the request and applies defaults.
func (r TestDesignRequest) Normalize() (*NormTestDesign, error) {
	ns, err := r.SynthesizeRequest.Normalize()
	if err != nil {
		return nil, err
	}
	n := &NormTestDesign{NormSynthesize: *ns, Seed: r.Seed, Faults: r.Faults, Scan: r.Scan, TestMode: r.TestMode}
	if n.Seed == 0 {
		n.Seed = 1
	}
	if n.Faults == 0 {
		n.Faults = 1500
	}
	if n.Scan < 0 {
		return nil, fmt.Errorf("scan must be >= 0 (got %d)", n.Scan)
	}
	if r.BIST != nil {
		b := *r.BIST
		if b.TPG < 0 || b.MISR < 0 || b.TPG+b.MISR == 0 {
			return nil, fmt.Errorf("bist needs tpg+misr >= 1 registers")
		}
		if b.Cycles == 0 {
			b.Cycles = 100
		}
		if b.Cycles < 1 {
			return nil, fmt.Errorf("bist cycles must be >= 1 (got %d)", b.Cycles)
		}
		if b.Faults == 0 {
			b.Faults = 400
		}
		if b.Lanes == 0 {
			b.Lanes = 64
		}
		if b.Lanes < 1 || b.Lanes > 64 {
			return nil, fmt.Errorf("bist lanes must be 1..64 (got %d)", b.Lanes)
		}
		n.BIST = &b
	}
	return n, nil
}

// Fingerprint extends the synthesis fingerprint with the test-generation
// knobs.
func (n *NormTestDesign) Fingerprint() core.Fingerprint {
	h := core.NewHasher()
	h.Str("v1/testdesign")
	h.Str(n.Method)
	h.Graph(n.Graph)
	h.Params(n.Params)
	h.U64(uint64(n.Seed))
	h.Int(n.Faults)
	h.Int(n.Scan)
	if n.TestMode {
		h.Int(1)
	} else {
		h.Int(0)
	}
	if n.BIST != nil {
		h.Str("bist")
		h.Int(n.BIST.TPG)
		h.Int(n.BIST.MISR)
		h.Int(n.BIST.Cycles)
		h.Int(n.BIST.Faults)
		h.Int(n.BIST.Lanes)
	}
	return h.Sum()
}

// TestDesignResponse is the body of a successful /v1/testdesign call.
type TestDesignResponse struct {
	Synthesis SynthesizeResponse `json:"synthesis"`

	Gates int `json:"gates"`
	DFFs  int `json:"dffs"`

	ScanRegs []int `json:"scan_regs,omitempty"`

	Coverage      float64 `json:"coverage"`
	TGEffort      int64   `json:"tg_effort"`
	TestCycles    int     `json:"test_cycles"`
	ATPGStatus    string  `json:"atpg_status"`
	ATPGExhausted string  `json:"atpg_exhausted,omitempty"`

	BIST *BISTResponse `json:"bist,omitempty"`

	Fingerprint string `json:"fingerprint"`
}

// BISTResponse reports the optional self-test evaluation.
type BISTResponse struct {
	TPG         []int   `json:"tpg"`
	MISR        []int   `json:"misr"`
	TotalFaults int     `json:"total_faults"`
	Detected    int     `json:"detected"`
	Coverage    float64 `json:"coverage"`
	Cycles      int     `json:"cycles"`
	Lanes       int     `json:"lanes"`
	Status      string  `json:"status"`
	Exhausted   string  `json:"exhausted,omitempty"`
}

// BuildTestDesignResponse derives the response payload; like its
// synthesis counterpart it is pure in its inputs.
func BuildTestDesignResponse(n *NormTestDesign, res *hlts.Result, nl *hlts.Netlist, scanRegs []int, ares *hlts.ATPGResult, tpg, misr []int, bres *atpg.BISTOutcome) TestDesignResponse {
	out := TestDesignResponse{
		Synthesis:     BuildSynthesizeResponse(&n.NormSynthesize, res),
		Gates:         nl.C.NumGates(),
		DFFs:          len(nl.C.DFFs),
		ScanRegs:      scanRegs,
		Coverage:      ares.Coverage,
		TGEffort:      ares.Effort,
		TestCycles:    ares.TestCycles,
		ATPGStatus:    ares.Status.String(),
		ATPGExhausted: ares.Exhausted,
		Fingerprint:   n.Fingerprint().String(),
	}
	// The embedded synthesis fingerprint would differ from the job's own;
	// pin both to the test-design fingerprint so the payload carries one
	// coherent identity.
	out.Synthesis.Fingerprint = out.Fingerprint
	if bres != nil {
		out.BIST = &BISTResponse{
			TPG: tpg, MISR: misr,
			TotalFaults: bres.TotalFaults, Detected: bres.Detected,
			Coverage: bres.Coverage, Cycles: bres.Cycles, Lanes: bres.Lanes,
			Status: bres.Status.String(), Exhausted: bres.Exhausted,
		}
	}
	return out
}

// NormTable is a normalized GET /v1/table/{bench} request.
type NormTable struct {
	Bench  string
	Widths []int
	Seed   int64
	Faults int
}

// NormalizeTable validates the table request: the benchmark must exist
// (probed at the narrowest width) and the widths must each pass the
// facade's width validation.
func NormalizeTable(bench, widthsCSV, seedStr, faultsStr string) (*NormTable, error) {
	n := &NormTable{Bench: bench, Seed: 1998, Faults: 300}
	if widthsCSV == "" {
		widthsCSV = "4,8,16"
	}
	for _, f := range strings.Split(widthsCSV, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad width %q", f)
		}
		n.Widths = append(n.Widths, w)
	}
	if seedStr != "" {
		s, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", seedStr)
		}
		n.Seed = s
	}
	if faultsStr != "" {
		f, err := strconv.Atoi(faultsStr)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad faults %q", faultsStr)
		}
		n.Faults = f
	}
	for _, w := range n.Widths {
		if _, err := hlts.LoadBenchmark(bench, w); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Fingerprint canonically hashes the table request.
func (n *NormTable) Fingerprint() core.Fingerprint {
	h := core.NewHasher()
	h.Str("v1/table")
	h.Str(n.Bench)
	h.Int(len(n.Widths))
	for _, w := range n.Widths {
		h.Int(w)
	}
	h.U64(uint64(n.Seed))
	h.Int(n.Faults)
	return h.Sum()
}

// TableResponse is the body of a successful /v1/table call.
type TableResponse struct {
	Table       *hlts.Table `json:"table"`
	Rendered    string      `json:"rendered"`
	Partial     bool        `json:"partial,omitempty"`
	Fingerprint string      `json:"fingerprint"`
}

// BuildTableResponse derives the response payload.
func BuildTableResponse(n *NormTable, tbl *hlts.Table) TableResponse {
	out := TableResponse{Table: tbl, Rendered: tbl.Render(), Fingerprint: n.Fingerprint().String()}
	for _, c := range tbl.Cells {
		if c.Partial {
			out.Partial = true
		}
	}
	return out
}

// errorBody is the uniform error payload of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// marshal renders a response payload in the service's canonical JSON
// framing (compact encoding plus trailing newline).
func marshal(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
