// queue.go is the execution backbone of the daemon: a bounded job queue
// with admission control, fingerprint-keyed coalescing of identical
// in-flight requests, an LRU cache of completed results backed by an
// optional persistent content-addressed store, and a
// drain-under-deadline shutdown path.
//
// Invariants:
//
//   - Admission is all-or-nothing under one mutex: a request is answered
//     from the cache (LRU first, then the persistent store), attached to
//     an identical in-flight job, or enqueued as a new job — and when the
//     queue is full it is rejected immediately (ErrQueueFull -> HTTP
//     429), never buffered without bound.
//   - A job's context is cancelled when its last waiter disconnects
//     (dropped connections cancel their computation) and when the drain
//     deadline passes (in-flight jobs degrade to StatusPartial results
//     via the library's budget semantics).
//   - Only complete (StatusComplete, HTTP 200) results enter the cache or
//     the store: partial results depend on timing and would break the
//     byte-identical response contract.
//   - The store is an accelerator, never a dependency: a store fault
//     (I/O error, injected chaos, even a panic) surfaces as a counter and
//     a recompute, never a failed request or a crashed daemon.
package server

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/store"
)

// Admission errors.
var (
	// ErrQueueFull rejects a request because the bounded queue is at
	// capacity; the handler answers 429 with a Retry-After hint.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining rejects a request because the server is shutting down.
	ErrDraining = errors.New("server: draining")
)

// result is a finished job: the HTTP status and canonical JSON body every
// attached request receives verbatim.
type result struct {
	status int
	body   []byte
}

// job is one queued computation. Requests with the same fingerprint
// attach to the same job (waiters counts them, guarded by the queue
// mutex); res is published before done closes.
type job struct {
	fp      core.Fingerprint
	kind    string // endpoint label for metrics
	run     func(ctx context.Context) (int, []byte, bool)
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
	res     result
	waiters int
}

// queue is the bounded, coalescing job queue.
type queue struct {
	st    *stats.Stats
	ch    chan *job
	fetch PeerFetchFunc // optional read-repair hook, tried before computing

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	inflight map[core.Fingerprint]*job
	cache    *lruCache
	store    *store.Store // optional durable L2 behind the LRU
	draining bool

	wg sync.WaitGroup // worker goroutines
}

// newQueue builds the queue, warms the LRU from the persistent store
// (when one is given), and starts `workers` job-runner goroutines.
func newQueue(depth, workers, cacheSize int, st *stats.Stats, stor *store.Store, fetch PeerFetchFunc) *queue {
	ctx, cancel := context.WithCancel(context.Background())
	q := &queue{
		st:         st,
		ch:         make(chan *job, depth),
		fetch:      fetch,
		baseCtx:    ctx,
		baseCancel: cancel,
		inflight:   map[core.Fingerprint]*job{},
		cache:      newLRUCache(cacheSize),
		store:      stor,
	}
	q.warm(cacheSize)
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// warm preloads up to cap LRU entries from the persistent store, so a
// restarted daemon serves repeat traffic hot from the first request.
// Store records beyond the LRU capacity still hit via the submit-time
// store lookup.
func (q *queue) warm(capacity int) {
	if q.store == nil || capacity < 1 {
		return
	}
	defer q.recoverStore()
	n := 0
	q.store.Range(func(fp core.Fingerprint, val []byte) bool {
		r, ok := decodeResult(val)
		if !ok {
			return true
		}
		q.cache.add(fp, r)
		n++
		return n < capacity
	})
	q.st.Add("server.store.warmed", int64(n))
}

// encodeResult frames a completed result for the store: the HTTP status
// followed by the canonical body bytes.
func encodeResult(r result) []byte {
	buf := make([]byte, 4+len(r.body))
	binary.LittleEndian.PutUint32(buf, uint32(r.status))
	copy(buf[4:], r.body)
	return buf
}

func decodeResult(v []byte) (result, bool) {
	if len(v) < 4 {
		return result{}, false
	}
	status := int(binary.LittleEndian.Uint32(v))
	if status < 100 || status > 599 {
		return result{}, false
	}
	return result{status: status, body: append([]byte(nil), v[4:]...)}, true
}

// recoverStore is the store-is-never-a-dependency backstop: a panicking
// store call (injected chaos, or a real defect) is swallowed into a
// counter so the request path degrades to a recompute.
func (q *queue) recoverStore() {
	if rec := recover(); rec != nil {
		q.st.Add("server.store.error", 1)
	}
}

// storeGet consults the persistent store; misses, decode failures and
// store faults all come back as a plain miss.
func (q *queue) storeGet(fp core.Fingerprint) (r result, ok bool) {
	defer q.recoverStore()
	v, hit := q.store.Get(fp)
	if !hit {
		return result{}, false
	}
	return decodeResult(v)
}

// storePut writes a completed result through to the persistent store.
// Failures are counted, never propagated: the response has its in-memory
// path regardless, and an unacknowledged record is simply recomputed
// after the next boot.
func (q *queue) storePut(fp core.Fingerprint, r result) {
	defer q.recoverStore()
	if err := q.store.Put(fp, encodeResult(r)); err != nil {
		q.st.Add("server.store.error", 1)
	}
}

// submit admits one request. Exactly one of the returns is meaningful:
// a cached result (served immediately), a job to wait on, or an
// admission error (ErrQueueFull, ErrDraining, or an injected enqueue
// fault).
func (q *queue) submit(fp core.Fingerprint, kind string, deadline time.Duration, run func(ctx context.Context) (int, []byte, bool)) (*job, *result, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return nil, nil, ErrDraining
	}
	if r, ok := q.cache.get(fp); ok {
		q.st.Add("server.cache.hit", 1)
		return nil, &r, nil
	}
	if q.store != nil {
		// Durable L2: results evicted from the LRU (or written by an
		// earlier incarnation of the daemon and not warmed) are still one
		// verified read away. The read is small and bounded, so holding the
		// admission mutex across it keeps the all-or-nothing invariant
		// without measurable contention.
		if r, ok := q.storeGet(fp); ok {
			q.cache.add(fp, r)
			q.st.Add("server.store.hit", 1)
			return nil, &r, nil
		}
	}
	q.st.Add("server.cache.miss", 1)
	if j := q.inflight[fp]; j != nil {
		j.waiters++
		q.st.Add("server.coalesce.hit", 1)
		return j, nil, nil
	}
	if err := chaos.Step(chaos.SiteServerEnqueue); err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithTimeout(q.baseCtx, deadline)
	j := &job{
		fp: fp, kind: kind, run: run,
		ctx: ctx, cancel: cancel,
		done: make(chan struct{}), waiters: 1,
	}
	select {
	case q.ch <- j:
	default:
		cancel()
		q.st.Add("server.queue.rejected", 1)
		return nil, nil, ErrQueueFull
	}
	q.inflight[fp] = j
	q.st.Add("server.jobs.enqueued", 1)
	return j, nil, nil
}

// detach drops one waiter from a job; when the last waiter goes (its
// connection died), the job's context is cancelled so the computation
// stops at its next budget boundary instead of burning workers for
// nobody.
func (q *queue) detach(j *job) {
	q.mu.Lock()
	j.waiters--
	orphaned := j.waiters == 0
	q.mu.Unlock()
	if orphaned {
		q.st.Add("server.jobs.orphaned", 1)
		j.cancel()
	}
}

// depth reports the number of queued-but-unstarted jobs and the number of
// distinct in-flight fingerprints.
func (q *queue) depth() (queued, inflight int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ch), len(q.inflight)
}

// worker runs queued jobs. Every job body is panic-isolated (a panicking
// computation answers 500, never kills the daemon), its result enters the
// cache only when the run reported it cacheable, and its context is
// always cancelled afterwards so deadline timers are released.
func (q *queue) worker() {
	defer q.wg.Done()
	for j := range q.ch {
		start := time.Now()
		status, body, cacheable := q.runJob(j)
		q.st.ObserveSince("server.job."+j.kind+".latency", start)
		j.res = result{status: status, body: body}
		// Write through to the persistent store before publishing, outside
		// the admission mutex (Put fsyncs): once waiters see the result it
		// is already durable, so a restarted daemon serves it without
		// recomputing.
		if cacheable && q.store != nil {
			q.storePut(j.fp, j.res)
		}
		q.mu.Lock()
		if cacheable {
			q.cache.add(j.fp, j.res)
		}
		delete(q.inflight, j.fp)
		q.mu.Unlock()
		j.cancel()
		close(j.done)
	}
}

// peerRepair is the read-repair path: a request that missed both the LRU
// and the durable store may still be answered by a replication peer that
// holds the record. It runs on the job worker — never under the admission
// mutex, so a slow or failing peer cannot block admission — and the
// fetched bytes come back cacheable, so the worker loop writes them
// through to the local store before publishing (the repair half of
// read-repair). Any fault — transport, injected chaos, even a panicking
// hook — degrades to the ordinary recompute.
func (q *queue) peerRepair(j *job) (r result, ok bool) {
	defer q.recoverStore()
	v, hit := q.fetch(j.ctx, j.fp)
	if !hit {
		return result{}, false
	}
	r, ok = decodeResult(v)
	if !ok {
		q.st.Add("server.replicate.error", 1)
		return result{}, false
	}
	q.st.Add("server.replicate.readrepair", 1)
	return r, true
}

// runJob executes one job under panic isolation, trying peer read-repair
// before computing.
func (q *queue) runJob(j *job) (status int, body []byte, cacheable bool) {
	if q.fetch != nil {
		if r, ok := q.peerRepair(j); ok {
			return r.status, r.body, true
		}
	}
	// jobs.run counts pipeline executions: a read-repaired job was served
	// from a peer's bytes, not recomputed, so it does not count.
	q.st.Add("server.jobs.run", 1)
	type out struct {
		status    int
		body      []byte
		cacheable bool
	}
	o, err := exec.Guard1("server.job."+j.kind, -1, func() (out, error) {
		s, b, c := j.run(j.ctx)
		return out{s, b, c}, nil
	})
	if err != nil {
		q.st.Add("server.jobs.panicked", 1)
		b, _ := marshal(errorBody{Error: err.Error()})
		return 500, b, false
	}
	return o.status, o.body, o.cacheable
}

// drain shuts the queue down: no further admissions, queued jobs still
// run, and when ctx expires before the backlog clears the base context is
// cancelled so every remaining job lands a StatusPartial result at its
// next budget boundary. drain always waits for the workers to exit — the
// no-goroutine-leak half of the shutdown contract.
func (q *queue) drain(ctx context.Context) error {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return nil
	}
	q.draining = true
	close(q.ch) // submits are rejected before the send, under the same mutex
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		q.baseCancel() // in-flight jobs degrade to partial results
		<-done
	}
	q.baseCancel()
	return err
}

// lruCache is a small fingerprint-keyed LRU of completed results.
type lruCache struct {
	cap int
	m   map[core.Fingerprint]*list.Element
	l   *list.List // front = most recently used
}

type lruEntry struct {
	fp  core.Fingerprint
	res result
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, m: map[core.Fingerprint]*list.Element{}, l: list.New()}
}

func (c *lruCache) get(fp core.Fingerprint) (result, bool) {
	if e, ok := c.m[fp]; ok {
		c.l.MoveToFront(e)
		return e.Value.(*lruEntry).res, true
	}
	return result{}, false
}

func (c *lruCache) add(fp core.Fingerprint, r result) {
	if c.cap < 1 {
		return
	}
	if e, ok := c.m[fp]; ok {
		e.Value.(*lruEntry).res = r
		c.l.MoveToFront(e)
		return
	}
	c.m[fp] = c.l.PushFront(&lruEntry{fp: fp, res: r})
	for c.l.Len() > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).fp)
	}
}
