package atpg

import (
	"errors"
	"testing"

	"repro/internal/alloc"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/fault"
	"repro/internal/gates"
	"repro/internal/logicsim"
	"repro/internal/rtl"
	"repro/internal/sched"
)

// buildBISTNetlist synthesizes a small data path (Tseng, 4-bit) and wraps
// register 0 as TPG and register 1 as MISR, the standard BIST fixture.
func buildBISTNetlist(t *testing.T) *rtl.Netlist {
	t.Helper()
	g := dfg.Tseng(4)
	s, err := sched.NewProblem(g).ASAP()
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	regOf, n := alloc.RegisterLeftEdge(g, life)
	a := alloc.BindModules(g, s, sched.ExactClass, regOf, n)
	d, err := etpn.Build(g, s, a, life, etpn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.GenerateBIST(d, 4, rtl.NormalMode, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestRunBISTCyclesError(t *testing.T) {
	nl := buildBISTNetlist(t)
	for _, cycles := range []int{0, -3} {
		_, err := RunBIST(nl.C, 10, cycles)
		if !errors.Is(err, ErrBISTCycles) {
			t.Errorf("cycles=%d: err = %v, want ErrBISTCycles", cycles, err)
		}
	}
}

func TestRunBISTLanesValidation(t *testing.T) {
	nl := buildBISTNetlist(t)
	for _, lanes := range []int{-1, 65, 1000} {
		if _, err := RunBISTCfg(nl.C, 10, 4, BISTConfig{Lanes: lanes}); err == nil {
			t.Errorf("lanes=%d: expected error", lanes)
		}
	}
}

func TestRunBISTDuplicateEnable(t *testing.T) {
	b := gates.NewBuilder()
	x := b.Input("bist_en")
	y := b.Input("bist_en")
	b.Output("sig_r0[0]", b.Xor(x, y))
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBIST(c, 10, 4); !errors.Is(err, ErrDuplicateBISTEnable) {
		t.Fatalf("err = %v, want ErrDuplicateBISTEnable", err)
	}
}

// legacyBIST reimplements the original single-session evaluator verbatim
// (one shared xorshift stream replicated to all lanes, golden history via
// Run, bit-0 signature compare): the reference for the Lanes: 1
// bit-identity guarantee.
func legacyBIST(t *testing.T, c *gates.Circuit, sampleFaults, cycles int) []bool {
	t.Helper()
	bistEn := -1
	for i, id := range c.Inputs {
		if c.Gates[id].Name == "bist_en" {
			bistEn = i
		}
	}
	if bistEn < 0 {
		t.Fatal("no bist_en input")
	}
	var sigPOs []int
	for i, name := range c.OutputNames {
		if len(name) >= 4 && name[:4] == "sig_" {
			sigPOs = append(sigPOs, i)
		}
	}
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	vec := make([][]uint64, cycles)
	for tt := range vec {
		v := make([]uint64, len(c.Inputs))
		for i := range v {
			if next()&1 != 0 {
				v[i] = ^uint64(0)
			}
		}
		v[bistEn] = ^uint64(0)
		vec[tt] = v
	}
	good, err := logicsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	golden := good.Run(vec)
	goodSig := make([]uint64, len(sigPOs))
	for i, po := range sigPOs {
		goodSig[i] = golden[cycles-1][po] & 1
	}
	flist := fault.Sample(fault.Collapse(c), sampleFaults)
	bad, err := logicsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	det := make([]bool, len(flist))
	for i := range flist {
		bad.Fault = &flist[i]
		bad.Reset()
		var last []uint64
		for _, v := range vec {
			last = bad.Step(v)
		}
		for k, po := range sigPOs {
			if last[po]&1 != goodSig[k] {
				det[i] = true
				break
			}
		}
	}
	return det
}

// Lanes: 1 must reproduce the pre-PPSFP evaluator bit for bit: lane 0's
// stimulus stream, register reset state and signature compare are all the
// legacy ones, and the upper 63 lanes are masked out of the compare.
func TestRunBISTSingleLaneMatchesLegacy(t *testing.T) {
	nl := buildBISTNetlist(t)
	const faults, cycles = 60, 48
	ref := legacyBIST(t, nl.C, faults, cycles)
	nRef := 0
	for _, d := range ref {
		if d {
			nRef++
		}
	}
	out, err := RunBISTCfg(nl.C, faults, cycles, BISTConfig{Lanes: 1, TPGRegs: nl.BISTTpg})
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected != nRef || out.TotalFaults != len(ref) || out.Evaluated != len(ref) {
		t.Errorf("Lanes:1 detected %d/%d, legacy %d/%d",
			out.Detected, out.TotalFaults, nRef, len(ref))
	}
	if out.Lanes != 1 {
		t.Errorf("Lanes = %d, want 1", out.Lanes)
	}
}

// Lane 0 of a 64-lane session is exactly the legacy session, so widening
// can only add detections, and the bookkeeping must price every fault at
// cycles simulation passes regardless of lane count.
func TestRunBISTLaneMonotonicAndPasses(t *testing.T) {
	nl := buildBISTNetlist(t)
	const faults, cycles = 60, 48
	one, err := RunBISTCfg(nl.C, faults, cycles, BISTConfig{Lanes: 1, TPGRegs: nl.BISTTpg})
	if err != nil {
		t.Fatal(err)
	}
	all, err := RunBISTCfg(nl.C, faults, cycles, BISTConfig{TPGRegs: nl.BISTTpg})
	if err != nil {
		t.Fatal(err)
	}
	if all.Lanes != 64 {
		t.Fatalf("default Lanes = %d, want 64", all.Lanes)
	}
	if all.Detected < one.Detected {
		t.Errorf("64-lane session detected %d < single-lane %d", all.Detected, one.Detected)
	}
	for _, out := range []*BISTOutcome{one, all} {
		if want := int64(out.Evaluated) * int64(cycles); out.Passes != want {
			t.Errorf("Lanes=%d: Passes = %d, want %d", out.Lanes, out.Passes, want)
		}
	}
}

// Property: a packed 64-lane simulation is bit-identical to 64 separate
// single-lane simulations — the invariant PPSFP rests on. Each lane of
// the packed run is extracted, re-widened and replayed on a fresh Sim.
func TestPackedLanesMatchSingleLaneRuns(t *testing.T) {
	nl := buildBISTNetlist(t)
	c := nl.C
	bistEn := -1
	for i, id := range c.Inputs {
		if c.Gates[id].Name == "bist_en" {
			bistEn = i
		}
	}
	const cycles = 24
	vec := sessionVectors(cycles, len(c.Inputs), 64, defaultBISTSeed, bistEn)
	packedSim, err := logicsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	packed := packedSim.Run(vec)
	laneSim, err := logicsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 64; lane++ {
		seq := extractLane(vec, lane)
		single := laneSim.Run(widenLane(seq))
		for tt := range packed {
			for k := range packed[tt] {
				if (packed[tt][k]>>uint(lane))&1 != single[tt][k]&1 {
					t.Fatalf("lane %d cycle %d output %d: packed and single-lane runs differ", lane, tt, k)
				}
			}
		}
	}
}

// extractLane and widenLane must be exact inverses over every lane.
func TestExtractWidenRoundTrip(t *testing.T) {
	vec := sessionVectors(8, 5, 64, 12345, -1)
	for _, lane := range []int{0, 1, 31, 63} {
		seq := extractLane(vec, lane)
		wide := widenLane(seq)
		for _, l2 := range []int{0, 17, 63} {
			back := extractLane(wide, l2)
			for tt := range seq {
				for i := range seq[tt] {
					if back[tt][i] != seq[tt][i] {
						t.Fatalf("round trip broke: lane %d via %d", lane, l2)
					}
				}
			}
		}
	}
}

// Fault simulation must be bit-identical at every worker count (run with
// -race this also exercises the partitioned update for data races).
func TestFaultSimWorkerEquivalenceOnBIST(t *testing.T) {
	nl := buildBISTNetlist(t)
	c := nl.C
	bistEn := -1
	for i, id := range c.Inputs {
		if c.Gates[id].Name == "bist_en" {
			bistEn = i
		}
	}
	vec := sessionVectors(16, len(c.Inputs), 64, defaultBISTSeed, bistEn)
	flist := fault.Sample(fault.Collapse(c), 80)
	seq, err := logicsim.FaultSimWorkers(c, flist, vec, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := logicsim.FaultSimWorkers(c, flist, vec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumDet != par.NumDet {
		t.Fatalf("NumDet differs: %d vs %d", seq.NumDet, par.NumDet)
	}
	for i := range flist {
		if seq.Detected[i] != par.Detected[i] || seq.DetectCycle[i] != par.DetectCycle[i] {
			t.Fatalf("fault %d: workers=1 (%v,%d) vs workers=8 (%v,%d)",
				i, seq.Detected[i], seq.DetectCycle[i], par.Detected[i], par.DetectCycle[i])
		}
	}
}
