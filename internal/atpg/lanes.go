package atpg

import "repro/internal/gates"

// Lane plumbing shared by the ATPG random phase and the BIST evaluator.
// Every net of the logic simulator carries a 64-bit word — one bit per
// parallel pattern lane — so a vector sequence can pack up to 64
// independent stimulus sequences (lane l of every word forms sequence l),
// the classic PPSFP (parallel-pattern single-fault propagation)
// transform. The helpers here build, narrow and widen such sequences.

// xorshift64 is the stimulus stream generator: one independent instance
// per lane. The recurrence (and the default seed below) are exactly the
// generator the original single-session BIST evaluator used, so lane 0
// of a multi-lane session replays the legacy session bit-for-bit.
type xorshift64 uint64

func (s *xorshift64) next() uint64 {
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift64(x)
	return x
}

// defaultBISTSeed seeds lane 0's stimulus stream; the golden-ratio
// constant predates the lane-parallel evaluator and is kept so single-
// lane sessions reproduce the historical coverage trajectories.
const defaultBISTSeed = 0x9E3779B97F4A7C15

// sessionVectors builds the per-cycle PI words driving `lanes`
// independent pseudorandom sessions: one distinct xorshift64 stream per
// lane, lane 0 seeded with `seed` directly (the legacy stream) and lanes
// 1.. with SplitMix64-derived seeds. Every stream is consumed once per
// (cycle, input) — including the forced input — so lane 0's bit sequence
// is aligned with the single-stream evaluator of old. forceInput (the
// bist_en index) is driven all-ones in every lane. The rows share one
// flat backing array.
func sessionVectors(cycles, nIn, lanes int, seed uint64, forceInput int) [][]uint64 {
	streams := make([]xorshift64, lanes)
	streams[0] = xorshift64(seed)
	for l := 1; l < lanes; l++ {
		s := gates.SplitMix64(seed + uint64(l))
		if s == 0 {
			s = seed // xorshift64 must never be seeded with 0
		}
		streams[l] = xorshift64(s)
	}
	vec := make([][]uint64, cycles)
	flat := make([]uint64, cycles*nIn)
	for t := range vec {
		v := flat[t*nIn : (t+1)*nIn : (t+1)*nIn]
		for i := range v {
			var w uint64
			for l := range streams {
				if streams[l].next()&1 != 0 {
					w |= 1 << uint(l)
				}
			}
			v[i] = w
		}
		if forceInput >= 0 {
			v[forceInput] = ^uint64(0)
		}
		vec[t] = v
	}
	return vec
}

// wideVectors fills a cycles×nIn vector block where every lane of every
// word draws an independent random bit from one full-width source — the
// 64-sessions-per-word stimulus of the campaign's random phase. The
// source is consumed once per (cycle, input), in cycle-major order.
func wideVectors(cycles, nIn int, src func() uint64) [][]uint64 {
	vec := make([][]uint64, cycles)
	for t := range vec {
		v := make([]uint64, nIn)
		for i := range v {
			v[i] = src()
		}
		vec[t] = v
	}
	return vec
}

// extractLane narrows a 64-lane vector sequence to the single pattern
// lane `lane`: the returned sequence has one word per primary input per
// cycle with only bit 0 meaningful, the format Result.TestSet retains.
func extractLane(vectors [][]uint64, lane int) [][]uint64 {
	out := make([][]uint64, len(vectors))
	for t, v := range vectors {
		row := make([]uint64, len(v))
		for i, w := range v {
			row[i] = (w >> uint(lane)) & 1
		}
		out[t] = row
	}
	return out
}

// widenLane replicates a single-lane sequence (only bit 0 meaningful,
// the extractLane format) across all 64 lanes, the form the simulator
// applies. extractLane(widenLane(seq), l) == seq for every lane l.
func widenLane(seq [][]uint64) [][]uint64 {
	out := make([][]uint64, len(seq))
	for t, row := range seq {
		w := make([]uint64, len(row))
		for i, b := range row {
			if b&1 != 0 {
				w[i] = ^uint64(0)
			}
		}
		out[t] = w
	}
	return out
}
