package atpg

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/gates"
	"repro/internal/logicsim"
	"repro/internal/parallel"
)

// Config tunes an ATPG campaign.
type Config struct {
	// Seed drives all randomness; campaigns are fully reproducible.
	Seed int64
	// SampleFaults caps the collapsed fault list by even sampling
	// (0 = use every fault).
	SampleFaults int
	// RandomBatches is the number of 64-sequence random batches.
	RandomBatches int
	// SeqLen is the length (clock cycles) of each random sequence.
	SeqLen int
	// MaxFrames bounds the time-frame expansion of the deterministic
	// phase; it should exceed the design's sequential depth. Values below
	// 1 are clamped to 1 by Run.
	MaxFrames int
	// BacktrackLimit bounds PODEM's search per fault, frame count and
	// restart.
	BacktrackLimit int
	// Restarts is the number of randomized PODEM restarts tried per fault
	// and frame count after the deterministic attempt.
	Restarts int
	// Workers bounds the goroutines used by the fault-simulation and
	// deterministic PODEM phases (0 = one per CPU, 1 = sequential). The
	// result is bit-identical at every worker count: per-fault work is
	// speculated in parallel but committed in fault-index order.
	Workers int

	// testHookAfterRandom, when set (package tests only), runs after the
	// random phase commits and before the deterministic phase starts. It
	// gives tests a deterministic cancellation point: cancelling the
	// campaign context here yields a Partial result with exactly the
	// random-phase coverage, with no wall-clock flakiness.
	testHookAfterRandom func()
	// testHookSearch, when set (package tests only), runs at the start of
	// each fault's deterministic search, on the worker goroutine and under
	// the per-fault panic guard; panicking from it simulates a PODEM crash
	// for the panic-isolation tests.
	testHookSearch func(faultIndex int)
}

// DefaultConfig returns the campaign settings used by the experiment
// harness.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		SampleFaults:   1500,
		RandomBatches:  4,
		SeqLen:         16,
		MaxFrames:      8,
		BacktrackLimit: 60,
		Restarts:       4,
	}
}

// Outcome classifies how the campaign resolved one sampled fault. The
// enum deliberately separates the two proofs (detected, untestable) from
// the three budget exhaustions (frames, backtracks, deadline): a budget
// running out says nothing about the fault's testability, and conflating
// the two inflates untestability claims (the clamped-MaxFrames campaigns
// of TestMaxFramesClampRegression used to report every deep sequential
// fault as "untestable").
type Outcome uint8

const (
	// OutcomeNone: the fault was never resolved (internal zero value; all
	// remaining None outcomes become OutcomeSkipped when a campaign ends
	// early).
	OutcomeNone Outcome = iota
	// OutcomeDetectedRandom: detected during the random phase.
	OutcomeDetectedRandom
	// OutcomeDetectedPodem: PODEM generated a test for this fault.
	OutcomeDetectedPodem
	// OutcomeDetectedDrop: detected by fault-simulating a test generated
	// for a different fault (test-set reuse).
	OutcomeDetectedDrop
	// OutcomeUntestable: proven untestable — the PODEM decision tree was
	// exhausted on a combinational circuit, where exhaustion of one frame
	// is a complete proof.
	OutcomeUntestable
	// OutcomeFrameLimited: the decision tree was exhausted at the capped
	// time-frame window of a sequential circuit. The frame budget ran out;
	// a longer window might still find a test. Not a proof.
	OutcomeFrameLimited
	// OutcomeBacktrackLimited: the backtrack budget ran out at every frame
	// window and restart. Testability unknown.
	OutcomeBacktrackLimited
	// OutcomeSkipped: the deadline expired before this fault's search
	// committed.
	OutcomeSkipped
	// OutcomePanicked: the fault's search panicked and was isolated; the
	// recovered *exec.ExecError is in Result.Errors.
	OutcomePanicked
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeNone:
		return "none"
	case OutcomeDetectedRandom:
		return "detected-random"
	case OutcomeDetectedPodem:
		return "detected-podem"
	case OutcomeDetectedDrop:
		return "detected-drop"
	case OutcomeUntestable:
		return "untestable"
	case OutcomeFrameLimited:
		return "frame-limited"
	case OutcomeBacktrackLimited:
		return "backtrack-limited"
	case OutcomeSkipped:
		return "skipped"
	case OutcomePanicked:
		return "panicked"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Detected reports whether the outcome is one of the detection proofs.
func (o Outcome) Detected() bool {
	return o == OutcomeDetectedRandom || o == OutcomeDetectedPodem || o == OutcomeDetectedDrop
}

// Result reports a campaign — the three quantities of the paper's
// Tables 1-3 plus diagnostics. A Result is valid even when Status is
// StatusPartial: every counter reflects work that genuinely happened
// before the budget ran out.
type Result struct {
	TotalFaults    int
	RandomDetected int
	DetDetected    int
	Untestable     int // proven untestable (combinational tree exhaustion)
	FrameLimited   int // tree exhausted at the capped frame window (sequential)
	Aborted        int // backtrack limit hit
	Skipped        int // deadline expired before the fault was searched

	// Status is StatusComplete for a full campaign, StatusPartial when a
	// budget (Exhausted names it) ran out mid-run.
	Status exec.Status
	// Exhausted names the budget that cut the campaign short ("" when
	// complete): exec.BudgetDeadline or exec.BudgetPanic.
	Exhausted string
	// Errors holds the recovered panics of isolated per-fault searches
	// (OutcomePanicked faults), in fault-commit order.
	Errors []*exec.ExecError
	// Outcomes records the per-fault resolution, indexed like the sampled
	// collapsed fault list.
	Outcomes []Outcome

	// Coverage is detected/total over the (sampled) collapsed fault list.
	Coverage float64
	// Effort is the test-generation effort in kilo-gate-evaluations
	// (random-phase simulation plus PODEM implications): the reproduction
	// counterpart of the paper's "test generation time".
	Effort int64
	// TestCycles is the total test-application length in clock cycles of
	// the compacted test set: the counterpart of "test generated cycle".
	TestCycles int
	// TestSet holds the compacted test set itself: each sequence is a list
	// of per-cycle PI vectors (one uint64 per primary input; only bit 0 is
	// meaningful). Replaying the set with Replay reproduces at least the
	// campaign's detections; sum of sequence lengths equals TestCycles.
	TestSet [][][]uint64
}

// Detected returns the total number of detected faults.
func (r *Result) Detected() int { return r.RandomDetected + r.DetDetected }

// String renders the headline numbers.
func (r *Result) String() string {
	s := fmt.Sprintf("coverage %.2f%% (%d/%d faults; %d random + %d deterministic), effort %d kEval, %d test cycles",
		100*r.Coverage, r.Detected(), r.TotalFaults, r.RandomDetected, r.DetDetected, r.Effort, r.TestCycles)
	if r.Status == exec.StatusPartial {
		s += fmt.Sprintf(" [partial: %s exhausted, %d skipped]", r.Exhausted, r.Skipped)
	}
	return s
}

// Run executes a full campaign on the circuit: fault collapsing and
// sampling, a random phase with fault dropping, then deterministic PODEM
// over time frames for the remaining faults (each generated test is fault
// simulated against the remaining list). Both phases run on cfg.Workers
// goroutines; results are committed in fault-index order, so every field
// of Result — including Effort and the fault-dropping cascade — is
// byte-identical to a sequential (Workers: 1) run.
func Run(c *gates.Circuit, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), c, cfg)
}

// RunCtx is Run under a context. Cancellation degrades gracefully rather
// than erroring: the campaign stops at the next phase or fault boundary
// and returns its best-so-far Result tagged StatusPartial, with the
// unsearched faults counted as Skipped. The cancellation points are the
// start of each random batch, each fault's produce/commit in the
// deterministic phase, and each PODEM restart. The nil error on a partial
// result is deliberate — a deadline is a budget, not a failure.
func RunCtx(ctx context.Context, c *gates.Circuit, cfg Config) (*Result, error) {
	if cfg.MaxFrames < 1 {
		// A frame window below 1 is meaningless; clamping here keeps
		// frameEscalation from widening the window past the configured cap.
		cfg.MaxFrames = 1
	}
	flist := fault.Sample(fault.Collapse(c), cfg.SampleFaults)
	res := &Result{TotalFaults: len(flist)}
	if len(flist) == 0 {
		return res, nil
	}
	detected := make([]bool, len(flist))
	res.Outcomes = make([]Outcome, len(flist))
	rng := rand.New(rand.NewSource(cfg.Seed))
	exhausted := "" // first budget that cut the campaign short

	// Random phase: batches of 64 parallel sequences. For the compacted
	// test-set length, each newly detected fault nominates the first lane
	// that exposes it; the kept sequences are the union of nominated lanes.
	// Batches are atomic with respect to cancellation: a batch either runs
	// to completion or (when the context dies first) is not started, so a
	// partial result never holds detections without their retained tests.
	var randGateEvals int64
	for batch := 0; batch < cfg.RandomBatches; batch++ {
		if ctx.Err() != nil {
			exhausted = exec.BudgetDeadline
			break
		}
		vectors := wideVectors(cfg.SeqLen, len(c.Inputs), rng.Uint64)
		lanes, evals, err := randomBatch(c, flist, detected, vectors, cfg.Workers)
		if err != nil {
			return nil, err
		}
		randGateEvals += evals
		res.TestCycles += bits.OnesCount64(lanes) * cfg.SeqLen
		for lane := 0; lane < 64; lane++ {
			if lanes&(1<<uint(lane)) != 0 {
				res.TestSet = append(res.TestSet, extractLane(vectors, lane))
			}
		}
	}
	for i, d := range detected {
		if d {
			res.RandomDetected++
			res.Outcomes[i] = OutcomeDetectedRandom
		}
	}
	if cfg.testHookAfterRandom != nil {
		cfg.testHookAfterRandom()
	}

	// Deterministic phase: per fault, escalate the time-frame window; at
	// each window run one deterministic PODEM attempt followed by
	// randomized restarts (randomized backtrace choices escape the
	// unproductive regions a fixed heuristic can wedge into).
	//
	// The per-fault searches are independent — each restart RNG is seeded
	// from (Seed, fault index) — so they are speculated on cfg.Workers
	// goroutines and committed in fault-index order. A commit that
	// generates a test fault-simulates it against the remaining list and
	// publishes drop flags; speculative results for faults an earlier
	// commit dropped are discarded (their search, including its
	// implication count, never happened in the sequential schedule), which
	// keeps Effort and the fault-dropping cascade byte-identical.
	//
	// A panic inside one fault's search is isolated: it becomes an
	// OutcomePanicked entry plus a recorded *exec.ExecError, and every
	// other fault is still processed.
	var detImpl int64
	if exhausted == "" {
		comb := len(c.DFFs) == 0
		frameSchedule := frameEscalation(cfg.MaxFrames)
		var undet []int
		for i := range flist {
			if !detected[i] {
				undet = append(undet, i)
			}
		}
		dropped := make([]atomic.Bool, len(flist))
		err := parallel.OrderedCtx(ctx, cfg.Workers, len(undet),
			func(j int) (detOutcome, error) {
				i := undet[j]
				if dropped[i].Load() {
					// Already dropped by a committed test: the commit side will
					// discard this placeholder. Errors are carried inside the
					// outcome so a speculative search on a dropped fault can
					// never surface one the sequential run would not have seen.
					return detOutcome{}, nil
				}
				o, perr := exec.Guard1("atpg.podem", i, func() (detOutcome, error) {
					return searchFault(ctx, c, flist[i], i, cfg, frameSchedule, comb), nil
				})
				if perr != nil {
					if ee, ok := exec.AsExecError(perr); ok {
						return detOutcome{panicked: ee}, nil
					}
					return detOutcome{err: perr}, nil
				}
				return o, nil
			},
			func(j int, o detOutcome) error {
				i := undet[j]
				if detected[i] {
					return nil // dropped by an earlier committed test
				}
				if o.err != nil {
					return o.err
				}
				if o.panicked != nil {
					res.Errors = append(res.Errors, o.panicked)
					res.Outcomes[i] = OutcomePanicked
					return nil
				}
				if o.cut {
					// A cut search means a budget expired mid-campaign (deadline,
					// or an injected exhaustion): the fault was skipped, so the
					// result must land StatusPartial even if the context recovers
					// before the run ends — Skipped > 0 with StatusComplete would
					// overstate the campaign.
					res.Outcomes[i] = OutcomeSkipped
					res.Skipped++
					if exhausted == "" {
						exhausted = exec.BudgetDeadline
					}
					return nil
				}
				detImpl += o.impl
				switch {
				case o.success:
					detected[i] = true
					res.DetDetected++
					res.Outcomes[i] = OutcomeDetectedPodem
					res.TestCycles += o.frames
					// Fault-simulate the generated test against the remaining
					// faults (test-set reuse / fault dropping).
					res.TestSet = append(res.TestSet, extractLane(o.vec, 0))
					newly, err := logicsim.FaultSimIncrementalWorkers(c, flist, detected, nil, o.vec, 0, cfg.Workers)
					if err != nil {
						return err
					}
					res.DetDetected += newly
					for k := range flist {
						if detected[k] && !dropped[k].Load() {
							dropped[k].Store(true)
							if res.Outcomes[k] == OutcomeNone {
								res.Outcomes[k] = OutcomeDetectedDrop
							}
						}
					}
				case o.untestable:
					res.Untestable++
					res.Outcomes[i] = OutcomeUntestable
				case o.frameLimited:
					res.FrameLimited++
					res.Outcomes[i] = OutcomeFrameLimited
				default:
					res.Aborted++
					res.Outcomes[i] = OutcomeBacktrackLimited
				}
				return nil
			})
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				exhausted = exec.BudgetDeadline
			} else {
				return nil, err
			}
		}
	}

	// Faults the deadline left unresolved become Skipped; a panic-isolated
	// campaign with no deadline is also partial (the panicked faults were
	// never genuinely searched).
	for i := range flist {
		if res.Outcomes[i] == OutcomeNone {
			res.Outcomes[i] = OutcomeSkipped
			res.Skipped++
		}
	}
	if exhausted == "" && len(res.Errors) > 0 {
		exhausted = exec.BudgetPanic
	}
	if exhausted != "" {
		res.Status = exec.StatusPartial
		res.Exhausted = exhausted
	}
	res.Coverage = float64(count(detected)) / float64(len(flist))
	res.Effort = (randGateEvals + detImpl) / 1000
	return res, nil
}

// detOutcome is the result of one fault's full deterministic search.
type detOutcome struct {
	impl         int64
	success      bool
	frames       int
	vec          [][]uint64
	untestable   bool
	frameLimited bool
	aborted      bool
	cut          bool // deadline expired mid-search
	panicked     *exec.ExecError
	err          error
}

// searchFault runs the complete frame-escalation/restart PODEM search for
// one fault. It depends only on (c, f, i, cfg), never on the state of
// other faults, so it can run speculatively on any worker. The context is
// checked at each restart boundary; a mid-search cancellation returns a
// cut outcome rather than a half-trusted classification.
func searchFault(ctx context.Context, c *gates.Circuit, f fault.Fault, i int, cfg Config, frameSchedule []int, comb bool) detOutcome {
	var out detOutcome
	if cfg.testHookSearch != nil {
		cfg.testHookSearch(i)
	}
	// Chaos: the fault site runs under the caller's per-fault guard, so an
	// injected panic becomes an OutcomePanicked entry; an injected error
	// surfaces through the campaign's ordinary error path.
	if err := chaos.Step(chaos.SiteATPGFault); err != nil {
		out.err = err
		return out
	}
	for _, frames := range frameSchedule {
		for restart := 0; restart <= cfg.Restarts; restart++ {
			// The budget chaos site simulates the search budget expiring at a
			// restart boundary, riding the same cut path as a real deadline.
			if ctx.Err() != nil || chaos.Step(chaos.SiteATPGBudget) != nil {
				out.cut = true
				return out
			}
			var rng2 *rand.Rand
			if restart > 0 {
				rng2 = rand.New(rand.NewSource(cfg.Seed + int64(i)*1009 + int64(restart)))
			}
			pr, err := podem(c, f, frames, cfg.BacktrackLimit, rng2)
			if err != nil {
				out.err = err
				return out
			}
			out.impl += pr.Implications
			if pr.Success {
				out.success = true
				out.frames = frames
				out.vec = vectorsFromAssignment(c, pr.Vectors)
				return out
			}
			if !pr.Aborted {
				// The decision tree was exhausted. On a combinational circuit
				// that is a complete untestability proof (every frame repeats
				// the same logic). On a sequential circuit it only proves no
				// test exists within this window, so once the window cap is
				// reached the honest verdict is "frame budget exhausted",
				// never "untestable".
				if comb {
					out.untestable = true
					return out
				}
				if frames == frameSchedule[len(frameSchedule)-1] {
					out.frameLimited = true
					return out
				}
				break // escalate frames
			}
		}
	}
	out.aborted = true
	return out
}

// randomBatch fault-simulates 64 parallel random sequences over the
// undetected faults, marking detections and returning the mask of lanes
// that detected at least one new fault. Faults are independent within a
// batch (each is compared against the shared golden run), so the list is
// partitioned across workers; the lane mask and evaluation count are
// merged per fault index and are identical at every worker count.
func randomBatch(c *gates.Circuit, flist []fault.Fault, detected []bool, vectors [][]uint64, workers int) (uint64, int64, error) {
	good, err := logicsim.New(c)
	if err != nil {
		return 0, 0, err
	}
	golden := good.Run(vectors)
	nGates := int64(c.NumGates())
	laneOf := make([]uint64, len(flist))
	evalsOf := make([]int64, len(flist))
	err = parallel.ForEachWorker(workers, len(flist),
		func() (*logicsim.Sim, error) { return logicsim.New(c) },
		func(bad *logicsim.Sim, i int) error {
			if detected[i] {
				return nil
			}
			bad.Fault = &flist[i]
			bad.Reset()
			for t, v := range vectors {
				po := bad.Step(v)
				evalsOf[i] += nGates
				var diff uint64
				for k, w := range po {
					diff |= w ^ golden[t][k]
				}
				if diff != 0 {
					detected[i] = true
					laneOf[i] = diff & (-diff) // nominate the lowest detecting lane
					break
				}
			}
			return nil
		})
	if err != nil {
		return 0, 0, err
	}
	var lanes uint64
	var evals int64
	for i := range flist {
		lanes |= laneOf[i]
		evals += evalsOf[i]
	}
	return lanes, evals, nil
}

// vectorsFromAssignment converts a PODEM PI assignment (per frame,
// three-valued) into simulator vectors with don't-cares at 0.
func vectorsFromAssignment(c *gates.Circuit, assign [][]int8) [][]uint64 {
	out := make([][]uint64, len(assign))
	for t, row := range assign {
		v := make([]uint64, len(c.Inputs))
		for k, val := range row {
			if val == v1 {
				v[k] = ^uint64(0)
			}
		}
		out[t] = v
	}
	return out
}

// frameEscalation returns the increasing frame counts tried per fault.
// maxFrames must be at least 1 (Run clamps); for smaller values the
// schedule is empty rather than silently exceeding the cap.
func frameEscalation(maxFrames int) []int {
	set := map[int]bool{}
	var out []int
	for _, f := range []int{2, 4, maxFrames} {
		if f >= 1 && f <= maxFrames && !set[f] {
			set[f] = true
			out = append(out, f)
		}
	}
	sort.Ints(out)
	return out
}

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Replay applies a retained test set to the circuit and fault simulates
// the given fault list, returning the number of detected faults. Each
// sequence starts from reset. Replay independently verifies a campaign's
// coverage claim: replaying Result.TestSet over the same (collapsed,
// sampled) fault list detects at least Result.Detected() faults.
func Replay(c *gates.Circuit, testSet [][][]uint64, flist []fault.Fault) (int, error) {
	detected := make([]bool, len(flist))
	for _, seq := range testSet {
		// Widen single-lane vectors back to full words.
		if _, err := logicsim.FaultSimIncremental(c, flist, detected, nil, widenLane(seq), 0); err != nil {
			return 0, err
		}
	}
	return count(detected), nil
}
