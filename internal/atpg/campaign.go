package atpg

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/gates"
	"repro/internal/logicsim"
)

// Config tunes an ATPG campaign.
type Config struct {
	// Seed drives all randomness; campaigns are fully reproducible.
	Seed int64
	// SampleFaults caps the collapsed fault list by even sampling
	// (0 = use every fault).
	SampleFaults int
	// RandomBatches is the number of 64-sequence random batches.
	RandomBatches int
	// SeqLen is the length (clock cycles) of each random sequence.
	SeqLen int
	// MaxFrames bounds the time-frame expansion of the deterministic
	// phase; it should exceed the design's sequential depth.
	MaxFrames int
	// BacktrackLimit bounds PODEM's search per fault, frame count and
	// restart.
	BacktrackLimit int
	// Restarts is the number of randomized PODEM restarts tried per fault
	// and frame count after the deterministic attempt.
	Restarts int
}

// DefaultConfig returns the campaign settings used by the experiment
// harness.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		SampleFaults:   1500,
		RandomBatches:  4,
		SeqLen:         16,
		MaxFrames:      8,
		BacktrackLimit: 60,
		Restarts:       4,
	}
}

// Result reports a completed campaign — the three quantities of the
// paper's Tables 1-3 plus diagnostics.
type Result struct {
	TotalFaults    int
	RandomDetected int
	DetDetected    int
	Untestable     int // proven untestable within MaxFrames
	Aborted        int // backtrack limit hit

	// Coverage is detected/total over the (sampled) collapsed fault list.
	Coverage float64
	// Effort is the test-generation effort in kilo-gate-evaluations
	// (random-phase simulation plus PODEM implications): the reproduction
	// counterpart of the paper's "test generation time".
	Effort int64
	// TestCycles is the total test-application length in clock cycles of
	// the compacted test set: the counterpart of "test generated cycle".
	TestCycles int
	// TestSet holds the compacted test set itself: each sequence is a list
	// of per-cycle PI vectors (one uint64 per primary input; only bit 0 is
	// meaningful). Replaying the set with Replay reproduces at least the
	// campaign's detections; sum of sequence lengths equals TestCycles.
	TestSet [][][]uint64
}

// A testSequence collects cycles of single-lane PI vectors.
func extractLane(vectors [][]uint64, lane int) [][]uint64 {
	out := make([][]uint64, len(vectors))
	for t, v := range vectors {
		row := make([]uint64, len(v))
		for i, w := range v {
			row[i] = (w >> uint(lane)) & 1
		}
		out[t] = row
	}
	return out
}

// Detected returns the total number of detected faults.
func (r *Result) Detected() int { return r.RandomDetected + r.DetDetected }

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("coverage %.2f%% (%d/%d faults; %d random + %d deterministic), effort %d kEval, %d test cycles",
		100*r.Coverage, r.Detected(), r.TotalFaults, r.RandomDetected, r.DetDetected, r.Effort, r.TestCycles)
}

// Run executes a full campaign on the circuit: fault collapsing and
// sampling, a random phase with fault dropping, then deterministic PODEM
// over time frames for the remaining faults (each generated test is fault
// simulated against the remaining list).
func Run(c *gates.Circuit, cfg Config) (*Result, error) {
	flist := fault.Sample(fault.Collapse(c), cfg.SampleFaults)
	res := &Result{TotalFaults: len(flist)}
	if len(flist) == 0 {
		return res, nil
	}
	detected := make([]bool, len(flist))
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Random phase: batches of 64 parallel sequences. For the compacted
	// test-set length, each newly detected fault nominates the first lane
	// that exposes it; the kept sequences are the union of nominated lanes.
	var randGateEvals int64
	for batch := 0; batch < cfg.RandomBatches; batch++ {
		vectors := make([][]uint64, cfg.SeqLen)
		for t := range vectors {
			v := make([]uint64, len(c.Inputs))
			for i := range v {
				v[i] = rng.Uint64()
			}
			vectors[t] = v
		}
		lanes, evals, err := randomBatch(c, flist, detected, vectors)
		if err != nil {
			return nil, err
		}
		randGateEvals += evals
		res.TestCycles += popcount(lanes) * cfg.SeqLen
		for lane := 0; lane < 64; lane++ {
			if lanes&(1<<uint(lane)) != 0 {
				res.TestSet = append(res.TestSet, extractLane(vectors, lane))
			}
		}
	}
	for _, d := range detected {
		if d {
			res.RandomDetected++
		}
	}

	// Deterministic phase: per fault, escalate the time-frame window; at
	// each window run one deterministic PODEM attempt followed by
	// randomized restarts (randomized backtrace choices escape the
	// unproductive regions a fixed heuristic can wedge into).
	frameSchedule := frameEscalation(cfg.MaxFrames)
	var detImpl int64
	for i := range flist {
		if detected[i] {
			continue
		}
		proven := false
	search:
		for _, frames := range frameSchedule {
			for restart := 0; restart <= cfg.Restarts; restart++ {
				var rng2 *rand.Rand
				if restart > 0 {
					rng2 = rand.New(rand.NewSource(cfg.Seed + int64(i)*1009 + int64(restart)))
				}
				pr, err := podem(c, flist[i], frames, cfg.BacktrackLimit, rng2)
				if err != nil {
					return nil, err
				}
				detImpl += pr.Implications
				if pr.Success {
					detected[i] = true
					res.DetDetected++
					res.TestCycles += frames
					// Fault-simulate the generated test against the
					// remaining faults (test-set reuse / fault dropping).
					vec := vectorsFromAssignment(c, pr.Vectors)
					res.TestSet = append(res.TestSet, extractLane(vec, 0))
					newly, err := logicsim.FaultSimIncremental(c, flist, detected, nil, vec, 0)
					if err != nil {
						return nil, err
					}
					res.DetDetected += newly
					proven = true
					break search
				}
				if !pr.Aborted {
					// The decision tree was exhausted: within this frame
					// window the fault is untestable regardless of search
					// order; no point in restarting.
					if frames == frameSchedule[len(frameSchedule)-1] {
						res.Untestable++
						proven = true
						break search
					}
					break // escalate frames
				}
			}
		}
		if !proven && !detected[i] {
			res.Aborted++
		}
	}
	res.Coverage = float64(count(detected)) / float64(len(flist))
	res.Effort = (randGateEvals + detImpl) / 1000
	return res, nil
}

// randomBatch fault-simulates 64 parallel random sequences over the
// undetected faults, marking detections and returning the mask of lanes
// that detected at least one new fault.
func randomBatch(c *gates.Circuit, flist []fault.Fault, detected []bool, vectors [][]uint64) (uint64, int64, error) {
	good, err := logicsim.New(c)
	if err != nil {
		return 0, 0, err
	}
	golden := good.Run(vectors)
	bad, err := logicsim.New(c)
	if err != nil {
		return 0, 0, err
	}
	var lanes uint64
	var evals int64
	nGates := int64(c.NumGates())
	for i := range flist {
		if detected[i] {
			continue
		}
		bad.Fault = &flist[i]
		bad.Reset()
		for t, v := range vectors {
			po := bad.Step(v)
			evals += nGates
			var diff uint64
			for k, w := range po {
				diff |= w ^ golden[t][k]
			}
			if diff != 0 {
				detected[i] = true
				lanes |= diff & (-diff) // nominate the lowest detecting lane
				break
			}
		}
	}
	return lanes, evals, nil
}

// vectorsFromAssignment converts a PODEM PI assignment (per frame,
// three-valued) into simulator vectors with don't-cares at 0.
func vectorsFromAssignment(c *gates.Circuit, assign [][]int8) [][]uint64 {
	out := make([][]uint64, len(assign))
	for t, row := range assign {
		v := make([]uint64, len(c.Inputs))
		for k, val := range row {
			if val == v1 {
				v[k] = ^uint64(0)
			}
		}
		out[t] = v
	}
	return out
}

// frameEscalation returns the increasing frame counts tried per fault.
func frameEscalation(maxFrames int) []int {
	set := map[int]bool{}
	var out []int
	for _, f := range []int{2, 4, maxFrames} {
		if f >= 1 && f <= maxFrames && !set[f] {
			set[f] = true
			out = append(out, f)
		}
	}
	sort.Ints(out)
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Replay applies a retained test set to the circuit and fault simulates
// the given fault list, returning the number of detected faults. Each
// sequence starts from reset. Replay independently verifies a campaign's
// coverage claim: replaying Result.TestSet over the same (collapsed,
// sampled) fault list detects at least Result.Detected() faults.
func Replay(c *gates.Circuit, testSet [][][]uint64, flist []fault.Fault) (int, error) {
	detected := make([]bool, len(flist))
	for _, seq := range testSet {
		// Widen single-lane vectors back to full words (lane 0).
		wide := make([][]uint64, len(seq))
		for t, row := range seq {
			w := make([]uint64, len(row))
			for i, b := range row {
				if b&1 != 0 {
					w[i] = ^uint64(0)
				}
			}
			wide[t] = w
		}
		if _, err := logicsim.FaultSimIncremental(c, flist, detected, nil, wide, 0); err != nil {
			return 0, err
		}
	}
	return count(detected), nil
}
