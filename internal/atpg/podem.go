// Package atpg implements automatic test pattern generation for
// synchronous gate-level netlists under the single stuck-at fault model:
// a random phase (bit-parallel sequential fault simulation with fault
// dropping) followed by a deterministic phase (PODEM over time-frame
// expansion). The paper's evaluation metrics — fault coverage, test
// generation time and test application cycles — are produced by the
// campaign in campaign.go.
package atpg

import (
	"math/rand"

	"repro/internal/fault"
	"repro/internal/gates"
)

// Three-valued logic values.
const (
	v0 int8 = 0
	v1 int8 = 1
	vX int8 = 2
)

func inv3(v int8) int8 {
	switch v {
	case v0:
		return v1
	case v1:
		return v0
	}
	return vX
}

// frameSim simulates the good and faulty circuits over T time frames with
// three-valued logic. Frame 0 starts from the all-zero reset state.
type frameSim struct {
	c      *gates.Circuit
	order  []int
	frames int
	flt    fault.Fault
	// pi[t][k] is the assigned value of primary input k in frame t.
	pi [][]int8
	// good[t][g], bad[t][g] are the circuit values.
	good, bad [][]int8
	dffIx     map[int]int
	piIx      map[int]int
	rng       *rand.Rand
	// obsDist[g] is the static fanout distance from gate g to the nearest
	// primary output (crossing flip-flops freely); used to steer the
	// D-frontier toward observable logic.
	obsDist []int
	fanout  [][]int
	// implications counts gate evaluations, the ATPG effort measure.
	implications int64
}

func newFrameSim(c *gates.Circuit, flt fault.Fault, frames int) (*frameSim, error) {
	order, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	fs := &frameSim{c: c, order: order, frames: frames, flt: flt, dffIx: map[int]int{}, piIx: map[int]int{}}
	for i, d := range c.DFFs {
		fs.dffIx[d] = i
	}
	for i, id := range c.Inputs {
		fs.piIx[id] = i
	}
	fs.fanout = make([][]int, len(c.Gates))
	for _, g := range c.Gates {
		for _, in := range g.In {
			fs.fanout[in] = append(fs.fanout[in], g.ID)
		}
	}
	fs.obsDist = make([]int, len(c.Gates))
	const inf = 1 << 29
	for i := range fs.obsDist {
		fs.obsDist[i] = inf
	}
	queue := make([]int, 0, len(c.Gates))
	for _, o := range c.Outputs {
		if fs.obsDist[o] == inf {
			fs.obsDist[o] = 0
			queue = append(queue, o)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, in := range c.Gates[id].In {
			if fs.obsDist[in] > fs.obsDist[id]+1 {
				fs.obsDist[in] = fs.obsDist[id] + 1
				queue = append(queue, in)
			}
		}
	}
	fs.pi = make([][]int8, frames)
	fs.good = make([][]int8, frames)
	fs.bad = make([][]int8, frames)
	for t := 0; t < frames; t++ {
		fs.pi[t] = make([]int8, len(c.Inputs))
		for k := range fs.pi[t] {
			fs.pi[t][k] = vX
		}
		fs.good[t] = make([]int8, len(c.Gates))
		fs.bad[t] = make([]int8, len(c.Gates))
	}
	return fs, nil
}

func eval3(kind gates.Kind, ins []int8) int8 {
	switch kind {
	case gates.KConst0:
		return v0
	case gates.KConst1:
		return v1
	case gates.KBuf:
		return ins[0]
	case gates.KNot:
		return inv3(ins[0])
	case gates.KAnd, gates.KNand:
		out := v1
		for _, x := range ins {
			if x == v0 {
				out = v0
				break
			}
			if x == vX {
				out = vX
			}
		}
		if kind == gates.KNand {
			out = inv3(out)
		}
		return out
	case gates.KOr, gates.KNor:
		out := v0
		for _, x := range ins {
			if x == v1 {
				out = v1
				break
			}
			if x == vX {
				out = vX
			}
		}
		if kind == gates.KNor {
			out = inv3(out)
		}
		return out
	case gates.KXor, gates.KXnor:
		a, b := ins[0], ins[1]
		if a == vX || b == vX {
			return vX
		}
		out := a ^ b
		if kind == gates.KXnor {
			out = inv3(out)
		}
		return out
	}
	return vX
}

// simulate recomputes both circuits across all frames from the current PI
// assignment.
func (fs *frameSim) simulate() {
	piIx := fs.piIx
	var insG, insB []int8
	for t := 0; t < fs.frames; t++ {
		for _, id := range fs.order {
			g := fs.c.Gates[id]
			fs.implications++
			var gv, bv int8
			switch g.Kind {
			case gates.KInput:
				gv = fs.pi[t][piIx[id]]
				bv = gv
			case gates.KDFF:
				if t == 0 {
					gv, bv = v0, v0 // reset state
				} else {
					// Q in frame t is D of frame t-1, with a possible
					// fault on the D pin.
					d := g.In[0]
					gv = fs.good[t-1][d]
					bv = fs.bad[t-1][d]
					if fs.flt.Gate == id && fs.flt.Pin == 0 {
						bv = bool2v(fs.flt.Val)
					}
				}
			default:
				insG = insG[:0]
				insB = insB[:0]
				for pin, in := range g.In {
					pg := fs.good[t][in]
					pb := fs.bad[t][in]
					if fs.flt.Gate == id && fs.flt.Pin == pin {
						pb = bool2v(fs.flt.Val)
					}
					insG = append(insG, pg)
					insB = append(insB, pb)
				}
				gv = eval3(g.Kind, insG)
				bv = eval3(g.Kind, insB)
			}
			if fs.flt.Gate == id && fs.flt.Pin < 0 {
				bv = bool2v(fs.flt.Val)
			}
			fs.good[t][id] = gv
			fs.bad[t][id] = bv
		}
	}
}

func bool2v(b bool) int8 {
	if b {
		return v1
	}
	return v0
}

// detected reports whether any primary output in any frame shows a binary
// good/bad difference.
func (fs *frameSim) detected() bool {
	for t := 0; t < fs.frames; t++ {
		for _, o := range fs.c.Outputs {
			g, b := fs.good[t][o], fs.bad[t][o]
			if g != vX && b != vX && g != b {
				return true
			}
		}
	}
	return false
}

// siteNet returns the net whose good value determines fault activation:
// the gate's output for output faults, the driving net for pin faults.
func (fs *frameSim) siteNet() int {
	if fs.flt.Pin < 0 {
		return fs.flt.Gate
	}
	return fs.c.Gates[fs.flt.Gate].In[fs.flt.Pin]
}

// activated reports whether the fault is excited in some frame (the good
// value at the fault site is the complement of the stuck value), and
// whether excitation has become impossible (the site is bound to the
// stuck value in every frame).
func (fs *frameSim) activated() (bool, bool) {
	site := fs.siteNet()
	stuck := bool2v(fs.flt.Val)
	conflict := true
	for t := 0; t < fs.frames; t++ {
		g := fs.good[t][site]
		if g != vX && g != stuck {
			return true, false
		}
		if g == vX {
			conflict = false
		}
	}
	return false, conflict
}

// objective returns a (gate, frame, value) goal for the good circuit, or
// ok=false when no useful objective exists (D-frontier empty).
func (fs *frameSim) objective() (gate, frame int, val int8, ok bool) {
	// Activation first: make the good value at the fault site the
	// complement of the stuck value.
	act, _ := fs.activated()
	if !act {
		want := inv3(bool2v(fs.flt.Val))
		site := fs.siteNet()
		for t := 0; t < fs.frames; t++ {
			if fs.good[t][site] == vX {
				return site, t, want, true
			}
		}
		return 0, 0, 0, false
	}
	// Propagation: among all D-frontier gates — X-output gates with a
	// fault-effect input — pick the one statically closest to a primary
	// output and set one of its X inputs to the non-controlling value.
	bestGate, bestFrame := -1, -1
	bestDist := 1 << 30
	for t := 0; t < fs.frames; t++ {
		for _, id := range fs.order {
			g := fs.c.Gates[id]
			if g.Kind == gates.KInput || g.Kind == gates.KDFF || g.Kind == gates.KConst0 || g.Kind == gates.KConst1 {
				continue
			}
			if fs.good[t][id] != vX && fs.bad[t][id] != vX {
				continue
			}
			hasD := false
			for pin, in := range g.In {
				a, b := fs.good[t][in], fs.bad[t][in]
				if id == fs.flt.Gate && pin == fs.flt.Pin {
					// The pin itself carries the fault: effective bad value
					// is the stuck value.
					b = bool2v(fs.flt.Val)
				}
				if a != vX && b != vX && a != b {
					hasD = true
					break
				}
			}
			if !hasD {
				continue
			}
			if fs.obsDist[id] < bestDist {
				bestDist = fs.obsDist[id]
				bestGate, bestFrame = id, t
			}
		}
	}
	if bestGate < 0 {
		// No D-frontier: the excited frames are masked. Re-excite the
		// fault in another frame whose site is still unjustified — a
		// register fault may be observable only in a frame the first
		// excitation cannot reach.
		want := inv3(bool2v(fs.flt.Val))
		site := fs.siteNet()
		for t := 0; t < fs.frames; t++ {
			if fs.good[t][site] == vX {
				return site, t, want, true
			}
		}
		return 0, 0, 0, false
	}
	g := fs.c.Gates[bestGate]
	nc, has := nonControlling(g.Kind)
	for _, in := range g.In {
		if fs.good[bestFrame][in] == vX {
			if has {
				return in, bestFrame, nc, true
			}
			return in, bestFrame, v0, true // XOR-ish: either value works
		}
	}
	return 0, 0, 0, false
}

// nonControlling returns the value an input must take so as not to mask
// the other inputs.
func nonControlling(k gates.Kind) (int8, bool) {
	switch k {
	case gates.KAnd, gates.KNand:
		return v1, true
	case gates.KOr, gates.KNor:
		return v0, true
	default:
		return vX, false
	}
}

// backtrace walks an objective back to an unassigned primary input,
// following X-valued paths in the good circuit and accounting for
// inversions. It returns ok=false when every path dead-ends (e.g. into
// the frame-0 reset state or a constant).
func (fs *frameSim) backtrace(gate, frame int, val int8) (pi, piFrame int, piVal int8, ok bool) {
	piIx := fs.piIx
	id, t, v := gate, frame, val
	for depth := 0; depth < len(fs.c.Gates)*fs.frames+8; depth++ {
		g := fs.c.Gates[id]
		switch g.Kind {
		case gates.KInput:
			k := piIx[id]
			if fs.pi[t][k] != vX {
				return 0, 0, 0, false // already bound; path dead
			}
			return k, t, v, true
		case gates.KConst0, gates.KConst1:
			return 0, 0, 0, false
		case gates.KDFF:
			if t == 0 {
				return 0, 0, 0, false // reset state is fixed
			}
			id, t = g.In[0], t-1
			continue
		case gates.KNot, gates.KNand, gates.KNor, gates.KXnor:
			v = inv3(v)
		}
		// Choose an X input to pursue; randomizing the choice across
		// restarts diversifies the search.
		var xs []int
		for _, in := range g.In {
			if fs.good[t][in] == vX {
				xs = append(xs, in)
			}
		}
		if len(xs) == 0 {
			return 0, 0, 0, false
		}
		next := xs[0]
		if fs.rng != nil && len(xs) > 1 {
			next = xs[fs.rng.Intn(len(xs))]
		}
		// For XOR-like gates the required input value is unconstrained
		// (other inputs may be known); any binary value can work. Keep v
		// as the heuristic target.
		id = next
		if v == vX {
			v = v0
		}
	}
	return 0, 0, 0, false
}

// podemResult is the outcome of a deterministic test-generation attempt.
type podemResult struct {
	Success      bool
	Aborted      bool // backtrack limit hit: fault not proven untestable
	Vectors      [][]int8
	Implications int64
	Backtracks   int
}

// podem runs PODEM for one fault over the given number of time frames,
// with a backtrack limit. A non-nil rng randomizes backtrace path and
// value choices, which lets a caller escape unproductive search regions by
// restarting. On success, Vectors holds one PI assignment per frame (X
// entries are don't-cares).
func podem(c *gates.Circuit, flt fault.Fault, frames, backtrackLimit int, rng *rand.Rand) (*podemResult, error) {
	fs, err := newFrameSim(c, flt, frames)
	if err != nil {
		return nil, err
	}
	fs.rng = rng
	type decision struct {
		pi, frame int
		val       int8
		flipped   bool
	}
	var stack []decision
	res := &podemResult{}
	for {
		fs.simulate()
		if fs.detected() {
			res.Success = true
			res.Vectors = fs.pi
			res.Implications = fs.implications
			return res, nil
		}
		_, conflict := fs.activated()
		var gate, frame int
		var val int8
		objOK := false
		if !conflict {
			gate, frame, val, objOK = fs.objective()
		}
		advanced := false
		if objOK {
			if pi, pf, pv, ok := fs.backtrace(gate, frame, val); ok {
				fs.pi[pf][pi] = pv
				stack = append(stack, decision{pi, pf, pv, false})
				advanced = true
			}
		}
		if advanced {
			continue
		}
		// Backtrack.
		for {
			if len(stack) == 0 {
				res.Implications = fs.implications
				res.Backtracks++
				return res, nil // exhausted: untestable within frames
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.val = inv3(top.val)
				fs.pi[top.frame][top.pi] = top.val
				res.Backtracks++
				break
			}
			fs.pi[top.frame][top.pi] = vX
			stack = stack[:len(stack)-1]
		}
		if res.Backtracks > backtrackLimit {
			res.Aborted = true
			res.Implications = fs.implications
			return res, nil
		}
	}
}
