package atpg

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/fault"
	"repro/internal/gates"
	"repro/internal/logicsim"
	"repro/internal/rtl"
	"repro/internal/sched"
)

// andCircuit builds z = AND(x, y).
func andCircuit(t *testing.T) (*gates.Circuit, int, int, int) {
	t.Helper()
	b := gates.NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	z := b.And(x, y)
	b.Output("z", z)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return c, x, y, z
}

func TestPodemCombinationalBasics(t *testing.T) {
	c, x, _, z := andCircuit(t)
	cases := []struct {
		f        fault.Fault
		testable bool
	}{
		{fault.Fault{Gate: z, Pin: -1, Val: false}, true}, // needs 1,1
		{fault.Fault{Gate: z, Pin: -1, Val: true}, true},  // needs a 0 input
		{fault.Fault{Gate: z, Pin: 0, Val: true}, true},   // x=0, y=1
		{fault.Fault{Gate: z, Pin: 1, Val: false}, true},  // y=1, x=1
		{fault.Fault{Gate: x, Pin: -1, Val: false}, true},
	}
	for _, cse := range cases {
		pr, err := podem(c, cse.f, 1, 20, nil)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Success != cse.testable {
			t.Errorf("fault %v: success=%v, want %v", cse.f, pr.Success, cse.testable)
		}
		if pr.Success {
			// Verify the generated vector actually detects the fault.
			if !vectorDetects(t, c, cse.f, pr.Vectors) {
				t.Errorf("fault %v: generated vector does not detect", cse.f)
			}
		}
	}
}

// vectorDetects replays a PODEM assignment on the bit-parallel simulator
// and checks good/faulty divergence.
func vectorDetects(t *testing.T, c *gates.Circuit, f fault.Fault, assign [][]int8) bool {
	t.Helper()
	vec := vectorsFromAssignment(c, assign)
	res, err := logicsim.FaultSim(c, []fault.Fault{f}, vec)
	if err != nil {
		t.Fatal(err)
	}
	return res.Detected[0]
}

func TestPodemUntestableRedundancy(t *testing.T) {
	// z = OR(x, NOT x) is constantly 1: z s-a-1 is untestable.
	b := gates.NewBuilder()
	x := b.Input("x")
	z := b.Or(x, b.Not(x))
	b.Output("z", z)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := podem(c, fault.Fault{Gate: z, Pin: -1, Val: true}, 1, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Success {
		t.Fatal("redundant fault reported testable")
	}
	if pr.Aborted {
		t.Fatal("tiny search space should exhaust, not abort")
	}
}

func TestPodemSequentialDepth(t *testing.T) {
	// A 3-deep DFF pipeline: q3 <= q2 <= q1 <= x, out = q3. A fault on
	// q1's D pin needs 3+ frames to reach the output.
	b := gates.NewBuilder()
	x := b.Input("x")
	q1 := b.DFF("q1")
	q2 := b.DFF("q2")
	q3 := b.DFF("q3")
	b.SetD(q1, x)
	b.SetD(q2, q1)
	b.SetD(q3, q2)
	b.Output("o", q3)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	f := fault.Fault{Gate: q1, Pin: 0, Val: false}
	// 4 frames: inject at frame 0/1, observe at frame 3.
	pr, err := podem(c, f, 4, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Success {
		t.Fatal("pipeline fault not found with sufficient frames")
	}
	if !vectorDetects(t, c, f, pr.Vectors) {
		t.Fatal("generated sequence does not detect")
	}
	// With only 2 frames the fault effect cannot reach the output.
	pr2, err := podem(c, f, 2, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pr2.Success {
		t.Fatal("2 frames cannot expose a depth-3 fault")
	}
}

func TestPodemGeneratedVectorsAlwaysDetect(t *testing.T) {
	// Property over a synthesized datapath: every PODEM success must be
	// confirmed by the independent fault simulator.
	c := benchCircuit(t, dfg.BenchTseng, 4)
	flist := fault.Sample(fault.Collapse(c), 120)
	confirmed, successes := 0, 0
	for i := range flist {
		for restart := 0; restart <= 2; restart++ {
			var rng *rand.Rand
			if restart > 0 {
				rng = rand.New(rand.NewSource(int64(i*7 + restart)))
			}
			pr, err := podem(c, flist[i], 6, 40, rng)
			if err != nil {
				t.Fatal(err)
			}
			if pr.Success {
				successes++
				if vectorDetects(t, c, flist[i], pr.Vectors) {
					confirmed++
				} else {
					t.Errorf("fault %v: PODEM vector fails fault simulation", flist[i])
				}
				break
			}
			if !pr.Aborted {
				break
			}
		}
	}
	if successes == 0 {
		t.Fatal("PODEM found no tests at all on a small datapath")
	}
	if confirmed != successes {
		t.Fatalf("only %d of %d PODEM tests confirmed", confirmed, successes)
	}
}

// benchCircuit synthesizes a benchmark with left-edge allocation and
// generates its normal-mode netlist.
func benchCircuit(t *testing.T, name string, width int) *gates.Circuit {
	t.Helper()
	g, err := dfg.ByName(name, width)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewProblem(g).ASAP()
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	regOf, n := alloc.RegisterLeftEdge(g, life)
	a := alloc.BindModules(g, s, sched.ExactClass, regOf, n)
	d, err := etpn.Build(g, s, a, life, etpn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Generate(d, width, rtl.NormalMode)
	if err != nil {
		t.Fatal(err)
	}
	return nl.C
}

func TestCampaignTseng(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	cfg := DefaultConfig(7)
	cfg.SampleFaults = 300
	cfg.RandomBatches = 2
	res, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFaults == 0 || res.TotalFaults > 300 {
		t.Fatalf("fault count %d", res.TotalFaults)
	}
	if res.Coverage < 0.7 {
		t.Errorf("coverage %.2f unexpectedly low for a small datapath", res.Coverage)
	}
	if res.Coverage > 1 || res.Detected() > res.TotalFaults {
		t.Errorf("inconsistent result %+v", res)
	}
	if res.TestCycles <= 0 || res.Effort <= 0 {
		t.Errorf("missing effort/cycle accounting: %+v", res)
	}
	if !strings.Contains(res.String(), "coverage") {
		t.Error("result rendering broken")
	}
}

func TestCampaignReproducible(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	cfg := DefaultConfig(42)
	cfg.SampleFaults = 150
	cfg.RandomBatches = 1
	cfg.Restarts = 1
	r1, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Coverage != r2.Coverage || r1.Effort != r2.Effort || r1.TestCycles != r2.TestCycles {
		t.Fatalf("campaign not reproducible: %+v vs %+v", r1, r2)
	}
}

func TestCampaignSeedSensitivity(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	cfg1 := DefaultConfig(1)
	cfg1.SampleFaults = 150
	cfg1.RandomBatches = 1
	cfg2 := cfg1
	cfg2.Seed = 2
	r1, err := Run(c, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds should change the random phase somewhere (cycles or
	// detection split), while staying in the same coverage ballpark.
	if r1.Coverage < 0.5 || r2.Coverage < 0.5 {
		t.Errorf("coverage collapsed: %f %f", r1.Coverage, r2.Coverage)
	}
}

func TestMoreRandomBatchesNeverHurtCoverage(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	base := DefaultConfig(3)
	base.SampleFaults = 200
	base.RandomBatches = 1
	base.Restarts = 0
	base.MaxFrames = 2
	more := base
	more.RandomBatches = 4
	r1, err := Run(c, base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c, more)
	if err != nil {
		t.Fatal(err)
	}
	if r2.RandomDetected < r1.RandomDetected {
		t.Errorf("more random batches detected fewer faults: %d vs %d", r2.RandomDetected, r1.RandomDetected)
	}
}

func TestFrameEscalation(t *testing.T) {
	if got := frameEscalation(8); len(got) != 3 || got[0] != 2 || got[2] != 8 {
		t.Errorf("frameEscalation(8) = %v", got)
	}
	if got := frameEscalation(2); len(got) != 1 || got[0] != 2 {
		t.Errorf("frameEscalation(2) = %v", got)
	}
	if got := frameEscalation(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("frameEscalation(1) = %v", got)
	}
	if got := frameEscalation(4); len(got) != 2 || got[1] != 4 {
		t.Errorf("frameEscalation(4) = %v", got)
	}
	// Below the clamp boundary no frame count may be scheduled at all:
	// widening past the configured cap is exactly the bug Run's clamp
	// guards against.
	for _, mf := range []int{0, -1} {
		if got := frameEscalation(mf); len(got) != 0 {
			t.Errorf("frameEscalation(%d) = %v, want empty", mf, got)
		}
	}
}

// TestMaxFramesClampRegression pins the MaxFrames validation: a campaign
// configured with MaxFrames 0 must behave exactly like MaxFrames 1 (one
// single-frame PODEM window), not silently run a wider window.
func TestMaxFramesClampRegression(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	base := DefaultConfig(5)
	base.SampleFaults = 120
	base.RandomBatches = 1
	base.Restarts = 1
	run := func(maxFrames int) *Result {
		cfg := base
		cfg.MaxFrames = maxFrames
		res, err := Run(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r0, r1 := run(0), run(1)
	if !reflect.DeepEqual(r0, r1) {
		t.Errorf("MaxFrames 0 and 1 diverge:\n%+v\nvs\n%+v", r0, r1)
	}
	// A single-frame window can only produce single-cycle deterministic
	// tests: every deterministic sequence in the retained test set must
	// have length 1 (random-phase sequences keep SeqLen cycles).
	for _, seq := range r0.TestSet {
		if len(seq) != base.SeqLen && len(seq) != 1 {
			t.Errorf("MaxFrames 0 produced a %d-cycle test window", len(seq))
		}
	}
}

// TestCampaignWorkersEquivalence is the determinism contract of the
// parallel engine: any worker count must produce a bit-identical Result.
func TestCampaignWorkersEquivalence(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	base := DefaultConfig(9)
	base.SampleFaults = 200
	base.RandomBatches = 2
	run := func(workers int) *Result {
		cfg := base
		cfg.Workers = workers
		res, err := Run(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("Workers=%d diverges from sequential:\n%+v\nvs\n%+v", workers, got, want)
		}
	}
}

func TestEval3TruthTables(t *testing.T) {
	// Three-valued evaluation must agree with binary evaluation on binary
	// inputs and be conservative (X in, X or refined out).
	kinds := []gates.Kind{gates.KAnd, gates.KOr, gates.KNand, gates.KNor, gates.KXor, gates.KXnor}
	for _, k := range kinds {
		for a := int8(0); a <= 2; a++ {
			for b := int8(0); b <= 2; b++ {
				out := eval3(k, []int8{a, b})
				if a != vX && b != vX {
					if out == vX {
						t.Errorf("%v(%d,%d) = X on binary inputs", k, a, b)
					}
					continue
				}
				// Conservativeness: if out is binary, it must equal the
				// value for every completion of the X inputs.
				if out != vX {
					for _, av := range completions(a) {
						for _, bv := range completions(b) {
							if eval3(k, []int8{av, bv}) != out {
								t.Errorf("%v(%d,%d) = %d not justified", k, a, b, out)
							}
						}
					}
				}
			}
		}
	}
	if eval3(gates.KNot, []int8{v0}) != v1 || eval3(gates.KNot, []int8{vX}) != vX {
		t.Error("NOT truth table wrong")
	}
	if eval3(gates.KConst1, nil) != v1 || eval3(gates.KConst0, nil) != v0 {
		t.Error("const evaluation wrong")
	}
}

func completions(v int8) []int8 {
	if v == vX {
		return []int8{v0, v1}
	}
	return []int8{v}
}

func TestCount(t *testing.T) {
	if count([]bool{true, false, true}) != 2 {
		t.Error("count wrong")
	}
	if count(nil) != 0 {
		t.Error("count of nil wrong")
	}
}

func TestVectorsFromAssignment(t *testing.T) {
	c, _, _, _ := andCircuit(t)
	vec := vectorsFromAssignment(c, [][]int8{{v1, vX}, {v0, v1}})
	if len(vec) != 2 || vec[0][0] != ^uint64(0) || vec[0][1] != 0 || vec[1][1] != ^uint64(0) {
		t.Errorf("vectors wrong: %v", vec)
	}
}

func TestRunEmptyFaultList(t *testing.T) {
	// A circuit whose outputs are constants yields an empty collapsed
	// fault list in the observable cone... build input-free logic.
	b := gates.NewBuilder()
	x := b.Input("x")
	_ = x
	b.Output("z", b.Const(true))
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 0 && res.TotalFaults != 0 {
		t.Logf("const circuit: %+v", res) // tolerated: const gate output faults exist
	}
}

// The retained test set must independently reproduce the campaign's
// detections when replayed, and its total length must equal TestCycles.
func TestTestSetReplayReproducesCoverage(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	cfg := DefaultConfig(11)
	cfg.SampleFaults = 250
	cfg.RandomBatches = 2
	res, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TestSet) == 0 {
		t.Fatal("campaign retained no test set")
	}
	total := 0
	for _, seq := range res.TestSet {
		total += len(seq)
	}
	if total != res.TestCycles {
		t.Errorf("test set holds %d cycles, TestCycles reports %d", total, res.TestCycles)
	}
	flist := fault.Sample(fault.Collapse(c), cfg.SampleFaults)
	got, err := Replay(c, res.TestSet, flist)
	if err != nil {
		t.Fatal(err)
	}
	if got < res.Detected() {
		t.Errorf("replay detected %d faults, campaign claimed %d", got, res.Detected())
	}
}

// Budget exhaustion must never masquerade as a testability proof: a
// fault abandoned because MaxFrames or BacktrackLimit ran out is
// FrameLimited/BacktrackLimited, and only a combinational tree
// exhaustion may claim OutcomeUntestable. (The constructions behind
// these assertions live in hardening_test.go.)
func TestBudgetExhaustionIsNotUntestable(t *testing.T) {
	// Sequential circuit, frame window too narrow to reach the fault:
	// the search runs out of frames, which proves nothing.
	seq := pipelineCircuit(t)
	cfg := DefaultConfig(5)
	cfg.RandomBatches = 0
	cfg.MaxFrames = 1
	res, err := Run(seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Untestable != 0 {
		t.Errorf("frame-starved sequential campaign claims %d untestable faults", res.Untestable)
	}
	for i, o := range res.Outcomes {
		if o == OutcomeUntestable {
			t.Errorf("fault %d: outcome Untestable under an exhausted frame budget", i)
		}
	}
	// Combinational circuit with a genuinely redundant fault: tree
	// exhaustion there is a proof and must be reported as such.
	comb := redundantCircuit(t)
	ccfg := DefaultConfig(5)
	ccfg.RandomBatches = 0
	cres, err := Run(comb, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Untestable == 0 {
		t.Error("redundant combinational circuit yields no untestable faults")
	}
	if cres.FrameLimited != 0 {
		t.Errorf("combinational campaign reports %d frame-limited faults", cres.FrameLimited)
	}
}
