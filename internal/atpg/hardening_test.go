package atpg

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dfg"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/gates"
)

// redundantCircuit builds z = OR(x, NOT x): constantly 1, so z s-a-1 is
// provably (combinationally) untestable.
func redundantCircuit(t *testing.T) *gates.Circuit {
	t.Helper()
	b := gates.NewBuilder()
	x := b.Input("x")
	z := b.Or(x, b.Not(x))
	b.Output("z", z)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// pipelineCircuit builds a 3-deep DFF pipeline whose input-side faults
// need 4 time frames to reach the output.
func pipelineCircuit(t *testing.T) *gates.Circuit {
	t.Helper()
	b := gates.NewBuilder()
	x := b.Input("x")
	q1 := b.DFF("q1")
	q2 := b.DFF("q2")
	q3 := b.DFF("q3")
	b.SetD(q1, x)
	b.SetD(q2, q1)
	b.SetD(q3, q2)
	b.Output("o", q3)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestOutcomeSplitUntestableVsFrameBudget is the conflation fix: a
// combinational redundancy is proven untestable, while a sequential fault
// that merely outruns a clamped frame window is frame-budget-limited —
// never claimed untestable.
func TestOutcomeSplitUntestableVsFrameBudget(t *testing.T) {
	// Combinational proof: the redundant fault must come back
	// OutcomeUntestable with a generous backtrack budget.
	cfg := DefaultConfig(1)
	cfg.RandomBatches = 0 // random patterns cannot detect it anyway; keep the run minimal
	cfg.BacktrackLimit = 1000
	res, err := Run(redundantCircuit(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Untestable == 0 {
		t.Errorf("redundant circuit proved no fault untestable: %+v", res)
	}
	if res.FrameLimited != 0 {
		t.Errorf("combinational circuit reported frame-limited faults: %+v", res)
	}
	for i, o := range res.Outcomes {
		if o == OutcomeFrameLimited {
			t.Errorf("fault %d frame-limited on a combinational circuit", i)
		}
	}

	// Frame budget: the depth-3 pipeline under MaxFrames 2 cannot expose
	// its input-side faults, and the decision tree exhausts. That must be
	// OutcomeFrameLimited, not an untestability claim — with MaxFrames 8
	// the same campaign detects them.
	seq := DefaultConfig(1)
	seq.RandomBatches = 0
	seq.BacktrackLimit = 1000
	seq.MaxFrames = 2
	narrow, err := Run(pipelineCircuit(t), seq)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Untestable != 0 {
		t.Errorf("clamped frame window claimed %d untestable faults: %+v", narrow.Untestable, narrow)
	}
	if narrow.FrameLimited == 0 {
		t.Errorf("no fault reported frame-limited under a too-small window: %+v", narrow)
	}
	seq.MaxFrames = 8
	wide, err := Run(pipelineCircuit(t), seq)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Detected() <= narrow.Detected() {
		t.Errorf("widening the frame window did not recover frame-limited faults: %d vs %d",
			wide.Detected(), narrow.Detected())
	}
}

// TestOutcomeBacktrackLimitedDistinct pins the other half of the split: a
// starved backtrack budget yields OutcomeBacktrackLimited (testability
// unknown), never an untestability proof.
func TestOutcomeBacktrackLimitedDistinct(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	cfg := DefaultConfig(5)
	cfg.SampleFaults = 150
	cfg.RandomBatches = 0
	cfg.Restarts = 0
	cfg.BacktrackLimit = 0 // every nontrivial search aborts immediately
	res, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted == 0 {
		t.Fatalf("zero backtrack budget aborted nothing: %+v", res)
	}
	for i, o := range res.Outcomes {
		if o == OutcomeUntestable {
			t.Errorf("fault %d claimed untestable under a starved backtrack budget", i)
		}
	}
	if res.Status != exec.StatusComplete {
		t.Errorf("budget-limited but finished campaign is %v, want complete", res.Status)
	}
}

// TestOutcomesConsistentWithCounters cross-checks the per-fault outcome
// vector against the aggregate counters on a real campaign.
func TestOutcomesConsistentWithCounters(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	cfg := DefaultConfig(7)
	cfg.SampleFaults = 200
	cfg.RandomBatches = 2
	res, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != res.TotalFaults {
		t.Fatalf("outcome vector covers %d of %d faults", len(res.Outcomes), res.TotalFaults)
	}
	tally := map[Outcome]int{}
	for _, o := range res.Outcomes {
		tally[o]++
	}
	if tally[OutcomeNone] != 0 {
		t.Errorf("%d faults left unresolved in a complete campaign", tally[OutcomeNone])
	}
	if got := tally[OutcomeDetectedRandom]; got != res.RandomDetected {
		t.Errorf("random outcomes %d, counter %d", got, res.RandomDetected)
	}
	if got := tally[OutcomeDetectedPodem] + tally[OutcomeDetectedDrop]; got != res.DetDetected {
		t.Errorf("deterministic outcomes %d, counter %d", got, res.DetDetected)
	}
	if got := tally[OutcomeUntestable]; got != res.Untestable {
		t.Errorf("untestable outcomes %d, counter %d", got, res.Untestable)
	}
	if got := tally[OutcomeFrameLimited]; got != res.FrameLimited {
		t.Errorf("frame-limited outcomes %d, counter %d", got, res.FrameLimited)
	}
	if got := tally[OutcomeBacktrackLimited]; got != res.Aborted {
		t.Errorf("backtrack outcomes %d, counter %d", got, res.Aborted)
	}
	detected := 0
	for _, o := range res.Outcomes {
		if o.Detected() {
			detected++
		}
	}
	if detected != res.Detected() {
		t.Errorf("Outcome.Detected tally %d, Result.Detected %d", detected, res.Detected())
	}
}

// TestCampaignPanicIsolation is the injected-panic acceptance criterion:
// a fault whose PODEM evaluation panics yields a structured ExecError and
// a Partial campaign; the process never crashes and every remaining fault
// is still processed.
func TestCampaignPanicIsolation(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig(9)
		cfg.SampleFaults = 120
		cfg.RandomBatches = 1
		cfg.Workers = workers
		var searches atomic.Int32
		cfg.testHookSearch = func(i int) {
			if searches.Add(1) <= 3 { // poison the first few searches
				panic("podem blew up")
			}
		}
		res, err := RunCtx(context.Background(), c, cfg)
		if err != nil {
			t.Fatalf("workers=%d: isolated panic escaped as error: %v", workers, err)
		}
		if res.Status != exec.StatusPartial || res.Exhausted != exec.BudgetPanic {
			t.Fatalf("workers=%d: status %v/%q, want partial/panic", workers, res.Status, res.Exhausted)
		}
		if len(res.Errors) == 0 {
			t.Fatalf("workers=%d: no ExecError recorded", workers)
		}
		for _, ee := range res.Errors {
			if ee.Stage != "atpg.podem" || ee.Value != "podem blew up" || len(ee.Stack) == 0 {
				t.Errorf("workers=%d: malformed ExecError %+v", workers, ee)
			}
			if res.Outcomes[ee.Index] != OutcomePanicked {
				t.Errorf("workers=%d: fault %d outcome %v, want panicked", workers, ee.Index, res.Outcomes[ee.Index])
			}
		}
		// Every non-poisoned fault must still be resolved.
		for i, o := range res.Outcomes {
			if o == OutcomeNone || o == OutcomeSkipped {
				t.Errorf("workers=%d: fault %d left %v after isolated panics", workers, i, o)
			}
		}
		if res.Coverage <= 0 {
			t.Errorf("workers=%d: no coverage despite processing remaining faults", workers)
		}
		if !strings.Contains(res.String(), "partial") {
			t.Errorf("workers=%d: partial result renders without marker: %s", workers, res)
		}
	}
}

// TestCampaignPartialOnCancelledDeterministicPhase uses the test hook to
// cancel the context between the random and deterministic phases: the
// campaign must come back Partial with exactly the random-phase coverage
// and the unsearched faults counted as Skipped — deterministically, with
// no wall clock involved.
func TestCampaignPartialOnCancelledDeterministicPhase(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := DefaultConfig(11)
		cfg.SampleFaults = 200
		cfg.RandomBatches = 2
		cfg.Workers = workers
		cfg.testHookAfterRandom = cancel
		res, err := RunCtx(ctx, c, cfg)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: cancellation surfaced as error: %v", workers, err)
		}
		if res.Status != exec.StatusPartial || res.Exhausted != exec.BudgetDeadline {
			t.Fatalf("workers=%d: status %v/%q, want partial/deadline", workers, res.Status, res.Exhausted)
		}
		if res.RandomDetected == 0 || res.Coverage <= 0 {
			t.Errorf("workers=%d: partial result lost the random phase: %+v", workers, res)
		}
		if res.DetDetected != 0 {
			t.Errorf("workers=%d: deterministic detections after cancellation: %d", workers, res.DetDetected)
		}
		if res.Skipped != res.TotalFaults-res.RandomDetected {
			t.Errorf("workers=%d: skipped %d, want %d", workers, res.Skipped, res.TotalFaults-res.RandomDetected)
		}
		// The partial result must still satisfy the replay invariant: the
		// retained test set reproduces the claimed detections.
		flist := fault.Sample(fault.Collapse(c), cfg.SampleFaults)
		got, rerr := Replay(c, res.TestSet, flist)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if got < res.Detected() {
			t.Errorf("workers=%d: replay detected %d, partial campaign claimed %d", workers, got, res.Detected())
		}
	}
}

// TestCampaignAlreadyCancelled: a dead context still returns a valid
// (empty-coverage) partial result, not an error.
func TestCampaignAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := benchCircuit(t, dfg.BenchTseng, 4)
	cfg := DefaultConfig(3)
	cfg.SampleFaults = 100
	res, err := RunCtx(ctx, c, cfg)
	if err != nil {
		t.Fatalf("dead context errored: %v", err)
	}
	if res.Status != exec.StatusPartial || res.Exhausted != exec.BudgetDeadline {
		t.Fatalf("status %v/%q", res.Status, res.Exhausted)
	}
	if res.Skipped != res.TotalFaults {
		t.Errorf("skipped %d of %d", res.Skipped, res.TotalFaults)
	}
	if res.Coverage != 0 || len(res.TestSet) != 0 {
		t.Errorf("work happened under a dead context: %+v", res)
	}
}

// TestCampaignPartialWorkersEquivalence extends the determinism contract
// to hook-cancelled partial campaigns: the partial Result must be
// bit-identical at every worker count.
func TestCampaignPartialWorkersEquivalence(t *testing.T) {
	c := benchCircuit(t, dfg.BenchTseng, 4)
	run := func(workers int) *Result {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg := DefaultConfig(13)
		cfg.SampleFaults = 150
		cfg.RandomBatches = 1
		cfg.Workers = workers
		cfg.testHookAfterRandom = cancel
		res, err := RunCtx(ctx, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d partial result diverges:\n%+v\nvs\n%+v", workers, got, want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	for o := OutcomeNone; o <= OutcomePanicked; o++ {
		if s := o.String(); s == "" || strings.HasPrefix(s, "Outcome(") {
			t.Errorf("outcome %d renders %q", int(o), s)
		}
	}
	if s := Outcome(200).String(); !strings.HasPrefix(s, "Outcome(") {
		t.Errorf("unknown outcome renders %q", s)
	}
}

// TestCampaignLeavesNoGoroutines: the campaign's random-phase and PODEM
// pools must be fully reaped when RunCtx returns — on clean completion
// and on cancellation alike.
func TestCampaignLeavesNoGoroutines(t *testing.T) {
	c := pipelineCircuit(t)
	settle := func(name string, baseline int) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= baseline {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Errorf("%s: goroutines leaked: %d before, %d after", name, baseline, runtime.NumGoroutine())
	}

	base := runtime.NumGoroutine()
	cfg := DefaultConfig(5)
	cfg.Workers = 8
	cfg.RandomBatches = 1
	cfg.Restarts = 1
	if _, err := Run(c, cfg); err != nil {
		t.Fatal(err)
	}
	settle("clean run", base)

	base = runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, c, cfg); err != nil {
		t.Fatal(err)
	}
	settle("cancelled run", base)
}
