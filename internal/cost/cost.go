// Package cost estimates the hardware cost H of an ETPN data path (paper
// §4.2): H = Σ Area(V_i) + Σ Len(A_j) × Wid(A_j), where module and register
// areas come from a module library parameterized by bit width, connection
// lengths come from a simple connectivity-driven floorplan in the manner of
// Peng & Kuchcinski [14], and connection widths are the bit width times a
// weight factor. Multiplexers implied by the allocation are charged to
// their destination nodes.
//
// Areas are in normalized units; the library preserves the relative cost
// structure of the paper's experiments (multiplier ≫ ALU ≈ adder >
// register > mux, multiplier quadratic in width).
package cost

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/etpn"
)

// Library supplies per-component area models.
type Library struct {
	// RegPerBit is the register area per bit.
	RegPerBit float64
	// AddPerBit is the adder/subtracter/ALU area per bit.
	AddPerBit float64
	// CmpPerBit is the comparator area per bit.
	CmpPerBit float64
	// LogicPerBit is the bitwise-logic unit area per bit.
	LogicPerBit float64
	// MulPerBit2 is the array-multiplier area per bit squared.
	MulPerBit2 float64
	// MuxPerBitInput is the multiplexer area per bit per extra input.
	MuxPerBitInput float64
	// WireWeight scales connection width (paper: bit width times a given
	// weighted factor).
	WireWeight float64
}

// DefaultLibrary returns the library used across the reproduction.
func DefaultLibrary() *Library {
	return &Library{
		RegPerBit:      8,
		AddPerBit:      24,
		CmpPerBit:      12,
		LogicPerBit:    8,
		MulPerBit2:     20,
		MuxPerBitInput: 4,
		WireWeight:     0.05,
	}
}

// ModuleArea returns the area of a functional module of the given class at
// the given bit width.
func (l *Library) ModuleArea(class string, width int) float64 {
	w := float64(width)
	switch class {
	case "*":
		return l.MulPerBit2 * w * w
	case "+", "-", "±":
		return l.AddPerBit * w
	case "<", ">", "==":
		return l.CmpPerBit * w
	case "&", "|", "^", "~", "mov", "logic":
		return l.LogicPerBit * w
	default:
		return l.AddPerBit * w
	}
}

// RegisterArea returns the area of a width-bit register.
func (l *Library) RegisterArea(width int) float64 { return l.RegPerBit * float64(width) }

// MuxArea returns the area of an inputs-to-1 multiplexer at the given
// width; 0 or 1 inputs need no hardware.
func (l *Library) MuxArea(width, inputs int) float64 {
	if inputs <= 1 {
		return 0
	}
	return l.MuxPerBitInput * float64(width) * float64(inputs-1)
}

// Estimate is the cost breakdown of a design.
type Estimate struct {
	ModuleArea float64
	RegArea    float64
	MuxArea    float64
	WireArea   float64
	Total      float64
}

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("total %.0f (modules %.0f, regs %.0f, muxes %.0f, wires %.0f)",
		e.Total, e.ModuleArea, e.RegArea, e.MuxArea, e.WireArea)
}

// Floorplan places the data-path nodes of d on an integer grid with a
// connectivity-driven greedy heuristic: nodes in decreasing connectivity
// order, each placed on the free grid slot minimizing the total Manhattan
// distance to its already-placed neighbours. Positions are deterministic.
func Floorplan(d *etpn.Design) map[int][2]int {
	n := len(d.Nodes)
	adj := make(map[int]map[int]int, n)
	bump := func(a, b int) {
		if adj[a] == nil {
			adj[a] = map[int]int{}
		}
		adj[a][b]++
	}
	for _, a := range d.Arcs {
		if a.From == a.To {
			continue
		}
		bump(a.From, a.To)
		bump(a.To, a.From)
	}
	order := make([]int, 0, n)
	for _, nd := range d.Nodes {
		order = append(order, nd.ID)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := len(adj[order[i]]), len(adj[order[j]])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	pos := make(map[int][2]int, n)
	used := map[[2]int]bool{}
	side := int(math.Ceil(math.Sqrt(float64(n)))) + 2
	for _, id := range order {
		best := [2]int{0, 0}
		bestCost := math.Inf(1)
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				p := [2]int{x, y}
				if used[p] {
					continue
				}
				c := 0.0
				for nb, w := range adj[id] {
					if q, placed := pos[nb]; placed {
						c += float64(w) * float64(abs(p[0]-q[0])+abs(p[1]-q[1]))
					}
				}
				// Deterministic tie-break: prefer slots near the origin.
				c += 1e-6 * float64(p[0]+p[1]*side)
				if c < bestCost {
					bestCost = c
					best = p
				}
			}
		}
		pos[id] = best
		used[best] = true
	}
	return pos
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// EstimateDesign computes the full cost estimate of a design at the given
// bit width: component areas from the library, multiplexers inferred from
// the arc structure, and wire cost from the floorplan. The cell pitch used
// to convert grid distance to length is the square root of the mean
// component area, so wire cost scales with component size as in a real
// layout.
func EstimateDesign(d *etpn.Design, lib *Library, width int) Estimate {
	if lib == nil {
		lib = DefaultLibrary()
	}
	var e Estimate
	for _, nd := range d.Nodes {
		switch nd.Kind {
		case etpn.KindModule:
			e.ModuleArea += lib.ModuleArea(nd.Class, width)
		case etpn.KindRegister:
			e.RegArea += lib.RegisterArea(width)
		}
	}
	// Multiplexers: one per destination (node, port) with multiple sources.
	type dest struct{ node, port int }
	srcs := map[dest]map[int]bool{}
	for _, a := range d.Arcs {
		to := d.Nodes[a.To]
		if to.Kind != etpn.KindModule && to.Kind != etpn.KindRegister {
			continue
		}
		k := dest{a.To, a.ToPort}
		if srcs[k] == nil {
			srcs[k] = map[int]bool{}
		}
		srcs[k][a.From] = true
	}
	for _, set := range srcs {
		e.MuxArea += lib.MuxArea(width, len(set))
	}
	// Wires.
	nComp := 0
	compArea := e.ModuleArea + e.RegArea + e.MuxArea
	for _, nd := range d.Nodes {
		if nd.Kind == etpn.KindModule || nd.Kind == etpn.KindRegister {
			nComp++
		}
	}
	pitch := 1.0
	if nComp > 0 {
		pitch = math.Sqrt(compArea / float64(nComp))
	}
	pos := Floorplan(d)
	for _, a := range d.Arcs {
		p, q := pos[a.From], pos[a.To]
		dist := float64(abs(p[0]-q[0]) + abs(p[1]-q[1]))
		e.WireArea += dist * pitch * float64(width) * lib.WireWeight
	}
	e.Total = e.ModuleArea + e.RegArea + e.MuxArea + e.WireArea
	return e
}
