package cost

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/sched"
)

func build(t *testing.T, g *dfg.Graph, oneToOne bool) *etpn.Design {
	t.Helper()
	s, err := sched.NewProblem(g).ASAP()
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	var a *alloc.Allocation
	if oneToOne {
		a = alloc.Default(g, sched.ExactClass, life)
	} else {
		regOf, n := alloc.RegisterLeftEdge(g, life)
		a = alloc.BindModules(g, s, sched.ExactClass, regOf, n)
	}
	d, err := etpn.Build(g, s, a, life, etpn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLibraryRelativeStructure(t *testing.T) {
	l := DefaultLibrary()
	for _, w := range []int{4, 8, 16} {
		mul := l.ModuleArea("*", w)
		add := l.ModuleArea("+", w)
		reg := l.RegisterArea(w)
		mux := l.MuxArea(w, 2)
		if !(mul > add && add > reg && reg > mux) {
			t.Errorf("width %d: relative areas broken: mul=%f add=%f reg=%f mux=%f", w, mul, add, reg, mux)
		}
	}
	// Multiplier quadratic, adder linear.
	if l.ModuleArea("*", 16)/l.ModuleArea("*", 4) != 16 {
		t.Errorf("multiplier not quadratic: %f", l.ModuleArea("*", 16)/l.ModuleArea("*", 4))
	}
	if l.ModuleArea("+", 16)/l.ModuleArea("+", 4) != 4 {
		t.Errorf("adder not linear")
	}
}

func TestMuxAreaBoundaries(t *testing.T) {
	l := DefaultLibrary()
	if l.MuxArea(8, 0) != 0 || l.MuxArea(8, 1) != 0 {
		t.Error("0/1-input mux must be free")
	}
	if !(l.MuxArea(8, 3) > l.MuxArea(8, 2)) {
		t.Error("mux area must grow with inputs")
	}
}

func TestUnknownClassFallsBack(t *testing.T) {
	l := DefaultLibrary()
	if l.ModuleArea("exotic", 8) <= 0 {
		t.Error("unknown class must get a fallback area")
	}
}

func TestFloorplanDeterministicAndInjective(t *testing.T) {
	g := dfg.Dct(8)
	d := build(t, g, false)
	p1 := Floorplan(d)
	p2 := Floorplan(d)
	if len(p1) != len(d.Nodes) {
		t.Fatalf("floorplan placed %d of %d nodes", len(p1), len(d.Nodes))
	}
	seen := map[[2]int]bool{}
	for id, pos := range p1 {
		if p2[id] != pos {
			t.Fatal("floorplan not deterministic")
		}
		if seen[pos] {
			t.Fatalf("two nodes share slot %v", pos)
		}
		seen[pos] = true
	}
}

func TestEstimateBreakdownConsistent(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		d := build(t, g, false)
		e := EstimateDesign(d, nil, 8)
		sum := e.ModuleArea + e.RegArea + e.MuxArea + e.WireArea
		if e.Total != sum {
			t.Errorf("%s: total %f != sum %f", name, e.Total, sum)
		}
		if e.Total <= 0 || e.ModuleArea <= 0 || e.RegArea <= 0 {
			t.Errorf("%s: non-positive areas: %+v", name, e)
		}
	}
}

func TestAreaGrowsWithWidth(t *testing.T) {
	g := dfg.Diffeq(8)
	d := build(t, g, false)
	e4 := EstimateDesign(d, nil, 4)
	e8 := EstimateDesign(d, nil, 8)
	e16 := EstimateDesign(d, nil, 16)
	if !(e4.Total < e8.Total && e8.Total < e16.Total) {
		t.Errorf("area not monotone in width: %f %f %f", e4.Total, e8.Total, e16.Total)
	}
	// Multiplier-heavy designs grow superlinearly.
	if e16.Total/e8.Total <= 2 {
		t.Errorf("16-bit/8-bit ratio %f should exceed 2 for a multiplier-bearing design", e16.Total/e8.Total)
	}
}

func TestSharingReducesModuleAreaAddsMux(t *testing.T) {
	g := dfg.Ex(8)
	one := build(t, g, true)     // 8 modules, 12 registers, no muxes
	shared := build(t, g, false) // left-edge: fewer modules/regs, muxes appear
	eOne := EstimateDesign(one, nil, 8)
	eShared := EstimateDesign(shared, nil, 8)
	if !(eShared.ModuleArea < eOne.ModuleArea) {
		t.Errorf("sharing should cut module area: %f vs %f", eShared.ModuleArea, eOne.ModuleArea)
	}
	if !(eShared.RegArea < eOne.RegArea) {
		t.Errorf("sharing should cut register area: %f vs %f", eShared.RegArea, eOne.RegArea)
	}
	if eOne.MuxArea != 0 {
		t.Errorf("1:1 allocation must have zero mux area, got %f", eOne.MuxArea)
	}
	if eShared.MuxArea <= 0 {
		t.Error("shared allocation must pay for muxes")
	}
	if !(eShared.Total < eOne.Total) {
		t.Errorf("area-optimizing share should win overall: %f vs %f", eShared.Total, eOne.Total)
	}
}

func TestEstimateString(t *testing.T) {
	g := dfg.Tseng(8)
	d := build(t, g, false)
	s := EstimateDesign(d, nil, 8).String()
	if len(s) == 0 {
		t.Error("empty estimate rendering")
	}
}

// The connectivity-driven floorplan must place connected components
// closer together than an adversarial (reversed-order) placement: total
// wire length under the heuristic should beat a naive diagonal spread.
func TestFloorplanBeatsNaivePlacement(t *testing.T) {
	g := dfg.EWF(8)
	d := build(t, g, false)
	pos := Floorplan(d)
	dist := func(p map[int][2]int) int {
		total := 0
		for _, a := range d.Arcs {
			pa, pb := p[a.From], p[a.To]
			total += abs(pa[0]-pb[0]) + abs(pa[1]-pb[1])
		}
		return total
	}
	heuristic := dist(pos)
	// Naive placement: nodes along a diagonal in id order.
	naive := map[int][2]int{}
	for i := range d.Nodes {
		naive[i] = [2]int{i, i}
	}
	if heuristic >= dist(naive) {
		t.Errorf("floorplan wire length %d not better than naive %d", heuristic, dist(naive))
	}
}
