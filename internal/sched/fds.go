package sched

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
)

// ClassFunc maps operation kinds to module classes for the purpose of
// resource sharing and distribution graphs: operations in the same class
// compete for the same kind of functional unit.
type ClassFunc func(dfg.OpKind) string

// ExactClass shares modules only between identical operation kinds — the
// binding discipline visible in the paper's Tables 1-3 for Approaches 1, 2
// and Ours (multipliers hold only multiplications, subtracters only
// subtractions, and so on).
func ExactClass(k dfg.OpKind) string { return k.String() }

// ALUClass pools addition, subtraction and comparison into one
// adder/subtracter ALU class, as the CAMAD rows of the tables do (their
// "±" modules), while multiplications keep a dedicated class.
func ALUClass(k dfg.OpKind) string {
	switch k {
	case dfg.OpAdd, dfg.OpSub, dfg.OpLt, dfg.OpGt, dfg.OpEq:
		return "±"
	case dfg.OpMul:
		return "*"
	default:
		return "logic"
	}
}

// framesWithFixed computes [ASAP, ALAP] frames for every node under the
// problem's precedence arcs, a latency bound, and a set of already-fixed
// assignments.
func (p *Problem) framesWithFixed(latency int, fixed map[dfg.NodeID]int) (asap, alap map[dfg.NodeID]int, err error) {
	order, err := p.topo()
	if err != nil {
		return nil, nil, err
	}
	asap = make(map[dfg.NodeID]int, len(order))
	for _, n := range order {
		st := 1
		for _, q := range p.preds(n) {
			if asap[q]+1 > st {
				st = asap[q] + 1
			}
		}
		for _, q := range p.weakPreds(n) {
			if asap[q] > st {
				st = asap[q]
			}
		}
		if f, ok := fixed[n]; ok {
			if f < st {
				return nil, nil, fmt.Errorf("sched: fixing %s at %d violates precedence (asap %d)", p.G.Node(n).Name, f, st)
			}
			st = f
		}
		if st > latency {
			return nil, nil, fmt.Errorf("sched: latency %d infeasible", latency)
		}
		asap[n] = st
	}
	alap = make(map[dfg.NodeID]int, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		st := latency
		for _, q := range p.succs(n) {
			if alap[q]-1 < st {
				st = alap[q] - 1
			}
		}
		for _, q := range p.weakSuccs(n) {
			if alap[q] < st {
				st = alap[q]
			}
		}
		if f, ok := fixed[n]; ok {
			if f > st {
				return nil, nil, fmt.Errorf("sched: fixing %s at %d violates successors (alap %d)", p.G.Node(n).Name, f, st)
			}
			st = f
		}
		if st < asap[n] {
			return nil, nil, fmt.Errorf("sched: empty frame for %s", p.G.Node(n).Name)
		}
		alap[n] = st
	}
	return asap, alap, nil
}

// distributionCost computes the force-directed balancing objective: the sum
// over module classes and control steps of the squared distribution-graph
// value, where each unfixed operation spreads probability 1/|frame| over
// its frame. Lower is a flatter, more shareable schedule.
func (p *Problem) distributionCost(latency int, class ClassFunc, asap, alap map[dfg.NodeID]int) float64 {
	dg := map[string][]float64{}
	for _, n := range p.G.Nodes() {
		c := class(n.Kind)
		row := dg[c]
		if row == nil {
			row = make([]float64, latency+1)
			dg[c] = row
		}
		lo, hi := asap[n.ID], alap[n.ID]
		pr := 1.0 / float64(hi-lo+1)
		for s := lo; s <= hi; s++ {
			row[s] += pr
		}
	}
	// Sum classes in sorted order: float addition is not associative, so
	// iterating the map directly would let Go's randomized map order
	// perturb the cost in its last ulp and flip near-tie comparisons in
	// FDS from run to run.
	classes := make([]string, 0, len(dg))
	for c := range dg {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	cost := 0.0
	for _, c := range classes {
		for _, v := range dg[c] {
			cost += v * v
		}
	}
	return cost
}

// FDS is the force-directed scheduler of Paulin and Knight [11], in the
// equivalent sum-of-squares balancing formulation: repeatedly commit the
// (operation, step) assignment that minimizes the global distribution-graph
// cost, recomputing every operation's time frame after each commitment.
// The schedule meets the given latency exactly or an error is returned.
func (p *Problem) FDS(latency int, class ClassFunc) (Schedule, error) {
	if class == nil {
		class = ExactClass
	}
	fixed := map[dfg.NodeID]int{}
	for len(fixed) < p.G.NumNodes() {
		before := len(fixed)
		asap, alap, err := p.framesWithFixed(latency, fixed)
		if err != nil {
			return Schedule{}, err
		}
		// Commit every zero-mobility operation outright: its placement is
		// forced and carries no force of its own.
		for _, n := range p.G.Nodes() {
			if _, done := fixed[n.ID]; !done && asap[n.ID] == alap[n.ID] {
				fixed[n.ID] = asap[n.ID]
			}
		}
		if len(fixed) == p.G.NumNodes() {
			break
		}
		if len(fixed) != before {
			continue // frames changed; recompute before evaluating forces
		}
		bestCost := 0.0
		bestNode := dfg.NoNode
		bestStep := 0
		first := true
		for _, n := range p.G.Nodes() {
			if _, done := fixed[n.ID]; done {
				continue
			}
			for s := asap[n.ID]; s <= alap[n.ID]; s++ {
				fixed[n.ID] = s
				a2, l2, err := p.framesWithFixed(latency, fixed)
				delete(fixed, n.ID)
				if err != nil {
					continue
				}
				c := p.distributionCost(latency, class, a2, l2)
				if first || c < bestCost {
					first = false
					bestCost = c
					bestNode = n.ID
					bestStep = s
				}
			}
		}
		if bestNode == dfg.NoNode {
			return Schedule{}, fmt.Errorf("sched: FDS made no progress")
		}
		fixed[bestNode] = bestStep
	}
	s := Schedule{Step: fixed}
	for _, st := range fixed {
		if st > s.Len {
			s.Len = st
		}
	}
	if err := p.Verify(s); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// MobilityPath is the testability-oriented scheduler of Lee et al. [6,7]
// (the paper's Approach 2), reconstructed from its two published rules:
// operations are processed along mobility paths (least-mobile, most
// critical first) and placed at the step in their current frame that best
// balances per-class concurrency, with ties broken to execute operations
// reading primary-input variables as early as possible and operations
// producing primary-output variables as late as possible — shortening the
// sequential depth from controllable to observable registers (rule SR1).
func (p *Problem) MobilityPath(latency int, class ClassFunc) (Schedule, error) {
	if class == nil {
		class = ExactClass
	}
	asap0, alap0, err := p.framesWithFixed(latency, nil)
	if err != nil {
		return Schedule{}, err
	}
	nodes := append([]*dfg.Node(nil), p.G.Nodes()...)
	sort.Slice(nodes, func(i, j int) bool {
		mi := alap0[nodes[i].ID] - asap0[nodes[i].ID]
		mj := alap0[nodes[j].ID] - asap0[nodes[j].ID]
		if mi != mj {
			return mi < mj
		}
		if asap0[nodes[i].ID] != asap0[nodes[j].ID] {
			return asap0[nodes[i].ID] < asap0[nodes[j].ID]
		}
		return nodes[i].ID < nodes[j].ID
	})
	fixed := map[dfg.NodeID]int{}
	usage := map[string][]int{} // class -> per-step committed count
	for _, n := range nodes {
		asap, alap, err := p.framesWithFixed(latency, fixed)
		if err != nil {
			return Schedule{}, err
		}
		c := class(n.Kind)
		row := usage[c]
		if row == nil {
			row = make([]int, latency+1)
			usage[c] = row
		}
		readsPI := false
		for _, v := range n.In {
			if p.G.Value(v).Kind == dfg.ValInput {
				readsPI = true
			}
		}
		writesPO := p.G.Value(n.Out).IsOutput
		bestStep, bestKey := 0, [3]int{1 << 30, 0, 0}
		for s := asap[n.ID]; s <= alap[n.ID]; s++ {
			// Primary criterion: per-class concurrency at s. Secondary:
			// PI-readers early, PO-writers late, others early.
			dir := s
			if writesPO && !readsPI {
				dir = -s
			}
			key := [3]int{row[s], dir, int(n.ID)}
			if s == asap[n.ID] || key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]) {
				bestStep, bestKey = s, key
			}
		}
		fixed[n.ID] = bestStep
		row[bestStep]++
	}
	s := Schedule{Step: fixed}
	for _, st := range fixed {
		if st > s.Len {
			s.Len = st
		}
	}
	if err := p.Verify(s); err != nil {
		return Schedule{}, err
	}
	return s, nil
}
