package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
)

func mustASAP(t *testing.T, p *Problem) Schedule {
	t.Helper()
	s, err := p.ASAP()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestASAPDiffeq(t *testing.T) {
	g := dfg.Diffeq(8)
	p := NewProblem(g)
	s := mustASAP(t, p)
	if err := p.Verify(s); err != nil {
		t.Fatal(err)
	}
	// Critical chain: N26/N27 -> N31 -> N30 -> N34 gives length 4.
	if s.Len != 4 {
		t.Errorf("diffeq ASAP length = %d, want 4", s.Len)
	}
	n26, _ := g.NodeByName("N26")
	if s.Step[n26] != 1 {
		t.Errorf("N26 at step %d, want 1", s.Step[n26])
	}
	n34, _ := g.NodeByName("N34")
	if s.Step[n34] != 4 {
		t.Errorf("N34 at step %d, want 4", s.Step[n34])
	}
}

func TestALAPRespectsLatency(t *testing.T) {
	g := dfg.Ex(8)
	p := NewProblem(g)
	asap := mustASAP(t, p)
	for lat := asap.Len; lat <= asap.Len+3; lat++ {
		s, err := p.ALAP(lat)
		if err != nil {
			t.Fatalf("latency %d: %v", lat, err)
		}
		for n, st := range s.Step {
			if st < 1 || st > lat {
				t.Errorf("latency %d: node %d at step %d", lat, n, st)
			}
		}
		if err := p.Verify(s); err != nil {
			t.Errorf("latency %d: %v", lat, err)
		}
	}
}

func TestALAPInfeasible(t *testing.T) {
	g := dfg.Ex(8)
	p := NewProblem(g)
	asap := mustASAP(t, p)
	if _, err := p.ALAP(asap.Len - 1); err == nil {
		t.Fatal("expected infeasible-latency error")
	}
}

func TestMobilityNonNegativeAndZeroOnCriticalPath(t *testing.T) {
	g := dfg.EWF(8)
	p := NewProblem(g)
	asap := mustASAP(t, p)
	mob, err := p.Mobility(asap.Len)
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for n, m := range mob {
		if m < 0 {
			t.Errorf("node %d has negative mobility %d", n, m)
		}
		if m == 0 {
			zero++
		}
	}
	if zero == 0 {
		t.Error("no zero-mobility (critical) operations found")
	}
}

func TestExtraArcsShiftASAP(t *testing.T) {
	g := dfg.Ex(8)
	p := NewProblem(g)
	n21, _ := g.NodeByName("N21")
	n22, _ := g.NodeByName("N22")
	base := mustASAP(t, p)
	if base.Step[n21] != base.Step[n22] {
		t.Fatalf("test premise: N21 and N22 should tie at step 1")
	}
	p.Extra = append(p.Extra, [2]dfg.NodeID{n21, n22})
	s := mustASAP(t, p)
	if s.Step[n22] != s.Step[n21]+1 {
		t.Errorf("extra arc not honoured: N21@%d N22@%d", s.Step[n21], s.Step[n22])
	}
}

func TestExtraArcCycleDetected(t *testing.T) {
	g := dfg.Ex(8)
	p := NewProblem(g)
	n21, _ := g.NodeByName("N21")
	n25, _ := g.NodeByName("N25") // N25 depends on N21 via data flow
	p.Extra = append(p.Extra, [2]dfg.NodeID{n25, n21})
	if _, err := p.ASAP(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestListScheduleModuleConstraint(t *testing.T) {
	g := dfg.Ex(8)
	p := NewProblem(g)
	// Bind all four multiplications to one module.
	mod := 0
	for _, n := range g.Nodes() {
		if n.Kind == dfg.OpMul {
			p.ModuleOf[n.ID] = mod
		}
	}
	s, err := p.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(s); err != nil {
		t.Fatal(err)
	}
	// Four mults on one module need at least four steps.
	if s.Len < 4 {
		t.Errorf("schedule length %d too short for 4 serialized mults", s.Len)
	}
	seen := map[int]bool{}
	for _, n := range g.Nodes() {
		if n.Kind == dfg.OpMul {
			st := s.Step[n.ID]
			if seen[st] {
				t.Errorf("two mults share step %d", st)
			}
			seen[st] = true
		}
	}
}

func TestListScheduleLatencyBound(t *testing.T) {
	g := dfg.Ex(8)
	p := NewProblem(g)
	mod := 0
	for _, n := range g.Nodes() {
		p.ModuleOf[n.ID] = mod // all eight ops on one module: needs 8 steps
	}
	p.MaxLen = 5
	if _, err := p.List(nil); err == nil {
		t.Fatal("expected latency-bound error")
	}
	p.MaxLen = 8
	s, err := p.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len != 8 {
		t.Errorf("fully serialized schedule length = %d, want 8", s.Len)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := dfg.Ex(8)
	p := NewProblem(g)
	s := mustASAP(t, p)
	n25, _ := g.NodeByName("N25")
	bad := s.Clone()
	bad.Step[n25] = 1 // N25 depends on N21/N22 at step 1
	if err := p.Verify(bad); err == nil {
		t.Fatal("expected precedence violation")
	}
	bad2 := s.Clone()
	delete(bad2.Step, n25)
	if err := p.Verify(bad2); err == nil {
		t.Fatal("expected unscheduled-node violation")
	}
}

func TestFDSMeetsLatencyAndReducesPeak(t *testing.T) {
	g := dfg.Diffeq(8)
	p := NewProblem(g)
	asap := mustASAP(t, p)
	lat := asap.Len // 4
	s, err := p.FDS(lat, ExactClass)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len > lat {
		t.Errorf("FDS length %d exceeds latency %d", s.Len, lat)
	}
	if err := p.Verify(s); err != nil {
		t.Fatal(err)
	}
	// FDS must not need more multipliers than ASAP's peak.
	if peak(g, s, dfg.OpMul) > peak(g, asap, dfg.OpMul) {
		t.Errorf("FDS mult peak %d worse than ASAP %d", peak(g, s, dfg.OpMul), peak(g, asap, dfg.OpMul))
	}
}

func TestFDSBalancesEWF(t *testing.T) {
	g := dfg.EWF(8)
	p := NewProblem(g)
	asap := mustASAP(t, p)
	lat := asap.Len + 2
	s, err := p.FDS(lat, ExactClass)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(s); err != nil {
		t.Fatal(err)
	}
	if peak(g, s, dfg.OpAdd) > peak(g, asap, dfg.OpAdd) {
		t.Errorf("FDS add peak %d, ASAP add peak %d", peak(g, s, dfg.OpAdd), peak(g, asap, dfg.OpAdd))
	}
}

func TestMobilityPathSchedules(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		p := NewProblem(g)
		asap := mustASAP(t, p)
		s, err := p.MobilityPath(asap.Len+1, ExactClass)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Verify(s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestALUClassPoolsAddSub(t *testing.T) {
	if ALUClass(dfg.OpAdd) != ALUClass(dfg.OpSub) || ALUClass(dfg.OpAdd) != ALUClass(dfg.OpLt) {
		t.Error("ALUClass must pool +,-,<")
	}
	if ALUClass(dfg.OpMul) == ALUClass(dfg.OpAdd) {
		t.Error("ALUClass must keep * separate")
	}
	if ExactClass(dfg.OpAdd) == ExactClass(dfg.OpSub) {
		t.Error("ExactClass must separate + and -")
	}
}

func TestMergeOrdersInterleavesStably(t *testing.T) {
	a := []dfg.NodeID{1, 3, 5}
	b := []dfg.NodeID{2, 4}
	got := MergeOrders(a, b, nil)
	want := []dfg.NodeID{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeOrders = %v, want %v", got, want)
		}
	}
}

func TestMergeOrdersPrefer(t *testing.T) {
	a := []dfg.NodeID{10, 11}
	b := []dfg.NodeID{20, 21}
	// Always prefer sequence B's head.
	got := MergeOrders(a, b, func(x, y dfg.NodeID) int { return +1 })
	want := []dfg.NodeID{20, 21, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeOrders = %v, want %v", got, want)
		}
	}
}

func TestMergeOrdersPreservesRelativeOrder(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b []dfg.NodeID
		for i := 0; i < rng.Intn(8); i++ {
			a = append(a, dfg.NodeID(i*2))
		}
		for i := 0; i < rng.Intn(8); i++ {
			b = append(b, dfg.NodeID(i*2+1))
		}
		prefer := func(x, y dfg.NodeID) int { return rng.Intn(3) - 1 }
		out := MergeOrders(a, b, prefer)
		if len(out) != len(a)+len(b) {
			return false
		}
		pos := map[dfg.NodeID]int{}
		for i, n := range out {
			pos[n] = i
		}
		for i := 0; i+1 < len(a); i++ {
			if pos[a[i]] > pos[a[i+1]] {
				return false
			}
		}
		for i := 0; i+1 < len(b); i++ {
			if pos[b[i]] > pos[b[i+1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChainArcs(t *testing.T) {
	arcs := ChainArcs([]dfg.NodeID{4, 2, 7})
	if len(arcs) != 2 || arcs[0] != [2]dfg.NodeID{4, 2} || arcs[1] != [2]dfg.NodeID{2, 7} {
		t.Fatalf("ChainArcs = %v", arcs)
	}
	if ChainArcs(nil) != nil {
		t.Fatal("ChainArcs(nil) should be nil")
	}
}

func TestOrderByStep(t *testing.T) {
	g := dfg.Ex(8)
	p := NewProblem(g)
	s := mustASAP(t, p)
	var muls []dfg.NodeID
	for _, n := range g.Nodes() {
		if n.Kind == dfg.OpMul {
			muls = append(muls, n.ID)
		}
	}
	ord := OrderByStep(muls, s)
	for i := 0; i+1 < len(ord); i++ {
		si, sj := s.Step[ord[i]], s.Step[ord[i+1]]
		if si > sj {
			t.Fatalf("OrderByStep not sorted: %v", ord)
		}
	}
}

// Property: list scheduling with random bindings on random graphs always
// yields a verifiable schedule (or a clean latency error).
func TestListScheduleRandomGraphs(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 3+rng.Intn(20))
		p := NewProblem(g)
		// Random binding: ops of same kind share one of two modules.
		for _, n := range g.Nodes() {
			p.ModuleOf[n.ID] = int(n.Kind)*2 + rng.Intn(2)
		}
		s, err := p.List(nil)
		if err != nil {
			return false
		}
		return p.Verify(s) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randGraph(rng *rand.Rand, nOps int) *dfg.Graph {
	g := dfg.New("rand", 8)
	pool := []dfg.ValueID{g.Input("i0"), g.Input("i1"), g.Input("i2")}
	kinds := []dfg.OpKind{dfg.OpAdd, dfg.OpSub, dfg.OpMul}
	for i := 0; i < nOps; i++ {
		k := kinds[rng.Intn(len(kinds))]
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		pool = append(pool, g.Op(k, "", a, b))
	}
	for _, v := range g.Values() {
		if v.Kind == dfg.ValTemp && len(v.Uses) == 0 {
			g.MarkOutput(v.ID)
		}
	}
	return g
}

func peak(g *dfg.Graph, s Schedule, k dfg.OpKind) int {
	perStep := map[int]int{}
	for _, n := range g.Nodes() {
		if n.Kind == k {
			perStep[s.Step[n.ID]]++
		}
	}
	max := 0
	for _, c := range perStep {
		if c > max {
			max = c
		}
	}
	return max
}

func TestWeakArcsAllowSameStep(t *testing.T) {
	// Two independent ops with a weak arc may share a step; ASAP keeps
	// them together, and the weak arc forbids the reverse order.
	g := dfg.New("w", 8)
	a := g.Input("a")
	b := g.Input("b")
	t1 := g.Op(dfg.OpAdd, "t1", a, b)
	t2 := g.Op(dfg.OpSub, "t2", a, b)
	g.MarkOutput(t1)
	g.MarkOutput(t2)
	n1 := g.Value(t1).Def
	n2 := g.Value(t2).Def

	p := NewProblem(g)
	p.ExtraWeak = append(p.ExtraWeak, [2]dfg.NodeID{n1, n2})
	s, err := p.ASAP()
	if err != nil {
		t.Fatal(err)
	}
	if s.Step[n1] != 1 || s.Step[n2] != 1 {
		t.Errorf("weak arc should allow same step: %d %d", s.Step[n1], s.Step[n2])
	}
	if err := p.Verify(s); err != nil {
		t.Fatal(err)
	}
	// A schedule with n2 before n1 must be rejected.
	bad := s.Clone()
	bad.Step[n2] = 1
	bad.Step[n1] = 2
	bad.Len = 2
	if err := p.Verify(bad); err == nil {
		t.Fatal("weak arc violation not caught")
	}
}

func TestWeakArcsPushLater(t *testing.T) {
	// Weak pred at step 2 forces the successor to step >= 2.
	g := dfg.New("w2", 8)
	a := g.Input("a")
	b := g.Input("b")
	t1 := g.Op(dfg.OpAdd, "t1", a, b)
	t2 := g.Op(dfg.OpAdd, "t2", t1, b) // step 2 by data flow
	t3 := g.Op(dfg.OpSub, "t3", a, b)  // free
	g.MarkOutput(t2)
	g.MarkOutput(t3)
	n2 := g.Value(t2).Def
	n3 := g.Value(t3).Def
	p := NewProblem(g)
	p.ExtraWeak = append(p.ExtraWeak, [2]dfg.NodeID{n2, n3})
	s, err := p.ASAP()
	if err != nil {
		t.Fatal(err)
	}
	if s.Step[n3] < s.Step[n2] {
		t.Errorf("weak successor scheduled before its predecessor: %d < %d", s.Step[n3], s.Step[n2])
	}
	if err := p.Verify(s); err != nil {
		t.Fatal(err)
	}
}

func TestListWeakCascadeWithinStep(t *testing.T) {
	// A weak chain t1 -> t2 -> t3 of independent ops packs into one step
	// under list scheduling (the same-step cascade).
	g := dfg.New("w3", 8)
	a := g.Input("a")
	b := g.Input("b")
	ids := make([]dfg.NodeID, 3)
	for i := range ids {
		v := g.Op(dfg.OpAdd, "", a, b)
		g.MarkOutput(v)
		ids[i] = g.Value(v).Def
	}
	p := NewProblem(g)
	p.ExtraWeak = append(p.ExtraWeak, [2]dfg.NodeID{ids[0], ids[1]}, [2]dfg.NodeID{ids[1], ids[2]})
	s, err := p.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len != 1 {
		t.Errorf("weak chain of independent ops needs 1 step, got %d", s.Len)
	}
	// With a module binding the chain serializes (distinct steps) while
	// still honouring the weak order.
	p2 := NewProblem(g)
	p2.ExtraWeak = p.ExtraWeak
	for _, id := range ids {
		p2.ModuleOf[id] = 0
	}
	s2, err := p2.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Verify(s2); err != nil {
		t.Fatal(err)
	}
	if s2.Len != 3 {
		t.Errorf("bound weak chain needs 3 steps, got %d", s2.Len)
	}
	if !(s2.Step[ids[0]] <= s2.Step[ids[1]] && s2.Step[ids[1]] <= s2.Step[ids[2]]) {
		t.Errorf("weak order violated: %d %d %d", s2.Step[ids[0]], s2.Step[ids[1]], s2.Step[ids[2]])
	}
}

func TestWeakArcCycleWithStrictRejected(t *testing.T) {
	g := dfg.New("w4", 8)
	a := g.Input("a")
	b := g.Input("b")
	t1 := g.Op(dfg.OpAdd, "t1", a, b)
	t2 := g.Op(dfg.OpSub, "t2", a, b)
	g.MarkOutput(t1)
	g.MarkOutput(t2)
	n1 := g.Value(t1).Def
	n2 := g.Value(t2).Def
	p := NewProblem(g)
	p.Extra = append(p.Extra, [2]dfg.NodeID{n1, n2})
	p.ExtraWeak = append(p.ExtraWeak, [2]dfg.NodeID{n2, n1})
	if _, err := p.ASAP(); err == nil {
		t.Fatal("strict+weak cycle not rejected")
	}
}
