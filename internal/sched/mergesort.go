package sched

import (
	"sort"

	"repro/internal/dfg"
)

// Prefer compares two candidate operations during the merge-sort
// rescheduling of paper §4.3: a negative result schedules a before b, a
// positive result b before a. Implementations encode the
// controllability/observability enhancement strategy (rules SR1 and SR2);
// a zero result falls back to the smaller critical-path increase and then
// to node id.
type Prefer func(a, b dfg.NodeID) int

// OrderByStep returns ops sorted by their control step in s (ties by id):
// the sequential execution order the operations already have on their
// shared module.
func OrderByStep(ops []dfg.NodeID, s Schedule) []dfg.NodeID {
	out := append([]dfg.NodeID(nil), ops...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := s.Step[out[i]], s.Step[out[j]]
		if si != sj {
			return si < sj
		}
		return out[i] < out[j]
	})
	return out
}

// MergeOrders merges the sequential execution orders of two modules being
// merged into a single total order, in the manner of a merge sort (paper
// §4.3.1): at each point the two sequence heads are compared with prefer
// and the preferred head is emitted. The relative order within each input
// sequence is preserved, because those operations already share a module.
func MergeOrders(seqA, seqB []dfg.NodeID, prefer Prefer) []dfg.NodeID {
	if prefer == nil {
		prefer = func(a, b dfg.NodeID) int { return int(a - b) }
	}
	out := make([]dfg.NodeID, 0, len(seqA)+len(seqB))
	i, j := 0, 0
	for i < len(seqA) && j < len(seqB) {
		c := prefer(seqA[i], seqB[j])
		if c == 0 {
			c = int(seqA[i] - seqB[j])
		}
		if c <= 0 {
			out = append(out, seqA[i])
			i++
		} else {
			out = append(out, seqB[j])
			j++
		}
	}
	out = append(out, seqA[i:]...)
	out = append(out, seqB[j:]...)
	return out
}

// ChainArcs converts a total execution order into the precedence arcs that
// realize it: one arc between each consecutive pair. Appending these to
// Problem.Extra forces the list scheduler to place the merged operations in
// distinct, ordered control steps.
func ChainArcs(order []dfg.NodeID) [][2]dfg.NodeID {
	var arcs [][2]dfg.NodeID
	for i := 0; i+1 < len(order); i++ {
		arcs = append(arcs, [2]dfg.NodeID{order[i], order[i+1]})
	}
	return arcs
}
