// Package sched implements operation scheduling for high-level synthesis:
// ASAP/ALAP analysis, latency- and binding-constrained list scheduling, the
// force-directed scheduler of Paulin and Knight [11] (the paper's Approach
// 1 baseline), the mobility-path scheduler of Lee et al. [6,7] (Approach
// 2), and the merge-sort rescheduling transformation of paper §4.3 that
// realizes the scheduling constraints imposed by module and register
// mergers.
//
// All operations are unit-delay: an operation scheduled in control step s
// reads its operands during s and writes its result at the end of s, so a
// data-dependent operation must be scheduled at step s+1 or later.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
)

// Schedule assigns each operation node a control step, 1-based.
type Schedule struct {
	Step map[dfg.NodeID]int
	Len  int // number of control steps (max assigned step)
}

// Clone returns a deep copy of the schedule.
func (s Schedule) Clone() Schedule {
	c := Schedule{Step: make(map[dfg.NodeID]int, len(s.Step)), Len: s.Len}
	for k, v := range s.Step {
		c.Step[k] = v
	}
	return c
}

// OpsAt returns the nodes scheduled at the given step, ascending by id.
func (s Schedule) OpsAt(step int) []dfg.NodeID {
	var out []dfg.NodeID
	for n, st := range s.Step {
		if st == step {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Problem is a scheduling problem: the data-flow graph, extra precedence
// arcs added by the synthesis transformations (merge-sort orders and
// lifetime-disjointness arcs), a module binding (operations bound to the
// same module must occupy distinct control steps), and an optional latency
// bound.
type Problem struct {
	G *dfg.Graph
	// Extra lists additional precedence arcs: Extra[i][0] must be scheduled
	// strictly before Extra[i][1].
	Extra [][2]dfg.NodeID
	// ExtraWeak lists same-step-permitting arcs: ExtraWeak[i][0] must be
	// scheduled no later than ExtraWeak[i][1]. They realize the
	// read-then-overwrite register sharing pattern, where a value may die
	// in the very step its successor is written.
	ExtraWeak [][2]dfg.NodeID
	// ModuleOf binds operations to modules; operations sharing a module id
	// must be scheduled in pairwise distinct steps. Unbound operations may
	// be omitted.
	ModuleOf map[dfg.NodeID]int
	// MaxLen bounds the schedule length; 0 means unbounded.
	MaxLen int
}

// NewProblem returns an unconstrained problem over g.
func NewProblem(g *dfg.Graph) *Problem {
	return &Problem{G: g, ModuleOf: map[dfg.NodeID]int{}}
}

// Clone returns a deep copy of the problem (sharing the graph).
func (p *Problem) Clone() *Problem {
	c := &Problem{G: p.G, MaxLen: p.MaxLen, ModuleOf: make(map[dfg.NodeID]int, len(p.ModuleOf))}
	c.Extra = append(c.Extra, p.Extra...)
	c.ExtraWeak = append(c.ExtraWeak, p.ExtraWeak...)
	for k, v := range p.ModuleOf {
		c.ModuleOf[k] = v
	}
	return c
}

// preds returns data-flow plus extra predecessors of n (deduplicated).
func (p *Problem) preds(n dfg.NodeID) []dfg.NodeID {
	out := p.G.Preds(n)
	seen := map[dfg.NodeID]bool{}
	for _, x := range out {
		seen[x] = true
	}
	for _, e := range p.Extra {
		if e[1] == n && !seen[e[0]] {
			seen[e[0]] = true
			out = append(out, e[0])
		}
	}
	return out
}

// succs returns data-flow plus extra successors of n (deduplicated).
func (p *Problem) succs(n dfg.NodeID) []dfg.NodeID {
	out := p.G.Succs(n)
	seen := map[dfg.NodeID]bool{}
	for _, x := range out {
		seen[x] = true
	}
	for _, e := range p.Extra {
		if e[0] == n && !seen[e[1]] {
			seen[e[1]] = true
			out = append(out, e[1])
		}
	}
	return out
}

// weakPreds returns the weak (no-later-than) predecessors of n,
// deduplicated.
func (p *Problem) weakPreds(n dfg.NodeID) []dfg.NodeID {
	seen := map[dfg.NodeID]bool{}
	var out []dfg.NodeID
	for _, e := range p.ExtraWeak {
		if e[1] == n && !seen[e[0]] {
			seen[e[0]] = true
			out = append(out, e[0])
		}
	}
	return out
}

// weakSuccs returns the weak successors of n, deduplicated.
func (p *Problem) weakSuccs(n dfg.NodeID) []dfg.NodeID {
	seen := map[dfg.NodeID]bool{}
	var out []dfg.NodeID
	for _, e := range p.ExtraWeak {
		if e[0] == n && !seen[e[1]] {
			seen[e[1]] = true
			out = append(out, e[1])
		}
	}
	return out
}

// topo returns a topological order over data-flow plus extra arcs (weak
// arcs included as ordering edges), or an error if the arcs introduced a
// cycle.
func (p *Problem) topo() ([]dfg.NodeID, error) {
	nn := p.G.NumNodes()
	indeg := make([]int, nn)
	for i := 0; i < nn; i++ {
		indeg[i] = len(p.preds(dfg.NodeID(i))) + len(p.weakPreds(dfg.NodeID(i)))
	}
	var queue []dfg.NodeID
	for i := 0; i < nn; i++ {
		if indeg[i] == 0 {
			queue = append(queue, dfg.NodeID(i))
		}
	}
	var order []dfg.NodeID
	for len(queue) > 0 {
		sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, s := range p.succs(n) {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
		for _, s := range p.weakSuccs(n) {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != nn {
		return nil, fmt.Errorf("sched: precedence arcs form a cycle")
	}
	return order, nil
}

// ASAP returns the as-soon-as-possible schedule under precedence (data-flow
// plus extra arcs), ignoring module binding and latency.
func (p *Problem) ASAP() (Schedule, error) {
	order, err := p.topo()
	if err != nil {
		return Schedule{}, err
	}
	s := Schedule{Step: map[dfg.NodeID]int{}}
	for _, n := range order {
		step := 1
		for _, q := range p.preds(n) {
			if s.Step[q]+1 > step {
				step = s.Step[q] + 1
			}
		}
		for _, q := range p.weakPreds(n) {
			if s.Step[q] > step {
				step = s.Step[q]
			}
		}
		s.Step[n] = step
		if step > s.Len {
			s.Len = step
		}
	}
	return s, nil
}

// ALAP returns the as-late-as-possible schedule for the given latency.
func (p *Problem) ALAP(latency int) (Schedule, error) {
	order, err := p.topo()
	if err != nil {
		return Schedule{}, err
	}
	s := Schedule{Step: map[dfg.NodeID]int{}, Len: latency}
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		step := latency
		for _, q := range p.succs(n) {
			if s.Step[q]-1 < step {
				step = s.Step[q] - 1
			}
		}
		for _, q := range p.weakSuccs(n) {
			if s.Step[q] < step {
				step = s.Step[q]
			}
		}
		if step < 1 {
			return Schedule{}, fmt.Errorf("sched: latency %d infeasible", latency)
		}
		s.Step[n] = step
	}
	return s, nil
}

// Mobility returns, for every operation, ALAP(latency) - ASAP: the
// scheduling freedom used by force-directed and mobility-path scheduling.
func (p *Problem) Mobility(latency int) (map[dfg.NodeID]int, error) {
	asap, err := p.ASAP()
	if err != nil {
		return nil, err
	}
	alap, err := p.ALAP(latency)
	if err != nil {
		return nil, err
	}
	m := make(map[dfg.NodeID]int, p.G.NumNodes())
	for n, a := range asap.Step {
		m[n] = alap.Step[n] - a
	}
	return m, nil
}

// List performs priority-driven list scheduling honouring precedence, the
// module binding (one operation per module per step), and MaxLen. priority
// breaks ties among ready operations: smaller values schedule first; if
// nil, ALAP step (criticality) is used. It returns an error if MaxLen is
// exceeded or the arcs are cyclic.
func (p *Problem) List(priority map[dfg.NodeID]float64) (Schedule, error) {
	order, err := p.topo()
	if err != nil {
		return Schedule{}, err
	}
	if priority == nil {
		// Critical-path priority: earlier ALAP step first.
		asap, err := p.ASAP()
		if err != nil {
			return Schedule{}, err
		}
		alap, err := p.ALAP(asap.Len)
		if err != nil {
			return Schedule{}, err
		}
		priority = make(map[dfg.NodeID]float64, len(alap.Step))
		for n, st := range alap.Step {
			priority[n] = float64(st)
		}
	}
	_ = order
	s := Schedule{Step: map[dfg.NodeID]int{}}
	nn := p.G.NumNodes()
	remainingPreds := make([]int, nn)
	for i := 0; i < nn; i++ {
		remainingPreds[i] = len(p.preds(dfg.NodeID(i))) + len(p.weakPreds(dfg.NodeID(i)))
	}
	var ready []dfg.NodeID
	for i := 0; i < nn; i++ {
		if remainingPreds[i] == 0 {
			ready = append(ready, dfg.NodeID(i))
		}
	}
	scheduled := 0
	for step := 1; scheduled < nn; step++ {
		if p.MaxLen > 0 && step > p.MaxLen {
			return Schedule{}, fmt.Errorf("sched: latency bound %d exceeded", p.MaxLen)
		}
		// Schedule within the step until a fixpoint: weak-arc successors of
		// an operation placed this step may become placeable in the same
		// step.
		usedModule := map[int]bool{}
		chosen := map[dfg.NodeID]bool{}
		var stillReady []dfg.NodeID
		for {
			// Ready ops whose strict predecessors finished before step and
			// whose weak predecessors are placed no later than step.
			var avail []dfg.NodeID
			for _, n := range ready {
				if chosen[n] {
					continue
				}
				ok := true
				for _, q := range p.preds(n) {
					if st, done := s.Step[q]; !done || st >= step {
						ok = false
						break
					}
				}
				for _, q := range p.weakPreds(n) {
					if st, done := s.Step[q]; !done || st > step {
						ok = false
						break
					}
				}
				if ok {
					avail = append(avail, n)
				}
			}
			sort.Slice(avail, func(i, j int) bool {
				pi, pj := priority[avail[i]], priority[avail[j]]
				if pi != pj {
					return pi < pj
				}
				return avail[i] < avail[j]
			})
			progress := false
			for _, n := range avail {
				if m, bound := p.ModuleOf[n]; bound {
					if usedModule[m] {
						continue
					}
					usedModule[m] = true
				}
				s.Step[n] = step
				if step > s.Len {
					s.Len = step
				}
				chosen[n] = true
				progress = true
				scheduled++
				for _, q := range p.succs(n) {
					remainingPreds[q]--
					if remainingPreds[q] == 0 {
						stillReady = append(stillReady, q)
					}
				}
				for _, q := range p.weakSuccs(n) {
					remainingPreds[q]--
					if remainingPreds[q] == 0 {
						stillReady = append(stillReady, q)
					}
				}
			}
			ready = append(ready, stillReady...)
			stillReady = nil
			if !progress {
				break
			}
		}
		var nextReady []dfg.NodeID
		for _, n := range ready {
			if !chosen[n] {
				nextReady = append(nextReady, n)
			}
		}
		ready = nextReady
	}
	return s, nil
}

// Verify checks that s satisfies the problem: every node scheduled, all
// precedence arcs respected with unit delay, module binding honoured, and
// latency within MaxLen.
func (p *Problem) Verify(s Schedule) error {
	for _, n := range p.G.Nodes() {
		st, ok := s.Step[n.ID]
		if !ok {
			return fmt.Errorf("sched: node %s unscheduled", n.Name)
		}
		if st < 1 {
			return fmt.Errorf("sched: node %s at invalid step %d", n.Name, st)
		}
		if p.MaxLen > 0 && st > p.MaxLen {
			return fmt.Errorf("sched: node %s at step %d exceeds latency %d", n.Name, st, p.MaxLen)
		}
		for _, q := range p.preds(n.ID) {
			if s.Step[q] >= st {
				return fmt.Errorf("sched: node %s at step %d not after predecessor %s at step %d",
					n.Name, st, p.G.Node(q).Name, s.Step[q])
			}
		}
		for _, q := range p.weakPreds(n.ID) {
			if s.Step[q] > st {
				return fmt.Errorf("sched: node %s at step %d before weak predecessor %s at step %d",
					n.Name, st, p.G.Node(q).Name, s.Step[q])
			}
		}
	}
	atStep := map[[2]int]dfg.NodeID{} // (module, step) -> node
	for n, m := range p.ModuleOf {
		key := [2]int{m, s.Step[n]}
		if other, clash := atStep[key]; clash {
			return fmt.Errorf("sched: nodes %s and %s share module %d at step %d",
				p.G.Node(n).Name, p.G.Node(other).Name, m, s.Step[n])
		}
		atStep[key] = n
	}
	return nil
}

// String renders the schedule step by step.
func (s Schedule) String(g *dfg.Graph) string {
	var b []byte
	for step := 1; step <= s.Len; step++ {
		b = append(b, fmt.Sprintf("step %2d:", step)...)
		for _, n := range s.OpsAt(step) {
			nd := g.Node(n)
			b = append(b, fmt.Sprintf(" %s(%s)", nd.Name, nd.Kind)...)
		}
		b = append(b, '\n')
	}
	return string(b)
}
