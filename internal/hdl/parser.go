package hdl

import (
	"fmt"
	"strconv"

	"repro/internal/dfg"
	"repro/internal/exec"
)

// Compile parses a behavioural description and elaborates it into a
// data-flow graph at the given bit width. Compile never panics on
// malformed input: parse and elaboration errors are returned as ordinary
// errors, and any internal invariant violation (e.g. in graph
// construction) is recovered at this boundary as an *exec.ExecError.
func Compile(src string, width int) (*dfg.Graph, error) {
	if err := dfg.CheckWidth(width); err != nil {
		return nil, err
	}
	return exec.Guard1("hdl.compile", -1, func() (*dfg.Graph, error) {
		return compile(src, width)
	})
}

func compile(src string, width int) (*dfg.Graph, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	ent, err := p.parseDesign()
	if err != nil {
		return nil, err
	}
	return ent.elaborate(width)
}

// ast types.

type entity struct {
	name    string
	inputs  []string
	outputs []string
	vars    []string
	stmts   []assign
}

type assign struct {
	target   string
	isSignal bool // "<=" (signal/port) vs ":=" (variable)
	expr     expr
	line     int
}

type expr interface{}

type binExpr struct {
	op   string
	l, r expr
}

type unExpr struct {
	op string
	x  expr
}

type identExpr struct{ name string }

type numExpr struct{ val int64 }

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// cur returns the current token, clamped to the trailing tEOF so that a
// production which consumes the EOF token cannot run the cursor off the
// slice (the lexer always emits tEOF last).
func (p *parser) cur() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) expectSym(s string) error {
	t := p.next()
	if t.kind != tSym || t.text != s {
		return fmt.Errorf("hdl: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) expectKw(kw string) error {
	t := p.next()
	if t.kind != tIdent || t.text != kw {
		return fmt.Errorf("hdl: line %d: expected %q, got %q", t.line, kw, t.text)
	}
	return nil
}

func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tIdent && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptSym(s string) bool {
	if p.cur().kind == tSym && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tIdent {
		return "", fmt.Errorf("hdl: line %d: expected identifier, got %q", t.line, t.text)
	}
	return t.text, nil
}

// parseDesign parses entity ... end; architecture ... end.
func (p *parser) parseDesign() (*entity, error) {
	ent := &entity{}
	if err := p.expectKw("entity"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ent.name = name
	if err := p.expectKw("is"); err != nil {
		return nil, err
	}
	if err := p.expectKw("port"); err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	for {
		var names []string
		for {
			n, err := p.ident()
			if err != nil {
				return nil, err
			}
			names = append(names, n)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(":"); err != nil {
			return nil, err
		}
		dir := p.next()
		if dir.kind != tIdent || (dir.text != "in" && dir.text != "out") {
			return nil, fmt.Errorf("hdl: line %d: expected in/out, got %q", dir.line, dir.text)
		}
		if err := p.expectKw("integer"); err != nil {
			return nil, err
		}
		if dir.text == "in" {
			ent.inputs = append(ent.inputs, names...)
		} else {
			ent.outputs = append(ent.outputs, names...)
		}
		if p.acceptSym(";") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	p.acceptKw("entity")
	if p.cur().kind == tIdent && p.cur().text == ent.name {
		p.pos++
	}
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}

	if err := p.expectKw("architecture"); err != nil {
		return nil, err
	}
	if _, err := p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKw("of"); err != nil {
		return nil, err
	}
	if _, err := p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectKw("is"); err != nil {
		return nil, err
	}
	if err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	if err := p.expectKw("process"); err != nil {
		return nil, err
	}
	if p.acceptSym("(") { // sensitivity list, ignored
		for !p.acceptSym(")") {
			// Check before skipping: advancing past EOF and then reading
			// used to run the cursor off the token slice.
			if p.cur().kind == tEOF {
				return nil, fmt.Errorf("hdl: unterminated sensitivity list")
			}
			p.pos++
		}
	}
	// Variable declarations.
	for p.acceptKw("variable") {
		for {
			n, err := p.ident()
			if err != nil {
				return nil, err
			}
			ent.vars = append(ent.vars, n)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(":"); err != nil {
			return nil, err
		}
		if err := p.expectKw("integer"); err != nil {
			return nil, err
		}
		if err := p.expectSym(";"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	// Statements until "end process".
	for !(p.cur().kind == tIdent && p.cur().text == "end") {
		target, err := p.ident()
		if err != nil {
			return nil, err
		}
		line := p.cur().line
		var isSignal bool
		switch {
		case p.acceptSym(":="):
			isSignal = false
		case p.acceptSym("<="):
			isSignal = true
		default:
			return nil, fmt.Errorf("hdl: line %d: expected := or <= after %q", line, target)
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(";"); err != nil {
			return nil, err
		}
		ent.stmts = append(ent.stmts, assign{target: target, isSignal: isSignal, expr: e, line: line})
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if err := p.expectKw("process"); err != nil {
		return nil, err
	}
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	p.acceptKw("architecture")
	if p.cur().kind == tIdent {
		p.pos++
	}
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return ent, nil
}

// Expression grammar (loosest to tightest binding, VHDL-style):
//
//	expr   := rel (("and"|"or"|"xor") rel)*
//	rel    := sum (("<"|">"|"=") sum)?
//	sum    := term (("+"|"-") term)*
//	term   := factor ("*" factor)*
//	factor := "not" factor | ident | number | "(" expr ")"
func (p *parser) parseExpr() (expr, error) {
	l, err := p.parseRel()
	if err != nil {
		return nil, err
	}
	for {
		if p.acceptKw("and") {
			r, err := p.parseRel()
			if err != nil {
				return nil, err
			}
			l = binExpr{"and", l, r}
		} else if p.acceptKw("or") {
			r, err := p.parseRel()
			if err != nil {
				return nil, err
			}
			l = binExpr{"or", l, r}
		} else if p.acceptKw("xor") {
			r, err := p.parseRel()
			if err != nil {
				return nil, err
			}
			l = binExpr{"xor", l, r}
		} else {
			return l, nil
		}
	}
}

func (p *parser) parseRel() (expr, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<", ">", "="} {
		if p.acceptSym(op) {
			r, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return binExpr{op, l, r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseSum() (expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSym("+"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = binExpr{"+", l, r}
		case p.acceptSym("-"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = binExpr{"-", l, r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseTerm() (expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.acceptSym("*") {
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = binExpr{"*", l, r}
	}
	return l, nil
}

func (p *parser) parseFactor() (expr, error) {
	if p.acceptKw("not") {
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return unExpr{"not", x}, nil
	}
	t := p.next()
	switch t.kind {
	case tIdent:
		return identExpr{t.text}, nil
	case tNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("hdl: line %d: bad number %q", t.line, t.text)
		}
		return numExpr{v}, nil
	case tSym:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("hdl: line %d: unexpected token %q in expression", t.line, t.text)
}
