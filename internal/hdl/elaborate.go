package hdl

import (
	"fmt"

	"repro/internal/dfg"
)

var opKinds = map[string]dfg.OpKind{
	"+":   dfg.OpAdd,
	"-":   dfg.OpSub,
	"*":   dfg.OpMul,
	"<":   dfg.OpLt,
	">":   dfg.OpGt,
	"=":   dfg.OpEq,
	"and": dfg.OpAnd,
	"or":  dfg.OpOr,
	"xor": dfg.OpXor,
}

// elaborate lowers the parsed entity into a data-flow graph: every
// operation instance becomes a fresh node (the default allocation of
// paper §3), every variable assignment is SSA-renamed, and out-port
// signal assignments mark primary outputs.
func (e *entity) elaborate(width int) (*dfg.Graph, error) {
	g := dfg.New(e.name, width)
	env := map[string]dfg.ValueID{}
	version := map[string]int{}
	isOut := map[string]bool{}
	for _, o := range e.outputs {
		isOut[o] = true
	}
	declared := map[string]bool{}
	for _, in := range e.inputs {
		if declared[in] {
			return nil, fmt.Errorf("hdl: duplicate port %q", in)
		}
		declared[in] = true
		env[in] = g.Input(in)
	}
	for _, v := range e.vars {
		if declared[v] {
			return nil, fmt.Errorf("hdl: variable %q collides with a port", v)
		}
		declared[v] = true
	}
	for _, o := range e.outputs {
		if declared[o] {
			return nil, fmt.Errorf("hdl: duplicate port %q", o)
		}
		declared[o] = true
	}

	nConst := 0
	nOp := 0
	var lower func(x expr) (dfg.ValueID, error)
	lower = func(x expr) (dfg.ValueID, error) {
		switch x := x.(type) {
		case numExpr:
			nConst++
			return g.Const(fmt.Sprintf("__k%d_%d", x.val, nConst), x.val), nil
		case identExpr:
			v, ok := env[x.name]
			if !ok {
				return dfg.NoValue, fmt.Errorf("hdl: %q read before assignment", x.name)
			}
			return v, nil
		case unExpr:
			v, err := lower(x.x)
			if err != nil {
				return dfg.NoValue, err
			}
			nOp++
			return g.Op(dfg.OpNot, fmt.Sprintf("__t%d", nOp), v), nil
		case binExpr:
			k, ok := opKinds[x.op]
			if !ok {
				return dfg.NoValue, fmt.Errorf("hdl: unsupported operator %q", x.op)
			}
			l, err := lower(x.l)
			if err != nil {
				return dfg.NoValue, err
			}
			r, err := lower(x.r)
			if err != nil {
				return dfg.NoValue, err
			}
			nOp++
			return g.Op(k, fmt.Sprintf("__t%d", nOp), l, r), nil
		}
		return dfg.NoValue, fmt.Errorf("hdl: unknown expression node %T", x)
	}

	for _, st := range e.stmts {
		v, err := lower(st.expr)
		if err != nil {
			return nil, fmt.Errorf("hdl: line %d: %w", st.line, err)
		}
		if st.isSignal {
			if !isOut[st.target] {
				return nil, fmt.Errorf("hdl: line %d: signal assignment to %q, which is not an out port", st.line, st.target)
			}
			if _, already := env[st.target]; already {
				return nil, fmt.Errorf("hdl: line %d: out port %q assigned twice", st.line, st.target)
			}
			// Give the driving value the port's name where possible so the
			// simulation interface matches the entity.
			val := g.Value(v)
			if val.Kind == dfg.ValTemp && !val.IsOutput {
				if err := g.Rename(v, st.target); err != nil {
					return nil, err
				}
			} else {
				v = g.Op(dfg.OpMov, st.target, v)
			}
			g.MarkOutput(v)
			env[st.target] = v
			continue
		}
		if isOut[st.target] {
			return nil, fmt.Errorf("hdl: line %d: variable assignment to out port %q (use <=)", st.line, st.target)
		}
		found := false
		for _, vr := range e.vars {
			if vr == st.target {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("hdl: line %d: assignment to undeclared variable %q", st.line, st.target)
		}
		// SSA rename on reassignment. The versioned name must not collide
		// with any value already in the graph, nor with a declared port or
		// variable that has yet to be assigned — a user identifier can
		// legitimately be called a_2 — so bump the version until free.
		name := st.target
		if _, already := env[name]; already {
			for {
				version[st.target]++
				name = fmt.Sprintf("%s_%d", st.target, version[st.target]+1)
				if _, taken := g.ValueByName(name); !taken && !declared[name] {
					break
				}
			}
		}
		val := g.Value(v)
		if val.Kind == dfg.ValTemp && !val.IsOutput {
			if err := g.Rename(v, name); err != nil {
				return nil, err
			}
		} else {
			v = g.Op(dfg.OpMov, name, v)
		}
		env[st.target] = v
	}
	for _, o := range e.outputs {
		if _, ok := env[o]; !ok {
			return nil, fmt.Errorf("hdl: out port %q never assigned", o)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
