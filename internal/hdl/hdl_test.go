package hdl

import (
	"strings"
	"testing"

	"repro/internal/dfg"
)

const diffeqSrc = `
-- HAL differential equation benchmark, one Euler step.
entity diffeq is
  port ( x, y, u, dx, a : in integer;
         x1, y1, u1, exit_c : out integer );
end entity;

architecture behaviour of diffeq is
begin
  process (x, y, u, dx, a)
    variable t1, t2, t3, t4, t5, t6 : integer;
  begin
    t1 := 3 * x;
    t2 := u * dx;
    t3 := 3 * y;
    t4 := t1 * t2;
    t5 := t3 * dx;
    t6 := u - t4;
    u1 <= t6 - t5;
    y1 <= y + u * dx;
    x1 <= x + dx;
    exit_c <= (x + dx) < a;
  end process;
end architecture;
`

func TestCompileDiffeq(t *testing.T) {
	g, err := Compile(diffeqSrc, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Name != "diffeq" {
		t.Errorf("entity name %q", g.Name)
	}
	if len(g.Inputs()) != 5 {
		t.Errorf("%d inputs, want 5", len(g.Inputs()))
	}
	if len(g.Outputs()) != 4 {
		t.Errorf("%d outputs, want 4", len(g.Outputs()))
	}
	// Semantics check against the hand-built Diffeq benchmark.
	in := map[string]uint64{"x": 2, "y": 5, "u": 100, "dx": 1, "a": 10}
	got, err := g.Interpret(16, in)
	if err != nil {
		t.Fatal(err)
	}
	ref := dfg.Diffeq(16)
	want, err := ref.Interpret(16, in)
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[string]string{"x1": "x1", "y1": "y1", "u1": "u1", "exit_c": "exit"}
	for hdlName, refName := range pairs {
		if got[hdlName] != want[refName] {
			t.Errorf("output %s = %d, reference %s = %d", hdlName, got[hdlName], refName, want[refName])
		}
	}
}

func TestCompileOperatorsAndPrecedence(t *testing.T) {
	src := `
entity prec is
  port ( a, b, c : in integer; o1, o2, o3, o4 : out integer );
end entity;
architecture rtl of prec is
begin
  process (a, b, c)
  begin
    o1 <= a + b * c;
    o2 <= (a + b) * c;
    o3 <= a < b + c;
    o4 <= not a and b or c xor a;
  end process;
end architecture;
`
	g, err := Compile(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]uint64{"a": 3, "b": 5, "c": 2}
	out, err := g.Interpret(8, in)
	if err != nil {
		t.Fatal(err)
	}
	if out["o1"] != (3+5*2)&0xFF {
		t.Errorf("o1 = %d", out["o1"])
	}
	if out["o2"] != ((3+5)*2)&0xFF {
		t.Errorf("o2 = %d", out["o2"])
	}
	if out["o3"] != 1 { // 3 < 7
		t.Errorf("o3 = %d", out["o3"])
	}
	// not a = 0xFC; and b = 0x04; or c = 0x06; xor a = 0x05
	if out["o4"] != 0x05 {
		t.Errorf("o4 = %#x, want 0x05", out["o4"])
	}
}

func TestSSAReassignment(t *testing.T) {
	src := `
entity ssa is
  port ( a : in integer; y : out integer );
end entity;
architecture rtl of ssa is
begin
  process (a)
    variable t : integer;
  begin
    t := a + a;
    t := t * a;
    t := t - a;
    y <= t;
  end process;
end architecture;
`
	g, err := Compile(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Interpret(8, map[string]uint64{"a": 5})
	if err != nil {
		t.Fatal(err)
	}
	want := ((uint64(10) * 5) - 5) & 0xFF
	if out["y"] != want {
		t.Errorf("y = %d, want %d", out["y"], want)
	}
	if g.NumNodes() != 3 {
		t.Errorf("%d nodes, want 3 (one per operation instance)", g.NumNodes())
	}
}

func TestPassThroughAndDuplicatedDrivers(t *testing.T) {
	src := `
entity pt is
  port ( a, b : in integer; y, z : out integer );
end entity;
architecture rtl of pt is
begin
  process (a, b)
    variable t : integer;
  begin
    t := a + b;
    y <= t;
    z <= t;
  end process;
end architecture;
`
	g, err := Compile(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Interpret(8, map[string]uint64{"a": 1, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != 3 || out["z"] != 3 {
		t.Errorf("y=%d z=%d", out["y"], out["z"])
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"read before assign", `
entity e is port ( a : in integer; y : out integer ); end entity;
architecture r of e is begin process (a)
variable t : integer;
begin y <= t; end process; end architecture;`, "read before assignment"},
		{"undeclared variable", `
entity e is port ( a : in integer; y : out integer ); end entity;
architecture r of e is begin process (a)
begin q := a; y <= a + a; end process; end architecture;`, "undeclared variable"},
		{"signal to non-port", `
entity e is port ( a : in integer; y : out integer ); end entity;
architecture r of e is begin process (a)
variable t : integer;
begin t <= a; y <= a + a; end process; end architecture;`, "not an out port"},
		{"unassigned output", `
entity e is port ( a : in integer; y, z : out integer ); end entity;
architecture r of e is begin process (a)
begin y <= a + a; end process; end architecture;`, "never assigned"},
		{"double output assign", `
entity e is port ( a : in integer; y : out integer ); end entity;
architecture r of e is begin process (a)
begin y <= a + a; y <= a - a; end process; end architecture;`, "assigned twice"},
		{"bad char", `entity e % is`, "unexpected character"},
		{"bad syntax", `entity is`, "expected"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, 8)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestCommentsAndCase(t *testing.T) {
	src := `
-- leading comment
ENTITY UpCase IS
  PORT ( A : IN INTEGER; Y : OUT INTEGER );
END ENTITY;
ARCHITECTURE R OF UpCase IS
BEGIN
  PROCESS (A) -- trailing comment
  BEGIN
    Y <= A + 1; -- add one
  END PROCESS;
END ARCHITECTURE;
`
	g, err := Compile(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Interpret(8, map[string]uint64{"a": 9})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != 10 {
		t.Errorf("y = %d", out["y"])
	}
}
