package hdl

import (
	"strings"
	"testing"
)

// fuzzSeeds are the corpus starting points: the real benchmark source plus
// minimized inputs for each crash the fuzzer originally found (EOF cursor
// overruns in the parser and SSA-rename collisions in the elaborator).
var fuzzSeeds = []string{
	diffeqSrc,
	"",
	"entity",
	"entity e is port ( a : in integer ); end entity ; architecture b of e is begin process (",
	"entity e is port ( a : in integer ); end entity ; architecture b of e is begin process ( a",
	`entity e is
  port ( x : in integer; z : out integer );
end entity;
architecture b of e is
begin
  process (x)
    variable a, a_2 : integer;
  begin
    a := x;
    a_2 := x;
    a := x;
    z <= a;
  end process;
end architecture;
`,
	`entity e is
  port ( x : in integer; a_2 : out integer );
end entity;
architecture b of e is
begin
  process (x)
    variable a : integer;
  begin
    a := x;
    a := x;
    a_2 <= x;
  end process;
end architecture;
`,
	"entity e is port ( a : in integer ); end; architecture b of e is begin process begin a :=",
	"entity e is port ( a : in integer ); end; architecture b of e is begin process begin x := not",
	"entity e is port ( a : in integer ); end; architecture b of e is begin process begin x := ((1+",
}

// FuzzCompile asserts the front-end contract: Compile on arbitrary input
// either succeeds or returns an error — it never panics (the fuzz engine
// converts any panic into a failure) and never returns a nil graph without
// an error.
func FuzzCompile(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s, 8)
	}
	f.Fuzz(func(t *testing.T, src string, width int) {
		if width < 1 || width > 64 {
			width = 8
		}
		g, err := Compile(src, width)
		if err == nil && g == nil {
			t.Fatal("Compile returned nil graph and nil error")
		}
		if err != nil && !strings.Contains(err.Error(), "hdl:") && !strings.Contains(err.Error(), "dfg:") && !strings.Contains(err.Error(), "exec:") {
			t.Fatalf("error without package prefix: %v", err)
		}
	})
}

// FuzzLex asserts the lexer alone never panics and that every successful
// token stream is EOF-terminated (the parser's cursor clamp depends on it).
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tEOF {
			t.Fatalf("token stream not EOF-terminated: %v", toks)
		}
	})
}

// TestParserEOFRegressions pins the crash fixes: inputs that used to run
// the parser cursor past the token slice now produce ordinary errors.
func TestParserEOFRegressions(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unterminated sensitivity list", "entity e is port ( a : in integer ); end entity ; architecture b of e is begin process ("},
		{"sensitivity list at EOF", "entity e is port ( a : in integer ); end entity ; architecture b of e is begin process ( a , b"},
		{"truncated statement", "entity e is port ( a : in integer ); end; architecture b of e is begin process begin a :="},
		{"truncated not", "entity e is port ( a : in integer ); end; architecture b of e is begin process begin x := not"},
		{"truncated parens", "entity e is port ( a : in integer ); end; architecture b of e is begin process begin x := ((1+"},
		{"bare entity", "entity"},
		{"empty", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile(c.src, 8); err == nil {
				t.Fatal("malformed input compiled without error")
			}
		})
	}
}

// TestSSARenameAvoidsUserNames pins the elaborator fix: a reassigned
// variable's versioned name must dodge both an existing value called a_2
// and a declared-but-unassigned port called a_2.
func TestSSARenameAvoidsUserNames(t *testing.T) {
	t.Run("variable named a_2", func(t *testing.T) {
		g, err := Compile(fuzzSeeds[5], 8)
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			t.Fatal("nil graph")
		}
	})
	t.Run("out port named a_2", func(t *testing.T) {
		g, err := Compile(fuzzSeeds[6], 8)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := g.ValueByName("a_2"); !ok {
			t.Fatal("out port a_2 missing from graph")
		}
	})
}
