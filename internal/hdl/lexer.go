// Package hdl is the behavioural front end of the synthesis system: it
// compiles a VHDL-like behavioural subset into the data-flow graph IR of
// package dfg, performing the default allocation-friendly elaboration the
// paper attributes to its VHDL compiler (each operation instance becomes
// an individual node).
//
// The accepted subset is a single entity with integer in/out ports and a
// single process of variable declarations and assignments:
//
//	entity diffeq is
//	  port ( x, y, u, dx, a : in integer;
//	         x1, y1, u1 : out integer );
//	end entity;
//
//	architecture behaviour of diffeq is
//	begin
//	  process (x, y, u, dx, a)
//	    variable t1, t2 : integer;
//	  begin
//	    t1 := 3 * x;
//	    t2 := u * dx;
//	    x1 <= x + dx;
//	    ...
//	  end process;
//	end architecture;
//
// Expressions support +, -, *, <, >, =, and, or, xor, not, parentheses
// and integer literals. Variables may be reassigned; the elaborator
// SSA-renames each assignment. Signal assignment (<=) to an out port
// defines a primary output.
package hdl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token types.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tSym // punctuation and operators, stored in text
)

type token struct {
	kind tokKind
	text string
	line int
}

// lexer tokenizes the source.
type lexer struct {
	src   []rune
	pos   int
	line  int
	items []token
}

// lex tokenizes src. VHDL comments ("-- ...") run to end of line.
// Identifiers and keywords are case-insensitive and lowered.
func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '-' && l.peek(1) == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsLetter(c):
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.emit(tIdent, strings.ToLower(string(l.src[start:l.pos])))
		case unicode.IsDigit(c):
			start := l.pos
			for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tNumber, string(l.src[start:l.pos]))
		case c == ':' && l.peek(1) == '=':
			l.pos += 2
			l.emit(tSym, ":=")
		case c == '<' && l.peek(1) == '=':
			l.pos += 2
			l.emit(tSym, "<=")
		case strings.ContainsRune("+-*<>=();:,", c):
			l.pos++
			l.emit(tSym, string(c))
		default:
			return nil, fmt.Errorf("hdl: line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tEOF, "")
	return l.items, nil
}

func (l *lexer) peek(off int) rune {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) emit(k tokKind, text string) {
	l.items = append(l.items, token{kind: k, text: text, line: l.line})
}
