// Package parallel provides the bounded worker pool and deterministic
// ordered-merge helpers behind the system's evaluation hot paths: fault
// simulation, the deterministic ATPG phase, the tie-policy exploration of
// core.Synthesize and the experiment fan-out of cmd/hltsbench.
//
// Every helper makes the same guarantee: the observable result is
// independent of the worker count and of goroutine scheduling, and a
// worker count of 1 degenerates to a plain sequential loop with no
// goroutines at all. Callers uphold their half of the contract by making
// each job a pure function of its index (writes go to slot i of a result
// slice) and by funnelling all shared mutable state through the ordered
// commit callback of Ordered.
//
// The pool is hardened (package exec): a panic inside a job is recovered
// on its worker and reported as an *exec.ExecError through the ordinary
// smallest-index error contract — one crashing job never takes down the
// process or the sibling jobs, which always run to completion. The Ctx
// variants additionally check for cancellation at every iteration
// boundary: a cancelled context makes the unstarted jobs report ctx.Err()
// while the already-started ones drain normally.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/exec"
)

// Workers normalizes a worker-count knob: values below 1 mean "one worker
// per available CPU" (runtime.GOMAXPROCS(0)), and the result is always at
// least 1 so no knob value can construct an empty pool.
func Workers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Split divides one worker budget between an outer fan-out over n jobs
// and the parallelism inside each job: outer workers run jobs
// concurrently, and each job may use up to inner workers internally, with
// outer*inner never exceeding Workers(workers). Nesting two parallel
// layers without Split multiplies the two knobs into workers² goroutines;
// with it, the outer fan-out takes priority (it has the coarser, better-
// balanced work) and the inner budget is whatever the budget has left —
// inner is 1 whenever the outer layer can already keep every worker busy.
// Both halves of the returned budget are clamped to at least 1, whatever
// the inputs: a zero or negative flag value degrades to sequential
// execution instead of an empty pool.
func Split(workers, n int) (outer, inner int) {
	w := Workers(workers)
	outer = w
	if n >= 1 && outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = w / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// ForEach runs fn(i) for every i in [0, n) on up to `workers` goroutines
// (after Workers normalization) and returns the recorded error with the
// smallest index, matching what a sequential loop would return. fn's
// observable effects must depend only on i, never on which worker runs it
// or in what order; under that contract the result is identical at every
// worker count. A panicking fn is recovered and reported as an
// *exec.ExecError carrying its index.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cancellation: the context is checked before
// every job, and a job whose turn comes after cancellation records
// ctx.Err() instead of running. Already-running jobs drain normally (they
// are index-pure, so letting them finish is side-effect free).
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachWorkerCtx(ctx, workers, n,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with per-worker state: setup runs once on each
// worker goroutine — typically to allocate a private simulator — and its
// result is passed to every fn call that worker executes. Indices are
// distributed dynamically, so fn must not care which worker's state it
// receives beyond reusing it as scratch space.
//
// On error the parallel path still finishes the remaining jobs (jobs are
// index-independent, so this is side-effect free) and reports the
// smallest-index error; the sequential path stops at the first error,
// which under the purity contract is the same one.
func ForEachWorker[S any](workers, n int, setup func() (S, error), fn func(s S, i int) error) error {
	return ForEachWorkerCtx(context.Background(), workers, n, setup, fn)
}

// ForEachWorkerCtx is ForEachWorker with cancellation, with the same
// iteration-boundary contract as ForEachCtx.
func ForEachWorkerCtx[S any](ctx context.Context, workers, n int, setup func() (S, error), fn func(s S, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		s, err := setup()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := workOne(ctx, fn, s, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	setupErrs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := setup()
			if err != nil {
				setupErrs[w] = err
				return
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = workOne(ctx, fn, s, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range setupErrs {
		if err != nil {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// workOne is the per-claim body shared by the sequential and parallel
// paths of ForEachWorkerCtx: chaos claim/stall sites, the cancellation
// check, then the guarded job. The top-level recover is the worker
// goroutine's last resort — a panic raised outside the per-job guard
// (today only the injected claim-site panic can do that) still becomes a
// typed error at index i instead of crashing the pool.
func workOne[S any](ctx context.Context, fn func(s S, i int) error, s S, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = exec.Recovered("parallel.worker", i, r)
		}
	}()
	if err := claimStep(i); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return runJob(fn, s, i)
}

// runJob executes one job under panic isolation: a panic becomes an
// *exec.ExecError carrying the job index, recovered on the worker before
// it can unwind into the pool (or, on the sequential path, the caller).
func runJob[S any](fn func(s S, i int) error, s S, i int) error {
	return exec.Guard("parallel.job", i, func() error {
		if err := chaos.Step(chaos.SiteParallelJob); err != nil {
			return err
		}
		return fn(s, i)
	})
}

// Ordered runs produce(i) for every i in [0, n) on up to `workers`
// goroutines and calls commit(i, v) strictly in increasing index order on
// the calling goroutine. This is the speculative-pipeline primitive: a
// later index may be produced before an earlier one commits, so produce
// must be a pure function of its index (plus any caller-managed atomic
// flags published by commit — a produce that consults such a flag may
// return a cheap placeholder, which commit is then responsible for
// recognizing and discarding). commit owns all shared mutable state and
// needs no locking.
//
// The first error observed in commit order — whether from produce, from
// commit itself, or an *exec.ExecError recovered from a panic in either —
// aborts the run after the in-flight jobs drain, exactly mirroring the
// sequential produce/commit loop.
func Ordered[T any](workers, n int, produce func(i int) (T, error), commit func(i int, v T) error) error {
	return OrderedCtx(context.Background(), workers, n, produce, commit)
}

// OrderedCtx is Ordered with cancellation: the context is checked before
// each produce and each commit. A job whose production turn comes after
// cancellation records ctx.Err(), which then surfaces in commit order —
// so every commit with a smaller index than the cancellation point still
// lands, and the caller observes a clean prefix plus ctx.Err().
func OrderedCtx[T any](ctx context.Context, workers, n int, produce func(i int) (T, error), commit func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := claimStep(i); err != nil {
				return err
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			v, err := runProduce(produce, i)
			if err != nil {
				return err
			}
			if err := runCommit(commit, i, v); err != nil {
				return err
			}
		}
		return nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				produceOne(ctx, produce, results, errs, ready, &stop, i)
			}
		}()
	}
	var err error
	for i := 0; i < n; i++ {
		<-ready[i]
		if errs[i] != nil {
			err = errs[i]
			break
		}
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		if cerr := runCommit(commit, i, results[i]); cerr != nil {
			err = cerr
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	return err
}

// produceOne runs one claimed index on a pool worker. The ordering of its
// deferred calls is the liveness invariant of OrderedCtx: the recover runs
// before close(ready[i]), so whatever happens on this index — an injected
// claim-site panic included — errs[i] is populated and ready[i] is closed,
// and the commit loop can never block forever on a claimed index.
func produceOne[T any](ctx context.Context, produce func(i int) (T, error), results []T, errs []error, ready []chan struct{}, stop *atomic.Bool, i int) {
	defer close(ready[i])
	defer func() {
		if r := recover(); r != nil {
			errs[i] = exec.Recovered("parallel.worker", i, r)
		}
	}()
	if err := claimStep(i); err != nil {
		errs[i] = err
		return
	}
	if err := ctx.Err(); err != nil {
		errs[i] = err
	} else if !stop.Load() {
		results[i], errs[i] = runProduce(produce, i)
	}
}

// claimStep fires the claim/stall chaos sites for one claimed index. On
// the sequential paths (no produceOne recover above it) an injected claim
// panic is converted here, keeping the no-escaped-panic contract at every
// worker count.
func claimStep(i int) (err error) {
	if chaos.Active() == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = exec.Recovered("parallel.worker", i, r)
		}
	}()
	if err := chaos.Step(chaos.SiteParallelClaim); err != nil {
		return err
	}
	return chaos.Step(chaos.SiteParallelStall)
}

// runProduce and runCommit are the panic-isolation points of Ordered:
// produce panics are recovered on the producing worker, commit panics on
// the calling goroutine, both as *exec.ExecError with the job index.
func runProduce[T any](produce func(i int) (T, error), i int) (T, error) {
	return exec.Guard1("parallel.produce", i, func() (T, error) {
		if err := chaos.Step(chaos.SiteParallelProduce); err != nil {
			var zero T
			return zero, err
		}
		return produce(i)
	})
}

func runCommit[T any](commit func(i int, v T) error, i int, v T) error {
	return exec.Guard("parallel.commit", i, func() error {
		if err := chaos.Step(chaos.SiteParallelCommit); err != nil {
			return err
		}
		return commit(i, v)
	})
}
