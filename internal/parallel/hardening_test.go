package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
)

// samplePeakGoroutines runs fn while polling the process goroutine count,
// returning the peak and the settled count a little after fn returns (the
// same harness as internal/report/concurrency_test.go).
func samplePeakGoroutines(fn func()) (peak, settled int) {
	done := make(chan struct{})
	var peakCount atomic.Int64
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			if g := int64(runtime.NumGoroutine()); g > peakCount.Load() {
				peakCount.Store(g)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	fn()
	close(done)
	// Give exited workers a moment to be reaped before the settled sample.
	deadline := time.Now().Add(2 * time.Second)
	settled = runtime.NumGoroutine()
	base := settled
	for time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		settled = runtime.NumGoroutine()
		if settled <= base {
			base = settled
		}
	}
	return int(peakCount.Load()), base
}

// TestForEachPanicBecomesExecError is the satellite regression: a
// panicking job is recovered on its worker, reported as an *exec.ExecError
// with the correct index via the smallest-index contract, sibling jobs all
// still run, and no goroutines leak.
func TestForEachPanicBecomesExecError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 200
		before := runtime.NumGoroutine()
		var ran atomic.Int32
		var err error
		_, settled := samplePeakGoroutines(func() {
			err = ForEach(workers, n, func(i int) error {
				ran.Add(1)
				if i == 41 || i == 97 {
					panic("job blew up")
				}
				return nil
			})
		})
		ee, ok := exec.AsExecError(err)
		if !ok {
			t.Fatalf("workers=%d: err %v (%T) is not an ExecError", workers, err, err)
		}
		if ee.Index != 41 {
			t.Errorf("workers=%d: reported index %d, want 41 (smallest)", workers, ee.Index)
		}
		if ee.Stage != "parallel.job" {
			t.Errorf("workers=%d: stage %q", workers, ee.Stage)
		}
		if len(ee.Stack) == 0 {
			t.Errorf("workers=%d: no stack captured", workers)
		}
		// The parallel path drains every job even after a panic; the
		// sequential path stops at the first one, like a plain loop.
		if workers > 1 && ran.Load() != n {
			t.Errorf("workers=%d: only %d of %d jobs ran", workers, ran.Load(), n)
		}
		if settled > before+2 {
			t.Errorf("workers=%d: goroutines leaked: %d before, %d after", workers, before, settled)
		}
	}
}

func TestOrderedPanicBecomesExecError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var committed []int
		err := Ordered(workers, 60,
			func(i int) (int, error) {
				if i == 25 {
					panic("produce blew up")
				}
				return i, nil
			},
			func(i, v int) error {
				committed = append(committed, i)
				return nil
			})
		ee, ok := exec.AsExecError(err)
		if !ok {
			t.Fatalf("workers=%d: err %v is not an ExecError", workers, err)
		}
		if ee.Index != 25 || ee.Stage != "parallel.produce" {
			t.Errorf("workers=%d: got stage %q index %d, want parallel.produce 25", workers, ee.Stage, ee.Index)
		}
		if len(committed) != 25 {
			t.Errorf("workers=%d: %d commits before the panic index, want 25", workers, len(committed))
		}
		for i, c := range committed {
			if c != i {
				t.Fatalf("workers=%d: commit order broken at %d", workers, i)
			}
		}
	}
}

func TestOrderedCommitPanicBecomesExecError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Ordered(workers, 30,
			func(i int) (int, error) { return i, nil },
			func(i, v int) error {
				if i == 12 {
					panic("commit blew up")
				}
				return nil
			})
		ee, ok := exec.AsExecError(err)
		if !ok || ee.Index != 12 || ee.Stage != "parallel.commit" {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestForEachCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := atomic.Int32{}
		err := ForEachCtx(ctx, workers, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d jobs ran under a dead context", workers, ran.Load())
		}
	}
}

func TestForEachCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEachCtx(ctx, 4, 500, func(i int) error {
		if ran.Add(1) == 50 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 500 {
		t.Errorf("all %d jobs ran despite cancellation", n)
	}
}

func TestOrderedCtxCleanPrefixOnCancel(t *testing.T) {
	// Cancelling from commit must leave a clean committed prefix and
	// surface ctx.Err(): indices below the cancellation point all land,
	// nothing after the first cancelled index commits.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var committed []int
		err := OrderedCtx(ctx, workers, 300,
			func(i int) (int, error) { return i, nil },
			func(i, v int) error {
				committed = append(committed, i)
				if i == 20 {
					cancel()
				}
				return nil
			})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(committed) < 21 {
			t.Errorf("workers=%d: only %d commits, want the full prefix through 20", workers, len(committed))
		}
		for i, c := range committed {
			if c != i {
				t.Fatalf("workers=%d: commit order broken at %d", workers, i)
			}
		}
	}
}

func TestOrderedCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := OrderedCtx(ctx, workers, 40,
			func(i int) (int, error) { t.Error("produced under dead context"); return i, nil },
			func(i, v int) error { t.Error("committed under dead context"); return nil })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestForEachCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	var ran atomic.Int32
	err := ForEachCtx(ctx, 2, 1_000_000, func(i int) error {
		ran.Add(1)
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if n := ran.Load(); n >= 1_000_000 {
		t.Errorf("deadline did not stop the loop (%d jobs ran)", n)
	}
}

// TestOrderedCtxDoubleCancel: cancellation arriving twice — once from
// inside the commit callback and once from a concurrent goroutine — must
// behave exactly like a single cancellation: clean prefix, ctx error, no
// second-cancel panic, no leaked worker.
func TestOrderedCtxDoubleCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		release := make(chan struct{})
		go func() {
			<-release
			cancel() // the concurrent second cancel
		}()
		var committed []int
		var err error
		_, settled := samplePeakGoroutines(func() {
			err = OrderedCtx(ctx, workers, 400,
				func(i int) (int, error) { return i, nil },
				func(i, v int) error {
					committed = append(committed, i)
					if i == 15 {
						close(release)
						cancel()
					}
					return nil
				})
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		for i, c := range committed {
			if c != i {
				t.Fatalf("workers=%d: commit order broken at %d", workers, i)
			}
		}
		if settled > before+2 {
			t.Errorf("workers=%d: goroutines leaked: %d before, %d after", workers, before, settled)
		}
	}
}

// TestOrderedCtxDrainAfterError: when produce fails at an index, workers
// speculating past it must all run to completion and exit — the commit
// loop stops early, but nothing blocks and nothing leaks.
func TestOrderedCtxDrainAfterError(t *testing.T) {
	boom := errors.New("produce failed")
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		var produced atomic.Int32
		var committed []int
		var err error
		_, settled := samplePeakGoroutines(func() {
			err = OrderedCtx(context.Background(), workers, 120,
				func(i int) (int, error) {
					produced.Add(1)
					if i == 30 {
						return 0, boom
					}
					return i, nil
				},
				func(i, v int) error {
					committed = append(committed, i)
					return nil
				})
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want the produce error", workers, err)
		}
		if len(committed) != 30 {
			t.Errorf("workers=%d: %d commits, want exactly the prefix before the failure", workers, len(committed))
		}
		if p := produced.Load(); p < 31 {
			t.Errorf("workers=%d: only %d produced; the failing index never ran?", workers, p)
		}
		if settled > before+2 {
			t.Errorf("workers=%d: goroutines leaked after drain: %d before, %d after", workers, before, settled)
		}
	}
}
