package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 500
		hits := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyAndTiny(t *testing.T) {
	if err := ForEach(8, 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := ForEach(8, 1, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single job skipped")
	}
}

func TestForEachReturnsSmallestIndexError(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("job %d failed", i) }
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 100, func(i int) error {
			if i == 17 || i == 63 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 17 failed" {
			t.Errorf("workers=%d: err = %v, want job 17", workers, err)
		}
	}
}

func TestForEachWorkerStateIsPerWorker(t *testing.T) {
	// Each worker's state must be confined to that worker: a non-atomic
	// counter inside the state would race if states were shared.
	type scratch struct{ uses int }
	var created atomic.Int32
	const n = 300
	total := make([]int32, n)
	err := ForEachWorker(4, n,
		func() (*scratch, error) {
			created.Add(1)
			return &scratch{}, nil
		},
		func(s *scratch, i int) error {
			s.uses++ // races iff state is shared between workers
			atomic.AddInt32(&total[i], 1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if c := created.Load(); c < 1 || c > 4 {
		t.Errorf("created %d states", c)
	}
	for i, h := range total {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestForEachWorkerSetupError(t *testing.T) {
	boom := errors.New("setup failed")
	err := ForEachWorker(4, 10,
		func() (int, error) { return 0, boom },
		func(int, int) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestOrderedCommitsInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 400
		var committed []int
		err := Ordered(workers, n,
			func(i int) (int, error) { return i * i, nil },
			func(i, v int) error {
				if v != i*i {
					t.Fatalf("commit %d got %d", i, v)
				}
				committed = append(committed, i)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(committed) != n {
			t.Fatalf("workers=%d: committed %d of %d", workers, len(committed), n)
		}
		for i, c := range committed {
			if c != i {
				t.Fatalf("workers=%d: commit order broken at %d: %v...", workers, i, committed[:i+1])
			}
		}
	}
}

// TestOrderedSpeculationFlags exercises the drop-flag pattern used by the
// ATPG deterministic phase: commit publishes atomic flags that later
// produces consult, and flagged results are discarded at commit. The
// committed sum must be identical at every worker count.
func TestOrderedSpeculationFlags(t *testing.T) {
	const n = 256
	run := func(workers int) int {
		dropped := make([]atomic.Bool, n)
		sum := 0
		err := Ordered(workers, n,
			func(i int) (int, error) {
				if dropped[i].Load() {
					return 0, nil // placeholder; commit discards it
				}
				return i, nil
			},
			func(i, v int) error {
				if dropped[i].Load() {
					return nil
				}
				sum += v
				// Every multiple of 3 drops the next two indices.
				if i%3 == 0 {
					for _, j := range []int{i + 1, i + 2} {
						if j < n {
							dropped[j].Store(true)
						}
					}
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: sum %d, want %d", workers, got, want)
		}
	}
}

func TestOrderedProduceErrorStopsAtIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var committed []int
		err := Ordered(workers, 50,
			func(i int) (int, error) {
				if i == 20 {
					return 0, errors.New("produce 20")
				}
				return i, nil
			},
			func(i, v int) error {
				committed = append(committed, i)
				return nil
			})
		if err == nil || err.Error() != "produce 20" {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if len(committed) != 20 {
			t.Fatalf("workers=%d: committed %d indices, want 20", workers, len(committed))
		}
	}
}

func TestOrderedCommitErrorAborts(t *testing.T) {
	for _, workers := range []int{1, 4} {
		count := 0
		err := Ordered(workers, 50,
			func(i int) (int, error) { return i, nil },
			func(i, v int) error {
				count++
				if i == 10 {
					return errors.New("commit 10")
				}
				return nil
			})
		if err == nil || err.Error() != "commit 10" {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if count != 11 {
			t.Fatalf("workers=%d: %d commits, want 11", workers, count)
		}
	}
}

// TestPoolStress hammers both primitives with more workers than CPUs so
// `go test -race` explores real interleavings.
func TestPoolStress(t *testing.T) {
	const rounds = 20
	for r := 0; r < rounds; r++ {
		const n = 1000
		out := make([]int64, n)
		if err := ForEach(16, n, func(i int) error {
			out[i] = int64(i) * 3
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var sum int64
		if err := Ordered(16, n,
			func(i int) (int64, error) { return out[i], nil },
			func(i int, v int64) error { sum += v; return nil },
		); err != nil {
			t.Fatal(err)
		}
		if want := int64(n) * (n - 1) / 2 * 3; sum != want {
			t.Fatalf("round %d: sum %d, want %d", r, sum, want)
		}
	}
}

func TestSplitBudgetInvariant(t *testing.T) {
	for workers := -1; workers <= 20; workers++ {
		for n := 0; n <= 20; n++ {
			outer, inner := Split(workers, n)
			w := Workers(workers)
			if outer < 1 || inner < 1 {
				t.Fatalf("Split(%d, %d) = (%d, %d): layers must be at least 1", workers, n, outer, inner)
			}
			if outer*inner > w {
				t.Fatalf("Split(%d, %d) = (%d, %d): %d×%d exceeds the budget %d", workers, n, outer, inner, outer, inner, w)
			}
			if n >= 1 && outer > n {
				t.Fatalf("Split(%d, %d) = (%d, %d): more outer workers than jobs", workers, n, outer, inner)
			}
			// Fewer jobs than budget: the leftover must flow inward.
			if n >= 1 && n < w && inner < w/n {
				t.Fatalf("Split(%d, %d) = (%d, %d): inner budget %d wastes the pool (want >= %d)", workers, n, outer, inner, inner, w/n)
			}
		}
	}
	// The documented headline case: a wide outer fan-out leaves inner = 1.
	if outer, inner := Split(8, 100); outer != 8 || inner != 1 {
		t.Errorf("Split(8, 100) = (%d, %d), want (8, 1)", outer, inner)
	}
	// And a narrow fan-out hands the budget to the inner layer.
	if outer, inner := Split(8, 2); outer != 2 || inner != 4 {
		t.Errorf("Split(8, 2) = (%d, %d), want (2, 4)", outer, inner)
	}
}

// TestSplitClampsDegenerateBudgets is the satellite regression for the
// zero/negative clamp: no input, however hostile, may yield a layer
// below 1 — a zero would turn downstream ForEach(outer*...) into a no-op
// and silently skip work.
func TestSplitClampsDegenerateBudgets(t *testing.T) {
	cases := []struct{ workers, n int }{
		{0, 0}, {0, -1}, {-1, 0}, {-8, -8},
		{1, -5}, {-1000000, 3}, {3, -1000000},
	}
	for _, c := range cases {
		outer, inner := Split(c.workers, c.n)
		if outer < 1 || inner < 1 {
			t.Errorf("Split(%d, %d) = (%d, %d); both layers must clamp to >= 1", c.workers, c.n, outer, inner)
		}
		if w := Workers(c.workers); outer*inner > w {
			t.Errorf("Split(%d, %d) = (%d, %d) exceeds the normalized budget %d", c.workers, c.n, outer, inner, w)
		}
	}
	if got := Workers(-1000000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1000000) = %d, want GOMAXPROCS", got)
	}
}
