// Package testability implements the register-transfer-level testability
// analysis of Gu, Kuchcinski and Peng [3] on the ETPN data path. Each
// data-path node receives four measures: combinational controllability
// (CC) and observability (CO) in (0,1] reflecting test-generation cost and
// fault coverage, and sequential controllability (SC) and observability
// (SO) >= 0 counting the sequential depth (register crossings) a test must
// traverse.
//
// The analysis assigns CC=1, SC=0 to primary inputs and propagates forward
// until the primary outputs are reached; observability is propagated the
// same way in reverse from CO=1, SO=0 at the primary outputs (paper §2).
// Cyclic data paths (created by register/module sharing) are handled by a
// monotone fixpoint iteration.
package testability

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dfg"
	"repro/internal/etpn"
)

// Factors are the per-module-class transfer factors: CTF scales
// controllability through the module, OTF scales observability.
type Factors struct {
	CTF float64
	OTF float64
}

// DefaultFactors maps module classes (sched.ExactClass / sched.ALUClass
// names) to transfer factors. Multipliers are markedly harder to observe
// through than to control through; comparators compress a word to one bit
// and are nearly opaque for observability.
var DefaultFactors = map[string]Factors{
	"+":     {0.90, 0.90},
	"-":     {0.90, 0.90},
	"±":     {0.90, 0.90},
	"*":     {0.70, 0.50},
	"<":     {0.50, 0.30},
	">":     {0.50, 0.30},
	"==":    {0.50, 0.30},
	"&":     {0.95, 0.80},
	"|":     {0.95, 0.80},
	"^":     {0.95, 0.95},
	"~":     {1.00, 1.00},
	"mov":   {1.00, 1.00},
	"logic": {0.95, 0.80},
}

// Config tunes the analysis.
type Config struct {
	// RegFactor degrades combinational measures per register crossing.
	RegFactor float64
	// ConstCC is the controllability of a wired constant: its value is
	// known but cannot be chosen, restricting fault sensitization.
	ConstCC float64
	// Lambda weights sequential depth when collapsing (CC,SC) into a single
	// controllability score (see Ctrl/Obs).
	Lambda float64
	// Factors overrides DefaultFactors per class when non-nil.
	Factors map[string]Factors
	// MaxIter bounds the fixpoint iteration.
	MaxIter int
	// Eps is the convergence threshold.
	Eps float64
	// ScanNodes marks data-path register nodes implemented as scan
	// registers: they are directly controllable and observable through the
	// scan chain, so the analysis anchors them like primary ports. Keys
	// are data-path node ids.
	ScanNodes map[int]bool
}

// DefaultConfig returns the configuration used throughout the paper
// reproduction.
func DefaultConfig() Config {
	return Config{RegFactor: 0.98, ConstCC: 0.60, Lambda: 0.5, MaxIter: 200, Eps: 1e-9}
}

// Metrics holds the four testability measures per data-path node id.
type Metrics struct {
	CC, SC, CO, SO []float64
	cfg            Config
}

func (c Config) factors(class string) Factors {
	tbl := c.Factors
	if tbl == nil {
		tbl = DefaultFactors
	}
	if f, ok := tbl[class]; ok {
		return f
	}
	return Factors{0.85, 0.75}
}

// Analyze computes the testability metrics of every node of d's data path.
func Analyze(d *etpn.Design, cfg Config) *Metrics {
	n := len(d.Nodes)
	m := &Metrics{
		CC: make([]float64, n), SC: make([]float64, n),
		CO: make([]float64, n), SO: make([]float64, n),
		cfg: cfg,
	}
	for i := range m.SC {
		m.SC[i] = math.Inf(1)
		m.SO[i] = math.Inf(1)
	}
	// Sources.
	for _, nd := range d.Nodes {
		switch nd.Kind {
		case etpn.KindInPort:
			m.CC[nd.ID], m.SC[nd.ID] = 1, 0
		case etpn.KindConst:
			m.CC[nd.ID], m.SC[nd.ID] = cfg.ConstCC, 0
		case etpn.KindOutPort:
			m.CO[nd.ID], m.SO[nd.ID] = 1, 0
		case etpn.KindRegister:
			if cfg.ScanNodes[nd.ID] {
				// Scan registers load through the chain (one scan cycle)
				// and are observed through it directly.
				m.CC[nd.ID], m.SC[nd.ID] = 1, 1
				m.CO[nd.ID], m.SO[nd.ID] = 1, 0
			}
		}
	}

	// Forward controllability fixpoint.
	for iter := 0; iter < cfg.MaxIter; iter++ {
		changed := false
		for _, nd := range d.Nodes {
			cc, sc, ok := m.nodeCtrlIn(d, nd)
			if !ok {
				continue
			}
			if better(cc, sc, m.CC[nd.ID], m.SC[nd.ID], cfg.Lambda, cfg.Eps) {
				m.CC[nd.ID], m.SC[nd.ID] = cc, sc
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Backward observability fixpoint.
	for iter := 0; iter < cfg.MaxIter; iter++ {
		changed := false
		for _, nd := range d.Nodes {
			co, so, ok := m.nodeObsOut(d, nd)
			if !ok {
				continue
			}
			if better(co, so, m.CO[nd.ID], m.SO[nd.ID], cfg.Lambda, cfg.Eps) {
				m.CO[nd.ID], m.SO[nd.ID] = co, so
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Unreachable nodes: clamp infinities to a large finite depth so
	// downstream arithmetic stays sane.
	for i := range m.SC {
		if math.IsInf(m.SC[i], 1) {
			m.SC[i] = float64(n)
		}
		if math.IsInf(m.SO[i], 1) {
			m.SO[i] = float64(n)
		}
	}
	return m
}

// better reports whether the candidate (combinational, sequential) pair
// scores higher than the incumbent under the lambda-collapsed metric.
func better(c, s, oc, os, lambda, eps float64) bool {
	return score(c, s, lambda) > score(oc, os, lambda)+eps
}

func score(c, s, lambda float64) float64 {
	if math.IsInf(s, 1) {
		return 0
	}
	return c / (1 + lambda*s)
}

// nodeCtrlIn computes the controllability a node derives from its input
// lines: the best input line for registers (the node inherits the best
// controllability of any input line, paper §3), and the transfer through
// the module for module nodes (all operand ports must be controlled).
func (m *Metrics) nodeCtrlIn(d *etpn.Design, nd *etpn.Node) (float64, float64, bool) {
	if nd.Kind == etpn.KindRegister && m.cfg.ScanNodes[nd.ID] {
		return 0, 0, false // anchored by the scan chain
	}
	switch nd.Kind {
	case etpn.KindInPort, etpn.KindConst:
		return 0, 0, false // fixed sources
	case etpn.KindRegister, etpn.KindOutPort:
		bestC, bestS := 0.0, math.Inf(1)
		found := false
		for _, a := range d.ArcsInto(nd.ID) {
			cc, sc := m.CC[a.From], m.SC[a.From]
			if cc == 0 {
				continue
			}
			// Loading a register crosses one clock boundary.
			if nd.Kind == etpn.KindRegister {
				cc *= m.cfg.RegFactor
				sc++
			}
			if !found || better(cc, sc, bestC, bestS, m.cfg.Lambda, 0) {
				bestC, bestS, found = cc, sc, true
			}
		}
		return bestC, bestS, found
	case etpn.KindModule:
		// Every operand port must be controllable; a port fed by several
		// sources uses its best source. If any port has no controllable
		// source yet, the module is not yet controllable (computing a
		// partial product would break the monotonicity of the fixpoint).
		ports := map[int][2]float64{}
		allPorts := map[int]bool{}
		for _, a := range d.ArcsInto(nd.ID) {
			allPorts[a.ToPort] = true
			cc, sc := m.CC[a.From], m.SC[a.From]
			if cc == 0 {
				continue
			}
			cur, ok := ports[a.ToPort]
			if !ok || better(cc, sc, cur[0], cur[1], m.cfg.Lambda, 0) {
				ports[a.ToPort] = [2]float64{cc, sc}
			}
		}
		if len(ports) == 0 || len(ports) != len(allPorts) {
			return 0, 0, false
		}
		f := m.cfg.factors(nd.Class)
		cc := f.CTF
		sc := 0.0
		// Multiply ports in sorted order: float multiplication is not
		// associative under rounding, so ranging over the map directly
		// would let Go's randomized map order perturb cc in its last ulp
		// and make the fixpoint (and everything ranked by it) vary from
		// run to run.
		ids := make([]int, 0, len(ports))
		for id := range ports {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			p := ports[id]
			cc *= p[0]
			if p[1] > sc {
				sc = p[1]
			}
		}
		return cc, sc, true
	}
	return 0, 0, false
}

// nodeObsOut computes the observability a node derives from its output
// lines: the best output line (paper §3). Observing a value through a
// module requires controlling the module's other operand ports, which
// scales the line observability by their controllability.
func (m *Metrics) nodeObsOut(d *etpn.Design, nd *etpn.Node) (float64, float64, bool) {
	if nd.Kind == etpn.KindOutPort {
		return 0, 0, false // fixed sink
	}
	if nd.Kind == etpn.KindRegister && m.cfg.ScanNodes[nd.ID] {
		return 0, 0, false // anchored by the scan chain
	}
	bestC, bestS := 0.0, math.Inf(1)
	found := false
	for _, a := range d.ArcsFrom(nd.ID) {
		to := d.Nodes[a.To]
		var co, so float64
		switch to.Kind {
		case etpn.KindOutPort:
			co, so = 1, 0
		case etpn.KindRegister:
			co, so = m.CO[a.To]*m.cfg.RegFactor, m.SO[a.To]+1
		case etpn.KindModule:
			co, so = m.CO[a.To], m.SO[a.To]
			f := m.cfg.factors(to.Class)
			co *= f.OTF
			// Control of the sibling operand ports gates propagation.
			for _, sib := range d.ArcsInto(a.To) {
				if sib.ToPort == a.ToPort {
					continue
				}
				// Best source controllability on the sibling port.
				best := 0.0
				for _, s2 := range d.ArcsInto(a.To) {
					if s2.ToPort == sib.ToPort && m.CC[s2.From] > best {
						best = m.CC[s2.From]
					}
				}
				co *= best
				break // one multiplier per distinct sibling port set
			}
		default:
			continue
		}
		if co == 0 || math.IsInf(so, 1) {
			continue
		}
		if !found || better(co, so, bestC, bestS, m.cfg.Lambda, 0) {
			bestC, bestS, found = co, so, true
		}
	}
	return bestC, bestS, found
}

// Config returns the configuration the metrics were computed with.
func (m *Metrics) Config() Config { return m.cfg }

// Ctrl collapses (CC, SC) into a single controllability score in [0,1]:
// higher is easier to control.
func (m *Metrics) Ctrl(node int) float64 { return score(m.CC[node], m.SC[node], m.cfg.Lambda) }

// Obs collapses (CO, SO) into a single observability score in [0,1].
func (m *Metrics) Obs(node int) float64 { return score(m.CO[node], m.SO[node], m.cfg.Lambda) }

// Testability is the product of Ctrl and Obs: the overall ease of testing
// faults at the node.
func (m *Metrics) Testability(node int) float64 { return m.Ctrl(node) * m.Obs(node) }

// SeqDepth is the total sequential depth through the node: the number of
// register crossings on the best control path in plus the best observation
// path out. Lee's rule SR1 minimizes exactly this quantity.
func (m *Metrics) SeqDepth(node int) float64 { return m.SC[node] + m.SO[node] }

// BalanceScore scores merging node u into node v under the
// controllability/observability balance principle (paper §3): the first
// term is positive when one node contributes good controllability and the
// other good observability, and the second term values the testability the
// merged node inherits — the best controllability of any input line and
// the best observability of any output line of the pair.
func (m *Metrics) BalanceScore(u, v int) float64 {
	balance := (m.Ctrl(u) - m.Ctrl(v)) * (m.Obs(v) - m.Obs(u))
	inherited := math.Max(m.Ctrl(u), m.Ctrl(v)) * math.Max(m.Obs(u), m.Obs(v))
	return balance + 0.01*inherited
}

// Summary renders the metrics of every node for diagnostics.
func (m *Metrics) Summary(d *etpn.Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %6s %5s %6s %5s %7s %7s\n", "node", "CC", "SC", "CO", "SO", "Ctrl", "Obs")
	for _, nd := range d.Nodes {
		fmt.Fprintf(&b, "%-18s %6.3f %5.1f %6.3f %5.1f %7.4f %7.4f\n",
			nd.Name, m.CC[nd.ID], m.SC[nd.ID], m.CO[nd.ID], m.SO[nd.ID], m.Ctrl(nd.ID), m.Obs(nd.ID))
	}
	return b.String()
}

// MeanTestability averages Testability over registers and modules: the
// design-level figure the synthesis loop tries to maximize.
func MeanTestability(d *etpn.Design, m *Metrics) float64 {
	sum, cnt := 0.0, 0
	for _, nd := range d.Nodes {
		if nd.Kind == etpn.KindRegister || nd.Kind == etpn.KindModule {
			sum += m.Testability(nd.ID)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// ValueCtrl returns the controllability score of the register holding v,
// or of its port/constant if not stored.
func ValueCtrl(d *etpn.Design, m *Metrics, v dfg.ValueID) float64 {
	if r, ok := d.Alloc.RegOf[v]; ok {
		return m.Ctrl(d.RegNode(r))
	}
	if n, ok := d.InNode(v); ok {
		return m.Ctrl(n)
	}
	return 0
}
