package testability

import (
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/sched"
)

func build(t *testing.T, g *dfg.Graph) *etpn.Design {
	t.Helper()
	s, err := sched.NewProblem(g).ASAP()
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	regOf, n := alloc.RegisterLeftEdge(g, life)
	a := alloc.BindModules(g, s, sched.ExactClass, regOf, n)
	d, err := etpn.Build(g, s, a, life, etpn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func analyze(t *testing.T, g *dfg.Graph) (*etpn.Design, *Metrics) {
	t.Helper()
	d := build(t, g)
	return d, Analyze(d, DefaultConfig())
}

// build1to1 builds a design with the default one-node-per-op/value
// allocation, which exposes path depth (left-edge reuses registers along
// chains and flattens it).
func build1to1(t *testing.T, g *dfg.Graph) (*etpn.Design, *Metrics) {
	t.Helper()
	s, err := sched.NewProblem(g).ASAP()
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	a := alloc.Default(g, sched.ExactClass, life)
	d, err := etpn.Build(g, s, a, life, etpn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d, Analyze(d, DefaultConfig())
}

func TestRangesAllBenchmarks(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		d, m := analyze(t, g)
		for _, nd := range d.Nodes {
			if m.CC[nd.ID] < 0 || m.CC[nd.ID] > 1 {
				t.Errorf("%s node %s: CC = %f out of range", name, nd.Name, m.CC[nd.ID])
			}
			if m.CO[nd.ID] < 0 || m.CO[nd.ID] > 1 {
				t.Errorf("%s node %s: CO = %f out of range", name, nd.Name, m.CO[nd.ID])
			}
			if m.SC[nd.ID] < 0 || m.SO[nd.ID] < 0 {
				t.Errorf("%s node %s: negative sequential measure", name, nd.Name)
			}
		}
	}
}

func TestPrimaryPortsAnchors(t *testing.T) {
	g := dfg.Ex(8)
	d, m := analyze(t, g)
	for _, nd := range d.Nodes {
		switch nd.Kind {
		case etpn.KindInPort:
			if m.CC[nd.ID] != 1 || m.SC[nd.ID] != 0 {
				t.Errorf("in-port %s: (CC,SC)=(%f,%f), want (1,0)", nd.Name, m.CC[nd.ID], m.SC[nd.ID])
			}
		case etpn.KindOutPort:
			if m.CO[nd.ID] != 1 || m.SO[nd.ID] != 0 {
				t.Errorf("out-port %s: (CO,SO)=(%f,%f), want (1,0)", nd.Name, m.CO[nd.ID], m.SO[nd.ID])
			}
		}
	}
}

func TestEveryNodeReachable(t *testing.T) {
	// In a 1:1 allocation of a connected DFG, every register and module is
	// both controllable and observable.
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		d, m := analyze(t, g)
		for _, nd := range d.Nodes {
			if nd.Kind != etpn.KindRegister && nd.Kind != etpn.KindModule {
				continue
			}
			if m.CC[nd.ID] <= 0 {
				t.Errorf("%s node %s uncontrollable (CC=0)", name, nd.Name)
			}
			if m.CO[nd.ID] <= 0 {
				t.Errorf("%s node %s unobservable (CO=0)", name, nd.Name)
			}
		}
	}
}

func TestSequentialDepthGrowsAlongChain(t *testing.T) {
	// A linear chain a -> +1 -> +1 -> +1: SC increases with distance from
	// the input, SO increases with distance from the output.
	g := dfg.New("chain", 8)
	a := g.Input("a")
	b := g.Input("b")
	t1 := g.Op(dfg.OpAdd, "t1", a, b)
	t2 := g.Op(dfg.OpAdd, "t2", t1, b)
	t3 := g.Op(dfg.OpAdd, "t3", t2, b)
	g.MarkOutput(t3)
	d, m := build1to1(t, g)

	regSC := func(v dfg.ValueID) float64 { return m.SC[d.RegNode(d.Alloc.RegOf[v])] }
	regSO := func(v dfg.ValueID) float64 { return m.SO[d.RegNode(d.Alloc.RegOf[v])] }
	if !(regSC(t1) < regSC(t2) && regSC(t2) < regSC(t3)) {
		t.Errorf("SC not increasing along chain: %f %f %f", regSC(t1), regSC(t2), regSC(t3))
	}
	if !(regSO(t3) < regSO(t2) && regSO(t2) < regSO(t1)) {
		t.Errorf("SO not decreasing toward output: %f %f %f", regSO(t1), regSO(t2), regSO(t3))
	}
	if !(m.Ctrl(d.RegNode(d.Alloc.RegOf[t1])) > m.Ctrl(d.RegNode(d.Alloc.RegOf[t3]))) {
		t.Error("controllability should degrade away from inputs")
	}
}

func TestMultiplierHarderThanAdder(t *testing.T) {
	// Two parallel paths of equal shape, one through +, one through *:
	// the multiplier module must be harder to observe through.
	g := dfg.New("mulvadd", 8)
	a := g.Input("a")
	b := g.Input("b")
	s := g.Op(dfg.OpAdd, "s", a, b)
	p := g.Op(dfg.OpMul, "p", a, b)
	g.MarkOutput(s)
	g.MarkOutput(p)
	d, m := analyze(t, g)
	var addMod, mulMod int
	for _, nd := range d.Nodes {
		if nd.Kind == etpn.KindModule {
			if nd.Class == "+" {
				addMod = nd.ID
			}
			if nd.Class == "*" {
				mulMod = nd.ID
			}
		}
	}
	if !(m.CC[mulMod] < m.CC[addMod]) {
		t.Errorf("mul CC %f should be below add CC %f", m.CC[mulMod], m.CC[addMod])
	}
}

func TestBalanceScore(t *testing.T) {
	// Chain register near input: good ctrl, worse obs. Near output: the
	// reverse. Their balance score must be positive (good merge), while a
	// node with itself is zero.
	g := dfg.New("chain", 8)
	a := g.Input("a")
	b := g.Input("b")
	t1 := g.Op(dfg.OpAdd, "t1", a, b)
	t2 := g.Op(dfg.OpAdd, "t2", t1, b)
	t3 := g.Op(dfg.OpAdd, "t3", t2, b)
	t4 := g.Op(dfg.OpAdd, "t4", t3, b)
	g.MarkOutput(t4)
	d, m := build1to1(t, g)
	near := d.RegNode(d.Alloc.RegOf[t1]) // controllable, far from output
	far := d.RegNode(d.Alloc.RegOf[t4])  // observable, far from input
	if m.BalanceScore(near, far) <= 0 {
		t.Errorf("balance score of complementary nodes = %f, want > 0", m.BalanceScore(near, far))
	}
	// A complementary pair must outscore pairing two equally-placed nodes:
	// the balance term vanishes for the latter.
	if m.BalanceScore(near, far) <= m.BalanceScore(near, near) {
		t.Errorf("complementary pair %f should beat self pair %f",
			m.BalanceScore(near, far), m.BalanceScore(near, near))
	}
}

func TestCyclicDataPathConverges(t *testing.T) {
	// Merge registers/modules to create a structural cycle and check the
	// fixpoint still terminates with sane values.
	g := dfg.New("cyc", 8)
	a := g.Input("a")
	b := g.Input("b")
	t1 := g.Op(dfg.OpAdd, "t1", a, b)
	t2 := g.Op(dfg.OpAdd, "t2", t1, b)
	t3 := g.Op(dfg.OpAdd, "t3", t2, t1)
	g.MarkOutput(t3)
	p := sched.NewProblem(g)
	p.ModuleOf[0], p.ModuleOf[1], p.ModuleOf[2] = 0, 0, 0
	s, err := p.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	al := alloc.Default(g, sched.ExactClass, life)
	if err := al.MergeModules(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := al.MergeModules(al.ModuleOf[0], al.ModuleOf[2]); err != nil {
		t.Fatal(err)
	}
	d, err := etpn.Build(g, s, al, life, etpn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := Analyze(d, DefaultConfig())
	for _, nd := range d.Nodes {
		if m.CC[nd.ID] < 0 || m.CC[nd.ID] > 1 || m.CO[nd.ID] < 0 || m.CO[nd.ID] > 1 {
			t.Errorf("node %s out of range after cyclic analysis", nd.Name)
		}
	}
	// The shared module must still be controllable and observable.
	mod := d.ModNode(0)
	if m.CC[mod] == 0 || m.CO[mod] == 0 {
		t.Error("shared module lost testability in cyclic data path")
	}
}

func TestMeanTestabilityPositive(t *testing.T) {
	g := dfg.Diffeq(8)
	d, m := analyze(t, g)
	mt := MeanTestability(d, m)
	if mt <= 0 || mt > 1 {
		t.Errorf("mean testability = %f out of (0,1]", mt)
	}
}

func TestValueCtrl(t *testing.T) {
	g := dfg.Ex(8)
	d, m := analyze(t, g)
	va, _ := g.ValueByName("a")
	if ValueCtrl(d, m, va) <= 0 {
		t.Error("input variable must have positive controllability")
	}
}

func TestSummaryRendering(t *testing.T) {
	g := dfg.Tseng(8)
	d, m := analyze(t, g)
	s := m.Summary(d)
	if !strings.Contains(s, "CC") || !strings.Contains(s, "R0") {
		t.Errorf("summary incomplete:\n%s", s)
	}
}

func TestRegisterCrossingAddsDepth(t *testing.T) {
	g := dfg.New("two", 8)
	a := g.Input("a")
	b := g.Input("b")
	t1 := g.Op(dfg.OpAdd, "t1", a, b)
	g.MarkOutput(t1)
	d, m := build1to1(t, g)
	// Input register: one crossing from the in port.
	ra := d.RegNode(d.Alloc.RegOf[a])
	if m.SC[ra] != 1 {
		t.Errorf("input register SC = %f, want 1", m.SC[ra])
	}
	rt := d.RegNode(d.Alloc.RegOf[t1])
	if m.SC[rt] != 2 {
		t.Errorf("result register SC = %f, want 2 (input reg + result reg)", m.SC[rt])
	}
}

func TestConfigOverrides(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Factors = map[string]Factors{"+": {0.5, 0.5}}
	g := dfg.New("o", 8)
	a := g.Input("a")
	b := g.Input("b")
	t1 := g.Op(dfg.OpAdd, "t1", a, b)
	g.MarkOutput(t1)
	s, _ := sched.NewProblem(g).ASAP()
	life := alloc.Lifetimes(g, s)
	regOf, n := alloc.RegisterLeftEdge(g, life)
	al := alloc.BindModules(g, s, sched.ExactClass, regOf, n)
	d, err := etpn.Build(g, s, al, life, etpn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := Analyze(d, DefaultConfig())
	m2 := Analyze(d, cfg)
	mod := d.ModNode(al.ModuleOf[0])
	if !(m2.CC[mod] < m1.CC[mod]) {
		t.Errorf("lower CTF must lower module CC: %f vs %f", m2.CC[mod], m1.CC[mod])
	}
	// Unknown classes fall back to defaults without panicking.
	if f := cfg.factors("weird"); f.CTF <= 0 {
		t.Error("fallback factors missing")
	}
}
