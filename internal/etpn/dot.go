package etpn

import (
	"fmt"
	"strings"
)

// Dot renders the data path in Graphviz dot format: registers as boxes,
// modules as ellipses labelled with their operation classes, ports as
// triangles, constants as plain text, and arcs annotated with their active
// control steps.
func (d *Design) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", "etpn_"+d.G.Name)
	for _, n := range d.Nodes {
		switch n.Kind {
		case KindInPort:
			fmt.Fprintf(&b, "  n%d [label=%q shape=invtriangle color=blue];\n", n.ID, n.Name)
		case KindOutPort:
			fmt.Fprintf(&b, "  n%d [label=%q shape=triangle color=blue];\n", n.ID, n.Name)
		case KindConst:
			fmt.Fprintf(&b, "  n%d [label=%q shape=plaintext];\n", n.ID, n.Name)
		case KindRegister:
			names := make([]string, len(n.Vals))
			for i, v := range n.Vals {
				names[i] = d.G.Value(v).Name
			}
			fmt.Fprintf(&b, "  n%d [label=\"%s\\n{%s}\" shape=box];\n", n.ID, n.Name, strings.Join(names, ","))
		case KindModule:
			labels := make([]string, len(n.Ops))
			for i, op := range n.Ops {
				labels[i] = d.G.Node(op).Name
			}
			fmt.Fprintf(&b, "  n%d [label=\"%s\\n{%s}\" shape=ellipse];\n", n.ID, n.Name, strings.Join(labels, ","))
		}
	}
	for _, a := range d.Arcs {
		steps := make([]string, len(a.Steps))
		for i, s := range a.Steps {
			steps[i] = fmt.Sprint(s)
		}
		port := ""
		if a.ToPort >= 0 {
			port = fmt.Sprintf(" p%d", a.ToPort)
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"s%s%s\"];\n", a.From, a.To, strings.Join(steps, ","), port)
	}
	b.WriteString("}\n")
	return b.String()
}
