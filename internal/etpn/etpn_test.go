package etpn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/dfg"
	"repro/internal/sched"
)

// buildDefault builds a design with ASAP schedule and left-edge binding.
func buildDefault(t *testing.T, g *dfg.Graph, opt Options) *Design {
	t.Helper()
	s, err := sched.NewProblem(g).ASAP()
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	regOf, n := alloc.RegisterLeftEdge(g, life)
	a := alloc.BindModules(g, s, sched.ExactClass, regOf, n)
	d, err := Build(g, s, a, life, opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// buildOneToOne builds a design with the default (1:1) allocation.
func buildOneToOne(t *testing.T, g *dfg.Graph) *Design {
	t.Helper()
	s, err := sched.NewProblem(g).ASAP()
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	a := alloc.Default(g, sched.ExactClass, life)
	d, err := Build(g, s, a, life, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildAllBenchmarks(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		d := buildDefault(t, g, Options{})
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(d.Nodes) == 0 || len(d.Arcs) == 0 {
			t.Errorf("%s: empty data path", name)
		}
	}
}

func TestExecutionTimeStraightLine(t *testing.T) {
	g := dfg.Ex(8)
	d := buildDefault(t, g, Options{})
	et, err := d.ExecutionTime(1)
	if err != nil {
		t.Fatal(err)
	}
	if et != d.Sched.Len {
		t.Errorf("execution time %d, want schedule length %d", et, d.Sched.Len)
	}
}

func TestExecutionTimeLoop(t *testing.T) {
	g := dfg.Diffeq(8)
	d := buildDefault(t, g, Options{LoopSignal: "exit"})
	et, err := d.ExecutionTime(2)
	if err != nil {
		t.Fatal(err)
	}
	// Two back-edge firings: three body passes.
	if et != 3*d.Sched.Len {
		t.Errorf("loop execution time %d, want %d", et, 3*d.Sched.Len)
	}
}

func TestLoopSignalMustExist(t *testing.T) {
	g := dfg.Ex(8)
	s, _ := sched.NewProblem(g).ASAP()
	life := alloc.Lifetimes(g, s)
	a := alloc.Default(g, sched.ExactClass, life)
	if _, err := Build(g, s, a, life, Options{LoopSignal: "nosuch"}); err == nil {
		t.Fatal("expected unknown-signal error")
	}
}

func TestMuxStatsOneToOneIsZero(t *testing.T) {
	// With one module per op and one register per value, every destination
	// has a single source: no multiplexers.
	g := dfg.Ex(8)
	d := buildOneToOne(t, g)
	ms := d.MuxStats()
	if ms.Muxes != 0 || ms.Inputs != 0 {
		t.Errorf("1:1 allocation needs no muxes, got %+v", ms)
	}
}

func TestMuxStatsCAMADStyleEx(t *testing.T) {
	// Reproduce the paper's Table 1 CAMAD row structure: all four mults in
	// one module, all four +/- ops in another, one register per value.
	// The paper reports #Mux = 4 (both operand ports of both modules).
	g := dfg.Ex(8)
	p := sched.NewProblem(g)
	// Serialize ops per class so the binding is legal.
	var muls, alus []dfg.NodeID
	for _, n := range g.Nodes() {
		if n.Kind == dfg.OpMul {
			muls = append(muls, n.ID)
		} else {
			alus = append(alus, n.ID)
		}
		p.ModuleOf[n.ID] = map[bool]int{true: 0, false: 1}[n.Kind == dfg.OpMul]
	}
	s, err := p.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	a := &alloc.Allocation{ModuleOf: map[dfg.NodeID]int{}, RegOf: map[dfg.ValueID]int{}}
	a.Modules = []*alloc.ModuleGroup{
		{ID: 0, Class: "*", Ops: muls},
		{ID: 1, Class: "±", Ops: alus},
	}
	for _, op := range muls {
		a.ModuleOf[op] = 0
	}
	for _, op := range alus {
		a.ModuleOf[op] = 1
	}
	i := 0
	for v := range life {
		a.Regs = append(a.Regs, &alloc.RegGroup{ID: i, Vals: []dfg.ValueID{v}})
		a.RegOf[v] = i
		i++
	}
	d, err := Build(g, s, a, life, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms := d.MuxStats()
	if ms.Muxes != 4 {
		t.Errorf("CAMAD-style Ex has %d muxes, paper reports 4", ms.Muxes)
	}
}

func TestSelfLoops(t *testing.T) {
	// Build a graph where a value's producer module also reads the register
	// holding the result of a previous op bound to the same module.
	g := dfg.New("loopy", 8)
	a := g.Input("a")
	b := g.Input("b")
	t1 := g.Op(dfg.OpAdd, "t1", a, b)
	t2 := g.Op(dfg.OpAdd, "t2", t1, b)
	g.MarkOutput(t2)
	p := sched.NewProblem(g)
	p.ModuleOf[0] = 0
	p.ModuleOf[1] = 0
	s, err := p.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	al := alloc.Default(g, sched.ExactClass, life)
	if err := al.MergeModules(0, 1); err != nil {
		t.Fatal(err)
	}
	// Merge registers of t1 and t2: module reads R(t1) and writes R(t1).
	r1, r2 := al.RegOf[t1], al.RegOf[t2]
	if err := al.MergeRegs(r1, r2); err != nil {
		t.Fatal(err)
	}
	d, err := Build(g, s, al, life, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.SelfLoops() != 1 {
		t.Errorf("SelfLoops = %d, want 1", d.SelfLoops())
	}
}

func TestSimulateMatchesInterpreter(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 16)
		d := buildDefault(t, g, Options{})
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 25; trial++ {
			in := map[string]uint64{}
			for _, v := range g.Inputs() {
				in[g.Value(v).Name] = rng.Uint64()
			}
			want, err := g.Interpret(16, in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.Simulate(16, in)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for k, w := range want {
				if got[k] != w {
					t.Fatalf("%s trial %d: output %s = %d, want %d", name, trial, k, got[k], w)
				}
			}
		}
	}
}

func TestSimulateOneToOneMatchesInterpreter(t *testing.T) {
	prop := func(a, b, c, dd uint16) bool {
		g := dfg.Ex(8)
		d := buildOneToOne(t, g)
		in := map[string]uint64{"a": uint64(a), "b": uint64(b), "c": uint64(c), "d": uint64(dd)}
		want, err1 := g.Interpret(8, in)
		got, err2 := d.Simulate(8, in)
		if err1 != nil || err2 != nil {
			return false
		}
		for k, w := range want {
			if got[k] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateMissingInput(t *testing.T) {
	g := dfg.Ex(8)
	d := buildDefault(t, g, Options{})
	if _, err := d.Simulate(8, map[string]uint64{"a": 1}); err == nil {
		t.Fatal("expected missing-input error")
	}
}

func TestSimulateDetectsClobbering(t *testing.T) {
	// An illegal register merge (overlapping lifetimes) must be caught by
	// the simulator as a clobbered read.
	g := dfg.Ex(8)
	s, _ := sched.NewProblem(g).ASAP()
	life := alloc.Lifetimes(g, s)
	al := alloc.Default(g, sched.ExactClass, life)
	vf, _ := g.ValueByName("f") // f = (1,3]: read by N25@2 and N28@3
	vv, _ := g.ValueByName("v") // v = (2,3]: overlaps f but born later
	if err := al.MergeRegs(al.RegOf[vf], al.RegOf[vv]); err != nil {
		t.Fatal(err)
	}
	d, err := Build(g, s, al, life, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]uint64{"a": 3, "b": 5, "c": 7, "d": 11}
	if _, err := d.Simulate(8, in); err == nil {
		t.Fatal("expected clobbered-read error")
	}
}

func TestValidateRejectsDoubleWrite(t *testing.T) {
	g := dfg.Ex(8)
	s, _ := sched.NewProblem(g).ASAP()
	life := alloc.Lifetimes(g, s)
	al := alloc.Default(g, sched.ExactClass, life)
	// e (born step 1) and f (born step 1) in one register: two writes in
	// step 1.
	ve, _ := g.ValueByName("e")
	vf, _ := g.ValueByName("f")
	if err := al.MergeRegs(al.RegOf[ve], al.RegOf[vf]); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, s, al, life, Options{}); err == nil {
		t.Fatal("expected double-write rejection")
	}
}

func TestArcsIntoFrom(t *testing.T) {
	g := dfg.Tseng(8)
	d := buildDefault(t, g, Options{})
	for _, n := range d.Nodes {
		for _, a := range d.ArcsInto(n.ID) {
			if a.To != n.ID {
				t.Fatalf("ArcsInto returned arc to %d for node %d", a.To, n.ID)
			}
		}
		for _, a := range d.ArcsFrom(n.ID) {
			if a.From != n.ID {
				t.Fatalf("ArcsFrom returned arc from %d for node %d", a.From, n.ID)
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	g := dfg.Diffeq(8)
	d := buildDefault(t, g, Options{LoopSignal: "exit"})
	s := d.String()
	for _, want := range []string{"ETPN diffeq", "reg", "mod", "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestDotRendering(t *testing.T) {
	g := dfg.Ex(8)
	d := buildDefault(t, g, Options{})
	dot := d.Dot()
	for _, want := range []string{"digraph", "shape=box", "shape=ellipse", "invtriangle", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("etpn dot missing %q", want)
		}
	}
}
