// Package etpn implements the Extended Timed Petri Net design
// representation (Peng & Kuchcinski [14]) that is the kernel of the
// high-level test synthesis system: a data path of ports, registers,
// functional modules and constants connected by arcs annotated with the
// control steps that activate them, plus a timed Petri net control part.
// The two parts are related through control places activating data
// transfers, and data-path condition signals guarding control transitions.
package etpn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alloc"
	"repro/internal/dfg"
	"repro/internal/petri"
	"repro/internal/sched"
)

// NodeKind classifies data-path nodes.
type NodeKind int

// Data-path node kinds.
const (
	KindInPort NodeKind = iota
	KindOutPort
	KindRegister
	KindModule
	KindConst
)

// String returns a short kind name.
func (k NodeKind) String() string {
	switch k {
	case KindInPort:
		return "in"
	case KindOutPort:
		return "out"
	case KindRegister:
		return "reg"
	case KindModule:
		return "mod"
	case KindConst:
		return "const"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is a data-path vertex: a port, register, functional module or
// wired constant.
type Node struct {
	ID    int
	Kind  NodeKind
	Name  string
	Class string        // module class; empty otherwise
	Ops   []dfg.NodeID  // operations executed here (modules)
	Vals  []dfg.ValueID // values stored here (registers)
	Value dfg.ValueID   // the value (ports, consts); NoValue otherwise
}

// Arc is a data transfer path between two data-path nodes. It is active in
// the listed control steps, carrying the listed values (parallel slices).
// ToPort is the operand index at a destination module, or -1.
type Arc struct {
	ID     int
	From   int
	To     int
	ToPort int
	Steps  []int
	Values []dfg.ValueID
}

// Design is a complete ETPN design: the behaviour, its schedule and
// allocation, the derived data path, and the control part.
type Design struct {
	G     *dfg.Graph
	Sched sched.Schedule
	Alloc *alloc.Allocation
	Life  map[dfg.ValueID]alloc.Interval

	Nodes []*Node
	Arcs  []*Arc

	Ctrl       *petri.Net
	CtrlPlaces []petri.PlaceID
	LoopSignal string // condition value name guarding the loop; "" if none

	regNode   map[int]int         // allocation register id -> node id
	modNode   map[int]int         // allocation module id -> node id
	inNode    map[dfg.ValueID]int // input value -> port node
	outNode   map[dfg.ValueID]int
	constNode map[dfg.ValueID]int
}

// Options controls Build.
type Options struct {
	// LoopSignal names a primary-output condition value; if non-empty the
	// control part loops back to the first control step while the signal is
	// true (the Diffeq behaviour). Empty builds a straight-line control
	// chain.
	LoopSignal string
}

// Build derives the ETPN data path and control part from a behaviour, a
// schedule, and an allocation. The lifetimes must correspond to the
// schedule (alloc.Lifetimes).
func Build(g *dfg.Graph, s sched.Schedule, a *alloc.Allocation, life map[dfg.ValueID]alloc.Interval, opt Options) (*Design, error) {
	d := &Design{
		G: g, Sched: s, Alloc: a, Life: life,
		LoopSignal: opt.LoopSignal,
		regNode:    map[int]int{}, modNode: map[int]int{},
		inNode: map[dfg.ValueID]int{}, outNode: map[dfg.ValueID]int{}, constNode: map[dfg.ValueID]int{},
	}
	addNode := func(n *Node) int {
		n.ID = len(d.Nodes)
		d.Nodes = append(d.Nodes, n)
		return n.ID
	}
	for _, v := range g.Values() {
		switch {
		case v.Kind == dfg.ValInput:
			d.inNode[v.ID] = addNode(&Node{Kind: KindInPort, Name: "in:" + v.Name, Value: v.ID})
		case v.Kind == dfg.ValConst:
			d.constNode[v.ID] = addNode(&Node{Kind: KindConst, Name: "const:" + v.Name, Value: v.ID})
		}
		if v.IsOutput {
			d.outNode[v.ID] = addNode(&Node{Kind: KindOutPort, Name: "out:" + v.Name, Value: v.ID})
		}
	}
	for _, r := range a.Regs {
		d.regNode[r.ID] = addNode(&Node{Kind: KindRegister, Name: fmt.Sprintf("R%d", r.ID), Vals: r.Vals, Value: dfg.NoValue})
	}
	for _, m := range a.Modules {
		d.modNode[m.ID] = addNode(&Node{Kind: KindModule, Name: fmt.Sprintf("M%d(%s)", m.ID, m.Class), Class: m.Class, Ops: m.Ops, Value: dfg.NoValue})
	}

	// Arc accumulation keyed by (from, to, toPort).
	type akey struct{ from, to, port int }
	arcIx := map[akey]*Arc{}
	addXfer := func(from, to, port, step int, v dfg.ValueID) {
		k := akey{from, to, port}
		arc := arcIx[k]
		if arc == nil {
			arc = &Arc{ID: len(d.Arcs), From: from, To: to, ToPort: port}
			arcIx[k] = arc
			d.Arcs = append(d.Arcs, arc)
		}
		arc.Steps = append(arc.Steps, step)
		arc.Values = append(arc.Values, v)
	}

	// Input loads: port -> register at the end of the birth step.
	for _, v := range g.Values() {
		if v.Kind != dfg.ValInput {
			continue
		}
		iv, stored := life[v.ID]
		if !stored {
			continue
		}
		r, ok := a.RegOf[v.ID]
		if !ok {
			return nil, fmt.Errorf("etpn: input %s has a lifetime but no register", v.Name)
		}
		addXfer(d.inNode[v.ID], d.regNode[r], -1, iv.Birth, v.ID)
	}
	// Operand and result transfers per operation.
	for _, n := range g.Nodes() {
		step := s.Step[n.ID]
		mod := d.modNode[a.ModuleOf[n.ID]]
		for idx, v := range n.In {
			val := g.Value(v)
			var src int
			if val.Kind == dfg.ValConst {
				src = d.constNode[v]
			} else {
				r, ok := a.RegOf[v]
				if !ok {
					return nil, fmt.Errorf("etpn: operand %s of %s has no register", val.Name, n.Name)
				}
				src = d.regNode[r]
			}
			addXfer(src, mod, idx, step, v)
		}
		out := g.Value(n.Out)
		if r, ok := a.RegOf[n.Out]; ok {
			addXfer(mod, d.regNode[r], -1, step, n.Out)
		} else if !out.IsOutput {
			return nil, fmt.Errorf("etpn: result %s of %s has no register", out.Name, n.Name)
		}
		if out.IsOutput {
			if r, ok := a.RegOf[n.Out]; ok {
				addXfer(d.regNode[r], d.outNode[n.Out], -1, life[n.Out].Death, n.Out)
			} else {
				addXfer(mod, d.outNode[n.Out], -1, step, n.Out)
			}
		}
	}
	// Output ports for input values marked as outputs (pass-through).
	for _, v := range g.Values() {
		if v.Kind == dfg.ValInput && v.IsOutput {
			if r, ok := a.RegOf[v.ID]; ok {
				addXfer(d.regNode[r], d.outNode[v.ID], -1, life[v.ID].Death, v.ID)
			} else {
				addXfer(d.inNode[v.ID], d.outNode[v.ID], -1, 1, v.ID)
			}
		}
	}

	// Control part.
	if opt.LoopSignal != "" {
		if _, ok := g.ValueByName(opt.LoopSignal); !ok {
			return nil, fmt.Errorf("etpn: loop signal %q is not a value of the behaviour", opt.LoopSignal)
		}
		net, places, _ := petri.Loop("ctrl:"+g.Name, s.Len, opt.LoopSignal)
		d.Ctrl = net
		d.CtrlPlaces = places
	} else {
		net, places := petri.Chain("ctrl:"+g.Name, s.Len)
		d.Ctrl = net
		d.CtrlPlaces = places
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// RegNode returns the data-path node id of an allocation register id.
func (d *Design) RegNode(reg int) int { return d.regNode[reg] }

// ModNode returns the data-path node id of an allocation module id.
func (d *Design) ModNode(mod int) int { return d.modNode[mod] }

// InNode returns the port node of an input value.
func (d *Design) InNode(v dfg.ValueID) (int, bool) { n, ok := d.inNode[v]; return n, ok }

// OutNode returns the port node of an output value.
func (d *Design) OutNode(v dfg.ValueID) (int, bool) { n, ok := d.outNode[v]; return n, ok }

// ArcsInto returns the arcs terminating at node id, ascending by arc id.
func (d *Design) ArcsInto(id int) []*Arc {
	var out []*Arc
	for _, a := range d.Arcs {
		if a.To == id {
			out = append(out, a)
		}
	}
	return out
}

// ArcsFrom returns the arcs originating at node id, ascending by arc id.
func (d *Design) ArcsFrom(id int) []*Arc {
	var out []*Arc
	for _, a := range d.Arcs {
		if a.From == id {
			out = append(out, a)
		}
	}
	return out
}

// Validate checks structural consistency of the design: arcs reference
// valid nodes, each register is written by at most one source per control
// step, each module executes at most one operation per step, and the
// control part validates.
func (d *Design) Validate() error {
	for _, a := range d.Arcs {
		if a.From < 0 || a.From >= len(d.Nodes) || a.To < 0 || a.To >= len(d.Nodes) {
			return fmt.Errorf("etpn: arc %d references unknown node", a.ID)
		}
		if len(a.Steps) != len(a.Values) {
			return fmt.Errorf("etpn: arc %d has mismatched steps/values", a.ID)
		}
	}
	for _, n := range d.Nodes {
		if n.Kind != KindRegister {
			continue
		}
		writes := map[int]int{} // step -> count
		for _, a := range d.ArcsInto(n.ID) {
			for _, st := range a.Steps {
				writes[st]++
			}
		}
		for st, c := range writes {
			if c > 1 {
				return fmt.Errorf("etpn: register %s written %d times in step %d", n.Name, c, st)
			}
		}
	}
	for _, n := range d.Nodes {
		if n.Kind != KindModule {
			continue
		}
		steps := map[int]bool{}
		for _, op := range n.Ops {
			st := d.Sched.Step[op]
			if steps[st] {
				return fmt.Errorf("etpn: module %s executes two operations in step %d", n.Name, st)
			}
			steps[st] = true
		}
	}
	return d.Ctrl.Validate()
}

// MuxStats summarizes the multiplexing the allocation requires.
type MuxStats struct {
	Muxes  int // number of multiplexers (destinations with >1 source)
	Inputs int // total multiplexer inputs
}

// MuxStats counts, for every module operand port and register input, the
// distinct data sources; each destination fed by more than one source
// needs a multiplexer with that many inputs.
func (d *Design) MuxStats() MuxStats {
	type dest struct{ node, port int }
	srcs := map[dest]map[int]bool{}
	for _, a := range d.Arcs {
		to := d.Nodes[a.To]
		if to.Kind != KindModule && to.Kind != KindRegister {
			continue
		}
		k := dest{a.To, a.ToPort}
		if srcs[k] == nil {
			srcs[k] = map[int]bool{}
		}
		srcs[k][a.From] = true
	}
	var ms MuxStats
	for _, set := range srcs {
		if len(set) > 1 {
			ms.Muxes++
			ms.Inputs += len(set)
		}
	}
	return ms
}

// ExecutionTime returns the critical-path length of the control part in
// control steps (paper §4.2): for straight-line behaviours the schedule
// length, for loops loopBound iterations of the body.
func (d *Design) ExecutionTime(loopBound int) (int, error) {
	maxSteps := (d.Sched.Len + 2) * (loopBound + 2) * 2
	return d.Ctrl.CriticalPath(loopBound, maxSteps)
}

// SelfLoops counts data-path nodes with a direct self arc (module feeding
// its own operand through one register, or register whose value returns in
// one step). Self-loops are the structures conventional allocation creates
// and testable allocation avoids (paper §3). A self-loop here is a
// register r whose stored value is produced by a module that reads r, i.e.
// a length-2 structural cycle register -> module -> register.
func (d *Design) SelfLoops() int {
	count := 0
	for _, n := range d.Nodes {
		if n.Kind != KindRegister {
			continue
		}
		// modules reading this register
		reads := map[int]bool{}
		for _, a := range d.ArcsFrom(n.ID) {
			if d.Nodes[a.To].Kind == KindModule {
				reads[a.To] = true
			}
		}
		for _, a := range d.ArcsInto(n.ID) {
			if d.Nodes[a.From].Kind == KindModule && reads[a.From] {
				count++
				break
			}
		}
	}
	return count
}

// String renders the data path: nodes then arcs with their step
// annotations.
func (d *Design) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ETPN %s: %d nodes, %d arcs, %d control steps\n", d.G.Name, len(d.Nodes), len(d.Arcs), d.Sched.Len)
	for _, n := range d.Nodes {
		fmt.Fprintf(&b, "  node %2d %-5s %s\n", n.ID, n.Kind, n.Name)
	}
	for _, a := range d.Arcs {
		steps := make([]string, len(a.Steps))
		for i, s := range a.Steps {
			steps[i] = fmt.Sprintf("%d:%s", s, d.G.Value(a.Values[i]).Name)
		}
		sort.Strings(steps)
		port := ""
		if a.ToPort >= 0 {
			port = fmt.Sprintf(".%d", a.ToPort)
		}
		fmt.Fprintf(&b, "  arc %2d: %s -> %s%s [%s]\n", a.ID, d.Nodes[a.From].Name, d.Nodes[a.To].Name, port, strings.Join(steps, " "))
	}
	return b.String()
}
