package etpn

import (
	"fmt"

	"repro/internal/dfg"
)

// Simulate executes the design at register-transfer level for one pass of
// the behaviour (one loop body iteration): registers load primary inputs at
// the end of their birth steps, modules compute the operations scheduled in
// each control step reading their operands from registers or wired
// constants, and results are written back at step boundaries. It returns
// the primary outputs by name.
//
// Simulate is the semantics-preservation oracle: for a legal schedule and
// allocation its results must equal dfg.Interpret on the same inputs.
// It returns an error if an operand register does not hold the expected
// value, which indicates an illegal allocation or schedule.
func (d *Design) Simulate(width int, inputs map[string]uint64) (map[string]uint64, error) {
	g := d.G
	regVal := make([]uint64, len(d.Alloc.Regs))  // current contents
	regHolds := make([]dfg.ValueID, len(regVal)) // which value the register holds
	for i := range regHolds {
		regHolds[i] = dfg.NoValue
	}
	outs := map[string]uint64{}

	// Pending writes applied at the end of each step.
	type write struct {
		reg int
		v   dfg.ValueID
		x   uint64
	}
	loadAt := map[int][]write{} // step -> input loads
	for _, v := range g.Values() {
		if v.Kind != dfg.ValInput {
			continue
		}
		iv, stored := d.Life[v.ID]
		if !stored {
			continue
		}
		x, ok := inputs[v.Name]
		if !ok {
			return nil, fmt.Errorf("etpn: missing input %q", v.Name)
		}
		loadAt[iv.Birth] = append(loadAt[iv.Birth], write{d.Alloc.RegOf[v.ID], v.ID, x & dfg.Mask(width)})
	}
	apply := func(ws []write) {
		for _, w := range ws {
			regVal[w.reg] = w.x
			regHolds[w.reg] = w.v
		}
	}
	readVal := func(v dfg.ValueID, at string) (uint64, error) {
		val := g.Value(v)
		if val.Kind == dfg.ValConst {
			return uint64(val.Const) & dfg.Mask(width), nil
		}
		r, ok := d.Alloc.RegOf[v]
		if !ok {
			return 0, fmt.Errorf("etpn: value %s read at %s has no register", val.Name, at)
		}
		if regHolds[r] != v {
			holds := "nothing"
			if regHolds[r] != dfg.NoValue {
				holds = g.Value(regHolds[r]).Name
			}
			return 0, fmt.Errorf("etpn: register R%d holds %s, not %s, at %s (allocation clobbered a live value)",
				r, holds, val.Name, at)
		}
		return regVal[r], nil
	}

	apply(loadAt[0])
	for step := 1; step <= d.Sched.Len; step++ {
		var writes []write
		for _, nid := range d.Sched.OpsAt(step) {
			n := g.Node(nid)
			ops := make([]uint64, len(n.In))
			for i, v := range n.In {
				x, err := readVal(v, fmt.Sprintf("step %d op %s", step, n.Name))
				if err != nil {
					return nil, err
				}
				ops[i] = x
			}
			res := dfg.Eval(n.Kind, width, ops...)
			out := g.Value(n.Out)
			if r, ok := d.Alloc.RegOf[n.Out]; ok {
				writes = append(writes, write{r, n.Out, res})
			}
			if out.IsOutput {
				outs[out.Name] = res
			}
		}
		apply(writes)
		apply(loadAt[step])
		// Verify output registers still hold their values at death (the
		// observation point) for outputs whose death is this step.
		for _, v := range g.Values() {
			if !v.IsOutput || v.Kind == dfg.ValConst {
				continue
			}
			iv, stored := d.Life[v.ID]
			if stored && iv.Death == step+1 {
				// Value observed at the start of the next step; check now
				// that the register still holds it after this step's writes.
				if r := d.Alloc.RegOf[v.ID]; regHolds[r] != v.ID && iv.Birth <= step {
					return nil, fmt.Errorf("etpn: output %s clobbered before observation", v.Name)
				}
			}
		}
	}
	// Pass-through outputs (inputs marked as outputs).
	for _, v := range g.Values() {
		if v.Kind == dfg.ValInput && v.IsOutput {
			outs[v.Name] = inputs[v.Name] & dfg.Mask(width)
		}
	}
	return outs, nil
}
