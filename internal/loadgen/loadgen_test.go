package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestBuildScheduleDeterministic(t *testing.T) {
	for _, profile := range Profiles() {
		opts := ScheduleOptions{Profile: profile, Seed: 7, Rate: 50, Duration: 2 * time.Second}
		a, err := BuildSchedule(opts)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		b, err := BuildSchedule(opts)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two builds of the same options differ", profile)
		}
		if len(a.Requests) == 0 {
			t.Errorf("%s: empty schedule", profile)
		}
	}
}

// TestScheduleGolden pins the exact request stream of one configuration
// with a checksum over (arrival, path, body) — the cross-platform
// reproducibility contract: a schedule recorded in a bug report or CI
// log can be re-driven anywhere.
func TestScheduleGolden(t *testing.T) {
	s, err := BuildSchedule(ScheduleOptions{Profile: ProfileMixed, Seed: 42, Rate: 100, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, r := range s.Requests {
		fmt.Fprintf(h, "%d|%s|%s\n", r.At.Nanoseconds(), r.Path, r.Body)
	}
	const want uint64 = 0xbc17a2a76ba0daca
	if got := h.Sum64(); got != want {
		t.Errorf("schedule checksum %#016x, want %#016x (first req: %+v)", got, want, s.Requests[0])
	}
}

func TestScheduleRequestCountMode(t *testing.T) {
	s, err := BuildSchedule(ScheduleOptions{Profile: ProfileRepeat, Seed: 3, Rate: 200, Requests: 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Requests) != 48 {
		t.Fatalf("got %d requests, want 48", len(s.Requests))
	}
	if u := s.UniqueKeys(); u > 8 {
		t.Errorf("repeat-heavy drew %d unique keys, want <= 8 (pool size)", u)
	}
}

func TestScheduleArrivalsMonotone(t *testing.T) {
	s, err := BuildSchedule(ScheduleOptions{Profile: ProfileInteractive, Seed: 1, Rate: 20, Duration: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Second / 20
	var prev time.Duration = -1
	for i, r := range s.Requests {
		if r.At <= prev && i > 0 {
			t.Fatalf("arrival %d not strictly increasing: %v after %v", i, r.At, prev)
		}
		if i > 0 {
			gap := r.At - prev
			if gap < base/2 || gap >= base+base/2 {
				t.Fatalf("gap %v outside [base/2, 3base/2) for base %v", gap, base)
			}
		}
		prev = r.At
	}
	// ~20 rps for 3s: expect close to 60 requests (jitter is symmetric).
	if n := len(s.Requests); n < 45 || n > 75 {
		t.Errorf("got %d requests for 20 rps x 3s", n)
	}
}

func TestProfileProperties(t *testing.T) {
	build := func(profile string) *Schedule {
		s, err := BuildSchedule(ScheduleOptions{Profile: profile, Seed: 11, Rate: 100, Requests: 200})
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		return s
	}

	adv := build(ProfileAdversarial)
	if u := adv.UniqueKeys(); u != len(adv.Requests) {
		t.Errorf("adversarial-unique: %d unique keys of %d requests, want all unique", u, len(adv.Requests))
	}

	inter := build(ProfileInteractive)
	if u := inter.UniqueKeys(); u > 32 {
		t.Errorf("interactive-small: %d unique keys, want <= 32", u)
	}

	batch := build(ProfileBatch)
	sawTD, sawDeadline := false, false
	for _, r := range batch.Requests {
		if r.Path == "/v1/testdesign" {
			sawTD = true
			if !strings.Contains(string(r.Body), `"bench":"ewf"`) {
				t.Errorf("batch testdesign not EWF: %s", r.Body)
			}
		}
		if strings.Contains(string(r.Body), `"deadline_ms":4000`) {
			sawDeadline = true
		}
	}
	if !sawTD || !sawDeadline {
		t.Errorf("batch-deep missing testdesign (%v) or deadline (%v) requests", sawTD, sawDeadline)
	}

	mixed := build(ProfileMixed)
	classes := map[string]int{}
	for _, r := range mixed.Requests {
		classes[r.Class]++
	}
	if classes[ProfileInteractive] == 0 || classes[ProfileRepeat] == 0 || classes[ProfileBatch] == 0 || classes[ProfileAdversarial] == 0 {
		t.Errorf("mixed profile missing a class: %v", classes)
	}
	if classes[ProfileInteractive] <= classes[ProfileBatch] {
		t.Errorf("mixed profile not interactive-dominated: %v", classes)
	}

	// Every generated bench name in every profile must parse and load.
	for _, profile := range Profiles() {
		for _, r := range build(profile).Requests[:10] {
			var req server.SynthesizeRequest
			if r.Path != "/v1/synthesize" {
				continue
			}
			if err := json.Unmarshal(r.Body, &req); err != nil {
				t.Fatalf("%s: body not a synthesize request: %v", profile, err)
			}
			if _, err := req.Normalize(); err != nil {
				t.Errorf("%s: request does not normalize: %v (%s)", profile, err, r.Body)
			}
		}
	}
}

func TestBuildScheduleErrors(t *testing.T) {
	if _, err := BuildSchedule(ScheduleOptions{Profile: "nope", Rate: 1, Duration: time.Second}); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := BuildSchedule(ScheduleOptions{Profile: ProfileMixed}); err == nil {
		t.Error("missing rate/duration accepted")
	}
}

// TestRunAgainstServer drives a real in-process server with the
// repeat-heavy profile: all typed outcomes, zero identity violations,
// and — because the pool is 8 specs — a high scraped hit rate with
// jobs_run bounded by the pool size.
func TestRunAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a server and synthesizes; skipped in -short")
	}
	s := server.New(server.Config{QueueDepth: 64, Jobs: 2, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sched, err := BuildSchedule(ScheduleOptions{Profile: ProfileRepeat, Seed: 5, Rate: 400, Requests: 64})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(context.Background(), sched, Options{
		BaseURL: ts.URL, Client: ts.Client(), Concurrency: 8, Scrape: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sent != 64 {
		t.Errorf("sent %d of 64", sum.Sent)
	}
	if got := sum.Classes[ClassOK]; got != 64 {
		t.Errorf("ok=%d of 64 (classes: %v)", got, sum.Classes)
	}
	if sum.Untyped() != 0 {
		t.Errorf("untyped responses: %d", sum.Untyped())
	}
	if sum.IdentityViolations != 0 {
		t.Errorf("identity violations: %d", sum.IdentityViolations)
	}
	if !sum.Scraped {
		t.Fatal("metrics not scraped")
	}
	unique := float64(sched.UniqueKeys())
	if sum.JobsRun > unique {
		t.Errorf("jobs_run %.0f exceeds unique keys %.0f", sum.JobsRun, unique)
	}
	// 64 requests over <= 8 unique specs: at least 56 served without a
	// fresh pipeline run.
	wantRate := (64 - unique) / 64
	if sum.HitRate < wantRate {
		t.Errorf("hit rate %.2f, want >= %.2f (hits %.0f / admitted %.0f)", sum.HitRate, wantRate, sum.CacheHits, sum.Admitted)
	}
	if len(sum.Bodies) == 0 || len(sum.Bodies) > int(unique) {
		t.Errorf("bodies map has %d entries, want 1..%0.f", len(sum.Bodies), unique)
	}
	if sum.Latency.P99 < sum.Latency.P50 {
		t.Errorf("quantiles inverted: %+v", sum.Latency)
	}

	// The summary must marshal (hltsload writes it as BENCH_load input).
	if _, err := json.Marshal(sum); err != nil {
		t.Errorf("summary marshal: %v", err)
	}
}
