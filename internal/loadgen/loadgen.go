// Package loadgen builds and drives deterministic open-loop workloads
// against the synthesis service. A Schedule is a pure function of
// (profile, seed, rate, duration): request arrival times, endpoints and
// bodies are fixed before the first byte goes on the wire, so two runs
// with the same options issue the identical request stream — which is
// what lets the differential tests compare a cluster answer stream
// byte-for-byte against a single worker's, and lets CI re-drive a
// recorded scenario.
//
// Workload bodies draw on the seeded benchmark generator
// (internal/dfggen): each profile mixes "gen:" behaviours — plus the
// built-in EWF for the heavy tier — shaped after a traffic class:
//
//	interactive-small   many small synthesize calls over a hot pool,
//	                    skewed toward a few popular behaviours
//	batch-deep          large deep graphs with request deadlines, plus
//	                    EWF test-generation runs; exercises partials
//	repeat-heavy        a tiny pool hammered uniformly; exercises
//	                    coalescing and the result cache
//	adversarial-unique  every request a never-seen-before behaviour;
//	                    defeats every cache layer by construction
//	mixed               60/25/10/5 blend of the above
package loadgen

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/dfggen"
	"repro/internal/server"
)

// Profile names.
const (
	ProfileInteractive = "interactive-small"
	ProfileBatch       = "batch-deep"
	ProfileRepeat      = "repeat-heavy"
	ProfileAdversarial = "adversarial-unique"
	ProfileMixed       = "mixed"
)

// Profiles lists the named mix profiles.
func Profiles() []string {
	return []string{ProfileInteractive, ProfileBatch, ProfileRepeat, ProfileAdversarial, ProfileMixed}
}

// Request is one scheduled call.
type Request struct {
	At      time.Duration // offset from run start (open-loop arrival)
	Path    string        // endpoint, e.g. /v1/synthesize
	Body    []byte        // JSON request body
	Class   string        // originating profile (useful under mixed)
	Repeat  bool          // true when the (Path, Body) key is drawn from a finite pool
	HasLoop bool
}

// Key identifies the request for identity checking: equal keys must
// produce byte-identical complete responses.
func (r Request) Key() string { return r.Path + "\x00" + string(r.Body) }

// ScheduleOptions parameterizes BuildSchedule.
type ScheduleOptions struct {
	Profile string
	Seed    uint64
	// Rate is the mean arrival rate in requests/second. Arrival gaps are
	// uniformly jittered in [base/2, 3*base/2) around the base interval
	// using integer arithmetic only, so the schedule is identical across
	// platforms.
	Rate float64
	// Duration bounds the arrival window. Ignored when Requests is set.
	Duration time.Duration
	// Requests, when positive, emits exactly this many requests instead
	// of filling Duration — the deterministic-count mode the
	// differential tests use.
	Requests int
}

// Schedule is a fully materialized request stream.
type Schedule struct {
	Profile  string
	Seed     uint64
	Requests []Request
}

// UniqueKeys counts distinct request keys in the schedule.
func (s *Schedule) UniqueKeys() int {
	seen := map[string]bool{}
	for _, r := range s.Requests {
		seen[r.Key()] = true
	}
	return len(seen)
}

// rng is the same splitmix64 stream the benchmark generator uses; a
// private copy keeps the package self-contained.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// mix folds a label into a seed so each profile's spec pool is
// decorrelated from the arrival stream and from other profiles.
func mix(seed uint64, label uint64) uint64 {
	r := rng{state: seed ^ (label * 0x9e3779b97f4a7c15)}
	return r.next()
}

// BuildSchedule materializes the request stream for the options. The
// result depends only on the options — never on the clock, the host or
// map order.
func BuildSchedule(o ScheduleOptions) (*Schedule, error) {
	gen, err := profileGen(o.Profile, o.Seed)
	if err != nil {
		return nil, err
	}
	if o.Requests <= 0 && (o.Rate <= 0 || o.Duration <= 0) {
		return nil, fmt.Errorf("loadgen: need Requests > 0 or both Rate > 0 and Duration > 0")
	}
	base := uint64(float64(time.Second) / o.Rate)
	if o.Rate <= 0 {
		base = uint64(50 * time.Millisecond)
	}
	arrivals := rng{state: mix(o.Seed, 0xA881)}
	sched := &Schedule{Profile: o.Profile, Seed: o.Seed}
	var at time.Duration
	for i := 0; ; i++ {
		if o.Requests > 0 {
			if i >= o.Requests {
				break
			}
		} else if at >= o.Duration {
			break
		}
		req := gen(i)
		req.At = at
		sched.Requests = append(sched.Requests, req)
		// Uniform jitter in [base/2, 3*base/2): integer-only, so the
		// stream never drifts across platforms the way float math can.
		at += time.Duration(base/2 + arrivals.next()%base)
	}
	return sched, nil
}

// profileGen returns the request constructor for a profile. The
// constructor is a pure function of (profile, seed, index).
func profileGen(profile string, seed uint64) (func(i int) Request, error) {
	switch profile {
	case ProfileInteractive:
		return interactiveGen(seed), nil
	case ProfileBatch:
		return batchGen(seed), nil
	case ProfileRepeat:
		return repeatGen(seed), nil
	case ProfileAdversarial:
		return adversarialGen(seed), nil
	case ProfileMixed:
		inter := interactiveGen(seed)
		batch := batchGen(seed)
		repeat := repeatGen(seed)
		adv := adversarialGen(seed)
		pick := rng{state: mix(seed, 0x317D)}
		return func(i int) Request {
			// 60% interactive, 25% repeat, 10% batch, 5% adversarial.
			switch d := pick.intn(20); {
			case d < 12:
				return inter(i)
			case d < 17:
				return repeat(i)
			case d < 19:
				return batch(i)
			default:
				return adv(i)
			}
		}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown profile %q (want one of %v)", profile, Profiles())
	}
}

// synthReq marshals a synthesize call. server request structs marshal
// with fixed field order, so bodies are canonical.
func synthReq(spec dfggen.Spec, width, deadlineMS int, class string, repeat bool) Request {
	body, err := json.Marshal(server.SynthesizeRequest{
		Bench: spec.Name(), Width: width, DeadlineMS: deadlineMS,
	})
	if err != nil {
		panic(err) // static struct, cannot fail
	}
	return Request{Path: "/v1/synthesize", Body: body, Class: class, Repeat: repeat, HasLoop: spec.Loop}
}

// interactiveGen: small graphs over a 32-spec pool with a popularity
// skew (the min of two uniform draws lands on the hot head ~2x as
// often as the tail).
func interactiveGen(seed uint64) func(i int) Request {
	r := rng{state: mix(seed, 0x1A7)}
	const pool = 32
	mixes := []string{"arith", "cmp", "mixed"}
	shapes := []string{"mesh", "wide"}
	return func(int) Request {
		p := r.intn(pool)
		if q := r.intn(pool); q < p {
			p = q
		}
		spec := dfggen.Spec{
			Seed:  mix(seed, 0x1A70) + uint64(p),
			Ops:   8 + 4*(p%3),
			Mix:   mixes[p%len(mixes)],
			Shape: shapes[p%len(shapes)],
		}
		width := 4
		if p%2 == 1 {
			width = 8
		}
		return synthReq(spec, width, 0, ProfileInteractive, true)
	}
}

// batchGen: deep 32-op graphs at width 8 under a request deadline
// (exercising the partial-result path), interleaved with EWF
// test-generation runs — the heavy tier of the mix.
func batchGen(seed uint64) func(i int) Request {
	r := rng{state: mix(seed, 0xBA7C)}
	shapes := []string{"deep", "diamond"}
	return func(int) Request {
		p := r.intn(16)
		if p%4 == 0 {
			body, err := json.Marshal(server.TestDesignRequest{
				SynthesizeRequest: server.SynthesizeRequest{Bench: "ewf", Width: 4, DeadlineMS: 4000},
				Faults:            60,
			})
			if err != nil {
				panic(err)
			}
			return Request{Path: "/v1/testdesign", Body: body, Class: ProfileBatch, Repeat: true}
		}
		spec := dfggen.Spec{
			Seed:  mix(seed, 0xBA7C0) + uint64(p),
			Ops:   32,
			Mix:   "diffeq",
			Shape: shapes[p%len(shapes)],
		}
		return synthReq(spec, 8, 4000, ProfileBatch, true)
	}
}

// repeatGen: an 8-spec pool hit uniformly — after the first pass,
// every request should be answered by the cache or coalesced onto an
// in-flight twin.
func repeatGen(seed uint64) func(i int) Request {
	r := rng{state: mix(seed, 0x4E9)}
	const pool = 8
	return func(int) Request {
		p := r.intn(pool)
		spec := dfggen.Spec{
			Seed: mix(seed, 0x4E90) + uint64(p),
			Ops:  8 + p%5,
			Mix:  "arith",
		}
		return synthReq(spec, 4, 0, ProfileRepeat, true)
	}
}

// adversarialGen: every request is a never-before-seen behaviour, so
// no cache layer can help; this is the worst-case admission workload.
func adversarialGen(seed uint64) func(i int) Request {
	r := rng{state: mix(seed, 0xADE5)}
	mixes := dfggen.Mixes()
	shapes := dfggen.Shapes()
	return func(i int) Request {
		spec := dfggen.Spec{
			Seed:   mix(seed, 0xADE50) + uint64(i),
			Ops:    12 + r.intn(8),
			Mix:    mixes[r.intn(len(mixes))],
			Shape:  shapes[r.intn(len(shapes))],
			Fanout: 1 + r.intn(4),
			Loop:   i%5 == 0,
		}
		return synthReq(spec, 4, 0, ProfileAdversarial, false)
	}
}
