package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// Outcome classes. Every response must land in a typed class; Untyped
// counts responses that violate the service's error contract (a non-2xx
// without a JSON error body), which the CI smoke treats as a failure.
const (
	ClassOK        = "ok"      // 200, complete result
	ClassPartial   = "partial" // 200, best-so-far under an exhausted budget
	ClassRejected  = "429"     // admission control with Retry-After
	ClassDraining  = "503"     // draining / degraded
	ClassError     = "error"   // other status with a typed JSON error body
	ClassUntyped   = "untyped" // contract violation: no JSON error body
	ClassTransport = "transport"
)

// Options configures a Run.
type Options struct {
	BaseURL string
	// Concurrency caps in-flight requests (default 16). The schedule is
	// open-loop: when the cap is hit, dispatch lags rather than skips,
	// and the lag is reported.
	Concurrency int
	// RequestTimeout bounds each HTTP call (default 60s).
	RequestTimeout time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Scrape, when true, reads /metrics before and after the run and
	// reports cache/coalesce/store hit deltas.
	Scrape bool
	// Stats, when non-nil, receives per-request latency observations
	// under "load.request" in addition to the Summary quantiles.
	Stats *stats.Stats
}

// Latency summarizes request latencies in milliseconds. Quantiles are
// exact (computed over the full sorted sample, not histogram buckets).
type Latency struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// Summary is the result of one load run — the payload behind
// BENCH_load.json.
type Summary struct {
	Profile   string  `json:"profile"`
	Seed      uint64  `json:"seed"`
	Requests  int     `json:"requests"` // scheduled
	Sent      int     `json:"sent"`     // actually dispatched
	DurationS float64 `json:"duration_s"`
	// Throughput counts completed HTTP exchanges (any class) per second.
	Throughput float64        `json:"throughput_rps"`
	Classes    map[string]int `json:"classes"`
	// IdentityViolations counts repeat requests whose complete response
	// differed byte-for-byte from the first complete response to the
	// same key — always zero for a correct service.
	IdentityViolations int     `json:"identity_violations"`
	Latency            Latency `json:"latency"`
	// MaxLagMS is the worst dispatch lag behind the open-loop schedule
	// (concurrency cap or slow host); large values mean the offered rate
	// exceeded what the driver could issue.
	MaxLagMS float64 `json:"max_lag_ms"`

	// Scraped /metrics deltas (present when Options.Scrape).
	Scraped   bool    `json:"scraped"`
	HitRate   float64 `json:"hit_rate"`   // (cache+store+coalesce hits) / admitted
	JobsRun   float64 `json:"jobs_run"`   // pipeline executions during the run
	CacheHits float64 `json:"cache_hits"` // LRU + store + coalesce
	Admitted  float64 `json:"admitted"`

	// Bodies holds the first complete response per request key, for
	// differential comparisons between runs. Not serialized.
	Bodies map[string][]byte `json:"-"`
}

// Untyped returns the count of contract-violating responses.
func (s *Summary) Untyped() int { return s.Classes[ClassUntyped] }

// respProbe decodes just enough of any endpoint's response to classify
// it: synthesize responses carry status at the top level, testdesign
// nests the synthesis block and adds atpg_status, errors carry error.
type respProbe struct {
	Status     string `json:"status"`
	ATPGStatus string `json:"atpg_status"`
	Synthesis  *struct {
		Status string `json:"status"`
	} `json:"synthesis"`
	Error *string `json:"error"`
}

// Run drives the schedule against the service. The request *stream* is
// deterministic; interleaving and outcome classes depend on timing, so
// everything timing-dependent is reported, not asserted, here — tests
// and the CI smoke assert on the summary.
func Run(ctx context.Context, sched *Schedule, opts Options) (*Summary, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 16
	}
	timeout := opts.RequestTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}

	sum := &Summary{
		Profile:  sched.Profile,
		Seed:     sched.Seed,
		Requests: len(sched.Requests),
		Classes:  map[string]int{},
		Bodies:   map[string][]byte{},
	}
	var before map[string]float64
	if opts.Scrape {
		var err error
		before, err = scrapeMetrics(client, opts.BaseURL)
		if err != nil {
			return nil, fmt.Errorf("loadgen: scrape before: %w", err)
		}
	}

	var (
		mu        sync.Mutex
		latencies []float64
		firstBody = map[string][]byte{}
	)
	record := func(class string, key string, body []byte, complete bool, lat time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		sum.Classes[class]++
		latencies = append(latencies, float64(lat)/float64(time.Millisecond))
		if complete {
			if prev, ok := firstBody[key]; ok {
				if !bytes.Equal(prev, body) {
					sum.IdentityViolations++
				}
			} else {
				firstBody[key] = body
			}
		}
	}

	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	start := time.Now()
	var maxLag time.Duration
dispatch:
	for _, req := range sched.Requests {
		// Open-loop pacing: wait for the scheduled arrival, then for a
		// concurrency slot. Time spent waiting for the slot is lag.
		due := start.Add(req.At)
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				break dispatch
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		if lag := time.Since(due); lag > maxLag {
			maxLag = lag
		}
		sum.Sent++
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			class, body, complete := doRequest(ctx, client, opts.BaseURL, req, timeout)
			lat := time.Since(t0)
			if opts.Stats != nil {
				opts.Stats.Observe("load.request", lat.Seconds())
			}
			record(class, req.Key(), body, complete, lat)
		}(req)
	}
	wg.Wait()
	sum.DurationS = time.Since(start).Seconds()
	sum.MaxLagMS = float64(maxLag) / float64(time.Millisecond)
	if sum.DurationS > 0 {
		sum.Throughput = float64(sum.Sent) / sum.DurationS
	}
	sum.Latency = summarizeLatency(latencies)
	sum.Bodies = firstBody

	if opts.Scrape {
		after, err := scrapeMetrics(client, opts.BaseURL)
		if err != nil {
			return nil, fmt.Errorf("loadgen: scrape after: %w", err)
		}
		d := func(name string) float64 { return after[name] - before[name] }
		cacheHits := d("hlts_server_cache_hit")
		storeHits := d("hlts_server_store_hit")
		coalesce := d("hlts_server_coalesce_hit")
		misses := d("hlts_server_cache_miss")
		sum.Scraped = true
		sum.CacheHits = cacheHits + storeHits + coalesce
		sum.Admitted = cacheHits + storeHits + misses
		sum.JobsRun = d("hlts_server_jobs_run")
		if sum.Admitted > 0 {
			sum.HitRate = sum.CacheHits / sum.Admitted
		}
	}
	return sum, nil
}

// doRequest issues one call and classifies the outcome. complete is
// true only for 200 responses whose every status field says complete —
// those are the byte-identity candidates.
func doRequest(ctx context.Context, client *http.Client, base string, req Request, timeout time.Duration) (class string, body []byte, complete bool) {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, base+req.Path, bytes.NewReader(req.Body))
	if err != nil {
		return ClassTransport, nil, false
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return ClassTransport, nil, false
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return ClassTransport, nil, false
	}
	var probe respProbe
	typed := json.Unmarshal(body, &probe) == nil
	switch {
	case resp.StatusCode == http.StatusOK:
		if !typed {
			return ClassUntyped, body, false
		}
		partial := probe.Status == "partial" || probe.ATPGStatus == "partial"
		if probe.Synthesis != nil && probe.Synthesis.Status == "partial" {
			partial = true
		}
		if partial {
			return ClassPartial, body, false
		}
		return ClassOK, body, true
	case resp.StatusCode == http.StatusTooManyRequests:
		if !typed || probe.Error == nil || resp.Header.Get("Retry-After") == "" {
			return ClassUntyped, body, false
		}
		return ClassRejected, body, false
	case resp.StatusCode == http.StatusServiceUnavailable:
		if !typed || probe.Error == nil {
			return ClassUntyped, body, false
		}
		return ClassDraining, body, false
	default:
		if !typed || probe.Error == nil {
			return ClassUntyped, body, false
		}
		return ClassError, body, false
	}
}

// scrapeMetrics reads the Prometheus text exposition and returns every
// plain "name value" sample.
func scrapeMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[name] += v
	}
	return out, sc.Err()
}

// summarizeLatency computes exact quantiles over the sample.
func summarizeLatency(ms []float64) Latency {
	if len(ms) == 0 {
		return Latency{}
	}
	sort.Float64s(ms)
	q := func(p float64) float64 {
		i := int(p * float64(len(ms)-1))
		return ms[i]
	}
	var total float64
	for _, v := range ms {
		total += v
	}
	return Latency{
		P50:  q(0.50),
		P90:  q(0.90),
		P99:  q(0.99),
		Max:  ms[len(ms)-1],
		Mean: total / float64(len(ms)),
	}
}
