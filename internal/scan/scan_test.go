package scan

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/rtl"
	"repro/internal/testability"
)

func synth(t *testing.T, bench string, width int) *etpn.Design {
	t.Helper()
	g, err := dfg.ByName(bench, width)
	if err != nil {
		t.Fatal(err)
	}
	par := core.DefaultParams(width)
	if bench == dfg.BenchDiffeq || bench == dfg.BenchPaulin {
		par.LoopSignal = "exit"
	}
	r, err := core.Synthesize(g, par)
	if err != nil {
		t.Fatal(err)
	}
	return r.Design
}

func TestSelectImprovesMeanTestability(t *testing.T) {
	d := synth(t, dfg.BenchDiffeq, 8)
	cfg := testability.DefaultConfig()
	sel := Select(d, cfg, 3, 1e-6)
	if len(sel.Regs) == 0 {
		t.Fatal("no scan registers selected")
	}
	if len(sel.MeanTestability) != len(sel.Regs)+1 {
		t.Fatalf("trajectory length %d for %d registers", len(sel.MeanTestability), len(sel.Regs))
	}
	for i := 1; i < len(sel.MeanTestability); i++ {
		if sel.MeanTestability[i] <= sel.MeanTestability[i-1] {
			t.Errorf("step %d did not improve: %f -> %f", i, sel.MeanTestability[i-1], sel.MeanTestability[i])
		}
	}
	// Selected registers must be distinct and valid.
	seen := map[int]bool{}
	for _, r := range sel.Regs {
		if r < 0 || r >= d.Alloc.NumRegs() || seen[r] {
			t.Fatalf("bad selection %v", sel.Regs)
		}
		seen[r] = true
	}
}

func TestSelectStopsWhenNoGain(t *testing.T) {
	d := synth(t, dfg.BenchTseng, 4)
	cfg := testability.DefaultConfig()
	// An absurd minimum gain stops selection immediately.
	sel := Select(d, cfg, 5, 10.0)
	if len(sel.Regs) != 0 {
		t.Errorf("selected %v despite impossible gain threshold", sel.Regs)
	}
}

func TestRankByNeedCoversAllRegisters(t *testing.T) {
	d := synth(t, dfg.BenchDct, 8)
	m := testability.Analyze(d, testability.DefaultConfig())
	order := RankByNeed(d, m)
	if len(order) != d.Alloc.NumRegs() {
		t.Fatalf("rank covers %d of %d registers", len(order), d.Alloc.NumRegs())
	}
	seen := map[int]bool{}
	for _, r := range order {
		if seen[r] {
			t.Fatalf("duplicate register %d in ranking", r)
		}
		seen[r] = true
	}
	// Worst-first: need must be non-increasing.
	need := func(reg int) float64 {
		n := d.RegNode(reg)
		return 2 - m.Ctrl(n) - m.Obs(n)
	}
	for i := 1; i < len(order); i++ {
		if need(order[i]) > need(order[i-1])+1e-9 {
			t.Errorf("ranking not sorted at %d", i)
		}
	}
}

func TestScanChainNetlist(t *testing.T) {
	d := synth(t, dfg.BenchTseng, 4)
	sel := Select(d, testability.DefaultConfig(), 2, 1e-9)
	if len(sel.Regs) == 0 {
		t.Skip("no beneficial scan registers on this design")
	}
	nl, err := rtl.GenerateWithScan(d, 4, rtl.NormalMode, sel.Regs)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.ScanRegs) != len(sel.Regs) {
		t.Fatalf("netlist records %d scan regs, want %d", len(nl.ScanRegs), len(sel.Regs))
	}
	// scan_en and scan_in must be PIs; scan_out a PO.
	foundEn, foundIn, foundOut := false, false, false
	for _, id := range nl.C.Inputs {
		switch nl.C.Gates[id].Name {
		case "scan_en":
			foundEn = true
		case "scan_in":
			foundIn = true
		}
	}
	for _, name := range nl.C.OutputNames {
		if name == "scan_out" {
			foundOut = true
		}
	}
	if !foundEn || !foundIn || !foundOut {
		t.Fatalf("scan ports missing: en=%v in=%v out=%v", foundEn, foundIn, foundOut)
	}

	// Functional behaviour with scan_en low must be unchanged.
	g := d.G
	in := map[string]uint64{"a": 3, "b": 5, "c": 7}
	want, err := g.Interpret(4, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nl.SimulatePass(in)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("scan netlist broke function: %s = %d, want %d", k, got[k], w)
		}
	}
}

func TestScanImprovesCoverage(t *testing.T) {
	d := synth(t, dfg.BenchDiffeq, 4)
	cfg := atpg.DefaultConfig(5)
	cfg.SampleFaults = 400
	cfg.RandomBatches = 2
	cfg.Restarts = 0
	cfg.MaxFrames = 4

	plain, err := rtl.Generate(d, 4, rtl.NormalMode)
	if err != nil {
		t.Fatal(err)
	}
	basRes, err := atpg.Run(plain.C, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sel := Select(d, testability.DefaultConfig(), 3, 1e-9)
	if len(sel.Regs) == 0 {
		t.Skip("nothing to scan")
	}
	scanned, err := rtl.GenerateWithScan(d, 4, rtl.NormalMode, sel.Regs)
	if err != nil {
		t.Fatal(err)
	}
	scanRes, err := atpg.Run(scanned.C, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coverage without scan %.2f%%, with %d scan regs %.2f%%",
		100*basRes.Coverage, len(sel.Regs), 100*scanRes.Coverage)
	// Partial scan must not lose coverage; typically it gains several
	// points on this looped benchmark.
	if scanRes.Coverage < basRes.Coverage-0.02 {
		t.Errorf("scan reduced coverage: %.3f -> %.3f", basRes.Coverage, scanRes.Coverage)
	}
}

func TestGenerateWithScanRejectsBadRegs(t *testing.T) {
	d := synth(t, dfg.BenchTseng, 4)
	if _, err := rtl.GenerateWithScan(d, 4, rtl.NormalMode, []int{99}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := rtl.GenerateWithScan(d, 4, rtl.NormalMode, []int{0, 0}); err == nil {
		t.Error("expected duplicate error")
	}
}

func TestSelectBIST(t *testing.T) {
	d := synth(t, dfg.BenchDiffeq, 4)
	m := testability.Analyze(d, testability.DefaultConfig())
	tpg, misr := SelectBIST(d, m, 2, 2)
	if len(tpg) == 0 || len(misr) == 0 {
		t.Fatalf("BIST selection empty: tpg=%v misr=%v", tpg, misr)
	}
	seen := map[int]bool{}
	for _, r := range append(append([]int{}, tpg...), misr...) {
		if seen[r] {
			t.Fatalf("register %d in both BIST sets", r)
		}
		seen[r] = true
		if r < 0 || r >= d.Alloc.NumRegs() {
			t.Fatalf("register %d out of range", r)
		}
	}
}

func TestBISTSessionDetectsFaults(t *testing.T) {
	d := synth(t, dfg.BenchDiffeq, 4)
	m := testability.Analyze(d, testability.DefaultConfig())
	tpg, misr := SelectBIST(d, m, 2, 2)
	nl, err := rtl.GenerateBIST(d, 4, rtl.NormalMode, tpg, misr)
	if err != nil {
		t.Fatal(err)
	}
	out, err := atpg.RunBIST(nl.C, 400, 120)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", out)
	if out.Coverage < 0.3 {
		t.Errorf("BIST coverage %.2f unreasonably low", out.Coverage)
	}
	if out.Detected > out.TotalFaults {
		t.Errorf("inconsistent outcome %+v", out)
	}
}

func TestRunBISTRequiresBISTNetlist(t *testing.T) {
	d := synth(t, dfg.BenchTseng, 4)
	nl, err := rtl.Generate(d, 4, rtl.NormalMode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atpg.RunBIST(nl.C, 100, 50); err == nil {
		t.Error("expected missing-bist_en error")
	}
}
