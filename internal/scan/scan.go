// Package scan implements partial-scan register selection on top of the
// testability analysis — the design-for-test extension the paper's
// framework points toward (its references [1, 8, 10] all trade scan
// hardware for testability). Registers are selected greedily: each step
// scans the register whose conversion most improves the design's mean
// testability, re-running the CC/SC/CO/SO analysis with the already-scanned
// registers anchored like ports.
package scan

import (
	"sort"

	"repro/internal/etpn"
	"repro/internal/testability"
)

// Selection reports the chosen scan registers and the metric trajectory.
type Selection struct {
	// Regs lists allocation register ids in selection order.
	Regs []int
	// MeanTestability[i] is the design's mean testability with the first i
	// registers scanned (index 0 = no scan).
	MeanTestability []float64
}

// Select greedily chooses up to max scan registers. Selection stops early
// when no candidate improves mean testability by at least minGain.
func Select(d *etpn.Design, cfg testability.Config, max int, minGain float64) *Selection {
	sel := &Selection{}
	scanned := map[int]bool{} // node ids
	evalWith := func(extra int) float64 {
		c := cfg
		c.ScanNodes = map[int]bool{}
		for n := range scanned {
			c.ScanNodes[n] = true
		}
		if extra >= 0 {
			c.ScanNodes[extra] = true
		}
		m := testability.Analyze(d, c)
		return testability.MeanTestability(d, m)
	}
	base := evalWith(-1)
	sel.MeanTestability = append(sel.MeanTestability, base)
	for len(sel.Regs) < max {
		bestReg, bestNode := -1, -1
		bestGain := minGain
		for _, r := range d.Alloc.Regs {
			node := d.RegNode(r.ID)
			if scanned[node] {
				continue
			}
			gain := evalWith(node) - base
			if gain > bestGain {
				bestGain, bestReg, bestNode = gain, r.ID, node
			}
		}
		if bestReg < 0 {
			break
		}
		scanned[bestNode] = true
		sel.Regs = append(sel.Regs, bestReg)
		base = evalWith(-1)
		sel.MeanTestability = append(sel.MeanTestability, base)
	}
	return sel
}

// RankByNeed orders all registers by how poorly testable they are under
// the current analysis (worst first): a cheaper, non-iterative alternative
// to Select for large designs.
func RankByNeed(d *etpn.Design, m *testability.Metrics) []int {
	type ent struct {
		reg  int
		need float64
	}
	var es []ent
	for _, r := range d.Alloc.Regs {
		node := d.RegNode(r.ID)
		es = append(es, ent{r.ID, 2 - m.Ctrl(node) - m.Obs(node)})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].need != es[j].need {
			return es[i].need > es[j].need
		}
		return es[i].reg < es[j].reg
	})
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.reg
	}
	return out
}

// SelectBIST chooses registers to reconfigure for built-in self-test
// (rtl.GenerateBIST): pattern-generator (TPG) registers are those feeding
// the hardest-to-control modules, signature (MISR) registers those
// capturing the hardest-to-observe module outputs — the BIST placement
// rule of the paper's reference [10]. The two sets are disjoint; TPG
// choices take precedence.
func SelectBIST(d *etpn.Design, m *testability.Metrics, nTpg, nMisr int) (tpg, misr []int) {
	type ent struct {
		reg   int
		score float64
	}
	var tpgEnts, misrEnts []ent
	for _, r := range d.Alloc.Regs {
		node := d.RegNode(r.ID)
		worstCtrl, worstObs := 0.0, 0.0
		for _, a := range d.ArcsFrom(node) {
			if d.Nodes[a.To].Kind == etpn.KindModule {
				if need := 1 - m.Ctrl(a.To); need > worstCtrl {
					worstCtrl = need
				}
			}
		}
		for _, a := range d.ArcsInto(node) {
			if d.Nodes[a.From].Kind == etpn.KindModule {
				if need := 1 - m.Obs(a.From); need > worstObs {
					worstObs = need
				}
			}
		}
		tpgEnts = append(tpgEnts, ent{r.ID, worstCtrl})
		misrEnts = append(misrEnts, ent{r.ID, worstObs})
	}
	byScore := func(es []ent) {
		sort.Slice(es, func(i, j int) bool {
			if es[i].score != es[j].score {
				return es[i].score > es[j].score
			}
			return es[i].reg < es[j].reg
		})
	}
	byScore(tpgEnts)
	byScore(misrEnts)
	taken := map[int]bool{}
	for _, e := range tpgEnts {
		if len(tpg) >= nTpg || e.score <= 0 {
			break
		}
		tpg = append(tpg, e.reg)
		taken[e.reg] = true
	}
	for _, e := range misrEnts {
		if len(misr) >= nMisr {
			break
		}
		if taken[e.reg] || e.score <= 0 {
			continue
		}
		misr = append(misr, e.reg)
	}
	return tpg, misr
}
