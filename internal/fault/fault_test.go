package fault

import (
	"testing"

	"repro/internal/gates"
)

func simpleCircuit(t *testing.T) *gates.Circuit {
	t.Helper()
	b := gates.NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	n := b.Not(x)
	a := b.And(n, y)
	b.Output("z", a)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEnumerateCountsAllPins(t *testing.T) {
	c := simpleCircuit(t)
	fs := Enumerate(c)
	// Gates: x, y, NOT(1 in), AND(2 in) = 4 outputs*2 + (1+2) inputs*2 = 14.
	if len(fs) != 14 {
		t.Fatalf("enumerated %d faults, want 14", len(fs))
	}
	seen := map[string]bool{}
	for _, f := range fs {
		if seen[f.String()] {
			t.Errorf("duplicate fault %v", f)
		}
		seen[f.String()] = true
	}
}

func TestCollapseEquivalences(t *testing.T) {
	c := simpleCircuit(t)
	collapsed := Collapse(c)
	full := Enumerate(c)
	if len(collapsed) >= len(full) {
		t.Fatalf("collapse did not reduce: %d vs %d", len(collapsed), len(full))
	}
	// NOT's input faults are equivalent to its output faults and must be
	// gone; AND's input s-a-0 likewise.
	for _, f := range collapsed {
		g := c.Gates[f.Gate]
		if g.Kind == gates.KNot && f.Pin >= 0 {
			t.Errorf("NOT input fault %v survived collapsing", f)
		}
		if g.Kind == gates.KAnd && f.Pin >= 0 && !f.Val {
			t.Errorf("AND input s-a-0 %v survived collapsing", f)
		}
	}
	// AND input s-a-1 faults are NOT equivalent and must survive.
	found := false
	for _, f := range collapsed {
		if c.Gates[f.Gate].Kind == gates.KAnd && f.Pin >= 0 && f.Val {
			found = true
		}
	}
	if !found {
		t.Error("AND input s-a-1 faults missing after collapsing")
	}
}

func TestCollapsePrunesUnobservable(t *testing.T) {
	b := gates.NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	_ = b.And(x, y) // dangling
	b.Output("z", b.Or(x, y))
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Collapse(c) {
		if c.Gates[f.Gate].Kind == gates.KAnd {
			t.Errorf("fault %v on unobservable gate survived", f)
		}
	}
}

func TestCollapseCrossesDFFs(t *testing.T) {
	// A fault behind a DFF is observable through it and must be kept.
	b := gates.NewBuilder()
	x := b.Input("x")
	n := b.Not(x)
	q := b.DFF("q")
	b.SetD(q, n)
	b.Output("z", q)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	// The NOT is fanout-free into the DFF and its faults collapse through
	// the single-input chain NOT-out ≡ DFF-in ≡ DFF-out: the class must be
	// represented by the DFF output faults.
	reps := 0
	for _, f := range Collapse(c) {
		if c.Gates[f.Gate].Kind == gates.KDFF && f.Pin < 0 {
			reps++
		}
	}
	if reps != 2 {
		t.Errorf("DFF output faults represent the chain class: got %d, want 2", reps)
	}
}

func TestSampleEdgeCases(t *testing.T) {
	var fs []Fault
	for i := 0; i < 7; i++ {
		fs = append(fs, Fault{Gate: i})
	}
	if got := Sample(fs, 3); len(got) != 3 || got[0].Gate != 0 {
		t.Errorf("Sample(7,3) = %v", got)
	}
	if got := Sample(fs, 7); len(got) != 7 {
		t.Errorf("Sample(n,n) should be identity")
	}
	if got := Sample(nil, 5); len(got) != 0 {
		t.Errorf("Sample(nil) = %v", got)
	}
}

func TestEquivalentToOutputTable(t *testing.T) {
	cases := []struct {
		k    gates.Kind
		v    bool
		want bool
	}{
		{gates.KBuf, false, true},
		{gates.KBuf, true, true},
		{gates.KNot, false, true},
		{gates.KDFF, true, true},
		{gates.KAnd, false, true},
		{gates.KAnd, true, false},
		{gates.KNand, false, true},
		{gates.KNand, true, false},
		{gates.KOr, true, true},
		{gates.KOr, false, false},
		{gates.KNor, true, true},
		{gates.KXor, false, false},
		{gates.KXor, true, false},
	}
	for _, c := range cases {
		if got := equivalentToOutput(c.k, c.v); got != c.want {
			t.Errorf("equivalentToOutput(%v, %v) = %v, want %v", c.k, c.v, got, c.want)
		}
	}
}
