// Package fault implements the single stuck-at fault model over gate-level
// netlists (paper §2: "the stuck-at fault model is the mostly used fault
// model"): fault enumeration on gate outputs and inputs, structural
// equivalence collapsing, and deterministic sampling for coverage
// estimation on large fault lists.
package fault

import (
	"fmt"

	"repro/internal/gates"
)

// Fault is a single stuck-at fault: the named pin of a gate is stuck at
// Val. Pin -1 is the gate's output; 0..n-1 are its input pins.
type Fault struct {
	Gate int
	Pin  int
	Val  bool
}

// String renders the fault in conventional notation.
func (f Fault) String() string {
	v := 0
	if f.Val {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("g%d/out s-a-%d", f.Gate, v)
	}
	return fmt.Sprintf("g%d/in%d s-a-%d", f.Gate, f.Pin, v)
}

// Enumerate lists every stuck-at fault on the circuit: both polarities on
// every gate output and every gate input pin. Constant gates get no
// faults on their (non-existent) inputs; their outputs are still faulted.
func Enumerate(c *gates.Circuit) []Fault {
	var fs []Fault
	for _, g := range c.Gates {
		fs = append(fs, Fault{g.ID, -1, false}, Fault{g.ID, -1, true})
		for pin := range g.In {
			fs = append(fs, Fault{g.ID, pin, false}, Fault{g.ID, pin, true})
		}
	}
	return fs
}

// Collapse performs structural equivalence collapsing, keeping one
// representative per equivalence class:
//
//   - an input s-a-v of a BUF/DFF is equivalent to its output s-a-v, and
//     of a NOT to its output s-a-(^v);
//   - an input s-a-0 of an AND (s-a-1 of an OR) is equivalent to the output
//     s-a-0 (s-a-1), and dually for NAND/NOR with the output polarity
//     flipped;
//   - a fanout-free gate output fault is equivalent to the corresponding
//     input fault of its unique reader, so only the reader's is kept.
//
// Faults on gates outside the observable cone (no structural path to any
// primary output, through flip-flops or not) are undetectable by
// definition and are pruned. The non-controlling-value input faults and
// all output faults survive.
func Collapse(c *gates.Circuit) []Fault {
	readers := make([]int, len(c.Gates))
	for _, g := range c.Gates {
		for _, in := range g.In {
			readers[in]++
		}
	}
	observed := make([]bool, len(c.Gates))
	for _, o := range c.Outputs {
		observed[o] = true
	}
	observable := observableCone(c)
	var fs []Fault
	for _, g := range c.Gates {
		if !observable[g.ID] {
			continue
		}
		// Output faults: keep unless the gate is fanout-free into a single
		// reader gate, whose input fault class then covers it. A gate that
		// is directly observed has no reader to represent it and keeps its
		// output faults.
		keepOut := true
		if !observed[g.ID] {
			if readers[g.ID] == 1 {
				keepOut = false
			}
			if readers[g.ID] == 0 {
				keepOut = false // dangling: undetectable and uninteresting
			}
		}
		if keepOut {
			fs = append(fs, Fault{g.ID, -1, false}, Fault{g.ID, -1, true})
		}
		for pin := range g.In {
			for _, v := range []bool{false, true} {
				if equivalentToOutput(g.Kind, v) {
					continue // represented by the gate's output fault
				}
				fs = append(fs, Fault{g.ID, pin, v})
			}
		}
	}
	return fs
}

// observableCone marks every gate with a structural path to a primary
// output (crossing flip-flops freely).
func observableCone(c *gates.Circuit) []bool {
	mark := make([]bool, len(c.Gates))
	var stack []int
	for _, o := range c.Outputs {
		if !mark[o] {
			mark[o] = true
			stack = append(stack, o)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range c.Gates[id].In {
			if !mark[in] {
				mark[in] = true
				stack = append(stack, in)
			}
		}
	}
	return mark
}

// equivalentToOutput reports whether an input stuck-at-v fault of the kind
// is structurally equivalent to an output fault of the same gate.
func equivalentToOutput(k gates.Kind, v bool) bool {
	switch k {
	case gates.KBuf, gates.KNot, gates.KDFF:
		return true // single-input: always equivalent (polarity adjusted)
	case gates.KAnd, gates.KNand:
		return !v // controlling value 0
	case gates.KOr, gates.KNor:
		return v // controlling value 1
	default:
		return false
	}
}

// Sample returns a deterministic sample of at most n faults, evenly spaced
// through the list (the list order is structural, so even spacing covers
// the whole circuit). If n <= 0 or n >= len(fs), the full list is
// returned.
func Sample(fs []Fault, n int) []Fault {
	if n <= 0 || n >= len(fs) {
		return fs
	}
	out := make([]Fault, 0, n)
	stride := float64(len(fs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, fs[int(float64(i)*stride)])
	}
	return out
}
