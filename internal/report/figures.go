package report

import (
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/parallel"
	"repro/internal/rtl"
	"repro/internal/scan"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/testability"
)

// Figure1 reproduces the paper's Figure 1 demonstration: when two
// operations scheduled in the same control step must share a module, the
// serialization order matters. Executing the operation with the longer
// downstream chain first (the SR2 choice here) keeps the schedule at its
// minimum length, and the resulting register sharing — hence the
// sequential depths the SR1 rule cares about — differs between the two
// orders. The returned text shows schedule length and mean register
// sequential depth for both.
func Figure1() (string, error) {
	// N1 feeds a short chain (one consumer); N2 feeds a two-stage chain.
	// N1 and N2 share one adder module, so one of them must wait a step.
	g := dfg.New("fig1", 8)
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	e := g.Input("e")
	f := g.Input("f")
	p := g.OpNamed("N1", dfg.OpAdd, "p", a, b)
	q := g.OpNamed("N2", dfg.OpAdd, "q", c, c)
	o1 := g.OpNamed("N3", dfg.OpAdd, "o1", p, e)
	t := g.OpNamed("N4", dfg.OpAdd, "t", q, e)
	o2 := g.OpNamed("N5", dfg.OpAdd, "o2", t, f)
	g.MarkOutput(o1)
	g.MarkOutput(o2)

	var b2 strings.Builder
	fmt.Fprintf(&b2, "Figure 1: controllability/observability enhancement strategy (SR1/SR2)\n")
	fmt.Fprintf(&b2, "N1 and N2 share one module and must be serialized.\n\n")
	n1, _ := g.NodeByName("N1")
	n2, _ := g.NodeByName("N2")
	n3, _ := g.NodeByName("N3")
	n4, _ := g.NodeByName("N4")
	n5, _ := g.NodeByName("N5")
	for _, order := range []struct {
		name string
		arc  [2]dfg.NodeID
	}{
		{"N2 before N1 (SR2 choice)", [2]dfg.NodeID{n2, n1}},
		{"N1 before N2", [2]dfg.NodeID{n1, n2}},
	} {
		prob := sched.NewProblem(g)
		prob.ModuleOf[n1] = 0
		prob.ModuleOf[n2] = 0
		_ = n3
		_ = n4
		_ = n5
		prob.Extra = append(prob.Extra, order.arc)
		s, err := prob.List(nil)
		if err != nil {
			return "", err
		}
		life := alloc.Lifetimes(g, s)
		regOf, nRegs := alloc.RegisterLeftEdge(g, life)
		al := alloc.BindModules(g, s, sched.ExactClass, regOf, nRegs)
		d, err := etpn.Build(g, s, al, life, etpn.Options{})
		if err != nil {
			return "", err
		}
		m := testability.Analyze(d, testability.DefaultConfig())
		sum, cnt := 0.0, 0
		for _, nd := range d.Nodes {
			if nd.Kind == etpn.KindRegister {
				sum += m.SeqDepth(nd.ID)
				cnt++
			}
		}
		fmt.Fprintf(&b2, "order %-28s schedule length %d, mean register sequential depth %.2f\n",
			order.name+":", s.Len, sum/float64(cnt))
		b2.WriteString(s.String(g))
		b2.WriteString("\n")
	}
	_ = p
	_ = q
	_ = o1
	_ = o2
	_ = t
	_ = a
	_ = e
	_ = f
	_ = b
	b2.WriteString("Executing the long-chain operation first (the SR2-supported order)\n")
	b2.WriteString("keeps the schedule at its minimum length: the serialization imposed\n")
	b2.WriteString("by the module merger is absorbed into existing slack instead of\n")
	b2.WriteString("stretching the critical path. The register sharing and sequential\n")
	b2.WriteString("depths then differ between the two orders, which is what the\n")
	b2.WriteString("controllability/observability enhancement strategy exploits.\n")
	return b2.String(), nil
}

// Schedule returns the schedule listing produced by Our synthesis for a
// benchmark — Figures 2 (Ex) and 3 (Dct, Diffeq) of the paper.
func Schedule(bench string, width int, cfg Config) (string, error) {
	g, err := dfg.ByName(bench, width)
	if err != nil {
		return "", err
	}
	par := cfg.ParamsFor(width)
	par.Width = width
	par.LoopSignal = loopSignalFor(bench)
	res, err := core.Synthesize(g, par)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Schedule for the %s benchmark after our synthesis algorithm:\n", bench)
	b.WriteString(res.Design.Sched.String(g))
	fmt.Fprintf(&b, "\nModule and register allocation:\n%s", res.Design.Alloc.String(g))
	return b.String(), nil
}

// SweepRow is one parameter-sweep measurement.
type SweepRow struct {
	K           int
	Alpha, Beta float64
	Modules     int
	Registers   int
	Mux         int
	ExecTime    int
	Area        float64
}

// ParameterSweep varies (k, α, β) on a benchmark, substantiating the
// paper's §5 remark that "the chosen parameters do not influence so much
// the final results". The grid points are independent synthesis runs, so
// they fan out across up to `workers` goroutines (0 = one per CPU) with
// rows collected in grid order; the output is identical at every worker
// count. The worker budget is split between the grid fan-out and the
// tie-policy exploration inside each synthesis — handing the full budget
// to both layers would multiply them into workers² goroutines. st (may be
// nil) collects per-stage synthesis statistics across all grid points.
func ParameterSweep(bench string, width, workers int, st *stats.Stats) ([]SweepRow, error) {
	g, err := dfg.ByName(bench, width)
	if err != nil {
		return nil, err
	}
	type point struct {
		k    int
		a, b float64
	}
	var grid []point
	for _, k := range []int{1, 2, 3, 5} {
		for _, ab := range [][2]float64{{2, 1}, {10, 1}, {1, 10}, {1, 1}} {
			grid = append(grid, point{k, ab[0], ab[1]})
		}
	}
	rows := make([]SweepRow, len(grid))
	outer, inner := parallel.Split(workers, len(grid))
	err = parallel.ForEach(outer, len(grid), func(i int) error {
		pt := grid[i]
		par := core.DefaultParams(width)
		par.K = pt.k
		par.Alpha, par.Beta = pt.a, pt.b
		par.LoopSignal = loopSignalFor(bench)
		par.Workers = inner
		par.Stats = st
		res, err := core.Synthesize(g, par)
		if err != nil {
			return err
		}
		rows[i] = SweepRow{
			K: pt.k, Alpha: pt.a, Beta: pt.b,
			Modules:   res.Design.Alloc.NumModules(),
			Registers: res.Design.Alloc.NumRegs(),
			Mux:       res.Mux.Muxes,
			ExecTime:  res.ExecTime,
			Area:      res.Area.Total,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderSweep formats a parameter sweep.
func RenderSweep(bench string, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parameter sweep on %s (k, alpha, beta -> allocation shape):\n", bench)
	fmt.Fprintf(&b, "%3s %6s %6s | %8s %10s %5s %10s %10s\n", "k", "alpha", "beta", "#modules", "#registers", "#mux", "exec", "area")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3d %6.0f %6.0f | %8d %10d %5d %10d %10.0f\n",
			r.K, r.Alpha, r.Beta, r.Modules, r.Registers, r.Mux, r.ExecTime, r.Area)
	}
	return b.String()
}

// AblationRow measures one algorithm variant.
type AblationRow struct {
	Variant   string
	Modules   int
	Registers int
	Mux       int
	SelfLoops int
	Area      float64
	MeanTest  float64
}

// Ablations isolates the paper's design choices on one benchmark:
// balance-driven versus connectivity-driven pair selection, SR-guided
// merge-sort versus naive append rescheduling, and integrated versus
// phase-separated (frozen-schedule) synthesis. The variants fan out
// across up to `workers` goroutines with rows collected in variant order;
// the budget is split between the variant fan-out and the tie-policy
// exploration inside each synthesis. st (may be nil) collects per-stage
// synthesis statistics across all variants.
func Ablations(bench string, width, workers int, st *stats.Stats) ([]AblationRow, error) {
	g, err := dfg.ByName(bench, width)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		mod  func(*core.Params)
	}{
		{"paper (balance + merge-sort SR)", func(p *core.Params) {}},
		{"connectivity selection", func(p *core.Params) { p.Selection = core.SelectConnectivity }},
		{"append rescheduling", func(p *core.Params) { p.Reschedule = core.RescheduleAppend }},
		{"frozen schedule (phase-separated)", func(p *core.Params) { p.Reschedule = core.RescheduleFrozen }},
	}
	rows := make([]AblationRow, len(variants))
	outer, inner := parallel.Split(workers, len(variants))
	err = parallel.ForEach(outer, len(variants), func(i int) error {
		v := variants[i]
		par := core.DefaultParams(width)
		par.LoopSignal = loopSignalFor(bench)
		par.Workers = inner
		par.Stats = st
		v.mod(&par)
		res, err := core.Synthesize(g, par)
		if err != nil {
			return err
		}
		rows[i] = AblationRow{
			Variant:   v.name,
			Modules:   res.Design.Alloc.NumModules(),
			Registers: res.Design.Alloc.NumRegs(),
			Mux:       res.Mux.Muxes,
			SelfLoops: res.Design.SelfLoops(),
			Area:      res.Area.Total,
			MeanTest:  testability.MeanTestability(res.Design, res.Metrics),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderAblations formats the ablation study.
func RenderAblations(bench string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Design-choice ablations on %s:\n", bench)
	fmt.Fprintf(&b, "%-36s %8s %10s %5s %10s %10s %10s\n", "variant", "#modules", "#registers", "#mux", "self-loops", "area", "mean-test")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %8d %10d %5d %10d %10.0f %10.4f\n",
			r.Variant, r.Modules, r.Registers, r.Mux, r.SelfLoops, r.Area, r.MeanTest)
	}
	return b.String()
}

// ScanStudy measures the partial-scan extension: coverage and effort as
// scan registers (selected by the testability-guided greedy of package
// scan) are added to the synthesized design, over the full collapsed
// fault list. `workers` is the goroutine budget inside the synthesis and
// each campaign (0 = one per CPU).
func ScanStudy(bench string, width, maxScan int, seed int64, workers int) (string, error) {
	g, err := dfg.ByName(bench, width)
	if err != nil {
		return "", err
	}
	par := core.DefaultParams(width)
	par.LoopSignal = loopSignalFor(bench)
	par.Workers = workers
	res, err := core.Synthesize(g, par)
	if err != nil {
		return "", err
	}
	sel := scan.Select(res.Design, res.Metrics.Config(), maxScan, 1e-9)
	var b strings.Builder
	fmt.Fprintf(&b, "scan selection on %s (%d-bit): registers %v\n", bench, width, sel.Regs)
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %12s\n", "scan regs", "mean-test", "coverage", "effort", "cycles")
	cfg := atpg.DefaultConfig(seed)
	cfg.SampleFaults = 0
	cfg.RandomBatches = 2
	cfg.Workers = workers
	for n := 0; n <= len(sel.Regs); n++ {
		nl, err := rtl.GenerateWithScan(res.Design, width, rtl.NormalMode, sel.Regs[:n])
		if err != nil {
			return "", err
		}
		acfg := cfg
		if acfg.MaxFrames < 2*(nl.Steps+1) {
			acfg.MaxFrames = 2 * (nl.Steps + 1)
		}
		ares, err := atpg.Run(nl.C, acfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10d %10.4f %11.2f%% %12d %12d\n",
			n, sel.MeanTestability[n], 100*ares.Coverage, ares.Effort, ares.TestCycles)
	}
	return b.String(), nil
}

// BISTStudy measures the built-in self-test extension: fault coverage and
// simulation cost of a self-test session at 1 lane (the historical
// single-session evaluator) and at 64 lanes (PPSFP — every simulator lane
// carries an independent pseudorandom session), over increasing session
// lengths. passes/session is the number of whole-circuit simulation
// passes spent per pseudorandom session: the lane-parallel evaluator
// divides it by the lane count. `workers` is the goroutine budget of the
// synthesis (the session replay itself is sequential).
func BISTStudy(bench string, width, nTpg, nMisr int, cyclesList []int, faults int, seed uint64, workers int) (string, error) {
	g, err := dfg.ByName(bench, width)
	if err != nil {
		return "", err
	}
	par := core.DefaultParams(width)
	par.LoopSignal = loopSignalFor(bench)
	par.Workers = workers
	res, err := core.Synthesize(g, par)
	if err != nil {
		return "", err
	}
	tpg, misr := scan.SelectBIST(res.Design, res.Metrics, nTpg, nMisr)
	nl, err := rtl.GenerateBIST(res.Design, width, rtl.NormalMode, tpg, misr)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "BIST on %s (%d-bit): TPG %v, MISR %v, %d sampled faults\n",
		bench, width, tpg, misr, faults)
	fmt.Fprintf(&b, "%-8s %6s %12s %16s\n", "cycles", "lanes", "coverage", "passes/session")
	for _, cycles := range cyclesList {
		for _, lanes := range []int{1, 64} {
			out, err := atpg.RunBISTCfg(nl.C, faults, cycles,
				atpg.BISTConfig{Lanes: lanes, Seed: seed, TPGRegs: nl.BISTTpg})
			if err != nil {
				return "", err
			}
			pps := 0.0
			if out.Evaluated > 0 {
				pps = float64(out.Passes) / float64(out.Evaluated*out.Lanes)
			}
			fmt.Fprintf(&b, "%-8d %6d %11.2f%% %16.2f\n", cycles, lanes, 100*out.Coverage, pps)
		}
	}
	return b.String(), nil
}
