package report

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dfg"
)

// checkpointConfig is a small, fast table configuration shared by the
// resume tests. Everything is seeded, so cells are deterministic.
func checkpointConfig(workers, par int) Config {
	cfg := DefaultConfig(21)
	cfg.Widths = []int{4}
	cfg.ATPGFor = func(width int) atpg.Config {
		c := atpg.DefaultConfig(21 + int64(width))
		c.SampleFaults = 120
		c.RandomBatches = 1
		c.Restarts = 1
		return c
	}
	cfg.Workers = workers
	cfg.Parallel = par
	return cfg
}

// TestKillAndResumeByteIdentical is the acceptance criterion: a sweep
// interrupted mid-run (journal holding only a prefix of its cells, plus
// the torn line a kill mid-write leaves) resumes to byte-identical table
// output, at workers 1 and 8.
func TestKillAndResumeByteIdentical(t *testing.T) {
	const bench = dfg.BenchEx
	ref, err := RunTable(bench, checkpointConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	refText, refMd := ref.Render(), ref.Markdown()
	if strings.Contains(refText, "partial") {
		t.Fatalf("uninterrupted run has partial cells:\n%s", refText)
	}

	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	j, err := OpenJournal(full)
	if err != nil {
		t.Fatal(err)
	}
	cfg := checkpointConfig(1, 1)
	cfg.Journal = j
	if _, err := RunTable(bench, cfg); err != nil {
		t.Fatal(err)
	}
	if want := len(ref.Cells); j.Len() != want {
		t.Fatalf("journal holds %d cells, want %d", j.Len(), want)
	}
	j.Close()

	// Simulate the kill: keep the first two journal lines and append the
	// torn fragment of a cell that was mid-write when the process died.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	truncated := filepath.Join(dir, "killed.ckpt")
	torn := lines[0] + lines[1] + `{"Bench":"ex","Cell":{"Method":"appr`
	if err := os.WriteFile(truncated, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		resumed, err := OpenJournal(truncated)
		if err != nil {
			t.Fatal(err)
		}
		if resumed.Len() != 2 {
			t.Fatalf("workers=%d: truncated journal loaded %d cells, want 2 (torn line dropped)", workers, resumed.Len())
		}
		cfg := checkpointConfig(workers, workers)
		cfg.Journal = resumed
		tbl, err := RunTable(bench, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resumed.Close()
		if got := tbl.Render(); got != refText {
			t.Errorf("workers=%d: resumed render diverges:\n--- resumed ---\n%s\n--- reference ---\n%s", workers, got, refText)
		}
		if got := tbl.Markdown(); got != refMd {
			t.Errorf("workers=%d: resumed markdown diverges", workers)
		}
		// The resume must not have re-run the journaled prefix: its own
		// journal file gains only the missing cells.
		reopened, err := OpenJournal(truncated)
		if err != nil {
			t.Fatal(err)
		}
		if want := len(ref.Cells); reopened.Len() != want {
			t.Errorf("workers=%d: resumed journal holds %d cells, want %d", workers, reopened.Len(), want)
		}
		reopened.Close()
		// Restore the truncated journal for the next worker count.
		if err := os.WriteFile(truncated, []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCancelledSweepResumes: a sweep interrupted by context cancellation
// journals nothing partial; resuming with a live context reproduces the
// uninterrupted output byte-for-byte.
func TestCancelledSweepResumes(t *testing.T) {
	const bench = dfg.BenchEx
	ref, err := RunTable(bench, checkpointConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := checkpointConfig(1, 1)
	cfg.Journal = j
	interrupted, err := RunTableCtx(ctx, bench, cfg)
	if err != nil {
		t.Fatalf("cancelled sweep errored instead of degrading: %v", err)
	}
	if interrupted.partialCount() != len(interrupted.Cells) {
		t.Errorf("cancelled sweep: %d of %d cells partial", interrupted.partialCount(), len(interrupted.Cells))
	}
	if !strings.Contains(interrupted.Render(), "partial") {
		t.Error("partial table renders without marker")
	}
	if j.Len() != 0 {
		t.Errorf("cancelled sweep journaled %d partial cells", j.Len())
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j2
	resumed, err := RunTable(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if resumed.Render() != ref.Render() {
		t.Errorf("resume after cancellation diverges:\n%s\nvs\n%s", resumed.Render(), ref.Render())
	}
}

// TestJournalRecordSemantics pins the journal contract: idempotent
// records, partial cells refused, lookups keyed by all three coordinates.
func TestJournalRecordSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ckpt")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cell := Cell{Method: core.MethodOurs, Width: 8, Coverage: 0.5, Area: 123.25}
	if err := j.Record("ex", cell); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("ex", cell); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := j.Record("ex", Cell{Method: core.MethodOurs, Width: 8, Partial: true}); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("journal holds %d cells, want 1", j.Len())
	}
	if _, ok := j.Lookup("ex", core.MethodOurs, 4); ok {
		t.Error("lookup matched the wrong width")
	}
	if _, ok := j.Lookup("dct", core.MethodOurs, 8); ok {
		t.Error("lookup matched the wrong benchmark")
	}
	got, ok := j.Lookup("ex", core.MethodOurs, 8)
	if !ok || got != cell {
		t.Fatalf("lookup returned %+v, want %+v", got, cell)
	}
	j.Close()
	// Reopen: the float fields must round-trip exactly through JSON.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, ok = j2.Lookup("ex", core.MethodOurs, 8)
	if !ok || got != cell {
		t.Fatalf("reloaded cell %+v, want %+v", got, cell)
	}
}
