package report

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/store"
)

// checkpointConfig is a small, fast table configuration shared by the
// resume tests. Everything is seeded, so cells are deterministic.
func checkpointConfig(workers, par int) Config {
	cfg := DefaultConfig(21)
	cfg.Widths = []int{4}
	cfg.ATPGFor = func(width int) atpg.Config {
		c := atpg.DefaultConfig(21 + int64(width))
		c.SampleFaults = 120
		c.RandomBatches = 1
		c.Restarts = 1
		return c
	}
	cfg.Workers = workers
	cfg.Parallel = par
	return cfg
}

// TestKillAndResumeByteIdentical is the acceptance criterion: a sweep
// interrupted mid-run (journal holding only a prefix of its cells, plus
// the torn line a kill mid-write leaves) resumes to byte-identical table
// output, at workers 1 and 8.
func TestKillAndResumeByteIdentical(t *testing.T) {
	const bench = dfg.BenchEx
	ref, err := RunTable(bench, checkpointConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	refText, refMd := ref.Render(), ref.Markdown()
	if strings.Contains(refText, "partial") {
		t.Fatalf("uninterrupted run has partial cells:\n%s", refText)
	}

	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	j, err := OpenJournal(full)
	if err != nil {
		t.Fatal(err)
	}
	cfg := checkpointConfig(1, 1)
	cfg.Journal = j
	if _, err := RunTable(bench, cfg); err != nil {
		t.Fatal(err)
	}
	if want := len(ref.Cells); j.Len() != want {
		t.Fatalf("journal holds %d cells, want %d", j.Len(), want)
	}
	j.Close()

	// Simulate the kill: a checkpoint holding only the first two cells,
	// with the torn tail of the record that was mid-write when the process
	// died still in its newest segment.
	mkKilled := func(t *testing.T, path string) {
		t.Helper()
		k, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range ref.Cells[:2] {
			if err := k.Record(bench, c); err != nil {
				t.Fatal(err)
			}
		}
		k.Close()
		segs, err := filepath.Glob(filepath.Join(path, "seg-*.log"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("checkpoint store has no segments (%v)", err)
		}
		sort.Strings(segs)
		f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		// A record prefix: valid magic, then EOF where the body should be.
		if _, err := f.Write([]byte("hSg1\x14\x00\x00\x00")); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	for _, workers := range []int{1, 8} {
		truncated := filepath.Join(dir, fmt.Sprintf("killed-w%d.ckpt", workers))
		mkKilled(t, truncated)
		resumed, err := OpenJournal(truncated)
		if err != nil {
			t.Fatal(err)
		}
		if resumed.Len() != 2 {
			t.Fatalf("workers=%d: truncated journal loaded %d cells, want 2 (torn line dropped)", workers, resumed.Len())
		}
		cfg := checkpointConfig(workers, workers)
		cfg.Journal = resumed
		tbl, err := RunTable(bench, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resumed.Close()
		if got := tbl.Render(); got != refText {
			t.Errorf("workers=%d: resumed render diverges:\n--- resumed ---\n%s\n--- reference ---\n%s", workers, got, refText)
		}
		if got := tbl.Markdown(); got != refMd {
			t.Errorf("workers=%d: resumed markdown diverges", workers)
		}
		// The resume must not have re-run the journaled prefix: its own
		// journal file gains only the missing cells.
		reopened, err := OpenJournal(truncated)
		if err != nil {
			t.Fatal(err)
		}
		if want := len(ref.Cells); reopened.Len() != want {
			t.Errorf("workers=%d: resumed journal holds %d cells, want %d", workers, reopened.Len(), want)
		}
		reopened.Close()
	}
}

// TestCancelledSweepResumes: a sweep interrupted by context cancellation
// journals nothing partial; resuming with a live context reproduces the
// uninterrupted output byte-for-byte.
func TestCancelledSweepResumes(t *testing.T) {
	const bench = dfg.BenchEx
	ref, err := RunTable(bench, checkpointConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := checkpointConfig(1, 1)
	cfg.Journal = j
	interrupted, err := RunTableCtx(ctx, bench, cfg)
	if err != nil {
		t.Fatalf("cancelled sweep errored instead of degrading: %v", err)
	}
	if interrupted.partialCount() != len(interrupted.Cells) {
		t.Errorf("cancelled sweep: %d of %d cells partial", interrupted.partialCount(), len(interrupted.Cells))
	}
	if !strings.Contains(interrupted.Render(), "partial") {
		t.Error("partial table renders without marker")
	}
	if j.Len() != 0 {
		t.Errorf("cancelled sweep journaled %d partial cells", j.Len())
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j2
	resumed, err := RunTable(bench, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if resumed.Render() != ref.Render() {
		t.Errorf("resume after cancellation diverges:\n%s\nvs\n%s", resumed.Render(), ref.Render())
	}
}

// TestJournalRecordSemantics pins the journal contract: idempotent
// records, partial cells refused, lookups keyed by all three coordinates.
func TestJournalRecordSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ckpt")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cell := Cell{Method: core.MethodOurs, Width: 8, Coverage: 0.5, Area: 123.25}
	if err := j.Record("ex", cell); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("ex", cell); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := j.Record("ex", Cell{Method: core.MethodOurs, Width: 8, Partial: true}); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("journal holds %d cells, want 1", j.Len())
	}
	if _, ok := j.Lookup("ex", core.MethodOurs, 4); ok {
		t.Error("lookup matched the wrong width")
	}
	if _, ok := j.Lookup("dct", core.MethodOurs, 8); ok {
		t.Error("lookup matched the wrong benchmark")
	}
	got, ok := j.Lookup("ex", core.MethodOurs, 8)
	if !ok || got != cell {
		t.Fatalf("lookup returned %+v, want %+v", got, cell)
	}
	j.Close()
	// Reopen: the float fields must round-trip exactly through JSON.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, ok = j2.Lookup("ex", core.MethodOurs, 8)
	if !ok || got != cell {
		t.Fatalf("reloaded cell %+v, want %+v", got, cell)
	}
}

// TestJournalKeyCollision is the regression for the key-aliasing bug: a
// plain bench/method join made ("a/b", "c") and ("a", "b/c") the same
// cell, so recording one shadowed the other. Both coordinates must stay
// distinct, in memory and across a reopen.
func TestJournalKeyCollision(t *testing.T) {
	path := filepath.Join(t.TempDir(), "collide.ckpt")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first := Cell{Method: "c", Width: 1, Coverage: 0.25}
	second := Cell{Method: "b/c", Width: 1, Coverage: 0.75}
	if err := j.Record("a/b", first); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("a", second); err != nil {
		t.Fatal(err)
	}
	check := func(j *Journal, when string) {
		t.Helper()
		if j.Len() != 2 {
			t.Fatalf("%s: %d cells, want 2 — the coordinates aliased", when, j.Len())
		}
		if got, ok := j.Lookup("a/b", "c", 1); !ok || got != first {
			t.Fatalf("%s: Lookup(a/b, c) = %+v, %v", when, got, ok)
		}
		if got, ok := j.Lookup("a", "b/c", 1); !ok || got != second {
			t.Fatalf("%s: Lookup(a, b/c) = %+v, %v", when, got, ok)
		}
	}
	check(j, "in memory")
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	check(j2, "after reopen")
}

// TestLegacyJournalMigration: a pre-store single-file JSON-lines journal
// is imported in place on open. The regression half: one corrupt line
// larger than the old 4 MiB scanner buffer used to abort the entire load
// with bufio.ErrTooLong — now it loses only itself. Partial cells and
// torn tails are likewise skipped, and valid cells on either side of the
// damage survive.
func TestLegacyJournalMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	line := func(bench string, c Cell) []byte {
		b, err := json.Marshal(journalEntry{Bench: bench, Cell: c})
		if err != nil {
			t.Fatal(err)
		}
		return append(b, '\n')
	}
	keep1 := Cell{Method: core.MethodOurs, Width: 8, Coverage: 0.75, Area: 12.5}
	keep2 := Cell{Method: core.MethodCAMAD, Width: 4, Coverage: 0.5}
	var buf bytes.Buffer
	buf.Write(line("ex", keep1))
	buf.Write(bytes.Repeat([]byte{'x'}, 5<<20)) // > the old 4 MiB line ceiling
	buf.WriteByte('\n')
	buf.Write(line("ex", Cell{Method: core.MethodOurs, Width: 4, Partial: true}))
	buf.Write(line("dct", keep2))
	buf.WriteString(`{"Bench":"ex","Cell":{"Method":"appr`) // kill mid-write
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := OpenJournal(path) // used to fail here with bufio.ErrTooLong
	if err != nil {
		t.Fatalf("migration of a damaged legacy journal failed: %v", err)
	}
	if j.Len() != 2 {
		t.Fatalf("migrated %d cells, want 2", j.Len())
	}
	if got, ok := j.Lookup("ex", core.MethodOurs, 8); !ok || got != keep1 {
		t.Errorf("cell before the corrupt line: %+v, %v", got, ok)
	}
	if got, ok := j.Lookup("dct", core.MethodCAMAD, 4); !ok || got != keep2 {
		t.Errorf("cell after the corrupt line: %+v, %v", got, ok)
	}
	if _, ok := j.Lookup("ex", core.MethodOurs, 4); ok {
		t.Error("partial cell survived migration")
	}
	j.Close()

	// The file became a store directory; the parked original is gone; and
	// a reopen (no migration this time) loads the same cells.
	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		t.Fatalf("migrated path is not a store directory: %v %v", fi, err)
	}
	if _, err := os.Stat(path + ".migrating"); !os.IsNotExist(err) {
		t.Errorf("legacy file still parked after migration: %v", err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Errorf("reopen after migration: %d cells, want 2", j2.Len())
	}
}

// TestJournalSharesDaemonStore: NewJournal co-locates checkpoint cells
// with foreign records in a caller-owned store — each side ignores the
// other's keys, and Close leaves the store to its owner.
func TestJournalSharesDaemonStore(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "shared"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// A foreign record, as the daemon's result cache would write.
	h := core.NewHasher()
	h.Str("server.result")
	if err := st.Put(h.Sum(), []byte("\xc8\x00\x00\x00{}\n")); err != nil {
		t.Fatal(err)
	}
	j := NewJournal(st)
	if j.Len() != 0 {
		t.Fatalf("foreign record loaded as a cell: %d", j.Len())
	}
	cell := Cell{Method: core.MethodOurs, Width: 8, Coverage: 1}
	if err := j.Record("ex", cell); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The journal did not close the shared store…
	if err := st.Put(h.Sum(), []byte("\xc8\x00\x00\x00{}\n")); err != nil {
		t.Fatalf("journal Close closed the caller's store: %v", err)
	}
	// …and a fresh adapter over it sees exactly the journal's cell.
	j2 := NewJournal(st)
	if got, ok := j2.Lookup("ex", core.MethodOurs, 8); !ok || got != cell {
		t.Fatalf("shared-store cell: %+v, %v", got, ok)
	}
	if st.Len() != 2 {
		t.Errorf("store holds %d records, want 2", st.Len())
	}
}
