package report

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dfg"
)

// samplePeakGoroutines polls runtime.NumGoroutine while fn runs and
// returns the highest count observed (including the sampler itself).
func samplePeakGoroutines(fn func()) int {
	stop := make(chan struct{})
	var mu sync.Mutex
	peak := runtime.NumGoroutine()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := runtime.NumGoroutine()
			mu.Lock()
			if n > peak {
				peak = n
			}
			mu.Unlock()
			time.Sleep(20 * time.Microsecond)
		}
	}()
	fn()
	close(stop)
	wg.Wait()
	return peak
}

// TestSweepRespectsWorkerBudget is the regression test for the nested
// fan-out bug: ParameterSweep once ran its grid on `workers` goroutines
// AND granted each grid point the full `workers` budget for the
// tie-policy exploration inside core.Synthesize, multiplying the two
// layers into up to workers² goroutines. With the budget split, the
// whole sweep must never run more than `workers` pool goroutines at
// once.
func TestSweepRespectsWorkerBudget(t *testing.T) {
	const workers = 4
	baseline := runtime.NumGoroutine()
	var peak int
	// A few repetitions give the sampler enough chances to catch the
	// widest moment of the fan-out.
	for i := 0; i < 3; i++ {
		p := samplePeakGoroutines(func() {
			if _, err := ParameterSweep(dfg.BenchEx, 4, workers, nil); err != nil {
				t.Fatal(err)
			}
		})
		if p > peak {
			peak = p
		}
	}
	// Budget: `workers` pool goroutines, plus the sampler and a little
	// slack for runtime-internal goroutines that may appear. The pre-fix
	// nested fan-out reached baseline + workers + workers² and trips
	// this comfortably.
	limit := baseline + workers + 3
	if peak > limit {
		t.Errorf("peak goroutines %d exceeds budgeted limit %d (baseline %d, workers %d): nested fan-out is oversubscribing",
			peak, limit, baseline, workers)
	}
}

// TestSweepLeavesNoGoroutines: after a sweep returns, every worker it
// spawned must be gone — the pools are scoped to the call, not the
// process.
func TestSweepLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	if _, err := ParameterSweep(dfg.BenchEx, 4, 4, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before the sweep, %d after", baseline, runtime.NumGoroutine())
}
