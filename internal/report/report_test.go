package report

import (
	"strings"
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dfg"
)

// fastConfig keeps test campaigns small.
func fastConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Widths = []int{4}
	cfg.ATPGFor = func(width int) atpg.Config {
		c := atpg.DefaultConfig(seed)
		c.SampleFaults = 120
		c.RandomBatches = 1
		c.SeqLen = 10
		c.Restarts = 1
		c.BacktrackLimit = 20
		return c
	}
	cfg.Parallel = 4
	return cfg
}

func TestRunCell(t *testing.T) {
	cell, err := RunCell(dfg.BenchTseng, core.MethodOurs, 4, fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if cell.Coverage <= 0 || cell.Coverage > 1 {
		t.Errorf("coverage %f", cell.Coverage)
	}
	if cell.Gates == 0 || cell.Area <= 0 || cell.Modules == 0 || cell.Registers == 0 {
		t.Errorf("incomplete cell: %+v", cell)
	}
	if !strings.Contains(cell.ModuleAlloc, "(") || !strings.Contains(cell.RegisterAlloc, "R:") {
		t.Errorf("allocation strings missing: %q / %q", cell.ModuleAlloc, cell.RegisterAlloc)
	}
}

func TestRunTableTseng(t *testing.T) {
	tbl, err := RunTable(dfg.BenchTseng, fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Cells) != len(core.Methods()) {
		t.Fatalf("%d cells, want %d", len(tbl.Cells), len(core.Methods()))
	}
	text := tbl.Render()
	for _, want := range []string{"CAMAD", "Approach 1", "Approach 2", "Ours", "Fault cov."} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| Synthesis |") || !strings.Contains(md, "Ours") {
		t.Errorf("markdown incomplete:\n%s", md)
	}
}

func TestFigure1(t *testing.T) {
	text, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "N1 before N2", "sequential depth"} {
		if !strings.Contains(text, want) {
			t.Errorf("figure 1 missing %q:\n%s", want, text)
		}
	}
	// The two orders must produce different schedule lengths: the SR2
	// order absorbs the serialization into slack.
	if !strings.Contains(text, "schedule length 3") || !strings.Contains(text, "schedule length 4") {
		t.Errorf("figure 1 orders do not differ:\n%s", text)
	}
}

func TestScheduleFigures(t *testing.T) {
	cfg := fastConfig(1)
	for _, bench := range []string{dfg.BenchEx, dfg.BenchDct, dfg.BenchDiffeq} {
		text, err := Schedule(bench, 4, cfg)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if !strings.Contains(text, "step") || !strings.Contains(text, "R:") {
			t.Errorf("%s schedule figure incomplete:\n%s", bench, text)
		}
	}
}

func TestParameterSweepStable(t *testing.T) {
	rows, err := ParameterSweep(dfg.BenchEx, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("%d sweep rows, want 16", len(rows))
	}
	// §5: parameters should not change the outcome much — all rows must
	// land on the same module count for Ex.
	mods := map[int]bool{}
	for _, r := range rows {
		mods[r.Modules] = true
	}
	if len(mods) > 2 {
		t.Errorf("parameter sweep produced %d distinct module counts: %v", len(mods), mods)
	}
	if !strings.Contains(RenderSweep(dfg.BenchEx, rows), "alpha") {
		t.Error("sweep rendering broken")
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations(dfg.BenchEx, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	// The frozen (phase-separated) variant cannot merge more modules than
	// the integrated algorithm.
	var paper, frozen AblationRow
	for _, r := range rows {
		if strings.HasPrefix(r.Variant, "paper") {
			paper = r
		}
		if strings.HasPrefix(r.Variant, "frozen") {
			frozen = r
		}
	}
	if frozen.Modules < paper.Modules {
		t.Errorf("frozen variant merged more modules (%d) than integrated (%d)", frozen.Modules, paper.Modules)
	}
	if !strings.Contains(RenderAblations(dfg.BenchEx, rows), "variant") {
		t.Error("ablation rendering broken")
	}
}

func TestMethodLabel(t *testing.T) {
	if methodLabel(core.MethodOurs) != "Ours" || methodLabel("x") != "x" {
		t.Error("method labels wrong")
	}
}

func TestScanStudy(t *testing.T) {
	text, err := ScanStudy(dfg.BenchTseng, 4, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scan selection", "coverage", "mean-test"} {
		if !strings.Contains(text, want) {
			t.Errorf("scan study missing %q:\n%s", want, text)
		}
	}
}

func TestBISTStudy(t *testing.T) {
	text, err := BISTStudy(dfg.BenchTseng, 4, 1, 1, []int{24}, 40, 1998, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BIST on", "passes/session", "lanes"} {
		if !strings.Contains(text, want) {
			t.Errorf("BIST study missing %q:\n%s", want, text)
		}
	}
}

func TestTableJSON(t *testing.T) {
	tbl := &Table{Title: "t", Benchmark: "tseng", Cells: []Cell{{Method: "ours", Width: 4, Coverage: 0.9}}}
	data, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"Method\": \"ours\"", "\"Coverage\": 0.9"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("json missing %q", want)
		}
	}
}
