// Package report runs the paper's experiments and renders their tables
// and figures: for each benchmark and synthesis flow it synthesizes the
// design at 4/8/16 bits, generates the gate-level implementation, runs the
// ATPG campaign, and assembles rows of module/register allocation, #mux,
// fault coverage, test-generation effort, test cycles and area — the
// columns of Tables 1-3 — plus the schedule listings of Figures 2-3, the
// Figure 1 rescheduling demonstration, the parameter sweep of §5, and the
// design-choice ablations.
package report

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/dfggen"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/rtl"
	"repro/internal/stats"
	"repro/internal/validate"
)

// Cell is one (method, width) measurement of a table.
type Cell struct {
	Method string
	Width  int

	ModuleAlloc   string
	RegisterAlloc string
	Mux           int
	Modules       int
	Registers     int
	SelfLoops     int
	ExecTime      int

	Coverage   float64
	TGEffort   int64
	TestCycles int
	Area       float64

	Gates int
	DFFs  int

	// Partial marks a cell whose synthesis or ATPG campaign ran out of
	// budget (Exhausted names it): the figures are genuine best-so-far
	// measurements, rendered with a marker rather than aborting the row.
	// Partial cells are never checkpointed — a resumed run recomputes them.
	Partial   bool   `json:",omitempty"`
	Exhausted string `json:",omitempty"`
}

// Table is a complete experiment table.
type Table struct {
	Title     string
	Benchmark string
	HasArea   bool
	Cells     []Cell
}

// Config tunes an experiment run.
type Config struct {
	// Widths lists the data-path bit widths (the paper uses 4, 8, 16).
	Widths []int
	// ParamsFor returns the synthesis parameters per width; the paper uses
	// (k,α,β) = (3,2,1), (3,10,1), (3,1,10) for 4, 8 and 16 bits.
	ParamsFor func(width int) core.Params
	// ATPGFor returns the campaign configuration per width.
	ATPGFor func(width int) atpg.Config
	// Workers is the total goroutine budget of the run: it bounds the
	// goroutines inside one synthesis or campaign (0 = one per CPU,
	// 1 = sequential) via core.Params.Workers and atpg.Config.Workers.
	// Results are identical at every worker count.
	Workers int
	// Parallel bounds concurrent cells (1 = sequential). When several
	// cells run concurrently, the Workers budget is divided among them
	// rather than granted to each in full — see RunTable.
	Parallel int
	// Stats, when non-nil, collects per-stage synthesis counters and
	// timers across every cell. Purely observational.
	Stats *stats.Stats
	// Journal, when non-nil, checkpoints completed cells as they commit
	// and skips cells it already holds, making an interrupted sweep
	// resumable (see OpenJournal). Cells are deterministic, so a resumed
	// table is byte-identical to an uninterrupted one.
	Journal *Journal
	// Validate runs the structural invariant checkers on every cell's
	// intermediate artifacts: the synthesized design (via
	// core.Params.Validate) and the generated netlist. A violation fails
	// the cell with a typed *validate.Error.
	Validate bool
}

// DefaultConfig returns the configuration reproducing the paper's setup.
func DefaultConfig(seed int64) Config {
	return Config{
		Widths: []int{4, 8, 16},
		ParamsFor: func(width int) core.Params {
			p := core.DefaultParams(width)
			switch width {
			case 8:
				p.Alpha, p.Beta = 10, 1
			case 16:
				p.Alpha, p.Beta = 1, 10
			}
			return p
		},
		ATPGFor: func(width int) atpg.Config {
			c := atpg.DefaultConfig(seed + int64(width))
			if width >= 16 {
				// Keep 16-bit campaigns tractable: smaller fault sample and
				// a tighter deterministic phase (PODEM implications scale
				// with gate count x frames).
				c.SampleFaults = 1000
				c.Restarts = 1
				c.BacktrackLimit = 30
			}
			return c
		},
		Parallel: 4,
	}
}

// loopSignalFor names the loop condition of iterative benchmarks,
// built-in or generated.
func loopSignalFor(bench string) string {
	if bench == dfg.BenchDiffeq || bench == dfg.BenchPaulin {
		return "exit"
	}
	return dfggen.LoopSignal(bench)
}

// RunTable executes the full table for one benchmark: every method at
// every width.
func RunTable(bench string, cfg Config) (*Table, error) {
	return RunTableCtx(context.Background(), bench, cfg)
}

// RunTableCtx is RunTable under a context. Cancellation degrades
// gracefully: the synthesis and campaign inside each cell stop at their
// next budget boundary and the cell lands Partial rather than erroring,
// so the table always renders (with partial markers). With cfg.Journal
// set, each completed cell is checkpointed as it commits and cells the
// journal already holds are skipped — deterministically, so a resumed
// table is byte-identical to an uninterrupted run.
func RunTableCtx(ctx context.Context, bench string, cfg Config) (*Table, error) {
	tbl := &Table{
		Title:     fmt.Sprintf("Experimental results on the area-optimized %s benchmark", bench),
		Benchmark: bench,
		HasArea:   true,
	}
	type job struct {
		method string
		width  int
	}
	var jobs []job
	for _, method := range core.Methods() {
		for _, w := range cfg.Widths {
			jobs = append(jobs, job{method, w})
		}
	}
	cells := make([]Cell, len(jobs))
	// Parallel bounds the cell fan-out; the Workers budget is divided
	// among the concurrent cells. Granting every cell the full budget —
	// as this loop once did — multiplies the two knobs into up to
	// Parallel×Workers goroutines.
	outer := cfg.Parallel
	if outer < 1 {
		outer = 1
	}
	if outer > len(jobs) {
		outer = len(jobs)
	}
	inner := cfg.Workers
	if outer > 1 {
		inner = parallel.Workers(cfg.Workers) / outer
		if inner < 1 {
			inner = 1
		}
	}
	cellCfg := cfg
	cellCfg.Workers = inner
	err := parallel.ForEach(outer, len(jobs), func(idx int) error {
		if cfg.Journal != nil {
			if cell, ok := cfg.Journal.Lookup(bench, jobs[idx].method, jobs[idx].width); ok {
				cells[idx] = cell
				return nil
			}
		}
		cell, err := RunCellCtx(ctx, bench, jobs[idx].method, jobs[idx].width, cellCfg)
		if err != nil {
			return err
		}
		cells[idx] = *cell
		if cfg.Journal != nil {
			if err := cfg.Journal.Record(bench, *cell); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tbl.Cells = cells
	return tbl, nil
}

// RunCell measures one (benchmark, method, width) point.
func RunCell(bench, method string, width int, cfg Config) (*Cell, error) {
	return RunCellCtx(context.Background(), bench, method, width, cfg)
}

// RunCellCtx is RunCell under a context. A deadline inside the cell
// degrades it to a Partial measurement (synthesis keeps its committed
// mergers, the campaign its best-so-far coverage) rather than an error.
func RunCellCtx(ctx context.Context, bench, method string, width int, cfg Config) (*Cell, error) {
	g, err := dfg.ByName(bench, width)
	if err != nil {
		return nil, err
	}
	par := cfg.ParamsFor(width)
	par.Width = width
	par.LoopSignal = loopSignalFor(bench)
	par.Workers = cfg.Workers
	par.Stats = cfg.Stats
	par.Validate = cfg.Validate
	res, err := core.RunCtx(ctx, method, g, par)
	if err != nil {
		return nil, fmt.Errorf("%s/%s/%d: %w", bench, method, width, err)
	}
	nl, err := rtl.Generate(res.Design, width, rtl.NormalMode)
	if err != nil {
		return nil, fmt.Errorf("%s/%s/%d: %w", bench, method, width, err)
	}
	if cfg.Validate {
		if err := validate.Netlist(nl); err != nil {
			return nil, fmt.Errorf("%s/%s/%d: %w", bench, method, width, err)
		}
	}
	acfg := cfg.ATPGFor(width)
	acfg.Workers = cfg.Workers
	if acfg.MaxFrames < 2*(nl.Steps+1) {
		acfg.MaxFrames = 2 * (nl.Steps + 1)
	}
	ares, err := atpg.RunCtx(ctx, nl.C, acfg)
	if err != nil {
		return nil, fmt.Errorf("%s/%s/%d: %w", bench, method, width, err)
	}
	modStr, regStr := allocStrings(res)
	cell := &Cell{
		Method: method, Width: width,
		ModuleAlloc: modStr, RegisterAlloc: regStr,
		Mux: res.Mux.Muxes, Modules: res.Design.Alloc.NumModules(),
		Registers: res.Design.Alloc.NumRegs(), SelfLoops: res.Design.SelfLoops(),
		ExecTime: res.ExecTime,
		Coverage: ares.Coverage, TGEffort: ares.Effort, TestCycles: ares.TestCycles,
		Area:  res.Area.Total,
		Gates: nl.C.NumGates(), DFFs: len(nl.C.DFFs),
	}
	switch {
	case res.Status == exec.StatusPartial:
		cell.Partial, cell.Exhausted = true, res.Exhausted
	case ares.Status == exec.StatusPartial:
		cell.Partial, cell.Exhausted = true, ares.Exhausted
	}
	return cell, nil
}

func allocStrings(res *core.Result) (string, string) {
	g := res.Design.G
	var mods, regs []string
	for _, m := range res.Design.Alloc.Modules {
		names := make([]string, len(m.Ops))
		for i, op := range m.Ops {
			names[i] = g.Node(op).Name
		}
		mods = append(mods, fmt.Sprintf("(%s): %s", m.Class, strings.Join(names, ",")))
	}
	for _, r := range res.Design.Alloc.Regs {
		names := make([]string, len(r.Vals))
		for i, v := range r.Vals {
			names[i] = g.Value(v).Name
		}
		regs = append(regs, "R: "+strings.Join(names, ","))
	}
	return strings.Join(mods, "  "), strings.Join(regs, "  ")
}

// methodLabel maps internal method names to the paper's row labels.
func methodLabel(method string) string {
	switch method {
	case core.MethodCAMAD:
		return "CAMAD"
	case core.MethodApproach1:
		return "Approach 1"
	case core.MethodApproach2:
		return "Approach 2"
	case core.MethodOurs:
		return "Ours"
	}
	return method
}

// Render formats the table in the style of the paper's Tables 1-3.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Title)))
	byMethod := map[string][]Cell{}
	for _, c := range t.Cells {
		byMethod[c.Method] = append(byMethod[c.Method], c)
	}
	for _, method := range core.Methods() {
		cells := byMethod[method]
		if len(cells) == 0 {
			continue
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].Width < cells[j].Width })
		fmt.Fprintf(&b, "\n%s\n", methodLabel(method))
		fmt.Fprintf(&b, "  Module allocation:   %s\n", cells[0].ModuleAlloc)
		fmt.Fprintf(&b, "  Register allocation: %s\n", cells[0].RegisterAlloc)
		fmt.Fprintf(&b, "  #Mux: %d   #Modules: %d   #Registers: %d   Self-loops: %d   Exec steps: %d\n",
			cells[0].Mux, cells[0].Modules, cells[0].Registers, cells[0].SelfLoops, cells[0].ExecTime)
		fmt.Fprintf(&b, "  %5s  %10s  %14s  %12s  %10s  %8s\n",
			"#Bit", "Fault cov.", "TG effort", "Test cycles", "Area", "Gates")
		for _, c := range cells {
			fmt.Fprintf(&b, "  %5d  %9.2f%%  %14d  %12d  %10.0f  %8d%s\n",
				c.Width, 100*c.Coverage, c.TGEffort, c.TestCycles, c.Area, c.Gates, partialMark(c))
		}
	}
	if n := t.partialCount(); n > 0 {
		fmt.Fprintf(&b, "\n* %d partial cell(s): a budget ran out before the cell completed; figures are best-so-far.\n", n)
	}
	return b.String()
}

// partialMark renders the partial-cell marker appended to a table row.
func partialMark(c Cell) string {
	if c.Partial {
		return "  *partial:" + c.Exhausted
	}
	return ""
}

// partialCount counts the table's partial cells.
func (t *Table) partialCount() int {
	n := 0
	for _, c := range t.Cells {
		if c.Partial {
			n++
		}
	}
	return n
}

// Markdown renders the table as a GitHub-flavoured markdown table for
// EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	fmt.Fprintf(&b, "| Synthesis | #Mux | Mods | Regs | #Bit | Fault coverage | TG effort | Test cycles | Area |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|\n")
	byMethod := map[string][]Cell{}
	for _, c := range t.Cells {
		byMethod[c.Method] = append(byMethod[c.Method], c)
	}
	for _, method := range core.Methods() {
		cells := byMethod[method]
		sort.Slice(cells, func(i, j int) bool { return cells[i].Width < cells[j].Width })
		for i, c := range cells {
			label := ""
			mux, mods, regs := "", "", ""
			if i == 0 {
				label = methodLabel(method)
				mux = fmt.Sprint(c.Mux)
				mods = fmt.Sprint(c.Modules)
				regs = fmt.Sprint(c.Registers)
			}
			mark := ""
			if c.Partial {
				mark = " \\*"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %d | %.2f%%%s | %d | %d | %.0f |\n",
				label, mux, mods, regs, c.Width, 100*c.Coverage, mark, c.TGEffort, c.TestCycles, c.Area)
		}
	}
	if n := t.partialCount(); n > 0 {
		fmt.Fprintf(&b, "\n\\* %d partial cell(s): budget exhausted before completion; figures are best-so-far.\n", n)
	}
	return b.String()
}

// JSON serializes the table for downstream tooling.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}
