package report

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/dfg"
	"repro/internal/dfggen"
	"repro/internal/parallel"
)

// GenSuiteRow is one generated benchmark's measurement: the spec's
// structural figures next to the full synthesis + ATPG cell.
type GenSuiteRow struct {
	Name  string // canonical gen: benchmark name
	Seed  uint64
	Ops   int
	Depth int // critical path in ops
	Cell  Cell
}

// GenSuite is an experiment table over a seeded family of generated
// benchmarks: the scenario-diversity counterpart of the paper's fixed
// Tables 1-3, used to check that a flow's quality figures hold beyond
// the three published behaviours.
type GenSuite struct {
	Method string
	Width  int
	Rows   []GenSuiteRow
}

// RunGenSuite measures one synthesis flow over a family of generated
// specs at one width.
func RunGenSuite(specs []dfggen.Spec, method string, width int, cfg Config) (*GenSuite, error) {
	return RunGenSuiteCtx(context.Background(), specs, method, width, cfg)
}

// RunGenSuiteCtx is RunGenSuite under a context. Rows run concurrently
// under cfg.Parallel with the cfg.Workers budget divided among them,
// exactly like RunTableCtx cells; with cfg.Journal set, completed rows
// are checkpointed under their gen: name and skipped on resume.
func RunGenSuiteCtx(ctx context.Context, specs []dfggen.Spec, method string, width int, cfg Config) (*GenSuite, error) {
	suite := &GenSuite{Method: method, Width: width, Rows: make([]GenSuiteRow, len(specs))}
	outer := cfg.Parallel
	if outer < 1 {
		outer = 1
	}
	if outer > len(specs) {
		outer = len(specs)
	}
	inner := cfg.Workers
	if outer > 1 {
		inner = parallel.Workers(cfg.Workers) / outer
		if inner < 1 {
			inner = 1
		}
	}
	cellCfg := cfg
	cellCfg.Workers = inner
	err := parallel.ForEach(outer, len(specs), func(idx int) error {
		ns, err := specs[idx].Normalize()
		if err != nil {
			return err
		}
		name := ns.Name()
		row := GenSuiteRow{Name: name, Seed: ns.Seed, Ops: ns.Ops}
		g, err := dfg.ByName(name, width)
		if err != nil {
			return err
		}
		row.Depth = dfggen.Depth(g)
		if cfg.Journal != nil {
			if cell, ok := cfg.Journal.Lookup(name, method, width); ok {
				row.Cell = cell
				suite.Rows[idx] = row
				return nil
			}
		}
		cell, err := RunCellCtx(ctx, name, method, width, cellCfg)
		if err != nil {
			return err
		}
		row.Cell = *cell
		suite.Rows[idx] = row
		if cfg.Journal != nil {
			return cfg.Journal.Record(name, *cell)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return suite, nil
}

// Render draws the suite as an aligned text table.
func (s *GenSuite) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Generated suite — method %s, width %d, %d behaviours\n", s.Method, s.Width, len(s.Rows))
	header := []string{"seed", "ops", "depth", "mod", "reg", "mux", "exec", "cov%", "effort", "cycles", "area", ""}
	rows := [][]string{header}
	for _, r := range s.Rows {
		mark := ""
		if r.Cell.Partial {
			mark = "*" + r.Cell.Exhausted
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Seed),
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%d", r.Depth),
			fmt.Sprintf("%d", r.Cell.Modules),
			fmt.Sprintf("%d", r.Cell.Registers),
			fmt.Sprintf("%d", r.Cell.Mux),
			fmt.Sprintf("%d", r.Cell.ExecTime),
			fmt.Sprintf("%.1f", r.Cell.Coverage*100),
			fmt.Sprintf("%d", r.Cell.TGEffort),
			fmt.Sprintf("%d", r.Cell.TestCycles),
			fmt.Sprintf("%.0f", r.Cell.Area),
			mark,
		})
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(s.Rows) > 0 {
		b.WriteString(s.summaryLine())
	}
	return b.String()
}

// summaryLine aggregates the suite: mean coverage and exec time tell at
// a glance whether a flow's quality holds across the family.
func (s *GenSuite) summaryLine() string {
	var cov, area float64
	var exec, partial int
	for _, r := range s.Rows {
		cov += r.Cell.Coverage
		area += r.Cell.Area
		exec += r.Cell.ExecTime
		if r.Cell.Partial {
			partial++
		}
	}
	n := float64(len(s.Rows))
	return fmt.Sprintf("mean: coverage %.1f%%, exec %.1f steps, area %.0f; %d partial\n",
		cov/n*100, float64(exec)/n, area/n, partial)
}

// Markdown renders the suite as a GitHub-flavored markdown table.
func (s *GenSuite) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Generated suite — method %s, width %d\n\n", s.Method, s.Width)
	b.WriteString("| name | ops | depth | mod | reg | mux | exec | cov% | effort | cycles | area |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range s.Rows {
		name := r.Name
		if r.Cell.Partial {
			name += " \\*"
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d | %.1f | %d | %d | %.0f |\n",
			name, r.Ops, r.Depth, r.Cell.Modules, r.Cell.Registers, r.Cell.Mux,
			r.Cell.ExecTime, r.Cell.Coverage*100, r.Cell.TGEffort, r.Cell.TestCycles, r.Cell.Area)
	}
	return b.String()
}

// JSON renders the suite as indented JSON.
func (s *GenSuite) JSON() (string, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}
