package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"repro/internal/core"
	"repro/internal/store"
)

// Journal is the checkpoint behind hltsbench -store/-resume: one
// completed (benchmark, method, width) cell per record. Cells are
// journaled as they commit, so a killed sweep loses at most the cells
// still in flight; reopening the same path skips everything already
// recorded. Because every cell is a deterministic function of its
// (benchmark, method, width, seed, workers-invariant) inputs, a resumed
// run renders byte-identically to an uninterrupted one.
//
// The Journal is a thin adapter over internal/store — the same
// crash-safe, content-addressed segment log that backs the daemon's
// persistent result cache — so "cache", "resume" and future shard
// replication share one fsync/torn-write story. Each cell is keyed by
// the canonical fingerprint of its coordinates and valued with the JSON
// journalEntry; the in-memory done map is rebuilt from the store at open.
//
// Only complete cells are recorded: a Partial cell reflects an exhausted
// budget, and replaying it on resume would freeze the degradation into
// future runs. Partial cells are recomputed instead.
type Journal struct {
	mu    sync.Mutex
	st    *store.Store
	owned bool // Close closes the store only when the journal opened it
	done  map[string]Cell
}

// journalEntry is one checkpoint record's value.
type journalEntry struct {
	Bench string
	Cell  Cell
}

// journalKey is the in-memory map key. The %q quoting makes it
// unambiguous: ("a/b", "c") and ("a", "b/c") — which a plain
// bench/method join would alias — quote to distinct keys.
func journalKey(bench, method string, width int) string {
	return fmt.Sprintf("%q/%q/%d", bench, method, width)
}

// journalFP is the store key: the canonical length-prefixed fingerprint
// of a cell's coordinates (collision-free for the same reason %q is —
// core.Hasher.Str length-prefixes every string).
func journalFP(bench, method string, width int) core.Fingerprint {
	h := core.NewHasher()
	h.Str("report.journal.cell")
	h.Str(bench)
	h.Str(method)
	h.Int(width)
	return h.Sum()
}

// OpenJournal opens (creating if needed) the checkpoint store at path —
// a store directory — and loads every cell it holds. Corrupt or torn
// records, the signature of a kill mid-write, are skipped, not fatal:
// the affected cell is simply recomputed.
//
// A legacy single-file JSON-lines journal at path (the pre-store format)
// is migrated in place: its cells are imported into a fresh store
// directory at the same path and the old file removed. The import
// tolerates corrupt lines of any size — including oversized ones that
// used to abort the whole load with bufio.ErrTooLong.
func OpenJournal(path string) (*Journal, error) {
	legacy := path + ".migrating"
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		// Park the old file under a temp name so the directory can take its
		// place; a crash mid-migration re-imports on the next open (records
		// are idempotent).
		if err := os.Rename(path, legacy); err != nil {
			return nil, err
		}
		if err := syncDir(filepath.Dir(path)); err != nil {
			return nil, err
		}
	}
	st, err := store.Open(path, store.Options{})
	if err != nil {
		return nil, err
	}
	j := &Journal{st: st, owned: true, done: map[string]Cell{}}
	if _, err := os.Stat(legacy); err == nil {
		if err := importLegacy(legacy, st); err != nil {
			st.Close()
			return nil, err
		}
		os.Remove(legacy)
		syncDir(filepath.Dir(path))
	}
	j.load()
	return j, nil
}

// NewJournal wraps an existing store (for callers co-locating checkpoint
// cells with other results, e.g. a daemon sharing one store). Close
// leaves the store open — the caller owns it.
func NewJournal(st *store.Store) *Journal {
	j := &Journal{st: st, done: map[string]Cell{}}
	j.load()
	return j
}

// load rebuilds the done map from the store. Records that are not valid
// journal entries — foreign keys in a shared store, or values corrupted
// beyond the store's own checksums — are skipped.
func (j *Journal) load() {
	j.st.Range(func(fp core.Fingerprint, val []byte) bool {
		var e journalEntry
		if err := json.Unmarshal(val, &e); err != nil {
			return true
		}
		if journalFP(e.Bench, e.Cell.Method, e.Cell.Width) != fp {
			return true // not one of ours
		}
		j.done[journalKey(e.Bench, e.Cell.Method, e.Cell.Width)] = e.Cell
		return true
	})
}

// importLegacy streams a pre-store JSON-lines journal into the store.
// bufio.Reader.ReadBytes has no line-length ceiling, so a single
// oversized corrupt line — which the old 4 MiB scanner buffer turned
// into a fatal bufio.ErrTooLong for the whole checkpoint — now loses
// only itself.
func importLegacy(path string, st *store.Store) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if rec := bytes.TrimSuffix(line, []byte("\n")); len(rec) > 0 {
			var e journalEntry
			if jsonErr := json.Unmarshal(rec, &e); jsonErr == nil && !e.Cell.Partial {
				if putErr := st.Put(journalFP(e.Bench, e.Cell.Method, e.Cell.Width), rec); putErr != nil {
					return putErr
				}
			}
			// Torn or corrupt lines are skipped; their cells recompute.
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// syncDir fsyncs a directory, making a just-renamed name durable.
// Filesystems that do not support syncing a directory handle report
// EINVAL/ENOTSUP; those are ignored — on such systems the directory sync
// is meaningless, not failed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// Lookup returns the journaled cell for (bench, method, width), if any.
func (j *Journal) Lookup(bench, method string, width int) (Cell, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	c, ok := j.done[journalKey(bench, method, width)]
	return c, ok
}

// Record journals a completed cell through the store, which flushes it
// to disk before acknowledging — a kill immediately afterwards cannot
// lose it. Partial cells are ignored (see the type comment). Recording
// is idempotent: a cell already journaled is not rewritten.
func (j *Journal) Record(bench string, c Cell) error {
	if c.Partial {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	key := journalKey(bench, c.Method, c.Width)
	if _, ok := j.done[key]; ok {
		return nil
	}
	val, err := json.Marshal(journalEntry{Bench: bench, Cell: c})
	if err != nil {
		return err
	}
	if err := j.st.Put(journalFP(bench, c.Method, c.Width), val); err != nil {
		return err
	}
	j.done[key] = c
	return nil
}

// Len returns the number of journaled cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Store returns the backing store (shared by Lookup/Record).
func (j *Journal) Store() *store.Store { return j.st }

// Close closes the backing store when the journal owns it (OpenJournal);
// a journal wrapping a caller-provided store (NewJournal) leaves it open.
func (j *Journal) Close() error {
	if j.owned {
		return j.st.Close()
	}
	return nil
}
