package report

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"repro/internal/chaos"
)

// Journal is the checkpoint file behind hltsbench -resume: a JSON-lines
// append log with one completed (benchmark, method, width) cell per line.
// Cells are journaled as they commit, so a killed sweep loses at most the
// cells still in flight; reopening the same path skips everything already
// recorded. Because every cell is a deterministic function of its
// (benchmark, method, width, seed, workers-invariant) inputs, a resumed
// run renders byte-identically to an uninterrupted one.
//
// Only complete cells are recorded: a Partial cell reflects an exhausted
// budget, and replaying it on resume would freeze the degradation into
// future runs. Partial cells are recomputed instead.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]Cell
	torn bool // a failed write may have left a partial line on disk
}

// journalEntry is one checkpoint line.
type journalEntry struct {
	Bench string
	Cell  Cell
}

func journalKey(bench, method string, width int) string {
	return fmt.Sprintf("%s/%s/%d", bench, method, width)
}

// OpenJournal opens (creating if needed) the checkpoint file at path,
// loads every cell it already holds, and positions it for appending.
// Corrupt or truncated trailing lines — the signature of a kill mid-write
// — are skipped, not fatal: the affected cell is simply recomputed.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, done: map[string]Cell{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // torn write from a killed run; recompute that cell
		}
		j.done[journalKey(e.Bench, e.Cell.Method, e.Cell.Width)] = e.Cell
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, err
	}
	// A kill mid-write leaves the file without a trailing newline; seal it
	// so the next Record starts on a fresh line instead of concatenating
	// onto the torn fragment (which would corrupt that record too).
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	// Durability of the file itself: fsyncing the journal flushes its
	// bytes, but a freshly created name lives in the directory, which has
	// its own durability. Without this a crash immediately after
	// OpenJournal can lose the whole file even though every Record synced.
	if err := syncDir(path); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// syncDir fsyncs the parent directory of path, making a just-created (or
// just-resealed) journal name durable. Filesystems that do not support
// syncing a directory handle report EINVAL/ENOTSUP; those are ignored —
// on such systems the directory sync is meaningless, not failed.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// Lookup returns the journaled cell for (bench, method, width), if any.
func (j *Journal) Lookup(bench, method string, width int) (Cell, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	c, ok := j.done[journalKey(bench, method, width)]
	return c, ok
}

// Record journals a completed cell, flushing it to disk before returning
// so a kill immediately afterwards cannot lose it. Partial cells are
// ignored (see the type comment). Recording is idempotent: a cell already
// journaled is not rewritten.
func (j *Journal) Record(bench string, c Cell) error {
	if c.Partial {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	key := journalKey(bench, c.Method, c.Width)
	if _, ok := j.done[key]; ok {
		return nil
	}
	line, err := json.Marshal(journalEntry{Bench: bench, Cell: c})
	if err != nil {
		return err
	}
	// A write that failed earlier may have landed a prefix of its line (a
	// short write). Seal the torn tail with a newline before this record,
	// or the two lines merge into one unparseable line and this record —
	// though acknowledged — is lost on reopen along with the fragment.
	if j.torn {
		if _, err := j.f.Write([]byte("\n")); err != nil {
			return err
		}
		j.torn = false
	}
	// Chaos: a torn write puts a prefix of the record on disk with no
	// newline — exactly what a kill mid-write leaves behind — then fails;
	// the write site fails before any byte lands.
	if cerr, fired := chaos.Fire(chaos.SiteJournalTorn); fired {
		j.f.Write(line[:len(line)/2])
		j.torn = true
		return cerr
	}
	if err := chaos.Step(chaos.SiteJournalWrite); err != nil {
		return err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.torn = true
		return err
	}
	// Chaos sync-failure: the bytes are in the file but durability was
	// never confirmed, so the cell must not be marked done — it is
	// recomputed, and the duplicate line is harmless (last line wins on
	// reopen).
	if err := chaos.Step(chaos.SiteJournalSync); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.done[key] = c
	return nil
}

// Len returns the number of journaled cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }
