// Package store is the durable half of the pipeline's content-addressed
// memoization story: a crash-safe, append-only segment log mapping
// core.Fingerprint keys to opaque encoded results. Synthesis is
// deterministic and fingerprint-keyed, so a record written once is valid
// forever — the store never needs update-in-place, only append,
// last-write-wins replay, and garbage collection of superseded bytes.
//
// One storage layer backs three consumers: the daemon's result cache
// (internal/server warms its LRU from the store at boot and writes every
// completed result through), the hltsbench checkpoint journal
// (internal/report.Journal is a thin adapter), and future shard
// replication — so "cache", "resume" and "replicate" share a single
// fsync/torn-write discipline instead of three ad-hoc formats.
//
// On-disk format. A store is a directory of numbered segment files
// (seg-00000001.log, ...); the highest-numbered segment is the active
// one, all others are sealed. A segment is a sequence of records:
//
//	magic   [4]byte  "hSg1"
//	keyLen  uint32   little-endian (always 16 today; kept for evolution)
//	valLen  uint32   little-endian
//	crc     uint32   CRC-32C over (keyLen‖valLen‖key‖value)
//	key     [keyLen]byte
//	value   [valLen]byte
//
// Crash safety and recovery. Put appends one record and fsyncs before
// acknowledging; a record is indexed (and reported by Get) only after the
// fsync returns. Open replays every segment in id order: a record whose
// checksum fails, whose lengths are insane, or which extends past EOF is
// skipped by scanning forward for the next magic marker — so a corrupt
// region of ANY size (a torn write, bit rot, an interleaved partial
// record) loses at most the records it overlaps, never the file. Trailing
// garbage after the last valid record — the signature of a kill mid-write
// — is truncated away on open, resealing the segment for clean appends.
// A Put that failed mid-write marks the store torn; the next Put
// truncates back to the last acknowledged byte before writing, so an
// acknowledged record can never be damaged by a later failed one.
//
// Rotation and compaction. When the active segment exceeds
// Options.MaxSegmentBytes it is sealed and a new one started. When the
// superseded (dead) bytes outweigh the live ones, the sealed segments are
// compacted: every live record is streamed into a temp file, fsynced,
// atomically renamed over the newest sealed segment, and the older ones
// deleted. A crash at any point leaves a replayable directory — the
// rename is atomic and replay order (older ids first, later records win)
// makes leftover pre-compaction segments harmless duplicates.
//
// Chaos. The store.write / store.sync / store.torn / store.corrupt sites
// (internal/chaos) inject a failed append, a failed fsync (bytes landed,
// durability unconfirmed — the record is NOT acknowledged), a torn write
// (a prefix of the record on disk), and bit rot (the record lands with a
// flipped byte, detectable only by checksum). The sweep proves corrupt
// records are skipped and recomputed, never trusted or fatal.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

var magic = [4]byte{'h', 'S', 'g', '1'}

const (
	headerLen = 16
	keyLen    = len(core.Fingerprint{})
	// maxValueBytes is a sanity bound on a single record's value; a parsed
	// length beyond it is treated as corruption, not an allocation request.
	maxValueBytes = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrValueTooLarge rejects a Put whose value exceeds the format's sanity
// bound.
var ErrValueTooLarge = errors.New("store: value exceeds 1 GiB record bound")

// Options tunes a store; the zero value gives sensible defaults.
type Options struct {
	// MaxSegmentBytes seals the active segment once it reaches this size
	// (default 64 MiB).
	MaxSegmentBytes int64
	// NoAutoCompact disables the dead-bytes-triggered compaction that
	// normally runs at segment rotation; Compact can still be called
	// explicitly. Used by tests that assert on segment layout.
	NoAutoCompact bool
}

// Stats is a point-in-time summary of the store's physical state.
type Stats struct {
	// Segments is the number of segment files (including the active one).
	Segments int
	// Records is the number of live (indexed, retrievable) records.
	Records int
	// LiveBytes is the on-disk footprint of the live records.
	LiveBytes int64
	// DeadBytes counts superseded records, corrupt regions and injected
	// bit rot — bytes a compaction would reclaim.
	DeadBytes int64
	// DroppedCorrupt counts records rejected by checksum or framing —
	// at open (skipped during replay) or at Get (bit rot detected on
	// read). Each was treated as a miss, never returned to a caller.
	DroppedCorrupt int64
	// TornResealed counts tail reseals: truncations of a torn partial
	// record, either at open (trailing garbage after the last valid
	// record) or before the append following a failed Put.
	TornResealed int64
	// Cursor is the end-of-log position (see Since); replication carries
	// it in heartbeats so peers can observe lag.
	Cursor Cursor
}

// Cursor identifies a position in the store's append order, used by
// Since for incremental replication. Gen is the indexing epoch: it
// changes whenever physical record positions may have changed (a reopen
// or a compaction), invalidating any (Seg, Off) held by a reader — a
// reader seeing an unfamiliar Gen restarts from the zero cursor, which
// is safe because applies are idempotent (records are content-addressed
// and values are deterministic functions of their key).
type Cursor struct {
	Gen uint64 `json:"gen"`
	Seg uint64 `json:"seg"`
	Off int64  `json:"off"`
}

// Record is one (fingerprint, value) pair streamed by Since.
type Record struct {
	FP  core.Fingerprint
	Val []byte
}

// Digest is a cheap whole-store summary for anti-entropy: two stores
// with equal Records and XorFP hold the same live fingerprint set with
// overwhelming probability, and End tells a puller where the log ends.
type Digest struct {
	// Gen is the current indexing epoch (see Cursor).
	Gen uint64
	// Records is the live record count.
	Records int
	// XorFP is the XOR of every live fingerprint — order-independent and
	// maintained incrementally, so computing a digest is O(1).
	XorFP core.Fingerprint
	// End is the cursor one past the last appended record.
	End Cursor
}

type segment struct {
	id   uint64
	path string
	f    *os.File
	size int64 // end of the last valid record (appends go here)
}

type entry struct {
	seg   *segment
	off   int64 // record start
	total int64
	vlen  int
}

// Store is the content-addressed result store. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	segs    []*segment // ascending id; last is active
	index   map[core.Fingerprint]entry
	live    int64
	dead    int64
	drops   int64
	reseals int64
	xor     core.Fingerprint // XOR of live fingerprints (incremental digest)
	gen     uint64           // indexing epoch; bumped when positions change
	torn    bool             // a failed append may have left a partial record on disk
	closed  bool
}

// genCounter decorrelates epochs minted within one nanosecond tick.
var genCounter atomic.Uint64

// newGen mints an indexing epoch: unique across reopens of the same
// directory with overwhelming probability, never zero (so a zero-valued
// Cursor is always "before everything").
func newGen() uint64 {
	x := uint64(time.Now().UnixNano()) + genCounter.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	if x == 0 {
		x = 1
	}
	return x
}

// Open opens (creating if needed) the store directory at dir, replays
// every segment — skipping corrupt records and truncating torn tails —
// and positions the highest segment for appending.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, index: map[core.Fingerprint]entry{}, gen: newGen()}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log*"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		// A *.log.tmp file is an interrupted compaction that never reached
		// its atomic rename; its contents are still fully present in the
		// segments it was built from.
		if filepath.Ext(name) == ".tmp" {
			os.Remove(name)
			continue
		}
		var id uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.log", &id); err != nil {
			continue
		}
		seg, err := s.openSegment(name, id)
		if err != nil {
			s.closeAll()
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	if len(s.segs) == 0 {
		seg, err := s.createSegment(1)
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	// Replay-time live/dead bookkeeping through indexPut over-counts
	// (a superseded record is both "not live in its segment" and
	// dead-pooled on override); the exact figure is simply every valid
	// byte not covered by a live record — corrupt regions included.
	var total int64
	for _, seg := range s.segs {
		total += seg.size
	}
	s.dead = total - s.live
	// Make the directory entries themselves durable: a crash immediately
	// after Open must not lose a freshly created (or freshly resealed)
	// segment name even though its bytes synced.
	if err := syncDir(dir); err != nil {
		s.closeAll()
		return nil, err
	}
	if err := syncDir(filepath.Dir(dir)); err != nil {
		s.closeAll()
		return nil, err
	}
	return s, nil
}

// openSegment reads one existing segment, indexes its valid records and
// heals its tail.
func (s *Store) openSegment(path string, id uint64) (*segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	seg := &segment{id: id, path: path, f: f}
	s.scan(data, seg)
	// Reseal: drop trailing garbage (a torn final record) so the next
	// append starts at a clean boundary instead of concatenating onto the
	// fragment. Mid-file corruption stays put — it is dead bytes for the
	// next compaction, already skipped by the replay.
	if int64(len(data)) > seg.size {
		if err := f.Truncate(seg.size); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		s.reseals++
	}
	return seg, nil
}

// scan replays one segment image, indexing every valid record (later
// records win) and resyncing past corrupt regions via the magic marker.
// seg.size is left at the end of the last valid record.
func (s *Store) scan(data []byte, seg *segment) {
	i := int64(0)
	n := int64(len(data))
	for i+headerLen <= n {
		if !bytes.Equal(data[i:i+4], magic[:]) {
			i = resync(data, i+1)
			continue
		}
		kl := int64(binary.LittleEndian.Uint32(data[i+4:]))
		vl := int64(binary.LittleEndian.Uint32(data[i+8:]))
		crc := binary.LittleEndian.Uint32(data[i+12:])
		if kl != int64(keyLen) || vl > maxValueBytes || i+headerLen+kl+vl > n {
			// Bad framing, or a record extending past EOF (torn tail).
			i = resync(data, i+1)
			continue
		}
		body := data[i+headerLen : i+headerLen+kl+vl]
		if recordCRC(data[i+4:i+12], body) != crc {
			s.drops++
			i = resync(data, i+1)
			continue
		}
		var fp core.Fingerprint
		copy(fp[:], body[:kl])
		total := headerLen + kl + vl
		s.indexPut(fp, entry{seg: seg, off: i, total: total, vlen: int(vl)})
		i += total
		seg.size = i
	}
}

// liveIn sums the live bytes currently indexed into seg. Only called
// during open/compaction bookkeeping, where segment counts are small.
func (s *Store) liveIn(seg *segment) int64 {
	var b int64
	for _, e := range s.index {
		if e.seg == seg {
			b += e.total
		}
	}
	return b
}

// resync finds the next possible record start at or after pos.
func resync(data []byte, pos int64) int64 {
	if pos >= int64(len(data)) {
		return int64(len(data))
	}
	j := bytes.Index(data[pos:], magic[:])
	if j < 0 {
		return int64(len(data))
	}
	return pos + int64(j)
}

// indexPut records the newest location of fp, retiring any previous one
// to the dead pool.
func (s *Store) indexPut(fp core.Fingerprint, e entry) {
	if old, ok := s.index[fp]; ok {
		s.live -= old.total
		s.dead += old.total
	} else {
		s.xorFP(fp)
	}
	s.index[fp] = e
	s.live += e.total
}

// xorFP folds fp into (or out of — XOR is its own inverse) the
// incremental live-set digest.
func (s *Store) xorFP(fp core.Fingerprint) {
	for i := range s.xor {
		s.xor[i] ^= fp[i]
	}
}

func (s *Store) createSegment(id uint64) (*segment, error) {
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &segment{id: id, path: path, f: f}, nil
}

func (s *Store) active() *segment { return s.segs[len(s.segs)-1] }

func (s *Store) closeAll() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
}

// encodeRecord frames one (fingerprint, value) record.
func encodeRecord(fp core.Fingerprint, val []byte) []byte {
	rec := make([]byte, headerLen+keyLen+len(val))
	copy(rec[0:4], magic[:])
	binary.LittleEndian.PutUint32(rec[4:8], uint32(keyLen))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(val)))
	copy(rec[headerLen:], fp[:])
	copy(rec[headerLen+keyLen:], val)
	binary.LittleEndian.PutUint32(rec[12:16], recordCRC(rec[4:12], rec[headerLen:]))
	return rec
}

func recordCRC(lengths, body []byte) uint32 {
	crc := crc32.Update(0, castagnoli, lengths)
	return crc32.Update(crc, castagnoli, body)
}

// Put appends one record and fsyncs it before returning nil. On any
// error the record is not acknowledged: it is never indexed, and a torn
// on-disk prefix is truncated away before the next append. Putting the
// same fingerprint again replaces the old record (last write wins on
// replay); in practice values are deterministic functions of their key,
// so a rewrite carries identical bytes.
func (s *Store) Put(fp core.Fingerprint, val []byte) error {
	if len(val) > maxValueBytes {
		return ErrValueTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := chaos.Step(chaos.SiteStoreWrite); err != nil {
		return err
	}
	a := s.active()
	if s.torn {
		// A previous append failed partway; cut back to the last
		// acknowledged byte so this record starts on a clean boundary.
		if err := a.f.Truncate(a.size); err != nil {
			return err
		}
		s.torn = false
		s.reseals++
	}
	rec := encodeRecord(fp, val)
	// Chaos: a torn write lands a prefix of the record with no way to tell
	// — exactly what a kill mid-write leaves; a corrupt write lands the
	// whole record with a flipped value byte (bit rot), detectable only by
	// checksum. Neither is acknowledged or indexed.
	if cerr, fired := chaos.Fire(chaos.SiteStoreTorn); fired {
		a.f.WriteAt(rec[:len(rec)/2], a.size)
		s.torn = true
		return cerr
	}
	if cerr, fired := chaos.Fire(chaos.SiteStoreCorrupt); fired {
		bad := append([]byte(nil), rec...)
		bad[len(bad)-1] ^= 0xff
		if _, err := a.f.WriteAt(bad, a.size); err != nil {
			s.torn = true
			return cerr
		}
		a.size += int64(len(bad))
		s.dead += int64(len(bad))
		return cerr
	}
	if _, err := a.f.WriteAt(rec, a.size); err != nil {
		s.torn = true
		return err
	}
	// A failed fsync leaves the bytes on disk but durability unconfirmed:
	// the record must not be acknowledged. The torn flag truncates it away
	// before the next append; if the process dies first, replay may find
	// the record intact — a harmless duplicate of a recomputation.
	if err := chaos.Step(chaos.SiteStoreSync); err != nil {
		s.torn = true
		return err
	}
	if err := a.f.Sync(); err != nil {
		s.torn = true
		return err
	}
	off := a.size
	a.size += int64(len(rec))
	s.indexPut(fp, entry{seg: a, off: off, total: int64(len(rec)), vlen: len(val)})
	if a.size >= s.opts.MaxSegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		if !s.opts.NoAutoCompact && s.dead > s.live && len(s.segs) > 2 {
			if err := s.compactLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// rotateLocked seals the active segment and starts a new one.
func (s *Store) rotateLocked() error {
	seg, err := s.createSegment(s.active().id + 1)
	if err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		seg.f.Close()
		return err
	}
	s.segs = append(s.segs, seg)
	return nil
}

// Get returns the stored value for fp. The record is re-read and
// checksum-verified on every call: bit rot is detected, the record is
// dropped from the index (a miss — the caller recomputes), and the bytes
// join the dead pool. A corrupt record is never returned.
func (s *Store) Get(fp core.Fingerprint) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.getLocked(fp)
	return v, ok
}

func (s *Store) getLocked(fp core.Fingerprint) ([]byte, bool) {
	if s.closed {
		return nil, false
	}
	e, ok := s.index[fp]
	if !ok {
		return nil, false
	}
	rec := make([]byte, e.total)
	if _, err := e.seg.f.ReadAt(rec, e.off); err != nil {
		s.dropLocked(fp, e)
		return nil, false
	}
	if !bytes.Equal(rec[0:4], magic[:]) ||
		recordCRC(rec[4:12], rec[headerLen:]) != binary.LittleEndian.Uint32(rec[12:16]) {
		s.dropLocked(fp, e)
		return nil, false
	}
	return rec[e.total-int64(e.vlen):], true
}

func (s *Store) dropLocked(fp core.Fingerprint, e entry) {
	delete(s.index, fp)
	s.xorFP(fp)
	s.live -= e.total
	s.dead += e.total
	s.drops++
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Range calls fn for every live record in ascending fingerprint order
// (deterministic across runs) until fn returns false. Values are verified
// like Get; corrupt records are skipped. fn must not call back into the
// store.
func (s *Store) Range(fn func(fp core.Fingerprint, val []byte) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fps := make([]core.Fingerprint, 0, len(s.index))
	for fp := range s.index {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return bytes.Compare(fps[i][:], fps[j][:]) < 0 })
	for _, fp := range fps {
		v, ok := s.getLocked(fp)
		if !ok {
			continue
		}
		if !fn(fp, v) {
			return
		}
	}
}

// Compact rewrites every live record of the sealed segments into one
// fresh segment and deletes the originals, reclaiming the dead bytes.
// The active segment is untouched (its records are newer and win on
// replay regardless). Crash-safe: the compacted image is fsynced under a
// temp name and atomically renamed over the newest sealed segment before
// the older ones are removed, so a crash at any point leaves a directory
// that replays to the same live set.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	sealed := s.segs[:len(s.segs)-1]
	if len(sealed) == 0 {
		return nil
	}
	target := sealed[len(sealed)-1]
	tmpPath := target.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	// Stream the live records of the sealed segments, in deterministic
	// fingerprint order, re-verifying each (bit rot must not be copied
	// forward as truth).
	type moved struct {
		fp core.Fingerprint
		e  entry
	}
	var moves []moved
	fps := make([]core.Fingerprint, 0, len(s.index))
	for fp, e := range s.index {
		if e.seg != s.active() {
			fps = append(fps, fp)
		}
	}
	sort.Slice(fps, func(i, j int) bool { return bytes.Compare(fps[i][:], fps[j][:]) < 0 })
	var off int64
	for _, fp := range fps {
		v, ok := s.getLocked(fp)
		if !ok {
			continue
		}
		rec := encodeRecord(fp, v)
		if _, err := tmp.WriteAt(rec, off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		moves = append(moves, moved{fp, entry{off: off, total: int64(len(rec)), vlen: len(v)}})
		off += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	// The commit point: the compacted image atomically replaces the
	// newest sealed segment.
	if err := os.Rename(tmpPath, target.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		tmp.Close()
		return err
	}
	compacted := &segment{id: target.id, path: target.path, f: tmp, size: off}
	for _, seg := range sealed {
		seg.f.Close()
		if seg != target {
			os.Remove(seg.path)
		}
	}
	syncDir(s.dir)
	for _, m := range moves {
		m.e.seg = compacted
		s.index[m.fp] = m.e
	}
	s.segs = []*segment{compacted, s.active()}
	s.dead = 0
	s.live = off + s.liveIn(s.active())
	// Record positions moved: any (Seg, Off) cursor held by a replication
	// reader is now meaningless. A new epoch makes readers restart.
	s.gen = newGen()
	return nil
}

// endLocked is the cursor one past the last appended record.
func (s *Store) endLocked() Cursor {
	a := s.active()
	return Cursor{Gen: s.gen, Seg: a.id, Off: a.size}
}

// Digest returns the O(1) anti-entropy summary of the live record set.
func (s *Store) Digest() Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Digest{Gen: s.gen, Records: len(s.index), XorFP: s.xor, End: s.endLocked()}
}

// Since streams live records appended at or after cursor c in log order,
// bounded by maxRecords (<=0 means 256) and maxBytes of values (<=0
// means 1 MiB; at least one record is always returned if any is
// pending). It returns the batch, the cursor to resume from, and
// whether more records remain. A cursor from a different epoch (reopen
// or compaction — see Cursor) restarts from the beginning. Each record
// is re-read and checksum-verified like Get; a corrupt record is
// dropped, never streamed.
func (s *Store) Since(c Cursor, maxRecords int, maxBytes int64) ([]Record, Cursor, bool) {
	if maxRecords <= 0 {
		maxRecords = 256
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, c, false
	}
	if c.Gen != s.gen {
		c = Cursor{Gen: s.gen}
	}
	type pos struct {
		fp core.Fingerprint
		e  entry
	}
	var pend []pos
	for fp, e := range s.index {
		if e.seg.id > c.Seg || (e.seg.id == c.Seg && e.off >= c.Off) {
			pend = append(pend, pos{fp, e})
		}
	}
	sort.Slice(pend, func(i, j int) bool {
		if pend[i].e.seg.id != pend[j].e.seg.id {
			return pend[i].e.seg.id < pend[j].e.seg.id
		}
		return pend[i].e.off < pend[j].e.off
	})
	var recs []Record
	var vbytes int64
	next := c
	for i, p := range pend {
		v, ok := s.getLocked(p.fp)
		if !ok {
			continue // dropped as corrupt; the positions after it still stream
		}
		recs = append(recs, Record{FP: p.fp, Val: v})
		next = Cursor{Gen: s.gen, Seg: p.e.seg.id, Off: p.e.off + p.e.total}
		vbytes += int64(len(v))
		if len(recs) >= maxRecords || vbytes >= maxBytes {
			return recs, next, i+1 < len(pend)
		}
	}
	// Drained: jump the cursor to the end of the log so the caller's next
	// call is a cheap no-op.
	return recs, s.endLocked(), false
}

// Stats reports the store's physical state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Segments:       len(s.segs),
		Records:        len(s.index),
		LiveBytes:      s.live,
		DeadBytes:      s.dead,
		DroppedCorrupt: s.drops,
		TornResealed:   s.reseals,
		Cursor:         s.endLocked(),
	}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close syncs the active segment and closes every file handle. The store
// rejects further operations.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.active().f.Sync()
	s.closeAll()
	return err
}

// syncDir fsyncs a directory, making just-created or just-renamed names
// durable. Filesystems that cannot sync a directory handle report
// EINVAL/ENOTSUP; those are ignored — there the operation is meaningless,
// not failed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
