// Tests of the replication support layer: the append-order cursor, the
// O(1) digest, and the Since delta stream — the store-side contract
// anti-entropy is built on (DESIGN.md §4j). The properties that matter:
// every live record streams exactly once in log order, cursors survive
// batching, an epoch change (reopen or compaction) restarts the stream
// instead of serving stale positions, and a corrupt record is dropped
// by the same per-read checksum Get uses — never streamed to a peer.
package store

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
)

// drain pulls Since to exhaustion in batches of batchRecs, returning
// every streamed record and the final cursor.
func drain(t *testing.T, s *Store, c Cursor, batchRecs int) ([]Record, Cursor) {
	t.Helper()
	var all []Record
	for i := 0; ; i++ {
		recs, next, more := s.Since(c, batchRecs, 0)
		all = append(all, recs...)
		if !more && len(recs) == 0 {
			return all, next
		}
		if next == c && !more {
			return all, next
		}
		c = next
		if !more {
			return all, c
		}
		if i > 10_000 {
			t.Fatal("Since never drained")
		}
	}
}

func TestSinceStreamsAllRecordsInOrder(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 256, NoAutoCompact: true})
	defer s.Close()
	want := map[core.Fingerprint]string{}
	for i := 0; i < 40; i++ {
		fp := fpOf("since", fmt.Sprint(i))
		v := fmt.Sprintf("value-%02d", i)
		if err := s.Put(fp, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[fp] = v
	}
	// Overwrite one: the superseded copy must not stream.
	over := fpOf("since", "7")
	if err := s.Put(over, []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	want[over] = "rewritten"

	// Tiny batches: the cursor must stitch them seamlessly.
	got, final := drain(t, s, Cursor{Gen: s.Digest().Gen}, 3)
	if len(got) != len(want) {
		t.Fatalf("streamed %d records, want %d", len(got), len(want))
	}
	seen := map[core.Fingerprint]bool{}
	for _, r := range got {
		if seen[r.FP] {
			t.Fatalf("record %s streamed twice", r.FP)
		}
		seen[r.FP] = true
		if want[r.FP] != string(r.Val) {
			t.Fatalf("record %s: got %q want %q", r.FP, r.Val, want[r.FP])
		}
	}
	if end := s.Stats().Cursor; final != end {
		t.Fatalf("drained cursor %+v != end-of-log %+v", final, end)
	}
	// Drained: the next call from the final cursor is an empty no-op.
	recs, _, more := s.Since(final, 0, 0)
	if len(recs) != 0 || more {
		t.Fatalf("drained stream yielded %d records, more=%v", len(recs), more)
	}
}

func TestSinceResumesAcrossAppends(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if err := s.Put(fpOf("first"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	_, cur := drain(t, s, Cursor{}, 0)
	if err := s.Put(fpOf("second"), []byte("two")); err != nil {
		t.Fatal(err)
	}
	recs, _, _ := s.Since(cur, 0, 0)
	if len(recs) != 1 || recs[0].FP != fpOf("second") {
		t.Fatalf("incremental pull got %d records (want exactly the new one)", len(recs))
	}
}

// TestSinceZeroCursorAlwaysBeforeEverything: the zero Cursor has Gen 0,
// which no live store ever mints, so pulling from it streams the whole
// log — the bootstrap case of a peer that has never synced.
func TestSinceZeroCursorAlwaysBeforeEverything(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Put(fpOf("z", fmt.Sprint(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := drain(t, s, Cursor{}, 0); len(got) != 5 {
		t.Fatalf("zero cursor streamed %d records, want 5", len(got))
	}
}

// TestGenChangesInvalidateCursors: both a reopen and a compaction mint a
// new epoch, and a cursor from the old epoch restarts the stream from
// the beginning instead of reading garbage at stale positions.
func TestGenChangesInvalidateCursors(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 256, NoAutoCompact: true})
	val := bytes.Repeat([]byte("p"), 40)
	for round := 0; round < 10; round++ {
		for k := 0; k < 3; k++ {
			if err := s.Put(fpOf("g", fmt.Sprint(k)), append(val, byte(round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	gen0 := s.Digest().Gen
	if gen0 == 0 {
		t.Fatal("epoch is zero — indistinguishable from the zero cursor")
	}
	_, cur := drain(t, s, Cursor{}, 0)

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	gen1 := s.Digest().Gen
	if gen1 == gen0 {
		t.Fatal("compaction moved record positions but kept the epoch")
	}
	// The stale cursor claims to be at the end; the epoch mismatch must
	// force a full restream of the (compacted) live set.
	if got, _ := drain(t, s, cur, 0); len(got) != 3 {
		t.Fatalf("stale-epoch pull streamed %d records, want the full live set of 3", len(got))
	}

	s.Close()
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if gen2 := s.Digest().Gen; gen2 == gen1 || gen2 == gen0 {
		t.Fatalf("reopen reused an old epoch (%d vs %d/%d)", gen2, gen1, gen0)
	}
}

// TestDigestMatchesContent: two stores that hold the same live records
// agree on (Records, XorFP) regardless of write order and overwrites —
// the equality anti-entropy uses to decide two peers are converged.
func TestDigestMatchesContent(t *testing.T) {
	a := mustOpen(t, t.TempDir(), Options{})
	defer a.Close()
	b := mustOpen(t, t.TempDir(), Options{})
	defer b.Close()
	keys := []string{"w", "x", "y", "z"}
	for _, k := range keys { // a writes in order, with an extra overwrite
		if err := a.Put(fpOf("d", k), []byte("val-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Put(fpOf("d", "x"), []byte("val-x2")); err != nil {
		t.Fatal(err)
	}
	for i := len(keys) - 1; i >= 0; i-- { // b writes in reverse
		k := keys[i]
		v := "val-" + k
		if k == "x" {
			v = "val-x2"
		}
		if err := b.Put(fpOf("d", k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	da, db := a.Digest(), b.Digest()
	if da.Records != db.Records || da.XorFP != db.XorFP {
		t.Fatalf("equal content, unequal digests: %+v vs %+v", da, db)
	}
	// Removing effect: overwriting with new content keeps Records but must
	// change nothing in XorFP (same fingerprint set); adding a key must.
	if err := a.Put(fpOf("d", "extra"), []byte("more")); err != nil {
		t.Fatal(err)
	}
	if da2 := a.Digest(); da2.XorFP == db.XorFP || da2.Records != db.Records+1 {
		t.Fatalf("digest blind to a new record: %+v vs %+v", da2, db)
	}
}

// TestSinceDropsCorruptRecords: bit rot landing between append and pull
// is caught by the per-read checksum — the corrupt record is counted and
// skipped, the records around it still stream.
func TestSinceDropsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	marker := []byte("stream-rot-stream-rot")
	if err := s.Put(fpOf("s", "a"), []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fpOf("s", "b"), marker); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fpOf("s", "c"), []byte("gamma")); err != nil {
		t.Fatal(err)
	}
	seg := segments(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, marker)
	if i < 0 {
		t.Fatal("marker not found")
	}
	f, err := os.OpenFile(seg, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{data[i] ^ 0xff}, int64(i)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, _ := drain(t, s, Cursor{}, 0)
	for _, r := range got {
		if r.FP == fpOf("s", "b") {
			t.Fatal("corrupt record streamed to a peer")
		}
	}
	if len(got) != 2 {
		t.Fatalf("streamed %d records around the corruption, want 2", len(got))
	}
	if st := s.Stats(); st.DroppedCorrupt == 0 {
		t.Error("stream-time corruption not counted in Stats")
	}
}

// TestStatsCountsTornReseal: a torn tail (kill mid-append) is resealed
// at the next open and surfaces in Stats().TornResealed — the
// observability satellite of the corruption counters.
func TestStatsCountsTornReseal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(fpOf("t", "keep"), []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().TornResealed; got != 0 {
		t.Fatalf("fresh store reports %d reseals", got)
	}
	s.Close()
	seg := segments(t, dir)[0]
	torn := encodeRecord(fpOf("t", "torn"), bytes.Repeat([]byte("x"), 64))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if st.TornResealed != 1 {
		t.Errorf("TornResealed = %d, want 1", st.TornResealed)
	}
	if st.Records != 1 {
		t.Errorf("Records = %d, want 1", st.Records)
	}
	if v, ok := s.Get(fpOf("t", "keep")); !ok || string(v) != "kept" {
		t.Errorf("record before the torn tail lost: %q %v", v, ok)
	}
}

// TestSinceRespectsByteBudget: a batch stops at the byte cap but always
// makes progress — at least one record per call while any is pending.
func TestSinceRespectsByteBudget(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	big := bytes.Repeat([]byte("B"), 512)
	for i := 0; i < 6; i++ {
		if err := s.Put(fpOf("big", fmt.Sprint(i)), big); err != nil {
			t.Fatal(err)
		}
	}
	c := Cursor{}
	total := 0
	for rounds := 0; ; rounds++ {
		recs, next, more := s.Since(c, 0, 600)
		if len(recs) == 0 && !more {
			break
		}
		if len(recs) == 0 {
			t.Fatal("byte-capped batch made no progress")
		}
		if len(recs) > 2 { // 512-byte values under a 600-byte budget
			t.Fatalf("byte cap ignored: %d records in one batch", len(recs))
		}
		total += len(recs)
		c = next
		if !more {
			break
		}
		if rounds > 100 {
			t.Fatal("never drained")
		}
	}
	if total != 6 {
		t.Fatalf("streamed %d records under the byte budget, want 6", total)
	}
}
