package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
)

func fpOf(parts ...string) core.Fingerprint {
	h := core.NewHasher()
	for _, p := range parts {
		h.Str(p)
	}
	return h.Sum()
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// segments returns the store's segment files, sorted.
func segments(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	return names
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	want := map[core.Fingerprint][]byte{}
	for i := 0; i < 50; i++ {
		fp := fpOf("key", fmt.Sprint(i))
		v := []byte(fmt.Sprintf("value-%d", i))
		if err := s.Put(fp, v); err != nil {
			t.Fatal(err)
		}
		want[fp] = v
	}
	// Overwrites: last write wins.
	over := fpOf("key", "7")
	if err := s.Put(over, []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	want[over] = []byte("rewritten")
	check := func(s *Store, when string) {
		t.Helper()
		if s.Len() != len(want) {
			t.Fatalf("%s: Len = %d, want %d", when, s.Len(), len(want))
		}
		for fp, v := range want {
			got, ok := s.Get(fp)
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("%s: Get(%s) = %q, %v; want %q", when, fp, got, ok, v)
			}
		}
		if _, ok := s.Get(fpOf("absent")); ok {
			t.Fatalf("%s: absent key reported present", when)
		}
	}
	check(s, "before close")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	check(s, "after reopen")
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put(fpOf("k", fmt.Sprint(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	seg := segments(t, dir)[0]
	// A kill mid-write: a valid-looking header whose record extends past
	// EOF, i.e. a prefix of a record.
	torn := encodeRecord(fpOf("k", "torn"), bytes.Repeat([]byte("x"), 100))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, dir, Options{})
	if s.Len() != 3 {
		t.Fatalf("after torn tail: Len = %d, want 3", s.Len())
	}
	// The tail was resealed: a fresh put appends cleanly and survives.
	if err := s.Put(fpOf("k", "4"), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 4 {
		t.Fatalf("after reseal+put: Len = %d, want 4", s.Len())
	}
	if v, ok := s.Get(fpOf("k", "4")); !ok || string(v) != "fresh" {
		t.Fatalf("post-reseal record lost: %q %v", v, ok)
	}
}

// TestOversizedCorruptRegionSkipped is the regression for the class of
// failure the old JSON-lines journal had (bufio.ErrTooLong): a corrupt
// region far larger than any scanner buffer must lose only itself.
func TestOversizedCorruptRegionSkipped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(fpOf("before"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	seg := segments(t, dir)[0]
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// 5 MiB of garbage — larger than the old 4 MiB line ceiling.
	if _, err := f.Write(bytes.Repeat([]byte{0xAB}, 5<<20)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The old bug aborted the whole load here; the store must open, keep
	// the valid prefix, truncate the garbage and accept new records.
	s = mustOpen(t, dir, Options{})
	if v, ok := s.Get(fpOf("before")); !ok || string(v) != "a" {
		t.Fatalf("record before corrupt region lost: %q %v", v, ok)
	}
	if err := s.Put(fpOf("after"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

// TestMidFileCorruptionSkipsOnlyThatRecord: flipping a byte inside one
// record drops that record (recomputed by the caller) while the records
// around it, including those AFTER the corruption, still load.
func TestMidFileCorruptionSkipsOnlyThatRecord(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	marker := []byte("needle-to-corrupt-needle")
	if err := s.Put(fpOf("a"), []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fpOf("b"), marker); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fpOf("c"), []byte("gamma")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	seg := segments(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, marker)
	if i < 0 {
		t.Fatal("marker value not found in segment")
	}
	data[i] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if _, ok := s.Get(fpOf("b")); ok {
		t.Fatal("corrupt record was trusted")
	}
	for name, want := range map[string]string{"a": "alpha", "c": "gamma"} {
		if v, ok := s.Get(fpOf(name)); !ok || string(v) != want {
			t.Fatalf("record %q around corruption lost: %q %v", name, v, ok)
		}
	}
	if st := s.Stats(); st.DroppedCorrupt == 0 {
		t.Error("corruption not counted in stats")
	}
}

// TestGetDetectsBitRot: corruption landing after open (disk rot) is
// caught by the per-read checksum — a miss, never a bad value.
func TestGetDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	marker := []byte("rot-me-rot-me-rot-me")
	if err := s.Put(fpOf("rot"), marker); err != nil {
		t.Fatal(err)
	}
	seg := segments(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, marker)
	if i < 0 {
		t.Fatal("marker not found")
	}
	f, err := os.OpenFile(seg, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{data[i] ^ 0xff}, int64(i)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if v, ok := s.Get(fpOf("rot")); ok {
		t.Fatalf("bit-rotted record returned as truth: %q", v)
	}
	if _, ok := s.Get(fpOf("rot")); ok {
		t.Fatal("dropped record resurrected")
	}
	if st := s.Stats(); st.DroppedCorrupt != 1 {
		t.Errorf("DroppedCorrupt = %d, want 1", st.DroppedCorrupt)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation; auto-compact off so the layout is
	// assertable.
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 256, NoAutoCompact: true})
	val := bytes.Repeat([]byte("v"), 40)
	// Overwrite the same 4 keys many times: most bytes die.
	for round := 0; round < 20; round++ {
		for k := 0; k < 4; k++ {
			if err := s.Put(fpOf("k", fmt.Sprint(k)), append(val, byte('0'+k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := len(segments(t, dir)); n < 3 {
		t.Fatalf("rotation produced only %d segment files", n)
	}
	pre := s.Stats()
	if pre.DeadBytes == 0 {
		t.Fatal("overwrite-heavy workload produced no dead bytes")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	post := s.Stats()
	if post.Records != 4 {
		t.Fatalf("compaction changed live set: %d records", post.Records)
	}
	if len(segments(t, dir)) != 2 { // compacted + active
		t.Fatalf("compaction left %d segment files", len(segments(t, dir)))
	}
	if post.LiveBytes+post.DeadBytes >= pre.LiveBytes+pre.DeadBytes {
		t.Fatalf("compaction reclaimed nothing: %+v -> %+v", pre, post)
	}
	for k := 0; k < 4; k++ {
		want := append(bytes.Repeat([]byte("v"), 40), byte('0'+k))
		if v, ok := s.Get(fpOf("k", fmt.Sprint(k))); !ok || !bytes.Equal(v, want) {
			t.Fatalf("key %d after compaction: %q %v", k, v, ok)
		}
	}
	// New writes after compaction land in the active segment and survive
	// a reopen together with the compacted records.
	if err := s.Put(fpOf("fresh"), []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 5 {
		t.Fatalf("after reopen: Len = %d, want 5", s.Len())
	}
}

func TestAutoCompactionBoundsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 512})
	val := bytes.Repeat([]byte("x"), 60)
	for round := 0; round < 60; round++ {
		if err := s.Put(fpOf("hot"), append(val, byte(round))); err != nil {
			t.Fatal(err)
		}
	}
	defer s.Close()
	st := s.Stats()
	if st.Records != 1 {
		t.Fatalf("Records = %d, want 1", st.Records)
	}
	if st.Segments > 3 {
		t.Errorf("auto-compaction never ran: %d segments, dead=%d live=%d", st.Segments, st.DeadBytes, st.LiveBytes)
	}
	if v, ok := s.Get(fpOf("hot")); !ok || v[len(v)-1] != 59 {
		t.Fatalf("hot key lost its newest value: %v %v", v, ok)
	}
}

func TestRangeSortedAndBounded(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	for i := 0; i < 20; i++ {
		if err := s.Put(fpOf("r", fmt.Sprint(i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []core.Fingerprint
	s.Range(func(fp core.Fingerprint, v []byte) bool {
		got = append(got, fp)
		return len(got) < 5
	})
	if len(got) != 5 {
		t.Fatalf("Range ignored early stop: %d", len(got))
	}
	var all []core.Fingerprint
	s.Range(func(fp core.Fingerprint, v []byte) bool {
		all = append(all, fp)
		return true
	})
	if len(all) != 20 {
		t.Fatalf("Range visited %d of 20", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return bytes.Compare(all[i][:], all[j][:]) < 0 }) {
		t.Error("Range order is not sorted (nondeterministic warm order)")
	}
}

func TestTmpLeftoverRemoved(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(fpOf("x"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// An interrupted compaction leaves a .tmp image; Open must ignore and
	// remove it.
	tmp := filepath.Join(dir, "seg-00000001.log.tmp")
	if err := os.WriteFile(tmp, []byte("half-written compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("leftover tmp file not removed: %v", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 4096})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				fp := fpOf("c", fmt.Sprint(g), fmt.Sprint(i))
				want := []byte(fmt.Sprintf("%d/%d", g, i))
				if err := s.Put(fp, want); err != nil {
					t.Errorf("put %d/%d: %v", g, i, err)
					return
				}
				if v, ok := s.Get(fp); !ok || !bytes.Equal(v, want) {
					t.Errorf("get %d/%d: %q %v", g, i, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*30 {
		t.Fatalf("Len = %d, want %d", s.Len(), 8*30)
	}
}

func TestValueTooLargeRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	huge := make([]byte, maxValueBytes+1)
	if err := s.Put(fpOf("huge"), huge); err != ErrValueTooLarge {
		t.Fatalf("oversized Put: %v", err)
	}
}

func TestClosedStoreRejects(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	s.Close()
	if err := s.Put(fpOf("x"), []byte("y")); err != ErrClosed {
		t.Fatalf("Put on closed store: %v", err)
	}
	if _, ok := s.Get(fpOf("x")); ok {
		t.Fatal("Get on closed store returned a value")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
