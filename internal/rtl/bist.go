package rtl

import (
	"fmt"

	"repro/internal/etpn"
	"repro/internal/exec"
	"repro/internal/gates"
)

// GenerateBIST builds the gate-level netlist with built-in self-test
// hardware in the manner of Papachristou et al. (the paper's reference
// [10]): a bist_en primary input reconfigures the selected TPG registers
// into linear-feedback shift registers (pattern generators) and the
// selected MISR registers into multiple-input signature registers that
// compact their functional D inputs. Each MISR's contents are exposed on
// a sig_r<k> output bus for end-of-test signature comparison.
//
// In normal operation (bist_en low) the data path is unchanged; the
// equivalence tests cover this.
// GenerateBIST shares the rtl.generate panic boundary with
// GenerateWithScan: internal builder panics come back as *exec.ExecError.
func GenerateBIST(d *etpn.Design, width int, mode Mode, tpgRegs, misrRegs []int) (*Netlist, error) {
	return exec.Guard1("rtl.generate", -1, func() (*Netlist, error) {
		return generateBIST(d, width, mode, tpgRegs, misrRegs)
	})
}

func generateBIST(d *etpn.Design, width int, mode Mode, tpgRegs, misrRegs []int) (*Netlist, error) {
	seen := map[int]string{}
	for _, r := range tpgRegs {
		if r < 0 || r >= len(d.Alloc.Regs) {
			return nil, fmt.Errorf("rtl: BIST register %d out of range", r)
		}
		seen[r] = "tpg"
	}
	for _, r := range misrRegs {
		if r < 0 || r >= len(d.Alloc.Regs) {
			return nil, fmt.Errorf("rtl: BIST register %d out of range", r)
		}
		if seen[r] != "" {
			return nil, fmt.Errorf("rtl: register %d assigned to both TPG and MISR", r)
		}
		seen[r] = "misr"
	}
	// Generate the base netlist with the BIST registers on the "scan"
	// path so their functional D nets are captured and left unwired, then
	// wire the BIST structures in place of the chain.
	all := append(append([]int(nil), tpgRegs...), misrRegs...)
	nl, err := generateCaptured(d, width, mode, all, func(b *gates.Builder, regBus []gates.Word, funcD []gates.Word) error {
		if len(all) == 0 {
			return nil
		}
		bistEn := b.Input("bist_en")
		for _, rid := range tpgRegs {
			q := regBus[rid]
			next := b.LFSRNext(q)
			b.SetDWord(q, b.Mux2W(bistEn, next, funcD[rid]))
		}
		for _, rid := range misrRegs {
			q := regBus[rid]
			next := b.MISRNext(q, funcD[rid])
			b.SetDWord(q, b.Mux2W(bistEn, next, funcD[rid]))
			b.OutputWord(fmt.Sprintf("sig_r%d", rid), q)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	nl.BISTTpg = append(nl.BISTTpg, tpgRegs...)
	nl.BISTMisr = append(nl.BISTMisr, misrRegs...)
	return nl, nil
}
