package rtl

import (
	"strings"
	"testing"

	"repro/internal/dfg"
	"repro/internal/gates"
)

func TestLFSRCyclesFullPeriod(t *testing.T) {
	// A 4-bit LFSR with zero-escape must visit all 16 states.
	b := gates.NewBuilder()
	q := b.DFFWord("q", 4)
	b.SetDWord(q, b.LFSRNext(q))
	b.OutputWord("q", q)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate by hand over 16 cycles.
	state := uint64(0)
	seen := map[uint64]bool{}
	next := func(s uint64) uint64 {
		vals := map[int]bool{}
		order, _ := c.Levelize()
		dffIdx := map[int]int{}
		for i, id := range c.DFFs {
			dffIdx[id] = i
		}
		for _, id := range order {
			g := c.Gates[id]
			switch g.Kind {
			case gates.KDFF:
				vals[id] = s&(1<<uint(dffIdx[id])) != 0
			case gates.KXor:
				vals[id] = vals[g.In[0]] != vals[g.In[1]]
			case gates.KNor:
				v := false
				for _, in := range g.In {
					v = v || vals[in]
				}
				vals[id] = !v
			case gates.KBuf:
				vals[id] = vals[g.In[0]]
			}
		}
		var out uint64
		for i, id := range c.DFFs {
			if vals[c.Gates[id].In[0]] {
				out |= 1 << uint(i)
			}
		}
		return out
	}
	for i := 0; i < 16; i++ {
		if seen[state] {
			t.Fatalf("state %x repeated after %d steps", state, i)
		}
		seen[state] = true
		state = next(state)
	}
	if len(seen) != 16 {
		t.Fatalf("visited %d states, want 16", len(seen))
	}
}

func TestLFSRTapsTable(t *testing.T) {
	for _, w := range []int{4, 8, 16} {
		taps := gates.LFSRTaps(w)
		if len(taps) == 0 || taps[0] != w {
			t.Errorf("width %d: taps %v", w, taps)
		}
	}
	if taps := gates.LFSRTaps(11); len(taps) != 2 {
		t.Errorf("fallback taps %v", taps)
	}
}

func TestGenerateBISTStructure(t *testing.T) {
	g := dfg.Tseng(4)
	d := buildLeftEdge(t, g)
	nl, err := GenerateBIST(d, 4, NormalMode, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.BISTTpg) != 1 || len(nl.BISTMisr) != 1 {
		t.Fatalf("BIST registers not recorded: %v %v", nl.BISTTpg, nl.BISTMisr)
	}
	foundEn, foundSig := false, false
	for _, id := range nl.C.Inputs {
		if nl.C.Gates[id].Name == "bist_en" {
			foundEn = true
		}
	}
	for _, name := range nl.C.OutputNames {
		if strings.HasPrefix(name, "sig_r1") {
			foundSig = true
		}
	}
	if !foundEn || !foundSig {
		t.Fatalf("BIST ports missing: en=%v sig=%v", foundEn, foundSig)
	}

	// Normal-mode function must be unchanged with bist_en low.
	in := map[string]uint64{"a": 3, "b": 5, "c": 7}
	want, err := g.Interpret(4, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nl.SimulatePass(in)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("BIST netlist broke function: %s = %d, want %d", k, got[k], w)
		}
	}
}

func TestGenerateBISTRejectsOverlap(t *testing.T) {
	g := dfg.Tseng(4)
	d := buildLeftEdge(t, g)
	if _, err := GenerateBIST(d, 4, NormalMode, []int{0}, []int{0}); err == nil {
		t.Error("expected overlap error")
	}
	if _, err := GenerateBIST(d, 4, NormalMode, []int{77}, nil); err == nil {
		t.Error("expected range error")
	}
}
