// Synthesized-design RTL tests live in an external test package: they
// drive the full pipeline through internal/core, which (via the
// stage-boundary validators) depends back on this package.
package rtl_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/rtl"
)

// Gate-level equivalence must hold for fully synthesized designs too — the
// whole pipeline (Algorithm 1 + RTL generation) is semantics-preserving.
func TestGateLevelMatchesInterpreterSynthesized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, name := range []string{dfg.BenchEx, dfg.BenchDct, dfg.BenchDiffeq, dfg.BenchTseng} {
		g, _ := dfg.ByName(name, 8)
		par := core.DefaultParams(8)
		if name == dfg.BenchDiffeq {
			par.LoopSignal = "exit"
		}
		for _, method := range core.Methods() {
			r, err := core.Run(method, g, par)
			if err != nil {
				t.Fatal(err)
			}
			n, err := rtl.Generate(r.Design, 8, rtl.NormalMode)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, method, err)
			}
			for trial := 0; trial < 5; trial++ {
				in := map[string]uint64{}
				for _, v := range g.Inputs() {
					in[g.Value(v).Name] = rng.Uint64()
				}
				want, _ := g.Interpret(8, in)
				got, err := n.SimulatePass(in)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, method, err)
				}
				for k, w := range want {
					if got[k] != w {
						t.Fatalf("%s/%s trial %d: output %s = %d, want %d", name, method, trial, k, got[k], w)
					}
				}
			}
		}
	}
}

// TestGenerateDeterministic regenerates the netlist of every synthesis
// flow several times and requires byte-identical Verilog. Regression for
// buildPorts iterating its port map in Go's randomized order, which let
// the gate numbering (and with it the ATPG effort figures of Tables 1-3)
// vary from run to run.
func TestGenerateDeterministic(t *testing.T) {
	g := dfg.Ex(8)
	par := core.DefaultParams(8)
	par.Alpha, par.Beta = 10, 1
	for _, method := range core.Methods() {
		r, err := core.Run(method, g, par)
		if err != nil {
			t.Fatal(err)
		}
		var want string
		for i := 0; i < 8; i++ {
			n, err := rtl.Generate(r.Design, 8, rtl.NormalMode)
			if err != nil {
				t.Fatal(err)
			}
			v := n.Verilog("ex")
			if i == 0 {
				want = v
			} else if v != want {
				t.Fatalf("%s: netlist generation is nondeterministic (draw %d differs)", method, i)
			}
		}
	}
}
