// Package rtl generates a gate-level netlist from a synthesized ETPN
// design: registers become DFF words, functional modules become arithmetic
// units (with one-hot operation selects when a module hosts several
// operation kinds), allocation-induced multiplexers become one-hot mux
// trees, and the control part becomes either
//
//   - a one-hot FSM controller derived from the control Petri net
//     (NormalMode), or
//   - test-mode primary inputs (TestMode): the paper assumes "the
//     controller can be modified to support the test plan" (§1), which the
//     high-level test synthesis literature realizes by giving the tester
//     direct control of the data-path control lines. Sequential depth —
//     the paper's central testability quantity — is preserved exactly:
//     registers can still only be reached through their actual data
//     sources.
package rtl

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/exec"
	"repro/internal/gates"
)

// Mode selects the controller realization.
type Mode int

// Controller modes.
const (
	NormalMode Mode = iota
	TestMode
)

// CtrlSignal describes one control line.
type CtrlSignal struct {
	Name string
	// PI is the primary-input gate id in TestMode; -1 in NormalMode.
	PI int
	// ActiveSteps lists the control steps (1-based; 0 = the load phase)
	// in which the signal is asserted by the schedule.
	ActiveSteps []int
}

// Netlist is the generated circuit with its interface metadata.
type Netlist struct {
	C     *gates.Circuit
	Width int
	Mode  Mode

	// DataIn maps input value names to their PI buses.
	DataIn map[string]gates.Word
	// DataOut maps output value names to their PO buses.
	DataOut map[string]gates.Word
	// SampleCycle maps each output name to the clock cycle (0-based; cycle
	// t spans control step t) at which its value is valid for observation.
	SampleCycle map[string]int
	// Ctrl lists every control signal in deterministic order.
	Ctrl []CtrlSignal
	// Steps is the schedule length; a full pass takes Steps+1 cycles
	// (cycle 0 is the load phase for inputs consumed in step 1).
	Steps int
	// ScanRegs lists the allocation register ids on the scan chain, in
	// chain order; empty when no scan was requested.
	ScanRegs []int
	// BISTTpg and BISTMisr list the registers reconfigured as pattern
	// generators and signature registers by GenerateBIST.
	BISTTpg  []int
	BISTMisr []int
}

// Generate builds the gate-level netlist of d at the given bit width.
func Generate(d *etpn.Design, width int, mode Mode) (*Netlist, error) {
	return GenerateWithScan(d, width, mode, nil)
}

// GenerateWithScan is Generate plus a serial scan chain threaded through
// the given allocation registers (in order, LSB first within each): a
// scan_en primary input switches every scanned flip-flop's D between its
// functional source and the previous chain bit, scan_in feeds the head,
// and scan_out observes the tail. Partial scan per package scan.
// GenerateWithScan is a public library boundary: an internal panic while
// building the netlist (malformed designs can violate builder invariants)
// is recovered and returned as an *exec.ExecError rather than unwinding
// into the caller.
func GenerateWithScan(d *etpn.Design, width int, mode Mode, scanRegs []int) (*Netlist, error) {
	return exec.Guard1("rtl.generate", -1, func() (*Netlist, error) {
		return generateWithScan(d, width, mode, scanRegs)
	})
}

func generateWithScan(d *etpn.Design, width int, mode Mode, scanRegs []int) (*Netlist, error) {
	nl, err := generateCaptured(d, width, mode, scanRegs, func(b *gates.Builder, regBus []gates.Word, funcD []gates.Word) error {
		if len(scanRegs) == 0 {
			return nil
		}
		scanEn := b.Input("scan_en")
		chain := b.Input("scan_in")
		for _, rid := range scanRegs {
			q := regBus[rid]
			for bit := range q {
				dd := b.Mux2(scanEn, chain, funcD[rid][bit])
				b.SetD(q[bit], dd)
				chain = q[bit]
			}
		}
		b.Output("scan_out", chain)
		return nil
	})
	if err != nil {
		return nil, err
	}
	nl.ScanRegs = append(nl.ScanRegs, scanRegs...)
	return nl, nil
}

// generateCaptured builds the netlist, leaving the D inputs of the
// `captured` registers unwired and handing their functional D words to
// the wire callback, which must complete the wiring (scan chains, BIST
// structures, ...).
func generateCaptured(d *etpn.Design, width int, mode Mode, captured []int, wire func(b *gates.Builder, regBus, funcD []gates.Word) error) (*Netlist, error) {
	g := d.G
	b := gates.NewBuilder()
	n := &Netlist{
		Width: width, Mode: mode,
		DataIn:      map[string]gates.Word{},
		DataOut:     map[string]gates.Word{},
		SampleCycle: map[string]int{},
		Steps:       d.Sched.Len,
	}

	// Control-line factory: in TestMode every control line is a PI; in
	// NormalMode it is an OR over the one-hot FSM state bits of its active
	// steps. FSM state nets are created lazily below.
	var stateNet func(step int) int
	ctrl := func(name string, activeSteps []int) int {
		sort.Ints(activeSteps)
		cs := CtrlSignal{Name: name, PI: -1, ActiveSteps: activeSteps}
		var net int
		if mode == TestMode {
			net = b.Input("ctl_" + name)
			cs.PI = net
		} else {
			terms := make([]int, 0, len(activeSteps))
			for _, s := range activeSteps {
				terms = append(terms, stateNet(s))
			}
			switch len(terms) {
			case 0:
				net = b.Const(false)
			case 1:
				net = b.Buf(terms[0])
			default:
				net = b.Or(terms...)
			}
		}
		n.Ctrl = append(n.Ctrl, cs)
		return net
	}

	// FSM: one-hot state register s1..sLen. At reset all bits are zero,
	// which is the load phase (cycle 0); s1 fires in cycle 1 via the NOR
	// of all state bits, and the machine idles back to the load phase
	// after sLen, repeating the schedule.
	var stateBits []int
	if mode == NormalMode {
		stateBits = make([]int, d.Sched.Len+1)
		for s := 1; s <= d.Sched.Len; s++ {
			stateBits[s] = b.DFF(fmt.Sprintf("fsm_s%d", s))
		}
		var idle int
		if d.Sched.Len == 1 {
			idle = b.Not(stateBits[1])
		} else {
			idle = b.Nor(stateBits[1:]...)
		}
		b.SetD(stateBits[1], idle)
		for s := 2; s <= d.Sched.Len; s++ {
			b.SetD(stateBits[s], stateBits[s-1])
		}
		stateNet = func(step int) int {
			if step == 0 {
				return idle
			}
			return stateBits[step]
		}
	}

	// Data sources: PI buses for inputs, constant buses, register DFFs.
	inBus := map[dfg.ValueID]gates.Word{}
	constBus := map[dfg.ValueID]gates.Word{}
	for _, v := range g.Values() {
		switch v.Kind {
		case dfg.ValInput:
			w := b.InputWord("in_"+v.Name, width)
			inBus[v.ID] = w
			n.DataIn[v.Name] = w
		case dfg.ValConst:
			constBus[v.ID] = b.ConstWord(uint64(v.Const), width)
		}
	}
	regBus := make([]gates.Word, len(d.Alloc.Regs))
	for _, r := range d.Alloc.Regs {
		regBus[r.ID] = b.DFFWord(fmt.Sprintf("r%d", r.ID), width)
	}

	// nodeBus resolves a data-path node to the bus it drives.
	modBus := make([]gates.Word, len(d.Alloc.Modules))
	nodeBus := func(id int) (gates.Word, error) {
		nd := d.Nodes[id]
		switch nd.Kind {
		case etpn.KindInPort:
			return inBus[nd.Value], nil
		case etpn.KindConst:
			return constBus[nd.Value], nil
		case etpn.KindRegister:
			return regBus[regIndex(d, id)], nil
		case etpn.KindModule:
			w := modBus[modIndex(d, id)]
			if w == nil {
				return nil, fmt.Errorf("rtl: module %s used before built", nd.Name)
			}
			return w, nil
		}
		return nil, fmt.Errorf("rtl: node %s cannot drive a bus", nd.Name)
	}

	// Functional modules: operand-port muxes plus the operation units.
	for _, m := range d.Alloc.Modules {
		modNode := d.ModNode(m.ID)
		ports, err := buildPorts(d, b, modNode, m.ID, nodeBus, ctrl)
		if err != nil {
			return nil, err
		}
		// One unit per distinct operation kind; one-hot op select when the
		// module hosts several kinds (the CAMAD ALU case).
		kinds, kindSteps := moduleKinds(d, m.Ops)
		var results []gates.Word
		var sels []int
		for _, k := range kinds {
			var res gates.Word
			var err error
			if k.Arity() == 1 {
				res, err = b.OpUnary(k, ports[0])
			} else {
				res, err = b.Op(k, ports[0], ports[1])
			}
			if err != nil {
				return nil, fmt.Errorf("rtl: module M%d: %w", m.ID, err)
			}
			results = append(results, res)
			if len(kinds) > 1 {
				sels = append(sels, ctrl(fmt.Sprintf("op_m%d_%s", m.ID, opName(k)), kindSteps[k]))
			}
		}
		if len(results) == 1 {
			modBus[m.ID] = results[0]
		} else {
			modBus[m.ID] = b.MuxOneHot(sels, results)
		}
	}

	// Registers: load-enable logic over their sources. Captured registers
	// get their functional D collected here and wired by the callback.
	scanSet := map[int]bool{}
	for _, r := range captured {
		if r < 0 || r >= len(d.Alloc.Regs) {
			return nil, fmt.Errorf("rtl: scan register %d out of range", r)
		}
		if scanSet[r] {
			return nil, fmt.Errorf("rtl: scan register %d listed twice", r)
		}
		scanSet[r] = true
	}
	funcD := make([]gates.Word, len(d.Alloc.Regs))
	for _, r := range d.Alloc.Regs {
		regNode := d.RegNode(r.ID)
		type src struct {
			bus   gates.Word
			sel   int
			steps []int
		}
		var srcs []src
		for _, a := range d.ArcsInto(regNode) {
			bus, err := nodeBus(a.From)
			if err != nil {
				return nil, err
			}
			sel := ctrl(fmt.Sprintf("ld_r%d_from_%s", r.ID, nodeLabel(d, a.From)), append([]int(nil), a.Steps...))
			srcs = append(srcs, src{bus, sel, a.Steps})
		}
		q := regBus[r.ID]
		var dIn gates.Word
		switch len(srcs) {
		case 0:
			dIn = q // never written: holds forever
		case 1:
			dIn = b.Mux2W(srcs[0].sel, srcs[0].bus, q)
		default:
			sels := make([]int, len(srcs))
			buses := make([]gates.Word, len(srcs))
			for i, s := range srcs {
				sels[i] = s.sel
				buses[i] = s.bus
			}
			anyLoad := b.Or(sels...)
			dIn = b.Mux2W(anyLoad, b.MuxOneHot(sels, buses), q)
		}
		if scanSet[r.ID] {
			funcD[r.ID] = dIn
		} else {
			b.SetDWord(q, dIn)
		}
	}
	// Captured registers: scan chains, BIST structures, etc.
	if wire != nil {
		if err := wire(b, regBus, funcD); err != nil {
			return nil, err
		}
	}

	// Primary outputs: the register (or module) feeding each out port.
	for _, v := range g.Values() {
		if !v.IsOutput {
			continue
		}
		var bus gates.Word
		if r, ok := d.Alloc.RegOf[v.ID]; ok {
			bus = regBus[r]
			n.SampleCycle[v.Name] = d.Life[v.ID].Birth + 1
		} else if v.Kind == dfg.ValInput {
			bus = inBus[v.ID]
			n.SampleCycle[v.Name] = 0
		} else {
			bus = modBus[d.Alloc.ModuleOf[g.Value(v.ID).Def]]
			n.SampleCycle[v.Name] = d.Sched.Step[v.Def]
		}
		b.OutputWord("out_"+v.Name, bus)
		n.DataOut[v.Name] = bus
	}

	c, err := b.Done()
	if err != nil {
		return nil, err
	}
	// Back-end cleanup: constant folding and dead-logic sweep, as a logic
	// synthesizer would perform (constant coefficients collapse large
	// parts of their multipliers). Interface metadata is remapped.
	opt, remap, err := gates.Optimize(c)
	if err != nil {
		return nil, err
	}
	remapWord := func(w gates.Word) (gates.Word, error) {
		out := make(gates.Word, len(w))
		for i, id := range w {
			if remap[id] < 0 {
				return nil, fmt.Errorf("rtl: interface net %d optimized away", id)
			}
			out[i] = remap[id]
		}
		return out, nil
	}
	for name, w := range n.DataIn {
		nw, err := remapWord(w)
		if err != nil {
			return nil, err
		}
		n.DataIn[name] = nw
	}
	for name, w := range n.DataOut {
		nw, err := remapWord(w)
		if err != nil {
			return nil, err
		}
		n.DataOut[name] = nw
	}
	for i := range n.Ctrl {
		if n.Ctrl[i].PI >= 0 {
			n.Ctrl[i].PI = remap[n.Ctrl[i].PI]
		}
	}
	n.C = opt
	return n, nil
}

// buildPorts constructs the operand buses of a module, inserting one-hot
// muxes where a port has several sources.
func buildPorts(d *etpn.Design, b *gates.Builder, modNode, modID int, nodeBus func(int) (gates.Word, error), ctrl func(string, []int) int) (map[int]gates.Word, error) {
	type src struct {
		from  int
		steps []int
	}
	ports := map[int][]src{}
	for _, a := range d.ArcsInto(modNode) {
		ports[a.ToPort] = append(ports[a.ToPort], src{a.From, a.Steps})
	}
	out := map[int]gates.Word{}
	// Build ports in sorted order: the loop creates gates, so iterating the
	// map directly would let Go's randomized map order leak into the gate
	// numbering of the netlist (same function, different structure run to
	// run — and a different PODEM search trajectory).
	portIDs := make([]int, 0, len(ports))
	for port := range ports {
		portIDs = append(portIDs, port)
	}
	sort.Ints(portIDs)
	for _, port := range portIDs {
		srcs := ports[port]
		sort.Slice(srcs, func(i, j int) bool { return srcs[i].from < srcs[j].from })
		if len(srcs) == 1 {
			bus, err := nodeBus(srcs[0].from)
			if err != nil {
				return nil, err
			}
			out[port] = bus
			continue
		}
		sels := make([]int, len(srcs))
		buses := make([]gates.Word, len(srcs))
		for i, s := range srcs {
			bus, err := nodeBus(s.from)
			if err != nil {
				return nil, err
			}
			buses[i] = bus
			sels[i] = ctrl(fmt.Sprintf("sel_m%d_p%d_%s", modID, port, nodeLabel(d, s.from)), append([]int(nil), s.steps...))
		}
		out[port] = b.MuxOneHot(sels, buses)
	}
	return out, nil
}

// moduleKinds returns the distinct operation kinds of a module (sorted for
// determinism) and the control steps in which each kind executes.
func moduleKinds(d *etpn.Design, ops []dfg.NodeID) ([]dfg.OpKind, map[dfg.OpKind][]int) {
	steps := map[dfg.OpKind][]int{}
	var kinds []dfg.OpKind
	for _, op := range ops {
		k := d.G.Node(op).Kind
		if _, ok := steps[k]; !ok {
			kinds = append(kinds, k)
		}
		steps[k] = append(steps[k], d.Sched.Step[op])
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds, steps
}

func regIndex(d *etpn.Design, nodeID int) int {
	for _, r := range d.Alloc.Regs {
		if d.RegNode(r.ID) == nodeID {
			return r.ID
		}
	}
	panic("rtl: node is not a register")
}

func modIndex(d *etpn.Design, nodeID int) int {
	for _, m := range d.Alloc.Modules {
		if d.ModNode(m.ID) == nodeID {
			return m.ID
		}
	}
	panic("rtl: node is not a module")
}

func nodeLabel(d *etpn.Design, id int) string {
	nd := d.Nodes[id]
	switch nd.Kind {
	case etpn.KindRegister:
		return fmt.Sprintf("r%d", regIndex(d, id))
	case etpn.KindModule:
		return fmt.Sprintf("m%d", modIndex(d, id))
	case etpn.KindInPort:
		return "in_" + d.G.Value(nd.Value).Name
	case etpn.KindConst:
		return "c_" + d.G.Value(nd.Value).Name
	}
	return fmt.Sprintf("n%d", id)
}

// opName renders an operation kind as an identifier-safe token.
func opName(k dfg.OpKind) string {
	switch k {
	case dfg.OpAdd:
		return "add"
	case dfg.OpSub:
		return "sub"
	case dfg.OpMul:
		return "mul"
	case dfg.OpLt:
		return "lt"
	case dfg.OpGt:
		return "gt"
	case dfg.OpEq:
		return "eq"
	case dfg.OpAnd:
		return "and"
	case dfg.OpOr:
		return "or"
	case dfg.OpXor:
		return "xor"
	case dfg.OpNot:
		return "not"
	case dfg.OpMov:
		return "mov"
	default:
		return fmt.Sprintf("op%d", int(k))
	}
}
