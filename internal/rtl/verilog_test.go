package rtl

import (
	"strings"
	"testing"

	"repro/internal/dfg"
)

func TestVerilogStructure(t *testing.T) {
	g := dfg.Tseng(4)
	d := buildLeftEdge(t, g)
	n, err := Generate(d, 4, NormalMode)
	if err != nil {
		t.Fatal(err)
	}
	v := n.Verilog("tseng")
	for _, want := range []string{
		"module tseng (", "input clk, rst;", "endmodule",
		"always @(posedge clk)", "assign",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
	// Every DFF must appear in the always block with a reset mux.
	if got := strings.Count(v, "<= rst ? 1'b0 :"); got != len(n.C.DFFs) {
		t.Errorf("%d DFF assignments, want %d", got, len(n.C.DFFs))
	}
	// Each output appears as a port and an assign.
	for name := range n.DataOut {
		if !strings.Contains(v, "out_"+name) {
			t.Errorf("output %s missing from verilog", name)
		}
	}
	// No illegal identifier characters survive.
	for _, bad := range []string{"(*", "[*", "-"} {
		for _, line := range strings.Split(v, "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "wire") && strings.Contains(line, bad) {
				t.Errorf("illegal identifier in %q", line)
			}
		}
	}
}

func TestVerilogDeterministic(t *testing.T) {
	g := dfg.Ex(4)
	d := buildLeftEdge(t, g)
	n, err := Generate(d, 4, NormalMode)
	if err != nil {
		t.Fatal(err)
	}
	if n.Verilog("ex") != n.Verilog("ex") {
		t.Fatal("verilog emission not deterministic")
	}
}

func TestVerilogTestbench(t *testing.T) {
	g := dfg.Tseng(4)
	d := buildLeftEdge(t, g)
	n, err := Generate(d, 4, NormalMode)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]uint64{"a": 3, "b": 5, "c": 2}
	want, err := g.Interpret(4, in)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check the testbench's expectations against our own simulator
	// before emitting them.
	got, err := n.SimulatePass(in)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("simulator mismatch on %s", k)
		}
	}
	tb := n.VerilogTestbench("tseng", in, want)
	for _, wantStr := range []string{"module tseng_tb;", "$display(\"PASS\")", "$finish", ".clk(clk)", ".rst(rst)"} {
		if !strings.Contains(tb, wantStr) {
			t.Errorf("testbench missing %q", wantStr)
		}
	}
	// The testbench must check every output bit.
	checks := strings.Count(tb, "!==")
	wantChecks := 0
	for name := range n.DataOut {
		wantChecks += len(n.DataOut[name])
	}
	if checks != wantChecks {
		t.Errorf("%d bit checks, want %d", checks, wantChecks)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"in_a[0]": "in_a_0_",
		"r4[1]":   "r4_1_",
		"fsm_s2":  "fsm_s2",
		"9lives":  "n9lives",
		"":        "n",
		"ok_name": "ok_name",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
