package rtl

import (
	"fmt"

	"repro/internal/dfg"
	"repro/internal/logicsim"
)

// SimulatePass runs one full schedule pass of a NormalMode netlist at gate
// level: the data inputs are held constant, the FSM sequences the control
// lines, and each primary output is sampled at its valid cycle. It returns
// the output values by name — the gate-level counterpart of
// etpn.Design.Simulate and dfg.Graph.Interpret.
func (n *Netlist) SimulatePass(inputs map[string]uint64) (map[string]uint64, error) {
	if n.Mode != NormalMode {
		return nil, fmt.Errorf("rtl: SimulatePass requires a NormalMode netlist")
	}
	sim, err := logicsim.New(n.C)
	if err != nil {
		return nil, err
	}
	// Assemble the constant PI vector (lane 0 carries the pass).
	piPos := make(map[int]int, len(n.C.Inputs))
	for i, id := range n.C.Inputs {
		piPos[id] = i
	}
	pi := make([]uint64, len(n.C.Inputs))
	mask := dfg.Mask(n.Width)
	for name, bus := range n.DataIn {
		v, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("rtl: missing input %q", name)
		}
		words := logicsim.BusWords(v&mask, n.Width)
		for bit, g := range bus {
			pi[piPos[g]] = words[bit]
		}
	}
	// Output sample bookkeeping.
	poPos := make(map[int]int, len(n.C.Outputs))
	for i, id := range n.C.Outputs {
		poPos[id] = i
	}
	maxCycle := 0
	for _, cyc := range n.SampleCycle {
		if cyc > maxCycle {
			maxCycle = cyc
		}
	}
	out := map[string]uint64{}
	sim.Reset()
	for t := 0; t <= maxCycle; t++ {
		po := sim.Step(pi)
		for name, cyc := range n.SampleCycle {
			if cyc != t {
				continue
			}
			var v uint64
			for bit, g := range n.DataOut[name] {
				if po[poPos[g]]&1 != 0 {
					v |= 1 << uint(bit)
				}
			}
			out[name] = v
		}
	}
	return out, nil
}
