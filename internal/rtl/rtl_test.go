package rtl

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/sched"
)

func buildLeftEdge(t *testing.T, g *dfg.Graph) *etpn.Design {
	t.Helper()
	s, err := sched.NewProblem(g).ASAP()
	if err != nil {
		t.Fatal(err)
	}
	life := alloc.Lifetimes(g, s)
	regOf, n := alloc.RegisterLeftEdge(g, life)
	a := alloc.BindModules(g, s, sched.ExactClass, regOf, n)
	d, err := etpn.Build(g, s, a, life, etpn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateAllBenchmarks(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		d := buildLeftEdge(t, g)
		for _, mode := range []Mode{NormalMode, TestMode} {
			n, err := Generate(d, 8, mode)
			if err != nil {
				t.Fatalf("%s mode %d: %v", name, mode, err)
			}
			if err := n.C.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			if n.C.NumGates() == 0 || len(n.C.DFFs) == 0 {
				t.Errorf("%s: degenerate netlist %s", name, n.C.Stats())
			}
		}
	}
}

func TestTestModeExposesControlPIs(t *testing.T) {
	g := dfg.Ex(8)
	d := buildLeftEdge(t, g)
	tn, err := Generate(d, 8, TestMode)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := Generate(d, 8, NormalMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(tn.Ctrl) == 0 {
		t.Fatal("no control signals recorded")
	}
	if len(tn.Ctrl) != len(nn.Ctrl) {
		t.Errorf("modes disagree on control count: %d vs %d", len(tn.Ctrl), len(nn.Ctrl))
	}
	for _, cs := range tn.Ctrl {
		if cs.PI < 0 {
			t.Errorf("test-mode control %s has no PI", cs.Name)
		}
		if len(cs.ActiveSteps) == 0 {
			t.Errorf("control %s has no active steps", cs.Name)
		}
	}
	for _, cs := range nn.Ctrl {
		if cs.PI >= 0 {
			t.Errorf("normal-mode control %s should not be a PI", cs.Name)
		}
	}
	// Test mode has strictly more PIs (controls), same data width.
	if len(tn.C.Inputs) <= len(nn.C.Inputs) {
		t.Errorf("test mode PIs %d, normal mode %d", len(tn.C.Inputs), len(nn.C.Inputs))
	}
	// Normal mode has the FSM flops on top of the data registers.
	if len(nn.C.DFFs) <= len(tn.C.DFFs) {
		t.Errorf("normal mode DFFs %d, test mode %d", len(nn.C.DFFs), len(tn.C.DFFs))
	}
}

// The decisive integration test: gate-level normal-mode simulation equals
// the behavioural interpreter, for left-edge designs on every benchmark.
func TestGateLevelMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		d := buildLeftEdge(t, g)
		n, err := Generate(d, 8, NormalMode)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			in := map[string]uint64{}
			for _, v := range g.Inputs() {
				in[g.Value(v).Name] = rng.Uint64()
			}
			want, err := g.Interpret(8, in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := n.SimulatePass(in)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for k, w := range want {
				if got[k] != w {
					t.Fatalf("%s trial %d: output %s = %d, want %d", name, trial, k, got[k], w)
				}
			}
		}
	}
}

func TestSimulatePassRejectsTestMode(t *testing.T) {
	g := dfg.Tseng(8)
	d := buildLeftEdge(t, g)
	n, err := Generate(d, 8, TestMode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SimulatePass(map[string]uint64{}); err == nil {
		t.Fatal("expected mode error")
	}
}

func TestSimulatePassMissingInput(t *testing.T) {
	g := dfg.Tseng(8)
	d := buildLeftEdge(t, g)
	n, err := Generate(d, 8, NormalMode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SimulatePass(map[string]uint64{"a": 1}); err == nil {
		t.Fatal("expected missing-input error")
	}
}

func TestWidthScalesGateCount(t *testing.T) {
	g := dfg.Diffeq(8)
	d := buildLeftEdge(t, g)
	n4, err := Generate(d, 4, TestMode)
	if err != nil {
		t.Fatal(err)
	}
	n16, err := Generate(d, 16, TestMode)
	if err != nil {
		t.Fatal(err)
	}
	if n16.C.NumGates() <= 4*n4.C.NumGates() {
		t.Errorf("multiplier-heavy design should grow superlinearly: %d vs %d gates",
			n4.C.NumGates(), n16.C.NumGates())
	}
}

func TestCtrlNamesDeterministic(t *testing.T) {
	g := dfg.Dct(8)
	d := buildLeftEdge(t, g)
	n1, err := Generate(d, 8, TestMode)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Generate(d, 8, TestMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(n1.Ctrl) != len(n2.Ctrl) {
		t.Fatal("nondeterministic control count")
	}
	for i := range n1.Ctrl {
		if n1.Ctrl[i].Name != n2.Ctrl[i].Name {
			t.Fatalf("nondeterministic control order: %s vs %s", n1.Ctrl[i].Name, n2.Ctrl[i].Name)
		}
		if !strings.HasPrefix(n1.Ctrl[i].Name, "ld_") && !strings.HasPrefix(n1.Ctrl[i].Name, "sel_") && !strings.HasPrefix(n1.Ctrl[i].Name, "op_") {
			t.Errorf("unexpected control name %s", n1.Ctrl[i].Name)
		}
	}
}
