package alloc

import (
	"sort"

	"repro/internal/dfg"
	"repro/internal/sched"
)

// RegisterLeftEdge performs classic left-edge register allocation: values
// sorted by birth time are packed greedily into the first register whose
// current contents have all died. It minimizes register count for the
// given schedule.
func RegisterLeftEdge(g *dfg.Graph, life map[dfg.ValueID]Interval) (map[dfg.ValueID]int, int) {
	return registerLeftEdge(g, life, false)
}

// RegisterLeftEdgeTestable is the modified left-edge allocation used by
// Lee et al. [6,7] (the paper's Approaches 1 and 2): like the classic
// algorithm, but when several registers can accept a value it prefers one
// already holding a primary-input or primary-output variable, so that as
// many registers as possible contain an easily controlled or observed
// variable (Lee's first heuristic rule).
func RegisterLeftEdgeTestable(g *dfg.Graph, life map[dfg.ValueID]Interval) (map[dfg.ValueID]int, int) {
	return registerLeftEdge(g, life, true)
}

func registerLeftEdge(g *dfg.Graph, life map[dfg.ValueID]Interval, preferPIPO bool) (map[dfg.ValueID]int, int) {
	type ent struct {
		v  dfg.ValueID
		iv Interval
	}
	var vals []ent
	for v, iv := range life {
		vals = append(vals, ent{v, iv})
	}
	sort.Slice(vals, func(i, j int) bool {
		if vals[i].iv.Birth != vals[j].iv.Birth {
			return vals[i].iv.Birth < vals[j].iv.Birth
		}
		if vals[i].iv.Death != vals[j].iv.Death {
			return vals[i].iv.Death < vals[j].iv.Death
		}
		return vals[i].v < vals[j].v
	})
	isPIPO := func(v dfg.ValueID) bool {
		val := g.Value(v)
		return val.Kind == dfg.ValInput || val.IsOutput
	}
	regOf := map[dfg.ValueID]int{}
	var lastDeath []int
	var holdsPIPO []bool
	for _, e := range vals {
		chosen := -1
		for r := 0; r < len(lastDeath); r++ {
			if lastDeath[r] > e.iv.Birth {
				continue // still occupied
			}
			if chosen == -1 {
				chosen = r
				if !preferPIPO {
					break
				}
				continue
			}
			if preferPIPO && !holdsPIPO[chosen] && holdsPIPO[r] {
				chosen = r
			}
		}
		if chosen == -1 {
			chosen = len(lastDeath)
			lastDeath = append(lastDeath, 0)
			holdsPIPO = append(holdsPIPO, false)
		}
		regOf[e.v] = chosen
		lastDeath[chosen] = e.iv.Death
		holdsPIPO[chosen] = holdsPIPO[chosen] || isPIPO(e.v)
	}
	return regOf, len(lastDeath)
}

// BindModules binds scheduled operations to the minimum number of modules
// per class by left-edge packing over control steps: within each class,
// operations sorted by step go to the first module of that class free at
// that step. It returns a complete Allocation when combined with the
// given register assignment.
func BindModules(g *dfg.Graph, s sched.Schedule, class sched.ClassFunc, regOf map[dfg.ValueID]int, numRegs int) *Allocation {
	if class == nil {
		class = sched.ExactClass
	}
	a := &Allocation{ModuleOf: map[dfg.NodeID]int{}, RegOf: map[dfg.ValueID]int{}}
	byClass := map[string][]dfg.NodeID{}
	var classes []string
	for _, n := range g.Nodes() {
		c := class(n.Kind)
		if _, ok := byClass[c]; !ok {
			classes = append(classes, c)
		}
		byClass[c] = append(byClass[c], n.ID)
	}
	sort.Strings(classes)
	for _, c := range classes {
		ops := byClass[c]
		sort.Slice(ops, func(i, j int) bool {
			si, sj := s.Step[ops[i]], s.Step[ops[j]]
			if si != sj {
				return si < sj
			}
			return ops[i] < ops[j]
		})
		var mods []*ModuleGroup
		busy := map[int]map[int]bool{} // local module idx -> steps used
		for _, op := range ops {
			st := s.Step[op]
			placed := false
			for i, m := range mods {
				if !busy[i][st] {
					m.Ops = append(m.Ops, op)
					busy[i][st] = true
					placed = true
					break
				}
			}
			if !placed {
				mods = append(mods, &ModuleGroup{Class: c, Ops: []dfg.NodeID{op}})
				busy[len(mods)-1] = map[int]bool{st: true}
			}
		}
		for _, m := range mods {
			m.ID = len(a.Modules)
			a.Modules = append(a.Modules, m)
			for _, op := range m.Ops {
				a.ModuleOf[op] = m.ID
			}
		}
	}
	a.Regs = make([]*RegGroup, numRegs)
	for i := range a.Regs {
		a.Regs[i] = &RegGroup{ID: i}
	}
	var vids []dfg.ValueID
	for v := range regOf {
		vids = append(vids, v)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	for _, v := range vids {
		r := regOf[v]
		a.RegOf[v] = r
		a.Regs[r].Vals = append(a.Regs[r].Vals, v)
	}
	return a
}

// Connectivity scores how many data-path connections two modules share:
// common source registers and common destination registers of their
// operations. Conventional allocation (the CAMAD baseline, paper §3)
// merges the highest-connectivity pairs to minimize interconnect and
// multiplexers.
func Connectivity(g *dfg.Graph, a *Allocation, i, j int) int {
	srcs := func(m *ModuleGroup) map[int]bool {
		set := map[int]bool{}
		for _, op := range m.Ops {
			for _, v := range g.Node(op).In {
				if r, ok := a.RegOf[v]; ok {
					set[r] = true
				}
			}
		}
		return set
	}
	dsts := func(m *ModuleGroup) map[int]bool {
		set := map[int]bool{}
		for _, op := range m.Ops {
			if r, ok := a.RegOf[g.Node(op).Out]; ok {
				set[r] = true
			}
		}
		return set
	}
	score := 0
	si, sj := srcs(a.Modules[i]), srcs(a.Modules[j])
	for r := range si {
		if sj[r] {
			score++
		}
	}
	di, dj := dsts(a.Modules[i]), dsts(a.Modules[j])
	for r := range di {
		if dj[r] {
			score++
		}
	}
	return score
}

// RegConnectivity scores how many producers/consumers two registers
// share: merging high-connectivity registers minimizes mux inputs.
func RegConnectivity(g *dfg.Graph, a *Allocation, i, j int) int {
	writers := func(r *RegGroup) map[int]bool {
		set := map[int]bool{}
		for _, v := range r.Vals {
			if d := g.Value(v).Def; d != dfg.NoNode {
				set[a.ModuleOf[d]] = true
			}
		}
		return set
	}
	readers := func(r *RegGroup) map[int]bool {
		set := map[int]bool{}
		for _, v := range r.Vals {
			for _, u := range g.Value(v).Uses {
				set[a.ModuleOf[u]] = true
			}
		}
		return set
	}
	score := 0
	wi, wj := writers(a.Regs[i]), writers(a.Regs[j])
	for m := range wi {
		if wj[m] {
			score++
		}
	}
	ri, rj := readers(a.Regs[i]), readers(a.Regs[j])
	for m := range ri {
		if rj[m] {
			score++
		}
	}
	return score
}
