// Package alloc implements data-path allocation for high-level synthesis:
// variable lifetime analysis, classic and testability-modified left-edge
// register allocation, module binding, and the allocation state mutated by
// the paper's merger transformation.
package alloc

import (
	"fmt"

	"repro/internal/dfg"
	"repro/internal/sched"
)

// Interval is the storage lifetime of a value: it is written to its
// register at the end of control step Birth and must be held through step
// Death (its last read, or one step of residence for primary outputs).
// Storage is occupied during the half-open step range (Birth, Death].
type Interval struct {
	Birth int
	Death int
}

// Overlaps reports whether two storage intervals require simultaneous
// storage. A value dying in step s and a value born at the end of step s
// may share a register: the register loads the new value as the old one is
// read for the last time.
func Overlaps(a, b Interval) bool {
	return a.Birth < b.Death && b.Birth < a.Death
}

// Lifetimes computes the storage interval of every register-allocated
// value under schedule s. Constants are excluded (they are wired into the
// data path, not stored). Primary inputs are loaded from their port at the
// end of the step before their first use. Primary outputs are held for at
// least one step after production so they can be observed.
func Lifetimes(g *dfg.Graph, s sched.Schedule) map[dfg.ValueID]Interval {
	out := make(map[dfg.ValueID]Interval)
	for _, v := range g.Values() {
		if v.Kind == dfg.ValConst {
			continue
		}
		var birth int
		switch v.Kind {
		case dfg.ValInput:
			first := s.Len + 1
			for _, u := range v.Uses {
				if st := s.Step[u]; st < first {
					first = st
				}
			}
			if len(v.Uses) == 0 {
				continue // dead input: never stored
			}
			birth = first - 1
		case dfg.ValTemp:
			birth = s.Step[v.Def]
		}
		death := birth
		for _, u := range v.Uses {
			if st := s.Step[u]; st > death {
				death = st
			}
		}
		if v.IsOutput && death < birth+1 {
			death = birth + 1
		}
		if death == birth {
			// Value read only in the step right after production never
			// rests in storage across a boundary... it still needs a
			// register for one step to cross the clock edge.
			death = birth + 1
		}
		out[v.ID] = Interval{Birth: birth, Death: death}
	}
	return out
}

// SequentialDistance returns how many control steps separate the death of
// a and the birth of b; negative values mean the lifetimes overlap or abut
// in the other order. It is used by the lifetime-serialization transforms.
func SequentialDistance(a, b Interval) int { return b.Birth - a.Death }

// VerifyDisjoint checks that every pair of values sharing a register has
// disjoint lifetimes.
func VerifyDisjoint(g *dfg.Graph, life map[dfg.ValueID]Interval, regOf map[dfg.ValueID]int) error {
	byReg := map[int][]dfg.ValueID{}
	for v, r := range regOf {
		byReg[r] = append(byReg[r], v)
	}
	for r, vs := range byReg {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				a, aok := life[vs[i]]
				b, bok := life[vs[j]]
				if !aok || !bok {
					continue
				}
				if Overlaps(a, b) {
					return fmt.Errorf("alloc: values %s %v and %s %v overlap in register %d",
						g.Value(vs[i]).Name, a, g.Value(vs[j]).Name, b, r)
				}
			}
		}
	}
	return nil
}
