package alloc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/sched"
)

func asap(t *testing.T, g *dfg.Graph) sched.Schedule {
	t.Helper()
	s, err := sched.NewProblem(g).ASAP()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{2, 4}, Interval{4, 6}, false}, // abutting: may share
		{Interval{2, 4}, Interval{3, 6}, true},
		{Interval{1, 2}, Interval{1, 2}, true},
		{Interval{0, 5}, Interval{2, 3}, true},
		{Interval{5, 6}, Interval{1, 3}, false},
	}
	for _, c := range cases {
		if got := Overlaps(c.a, c.b); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Overlaps(c.b, c.a); got != c.want {
			t.Errorf("Overlaps not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestLifetimesDiffeq(t *testing.T) {
	g := dfg.Diffeq(8)
	s := asap(t, g)
	life := Lifetimes(g, s)
	// Constant k3 must not be stored.
	k3, _ := g.ValueByName("k3")
	if _, ok := life[k3]; ok {
		t.Error("constant k3 must not get a lifetime")
	}
	// Input x: used by N25 (step 1) and N26 (step 1) -> born 0, dies 1.
	x, _ := g.ValueByName("x")
	if life[x] != (Interval{0, 1}) {
		t.Errorf("x lifetime = %v, want {0 1}", life[x])
	}
	// u is used by N27@1, N30@3, N35@1 -> born 0, dies 3.
	u, _ := g.ValueByName("u")
	if life[u] != (Interval{0, 3}) {
		t.Errorf("u lifetime = %v, want {0 3}", life[u])
	}
	// Output u1 defined at step 4, no uses: held one step.
	u1, _ := g.ValueByName("u1")
	if life[u1] != (Interval{4, 5}) {
		t.Errorf("u1 lifetime = %v, want {4 5}", life[u1])
	}
}

func TestLifetimesDeadInputSkipped(t *testing.T) {
	g := dfg.New("d", 8)
	g.Input("unused")
	a := g.Input("a")
	b := g.Input("b")
	g.MarkOutput(g.Op(dfg.OpAdd, "s", a, b))
	s := asap(t, g)
	life := Lifetimes(g, s)
	un, _ := g.ValueByName("unused")
	if _, ok := life[un]; ok {
		t.Error("dead input must not be stored")
	}
}

func TestLeftEdgeMinimalAndDisjoint(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		s := asap(t, g)
		life := Lifetimes(g, s)
		regOf, n := RegisterLeftEdge(g, life)
		if err := VerifyDisjoint(g, life, regOf); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if n <= 0 || n > len(life) {
			t.Errorf("%s: register count %d out of range", name, n)
		}
		// Left-edge is optimal for interval packing: register count must
		// equal the max number of simultaneously live values.
		maxLive := 0
		for step := 0; step <= s.Len+1; step++ {
			live := 0
			for _, iv := range life {
				if iv.Birth < step && step <= iv.Death {
					live++
				}
			}
			if live > maxLive {
				maxLive = live
			}
		}
		if n != maxLive {
			t.Errorf("%s: left-edge used %d registers, max live = %d", name, n, maxLive)
		}
	}
}

func TestTestableLeftEdgeDisjointAndNoWorse(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		s := asap(t, g)
		life := Lifetimes(g, s)
		_, nPlain := RegisterLeftEdge(g, life)
		regOf, n := RegisterLeftEdgeTestable(g, life)
		if err := VerifyDisjoint(g, life, regOf); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if n != nPlain {
			t.Errorf("%s: testable left-edge used %d registers, plain used %d", name, n, nPlain)
		}
	}
}

func TestBindModulesLegal(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		s := asap(t, g)
		life := Lifetimes(g, s)
		regOf, n := RegisterLeftEdge(g, life)
		a := BindModules(g, s, sched.ExactClass, regOf, n)
		if err := a.Verify(g, s, sched.ExactClass, life); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Module count per class equals peak concurrency per class.
		peak := map[string]map[int]int{}
		for _, nd := range g.Nodes() {
			c := sched.ExactClass(nd.Kind)
			if peak[c] == nil {
				peak[c] = map[int]int{}
			}
			peak[c][s.Step[nd.ID]]++
		}
		for c, steps := range peak {
			max := 0
			for _, k := range steps {
				if k > max {
					max = k
				}
			}
			got := 0
			for _, m := range a.Modules {
				if m.Class == c {
					got++
				}
			}
			if got != max {
				t.Errorf("%s class %s: %d modules, want peak %d", name, c, got, max)
			}
		}
	}
}

func TestDefaultAllocation(t *testing.T) {
	g := dfg.Ex(8)
	s := asap(t, g)
	life := Lifetimes(g, s)
	a := Default(g, sched.ExactClass, life)
	if a.NumModules() != g.NumNodes() {
		t.Errorf("default modules = %d, want %d", a.NumModules(), g.NumNodes())
	}
	if a.NumRegs() != len(life) {
		t.Errorf("default registers = %d, want %d", a.NumRegs(), len(life))
	}
	if err := a.Verify(g, s, sched.ExactClass, life); err != nil {
		t.Fatal(err)
	}
}

func TestMergeModules(t *testing.T) {
	g := dfg.Ex(8)
	s := asap(t, g)
	life := Lifetimes(g, s)
	a := Default(g, sched.ExactClass, life)
	n21, _ := g.NodeByName("N21")
	n24, _ := g.NodeByName("N24")
	n25, _ := g.NodeByName("N25")
	before := a.NumModules()
	if err := a.MergeModules(a.ModuleOf[n21], a.ModuleOf[n24]); err != nil {
		t.Fatal(err)
	}
	if a.NumModules() != before-1 {
		t.Errorf("module count %d, want %d", a.NumModules(), before-1)
	}
	if a.ModuleOf[n21] != a.ModuleOf[n24] {
		t.Error("merged ops must share a module")
	}
	// Class-incompatible merger must fail (N21 *, N25 -).
	if err := a.MergeModules(a.ModuleOf[n21], a.ModuleOf[n25]); err == nil {
		t.Error("expected class-incompatibility error")
	}
	// Self merger must fail.
	if err := a.MergeModules(a.ModuleOf[n21], a.ModuleOf[n21]); err == nil {
		t.Error("expected self-merge error")
	}
	// Ids must remain dense and consistent.
	for idx, m := range a.Modules {
		if m.ID != idx {
			t.Errorf("module %d has id %d", idx, m.ID)
		}
		for _, op := range m.Ops {
			if a.ModuleOf[op] != idx {
				t.Errorf("ModuleOf[%v] = %d, want %d", op, a.ModuleOf[op], idx)
			}
		}
	}
}

func TestMergeRegs(t *testing.T) {
	g := dfg.Ex(8)
	s := asap(t, g)
	life := Lifetimes(g, s)
	a := Default(g, sched.ExactClass, life)
	va, _ := g.ValueByName("a")
	ve, _ := g.ValueByName("e")
	before := a.NumRegs()
	if err := a.MergeRegs(a.RegOf[va], a.RegOf[ve]); err != nil {
		t.Fatal(err)
	}
	if a.NumRegs() != before-1 {
		t.Errorf("register count %d, want %d", a.NumRegs(), before-1)
	}
	if a.RegOf[va] != a.RegOf[ve] {
		t.Error("merged values must share a register")
	}
	if err := a.MergeRegs(a.RegOf[va], a.RegOf[va]); err == nil {
		t.Error("expected self-merge error")
	}
}

func TestVerifyCatchesOverlapAfterMerge(t *testing.T) {
	g := dfg.Ex(8)
	s := asap(t, g)
	life := Lifetimes(g, s)
	a := Default(g, sched.ExactClass, life)
	// a and b are both inputs used at step 1: lifetimes overlap.
	va, _ := g.ValueByName("a")
	vb, _ := g.ValueByName("b")
	if err := a.MergeRegs(a.RegOf[va], a.RegOf[vb]); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(g, s, sched.ExactClass, life); err == nil {
		t.Fatal("expected overlap detection")
	}
}

func TestVerifyCatchesModuleStepClash(t *testing.T) {
	g := dfg.Ex(8)
	s := asap(t, g)
	life := Lifetimes(g, s)
	a := Default(g, sched.ExactClass, life)
	n21, _ := g.NodeByName("N21")
	n22, _ := g.NodeByName("N22") // both at step 1
	if err := a.MergeModules(a.ModuleOf[n21], a.ModuleOf[n22]); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(g, s, sched.ExactClass, life); err == nil {
		t.Fatal("expected step-clash detection")
	}
}

func TestAllocationString(t *testing.T) {
	g := dfg.Ex(8)
	s := asap(t, g)
	life := Lifetimes(g, s)
	regOf, n := RegisterLeftEdge(g, life)
	a := BindModules(g, s, sched.ExactClass, regOf, n)
	str := a.String(g)
	if !strings.Contains(str, "(*)") || !strings.Contains(str, "R:") {
		t.Errorf("allocation rendering incomplete:\n%s", str)
	}
}

func TestConnectivityScores(t *testing.T) {
	g := dfg.Ex(8)
	s := asap(t, g)
	life := Lifetimes(g, s)
	a := Default(g, sched.ExactClass, life)
	n21, _ := g.NodeByName("N21")
	n24, _ := g.NodeByName("N24")
	n22, _ := g.NodeByName("N22")
	// N21 (a*b) and N24 (a*d) share source register a.
	if got := Connectivity(g, a, a.ModuleOf[n21], a.ModuleOf[n24]); got < 1 {
		t.Errorf("N21/N24 connectivity = %d, want >= 1", got)
	}
	// N21 (a*b) and N22 (c*d) share nothing.
	if got := Connectivity(g, a, a.ModuleOf[n21], a.ModuleOf[n22]); got != 0 {
		t.Errorf("N21/N22 connectivity = %d, want 0", got)
	}
}

func TestRegConnectivity(t *testing.T) {
	g := dfg.Ex(8)
	s := asap(t, g)
	life := Lifetimes(g, s)
	a := Default(g, sched.ExactClass, life)
	// e (def N21) and u (def N24): after merging modules N21,N24 they share
	// a writer.
	n21, _ := g.NodeByName("N21")
	n24, _ := g.NodeByName("N24")
	if err := a.MergeModules(a.ModuleOf[n21], a.ModuleOf[n24]); err != nil {
		t.Fatal(err)
	}
	ve, _ := g.ValueByName("e")
	vu, _ := g.ValueByName("u")
	if got := RegConnectivity(g, a, a.RegOf[ve], a.RegOf[vu]); got < 1 {
		t.Errorf("e/u register connectivity = %d, want >= 1", got)
	}
}

// Property: left-edge allocation over random schedules is always disjoint
// and optimal.
func TestLeftEdgeRandom(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.New("r", 8)
		pool := []dfg.ValueID{g.Input("i0"), g.Input("i1")}
		for i := 0; i < 3+rng.Intn(15); i++ {
			a := pool[rng.Intn(len(pool))]
			b := pool[rng.Intn(len(pool))]
			pool = append(pool, g.Op(dfg.OpAdd, "", a, b))
		}
		for _, v := range g.Values() {
			if v.Kind == dfg.ValTemp && len(v.Uses) == 0 {
				g.MarkOutput(v.ID)
			}
		}
		s, err := sched.NewProblem(g).ASAP()
		if err != nil {
			return false
		}
		life := Lifetimes(g, s)
		regOf, _ := RegisterLeftEdge(g, life)
		return VerifyDisjoint(g, life, regOf) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialDistance(t *testing.T) {
	if d := SequentialDistance(Interval{0, 2}, Interval{4, 6}); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
	if d := SequentialDistance(Interval{4, 6}, Interval{0, 2}); d >= 0 {
		t.Errorf("reverse distance = %d, want negative", d)
	}
}
