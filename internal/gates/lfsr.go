package gates

// Built-in self-test primitives: linear-feedback shift registers for
// pattern generation and multiple-input signature registers for response
// compaction (the BIST methodology of Papachristou et al., the paper's
// reference [10]).

// lfsrTaps lists maximal-length Fibonacci LFSR tap positions (1-based bit
// indices whose XOR feeds the shift input) for the widths the data path
// generator uses. Sources: standard primitive-polynomial tables.
var lfsrTaps = map[int][]int{
	2:  {2, 1},
	3:  {3, 2},
	4:  {4, 3},
	5:  {5, 3},
	6:  {6, 5},
	7:  {7, 6},
	8:  {8, 6, 5, 4},
	9:  {9, 5},
	10: {10, 7},
	12: {12, 11, 10, 4},
	16: {16, 15, 13, 4},
	24: {24, 23, 22, 17},
	32: {32, 30, 26, 25},
}

// LFSRTaps returns the maximal-length tap set for the width, falling back
// to the next-larger tabulated width truncated to w (still a usable,
// though not necessarily maximal, sequence) for untabulated widths.
func LFSRTaps(w int) []int {
	if taps, ok := lfsrTaps[w]; ok {
		return taps
	}
	// Fallback: w, w-1 (not guaranteed maximal; adequate for test
	// stimulus diversity).
	return []int{w, w - 1}
}

// LFSRNext builds the next-state logic of a Fibonacci LFSR over the
// current state q (LSB first): state shifts toward the MSB and the XOR of
// the tap bits enters at bit 0. The all-zero state is escaped by a NOR
// gate (taps-XNOR variant), so the register self-starts from reset.
func (b *Builder) LFSRNext(q Word) Word {
	w := len(q)
	taps := LFSRTaps(w)
	fb := -1
	for _, t := range taps {
		bit := q[t-1]
		if fb < 0 {
			fb = bit
		} else {
			fb = b.Xor(fb, bit)
		}
	}
	// Zero-escape: XOR the feedback with NOR of all other bits, turning
	// the all-zero lockup state into a sequence member.
	if w > 1 {
		fb = b.Xor(fb, b.Nor(q[:w-1]...))
	}
	next := make(Word, w)
	next[0] = fb
	for i := 1; i < w; i++ {
		next[i] = q[i-1]
	}
	return next
}

// SplitMix64 is the standard splitmix64 finalizer: a cheap, well-mixed
// seed-derivation function. The BIST evaluator uses it to derive one
// distinct pseudorandom stream (and LFSR start state) per simulator lane
// from a single base seed.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// LFSRSeedWords spreads `lanes` distinct start states of a w-bit LFSR
// into per-bit simulator words: bit l of word i carries bit i of lane
// l's seed, the transposed layout a 64-way bit-parallel simulator loads
// into the register's DFF state. Lane 0 keeps the all-zero hardware
// reset state — the zero-escape of LFSRNext makes it a sequence member —
// so lane 0 always replays the unseeded session; lanes 1..lanes-1 start
// at SplitMix64-derived states, giving each simulator lane a distinct
// phase of the pattern sequence (the PPSFP lane-seeding scheme).
func LFSRSeedWords(w, lanes int, seed uint64) []uint64 {
	words := make([]uint64, w)
	if w <= 0 {
		return words
	}
	if lanes > 64 {
		lanes = 64
	}
	for l := 1; l < lanes; l++ {
		s := SplitMix64(seed + uint64(l))
		for i := 0; i < w; i++ {
			if s&(1<<uint(i)) != 0 {
				words[i] |= 1 << uint(l)
			}
		}
	}
	return words
}

// MISRNext builds the next-state logic of a multiple-input signature
// register: an LFSR whose every stage additionally absorbs one response
// bit. The final register contents are the test signature.
func (b *Builder) MISRNext(q, in Word) Word {
	shifted := b.LFSRNext(q)
	return b.XorW(shifted, in)
}
