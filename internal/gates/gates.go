// Package gates provides a gate-level netlist representation and builders
// for the arithmetic components the RTL generator instantiates: ripple-
// carry adders and subtracters, array multipliers, comparators, one-hot
// multiplexers and D flip-flops. The netlist is the substrate for the
// logic/fault simulator and the ATPG engine.
package gates

import "fmt"

// Kind enumerates gate types.
type Kind int

// Gate kinds. Input gates are primary inputs; Const0/Const1 are tie-offs.
// DFF is a D flip-flop: its single input is the D net and its output is Q.
const (
	KInput Kind = iota
	KConst0
	KConst1
	KBuf
	KNot
	KAnd
	KOr
	KNand
	KNor
	KXor
	KXnor
	KDFF
)

var kindNames = [...]string{"input", "const0", "const1", "buf", "not", "and", "or", "nand", "nor", "xor", "xnor", "dff"}

// String returns the gate-kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MaxFanin returns the maximum number of inputs the kind accepts
// (0 = none, -1 = unbounded).
func (k Kind) MaxFanin() int {
	switch k {
	case KInput, KConst0, KConst1:
		return 0
	case KBuf, KNot, KDFF:
		return 1
	default:
		return -1
	}
}

// Gate is one netlist node; its output net is identified by the gate id.
type Gate struct {
	ID   int
	Kind Kind
	In   []int
	Name string // diagnostic label; inputs and DFFs are always named
}

// Circuit is a synchronous gate-level netlist: combinational gates plus D
// flip-flops clocked by a single implicit clock.
type Circuit struct {
	Gates   []*Gate
	Inputs  []int // primary-input gate ids, in declaration order
	Outputs []int // observed nets, in declaration order
	DFFs    []int // flip-flop gate ids, in declaration order

	OutputNames []string
}

// NumGates returns the total gate count.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// Stats summarizes the netlist.
func (c *Circuit) Stats() string {
	comb := 0
	for _, g := range c.Gates {
		switch g.Kind {
		case KInput, KConst0, KConst1, KDFF:
		default:
			comb++
		}
	}
	return fmt.Sprintf("%d gates (%d combinational), %d PIs, %d POs, %d DFFs",
		len(c.Gates), comb, len(c.Inputs), len(c.Outputs), len(c.DFFs))
}

// Validate checks fanin arities and id consistency.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		if g.ID != i {
			return fmt.Errorf("gates: gate %d has inconsistent id %d", i, g.ID)
		}
		switch mf := g.Kind.MaxFanin(); {
		case mf == 0 && len(g.In) != 0:
			return fmt.Errorf("gates: %s gate %d must have no inputs", g.Kind, i)
		case mf == 1 && len(g.In) != 1:
			return fmt.Errorf("gates: %s gate %d must have exactly one input", g.Kind, i)
		case mf < 0 && len(g.In) < 2:
			return fmt.Errorf("gates: %s gate %d needs at least two inputs", g.Kind, i)
		}
		for _, in := range g.In {
			if in < 0 || in >= len(c.Gates) {
				return fmt.Errorf("gates: gate %d reads unknown net %d", i, in)
			}
		}
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= len(c.Gates) {
			return fmt.Errorf("gates: output references unknown net %d", o)
		}
	}
	if len(c.Outputs) != len(c.OutputNames) {
		return fmt.Errorf("gates: %d outputs but %d output names", len(c.Outputs), len(c.OutputNames))
	}
	return nil
}

// Levelize returns the combinational evaluation order: every non-DFF,
// non-source gate after all of its combinational predecessors. DFF outputs
// and primary inputs are sources. An error is returned if the
// combinational logic is cyclic.
func (c *Circuit) Levelize() ([]int, error) {
	state := make([]int, len(c.Gates)) // 0 unvisited, 1 visiting, 2 done
	var order []int
	var visit func(int) error
	visit = func(id int) error {
		switch state[id] {
		case 1:
			return fmt.Errorf("gates: combinational cycle through gate %d (%s)", id, c.Gates[id].Name)
		case 2:
			return nil
		}
		state[id] = 1
		g := c.Gates[id]
		if g.Kind != KDFF && g.Kind != KInput && g.Kind != KConst0 && g.Kind != KConst1 {
			for _, in := range g.In {
				if err := visit(in); err != nil {
					return err
				}
			}
		}
		state[id] = 2
		order = append(order, id)
		return nil
	}
	for id := range c.Gates {
		if err := visit(id); err != nil {
			return nil, err
		}
	}
	// DFF D-inputs must also be combinationally reachable.
	return order, nil
}

// Builder constructs circuits.
type Builder struct {
	c *Circuit
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder { return &Builder{c: &Circuit{}} }

// Done returns the built circuit after validation.
func (b *Builder) Done() (*Circuit, error) {
	if err := b.c.Validate(); err != nil {
		return nil, err
	}
	if _, err := b.c.Levelize(); err != nil {
		return nil, err
	}
	return b.c, nil
}

// Circuit returns the circuit under construction without validation.
func (b *Builder) Circuit() *Circuit { return b.c }

func (b *Builder) add(k Kind, name string, in ...int) int {
	g := &Gate{ID: len(b.c.Gates), Kind: k, In: in, Name: name}
	b.c.Gates = append(b.c.Gates, g)
	return g.ID
}

// Input declares a primary input.
func (b *Builder) Input(name string) int {
	id := b.add(KInput, name)
	b.c.Inputs = append(b.c.Inputs, id)
	return id
}

// Const returns a constant 0/1 net.
func (b *Builder) Const(v bool) int {
	if v {
		return b.add(KConst1, "1")
	}
	return b.add(KConst0, "0")
}

// DFF declares a flip-flop; its D input is wired later with SetD (state
// feedback needs forward references).
func (b *Builder) DFF(name string) int {
	id := b.add(KDFF, name)
	b.c.DFFs = append(b.c.DFFs, id)
	return id
}

// SetD wires the D input of flip-flop ff to net d.
func (b *Builder) SetD(ff, d int) {
	g := b.c.Gates[ff]
	if g.Kind != KDFF {
		panic(fmt.Sprintf("gates: SetD on non-DFF gate %d", ff))
	}
	g.In = []int{d}
}

// Output marks net g as a primary output with the given name.
func (b *Builder) Output(name string, g int) {
	b.c.Outputs = append(b.c.Outputs, g)
	b.c.OutputNames = append(b.c.OutputNames, name)
}

// Logic gate constructors.

// Not returns the complement of x.
func (b *Builder) Not(x int) int { return b.add(KNot, "", x) }

// Buf returns a buffered copy of x.
func (b *Builder) Buf(x int) int { return b.add(KBuf, "", x) }

// And returns the conjunction of the operands.
func (b *Builder) And(xs ...int) int { return b.add(KAnd, "", xs...) }

// Or returns the disjunction of the operands.
func (b *Builder) Or(xs ...int) int { return b.add(KOr, "", xs...) }

// Nand returns the complemented conjunction.
func (b *Builder) Nand(xs ...int) int { return b.add(KNand, "", xs...) }

// Nor returns the complemented disjunction.
func (b *Builder) Nor(xs ...int) int { return b.add(KNor, "", xs...) }

// Xor returns the exclusive or.
func (b *Builder) Xor(x, y int) int { return b.add(KXor, "", x, y) }

// Xnor returns the complemented exclusive or.
func (b *Builder) Xnor(x, y int) int { return b.add(KXnor, "", x, y) }

// Mux2 returns sel ? a : b (bitwise on single nets).
func (b *Builder) Mux2(sel, a, bb int) int {
	return b.Or(b.And(sel, a), b.And(b.Not(sel), bb))
}

// Depth returns the maximum combinational depth of the circuit in gates:
// the longest register-to-register (or port-to-port) path, a proxy for the
// minimum clock period of the synthesized data path.
func (c *Circuit) Depth() (int, error) {
	order, err := c.Levelize()
	if err != nil {
		return 0, err
	}
	depth := make([]int, len(c.Gates))
	max := 0
	for _, id := range order {
		g := c.Gates[id]
		switch g.Kind {
		case KInput, KConst0, KConst1, KDFF:
			depth[id] = 0
		default:
			d := 0
			for _, in := range g.In {
				if depth[in] > d {
					d = depth[in]
				}
			}
			depth[id] = d + 1
			if depth[id] > max {
				max = depth[id]
			}
		}
	}
	// Paths ending at DFF D inputs count too.
	for _, id := range c.DFFs {
		if in := c.Gates[id].In; len(in) == 1 && depth[in[0]] > max {
			max = depth[in[0]]
		}
	}
	return max, nil
}
