package gates

import (
	"testing"
	"testing/quick"

	"repro/internal/dfg"
)

// evalComb evaluates a purely combinational circuit on scalar inputs using
// a simple recursive evaluator (independent of logicsim, so the two
// implementations cross-check).
func evalComb(c *Circuit, in map[int]bool) map[int]bool {
	vals := map[int]bool{}
	var ev func(int) bool
	ev = func(id int) bool {
		if v, ok := vals[id]; ok {
			return v
		}
		g := c.Gates[id]
		var v bool
		switch g.Kind {
		case KInput:
			v = in[id]
		case KConst0:
			v = false
		case KConst1:
			v = true
		case KBuf:
			v = ev(g.In[0])
		case KNot:
			v = !ev(g.In[0])
		case KAnd, KNand:
			v = true
			for _, x := range g.In {
				v = v && ev(x)
			}
			if g.Kind == KNand {
				v = !v
			}
		case KOr, KNor:
			v = false
			for _, x := range g.In {
				v = v || ev(x)
			}
			if g.Kind == KNor {
				v = !v
			}
		case KXor:
			v = ev(g.In[0]) != ev(g.In[1])
		case KXnor:
			v = ev(g.In[0]) == ev(g.In[1])
		case KDFF:
			v = false // combinational tests have no DFFs
		}
		vals[id] = v
		return v
	}
	for _, o := range c.Outputs {
		ev(o)
	}
	return vals
}

func wordVal(c *Circuit, vals map[int]bool, w Word) uint64 {
	var out uint64
	for i, g := range w {
		if vals[g] {
			out |= 1 << uint(i)
		}
	}
	return out
}

func driveWord(in map[int]bool, w Word, v uint64) {
	for i, g := range w {
		in[g] = v&(1<<uint(i)) != 0
	}
}

// buildBinop builds a circuit computing the op and returns an evaluator.
func buildBinop(t *testing.T, kind dfg.OpKind, width int) func(a, b uint64) uint64 {
	t.Helper()
	bld := NewBuilder()
	x := bld.InputWord("x", width)
	y := bld.InputWord("y", width)
	res, err := bld.Op(kind, x, y)
	if err != nil {
		t.Fatal(err)
	}
	bld.OutputWord("r", res)
	c, err := bld.Done()
	if err != nil {
		t.Fatal(err)
	}
	return func(a, b uint64) uint64 {
		in := map[int]bool{}
		driveWord(in, x, a)
		driveWord(in, y, b)
		vals := evalComb(c, in)
		return wordVal(c, vals, res)
	}
}

func TestArithmeticExhaustive4Bit(t *testing.T) {
	for _, kind := range []dfg.OpKind{dfg.OpAdd, dfg.OpSub, dfg.OpMul, dfg.OpLt, dfg.OpGt, dfg.OpEq, dfg.OpAnd, dfg.OpOr, dfg.OpXor} {
		ev := buildBinop(t, kind, 4)
		for a := uint64(0); a < 16; a++ {
			for b := uint64(0); b < 16; b++ {
				want := dfg.Eval(kind, 4, a, b)
				if got := ev(a, b); got != want {
					t.Fatalf("%s: %d,%d = %d, want %d", kind, a, b, got, want)
				}
			}
		}
	}
}

func TestArithmeticRandom16Bit(t *testing.T) {
	for _, kind := range []dfg.OpKind{dfg.OpAdd, dfg.OpSub, dfg.OpMul, dfg.OpLt, dfg.OpEq} {
		ev := buildBinop(t, kind, 16)
		prop := func(a, b uint16) bool {
			return ev(uint64(a), uint64(b)) == dfg.Eval(kind, 16, uint64(a), uint64(b))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestUnaryOps(t *testing.T) {
	bld := NewBuilder()
	x := bld.InputWord("x", 8)
	n, err := bld.OpUnary(dfg.OpNot, x)
	if err != nil {
		t.Fatal(err)
	}
	m, err := bld.OpUnary(dfg.OpMov, x)
	if err != nil {
		t.Fatal(err)
	}
	bld.OutputWord("n", n)
	bld.OutputWord("m", m)
	c, err := bld.Done()
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]bool{}
	driveWord(in, x, 0xA5)
	vals := evalComb(c, in)
	if got := wordVal(c, vals, n); got != 0x5A {
		t.Errorf("not = %#x, want 0x5A", got)
	}
	if got := wordVal(c, vals, m); got != 0xA5 {
		t.Errorf("mov = %#x", got)
	}
}

func TestUnsupportedOps(t *testing.T) {
	bld := NewBuilder()
	x := bld.InputWord("x", 4)
	y := bld.InputWord("y", 4)
	if _, err := bld.Op(dfg.OpShl, x, y); err == nil {
		t.Error("expected error for variable shift")
	}
	if _, err := bld.OpUnary(dfg.OpAdd, x); err == nil {
		t.Error("expected error for binary op via OpUnary")
	}
}

func TestMuxOneHot(t *testing.T) {
	bld := NewBuilder()
	s0 := bld.Input("s0")
	s1 := bld.Input("s1")
	a := bld.InputWord("a", 4)
	b := bld.InputWord("b", 4)
	out := bld.MuxOneHot([]int{s0, s1}, []Word{a, b})
	bld.OutputWord("o", out)
	c, err := bld.Done()
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]bool{}
	driveWord(in, a, 0x9)
	driveWord(in, b, 0x6)
	in[s0], in[s1] = true, false
	if got := wordVal(c, evalComb(c, in), out); got != 0x9 {
		t.Errorf("sel a: got %#x", got)
	}
	in[s0], in[s1] = false, true
	if got := wordVal(c, evalComb(c, in), out); got != 0x6 {
		t.Errorf("sel b: got %#x", got)
	}
}

func TestMuxOneHotSingleChoicePassthrough(t *testing.T) {
	bld := NewBuilder()
	s := bld.Input("s")
	a := bld.InputWord("a", 2)
	out := bld.MuxOneHot([]int{s}, []Word{a})
	for i := range out {
		if out[i] != a[i] {
			t.Error("single-choice mux must be a passthrough")
		}
	}
}

func TestValidateCatchesBadFanin(t *testing.T) {
	bld := NewBuilder()
	x := bld.Input("x")
	bld.c.Gates = append(bld.c.Gates, &Gate{ID: len(bld.c.Gates), Kind: KAnd, In: []int{x}})
	if _, err := bld.Done(); err == nil {
		t.Fatal("expected fanin error")
	}
}

func TestLevelizeDetectsCombCycle(t *testing.T) {
	bld := NewBuilder()
	x := bld.Input("x")
	// g = AND(x, g) — a combinational cycle.
	g := &Gate{ID: len(bld.c.Gates), Kind: KAnd}
	g.In = []int{x, g.ID}
	bld.c.Gates = append(bld.c.Gates, g)
	if _, err := bld.c.Levelize(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestDFFWiring(t *testing.T) {
	bld := NewBuilder()
	d := bld.Input("d")
	ff := bld.DFF("q")
	bld.SetD(ff, d)
	bld.Output("q", ff)
	c, err := bld.Done()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.DFFs) != 1 {
		t.Fatalf("DFF count = %d", len(c.DFFs))
	}
	if c.Stats() == "" {
		t.Error("empty stats")
	}
}

func TestSetDOnNonDFFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bld := NewBuilder()
	x := bld.Input("x")
	bld.SetD(x, x)
}

func TestMultiplierGateCountQuadratic(t *testing.T) {
	count := func(w int) int {
		bld := NewBuilder()
		x := bld.InputWord("x", w)
		y := bld.InputWord("y", w)
		bld.Multiplier(x, y)
		return bld.Circuit().NumGates()
	}
	c4, c16 := count(4), count(16)
	if ratio := float64(c16) / float64(c4); ratio < 8 {
		t.Errorf("16-bit multiplier only %.1fx the 4-bit one; expected quadratic growth", ratio)
	}
}

func TestZeroExtend(t *testing.T) {
	bld := NewBuilder()
	x := bld.InputWord("x", 2)
	w := bld.ZeroExtend(x, 5)
	if len(w) != 5 {
		t.Fatalf("width %d", len(w))
	}
	if w2 := bld.ZeroExtend(w, 3); len(w2) != 3 {
		t.Fatalf("truncation width %d", len(w2))
	}
}

func TestDepth(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	n1 := b.And(x, y)   // depth 1
	n2 := b.Or(n1, x)   // depth 2
	n3 := b.Xor(n2, n1) // depth 3
	q := b.DFF("q")
	b.SetD(q, n3)
	b.Output("o", b.Not(q)) // depth 1 from the DFF
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
}

func TestDepthMultiplierGrowsWithWidth(t *testing.T) {
	depth := func(w int) int {
		b := NewBuilder()
		x := b.InputWord("x", w)
		y := b.InputWord("y", w)
		b.OutputWord("p", b.Multiplier(x, y))
		c, err := b.Done()
		if err != nil {
			t.Fatal(err)
		}
		d, err := c.Depth()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if !(depth(8) > depth(4)) {
		t.Error("multiplier depth must grow with width")
	}
}

// LFSRSeedWords packs per-lane seeds transposed: bit l of word i must be
// bit i of lane l's SplitMix64-derived seed, lane 0 must stay at the
// hardware reset state, and seeds must respect the register width.
func TestLFSRSeedWords(t *testing.T) {
	const w, lanes = 4, 64
	words := LFSRSeedWords(w, lanes, 1998)
	if len(words) != w {
		t.Fatalf("%d words for a %d-bit register", len(words), w)
	}
	laneSeed := func(l int) uint64 {
		var s uint64
		for i := 0; i < w; i++ {
			if words[i]&(1<<uint(l)) != 0 {
				s |= 1 << uint(i)
			}
		}
		return s
	}
	if laneSeed(0) != 0 {
		t.Errorf("lane 0 seed %#x, want the all-zero reset state", laneSeed(0))
	}
	for l := 1; l < lanes; l++ {
		want := SplitMix64(1998+uint64(l)) & (1<<w - 1)
		if laneSeed(l) != want {
			t.Errorf("lane %d seed %#x, want %#x", l, laneSeed(l), want)
		}
	}
	// Distinct base seeds give distinct lane seeds (mixing sanity).
	other := LFSRSeedWords(w, lanes, 1999)
	same := true
	for i := range words {
		if words[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("different base seeds produced identical seed words")
	}
	// Degenerate widths and lane counts must not panic.
	if got := LFSRSeedWords(0, 64, 1); len(got) != 0 {
		t.Errorf("width 0: %v", got)
	}
	for _, word := range LFSRSeedWords(3, 1, 7) {
		if word != 0 {
			t.Error("single-lane seeding must keep the reset state")
		}
	}
}
