package gates

import (
	"fmt"

	"repro/internal/dfg"
)

// Word is a bit vector of nets, least-significant bit first.
type Word []int

// InputWord declares a w-bit primary-input bus named name[0..w-1].
func (b *Builder) InputWord(name string, w int) Word {
	word := make(Word, w)
	for i := range word {
		word[i] = b.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return word
}

// ConstWord returns a w-bit constant.
func (b *Builder) ConstWord(v uint64, w int) Word {
	word := make(Word, w)
	for i := range word {
		word[i] = b.Const(v&(1<<uint(i)) != 0)
	}
	return word
}

// DFFWord declares a w-bit register; wire with SetDWord.
func (b *Builder) DFFWord(name string, w int) Word {
	word := make(Word, w)
	for i := range word {
		word[i] = b.DFF(fmt.Sprintf("%s[%d]", name, i))
	}
	return word
}

// SetDWord wires a register's D inputs.
func (b *Builder) SetDWord(ff, d Word) {
	if len(ff) != len(d) {
		panic("gates: SetDWord width mismatch")
	}
	for i := range ff {
		b.SetD(ff[i], d[i])
	}
}

// OutputWord marks a bus as primary outputs name[i].
func (b *Builder) OutputWord(name string, w Word) {
	for i, g := range w {
		b.Output(fmt.Sprintf("%s[%d]", name, i), g)
	}
}

// NotW complements every bit.
func (b *Builder) NotW(x Word) Word {
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Not(x[i])
	}
	return out
}

func (b *Builder) bitwise(f func(int, int) int, x, y Word) Word {
	if len(x) != len(y) {
		panic("gates: width mismatch")
	}
	out := make(Word, len(x))
	for i := range x {
		out[i] = f(x[i], y[i])
	}
	return out
}

// AndW is the bitwise conjunction.
func (b *Builder) AndW(x, y Word) Word {
	return b.bitwise(func(p, q int) int { return b.And(p, q) }, x, y)
}

// OrW is the bitwise disjunction.
func (b *Builder) OrW(x, y Word) Word {
	return b.bitwise(func(p, q int) int { return b.Or(p, q) }, x, y)
}

// XorW is the bitwise exclusive or.
func (b *Builder) XorW(x, y Word) Word {
	return b.bitwise(func(p, q int) int { return b.Xor(p, q) }, x, y)
}

// Mux2W returns sel ? a : b on buses.
func (b *Builder) Mux2W(sel int, x, y Word) Word {
	return b.bitwise(func(p, q int) int { return b.Mux2(sel, p, q) }, x, y)
}

// MuxOneHot selects among choices with one-hot select nets: the output is
// OR over i of (sel[i] AND choice[i]). Exactly one select must be active
// in normal operation; the structure matches the one-hot transfer enables
// of the ETPN control part.
func (b *Builder) MuxOneHot(sels []int, choices []Word) Word {
	if len(sels) != len(choices) || len(choices) == 0 {
		panic("gates: MuxOneHot arity mismatch")
	}
	if len(choices) == 1 {
		return choices[0]
	}
	w := len(choices[0])
	out := make(Word, w)
	for bit := 0; bit < w; bit++ {
		terms := make([]int, len(choices))
		for i := range choices {
			terms[i] = b.And(sels[i], choices[i][bit])
		}
		out[bit] = b.Or(terms...)
	}
	return out
}

// fullAdder returns (sum, carry).
func (b *Builder) fullAdder(x, y, cin int) (int, int) {
	s1 := b.Xor(x, y)
	sum := b.Xor(s1, cin)
	carry := b.Or(b.And(x, y), b.And(s1, cin))
	return sum, carry
}

// Adder returns x + y + cin as a ripple-carry adder, with the carry out.
func (b *Builder) Adder(x, y Word, cin int) (Word, int) {
	if len(x) != len(y) {
		panic("gates: width mismatch")
	}
	out := make(Word, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out, c
}

// Subtractor returns x - y (two's complement: x + ^y + 1) and the borrow
// complement (carry out; 1 means x >= y for unsigned operands).
func (b *Builder) Subtractor(x, y Word) (Word, int) {
	return b.Adder(x, b.NotW(y), b.Const(true))
}

// Multiplier returns the low len(x) bits of x*y as an array multiplier:
// len(y) partial products summed by ripple-carry rows. This is the
// quadratic-area structure the cost library models.
func (b *Builder) Multiplier(x, y Word) Word {
	w := len(x)
	if len(y) != w {
		panic("gates: width mismatch")
	}
	zero := b.Const(false)
	acc := make(Word, w)
	for i := range acc {
		acc[i] = b.And(x[i], y[0])
	}
	for row := 1; row < w; row++ {
		// Partial product of x shifted left by row, masked by y[row],
		// added into acc; only bits < w are kept.
		pp := make(Word, w)
		for i := 0; i < w; i++ {
			if i < row {
				pp[i] = zero
			} else {
				pp[i] = b.And(x[i-row], y[row])
			}
		}
		acc, _ = b.Adder(acc, pp, zero)
	}
	return acc
}

// LessThan returns the single net x < y (unsigned).
func (b *Builder) LessThan(x, y Word) int {
	// x < y iff borrow out of x - y, i.e. NOT carry.
	_, carry := b.Subtractor(x, y)
	return b.Not(carry)
}

// Equal returns the single net x == y.
func (b *Builder) Equal(x, y Word) int {
	terms := make([]int, len(x))
	for i := range x {
		terms[i] = b.Xnor(x[i], y[i])
	}
	if len(terms) == 1 {
		return terms[0]
	}
	return b.And(terms...)
}

// ZeroExtend returns a Word of width w whose low bits are x.
func (b *Builder) ZeroExtend(x Word, w int) Word {
	if len(x) >= w {
		return x[:w]
	}
	out := make(Word, w)
	copy(out, x)
	zero := b.Const(false)
	for i := len(x); i < w; i++ {
		out[i] = zero
	}
	return out
}

// Op instantiates the data-path operation kind on two operand buses,
// returning the result bus. Comparison results are zero-extended to the
// operand width, matching dfg.Eval. Shift operations require a constant
// shift amount and are provided by OpConstShift.
func (b *Builder) Op(kind dfg.OpKind, x, y Word) (Word, error) {
	zero := b.Const(false)
	switch kind {
	case dfg.OpAdd:
		s, _ := b.Adder(x, y, zero)
		return s, nil
	case dfg.OpSub:
		s, _ := b.Subtractor(x, y)
		return s, nil
	case dfg.OpMul:
		return b.Multiplier(x, y), nil
	case dfg.OpLt:
		return b.ZeroExtend(Word{b.LessThan(x, y)}, len(x)), nil
	case dfg.OpGt:
		return b.ZeroExtend(Word{b.LessThan(y, x)}, len(x)), nil
	case dfg.OpEq:
		return b.ZeroExtend(Word{b.Equal(x, y)}, len(x)), nil
	case dfg.OpAnd:
		return b.AndW(x, y), nil
	case dfg.OpOr:
		return b.OrW(x, y), nil
	case dfg.OpXor:
		return b.XorW(x, y), nil
	default:
		return nil, fmt.Errorf("gates: operation %s not supported in hardware generation", kind)
	}
}

// OpUnary instantiates a unary operation.
func (b *Builder) OpUnary(kind dfg.OpKind, x Word) (Word, error) {
	switch kind {
	case dfg.OpNot:
		return b.NotW(x), nil
	case dfg.OpMov:
		return x, nil
	default:
		return nil, fmt.Errorf("gates: unary operation %s not supported", kind)
	}
}
