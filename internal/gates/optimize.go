package gates

import "fmt"

// Optimize performs the netlist cleanup a logic-synthesis back end would:
// constant folding (an AND with a tied-0 input is a tie-0, an XOR with a
// tied-0 input is a buffer, ...), buffer elision, and dead-logic removal.
// The cleanup matters for test generation: faults on tied logic are
// untestable by construction and would depress fault-coverage figures that
// real tools never see.
//
// Primary inputs are always preserved, in order, so the circuit interface
// is unchanged. The returned map gives the new net id of every old gate,
// or -1 if the gate was removed as dead.
func Optimize(c *Circuit) (*Circuit, []int, error) {
	order, err := c.Levelize()
	if err != nil {
		return nil, nil, err
	}
	b := NewBuilder()
	remap := make([]int, len(c.Gates))
	for i := range remap {
		remap[i] = -1
	}
	// Shared constants, created lazily.
	constID := [2]int{-1, -1}
	getConst := func(v bool) int {
		k := 0
		if v {
			k = 1
		}
		if constID[k] < 0 {
			constID[k] = b.Const(v)
		}
		return constID[k]
	}
	isConst := func(id int) (bool, bool) {
		switch b.c.Gates[id].Kind {
		case KConst0:
			return false, true
		case KConst1:
			return true, true
		}
		return false, false
	}
	// PIs first (interface order), then DFFs (feedback forward refs).
	for _, id := range c.Inputs {
		remap[id] = b.Input(c.Gates[id].Name)
	}
	for _, id := range c.DFFs {
		remap[id] = b.DFF(c.Gates[id].Name)
	}
	newNot := func(x int) int {
		if v, ok := isConst(x); ok {
			return getConst(!v)
		}
		return b.Not(x)
	}
	for _, id := range order {
		if remap[id] >= 0 {
			continue // PI or DFF
		}
		g := c.Gates[id]
		ins := make([]int, len(g.In))
		for i, in := range g.In {
			if remap[in] < 0 {
				return nil, nil, fmt.Errorf("gates: optimize saw use before def at gate %d", id)
			}
			ins[i] = remap[in]
		}
		switch g.Kind {
		case KConst0:
			remap[id] = getConst(false)
		case KConst1:
			remap[id] = getConst(true)
		case KBuf:
			remap[id] = ins[0]
		case KNot:
			remap[id] = newNot(ins[0])
		case KAnd, KNand, KOr, KNor:
			// AND semantics with controlling value cv and identity iv;
			// OR-family is the dual.
			cv := false // controlling value for AND
			if g.Kind == KOr || g.Kind == KNor {
				cv = true
			}
			invert := g.Kind == KNand || g.Kind == KNor
			var live []int
			fold := false
			for _, in := range ins {
				if v, ok := isConst(in); ok {
					if v == cv {
						fold = true
						break
					}
					continue // identity input: drop
				}
				live = append(live, in)
			}
			switch {
			case fold:
				// A controlling input pins the output to cv (inverted for
				// the complemented forms).
				remap[id] = getConst(cv != invert)
			case len(live) == 0:
				remap[id] = getConst(!cv != invert)
			case len(live) == 1:
				if invert {
					remap[id] = newNot(live[0])
				} else {
					remap[id] = live[0]
				}
			default:
				switch g.Kind {
				case KAnd:
					remap[id] = b.And(live...)
				case KNand:
					remap[id] = b.Nand(live...)
				case KOr:
					remap[id] = b.Or(live...)
				case KNor:
					remap[id] = b.Nor(live...)
				}
			}
		case KXor, KXnor:
			a, bb := ins[0], ins[1]
			va, oka := isConst(a)
			vb, okb := isConst(bb)
			inv := g.Kind == KXnor
			switch {
			case oka && okb:
				remap[id] = getConst((va != vb) != inv)
			case oka:
				if va != inv {
					remap[id] = newNot(bb)
				} else {
					remap[id] = bb
				}
			case okb:
				if vb != inv {
					remap[id] = newNot(a)
				} else {
					remap[id] = a
				}
			default:
				if g.Kind == KXor {
					remap[id] = b.Xor(a, bb)
				} else {
					remap[id] = b.Xnor(a, bb)
				}
			}
		case KDFF, KInput:
			// handled above
		}
	}
	// Wire DFF D inputs.
	for _, id := range c.DFFs {
		d := c.Gates[id].In
		if len(d) != 1 {
			return nil, nil, fmt.Errorf("gates: DFF %d unwired", id)
		}
		if remap[d[0]] < 0 {
			return nil, nil, fmt.Errorf("gates: DFF %d D-net dropped", id)
		}
		b.SetD(remap[id], remap[d[0]])
	}
	// Outputs.
	for i, o := range c.Outputs {
		b.Output(c.OutputNames[i], remap[o])
	}
	pruned, prunedMap, err := sweepDead(b.c)
	if err != nil {
		return nil, nil, err
	}
	// Compose the two maps.
	final := make([]int, len(c.Gates))
	for i := range final {
		if remap[i] < 0 {
			final[i] = -1
		} else {
			final[i] = prunedMap[remap[i]]
		}
	}
	if err := pruned.Validate(); err != nil {
		return nil, nil, err
	}
	if _, err := pruned.Levelize(); err != nil {
		return nil, nil, err
	}
	return pruned, final, nil
}

// sweepDead removes gates with no path to a primary output, keeping all
// primary inputs (the interface) and any flip-flop still referenced.
func sweepDead(c *Circuit) (*Circuit, []int, error) {
	live := make([]bool, len(c.Gates))
	var stack []int
	push := func(id int) {
		if !live[id] {
			live[id] = true
			stack = append(stack, id)
		}
	}
	for _, o := range c.Outputs {
		push(o)
	}
	for _, id := range c.Inputs {
		push(id)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range c.Gates[id].In {
			push(in)
		}
	}
	remap := make([]int, len(c.Gates))
	out := &Circuit{}
	for i, g := range c.Gates {
		if !live[i] {
			remap[i] = -1
			continue
		}
		ng := &Gate{ID: len(out.Gates), Kind: g.Kind, Name: g.Name}
		remap[i] = ng.ID
		out.Gates = append(out.Gates, ng)
	}
	for i, g := range c.Gates {
		if !live[i] {
			continue
		}
		ng := out.Gates[remap[i]]
		for _, in := range g.In {
			if remap[in] < 0 {
				return nil, nil, fmt.Errorf("gates: live gate %d reads dead net %d", i, in)
			}
			ng.In = append(ng.In, remap[in])
		}
	}
	for _, id := range c.Inputs {
		out.Inputs = append(out.Inputs, remap[id])
	}
	for _, id := range c.DFFs {
		if remap[id] >= 0 {
			out.DFFs = append(out.DFFs, remap[id])
		}
	}
	for i, o := range c.Outputs {
		out.Outputs = append(out.Outputs, remap[o])
		out.OutputNames = append(out.OutputNames, c.OutputNames[i])
	}
	return out, remap, nil
}
