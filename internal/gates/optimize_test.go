package gates

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randCircuit builds a random combinational circuit over nIn inputs with
// some constants mixed in, returning the builder-completed circuit.
func randCircuit(seed int64, nIn, nGates int) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	var nets []int
	for i := 0; i < nIn; i++ {
		nets = append(nets, b.Input(""))
	}
	nets = append(nets, b.Const(false), b.Const(true))
	pick := func() int { return nets[rng.Intn(len(nets))] }
	for i := 0; i < nGates; i++ {
		var g int
		switch rng.Intn(7) {
		case 0:
			g = b.And(pick(), pick())
		case 1:
			g = b.Or(pick(), pick())
		case 2:
			g = b.Nand(pick(), pick())
		case 3:
			g = b.Nor(pick(), pick())
		case 4:
			g = b.Xor(pick(), pick())
		case 5:
			g = b.Xnor(pick(), pick())
		default:
			g = b.Not(pick())
		}
		nets = append(nets, g)
	}
	for i := 0; i < 4; i++ {
		b.Output("", pick())
	}
	c, err := b.Done()
	if err != nil {
		panic(err)
	}
	return c
}

// evalAll evaluates a combinational circuit on one input assignment.
func evalAll(c *Circuit, in []bool) []bool {
	vals := make([]bool, len(c.Gates))
	order, err := c.Levelize()
	if err != nil {
		panic(err)
	}
	inIx := map[int]int{}
	for i, id := range c.Inputs {
		inIx[id] = i
	}
	for _, id := range order {
		g := c.Gates[id]
		switch g.Kind {
		case KInput:
			vals[id] = in[inIx[id]]
		case KConst0:
			vals[id] = false
		case KConst1:
			vals[id] = true
		case KBuf, KDFF:
			if len(g.In) > 0 {
				vals[id] = vals[g.In[0]]
			}
		case KNot:
			vals[id] = !vals[g.In[0]]
		case KAnd, KNand:
			v := true
			for _, x := range g.In {
				v = v && vals[x]
			}
			vals[id] = v != (g.Kind == KNand)
		case KOr, KNor:
			v := false
			for _, x := range g.In {
				v = v || vals[x]
			}
			vals[id] = v != (g.Kind == KNor)
		case KXor:
			vals[id] = vals[g.In[0]] != vals[g.In[1]]
		case KXnor:
			vals[id] = vals[g.In[0]] == vals[g.In[1]]
		}
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = vals[o]
	}
	return out
}

// Optimize must preserve the function exactly, for every input pattern of
// random constant-laden circuits.
func TestOptimizePreservesFunction(t *testing.T) {
	prop := func(seed int64) bool {
		c := randCircuit(seed, 5, 30)
		opt, _, err := Optimize(c)
		if err != nil {
			return false
		}
		if len(opt.Inputs) != len(c.Inputs) {
			return false
		}
		for pattern := 0; pattern < 32; pattern++ {
			in := make([]bool, 5)
			for i := range in {
				in[i] = pattern&(1<<uint(i)) != 0
			}
			a := evalAll(c, in)
			b := evalAll(opt, in)
			for k := range a {
				if a[k] != b[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeShrinksConstantLogic(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	zero := b.Const(false)
	one := b.Const(true)
	// A cone of constant-fed logic that all folds away.
	a1 := b.And(x, zero) // = 0
	o1 := b.Or(a1, one)  // = 1
	x1 := b.Xor(o1, one) // = 0
	fin := b.Or(x, x1)   // = x
	b.Output("y", fin)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	opt, remap, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	// y must now be the input directly (plus possibly a const gate).
	if remap[fin] != remap[x] {
		t.Errorf("OR(x, 0) did not fold to x: %d vs %d", remap[fin], remap[x])
	}
	if opt.NumGates() >= c.NumGates() {
		t.Errorf("no shrink: %d -> %d gates", c.NumGates(), opt.NumGates())
	}
}

func TestOptimizeKeepsSequentialBehaviour(t *testing.T) {
	// q <= XOR(q, 1) toggles every cycle; optimization folds XOR(q,1) to
	// NOT(q) and must keep the toggle.
	b := NewBuilder()
	q := b.DFF("q")
	one := b.Const(true)
	b.SetD(q, b.Xor(q, one))
	b.Output("q", q)
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.DFFs) != 1 {
		t.Fatalf("DFF lost: %d", len(opt.DFFs))
	}
	// Simulate 4 cycles by hand: q = 0,1,0,1.
	state := false
	for cyc := 0; cyc < 4; cyc++ {
		vals := make([]bool, len(opt.Gates))
		order, _ := opt.Levelize()
		for _, id := range order {
			g := opt.Gates[id]
			switch g.Kind {
			case KDFF:
				vals[id] = state
			case KConst1:
				vals[id] = true
			case KNot:
				vals[id] = !vals[g.In[0]]
			case KXor:
				vals[id] = vals[g.In[0]] != vals[g.In[1]]
			case KBuf:
				vals[id] = vals[g.In[0]]
			}
		}
		if got := vals[opt.Outputs[0]]; got != (cyc%2 == 1) == false && got != (cyc%2 == 1) {
			_ = got
		}
		if vals[opt.Outputs[0]] != state {
			t.Fatalf("cycle %d: output %v, state %v", cyc, vals[opt.Outputs[0]], state)
		}
		state = vals[opt.Gates[opt.DFFs[0]].In[0]]
	}
	if state != false { // after 4 toggles back to 0
		t.Errorf("toggle broken: final state %v", state)
	}
}

func TestOptimizeDropsDeadLogic(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	_ = b.And(x, y) // dead
	b.Output("o", b.Or(x, y))
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	opt, remap, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	dead := 0
	for _, m := range remap {
		if m < 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Error("dead AND gate survived")
	}
	if len(opt.Inputs) != 2 {
		t.Error("inputs must always survive")
	}
}
