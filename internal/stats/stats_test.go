package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAndTimers(t *testing.T) {
	s := New()
	s.Add("cache.build.hit", 3)
	s.Add("cache.build.miss", 1)
	s.Add("cache.build.hit", 1)
	if got := s.Value("cache.build.hit"); got != 4 {
		t.Errorf("hit = %d, want 4", got)
	}
	if got := s.Value("never.written"); got != 0 {
		t.Errorf("unwritten counter = %d, want 0", got)
	}
	if r := s.HitRate("cache.build"); r != 0.8 {
		t.Errorf("hit rate = %f, want 0.8", r)
	}
	if r := s.HitRate("cache.sched"); r != 0 {
		t.Errorf("unconsulted hit rate = %f, want 0", r)
	}
	stop := s.Time("time.x")
	time.Sleep(time.Millisecond)
	stop()
	if s.Duration("time.x") <= 0 {
		t.Error("timer recorded nothing")
	}
	out := s.String()
	for _, want := range []string{"cache.build.hit", "cache.build.miss", "time.x", "cache.build.hitrate", "80.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

// A nil collector must be inert: every method callable, zero values out.
func TestNilStats(t *testing.T) {
	var s *Stats
	s.Add("x", 1)
	s.Time("y")()
	if s.Value("x") != 0 || s.Duration("y") != 0 || s.HitRate("z") != 0 || s.String() != "" {
		t.Error("nil Stats not inert")
	}
	if got := s.Counters(); len(got) != 0 {
		t.Errorf("nil Counters() = %v", got)
	}
}

// The collector is shared by the tie-policy fan-out and the experiment
// harness: concurrent writers must not lose increments (run with -race).
func TestConcurrentAdd(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add("n", 1)
				s.Time("t")()
			}
		}()
	}
	wg.Wait()
	if got := s.Value("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
}
