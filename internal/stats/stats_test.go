package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAndTimers(t *testing.T) {
	s := New()
	s.Add("cache.build.hit", 3)
	s.Add("cache.build.miss", 1)
	s.Add("cache.build.hit", 1)
	if got := s.Value("cache.build.hit"); got != 4 {
		t.Errorf("hit = %d, want 4", got)
	}
	if got := s.Value("never.written"); got != 0 {
		t.Errorf("unwritten counter = %d, want 0", got)
	}
	if r := s.HitRate("cache.build"); r != 0.8 {
		t.Errorf("hit rate = %f, want 0.8", r)
	}
	if r := s.HitRate("cache.sched"); r != 0 {
		t.Errorf("unconsulted hit rate = %f, want 0", r)
	}
	stop := s.Time("time.x")
	time.Sleep(time.Millisecond)
	stop()
	if s.Duration("time.x") <= 0 {
		t.Error("timer recorded nothing")
	}
	out := s.String()
	for _, want := range []string{"cache.build.hit", "cache.build.miss", "time.x", "cache.build.hitrate", "80.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

// WriteText is the /metrics exposition consumed by scrapers and the CLIs'
// -stats dump: its output for a fixed collector state is pinned byte for
// byte so a format drift breaks this test, not a dashboard.
func TestWriteTextFormatStability(t *testing.T) {
	s := New()
	s.Add("cache.build.hit", 3)
	s.Add("cache.build.miss", 1)
	s.Add("server.jobs.run", 7)
	s.mu.Lock()
	s.timers["time.sched"] = 1500 * time.Microsecond
	s.mu.Unlock()
	s.Observe("http.synthesize.latency", 0.0004)
	s.Observe("http.synthesize.latency", 0.03)
	s.Observe("http.synthesize.latency", 42) // beyond the last bound: +Inf only

	var b strings.Builder
	if err := s.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE hlts_cache_build_hit counter
hlts_cache_build_hit 3
# TYPE hlts_cache_build_miss counter
hlts_cache_build_miss 1
# TYPE hlts_server_jobs_run counter
hlts_server_jobs_run 7
# TYPE hlts_time_sched_seconds gauge
hlts_time_sched_seconds 0.0015
# TYPE hlts_http_synthesize_latency_seconds histogram
hlts_http_synthesize_latency_seconds_bucket{le="0.001"} 1
hlts_http_synthesize_latency_seconds_bucket{le="0.0025"} 1
hlts_http_synthesize_latency_seconds_bucket{le="0.005"} 1
hlts_http_synthesize_latency_seconds_bucket{le="0.01"} 1
hlts_http_synthesize_latency_seconds_bucket{le="0.025"} 1
hlts_http_synthesize_latency_seconds_bucket{le="0.05"} 2
hlts_http_synthesize_latency_seconds_bucket{le="0.1"} 2
hlts_http_synthesize_latency_seconds_bucket{le="0.25"} 2
hlts_http_synthesize_latency_seconds_bucket{le="0.5"} 2
hlts_http_synthesize_latency_seconds_bucket{le="1"} 2
hlts_http_synthesize_latency_seconds_bucket{le="2.5"} 2
hlts_http_synthesize_latency_seconds_bucket{le="5"} 2
hlts_http_synthesize_latency_seconds_bucket{le="10"} 2
hlts_http_synthesize_latency_seconds_bucket{le="+Inf"} 3
hlts_http_synthesize_latency_seconds_sum 42.0304
hlts_http_synthesize_latency_seconds_count 3
# TYPE hlts_cache_build_hitrate gauge
hlts_cache_build_hitrate 0.75
`
	if got := b.String(); got != want {
		t.Errorf("WriteText output drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestQuantile(t *testing.T) {
	s := New()
	if q := s.Quantile("empty", 0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
	for i := 0; i < 100; i++ {
		s.Observe("lat", 0.003) // all in the (0.0025, 0.005] bucket
	}
	p50 := s.Quantile("lat", 0.5)
	if p50 <= 0.0025 || p50 > 0.005 {
		t.Errorf("p50 = %g, want inside (0.0025, 0.005]", p50)
	}
	s.Observe("lat", 99) // beyond the last bound
	if q := s.Quantile("lat", 1); q != histBounds[len(histBounds)-1] {
		t.Errorf("p100 with +Inf observation = %g, want clamp to %g", q, histBounds[len(histBounds)-1])
	}
}

// A nil collector must be inert: every method callable, zero values out.
func TestNilStats(t *testing.T) {
	var s *Stats
	s.Add("x", 1)
	s.Time("y")()
	s.Observe("h", 1)
	if s.Value("x") != 0 || s.Duration("y") != 0 || s.HitRate("z") != 0 || s.String() != "" || s.Quantile("h", 0.5) != 0 {
		t.Error("nil Stats not inert")
	}
	var b strings.Builder
	if err := s.WriteText(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil WriteText = (%q, %v), want empty", b.String(), err)
	}
	if got := s.Counters(); len(got) != 0 {
		t.Errorf("nil Counters() = %v", got)
	}
}

// The collector is shared by the tie-policy fan-out and the experiment
// harness: concurrent writers must not lose increments (run with -race).
func TestConcurrentAdd(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add("n", 1)
				s.Time("t")()
			}
		}()
	}
	wg.Wait()
	if got := s.Value("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
}
