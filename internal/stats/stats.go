// Package stats is the per-stage observability layer of the synthesis
// system: a small, concurrency-safe registry of named counters and
// timers that the hot paths report into — candidate evaluations, cache
// hits and misses, prunes, and the wall-clock time spent in list
// scheduling, floorplanning, testability analysis and Petri-net
// reachability. A nil *Stats is a valid no-op collector, so call sites
// record unconditionally and pay one nil check when observability is
// off.
//
// Counters and timers never influence results: they are written behind
// a mutex, read only by reporting code, and carry no algorithmic state.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Stats is a set of named counters, timers and latency histograms. The
// zero value is not usable; construct with New. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Stats struct {
	mu       sync.Mutex
	counters map[string]int64
	timers   map[string]time.Duration
	hists    map[string]*histogram
	gauges   map[string]float64
}

// New returns an empty collector.
func New() *Stats {
	return &Stats{
		counters: map[string]int64{},
		timers:   map[string]time.Duration{},
		hists:    map[string]*histogram{},
		gauges:   map[string]float64{},
	}
}

// Add increments the named counter by delta.
func (s *Stats) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.counters[name] += delta
	s.mu.Unlock()
}

// Time starts a timer and returns the function that stops it, adding
// the elapsed wall-clock time to the named timer:
//
//	defer s.Time("time.floorplan")()
func (s *Stats) Time(name string) func() {
	if s == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		s.mu.Lock()
		s.timers[name] += d
		s.mu.Unlock()
	}
}

// Set records the current value of a gauge — a level that can move both
// ways (live node counts, queue depths), unlike the monotonic counters.
func (s *Stats) Set(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.gauges[name] = v
	s.mu.Unlock()
}

// Gauge returns the current value of a gauge (0 if never set).
func (s *Stats) Gauge(name string) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gauges[name]
}

// Value returns the current value of a counter (0 if never written).
func (s *Stats) Value(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Duration returns the accumulated time of a timer (0 if never written).
func (s *Stats) Duration(name string) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timers[name]
}

// Counters returns a snapshot of every counter.
func (s *Stats) Counters() map[string]int64 {
	out := map[string]int64{}
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// HitRate returns hits/(hits+misses) for the cache counter pair
// "<prefix>.hit" / "<prefix>.miss", or 0 when the cache was never
// consulted.
func (s *Stats) HitRate(prefix string) float64 {
	hits := s.Value(prefix + ".hit")
	misses := s.Value(prefix + ".miss")
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// String renders every counter and timer, sorted by name, followed by
// the hit rate of every "*.hit"/"*.miss" counter pair.
func (s *Stats) String() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	type kv struct {
		k string
		c int64
		d time.Duration
	}
	var counters, timers []kv
	for k, v := range s.counters {
		counters = append(counters, kv{k: k, c: v})
	}
	for k, v := range s.timers {
		timers = append(timers, kv{k: k, d: v})
	}
	s.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].k < counters[j].k })
	sort.Slice(timers, func(i, j int) bool { return timers[i].k < timers[j].k })

	var b strings.Builder
	for _, e := range counters {
		fmt.Fprintf(&b, "%-28s %12d\n", e.k, e.c)
	}
	for _, e := range timers {
		fmt.Fprintf(&b, "%-28s %12s\n", e.k, e.d)
	}
	// Hit rates for every .hit/.miss pair.
	seen := map[string]bool{}
	var prefixes []string
	for _, e := range counters {
		for _, suffix := range []string{".hit", ".miss"} {
			if p, ok := strings.CutSuffix(e.k, suffix); ok && !seen[p] {
				seen[p] = true
				prefixes = append(prefixes, p)
			}
		}
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		fmt.Fprintf(&b, "%-28s %11.1f%%\n", p+".hitrate", 100*s.HitRate(p))
	}
	return b.String()
}

// histBounds are the upper bucket bounds (seconds) of every latency
// histogram, Prometheus' default buckets: they span sub-millisecond cache
// hits to multi-second table reproductions.
var histBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram. counts[i] is the number
// of observations ≤ histBounds[i]; observations above the last bound land
// in the final slot (the +Inf bucket of the exposition).
type histogram struct {
	counts [14]uint64 // len(histBounds)+1; last slot is +Inf
	sum    float64
	count  uint64
}

// Observe records one observation (in seconds) into the named histogram.
func (s *Stats) Observe(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	h := s.hists[name]
	if h == nil {
		h = &histogram{}
		s.hists[name] = h
	}
	i := sort.SearchFloat64s(histBounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	s.mu.Unlock()
}

// ObserveSince records the time elapsed since start into the named
// histogram, in seconds.
func (s *Stats) ObserveSince(name string, start time.Time) {
	s.Observe(name, time.Since(start).Seconds())
}

// Quantile estimates the q-quantile (q in [0,1]) of the named histogram by
// linear interpolation inside the covering bucket; observations beyond the
// last finite bound report that bound. It returns 0 for an empty or
// unknown histogram.
func (s *Stats) Quantile(name string, q float64) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hists[name]
	if h == nil || h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(histBounds) {
				return histBounds[len(histBounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = histBounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(histBounds[i]-lo)
		}
		cum += c
	}
	return histBounds[len(histBounds)-1]
}

// metricName sanitizes a stats name into a Prometheus metric name:
// every character outside [a-zA-Z0-9_] becomes '_' and the result is
// prefixed "hlts_".
func metricName(name string) string {
	var b strings.Builder
	b.WriteString("hlts_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// fmtFloat renders a float the way the Prometheus text format expects:
// shortest representation that round-trips.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteText renders the collector in the Prometheus text exposition
// format: counters, then timers (as *_seconds gauges), then histograms,
// then the *.hit/*.miss hit-rate gauges, each group sorted by name — the
// output is byte-stable for a given collector state. It backs the
// daemon's /metrics endpoint and the CLIs' -stats dump.
func (s *Stats) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	counters := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		counters[k] = v
	}
	timers := make(map[string]time.Duration, len(s.timers))
	for k, v := range s.timers {
		timers[k] = v
	}
	gauges := make(map[string]float64, len(s.gauges))
	for k, v := range s.gauges {
		gauges[k] = v
	}
	hists := make(map[string]histogram, len(s.hists))
	for k, h := range s.hists {
		hists[k] = *h
	}
	s.mu.Unlock()

	var b strings.Builder
	for _, k := range sortedKeys(counters) {
		m := metricName(k)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m, m, counters[k])
	}
	for _, k := range sortedKeys(timers) {
		m := metricName(k) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", m, m, fmtFloat(timers[k].Seconds()))
	}
	for _, k := range sortedKeys(gauges) {
		m := metricName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", m, m, fmtFloat(gauges[k]))
	}
	for _, k := range sortedKeys(hists) {
		h := hists[k]
		m := metricName(k) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s histogram\n", m)
		var cum uint64
		for i, bound := range histBounds {
			cum += h.counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m, fmtFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m, h.count)
		fmt.Fprintf(&b, "%s_sum %s\n", m, fmtFloat(h.sum))
		fmt.Fprintf(&b, "%s_count %d\n", m, h.count)
	}
	// Hit-rate gauges for every .hit/.miss counter pair.
	seen := map[string]bool{}
	var prefixes []string
	for k := range counters {
		for _, suffix := range []string{".hit", ".miss"} {
			if p, ok := strings.CutSuffix(k, suffix); ok && !seen[p] {
				seen[p] = true
				prefixes = append(prefixes, p)
			}
		}
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		hits, misses := counters[p+".hit"], counters[p+".miss"]
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		m := metricName(p) + "_hitrate"
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", m, m, fmtFloat(rate))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedKeys returns the keys of a map in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
