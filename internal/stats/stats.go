// Package stats is the per-stage observability layer of the synthesis
// system: a small, concurrency-safe registry of named counters and
// timers that the hot paths report into — candidate evaluations, cache
// hits and misses, prunes, and the wall-clock time spent in list
// scheduling, floorplanning, testability analysis and Petri-net
// reachability. A nil *Stats is a valid no-op collector, so call sites
// record unconditionally and pay one nil check when observability is
// off.
//
// Counters and timers never influence results: they are written behind
// a mutex, read only by reporting code, and carry no algorithmic state.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stats is a set of named counters and timers. The zero value is not
// usable; construct with New. All methods are safe for concurrent use
// and are no-ops on a nil receiver.
type Stats struct {
	mu       sync.Mutex
	counters map[string]int64
	timers   map[string]time.Duration
}

// New returns an empty collector.
func New() *Stats {
	return &Stats{counters: map[string]int64{}, timers: map[string]time.Duration{}}
}

// Add increments the named counter by delta.
func (s *Stats) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.counters[name] += delta
	s.mu.Unlock()
}

// Time starts a timer and returns the function that stops it, adding
// the elapsed wall-clock time to the named timer:
//
//	defer s.Time("time.floorplan")()
func (s *Stats) Time(name string) func() {
	if s == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		s.mu.Lock()
		s.timers[name] += d
		s.mu.Unlock()
	}
}

// Value returns the current value of a counter (0 if never written).
func (s *Stats) Value(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Duration returns the accumulated time of a timer (0 if never written).
func (s *Stats) Duration(name string) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timers[name]
}

// Counters returns a snapshot of every counter.
func (s *Stats) Counters() map[string]int64 {
	out := map[string]int64{}
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// HitRate returns hits/(hits+misses) for the cache counter pair
// "<prefix>.hit" / "<prefix>.miss", or 0 when the cache was never
// consulted.
func (s *Stats) HitRate(prefix string) float64 {
	hits := s.Value(prefix + ".hit")
	misses := s.Value(prefix + ".miss")
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// String renders every counter and timer, sorted by name, followed by
// the hit rate of every "*.hit"/"*.miss" counter pair.
func (s *Stats) String() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	type kv struct {
		k string
		c int64
		d time.Duration
	}
	var counters, timers []kv
	for k, v := range s.counters {
		counters = append(counters, kv{k: k, c: v})
	}
	for k, v := range s.timers {
		timers = append(timers, kv{k: k, d: v})
	}
	s.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].k < counters[j].k })
	sort.Slice(timers, func(i, j int) bool { return timers[i].k < timers[j].k })

	var b strings.Builder
	for _, e := range counters {
		fmt.Fprintf(&b, "%-28s %12d\n", e.k, e.c)
	}
	for _, e := range timers {
		fmt.Fprintf(&b, "%-28s %12s\n", e.k, e.d)
	}
	// Hit rates for every .hit/.miss pair.
	seen := map[string]bool{}
	var prefixes []string
	for _, e := range counters {
		for _, suffix := range []string{".hit", ".miss"} {
			if p, ok := strings.CutSuffix(e.k, suffix); ok && !seen[p] {
				seen[p] = true
				prefixes = append(prefixes, p)
			}
		}
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		fmt.Fprintf(&b, "%-28s %11.1f%%\n", p+".hitrate", 100*s.HitRate(p))
	}
	return b.String()
}
