package core

import (
	"context"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/dfg"
	"repro/internal/sched"
)

// Method names used by the experiment harness, matching the rows of the
// paper's Tables 1-3.
const (
	MethodCAMAD     = "camad"
	MethodApproach1 = "approach1"
	MethodApproach2 = "approach2"
	MethodOurs      = "ours"
)

// Methods lists the four synthesis flows in table order.
func Methods() []string {
	return []string{MethodCAMAD, MethodApproach1, MethodApproach2, MethodOurs}
}

// Run dispatches a synthesis flow by method name.
func Run(method string, g *dfg.Graph, par Params) (*Result, error) {
	return RunCtx(context.Background(), method, g, par)
}

// RunCtx dispatches a synthesis flow by method name under a context. The
// iterative flows (ours, CAMAD) degrade to partial results on
// cancellation; the phase-separated baselines run to completion (their
// single schedule-then-allocate pass has no useful intermediate state).
func RunCtx(ctx context.Context, method string, g *dfg.Graph, par Params) (*Result, error) {
	if err := dfg.CheckWidth(par.Width); err != nil {
		return nil, err
	}
	switch method {
	case MethodCAMAD:
		return synthesizeCAMADCtx(ctx, g, par)
	case MethodApproach1:
		return SynthesizeApproach1(g, par)
	case MethodApproach2:
		return SynthesizeApproach2(g, par)
	case MethodOurs:
		return SynthesizeCtx(ctx, g, par)
	default:
		return nil, fmt.Errorf("core: unknown method %q", method)
	}
}

// SynthesizeCAMAD models the CAMAD high-level synthesis system [14]
// without testability consideration: the same iterative merger engine, but
// candidate pairs are selected by connectivity/closeness (minimizing
// interconnect and multiplexers), rescheduling appends execution orders
// without the SR rules, and additions, subtractions and comparisons pool
// into combined ALUs (the "±" modules of the tables).
func SynthesizeCAMAD(g *dfg.Graph, par Params) (*Result, error) {
	return synthesizeCAMADCtx(context.Background(), g, par)
}

func synthesizeCAMADCtx(ctx context.Context, g *dfg.Graph, par Params) (*Result, error) {
	par.Selection = SelectConnectivity
	par.Reschedule = RescheduleAppend
	// The paper's CAMAD rows keep one variable per register (R: a, R: b,
	// ...): only functional units are shared.
	par.ModulesOnly = true
	if par.Class == nil {
		par.Class = sched.ALUClass
	}
	r, err := SynthesizeCtx(ctx, g, par)
	if err != nil {
		return nil, err
	}
	r.Method = MethodCAMAD
	return r, nil
}

// separateAllocate builds the phase-separated flows of Lee et al.: given a
// finished schedule, registers are allocated with the testability-modified
// left-edge algorithm and modules are bound per class by left-edge packing.
func separateAllocate(g *dfg.Graph, par Params, method string, s sched.Schedule) (*Result, error) {
	life := alloc.Lifetimes(g, s)
	regOf, n := alloc.RegisterLeftEdgeTestable(g, life)
	a := alloc.BindModules(g, s, par.class(), regOf, n)
	prob := sched.NewProblem(g)
	prob.MaxLen = s.Len
	for op, m := range a.ModuleOf {
		prob.ModuleOf[op] = m
	}
	st := &state{g: g, prob: prob, s: s, a: a, par: par}
	if err := st.build(); err != nil {
		return nil, err
	}
	res, err := st.finish(method, nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SynthesizeApproach1 is the paper's Approach 1 baseline: force-directed
// scheduling [11] without testability consideration, followed by the same
// allocation as Approach 2 [7].
func SynthesizeApproach1(g *dfg.Graph, par Params) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	prob := sched.NewProblem(g)
	asap, err := prob.ASAP()
	if err != nil {
		return nil, err
	}
	s, err := prob.FDS(asap.Len+par.Slack, par.class())
	if err != nil {
		return nil, err
	}
	return separateAllocate(g, par, MethodApproach1, s)
}

// SynthesizeApproach2 is the paper's Approach 2 baseline: the
// mobility-path scheduling of Lee et al. [6,7], which accounts for the two
// testability rules, followed by modified left-edge allocation.
func SynthesizeApproach2(g *dfg.Graph, par Params) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	prob := sched.NewProblem(g)
	asap, err := prob.ASAP()
	if err != nil {
		return nil, err
	}
	s, err := prob.MobilityPath(asap.Len+par.Slack, par.class())
	if err != nil {
		return nil, err
	}
	return separateAllocate(g, par, MethodApproach2, s)
}
