// Package core implements the paper's primary contribution: the high-level
// test synthesis algorithm that integrates operation scheduling and data
// path allocation (Algorithm 1). Starting from a default schedule and a
// one-to-one allocation, it iteratively selects k candidate pairs of
// modules or registers under the controllability/observability balance
// principle, estimates the incremental execution-time cost ΔE (control
// Petri net critical path) and hardware cost ΔH (floorplan area) of each,
// merges the pair with the smallest ΔC = α·ΔE + β·ΔH, and reschedules with
// the merge-sort transformation guided by the SR1/SR2 testability rules.
//
// The package also provides the three reference flows the paper compares
// against: the CAMAD-style connectivity-driven synthesis [14], Approach 1
// (force-directed scheduling [11] + testable left-edge allocation [7]) and
// Approach 2 (mobility-path scheduling + testable left-edge allocation
// [6,7]).
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/cost"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/testability"
	"repro/internal/validate"
)

// SelectionPolicy chooses how candidate merge pairs are ranked.
type SelectionPolicy int

// Selection policies.
const (
	// SelectBalance ranks pairs by the controllability/observability
	// balance principle (the paper's policy).
	SelectBalance SelectionPolicy = iota
	// SelectConnectivity ranks pairs by shared connections (conventional
	// allocation; used by the CAMAD baseline and the selection ablation).
	SelectConnectivity
)

// ReschedulePolicy chooses how the scheduling constraints imposed by a
// merger are realized.
type ReschedulePolicy int

// Reschedule policies.
const (
	// RescheduleMergeSort is the paper's merge-sort transformation with the
	// SR1/SR2 controllability/observability enhancement strategy.
	RescheduleMergeSort ReschedulePolicy = iota
	// RescheduleAppend serializes the second sequence after the first
	// without testability guidance (the rescheduling ablation).
	RescheduleAppend
	// RescheduleFrozen forbids moving any operation: a merger is feasible
	// only if the current schedule already satisfies its constraints (the
	// phase-separated ablation: allocation cannot influence scheduling).
	RescheduleFrozen
)

// Params configures a synthesis run.
type Params struct {
	// K is the number of candidate pairs examined per iteration (paper's
	// k): small k puts more weight on the testability ranking.
	K int
	// Alpha weights ΔE and Beta weights ΔH in ΔC = α·ΔE + β·ΔH.
	Alpha, Beta float64
	// Slack is the number of control steps the schedule may grow beyond
	// the initial (ASAP) length. The paper's area-optimized experiments
	// correspond to Slack 0.
	Slack int
	// Width is the data-path bit width (4, 8 or 16 in the paper).
	Width int
	// LoopBound is the loop iteration count assumed by the critical-path
	// estimate for looping behaviours.
	LoopBound int
	// LoopSignal names the condition output closing the behavioural loop;
	// empty for straight-line behaviours.
	LoopSignal string
	// Class maps operation kinds to module classes (sched.ExactClass when
	// nil).
	Class sched.ClassFunc
	// Lib is the module library for ΔH (cost.DefaultLibrary when nil).
	Lib *cost.Library
	// TCfg configures testability analysis.
	TCfg testability.Config
	// Selection and Reschedule select the algorithm variant; the zero
	// values are the paper's algorithm.
	Selection  SelectionPolicy
	Reschedule ReschedulePolicy
	// NoExplore disables the tie-break exploration: by default Synthesize
	// runs the greedy merger under the four deterministic tie-break
	// policies (tieHighScore, tieLowScore, tieStrict, tieNoDepBonus; see
	// tiePolicies) and keeps the design with the lowest final α·E + β·H
	// (the authors applied Algorithm 1 manually and resolved near-ties by
	// judgement; the exploration recovers that judgement mechanically).
	NoExplore bool
	// Workers bounds the goroutines used for the tie-policy exploration
	// (0 = one per CPU, 1 = sequential). The winning design is selected by
	// a fixed-order reduction over the policy results, so the outcome is
	// identical at every worker count.
	Workers int
	// ModulesOnly restricts merging to functional modules, leaving every
	// value in its own register — the allocation visible in the paper's
	// CAMAD table rows (R: a, R: b, ...).
	ModulesOnly bool
	// Stats, when non-nil, collects per-stage counters and timers
	// (candidate evaluations, cache hits/misses, prunes, time spent in
	// scheduling/floorplanning/testability/reachability). Purely
	// observational: it never influences results.
	Stats *stats.Stats
	// NoCache disables the fingerprint-keyed evaluation cache and NoPrune
	// disables the ΔC lower-bound pruning of candidates. Both exist for
	// the cache-equivalence tests and benchmarks; results are identical
	// either way.
	NoCache bool
	NoPrune bool
	// Validate runs the structural invariant checkers of internal/validate
	// at the stage boundaries: on the behaviour graph and initial design
	// before the merger loop, and on the finished design of every flow. A
	// violation surfaces as a typed *validate.Error instead of a
	// downstream panic or a silently wrong figure. Costs one linear pass
	// per checked artifact.
	Validate bool
}

// DefaultParams returns the parameter set (k,α,β) = (3,2,1) the paper uses
// for 4-bit runs, with testability defaults.
func DefaultParams(width int) Params {
	return Params{
		K: 3, Alpha: 2, Beta: 1,
		Slack: 0, Width: width, LoopBound: 4,
		TCfg: testability.DefaultConfig(),
	}
}

func (p Params) class() sched.ClassFunc {
	if p.Class == nil {
		return sched.ExactClass
	}
	return p.Class
}

func (p Params) lib() *cost.Library {
	if p.Lib == nil {
		return cost.DefaultLibrary()
	}
	return p.Lib
}

// Result is a synthesis result. When Status is exec.StatusPartial the
// merger loop was cut short by a deadline: the design is the best state
// committed by then — a valid, buildable design, just with fewer mergers
// applied than an uninterrupted run would have committed.
type Result struct {
	Method string
	Design *etpn.Design
	// ExecTime is the control-part critical path in control steps.
	ExecTime int
	// Area is the floorplan-based hardware cost estimate.
	Area cost.Estimate
	// Mux summarizes required multiplexing.
	Mux etpn.MuxStats
	// Metrics is the final testability analysis.
	Metrics *testability.Metrics
	// Trace logs one line per committed merger.
	Trace []string
	// Status is StatusComplete for a finished merger loop, StatusPartial
	// when the budget named by Exhausted cut it short.
	Status exec.Status
	// Exhausted names the exhausted budget ("" when complete).
	Exhausted string
}

// state carries the evolving design through the synthesis loop.
type state struct {
	g     *dfg.Graph
	prob  *sched.Problem
	s     sched.Schedule
	a     *alloc.Allocation
	life  map[dfg.ValueID]alloc.Interval
	d     *etpn.Design
	par   Params
	execT int
	area  cost.Estimate
	// cache memoizes expensive evaluations across the whole Synthesize
	// call (nil disables it); fp is the canonical fingerprint of the
	// current (schedule, allocation) pair, valid after build.
	cache *evalCache
	fp    fp
	// e0 is the execution time of the initial ASAP state. Every schedule
	// the merger can reach is at least as long as the ASAP schedule, and
	// the control critical path grows with schedule length, so e0 is a
	// certified floor on any successor's execution time — the ΔE half of
	// the candidate-pruning bound.
	e0 int
}

// build refreshes lifetimes, the ETPN design, execution time and area from
// the current schedule and allocation. With caching enabled, a state whose
// (schedule, allocation) fingerprint was evaluated before — by any tie
// policy — reuses the memoized design and costs; only successful builds
// are cached, so a hit soundly skips allocation verification too.
func (st *state) build() error {
	st.life = alloc.Lifetimes(st.g, st.s)
	if st.cache.enabled() {
		st.fp = stateFingerprint(st)
		if e, ok := st.cache.lookupBuild(st.fp); ok {
			st.d, st.execT, st.area = e.d, e.exec, e.area
			return nil
		}
	}
	if err := st.a.Verify(st.g, st.s, st.par.class(), st.life); err != nil {
		return err
	}
	d, err := etpn.Build(st.g, st.s, st.a, st.life, etpn.Options{LoopSignal: st.par.LoopSignal})
	if err != nil {
		return err
	}
	st.d = d
	// The control part is a pure function of the schedule length (a chain,
	// or a guarded loop, over Len places), so the Petri-net critical path
	// is memoized per length rather than per design.
	et, ok := st.cache.lookupExec(st.s.Len)
	if !ok {
		stop := st.par.Stats.Time("time.reach")
		et, err = d.ExecutionTime(st.par.LoopBound)
		stop()
		if err != nil {
			return err
		}
		st.cache.storeExec(st.s.Len, et)
	}
	st.execT = et
	stop := st.par.Stats.Time("time.floorplan")
	st.area = cost.EstimateDesign(d, st.par.lib(), st.par.Width)
	stop()
	st.cache.storeBuild(st.fp, buildEntry{d: st.d, exec: st.execT, area: st.area})
	return nil
}

// analyze returns the testability metrics of the current design, memoized
// by the state fingerprint: both register-merge orders of applyRegMerge
// frequently produce identical designs, and the committed winner of one
// iteration is re-analyzed at the top of the next — each repeat is a hit.
func (st *state) analyze() *testability.Metrics {
	if m, ok := st.cache.lookupMetrics(st.fp); ok {
		return m
	}
	stop := st.par.Stats.Time("time.testability")
	m := testability.Analyze(st.d, st.par.TCfg)
	stop()
	st.cache.storeMetrics(st.fp, m)
	return m
}

func (st *state) clone() *state {
	c := *st
	c.prob = st.prob.Clone()
	c.s = st.s.Clone()
	c.a = st.a.Clone()
	return &c
}

// initialState performs step 1 of Algorithm 1: a simple default
// scheduling (ASAP) and allocation (one node per operation and value).
// The cache, shared by every tie policy of one Synthesize call, may be
// nil to disable memoization.
func initialState(g *dfg.Graph, par Params, cache *evalCache) (*state, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if par.Validate {
		if err := validate.Graph(g); err != nil {
			return nil, err
		}
	}
	prob := sched.NewProblem(g)
	s, err := prob.ASAP()
	if err != nil {
		return nil, err
	}
	prob.MaxLen = s.Len + par.Slack
	life := alloc.Lifetimes(g, s)
	a := alloc.Default(g, par.class(), life)
	// Bind the problem's module constraint map to the allocation.
	for op, m := range a.ModuleOf {
		prob.ModuleOf[op] = m
	}
	st := &state{g: g, prob: prob, s: s, a: a, par: par, cache: cache}
	if err := st.build(); err != nil {
		return nil, err
	}
	st.e0 = st.execT
	return st, nil
}

// candidate is a potential merger.
type candidate struct {
	isModule bool
	i, j     int // allocation ids
	score    float64
}

// rankCandidates lists mergeable module pairs and register pairs, each
// ranked by the configured selection policy, best first.
func (st *state) rankCandidates(m *testability.Metrics, tp tiePolicy) (mods, regs []candidate) {
	var cands []candidate
	for i := 0; i < len(st.a.Modules); i++ {
		for j := i + 1; j < len(st.a.Modules); j++ {
			if st.a.Modules[i].Class != st.a.Modules[j].Class {
				continue
			}
			var sc float64
			if st.par.Selection == SelectConnectivity {
				sc = float64(alloc.Connectivity(st.g, st.a, i, j))
			} else {
				u, v := st.d.ModNode(i), st.d.ModNode(j)
				// Module merging favours data-dependent operation groups:
				// dependent operations are already serialized, so sharing a
				// module between them imposes no new scheduling constraint
				// (and the paper's own module allocations pair
				// producer-consumer chains: N26/N31, N29/N33 in Table 3).
				sc = m.BalanceScore(u, v)
				if tp != tieNoDepBonus {
					sc += 0.3 * float64(st.modDependencePairs(i, j))
				}
			}
			cands = append(cands, candidate{isModule: true, i: i, j: j, score: sc})
		}
	}
	for i := 0; i < len(st.a.Regs) && !st.par.ModulesOnly; i++ {
		for j := i + 1; j < len(st.a.Regs); j++ {
			var sc float64
			if st.par.Selection == SelectConnectivity {
				sc = float64(alloc.RegConnectivity(st.g, st.a, i, j))
			} else {
				u, v := st.d.RegNode(i), st.d.RegNode(j)
				// Balance principle tempered by the loop-avoidance goal of
				// §3: merging a register pair connected through one module
				// creates a self-loop, the structure testable allocation
				// exists to avoid. Pairs whose lifetimes are already
				// disjoint under the current schedule rank first — their
				// serialization arcs are consistent with the schedule, so
				// they cannot cascade into infeasibility (they are the
				// merges a left-edge packing would make), and the balance
				// score chooses among them.
				sc = m.BalanceScore(u, v) - 0.5*float64(st.regMergeSelfLoops(i, j))
				if st.regsDisjointNow(i, j) {
					sc += 2
				}
			}
			cands = append(cands, candidate{isModule: false, i: i, j: j, score: sc})
		}
	}
	sort.SliceStable(cands, func(x, y int) bool { return cands[x].score > cands[y].score })
	for _, c := range cands {
		if c.isModule {
			mods = append(mods, c)
		} else {
			regs = append(regs, c)
		}
	}
	return mods, regs
}

// regsDisjointNow reports whether every cross pair of values of registers
// i and j has disjoint lifetimes under the current schedule.
func (st *state) regsDisjointNow(i, j int) bool {
	for _, va := range st.a.Regs[i].Vals {
		for _, vb := range st.a.Regs[j].Vals {
			la, aok := st.life[va]
			lb, bok := st.life[vb]
			if aok && bok && alloc.Overlaps(la, lb) {
				return false
			}
		}
	}
	return true
}

// regMergeSelfLoops counts the self-loops merging registers i and j would
// create: modules that read a value of one register and produce a value of
// the other would then read and write the same register.
func (st *state) regMergeSelfLoops(i, j int) int {
	readersOf := func(r int) map[int]bool {
		set := map[int]bool{}
		for _, v := range st.a.Regs[r].Vals {
			for _, u := range st.g.Value(v).Uses {
				set[st.a.ModuleOf[u]] = true
			}
		}
		return set
	}
	writersOf := func(r int) map[int]bool {
		set := map[int]bool{}
		for _, v := range st.a.Regs[r].Vals {
			if d := st.g.Value(v).Def; d != dfg.NoNode {
				set[st.a.ModuleOf[d]] = true
			}
		}
		return set
	}
	loops := 0
	ri, rj := readersOf(i), readersOf(j)
	wi, wj := writersOf(i), writersOf(j)
	for m := range ri {
		if wj[m] {
			loops++
		}
	}
	for m := range rj {
		if wi[m] {
			loops++
		}
	}
	return loops
}

// modDependencePairs counts the direct data dependences between the
// operations of modules i and j: each such pair is already serialized by
// the data flow, so merging costs nothing in scheduling freedom.
func (st *state) modDependencePairs(i, j int) int {
	inJ := map[dfg.NodeID]bool{}
	for _, op := range st.a.Modules[j].Ops {
		inJ[op] = true
	}
	pairs := 0
	for _, op := range st.a.Modules[i].Ops {
		for _, s := range st.g.Succs(op) {
			if inJ[s] {
				pairs++
			}
		}
		for _, p := range st.g.Preds(op) {
			if inJ[p] {
				pairs++
			}
		}
	}
	return pairs
}

// modMergeSelfLoops counts the self-loops merging modules i and j would
// create: registers written by one module and read by the other would then
// feed the merged module's own output back to its input.
func (st *state) modMergeSelfLoops(i, j int) int {
	reads := func(mod int) map[int]bool {
		set := map[int]bool{}
		for _, op := range st.a.Modules[mod].Ops {
			for _, v := range st.g.Node(op).In {
				if r, ok := st.a.RegOf[v]; ok {
					set[r] = true
				}
			}
		}
		return set
	}
	writes := func(mod int) map[int]bool {
		set := map[int]bool{}
		for _, op := range st.a.Modules[mod].Ops {
			if r, ok := st.a.RegOf[st.g.Node(op).Out]; ok {
				set[r] = true
			}
		}
		return set
	}
	loops := 0
	ri, rj := reads(i), reads(j)
	wi, wj := writes(i), writes(j)
	for r := range ri {
		if wj[r] {
			loops++
		}
	}
	for r := range rj {
		if wi[r] {
			loops++
		}
	}
	return loops
}

// tiePolicy resolves near-ties in ΔC among a block's feasible candidates
// and selects the scoring variant used for candidate ranking.
type tiePolicy int

const (
	tieHighScore tiePolicy = iota // prefer the higher balance score
	tieLowScore                   // prefer the lower balance score
	tieStrict                     // no tolerance: strict minimum ΔC
	// tieNoDepBonus ranks module pairs without the data-dependence bonus,
	// letting pure balance + ΔC pick partitions the bonus would suppress.
	tieNoDepBonus
)

// tiePolicies lists every tie-break policy Synthesize explores, in the
// fixed order the winner reduction visits them. Synthesize's doc comment
// and the exploration loop both derive from this list, so the two cannot
// drift apart again.
var tiePolicies = []tiePolicy{tieHighScore, tieLowScore, tieStrict, tieNoDepBonus}

// Synthesize runs Algorithm 1 on g and returns the synthesized design.
// Unless par.NoExplore is set, the greedy merger is run under the four
// deterministic tie-break policies of tiePolicies — tieHighScore,
// tieLowScore, tieStrict and tieNoDepBonus — and the design with the
// smallest final α·E + β·H wins (ties on that, in turn, go to the
// fewer-self-loops design). The policies are independent, so they run
// concurrently on up to par.Workers goroutines; the winner is chosen by a
// sequential reduction in tiePolicies order, making the result identical
// at every worker count.
func Synthesize(g *dfg.Graph, par Params) (*Result, error) {
	return SynthesizeCtx(context.Background(), g, par)
}

// SynthesizeCtx is Synthesize under a context. Cancellation degrades
// gracefully: each tie policy's merger loop checks the context at every
// iteration boundary, stops merging when it dies, and finishes its
// current (valid, buildable) state; the winner reduction then runs as
// usual and the returned Result is tagged StatusPartial. The nil error on
// a partial result is deliberate — a deadline is a budget, not a failure.
func SynthesizeCtx(ctx context.Context, g *dfg.Graph, par Params) (*Result, error) {
	// Reject nonsensical widths here, at the entry point, instead of
	// letting a Params built by hand fail deep inside cost estimation or
	// gate generation (a width over 64 cannot even be simulated — the
	// gate level packs one value bit per uint64 lane word).
	if err := dfg.CheckWidth(par.Width); err != nil {
		return nil, err
	}
	// One cache serves all four policies: they share the initial state and
	// most early-iteration evaluations, so cross-policy hits are where the
	// memoization pays most. Cached values are pure functions of their
	// keys, keeping the result independent of sharing and worker count.
	cache := newEvalCache(par)
	if par.NoExplore {
		return synthesizeOnce(ctx, g, par, tieHighScore, cache)
	}
	// The pool deliberately runs without the context: each policy handles
	// cancellation itself by degrading to a partial design, so all four
	// jobs return results (never ctx.Err()) and the winner reduction still
	// has a full slate to choose from.
	results := make([]*Result, len(tiePolicies))
	if err := parallel.ForEach(par.Workers, len(tiePolicies), func(i int) error {
		r, err := synthesizeOnce(ctx, g, par, tiePolicies[i], cache)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	}); err != nil {
		return nil, err
	}
	var best *Result
	var bestCost float64
	for _, r := range results {
		c := par.Alpha*float64(r.ExecTime) + par.Beta*r.Area.Total
		var better bool
		switch {
		case best == nil:
			better = true
		default:
			// Within a 3% cost band the design with fewer self-loops wins
			// (the paper weighs loop avoidance alongside area, §3); outside
			// it, cost decides.
			tol := 0.03 * absf(bestCost)
			switch {
			case c < bestCost-tol:
				better = true
			case c <= bestCost+tol && r.Design.SelfLoops() < best.Design.SelfLoops():
				better = true
			case c <= bestCost+tol && r.Design.SelfLoops() == best.Design.SelfLoops() && c < bestCost:
				better = true
			}
		}
		if better {
			best, bestCost = r, c
		}
	}
	// An exploration where any policy was cut short is itself partial:
	// the winner might have lost to a policy that never got to finish.
	for _, r := range results {
		if r.Status == exec.StatusPartial && best.Status != exec.StatusPartial {
			best.Status = exec.StatusPartial
			best.Exhausted = r.Exhausted
		}
	}
	return best, nil
}

func synthesizeOnce(ctx context.Context, g *dfg.Graph, par Params, tp tiePolicy, cache *evalCache) (*Result, error) {
	st, err := initialState(g, par, cache)
	if err != nil {
		return nil, err
	}
	k := par.K
	if k <= 0 {
		k = 3
	}
	exhausted := ""
	var trace []string
	for iter := 0; ; iter++ {
		if ctx.Err() != nil {
			// Deadline mid-loop: keep the mergers committed so far and
			// finish the current state as a partial result.
			exhausted = exec.BudgetDeadline
			break
		}
		if iter > g.NumNodes()+g.NumValues()+8 {
			return nil, fmt.Errorf("core: merger loop failed to terminate")
		}
		m := st.analyze()
		modCands, regCands := st.rankCandidates(m, tp)
		if len(modCands)+len(regCands) == 0 {
			break
		}
		// Examine candidates in blocks of k down the testability ranking
		// (paper line 6: "select k pairs of mergable nodes"); within the
		// first block containing a feasible merger, commit the
		// smallest-ΔC one (line 11), breaking near-ties (within 2%) by the
		// balance score. Module mergers, whose ΔH dominates the cost, are
		// exhausted before register packing begins — interleaving them
		// lets early register serialization arcs lock out the large module
		// savings the tables report.
		var best *state
		var bestLine string
		committed := false
		for _, list := range [][]candidate{modCands, regCands} {
			for lo := 0; lo < len(list) && !committed; lo += k {
				block := slice(list, lo, k)
				bestDC, bestScore := 0.0, 0.0
				for _, c := range block {
					// A candidate whose certified ΔC lower bound lies above
					// the incumbent's tolerance band cannot be taken by any
					// branch of the selection below, so the whole
					// reschedule-and-rebuild evaluation is skipped. The
					// bound needs both weights non-negative to be a lower
					// bound on ΔC.
					if best != nil && !par.NoPrune && par.Alpha >= 0 && par.Beta >= 0 {
						lb := par.Alpha*float64(st.e0-st.execT) + par.Beta*st.deltaHLowerBound(c)
						margin := 1e-6 * (absf(bestDC) + absf(lb) + 1)
						if lb-margin > bestDC+tolFor(tp, bestDC) {
							par.Stats.Add("core.prunes", 1)
							continue
						}
					}
					par.Stats.Add("core.evaluations", 1)
					ns, dE, dH, err := st.applyCandidate(c, m)
					if err != nil {
						continue
					}
					dC := par.Alpha*float64(dE) + par.Beta*dH
					take := best == nil
					if !take {
						tol := tolFor(tp, bestDC)
						switch {
						case dC < bestDC-tol:
							take = true
						case dC <= bestDC+tol && (tp == tieHighScore || tp == tieNoDepBonus) && c.score > bestScore:
							take = true
						case dC <= bestDC+tol && tp == tieLowScore && c.score < bestScore:
							take = true
						}
					}
					if take {
						best = ns
						bestDC, bestScore = dC, c.score
						kind := "reg"
						if c.isModule {
							kind = "mod"
						}
						bestLine = fmt.Sprintf("iter %d: merge %s %d+%d score %.4f dE %d dH %.1f dC %.1f",
							iter, kind, c.i, c.j, c.score, dE, dH, dC)
					}
				}
				if best != nil {
					committed = true
				}
			}
			if committed {
				break
			}
		}
		if !committed {
			break // no merger exists (paper's termination condition)
		}
		st = best
		trace = append(trace, bestLine)
	}
	res, err := st.finish("ours", trace)
	if err != nil {
		return nil, err
	}
	if exhausted != "" {
		res.Status = exec.StatusPartial
		res.Exhausted = exhausted
	}
	return res, nil
}

// slice returns list[lo:lo+n] clamped to the list bounds.
func slice(list []candidate, lo, n int) []candidate {
	if lo >= len(list) {
		return nil
	}
	hi := lo + n
	if hi > len(list) {
		hi = len(list)
	}
	return list[lo:hi]
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// tolFor is the near-tie tolerance band of the candidate selection: within
// it the tie policy's score comparison decides instead of ΔC. tieStrict
// admits no band.
func tolFor(tp tiePolicy, bestDC float64) float64 {
	if tp == tieStrict {
		return 0
	}
	return 0.02 * (absf(bestDC) + 1)
}

// deltaHLowerBound returns a certified lower bound on the ΔH of merging
// candidate c, computable without floorplanning: the library area of the
// post-merge design drops by exactly one module (of the pair's class) or
// one register, and the floorplan total is the library sum plus the
// non-negative mux and wire terms, so
//
//	ΔH = newTotal − oldTotal ≥ newLibArea − oldTotal.
func (st *state) deltaHLowerBound(c candidate) float64 {
	modA, regA := st.area.ModuleArea, st.area.RegArea
	if c.isModule {
		modA -= st.par.lib().ModuleArea(st.a.Modules[c.i].Class, st.par.Width)
	} else {
		regA -= st.par.lib().RegisterArea(st.par.Width)
	}
	return modA + regA - st.area.Total
}

func (st *state) finish(method string, trace []string) (*Result, error) {
	if err := st.build(); err != nil {
		return nil, err
	}
	// Every synthesis flow — ours and the three baselines — funnels its
	// final design through here, so this is the single validation boundary
	// for finished designs.
	if st.par.Validate {
		if err := validate.Design(st.d); err != nil {
			return nil, err
		}
	}
	return &Result{
		Method:   method,
		Design:   st.d,
		ExecTime: st.execT,
		Area:     st.area,
		Mux:      st.d.MuxStats(),
		Metrics:  st.analyze(),
		Trace:    trace,
	}, nil
}

// applyCandidate tentatively merges candidate c on a clone of st,
// performing the rescheduling the merger imposes, and returns the new
// state with the incremental costs ΔE and ΔH.
func (st *state) applyCandidate(c candidate, m *testability.Metrics) (*state, int, float64, error) {
	if c.isModule {
		return st.applyModuleMerge(c.i, c.j, m)
	}
	return st.applyRegMerge(c.i, c.j, m)
}

// applyModuleMerge implements the module merger of §4.3.1: the two
// modules' operation sequences are merged by merge sort under SR1/SR2 into
// one total order, realized as precedence arcs, and the design is
// rescheduled.
func (st *state) applyModuleMerge(i, j int, m *testability.Metrics) (*state, int, float64, error) {
	seqI := sched.OrderByStep(st.a.Modules[i].Ops, st.s)
	seqJ := sched.OrderByStep(st.a.Modules[j].Ops, st.s)
	both := append(append([]dfg.NodeID{}, seqI...), seqJ...)

	apply := func(order []dfg.NodeID) (*state, int, float64, error) {
		ns := st.clone()
		if err := ns.a.MergeModules(i, j); err != nil {
			return nil, 0, 0, err
		}
		ns.prob.Extra = append(ns.prob.Extra, sched.ChainArcs(order)...)
		for op, mod := range ns.a.ModuleOf {
			ns.prob.ModuleOf[op] = mod
		}
		return st.reschedule(ns)
	}

	switch st.par.Reschedule {
	case RescheduleAppend:
		return apply(append(append([]dfg.NodeID{}, seqI...), seqJ...))
	case RescheduleFrozen:
		// Feasible only if all operations already occupy distinct steps.
		steps := map[int]bool{}
		for _, op := range both {
			stp := st.s.Step[op]
			if steps[stp] {
				return nil, 0, 0, fmt.Errorf("core: frozen schedule conflicts at step %d", stp)
			}
			steps[stp] = true
		}
		return apply(sched.OrderByStep(both, st.s))
	}
	// Merge-sort with SR1/SR2 first; when its order is infeasible, fall
	// back to the order with the smallest critical-path increase (paper
	// §4.3.1: "if these two rules can not be applied, we will select the
	// pair which results in the smallest increase in the length of the
	// critical path") by trying the step-order and both append orders.
	candidates := [][]dfg.NodeID{
		sched.MergeOrders(seqI, seqJ, st.preferSR(m)),
		sched.OrderByStep(both, st.s),
		append(append([]dfg.NodeID{}, seqI...), seqJ...),
		append(append([]dfg.NodeID{}, seqJ...), seqI...),
	}
	return selectMergeOrder(candidates, apply)
}

// selectMergeOrder realizes the order preference of §4.3.1 over the
// candidate serialization orders. Candidate 0 is the SR order: if
// feasible it wins outright, by construction, regardless of how the
// fallback orders would cost — only when it fails do the fallbacks
// compete on (ΔE, ΔH). An order identical to one already tried is
// skipped: it is the same scheduling problem and would replay the same
// outcome.
func selectMergeOrder(candidates [][]dfg.NodeID, apply func([]dfg.NodeID) (*state, int, float64, error)) (*state, int, float64, error) {
	var bestNS *state
	var bestE int
	var bestH float64
	var firstErr error
	for idx, order := range candidates {
		if duplicateOrder(candidates[:idx], order) {
			continue
		}
		ns, dE, dH, err := apply(order)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if idx == 0 {
			// The SR order is feasible: prefer it outright (SR2).
			return ns, dE, dH, nil
		}
		if bestNS == nil || dE < bestE || (dE == bestE && dH < bestH) {
			bestNS, bestE, bestH = ns, dE, dH
		}
	}
	if bestNS == nil {
		return nil, 0, 0, firstErr
	}
	return bestNS, bestE, bestH, nil
}

// sameOrder reports whether two operation sequences are identical.
func sameOrder(a, b []dfg.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// duplicateOrder reports whether order already appears among prior.
func duplicateOrder(prior [][]dfg.NodeID, order []dfg.NodeID) bool {
	for _, p := range prior {
		if sameOrder(p, order) {
			return true
		}
	}
	return false
}

// preferSR is the controllability/observability enhancement strategy (SR1
// + SR2) as a merge-sort comparator: execute first the operation whose
// operand registers are more controllable, and last the operation whose
// result register is more observable, thereby shortening the sequential
// depth from a controllable register to an observable register. Ties fall
// back to the current control step (smallest critical-path increase).
func (st *state) preferSR(m *testability.Metrics) sched.Prefer {
	ctrlIn := func(op dfg.NodeID) float64 {
		best := 0.0
		for _, v := range st.g.Node(op).In {
			if c := testability.ValueCtrl(st.d, m, v); c > best {
				best = c
			}
		}
		return best
	}
	obsOut := func(op dfg.NodeID) float64 {
		if r, ok := st.a.RegOf[st.g.Node(op).Out]; ok {
			return m.Obs(st.d.RegNode(r))
		}
		return 1 // result goes straight to a port
	}
	return func(a, b dfg.NodeID) int {
		sa := ctrlIn(a) + obsOut(b)
		sb := ctrlIn(b) + obsOut(a)
		switch {
		case sa > sb:
			return -1
		case sb > sa:
			return +1
		}
		// SR ties: keep the operation currently scheduled earlier first.
		return st.s.Step[a] - st.s.Step[b]
	}
}

// applyRegMerge implements the register merger of §4.3.2: the lifetimes of
// the two registers' values must become disjoint. Both serialization
// orders are evaluated; the one yielding the shorter mean sequential depth
// from controllable to observable registers is kept (SR1), with ΔE as the
// tie-breaker.
func (st *state) applyRegMerge(i, j int, m *testability.Metrics) (*state, int, float64, error) {
	tryOrder := func(first, second int) (*state, int, float64, error) {
		ns := st.clone()
		strict, weak, err := ns.serializeRegs(first, second)
		if err != nil {
			return nil, 0, 0, err
		}
		if st.par.Reschedule == RescheduleFrozen {
			// Arcs must already hold in the current schedule.
			for _, a := range strict {
				if ns.s.Step[a[0]] >= ns.s.Step[a[1]] {
					return nil, 0, 0, fmt.Errorf("core: frozen schedule violates lifetime arc")
				}
			}
			for _, a := range weak {
				if ns.s.Step[a[0]] > ns.s.Step[a[1]] {
					return nil, 0, 0, fmt.Errorf("core: frozen schedule violates lifetime arc")
				}
			}
		}
		ns.prob.Extra = append(ns.prob.Extra, strict...)
		ns.prob.ExtraWeak = append(ns.prob.ExtraWeak, weak...)
		if err := ns.a.MergeRegs(first, second); err != nil {
			return nil, 0, 0, err
		}
		return st.reschedule(ns)
	}
	s1, e1, h1, err1 := tryOrder(i, j)
	s2, e2, h2, err2 := tryOrder(j, i)
	switch {
	case err1 != nil && err2 != nil:
		return nil, 0, 0, err1
	case err1 != nil:
		return s2, e2, h2, nil
	case err2 != nil:
		return s1, e1, h1, nil
	}
	if st.par.Reschedule == RescheduleMergeSort {
		// SR1: prefer the order with the shorter mean sequential depth.
		d1 := meanRegSeqDepth(s1)
		d2 := meanRegSeqDepth(s2)
		if d2 < d1 {
			return s2, e2, h2, nil
		}
		if d1 < d2 {
			return s1, e1, h1, nil
		}
	}
	if e2 < e1 || (e2 == e1 && h2 < h1) {
		return s2, e2, h2, nil
	}
	return s1, e1, h1, nil
}

// meanRegSeqDepth routes through the state's memoized analysis: the two
// serialization orders applyRegMerge compares frequently converge to the
// same (schedule, allocation) pair, in which case the second order's
// fixpoint is a cache hit rather than a full re-run.
func meanRegSeqDepth(st *state) float64 {
	m := st.analyze()
	sum, n := 0.0, 0
	for _, nd := range st.d.Nodes {
		if nd.Kind == etpn.KindRegister {
			sum += m.SeqDepth(nd.ID)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// serializeRegs returns precedence arcs forcing every value of register
// `first` to expire before the corresponding value of register `second`
// is created, pairing the values in lifetime order (the general case of
// §4.3.2 handled like the module merge sort). When the current lifetimes
// of a pair are already disjoint, no arc is added for it.
func (ns *state) serializeRegs(first, second int) (strict, weak [][2]dfg.NodeID, err error) {
	g := ns.g
	valsA := append([]dfg.ValueID(nil), ns.a.Regs[first].Vals...)
	valsB := append([]dfg.ValueID(nil), ns.a.Regs[second].Vals...)
	byBirth := func(vs []dfg.ValueID) {
		sort.Slice(vs, func(x, y int) bool { return ns.life[vs[x]].Birth < ns.life[vs[y]].Birth })
	}
	byBirth(valsA)
	byBirth(valsB)
	// Every cross pair must be serialized, not just the currently
	// overlapping ones: the disjointness constraint imposed by the merger
	// must survive all future rescheduling (paper §4). Pairs that are
	// already disjoint keep their current order; contentious pairs
	// (overlapping or tied) take the caller's direction, so both global
	// orders are explored by applyRegMerge.
	for _, vb := range valsB {
		for _, va := range valsA {
			x, y := va, vb
			la, lb := ns.life[va], ns.life[vb]
			if !alloc.Overlaps(la, lb) && lb.Death <= la.Birth {
				x, y = vb, va // b already expires before a is created
			}
			st2, wk2, err := serializePair(g, x, y)
			if err != nil {
				return nil, nil, err
			}
			strict = append(strict, st2...)
			weak = append(weak, wk2...)
		}
	}
	return strict, weak, nil
}

// serializePair returns arcs ensuring va expires before vb is created.
// The last read of va may share a control step with vb's production (the
// register loads the new value on the edge that ends the step), so
// reader-to-producer arcs are weak; producer-to-producer arcs are strict
// (two values cannot be written in the same step). An operation reading
// both values makes the lifetimes inseparable (paper §4.3.2, case 2).
func serializePair(g *dfg.Graph, va, vb dfg.ValueID) (strict, weak [][2]dfg.NodeID, err error) {
	a, b := g.Value(va), g.Value(vb)
	usesB := map[dfg.NodeID]bool{}
	for _, u := range b.Uses {
		usesB[u] = true
	}
	for _, u := range a.Uses {
		if usesB[u] {
			return nil, nil, fmt.Errorf("core: operation %s uses both %s and %s", g.Node(u).Name, a.Name, b.Name)
		}
	}
	if b.Def != dfg.NoNode {
		for _, u := range a.Uses {
			if u == b.Def {
				// Reading va and producing vb in one operation is the
				// natural read-then-overwrite pattern: no arc needed
				// beyond the trivial step equality.
				continue
			}
			weak = append(weak, [2]dfg.NodeID{u, b.Def})
		}
		if a.Def != dfg.NoNode {
			if a.Def == b.Def {
				return nil, nil, fmt.Errorf("core: %s and %s share a producer", a.Name, b.Name)
			}
			strict = append(strict, [2]dfg.NodeID{a.Def, b.Def})
		}
		return strict, weak, nil
	}
	// vb is an input value, born one step before its first use: every
	// reader (and the producer) of va must strictly precede every reader
	// of vb.
	if len(b.Uses) == 0 {
		return nil, nil, fmt.Errorf("core: cannot serialize %s before unused input %s", a.Name, b.Name)
	}
	for _, y := range b.Uses {
		for _, x := range a.Uses {
			strict = append(strict, [2]dfg.NodeID{x, y})
		}
		if a.Def != dfg.NoNode {
			if a.Def == y {
				return nil, nil, fmt.Errorf("core: producer of %s reads %s", a.Name, b.Name)
			}
			strict = append(strict, [2]dfg.NodeID{a.Def, y})
		}
	}
	return strict, weak, nil
}

// reschedule re-solves the scheduling problem of ns and rebuilds the
// design, returning ΔE and ΔH relative to st.
func (st *state) reschedule(ns *state) (*state, int, float64, error) {
	var s2 sched.Schedule
	var err error
	if st.par.Reschedule == RescheduleFrozen {
		s2 = ns.s
		if err := ns.prob.Verify(s2); err != nil {
			return nil, 0, 0, err
		}
	} else {
		s2, err = ns.listSchedule()
		if err != nil {
			return nil, 0, 0, err
		}
	}
	ns.s = s2
	if err := ns.build(); err != nil {
		return nil, 0, 0, err
	}
	return ns, ns.execT - st.execT, ns.area.Total - st.area.Total, nil
}

// listSchedule solves the list-scheduling problem of ns, memoized by the
// problem fingerprint. Infeasibility is memoized too: different tie
// policies and candidate orders pose the same augmented problems, and an
// infeasibility proof is as expensive as a schedule. An infeasible result
// only ever makes the merger's caller skip the candidate, so replaying the
// cached error is equivalent to re-deriving it. Schedules are cloned on
// both store and load because callers mutate the Step map.
func (ns *state) listSchedule() (sched.Schedule, error) {
	if !ns.cache.enabled() {
		stop := ns.par.Stats.Time("time.sched")
		s2, err := ns.prob.List(nil)
		stop()
		return s2, err
	}
	key := problemFingerprint(ns.prob)
	if e, ok := ns.cache.lookupSched(key); ok {
		if e.err != nil {
			return sched.Schedule{}, e.err
		}
		return e.s.Clone(), nil
	}
	stop := ns.par.Stats.Time("time.sched")
	s2, err := ns.prob.List(nil)
	stop()
	if err != nil {
		ns.cache.storeSched(key, schedEntry{err: err})
		return sched.Schedule{}, err
	}
	ns.cache.storeSched(key, schedEntry{s: s2.Clone()})
	return s2, nil
}
