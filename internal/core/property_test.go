package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/rtl"
	"repro/internal/sched"
)

// randGraph builds a random acyclic behaviour.
func randGraph(rng *rand.Rand, nOps int) *dfg.Graph {
	g := dfg.New("rand", 8)
	pool := []dfg.ValueID{g.Input("i0"), g.Input("i1"), g.Input("i2"), g.Const("k5", 5)}
	kinds := []dfg.OpKind{dfg.OpAdd, dfg.OpSub, dfg.OpMul, dfg.OpAnd, dfg.OpOr, dfg.OpXor}
	for i := 0; i < nOps; i++ {
		k := kinds[rng.Intn(len(kinds))]
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		pool = append(pool, g.Op(k, "", a, b))
	}
	for _, v := range g.Values() {
		if v.Kind == dfg.ValTemp && len(v.Uses) == 0 {
			g.MarkOutput(v.ID)
		}
	}
	return g
}

// Property: the full synthesis pipeline preserves semantics on random
// behaviours — the central invariant of the paper's transformation
// framework ("semantics-preserving transformations", §1).
func TestSynthesizeRandomGraphsPreservesSemantics(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 4+rng.Intn(12))
		par := DefaultParams(8)
		par.NoExplore = rng.Intn(2) == 0
		par.Slack = rng.Intn(3)
		r, err := Synthesize(g, par)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for trial := 0; trial < 4; trial++ {
			in := map[string]uint64{
				"i0": rng.Uint64(), "i1": rng.Uint64(), "i2": rng.Uint64(),
			}
			want, err := g.Interpret(8, in)
			if err != nil {
				return false
			}
			got, err := r.Design.Simulate(8, in)
			if err != nil {
				t.Logf("seed %d: simulate: %v", seed, err)
				return false
			}
			for k, w := range want {
				if got[k] != w {
					t.Logf("seed %d: output %s = %d, want %d", seed, k, got[k], w)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every committed merger strictly reduces module+register count,
// so the loop terminates and the trace length bounds the reduction.
func TestMergerMonotonicity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 4+rng.Intn(10))
		par := DefaultParams(8)
		par.NoExplore = true
		r, err := Synthesize(g, par)
		if err != nil {
			return false
		}
		before := g.NumNodes() + len(r.Design.Life) // 1:1 modules + regs
		after := r.Design.Alloc.NumModules() + r.Design.Alloc.NumRegs()
		return after == before-len(r.Trace)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// CAMAD's paper rows keep singleton registers: the ModulesOnly knob must
// hold for the whole benchmark suite.
func TestCAMADSingletonRegisters(t *testing.T) {
	for _, name := range []string{dfg.BenchEx, dfg.BenchDct, dfg.BenchTseng} {
		g, _ := dfg.ByName(name, 8)
		r, err := SynthesizeCAMAD(g, params())
		if err != nil {
			t.Fatal(err)
		}
		for _, reg := range r.Design.Alloc.Regs {
			if len(reg.Vals) != 1 {
				t.Errorf("%s: CAMAD register holds %d values", name, len(reg.Vals))
			}
		}
		// Modules must still be shared (the connectivity merger ran).
		if r.Design.Alloc.NumModules() >= g.NumNodes() {
			t.Errorf("%s: CAMAD did not merge modules", name)
		}
	}
}

// Gate-level equivalence holds for random graphs through the full
// pipeline including netlist optimization.
func TestRandomGraphsGateLevelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		g := randGraph(rng, 4+rng.Intn(8))
		par := DefaultParams(8)
		par.NoExplore = true
		r, err := Synthesize(g, par)
		if err != nil {
			t.Fatal(err)
		}
		nl, err := rtl.Generate(r.Design, 8, rtl.NormalMode)
		if err != nil {
			t.Fatal(err)
		}
		in := map[string]uint64{"i0": rng.Uint64(), "i1": rng.Uint64(), "i2": rng.Uint64()}
		want, err := g.Interpret(8, in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nl.SimulatePass(in)
		if err != nil {
			t.Fatal(err)
		}
		for k, w := range want {
			if got[k] != w {
				t.Fatalf("trial %d: %s = %d, want %d", trial, k, got[k], w)
			}
		}
	}
}

// The schedule produced by every flow respects the latency bound ASAP+slack.
func TestLatencyBoundHolds(t *testing.T) {
	prop := func(seed int64, slackRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 4+rng.Intn(10))
		slack := int(slackRaw % 3)
		asap, err := sched.NewProblem(g).ASAP()
		if err != nil {
			return false
		}
		par := DefaultParams(8)
		par.Slack = slack
		par.NoExplore = true
		r, err := Synthesize(g, par)
		if err != nil {
			return false
		}
		return r.Design.Sched.Len <= asap.Len+slack
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
