package core

import (
	"errors"
	"testing"

	"repro/internal/dfg"
	"repro/internal/stats"
)

func ord(ids ...dfg.NodeID) []dfg.NodeID { return ids }

// TestSelectMergeOrderSRWinsDespiteCostlierDelta is the regression test
// for the order-preference bug: the SR merge-sort order, when feasible,
// must win outright even when a later fallback order has a strictly
// smaller ΔE. The old implementation let every feasible order compete
// on (ΔE, ΔH) — its SR preference hinged on a vacuously-true nil check
// — so the testability-guided order lost to any cheaper reschedule.
func TestSelectMergeOrderSRWinsDespiteCostlierDelta(t *testing.T) {
	srState, fallbackState := &state{}, &state{}
	candidates := [][]dfg.NodeID{ord(1, 2), ord(2, 1)}
	ns, dE, dH, err := selectMergeOrder(candidates, func(order []dfg.NodeID) (*state, int, float64, error) {
		if sameOrder(order, candidates[0]) {
			return srState, 3, 7, nil // SR order: feasible but costlier
		}
		return fallbackState, 0, 0, nil // strictly smaller ΔE and ΔH
	})
	if err != nil {
		t.Fatal(err)
	}
	if ns != srState || dE != 3 || dH != 7 {
		t.Errorf("selected ΔE=%d ΔH=%g, want the SR order (ΔE=3, ΔH=7) regardless of cheaper fallbacks", dE, dH)
	}
}

func TestSelectMergeOrderFallbackMinimizesDelta(t *testing.T) {
	// When the SR order is infeasible the fallbacks compete on ΔE with
	// ΔH as the tie-breaker (paper §4.3.1: smallest critical-path
	// increase).
	states := map[dfg.NodeID]*state{2: {}, 3: {}, 4: {}}
	candidates := [][]dfg.NodeID{ord(1, 2), ord(2, 1), ord(3, 1), ord(4, 1)}
	ns, dE, dH, err := selectMergeOrder(candidates, func(order []dfg.NodeID) (*state, int, float64, error) {
		switch order[0] {
		case 1:
			return nil, 0, 0, errors.New("SR order infeasible")
		case 2:
			return states[2], 2, 0, nil
		case 3:
			return states[3], 1, 5, nil
		default:
			return states[4], 1, 2, nil // same ΔE as order 3, smaller ΔH
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ns != states[4] || dE != 1 || dH != 2 {
		t.Errorf("selected ΔE=%d ΔH=%g, want the (1, 2) fallback", dE, dH)
	}
}

// TestSelectMergeOrderSkipsDuplicates is the regression test for the
// duplicate-order bug: the old fmt.Sprint-keyed dedup let textually
// distinct but identical orders through, rescheduling the same problem
// twice. Each distinct order must be applied exactly once.
func TestSelectMergeOrderSkipsDuplicates(t *testing.T) {
	applied := 0
	// The SR order fails, so the loop walks the fallbacks — among which
	// two orders repeat earlier ones and must not be rescheduled again.
	candidates := [][]dfg.NodeID{ord(1, 2), ord(2, 1), ord(2, 1), ord(3, 1), ord(1, 2)}
	_, _, _, err := selectMergeOrder(candidates, func(order []dfg.NodeID) (*state, int, float64, error) {
		applied++
		if sameOrder(order, candidates[0]) {
			return nil, 0, 0, errors.New("SR order infeasible")
		}
		return &state{}, applied, 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Errorf("apply ran %d times for 3 distinct orders", applied)
	}
}

func TestSelectMergeOrderAllInfeasible(t *testing.T) {
	first := errors.New("first failure")
	calls := 0
	_, _, _, err := selectMergeOrder([][]dfg.NodeID{ord(1, 2), ord(2, 1)},
		func(order []dfg.NodeID) (*state, int, float64, error) {
			calls++
			if calls == 1 {
				return nil, 0, 0, first
			}
			return nil, 0, 0, errors.New("second failure")
		})
	if !errors.Is(err, first) {
		t.Errorf("err = %v, want the first failure", err)
	}
}

// TestAnalyzeMemoized pins the metrics cache: re-analyzing the same
// state returns the identical Metrics object and counts as a hit.
func TestAnalyzeMemoized(t *testing.T) {
	par := DefaultParams(4)
	sc := stats.New()
	par.Stats = sc
	st, err := initialState(dfg.Ex(4), par, newEvalCache(par))
	if err != nil {
		t.Fatal(err)
	}
	m1 := st.analyze()
	m2 := st.analyze()
	if m1 != m2 {
		t.Error("repeated analysis of one state returned distinct Metrics")
	}
	if h, m := sc.Value("cache.metrics.hit"), sc.Value("cache.metrics.miss"); h != 1 || m != 1 {
		t.Errorf("metrics counters hit=%d miss=%d, want 1/1", h, m)
	}
}

// TestMeanRegSeqDepthSharedAcrossIdenticalOrders is the regression test
// for the duplicate-fixpoint bug: applyRegMerge compares its two
// serialization orders by mean register sequential depth, and when both
// orders converge to the same (schedule, allocation) the second
// testability fixpoint used to be recomputed from scratch. Two states
// with identical designs must share one analysis through the cache.
func TestMeanRegSeqDepthSharedAcrossIdenticalOrders(t *testing.T) {
	par := DefaultParams(4)
	sc := stats.New()
	par.Stats = sc
	base, err := initialState(dfg.Ex(4), par, newEvalCache(par))
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := base.clone(), base.clone()
	if err := s1.build(); err != nil {
		t.Fatal(err)
	}
	if err := s2.build(); err != nil {
		t.Fatal(err)
	}
	d1 := meanRegSeqDepth(s1)
	hits := sc.Value("cache.metrics.hit")
	d2 := meanRegSeqDepth(s2)
	if d1 != d2 {
		t.Errorf("identical designs measured different depths: %g vs %g", d1, d2)
	}
	if got := sc.Value("cache.metrics.hit"); got != hits+1 {
		t.Errorf("second identical analysis was not a cache hit (hits %d -> %d)", hits, got)
	}
	if miss := sc.Value("cache.metrics.miss"); miss != 1 {
		t.Errorf("%d fixpoint runs for identical designs, want exactly 1", miss)
	}
}

// TestSynthesisAvoidsDuplicateTestabilityAnalysis asserts the effect
// end to end: a full synthesis run revisits enough identical designs
// across candidate orders and tie policies that the metrics cache must
// register hits.
func TestSynthesisAvoidsDuplicateTestabilityAnalysis(t *testing.T) {
	par := DefaultParams(8)
	sc := stats.New()
	par.Stats = sc
	if _, err := Synthesize(dfg.Ex(8), par); err != nil {
		t.Fatal(err)
	}
	if sc.Value("cache.metrics.hit") == 0 {
		t.Error("no metrics cache hits in a full synthesis run")
	}
}
