package core

import (
	"context"
	"testing"

	"repro/internal/dfg"
	"repro/internal/exec"
)

// TestSynthesizeCtxPartialOnDeadCtx: with the context already cancelled,
// SynthesizeCtx must still return a valid, buildable design — the initial
// (unmerged) state — tagged partial, not an error.
func TestSynthesizeCtxPartialOnDeadCtx(t *testing.T) {
	g, err := dfg.ByName(dfg.BenchTseng, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		par := DefaultParams(4)
		par.Workers = workers
		r, err := SynthesizeCtx(ctx, g, par)
		if err != nil {
			t.Fatalf("workers=%d: dead context errored: %v", workers, err)
		}
		if r.Status != exec.StatusPartial || r.Exhausted != exec.BudgetDeadline {
			t.Fatalf("workers=%d: status %v/%q, want partial/deadline", workers, r.Status, r.Exhausted)
		}
		if r.Design == nil || r.ExecTime <= 0 || r.Area.Total <= 0 {
			t.Errorf("workers=%d: partial result is not a valid design: %+v", workers, r)
		}
		if len(r.Trace) != 0 {
			t.Errorf("workers=%d: mergers committed under a dead context: %v", workers, r.Trace)
		}
	}
}

// TestSynthesizeCtxCompleteMatchesSynthesize: an uncancelled context must
// not perturb the result.
func TestSynthesizeCtxCompleteMatchesSynthesize(t *testing.T) {
	g, err := dfg.ByName(dfg.BenchEx, 4)
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultParams(4)
	par.Workers = 1
	plain, err := Synthesize(g, par)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := SynthesizeCtx(context.Background(), g, par)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Status != exec.StatusComplete || withCtx.Status != exec.StatusComplete {
		t.Fatalf("statuses %v / %v, want complete", plain.Status, withCtx.Status)
	}
	if plain.ExecTime != withCtx.ExecTime || plain.Area.Total != withCtx.Area.Total ||
		len(plain.Trace) != len(withCtx.Trace) {
		t.Errorf("context-threaded run diverges: %+v vs %+v", plain, withCtx)
	}
}

// TestRunCtxDispatch covers the ctx dispatcher for each method plus the
// partial tagging of the CAMAD flow.
func TestRunCtxDispatch(t *testing.T) {
	g, err := dfg.ByName(dfg.BenchEx, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range Methods() {
		r, err := RunCtx(context.Background(), method, g, DefaultParams(4))
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if r.Method != method || r.Status != exec.StatusComplete {
			t.Errorf("%s: got method %q status %v", method, r.Method, r.Status)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := RunCtx(ctx, MethodCAMAD, g, DefaultParams(4))
	if err != nil {
		t.Fatalf("cancelled camad errored: %v", err)
	}
	if r.Status != exec.StatusPartial || r.Method != MethodCAMAD {
		t.Errorf("cancelled camad: %v/%q", r.Status, r.Method)
	}
	if _, err := RunCtx(context.Background(), "nonsense", g, DefaultParams(4)); err == nil {
		t.Error("unknown method accepted")
	}
}
